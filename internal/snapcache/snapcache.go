// Package snapcache is H-BOLD's versioned snapshot cache for the
// presentation read path. Every presentation-layer read (Schema
// Summary, Cluster Schema, layout model, rendered SVG) is a pure
// function of the dataset's persisted state, which only changes when an
// extraction job succeeds. The cache therefore keys each materialized
// result by (dataset URL, dataset generation, view, params): a refresh
// bumps the generation in internal/core, so stale entries are never
// served — they simply stop being addressed and age out of the LRU (or
// are dropped eagerly by InvalidateBefore on the scheduler's job
// completion path).
//
// Concurrent misses for the same key collapse singleflight-style: one
// caller computes while the rest wait for its result, so a thundering
// herd after an invalidation recomputes each snapshot once, not once
// per reader. Memory is bounded by a byte budget with least-recently-
// used eviction; a budget of zero (or a nil *Cache) disables caching
// entirely and turns GetOrCompute into a pass-through, which is how
// the uncached arm of benchmark E13 and `hbold serve -cache 0` run.
package snapcache

import (
	"container/list"
	"fmt"
	"sync"
)

// Key addresses one materialized snapshot. Generation is the dataset's
// extraction generation from internal/core; View names the materialized
// artifact (e.g. "api:summary", "view:treemap"); Params carries any
// request parameters the artifact depends on (e.g. the bundle focus
// class), canonicalized by the caller.
type Key struct {
	URL        string
	Generation uint64
	View       string
	Params     string
}

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	// Hits counts lookups served from a resident entry.
	Hits int64 `json:"hits"`
	// Misses counts lookups that ran the compute function (collapsed
	// waiters are counted under Collapsed, not here).
	Misses int64 `json:"misses"`
	// Collapsed counts lookups that waited on another caller's
	// in-flight compute instead of recomputing (singleflight).
	Collapsed int64 `json:"collapsed"`
	// Evictions counts entries dropped to keep Bytes within Budget.
	Evictions int64 `json:"evictions"`
	// Invalidations counts entries dropped by InvalidateBefore.
	Invalidations int64 `json:"invalidations"`
	// Entries is the current number of resident snapshots.
	Entries int `json:"entries"`
	// Bytes is the current resident size; Budget is the configured cap.
	Bytes  int64 `json:"bytes"`
	Budget int64 `json:"budget"`
}

// entry is one resident snapshot; elem is its LRU list element.
type entry struct {
	key  Key
	val  any
	size int64
	elem *list.Element
}

// call is one in-flight compute that concurrent misses wait on.
type call struct {
	wg  sync.WaitGroup
	val any
	err error
}

// Cache is a byte-bounded LRU of materialized snapshots with
// singleflight miss collapse. It is safe for concurrent use. A nil
// *Cache is valid and caches nothing.
type Cache struct {
	budget int64

	mu      sync.Mutex
	entries map[Key]*entry
	byURL   map[string]map[Key]*entry // secondary index for invalidation
	lru     *list.List                // front = most recent; values are *entry
	flight  map[Key]*call
	bytes   int64

	hits, misses, collapsed, evictions, invalidations int64
}

// New builds a cache holding at most budget bytes of snapshots. A
// budget <= 0 disables caching: GetOrCompute becomes a pass-through.
func New(budget int64) *Cache {
	if budget <= 0 {
		return &Cache{}
	}
	return &Cache{
		budget:  budget,
		entries: make(map[Key]*entry),
		byURL:   make(map[string]map[Key]*entry),
		lru:     list.New(),
		flight:  make(map[Key]*call),
	}
}

// Enabled reports whether the cache actually stores anything.
func (c *Cache) Enabled() bool { return c != nil && c.budget > 0 }

// GetOrCompute returns the snapshot for key, running compute on a miss.
// compute returns the value, its resident size in bytes, and an error;
// errors are returned to every collapsed waiter and nothing is cached.
// Values handed out are shared across callers and must be treated as
// immutable. On a disabled cache compute runs unconditionally.
func (c *Cache) GetOrCompute(key Key, compute func() (any, int64, error)) (any, error) {
	if !c.Enabled() {
		v, _, err := compute()
		return v, err
	}
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.lru.MoveToFront(e.elem)
		c.hits++
		c.mu.Unlock()
		return e.val, nil
	}
	if f, ok := c.flight[key]; ok {
		c.collapsed++
		c.mu.Unlock()
		f.wg.Wait()
		return f.val, f.err
	}
	f := &call{}
	f.wg.Add(1)
	c.flight[key] = f
	c.misses++
	c.mu.Unlock()

	// the cleanup is deferred so a panicking compute cannot wedge the
	// key: the flight entry is always removed and waiters are always
	// released — with an error, letting the panic keep unwinding
	var size int64
	returned := false
	defer func() {
		if !returned {
			f.err = fmt.Errorf("snapcache: compute panicked for %s %s", key.URL, key.View)
		}
		c.mu.Lock()
		delete(c.flight, key)
		if returned && f.err == nil {
			c.insertLocked(key, f.val, size)
		}
		c.mu.Unlock()
		f.wg.Done()
	}()
	v, sz, err := compute()
	f.val, f.err, size = v, err, sz
	returned = true
	return v, err
}

// insertLocked adds a computed snapshot and evicts from the LRU tail
// until the budget holds. A snapshot larger than the whole budget is
// not cached at all.
func (c *Cache) insertLocked(key Key, v any, size int64) {
	if size < 0 {
		size = 0
	}
	if size > c.budget {
		return
	}
	if old, ok := c.entries[key]; ok {
		// a concurrent InvalidateBefore + recompute can race an older
		// flight; keep the newer value
		c.removeLocked(old)
	}
	e := &entry{key: key, val: v, size: size}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	if c.byURL[key.URL] == nil {
		c.byURL[key.URL] = make(map[Key]*entry)
	}
	c.byURL[key.URL][key] = e
	c.bytes += size
	for c.bytes > c.budget {
		tail := c.lru.Back()
		if tail == nil {
			break
		}
		c.removeLocked(tail.Value.(*entry))
		c.evictions++
	}
}

func (c *Cache) removeLocked(e *entry) {
	c.lru.Remove(e.elem)
	delete(c.entries, e.key)
	if keys := c.byURL[e.key.URL]; keys != nil {
		delete(keys, e.key)
		if len(keys) == 0 {
			delete(c.byURL, e.key.URL)
		}
	}
	c.bytes -= e.size
}

// InvalidateBefore drops every resident snapshot of url with a
// generation older than gen and returns how many were dropped. The
// scheduler's job-success path calls it (while holding the scheduler's
// own lock) so a refreshed dataset's stale snapshots free their bytes
// immediately instead of aging out; the per-URL index keeps the scan
// proportional to that one dataset's entries, not the whole cache.
func (c *Cache) InvalidateBefore(url string, gen uint64) int {
	if !c.Enabled() {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for key, e := range c.byURL[url] {
		if key.Generation < gen {
			c.removeLocked(e)
			n++
		}
	}
	c.invalidations += int64(n)
	return n
}

// Stats returns a snapshot of the effectiveness counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:          c.hits,
		Misses:        c.misses,
		Collapsed:     c.collapsed,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
		Entries:       len(c.entries),
		Bytes:         c.bytes,
		Budget:        c.budget,
	}
}
