package snapcache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func k(url string, gen uint64, view string) Key {
	return Key{URL: url, Generation: gen, View: view}
}

func TestHitMiss(t *testing.T) {
	c := New(1 << 20)
	computes := 0
	get := func() (any, error) {
		return c.GetOrCompute(k("u", 1, "v"), func() (any, int64, error) {
			computes++
			return "payload", 7, nil
		})
	}
	for i := 0; i < 3; i++ {
		v, err := get()
		if err != nil || v != "payload" {
			t.Fatalf("get = %v, %v", v, err)
		}
	}
	if computes != 1 {
		t.Fatalf("computes = %d, want 1", computes)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 2 || st.Entries != 1 || st.Bytes != 7 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGenerationKeysDistinct(t *testing.T) {
	c := New(1 << 20)
	for gen := uint64(1); gen <= 3; gen++ {
		v, err := c.GetOrCompute(k("u", gen, "v"), func() (any, int64, error) {
			return fmt.Sprintf("gen%d", gen), 4, nil
		})
		if err != nil || v != fmt.Sprintf("gen%d", gen) {
			t.Fatalf("gen %d: got %v, %v", gen, v, err)
		}
	}
	if st := c.Stats(); st.Misses != 3 || st.Entries != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(100)
	put := func(view string) {
		c.GetOrCompute(k("u", 1, view), func() (any, int64, error) { return view, 40, nil })
	}
	put("a")
	put("b")
	// touch "a" so "b" is the LRU victim when "c" overflows the budget
	c.GetOrCompute(k("u", 1, "a"), func() (any, int64, error) {
		t.Fatal("expected a to be resident")
		return nil, 0, nil
	})
	put("c")
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Bytes != 80 {
		t.Fatalf("stats = %+v", st)
	}
	// "b" must be gone, "a" and "c" resident
	recomputed := false
	c.GetOrCompute(k("u", 1, "b"), func() (any, int64, error) {
		recomputed = true
		return "b", 40, nil
	})
	if !recomputed {
		t.Fatal("LRU victim was not b")
	}
}

func TestOversizeValueNotCached(t *testing.T) {
	c := New(10)
	for i := 0; i < 2; i++ {
		if _, err := c.GetOrCompute(k("u", 1, "big"), func() (any, int64, error) {
			return "big", 100, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.Misses != 2 || st.Entries != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestErrorsNotCached(t *testing.T) {
	c := New(1 << 20)
	boom := errors.New("boom")
	for i := 0; i < 2; i++ {
		if _, err := c.GetOrCompute(k("u", 1, "v"), func() (any, int64, error) {
			return nil, 0, boom
		}); !errors.Is(err, boom) {
			t.Fatalf("err = %v", err)
		}
	}
	if st := c.Stats(); st.Misses != 2 || st.Entries != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSingleflightCollapse(t *testing.T) {
	c := New(1 << 20)
	const readers = 16
	var computes atomic.Int64
	gate := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	// one leader blocks inside compute while the rest pile up on the key
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.GetOrCompute(k("u", 1, "v"), func() (any, int64, error) {
			computes.Add(1)
			close(started)
			<-gate
			return "once", 4, nil
		})
	}()
	<-started
	results := make([]any, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _ = c.GetOrCompute(k("u", 1, "v"), func() (any, int64, error) {
				computes.Add(1)
				return "once", 4, nil
			})
		}(i)
	}
	close(gate)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("computes = %d, want 1", n)
	}
	for i, v := range results {
		if v != "once" {
			t.Fatalf("reader %d got %v", i, v)
		}
	}
}

func TestInvalidateBefore(t *testing.T) {
	c := New(1 << 20)
	c.GetOrCompute(k("u", 1, "a"), func() (any, int64, error) { return "a1", 4, nil })
	c.GetOrCompute(k("u", 1, "b"), func() (any, int64, error) { return "b1", 4, nil })
	c.GetOrCompute(k("u", 2, "a"), func() (any, int64, error) { return "a2", 4, nil })
	c.GetOrCompute(k("other", 1, "a"), func() (any, int64, error) { return "o1", 4, nil })
	if n := c.InvalidateBefore("u", 2); n != 2 {
		t.Fatalf("invalidated %d, want 2", n)
	}
	st := c.Stats()
	if st.Entries != 2 || st.Invalidations != 2 || st.Bytes != 8 {
		t.Fatalf("stats = %+v", st)
	}
	// the current generation and the other URL survive
	hits := st.Hits
	c.GetOrCompute(k("u", 2, "a"), func() (any, int64, error) {
		t.Fatal("current generation was invalidated")
		return nil, 0, nil
	})
	c.GetOrCompute(k("other", 1, "a"), func() (any, int64, error) {
		t.Fatal("unrelated URL was invalidated")
		return nil, 0, nil
	})
	if got := c.Stats().Hits; got != hits+2 {
		t.Fatalf("hits = %d, want %d", got, hits+2)
	}
}

// TestComputePanicDoesNotWedgeKey: a panicking compute must release
// collapsed waiters with an error and leave the key retryable, not
// park every future reader on a dead flight entry.
func TestComputePanicDoesNotWedgeKey(t *testing.T) {
	c := New(1 << 20)
	gate := make(chan struct{})
	started := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate to the computing caller")
			}
		}()
		c.GetOrCompute(k("u", 1, "v"), func() (any, int64, error) {
			close(started)
			<-gate
			panic("boom")
		})
	}()
	<-started
	waiter := make(chan error, 1)
	go func() {
		_, err := c.GetOrCompute(k("u", 1, "v"), func() (any, int64, error) {
			return "late", 4, nil
		})
		waiter <- err
	}()
	// wait until the second caller has collapsed onto the flight before
	// triggering the panic
	for c.Stats().Collapsed == 0 {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	<-leaderDone
	if err := <-waiter; err == nil {
		t.Fatal("collapsed waiter got nil error from a panicked compute")
	}
	// the key must be retryable, not wedged
	v, err := c.GetOrCompute(k("u", 1, "v"), func() (any, int64, error) {
		return "ok", 2, nil
	})
	if err != nil || v != "ok" {
		t.Fatalf("retry after panic = %v, %v", v, err)
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("stats after retry = %+v", st)
	}
}

func TestDisabledAndNil(t *testing.T) {
	for _, c := range []*Cache{nil, New(0)} {
		if c.Enabled() {
			t.Fatal("disabled cache reports enabled")
		}
		computes := 0
		for i := 0; i < 2; i++ {
			v, err := c.GetOrCompute(k("u", 1, "v"), func() (any, int64, error) {
				computes++
				return "x", 1, nil
			})
			if err != nil || v != "x" {
				t.Fatalf("get = %v, %v", v, err)
			}
		}
		if computes != 2 {
			t.Fatalf("computes = %d, want 2 (pass-through)", computes)
		}
		if n := c.InvalidateBefore("u", 9); n != 0 {
			t.Fatalf("invalidate on disabled cache = %d", n)
		}
	}
}
