package snapcache

import "repro/internal/obs"

// Register exposes a cache's stats on r as callback-backed families, read
// at scrape time. stats is called on the scraper's goroutine; passing a
// closure (rather than a *Cache) lets the owner swap the cache instance
// after registration — core registers func() Stats { return h.Cache.Stats() }
// and cmd/hbold may still replace h.Cache before serving.
func Register(r *obs.Registry, stats func() Stats) {
	if r == nil || stats == nil {
		return
	}
	c := func(name, help string, f func(Stats) float64) {
		r.CounterFunc(name, help, func() float64 { return f(stats()) })
	}
	g := func(name, help string, f func(Stats) float64) {
		r.GaugeFunc(name, help, func() float64 { return f(stats()) })
	}
	c("hbold_cache_hits_total", "Snapshot-cache lookups served from a resident entry.",
		func(s Stats) float64 { return float64(s.Hits) })
	c("hbold_cache_misses_total", "Snapshot-cache lookups that ran the compute function.",
		func(s Stats) float64 { return float64(s.Misses) })
	c("hbold_cache_collapsed_total", "Lookups collapsed onto another caller's in-flight compute.",
		func(s Stats) float64 { return float64(s.Collapsed) })
	c("hbold_cache_evictions_total", "Entries evicted to keep the cache within its byte budget.",
		func(s Stats) float64 { return float64(s.Evictions) })
	c("hbold_cache_invalidations_total", "Entries dropped by generation invalidation.",
		func(s Stats) float64 { return float64(s.Invalidations) })
	g("hbold_cache_entries", "Resident snapshot-cache entries.",
		func(s Stats) float64 { return float64(s.Entries) })
	g("hbold_cache_bytes", "Resident snapshot-cache size in bytes.",
		func(s Stats) float64 { return float64(s.Bytes) })
	g("hbold_cache_budget_bytes", "Configured snapshot-cache byte budget.",
		func(s Stats) float64 { return float64(s.Budget) })
}
