// Package cluster implements the Cluster Schema: the high-level
// visualization H-BOLD derives from the Schema Summary by community
// detection [Po & Malvezzi, J.UCS 2018]. Classes are grouped into
// disjoint clusters (a node never belongs to several clusters), cluster
// labels are taken from the highest-degree class, and arcs connect
// clusters whose classes are linked in the Schema Summary.
package cluster

import (
	"fmt"
	"sort"

	"repro/internal/community"
	"repro/internal/schema"
)

// Algorithm selects the community detection method.
type Algorithm string

// Supported community detection algorithms. Louvain is what the deployed
// tool uses; the others are ablation baselines.
const (
	Louvain          Algorithm = "louvain"
	LabelPropagation Algorithm = "label-propagation"
	GirvanNewman     Algorithm = "girvan-newman"
)

// Schema is the Cluster Schema of one dataset.
type Schema struct {
	// Dataset is the endpoint URL.
	Dataset string `json:"dataset"`
	// Algorithm records how the clustering was computed.
	Algorithm Algorithm `json:"algorithm"`
	// Clusters are the groups of classes, sorted by descending instances.
	Clusters []Cluster `json:"clusters"`
	// Edges connect clusters (by index into Clusters).
	Edges []Edge `json:"edges"`
	// Modularity is the quality of the underlying partition.
	Modularity float64 `json:"modularity"`
	// TotalInstances carries over from the Schema Summary.
	TotalInstances int `json:"totalInstances"`
}

// Cluster is one group of classes.
type Cluster struct {
	// Label is the display name: the label of the highest-degree class
	// in the cluster (degree = in + out in the Schema Summary).
	Label string `json:"label"`
	// Classes are the member class IRIs, sorted by descending instances.
	Classes []string `json:"classes"`
	// Instances is the sum of member instance counts.
	Instances int `json:"instances"`
}

// Edge is an aggregated connection between two clusters.
type Edge struct {
	// From and To are indexes into Clusters.
	From int `json:"from"`
	To   int `json:"to"`
	// Links is the number of Schema Summary edges aggregated here.
	Links int `json:"links"`
	// Count is the total instance-level link count.
	Count int `json:"count"`
}

// Options configures clustering.
type Options struct {
	// Algorithm defaults to Louvain.
	Algorithm Algorithm
	// Seed drives the algorithm's visiting order.
	Seed int64
}

// Build computes the Cluster Schema of a Schema Summary.
func Build(s *schema.Summary, opts Options) (*Schema, error) {
	if opts.Algorithm == "" {
		opts.Algorithm = Louvain
	}
	n := s.NumClasses()
	idx := make(map[string]int, n)
	for i, node := range s.Nodes {
		idx[node.IRI] = i
	}
	g := community.NewGraph(n)
	for _, e := range s.Edges {
		u, okU := idx[e.From]
		v, okV := idx[e.To]
		if !okU || !okV {
			return nil, fmt.Errorf("cluster: edge references unknown class %s→%s", e.From, e.To)
		}
		// the clustering graph is undirected and weighted by link count;
		// log-ish dampening is unnecessary at Schema Summary scale
		w := float64(e.Count)
		if w <= 0 {
			w = 1
		}
		g.AddEdge(u, v, w)
	}

	var part community.Partition
	switch opts.Algorithm {
	case Louvain:
		part = community.Louvain(g, opts.Seed)
	case LabelPropagation:
		part = community.LabelPropagation(g, opts.Seed)
	case GirvanNewman:
		part = community.GirvanNewman(g)
	default:
		return nil, fmt.Errorf("cluster: unknown algorithm %q", opts.Algorithm)
	}

	cs := &Schema{
		Dataset:        s.Dataset,
		Algorithm:      opts.Algorithm,
		Modularity:     community.Modularity(g, part),
		TotalInstances: s.TotalInstances,
	}

	members := part.Members()
	// build clusters with degree-based labels
	type clusterAccum struct {
		classes   []string
		instances int
		label     string
		maxDegree int
	}
	accum := make([]clusterAccum, 0, len(members))
	for _, m := range members {
		if len(m) == 0 {
			continue
		}
		var ca clusterAccum
		ca.maxDegree = -1
		for _, nodeIdx := range m {
			node := s.Nodes[nodeIdx]
			ca.classes = append(ca.classes, node.IRI)
			ca.instances += node.Instances
			if d := s.Degree(node.IRI); d > ca.maxDegree {
				ca.maxDegree = d
				ca.label = node.Label
			}
		}
		// sort member classes by descending instances then IRI
		sort.Slice(ca.classes, func(i, j int) bool {
			a, _ := s.NodeByIRI(ca.classes[i])
			b, _ := s.NodeByIRI(ca.classes[j])
			if a.Instances != b.Instances {
				return a.Instances > b.Instances
			}
			return a.IRI < b.IRI
		})
		accum = append(accum, ca)
	}
	// sort clusters by descending instances then label for stable output
	sort.Slice(accum, func(i, j int) bool {
		if accum[i].instances != accum[j].instances {
			return accum[i].instances > accum[j].instances
		}
		return accum[i].label < accum[j].label
	})
	classCluster := map[string]int{}
	for ci, ca := range accum {
		cs.Clusters = append(cs.Clusters, Cluster{
			Label: ca.label, Classes: ca.classes, Instances: ca.instances,
		})
		for _, c := range ca.classes {
			classCluster[c] = ci
		}
	}

	// aggregate inter-cluster edges
	agg := map[[2]int]*Edge{}
	for _, e := range s.Edges {
		cu, cv := classCluster[e.From], classCluster[e.To]
		if cu == cv {
			continue
		}
		key := [2]int{cu, cv}
		if key[0] > key[1] {
			key[0], key[1] = key[1], key[0]
		}
		a, ok := agg[key]
		if !ok {
			a = &Edge{From: key[0], To: key[1]}
			agg[key] = a
		}
		a.Links++
		a.Count += e.Count
	}
	keys := make([][2]int, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		cs.Edges = append(cs.Edges, *agg[k])
	}
	return cs, nil
}

// NumClusters returns the number of clusters.
func (cs *Schema) NumClusters() int { return len(cs.Clusters) }

// ClusterOf returns the index of the cluster containing the class, or -1.
func (cs *Schema) ClusterOf(classIRI string) int {
	for i, c := range cs.Clusters {
		for _, m := range c.Classes {
			if m == classIRI {
				return i
			}
		}
	}
	return -1
}

// Validate checks the disjointness invariant the paper calls out ("the
// possibility that a node belongs to several Clusters is avoided") and
// index bounds.
func (cs *Schema) Validate() error {
	seen := map[string]int{}
	for i, c := range cs.Clusters {
		if len(c.Classes) == 0 {
			return fmt.Errorf("cluster: empty cluster %d", i)
		}
		for _, m := range c.Classes {
			if prev, dup := seen[m]; dup {
				return fmt.Errorf("cluster: class %s in clusters %d and %d", m, prev, i)
			}
			seen[m] = i
		}
	}
	for _, e := range cs.Edges {
		if e.From < 0 || e.From >= len(cs.Clusters) || e.To < 0 || e.To >= len(cs.Clusters) {
			return fmt.Errorf("cluster: edge %d→%d out of range", e.From, e.To)
		}
		if e.From == e.To {
			return fmt.Errorf("cluster: self edge on cluster %d", e.From)
		}
	}
	return nil
}
