package cluster

import (
	"context"
	"testing"
	"time"

	"repro/internal/endpoint"
	"repro/internal/extraction"
	"repro/internal/schema"
	"repro/internal/synth"
)

func scholarlySummary(t testing.TB) *schema.Summary {
	t.Helper()
	st := synth.Scholarly(1)
	ix, err := extraction.New().Extract(context.Background(), endpoint.LocalClient{Store: st}, "scholarly", time.Now())
	if err != nil {
		t.Fatal(err)
	}
	return schema.Build(ix)
}

func modularSummary(t testing.TB, seed int64) *schema.Summary {
	t.Helper()
	st := synth.Generate(synth.Spec{
		Name: "mod", Classes: 30, Instances: 3000, ObjectProps: 60,
		DataProps: 20, LinkFactor: 1, CommunitySeeds: 4, Seed: seed,
	})
	ix, err := extraction.New().Extract(context.Background(), endpoint.LocalClient{Store: st}, "mod", time.Now())
	if err != nil {
		t.Fatal(err)
	}
	return schema.Build(ix)
}

func TestBuildScholarly(t *testing.T) {
	s := scholarlySummary(t)
	cs, err := Build(s, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.Validate(); err != nil {
		t.Fatal(err)
	}
	if cs.NumClusters() < 2 {
		t.Fatalf("clusters = %d, want >= 2", cs.NumClusters())
	}
	if cs.NumClusters() >= s.NumClasses() {
		t.Fatalf("clustering did not shrink the graph: %d clusters for %d classes",
			cs.NumClusters(), s.NumClasses())
	}
	if cs.Algorithm != Louvain {
		t.Fatalf("default algorithm = %s", cs.Algorithm)
	}
}

func TestEveryClassInExactlyOneCluster(t *testing.T) {
	s := scholarlySummary(t)
	cs, err := Build(s, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, c := range cs.Clusters {
		for _, m := range c.Classes {
			seen[m]++
		}
	}
	if len(seen) != s.NumClasses() {
		t.Fatalf("clustered %d classes, summary has %d", len(seen), s.NumClasses())
	}
	for iri, n := range seen {
		if n != 1 {
			t.Fatalf("class %s appears in %d clusters", iri, n)
		}
	}
}

func TestInstancesPreserved(t *testing.T) {
	s := scholarlySummary(t)
	cs, _ := Build(s, Options{Seed: 1})
	total := 0
	for _, c := range cs.Clusters {
		total += c.Instances
	}
	if total != s.TotalInstances {
		t.Fatalf("cluster instances = %d, summary = %d", total, s.TotalInstances)
	}
	if cs.TotalInstances != s.TotalInstances {
		t.Fatalf("TotalInstances not carried over")
	}
}

func TestLabelsAreMaxDegreeClasses(t *testing.T) {
	s := scholarlySummary(t)
	cs, _ := Build(s, Options{Seed: 1})
	for _, c := range cs.Clusters {
		// find max-degree member
		best, bestD := "", -1
		for _, m := range c.Classes {
			if d := s.Degree(m); d > bestD {
				bestD = d
				n, _ := s.NodeByIRI(m)
				best = n.Label
			}
		}
		if c.Label != best {
			t.Fatalf("cluster label %q, want %q (max degree member)", c.Label, best)
		}
	}
}

func TestClustersSortedByInstances(t *testing.T) {
	s := scholarlySummary(t)
	cs, _ := Build(s, Options{Seed: 1})
	for i := 1; i < len(cs.Clusters); i++ {
		if cs.Clusters[i-1].Instances < cs.Clusters[i].Instances {
			t.Fatal("clusters not sorted")
		}
	}
}

func TestEdgesAggregated(t *testing.T) {
	s := scholarlySummary(t)
	cs, _ := Build(s, Options{Seed: 1})
	if cs.NumClusters() > 1 && len(cs.Edges) == 0 {
		t.Fatal("no inter-cluster edges on a connected summary")
	}
	for _, e := range cs.Edges {
		if e.Links <= 0 || e.Count <= 0 {
			t.Fatalf("edge %+v has non-positive counts", e)
		}
		if e.From >= e.To {
			t.Fatalf("edge %+v not canonically ordered", e)
		}
	}
}

func TestClusterOf(t *testing.T) {
	s := scholarlySummary(t)
	cs, _ := Build(s, Options{Seed: 1})
	for iri := range map[string]bool{synth.ScholarlyNS + "Event": true, synth.ScholarlyNS + "Person": true} {
		ci := cs.ClusterOf(iri)
		if ci < 0 {
			t.Fatalf("ClusterOf(%s) = -1", iri)
		}
	}
	if cs.ClusterOf("http://nope") != -1 {
		t.Fatal("unknown class should be -1")
	}
}

func TestModularStructureRecovered(t *testing.T) {
	s := modularSummary(t, 7)
	cs, err := Build(s, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cs.Modularity < 0.2 {
		t.Fatalf("modularity = %v on a plannted-modular schema", cs.Modularity)
	}
	k := cs.NumClusters()
	if k < 2 || k > 12 {
		t.Fatalf("clusters = %d on 4-community schema", k)
	}
}

func TestAlgorithmsProduceValidSchemas(t *testing.T) {
	s := modularSummary(t, 3)
	for _, alg := range []Algorithm{Louvain, LabelPropagation, GirvanNewman} {
		cs, err := Build(s, Options{Algorithm: alg, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if err := cs.Validate(); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if cs.Algorithm != alg {
			t.Fatalf("algorithm not recorded")
		}
	}
}

func TestUnknownAlgorithm(t *testing.T) {
	s := scholarlySummary(t)
	if _, err := Build(s, Options{Algorithm: "kmeans"}); err == nil {
		t.Fatal("unknown algorithm should fail")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	s := modularSummary(t, 5)
	a, _ := Build(s, Options{Seed: 42})
	b, _ := Build(s, Options{Seed: 42})
	if a.NumClusters() != b.NumClusters() {
		t.Fatal("not deterministic")
	}
	for i := range a.Clusters {
		if a.Clusters[i].Label != b.Clusters[i].Label || len(a.Clusters[i].Classes) != len(b.Clusters[i].Classes) {
			t.Fatal("cluster contents differ across runs")
		}
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	cs := &Schema{Clusters: []Cluster{
		{Label: "a", Classes: []string{"http://x"}},
		{Label: "b", Classes: []string{"http://x"}},
	}}
	if err := cs.Validate(); err == nil {
		t.Fatal("overlap must fail validation")
	}
}

func TestValidateCatchesSelfEdge(t *testing.T) {
	cs := &Schema{
		Clusters: []Cluster{{Label: "a", Classes: []string{"http://x"}}},
		Edges:    []Edge{{From: 0, To: 0, Links: 1, Count: 1}},
	}
	if err := cs.Validate(); err == nil {
		t.Fatal("self edge must fail validation")
	}
}

func TestSingletonSummary(t *testing.T) {
	s := &schema.Summary{
		Dataset:        "x",
		Nodes:          []schema.Node{{IRI: "http://only", Label: "Only", Instances: 5}},
		TotalInstances: 5,
	}
	cs, err := Build(s, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cs.NumClusters() != 1 || cs.Clusters[0].Label != "Only" {
		t.Fatalf("singleton schema = %+v", cs)
	}
}
