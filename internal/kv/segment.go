package kv

// Immutable sorted segment files. Layout:
//
//	[block]* [index] [footer]
//
// A block is a run of entries, cut at BlockBytes:
//
//	klen uvarint | key | vtag uvarint | value
//
// where vtag 0 marks a tombstone and vtag n>0 a value of n-1 bytes.
// The index lists (first key, offset, length) per block; the fixed
// footer points at it:
//
//	index offset u64 BE | index length u64 BE | entry count u64 BE |
//	index CRC32 u32 BE | magic "HBKVSEG1"
//
// Readers keep the index in memory and pread one block per lookup, so
// opening a segment costs O(index), not O(data). Segments are
// reference counted: the DB holds one reference, every snapshot one
// more, and the file handle closes when the last drops — compaction
// unlinks retired files immediately and live snapshots keep reading
// through the open descriptor.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
	"sync/atomic"
)

var segMagic = []byte("HBKVSEG1")

const segFooterLen = 8 + 8 + 8 + 4 + 8

type blockMeta struct {
	first string
	off   uint64
	len   uint64
}

type segment struct {
	path   string
	f      *os.File
	size   int64
	blocks []blockMeta
	count  uint64
	refs   int32
}

func (s *segment) acquire() { atomic.AddInt32(&s.refs, 1) }

func (s *segment) release() {
	if atomic.AddInt32(&s.refs, -1) == 0 {
		s.f.Close()
	}
}

// openSegment maps the index of the segment at path into memory. The
// returned segment carries one reference (the caller's).
func openSegment(path string) (*segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*segment, error) {
		f.Close()
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		return fail(err)
	}
	if fi.Size() < segFooterLen {
		return fail(fmt.Errorf("short segment (%d bytes)", fi.Size()))
	}
	foot := make([]byte, segFooterLen)
	if _, err := f.ReadAt(foot, fi.Size()-segFooterLen); err != nil {
		return fail(err)
	}
	if string(foot[28:36]) != string(segMagic) {
		return fail(fmt.Errorf("bad magic"))
	}
	idxOff := binary.BigEndian.Uint64(foot[0:8])
	idxLen := binary.BigEndian.Uint64(foot[8:16])
	count := binary.BigEndian.Uint64(foot[16:24])
	idxSum := binary.BigEndian.Uint32(foot[24:28])
	if idxOff+idxLen > uint64(fi.Size()) {
		return fail(fmt.Errorf("index out of bounds"))
	}
	idx := make([]byte, idxLen)
	if _, err := f.ReadAt(idx, int64(idxOff)); err != nil {
		return fail(err)
	}
	if crc32.ChecksumIEEE(idx) != idxSum {
		return fail(fmt.Errorf("index checksum mismatch"))
	}
	blocks, err := decodeIndex(idx)
	if err != nil {
		return fail(err)
	}
	return &segment{
		path: path, f: f, size: fi.Size(),
		blocks: blocks, count: count, refs: 1,
	}, nil
}

func decodeIndex(idx []byte) ([]blockMeta, error) {
	n, w := binary.Uvarint(idx)
	if w <= 0 {
		return nil, fmt.Errorf("bad block count")
	}
	idx = idx[w:]
	blocks := make([]blockMeta, 0, n)
	for i := uint64(0); i < n; i++ {
		klen, w := binary.Uvarint(idx)
		if w <= 0 || uint64(len(idx)-w) < klen {
			return nil, fmt.Errorf("bad index key")
		}
		first := string(idx[w : w+int(klen)])
		idx = idx[w+int(klen):]
		off, w := binary.Uvarint(idx)
		if w <= 0 {
			return nil, fmt.Errorf("bad block offset")
		}
		idx = idx[w:]
		blen, w := binary.Uvarint(idx)
		if w <= 0 {
			return nil, fmt.Errorf("bad block length")
		}
		idx = idx[w:]
		blocks = append(blocks, blockMeta{first: first, off: off, len: blen})
	}
	return blocks, nil
}

// findBlock returns the index of the block that could contain key, or
// -1 when key sorts before the first block.
func (s *segment) findBlock(key string) int {
	return sort.Search(len(s.blocks), func(i int) bool { return s.blocks[i].first > key }) - 1
}

// get returns the entry for key: its value, whether it is a tombstone,
// and whether it was found at all.
func (s *segment) get(key string) (val []byte, del, ok bool, err error) {
	bi := s.findBlock(key)
	if bi < 0 {
		return nil, false, false, nil
	}
	buf := make([]byte, s.blocks[bi].len)
	if _, err := s.f.ReadAt(buf, int64(s.blocks[bi].off)); err != nil {
		return nil, false, false, err
	}
	for len(buf) > 0 {
		k, v, d, rest, err := decodeEntry(buf)
		if err != nil {
			return nil, false, false, err
		}
		if k == key {
			return v, d, true, nil
		}
		if k > key {
			return nil, false, false, nil
		}
		buf = rest
	}
	return nil, false, false, nil
}

func decodeEntry(buf []byte) (key string, val []byte, del bool, rest []byte, err error) {
	klen, w := binary.Uvarint(buf)
	if w <= 0 || uint64(len(buf)-w) < klen {
		return "", nil, false, nil, fmt.Errorf("bad entry key")
	}
	key = string(buf[w : w+int(klen)])
	buf = buf[w+int(klen):]
	vtag, w := binary.Uvarint(buf)
	if w <= 0 {
		return "", nil, false, nil, fmt.Errorf("bad entry vtag")
	}
	buf = buf[w:]
	if vtag == 0 {
		return key, nil, true, buf, nil
	}
	vlen := vtag - 1
	if uint64(len(buf)) < vlen {
		return "", nil, false, nil, fmt.Errorf("bad entry value")
	}
	return key, buf[:vlen], false, buf[vlen:], nil
}

// iterate returns a cursor over the whole segment. The cursor reads one
// block at a time; values alias its block buffer.
func (s *segment) iterate() *segIter {
	return &segIter{s: s, block: -1}
}

type segIter struct {
	s     *segment
	block int    // index of the block buf holds; -1 before the first
	buf   []byte // remaining undecoded bytes of the current block
	k     string
	v     []byte
	del   bool
}

func (it *segIter) seek(start string) {
	bi := it.s.findBlock(start)
	if bi < 0 {
		it.block = -1
		it.buf = nil
		return
	}
	// Load the candidate block and consume entries before start, so the
	// following next() lands on the first key >= start.
	if !it.load(bi) {
		return
	}
	for len(it.buf) > 0 {
		k, _, _, rest, err := decodeEntry(it.buf)
		if err != nil || k >= start {
			return
		}
		it.buf = rest
	}
}

// load positions the cursor at the beginning of block bi.
func (it *segIter) load(bi int) bool {
	if bi >= len(it.s.blocks) {
		it.block = len(it.s.blocks)
		it.buf = nil
		return false
	}
	buf := make([]byte, it.s.blocks[bi].len)
	if _, err := it.s.f.ReadAt(buf, int64(it.s.blocks[bi].off)); err != nil {
		it.block = len(it.s.blocks)
		it.buf = nil
		return false
	}
	it.block = bi
	it.buf = buf
	return true
}

func (it *segIter) next() bool {
	for len(it.buf) == 0 {
		if it.block >= len(it.s.blocks) {
			return false
		}
		if !it.load(it.block + 1) {
			return false
		}
	}
	k, v, del, rest, err := decodeEntry(it.buf)
	if err != nil {
		it.buf = nil
		it.block = len(it.s.blocks)
		return false
	}
	it.k, it.v, it.del = k, v, del
	it.buf = rest
	return true
}

func (it *segIter) key() string   { return it.k }
func (it *segIter) value() []byte { return it.v }
func (it *segIter) deleted() bool { return it.del }

// --- writing ---

type segWriter struct {
	path       string
	f          *os.File
	w          *bufio.Writer
	off        uint64
	blockStart uint64
	blockFirst string
	inBlock    bool
	blocks     []blockMeta
	count      uint64
	blockBytes int
	scratch    []byte
}

func newSegWriter(path string, blockBytes int) (*segWriter, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return &segWriter{path: path, f: f, w: bufio.NewWriterSize(f, 1<<16), blockBytes: blockBytes}, nil
}

// add appends one entry; keys must arrive in strictly increasing order.
func (sw *segWriter) add(k string, v []byte, del bool) error {
	if !sw.inBlock {
		sw.blockFirst = k
		sw.blockStart = sw.off
		sw.inBlock = true
	}
	b := sw.scratch[:0]
	b = binary.AppendUvarint(b, uint64(len(k)))
	b = append(b, k...)
	if del {
		b = binary.AppendUvarint(b, 0)
	} else {
		b = binary.AppendUvarint(b, uint64(len(v))+1)
		b = append(b, v...)
	}
	sw.scratch = b[:0]
	if _, err := sw.w.Write(b); err != nil {
		return err
	}
	sw.off += uint64(len(b))
	sw.count++
	if sw.off-sw.blockStart >= uint64(sw.blockBytes) {
		sw.cutBlock()
	}
	return nil
}

func (sw *segWriter) cutBlock() {
	sw.blocks = append(sw.blocks, blockMeta{
		first: sw.blockFirst, off: sw.blockStart, len: sw.off - sw.blockStart,
	})
	sw.inBlock = false
}

// finish writes the index and footer, fsyncs, and reopens the file as a
// live segment carrying one reference.
func (sw *segWriter) finish() (*segment, error) {
	if sw.inBlock {
		sw.cutBlock()
	}
	var idx []byte
	idx = binary.AppendUvarint(idx, uint64(len(sw.blocks)))
	for _, bm := range sw.blocks {
		idx = binary.AppendUvarint(idx, uint64(len(bm.first)))
		idx = append(idx, bm.first...)
		idx = binary.AppendUvarint(idx, bm.off)
		idx = binary.AppendUvarint(idx, bm.len)
	}
	if _, err := sw.w.Write(idx); err != nil {
		sw.abort()
		return nil, err
	}
	foot := make([]byte, segFooterLen)
	binary.BigEndian.PutUint64(foot[0:8], sw.off)
	binary.BigEndian.PutUint64(foot[8:16], uint64(len(idx)))
	binary.BigEndian.PutUint64(foot[16:24], sw.count)
	binary.BigEndian.PutUint32(foot[24:28], crc32.ChecksumIEEE(idx))
	copy(foot[28:36], segMagic)
	if _, err := sw.w.Write(foot); err != nil {
		sw.abort()
		return nil, err
	}
	if err := sw.w.Flush(); err != nil {
		sw.abort()
		return nil, err
	}
	if err := sw.f.Sync(); err != nil {
		sw.abort()
		return nil, err
	}
	if err := sw.f.Close(); err != nil {
		os.Remove(sw.path)
		return nil, err
	}
	seg, err := openSegment(sw.path)
	if err != nil {
		os.Remove(sw.path)
		return nil, err
	}
	return seg, nil
}

// abort discards the half-written file.
func (sw *segWriter) abort() {
	sw.f.Close()
	os.Remove(sw.path)
}
