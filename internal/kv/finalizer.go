package kv

import "runtime"

// Snapshots pin segment files via reference counts, and ReaderAPI (the
// consumer one level up) has no Close method — long-lived readers are
// simply dropped. A finalizer backstops those, releasing the pins when
// the snapshot becomes garbage; explicit Release remains the prompt
// path and clears the finalizer.

func setSnapFinalizer(s *Snap) {
	runtime.SetFinalizer(s, func(sn *Snap) { sn.Release() })
}

func clearSnapFinalizer(s *Snap) {
	runtime.SetFinalizer(s, nil)
}
