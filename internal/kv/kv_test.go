package kv

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, dir string, opts Options) *DB {
	t.Helper()
	db, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return db
}

func put(t *testing.T, db *DB, kvs ...string) {
	t.Helper()
	var b Batch
	for i := 0; i+1 < len(kvs); i += 2 {
		b.Put(kvs[i], []byte(kvs[i+1]))
	}
	if err := db.Apply(&b); err != nil {
		t.Fatalf("Apply: %v", err)
	}
}

func wantGet(t *testing.T, db *DB, key, want string, ok bool) {
	t.Helper()
	v, got := db.Get(key)
	if got != ok {
		t.Fatalf("Get(%q) present=%v, want %v", key, got, ok)
	}
	if ok && string(v) != want {
		t.Fatalf("Get(%q) = %q, want %q", key, v, want)
	}
}

func TestPutGetDelete(t *testing.T) {
	db := openT(t, t.TempDir(), Options{NoSync: true})
	defer db.Close()

	put(t, db, "a", "1", "b", "2", "c", "3")
	wantGet(t, db, "a", "1", true)
	wantGet(t, db, "b", "2", true)
	wantGet(t, db, "z", "", false)

	var b Batch
	b.Delete("b")
	b.Put("a", []byte("1x"))
	if err := db.Apply(&b); err != nil {
		t.Fatal(err)
	}
	wantGet(t, db, "b", "", false)
	wantGet(t, db, "a", "1x", true)
}

func TestFlushAndReopen(t *testing.T) {
	dir := t.TempDir()
	db := openT(t, dir, Options{NoSync: true})
	put(t, db, "k1", "v1", "k2", "v2")
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	put(t, db, "k3", "v3") // stays in WAL
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db = openT(t, dir, Options{NoSync: true})
	defer db.Close()
	wantGet(t, db, "k1", "v1", true)
	wantGet(t, db, "k2", "v2", true)
	wantGet(t, db, "k3", "v3", true)
	if st := db.Stats(); st.WALReplayed != 1 {
		t.Fatalf("WALReplayed = %d, want 1", st.WALReplayed)
	}
}

func TestDeleteAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	db := openT(t, dir, Options{NoSync: true})
	defer db.Close()

	put(t, db, "doomed", "alive", "keep", "yes")
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	var b Batch
	b.Delete("doomed")
	if err := db.Apply(&b); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	wantGet(t, db, "doomed", "", false)
	wantGet(t, db, "keep", "yes", true)

	// The tombstone must also win through a snapshot scan.
	sn := db.Snapshot()
	defer sn.Release()
	var keys []string
	sn.Scan("", "", func(k string, v []byte) bool {
		keys = append(keys, k)
		return true
	})
	if len(keys) != 1 || keys[0] != "keep" {
		t.Fatalf("scan = %v, want [keep]", keys)
	}
}

func TestScanOrderAndBounds(t *testing.T) {
	db := openT(t, t.TempDir(), Options{NoSync: true, BlockBytes: 32})
	defer db.Close()

	for i := 0; i < 50; i += 2 {
		put(t, db, fmt.Sprintf("k%03d", i), fmt.Sprintf("v%d", i))
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// Odd keys land in the memtable so the scan merges both layers.
	for i := 1; i < 50; i += 2 {
		put(t, db, fmt.Sprintf("k%03d", i), fmt.Sprintf("v%d", i))
	}

	sn := db.Snapshot()
	defer sn.Release()
	var got []string
	sn.Scan("k010", "k020", func(k string, v []byte) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 10 {
		t.Fatalf("scan [k010,k020) returned %d keys: %v", len(got), got)
	}
	for i := 0; i < len(got); i++ {
		want := fmt.Sprintf("k%03d", 10+i)
		if got[i] != want {
			t.Fatalf("scan[%d] = %q, want %q", i, got[i], want)
		}
	}
	if n := sn.Count("", ""); n != 50 {
		t.Fatalf("Count = %d, want 50", n)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	db := openT(t, t.TempDir(), Options{NoSync: true})
	defer db.Close()

	put(t, db, "x", "old")
	sn := db.Snapshot()
	defer sn.Release()
	put(t, db, "x", "new", "y", "born-later")

	if v, ok := sn.Get("x"); !ok || string(v) != "old" {
		t.Fatalf("snapshot Get(x) = %q,%v; want old", v, ok)
	}
	if _, ok := sn.Get("y"); ok {
		t.Fatal("snapshot sees key written after capture")
	}
	wantGet(t, db, "x", "new", true)
}

func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	db := openT(t, dir, Options{NoSync: true, MaxSegments: 3, BlockBytes: 64})

	// Hold a snapshot across the compaction to exercise read-through on
	// unlinked segment files.
	put(t, db, "pin", "1")
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	sn := db.Snapshot()
	defer sn.Release()

	for round := 0; round < 6; round++ {
		for i := 0; i < 20; i++ {
			put(t, db, fmt.Sprintf("r%[1]d-k%03[2]d", round, i), fmt.Sprintf("%d.%d", round, i))
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	db.compactWG.Wait()

	st := db.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compaction ran; stats %+v", st)
	}
	if st.Segments > 4 {
		t.Fatalf("segments = %d after compaction, want few", st.Segments)
	}
	wantGet(t, db, "r0-k000", "0.0", true)
	wantGet(t, db, "r5-k019", "5.19", true)
	if v, ok := sn.Get("pin"); !ok || string(v) != "1" {
		t.Fatalf("old snapshot broken after compaction: %q %v", v, ok)
	}

	// Reopen: the manifest must describe exactly the surviving files.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db = openT(t, dir, Options{NoSync: true})
	defer db.Close()
	wantGet(t, db, "r3-k010", "3.10", true)
	if n := db.Snapshot().Count("", ""); n != 1+6*20 {
		t.Fatalf("key count after reopen = %d, want %d", n, 1+6*20)
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	db := openT(t, dir, Options{})
	put(t, db, "a", "1")
	put(t, db, "b", "2")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a torn write: append garbage, then chop the last record
	// in half on a copy of the log.
	walPath := filepath.Join(dir, "wal.log")
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, append(raw[:len(raw)-3], 0xde, 0xad), 0o644); err != nil {
		t.Fatal(err)
	}

	db = openT(t, dir, Options{})
	defer db.Close()
	wantGet(t, db, "a", "1", true)
	wantGet(t, db, "b", "", false) // second record torn → dropped
	if st := db.Stats(); st.WALReplayed != 1 {
		t.Fatalf("WALReplayed = %d, want 1", st.WALReplayed)
	}
}

func TestOrphanSegmentDeleted(t *testing.T) {
	dir := t.TempDir()
	db := openT(t, dir, Options{NoSync: true})
	put(t, db, "a", "1")
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	orphan := filepath.Join(dir, "seg-999999.seg")
	if err := os.WriteFile(orphan, []byte("partial segment from a crash"), 0o644); err != nil {
		t.Fatal(err)
	}
	db = openT(t, dir, Options{NoSync: true})
	defer db.Close()
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphan segment not deleted: %v", err)
	}
	wantGet(t, db, "a", "1", true)
}

func TestPrefixEnd(t *testing.T) {
	cases := []struct{ in, want string }{
		{"abc", "abd"},
		{"a\xff", "b"},
		{"\xff\xff", ""},
		{"", ""},
	}
	for _, c := range cases {
		if got := PrefixEnd(c.in); got != c.want {
			t.Errorf("PrefixEnd(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestRandomizedAgainstMap drives random batches against the DB and a
// plain map, comparing full contents through flush/compaction cycles
// and a reopen.
func TestRandomizedAgainstMap(t *testing.T) {
	dir := t.TempDir()
	db := openT(t, dir, Options{NoSync: true, MaxSegments: 2, BlockBytes: 64, MemtableBytes: 1 << 10})
	model := map[string]string{}
	rng := rand.New(rand.NewSource(42))

	check := func(stage string) {
		t.Helper()
		sn := db.Snapshot()
		defer sn.Release()
		got := map[string]string{}
		prev := ""
		first := true
		sn.Scan("", "", func(k string, v []byte) bool {
			if !first && k <= prev {
				t.Fatalf("%s: scan out of order: %q after %q", stage, k, prev)
			}
			first, prev = false, k
			got[k] = string(v)
			return true
		})
		if len(got) != len(model) {
			t.Fatalf("%s: %d keys, want %d", stage, len(got), len(model))
		}
		for k, v := range model {
			if got[k] != v {
				t.Fatalf("%s: key %q = %q, want %q", stage, k, got[k], v)
			}
		}
	}

	for round := 0; round < 30; round++ {
		var b Batch
		for i := 0; i < 40; i++ {
			k := fmt.Sprintf("key-%03d", rng.Intn(300))
			if rng.Intn(5) == 0 {
				b.Delete(k)
				delete(model, k)
			} else {
				v := fmt.Sprintf("val-%d-%d", round, i)
				b.Put(k, []byte(v))
				model[k] = v
			}
		}
		if err := db.Apply(&b); err != nil {
			t.Fatal(err)
		}
		if rng.Intn(4) == 0 {
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
		}
		check(fmt.Sprintf("round %d", round))
	}
	db.compactWG.Wait()
	check("after compaction settles")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db = openT(t, dir, Options{NoSync: true})
	defer db.Close()
	check("after reopen")
}
