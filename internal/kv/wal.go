package kv

// The write-ahead log. One framed record per Apply batch:
//
//	[4B BE payload length][4B BE CRC32(payload)][payload]
//
// Replay reads records until EOF or the first frame that fails its
// length or checksum — a torn tail from a crash — and truncates the
// file there, so the log always restarts from a whole-batch boundary.

import (
	"encoding/binary"
	"hash/crc32"
	"io"
	"os"
)

const walFrameHeader = 8

// maxWALRecord rejects absurd frame lengths before allocating; honest
// records are bounded by the memtable threshold plus one batch.
const maxWALRecord = 1 << 30

type wal struct {
	f    *os.File
	path string
	size int64
}

// openWAL opens (creating if absent) the log at path and replays it,
// returning the payload of every intact record in append order. The
// file is truncated after the last intact record.
func openWAL(path string) (*wal, [][]byte, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	var payloads [][]byte
	var good int64
	hdr := make([]byte, walFrameHeader)
	for {
		if _, err := io.ReadFull(f, hdr); err != nil {
			break // EOF or torn header
		}
		n := binary.BigEndian.Uint32(hdr[0:4])
		sum := binary.BigEndian.Uint32(hdr[4:8])
		if n == 0 || n > maxWALRecord {
			break
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			break // torn payload
		}
		if crc32.ChecksumIEEE(payload) != sum {
			break // corrupt record
		}
		payloads = append(payloads, payload)
		good += walFrameHeader + int64(n)
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &wal{f: f, path: path, size: good}, payloads, nil
}

// append writes one framed record, fsyncing when sync is set.
func (w *wal) append(payload []byte, sync bool) error {
	frame := make([]byte, walFrameHeader+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[walFrameHeader:], payload)
	if _, err := w.f.Write(frame); err != nil {
		return err
	}
	w.size += int64(len(frame))
	if sync {
		return w.f.Sync()
	}
	return nil
}

// reset empties the log after a memtable flush: every record it held is
// now durable in a committed segment.
func (w *wal) reset() error {
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	w.size = 0
	return w.f.Sync()
}

func (w *wal) close() error {
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}
