// Package kv is a dependency-free, crash-safe embedded key-value store:
// an append-only WAL in front of an in-memory memtable, flushed into
// sorted immutable segment files with a block index, full-merged by a
// background compactor when segments accumulate. Keys are arbitrary
// byte strings compared lexicographically, so fixed-width big-endian
// encodings give ordered range scans — the property the dictionary-
// encoded triple tables in internal/store/disk are built on.
//
// Durability model: every Apply appends one framed record (length +
// CRC32) for the whole batch and fsyncs it (unless Options.NoSync), so
// a batch is atomic — after a crash, replay recovers a prefix of whole
// batches and truncates the first torn record. Flushing the memtable
// writes a segment, commits it in MANIFEST.json (temp file + rename +
// fsync of file and directory), then resets the WAL; a crash between
// those steps only replays work already in a segment, which is
// idempotent. Open therefore costs O(segments + WAL bytes), not
// O(dataset) — the instant-restart path.
package kv

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Options tunes a DB. The zero value selects the defaults.
type Options struct {
	// MemtableBytes is the flush threshold for buffered writes
	// (default 4 MiB). The WAL is bounded by the same figure, which
	// bounds replay work at open.
	MemtableBytes int
	// MaxSegments is the segment count above which the background
	// compactor full-merges the segment list (default 6).
	MaxSegments int
	// BlockBytes is the segment block size; one block is the unit of
	// read I/O and of index granularity (default 4096).
	BlockBytes int
	// NoSync skips the per-Apply fsync. Throughput for tests and bulk
	// loads; a crash may lose the tail of acknowledged batches, never
	// torn ones.
	NoSync bool
}

func (o Options) withDefaults() Options {
	if o.MemtableBytes <= 0 {
		o.MemtableBytes = 4 << 20
	}
	if o.MaxSegments <= 0 {
		o.MaxSegments = 6
	}
	if o.BlockBytes <= 0 {
		o.BlockBytes = 4096
	}
	return o
}

// Stats is a point-in-time snapshot of the DB's counters; the obs layer
// exports these as the hbold_kv_* metric families.
type Stats struct {
	WALAppends    uint64 // batches appended to the WAL
	WALBytes      uint64 // payload bytes appended to the WAL
	WALReplayed   uint64 // records recovered by replay at Open
	Flushes       uint64 // memtable → segment flushes
	Compactions   uint64 // full merges completed
	Segments      int    // live segment files
	SegmentBytes  int64  // total bytes across live segments
	MemtableKeys  int    // keys buffered in the memtable
	MemtableBytes int    // approximate memtable footprint
}

type memval struct {
	v   []byte
	del bool
}

// DB is an open key-value store. All methods are safe for concurrent
// use; reads through a Snapshot never block writers.
type DB struct {
	dir  string
	opts Options

	mu       sync.Mutex
	mem      map[string]memval
	memBytes int
	wal      *wal
	segs     []*segment // oldest → newest
	nextSeq  uint64
	closed   bool

	compacting bool
	compactWG  sync.WaitGroup

	stats Stats
}

const manifestName = "MANIFEST.json"

type manifest struct {
	Segments []string `json:"segments"` // oldest → newest
	NextSeq  uint64   `json:"next_seq"`
}

// Open opens (or creates) the store in dir, replaying the WAL into the
// memtable and deleting any segment files a crash left uncommitted.
func Open(dir string, opts Options) (*DB, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	db := &DB{dir: dir, opts: opts, mem: make(map[string]memval)}

	var m manifest
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	switch {
	case err == nil:
		if err := json.Unmarshal(raw, &m); err != nil {
			return nil, fmt.Errorf("kv: corrupt manifest: %w", err)
		}
	case os.IsNotExist(err):
		// fresh store
	default:
		return nil, err
	}
	db.nextSeq = m.NextSeq
	committed := make(map[string]bool, len(m.Segments))
	for _, name := range m.Segments {
		committed[name] = true
		seg, err := openSegment(filepath.Join(dir, name))
		if err != nil {
			db.releaseAll()
			return nil, fmt.Errorf("kv: segment %s: %w", name, err)
		}
		db.segs = append(db.segs, seg)
	}
	// Segments written but never committed to the manifest are garbage
	// from a crash mid-flush or mid-compaction.
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if err == nil {
		for _, p := range names {
			if !committed[filepath.Base(p)] {
				os.Remove(p)
			}
		}
	}

	w, payloads, err := openWAL(filepath.Join(dir, "wal.log"))
	if err != nil {
		db.releaseAll()
		return nil, err
	}
	db.wal = w
	for _, p := range payloads {
		b, err := decodeBatch(p)
		if err != nil {
			// openWAL already validated framing CRCs; a payload that
			// fails structural decode means a writer bug, not a torn
			// write. Refuse to guess.
			db.releaseAll()
			w.close()
			return nil, fmt.Errorf("kv: corrupt WAL batch: %w", err)
		}
		db.applyToMem(b)
		db.stats.WALReplayed++
	}
	return db, nil
}

func (db *DB) releaseAll() {
	for _, s := range db.segs {
		s.release()
	}
	db.segs = nil
}

// Batch is an ordered set of writes applied atomically by Apply.
type Batch struct {
	ops []op
}

type op struct {
	key string
	val []byte
	del bool
}

// Put records a key/value write. The value is retained until Apply.
func (b *Batch) Put(key string, val []byte) {
	b.ops = append(b.ops, op{key: key, val: val})
}

// Delete records a key deletion.
func (b *Batch) Delete(key string) {
	b.ops = append(b.ops, op{key: key, del: true})
}

// Len returns the number of operations in the batch.
func (b *Batch) Len() int { return len(b.ops) }

// Apply atomically commits the batch: one WAL record (fsynced unless
// NoSync), then the memtable. Crossing the memtable threshold flushes
// inline, so the caller's write rate is also the flush backpressure.
func (db *DB) Apply(b *Batch) error {
	if len(b.ops) == 0 {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return errClosed
	}
	payload := encodeBatch(b)
	if err := db.wal.append(payload, !db.opts.NoSync); err != nil {
		return err
	}
	db.stats.WALAppends++
	db.stats.WALBytes += uint64(len(payload))
	db.applyToMem(b)
	if db.memBytes >= db.opts.MemtableBytes {
		if err := db.flushLocked(); err != nil {
			return err
		}
	}
	return nil
}

func (db *DB) applyToMem(b *Batch) {
	for _, o := range b.ops {
		if prev, ok := db.mem[o.key]; ok {
			db.memBytes -= len(prev.v)
		} else {
			db.memBytes += len(o.key) + memEntryOverhead
		}
		db.mem[o.key] = memval{v: o.val, del: o.del}
		db.memBytes += len(o.val)
	}
}

const memEntryOverhead = 32

var errClosed = fmt.Errorf("kv: closed")

// Get returns the newest value for key. The returned slice must not be
// modified when it aliases the memtable; copy to retain.
func (db *DB) Get(key string) ([]byte, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if mv, ok := db.mem[key]; ok {
		if mv.del {
			return nil, false
		}
		return mv.v, true
	}
	for i := len(db.segs) - 1; i >= 0; i-- {
		if v, del, ok, err := db.segs[i].get(key); err == nil && ok {
			if del {
				return nil, false
			}
			return v, true
		}
	}
	return nil, false
}

// Flush forces the memtable into a new segment (even a small one) and
// resets the WAL. A no-op on an empty memtable.
func (db *DB) Flush() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return errClosed
	}
	return db.flushLocked()
}

// flushLocked writes the memtable as the newest segment, commits the
// manifest, resets the WAL and may kick off background compaction.
func (db *DB) flushLocked() error {
	if len(db.mem) == 0 {
		return nil
	}
	ents := make([]entry, 0, len(db.mem))
	for k, mv := range db.mem {
		ents = append(ents, entry{k: k, v: mv.v, del: mv.del})
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].k < ents[j].k })

	name := fmt.Sprintf("seg-%06d.seg", db.nextSeq)
	db.nextSeq++
	sw, err := newSegWriter(filepath.Join(db.dir, name), db.opts.BlockBytes)
	if err != nil {
		return err
	}
	for _, e := range ents {
		if err := sw.add(e.k, e.v, e.del); err != nil {
			sw.abort()
			return err
		}
	}
	seg, err := sw.finish()
	if err != nil {
		return err
	}
	db.segs = append(db.segs, seg)
	if err := db.writeManifestLocked(); err != nil {
		// The segment is orphaned; the next Open deletes it and the WAL
		// still holds every batch.
		db.segs = db.segs[:len(db.segs)-1]
		seg.release()
		return err
	}
	db.mem = make(map[string]memval)
	db.memBytes = 0
	db.stats.Flushes++
	if err := db.wal.reset(); err != nil {
		return err
	}
	db.maybeCompactLocked()
	return nil
}

func (db *DB) writeManifestLocked() error {
	m := manifest{NextSeq: db.nextSeq}
	for _, s := range db.segs {
		m.Segments = append(m.Segments, filepath.Base(s.path))
	}
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return atomicWrite(filepath.Join(db.dir, manifestName), raw)
}

// atomicWrite replaces path with data via temp file + rename, fsyncing
// both the file and its directory so the replacement survives a crash.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a preceding rename/create is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// maybeCompactLocked starts a background full merge when the segment
// list has grown past MaxSegments and no merge is already running.
func (db *DB) maybeCompactLocked() {
	if db.compacting || len(db.segs) <= db.opts.MaxSegments {
		return
	}
	captured := make([]*segment, len(db.segs))
	copy(captured, db.segs)
	for _, s := range captured {
		s.acquire()
	}
	seq := db.nextSeq
	db.nextSeq++
	db.compacting = true
	db.compactWG.Add(1)
	go db.compact(captured, seq)
}

// compact full-merges the captured segments (every segment that existed
// at capture time) into one. Tombstones are dropped: nothing older than
// the captured set exists, so a deletion shadowing nothing is dead
// weight. Segments flushed while the merge runs are newer and stay
// above the merged result.
func (db *DB) compact(captured []*segment, seq uint64) {
	defer db.compactWG.Done()
	release := func() {
		for _, s := range captured {
			s.release()
		}
	}
	name := fmt.Sprintf("seg-%06d.seg", seq)
	sw, err := newSegWriter(filepath.Join(db.dir, name), db.opts.BlockBytes)
	if err != nil {
		release()
		db.compactDone(nil, nil)
		return
	}
	// Newest segment wins ties: sources are ordered newest first.
	sources := make([]iter, len(captured))
	for i := range captured {
		sources[i] = captured[len(captured)-1-i].iterate()
	}
	werr := error(nil)
	mergeScan(sources, "", "", false, func(k string, v []byte, del bool) bool {
		werr = sw.add(k, v, del)
		return werr == nil
	})
	if werr != nil {
		sw.abort()
		release()
		db.compactDone(nil, nil)
		return
	}
	merged, err := sw.finish()
	if err != nil {
		release()
		db.compactDone(nil, nil)
		return
	}
	db.compactDone(captured, merged)
	release()
}

// compactDone swaps the merged segment in for the captured prefix of
// the segment list (under the lock) and retires the old files. A nil
// merged segment means the merge failed and the list is left alone.
func (db *DB) compactDone(captured []*segment, merged *segment) {
	db.mu.Lock()
	db.compacting = false
	if merged == nil {
		db.mu.Unlock()
		return
	}
	old := db.segs[:len(captured)]
	rest := db.segs[len(captured):]
	db.segs = append([]*segment{merged}, rest...)
	if err := db.writeManifestLocked(); err != nil {
		// Roll back: drop the merged segment, keep serving the old list.
		db.segs = append(old[:len(old):len(old)], rest...)
		db.mu.Unlock()
		merged.release()
		os.Remove(merged.path)
		return
	}
	db.stats.Compactions++
	db.mu.Unlock()
	for _, s := range old {
		// Unlink first — open snapshots keep reading through their fd.
		os.Remove(s.path)
		s.release() // the DB's own reference
	}
}

// Close waits for compaction, syncs the WAL and releases every file.
// The memtable is not flushed: the WAL already holds it durably and
// replay restores it on the next Open.
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	db.closed = true
	db.mu.Unlock()
	db.compactWG.Wait()
	db.mu.Lock()
	defer db.mu.Unlock()
	err := db.wal.close()
	db.releaseAll()
	return err
}

// Stats returns a snapshot of the DB's counters.
func (db *DB) Stats() Stats {
	db.mu.Lock()
	defer db.mu.Unlock()
	st := db.stats
	st.Segments = len(db.segs)
	st.SegmentBytes = 0
	for _, s := range db.segs {
		st.SegmentBytes += s.size
	}
	st.MemtableKeys = len(db.mem)
	st.MemtableBytes = db.memBytes
	return st
}

// Snap is a stable read view: a sorted copy of the memtable plus
// references on every live segment. Release returns the references;
// a finalizer backstops forgotten snapshots.
type Snap struct {
	mem  []entry    // sorted, includes tombstones
	segs []*segment // newest → oldest
	once sync.Once
}

type entry struct {
	k   string
	v   []byte
	del bool
}

// Snapshot captures a consistent view of the store. Readers on the
// snapshot never block, and never see writes applied after this call.
func (db *DB) Snapshot() *Snap {
	db.mu.Lock()
	sn := &Snap{}
	if len(db.mem) > 0 {
		sn.mem = make([]entry, 0, len(db.mem))
		for k, mv := range db.mem {
			sn.mem = append(sn.mem, entry{k: k, v: mv.v, del: mv.del})
		}
		sort.Slice(sn.mem, func(i, j int) bool { return sn.mem[i].k < sn.mem[j].k })
	}
	sn.segs = make([]*segment, len(db.segs))
	for i, s := range db.segs {
		s.acquire()
		sn.segs[len(db.segs)-1-i] = s
	}
	db.mu.Unlock()
	setSnapFinalizer(sn)
	return sn
}

// Release returns the snapshot's segment references. Idempotent.
func (s *Snap) Release() {
	s.once.Do(func() {
		for _, seg := range s.segs {
			seg.release()
		}
		s.segs = nil
		clearSnapFinalizer(s)
	})
}

// Get returns the newest value for key visible in the snapshot.
func (s *Snap) Get(key string) ([]byte, bool) {
	i := sort.Search(len(s.mem), func(i int) bool { return s.mem[i].k >= key })
	if i < len(s.mem) && s.mem[i].k == key {
		if s.mem[i].del {
			return nil, false
		}
		return s.mem[i].v, true
	}
	for _, seg := range s.segs {
		if v, del, ok, err := seg.get(key); err == nil && ok {
			if del {
				return nil, false
			}
			return v, true
		}
	}
	return nil, false
}

// Scan streams live keys in [start, end) in lexicographic order; an
// empty end means unbounded. Returning false from fn stops the scan.
// Values are only valid for the duration of the callback.
func (s *Snap) Scan(start, end string, fn func(k string, v []byte) bool) {
	sources := make([]iter, 0, len(s.segs)+1)
	sources = append(sources, &memIter{ents: s.mem, pos: -1})
	for _, seg := range s.segs {
		sources = append(sources, seg.iterate())
	}
	mergeScan(sources, start, end, false, func(k string, v []byte, del bool) bool {
		return fn(k, v)
	})
}

// Count returns the number of live keys in [start, end).
func (s *Snap) Count(start, end string) int {
	n := 0
	s.Scan(start, end, func(string, []byte) bool { n++; return true })
	return n
}

// PrefixEnd returns the smallest key greater than every key with the
// given prefix, or "" when no such key exists (all-0xff prefixes).
func PrefixEnd(prefix string) string {
	b := []byte(prefix)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] != 0xff {
			b[i]++
			return string(b[:i+1])
		}
	}
	return ""
}

// --- merge machinery ---

// iter is a positioned cursor over sorted (key, value, deleted) entries.
// next advances and reports validity; seek positions at the first key
// >= start.
type iter interface {
	seek(start string)
	next() bool
	key() string
	value() []byte
	deleted() bool
}

type memIter struct {
	ents []entry
	pos  int
}

func (m *memIter) seek(start string) {
	m.pos = sort.Search(len(m.ents), func(i int) bool { return m.ents[i].k >= start }) - 1
}

func (m *memIter) next() bool {
	m.pos++
	return m.pos < len(m.ents)
}

func (m *memIter) key() string   { return m.ents[m.pos].k }
func (m *memIter) value() []byte { return m.ents[m.pos].v }
func (m *memIter) deleted() bool { return m.ents[m.pos].del }

// mergeScan merges the sources (sources[i] shadows sources[j] for i<j)
// and emits each distinct key once, newest version first, in key order
// within [start, end). Tombstoned keys are emitted only when
// includeDeleted is set (segment flush and debugging); a false return
// from fn stops the merge.
func mergeScan(sources []iter, start, end string, includeDeleted bool, fn func(k string, v []byte, del bool) bool) {
	valid := make([]bool, len(sources))
	for i, it := range sources {
		it.seek(start)
		valid[i] = it.next()
	}
	for {
		best := -1
		for i, it := range sources {
			if !valid[i] {
				continue
			}
			if best == -1 || it.key() < sources[best].key() {
				best = i
			}
		}
		if best == -1 {
			return
		}
		k := sources[best].key()
		if end != "" && k >= end {
			return
		}
		v, del := sources[best].value(), sources[best].deleted()
		for i, it := range sources {
			if valid[i] && it.key() == k {
				valid[i] = it.next()
			}
		}
		if del && !includeDeleted {
			continue
		}
		if !fn(k, v, del) {
			return
		}
	}
}

// --- batch encoding (shared by WAL records and replay) ---

func encodeBatch(b *Batch) []byte {
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(b.ops)))
	for _, o := range b.ops {
		if o.del {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = binary.AppendUvarint(buf, uint64(len(o.key)))
		buf = append(buf, o.key...)
		if !o.del {
			buf = binary.AppendUvarint(buf, uint64(len(o.val)))
			buf = append(buf, o.val...)
		}
	}
	return buf
}

func decodeBatch(p []byte) (*Batch, error) {
	b := &Batch{}
	n, w := binary.Uvarint(p)
	if w <= 0 {
		return nil, fmt.Errorf("bad op count")
	}
	p = p[w:]
	for i := uint64(0); i < n; i++ {
		if len(p) < 1 {
			return nil, fmt.Errorf("truncated op")
		}
		del := p[0] == 1
		p = p[1:]
		klen, w := binary.Uvarint(p)
		if w <= 0 || uint64(len(p)-w) < klen {
			return nil, fmt.Errorf("bad key length")
		}
		key := string(p[w : w+int(klen)])
		p = p[w+int(klen):]
		if del {
			b.Delete(key)
			continue
		}
		vlen, w := binary.Uvarint(p)
		if w <= 0 || uint64(len(p)-w) < vlen {
			return nil, fmt.Errorf("bad value length")
		}
		val := make([]byte, vlen)
		copy(val, p[w:w+int(vlen)])
		p = p[w+int(vlen):]
		b.Put(key, val)
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("trailing bytes")
	}
	return b, nil
}
