package sparql

import (
	"repro/internal/rdf"
)

// SPARQL 1.1 Update support: INSERT DATA, DELETE DATA and the pattern form
// DELETE/INSERT ... WHERE (including the DELETE WHERE shorthand). An update
// request is a ';'-separated sequence of operations sharing one prologue;
// each operation's WHERE clause compiles through the same plan path as a
// SELECT query, so template instantiation sees exactly the solution
// sequence a query over the pre-update store would.

// Update is a parsed SPARQL Update request.
type Update struct {
	Prefixes *rdf.PrefixMap
	Ops      []UpdateOp
}

// UpdateOp is one operation in an update request, applied in order.
type UpdateOp interface {
	updateOp()
}

// InsertData is INSERT DATA { triples }: ground triples, no variables.
type InsertData struct {
	Triples []TriplePattern
}

// DeleteData is DELETE DATA { triples }: ground triples, no variables and
// no blank nodes (per SPARQL 1.1 Update §3.1.2).
type DeleteData struct {
	Triples []TriplePattern
}

// Modify is the pattern form: DELETE { tmpl } INSERT { tmpl } WHERE { p }.
// Either template may be absent (nil). For the DELETE WHERE shorthand the
// WHERE pattern doubles as the delete template.
type Modify struct {
	Delete []TriplePattern
	Insert []TriplePattern
	Where  *GroupPattern
}

func (*InsertData) updateOp() {}
func (*DeleteData) updateOp() {}
func (*Modify) updateOp()     {}

// ParseUpdate parses a SPARQL Update request string.
func ParseUpdate(src string) (*Update, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, prefixes: rdf.NewPrefixMap()}
	return p.update()
}

func (p *parser) update() (*Update, error) {
	u := &Update{Prefixes: p.prefixes}
	for {
		if err := p.prologue(); err != nil {
			return nil, err
		}
		if p.cur().kind == tokEOF {
			break
		}
		op, err := p.updateOperation()
		if err != nil {
			return nil, err
		}
		u.Ops = append(u.Ops, op)
		if p.punct(";") {
			continue
		}
		break
	}
	if p.cur().kind != tokEOF {
		return nil, p.errf("unexpected trailing input %s", p.cur())
	}
	if len(u.Ops) == 0 {
		return nil, p.errf("empty update request")
	}
	return u, nil
}

// prologue consumes any PREFIX/BASE declarations; update requests repeat
// the prologue between operations.
func (p *parser) prologue() error {
	for {
		if p.keyword("PREFIX") {
			if p.cur().kind != tokPName {
				return p.errf("expected prefixed name after PREFIX")
			}
			pname := p.next().text
			i := 0
			for i < len(pname) && pname[i] != ':' {
				i++
			}
			prefix := pname[:i]
			if p.cur().kind != tokIRI {
				return p.errf("expected IRI after PREFIX %s:", prefix)
			}
			p.prefixes.Bind(prefix, p.next().text)
			continue
		}
		if p.keyword("BASE") {
			if p.cur().kind != tokIRI {
				return p.errf("expected IRI after BASE")
			}
			p.next()
			continue
		}
		return nil
	}
}

func (p *parser) updateOperation() (UpdateOp, error) {
	switch {
	case p.keyword("INSERT"):
		if p.keyword("DATA") {
			trips, err := p.quadData()
			if err != nil {
				return nil, err
			}
			if err := validateGround(p, trips, true); err != nil {
				return nil, err
			}
			return &InsertData{Triples: trips}, nil
		}
		// INSERT { tmpl } WHERE { ... }
		ins, err := p.updateTemplate()
		if err != nil {
			return nil, err
		}
		w, err := p.updateWhere()
		if err != nil {
			return nil, err
		}
		return &Modify{Insert: ins, Where: w}, nil
	case p.keyword("DELETE"):
		if p.keyword("DATA") {
			trips, err := p.quadData()
			if err != nil {
				return nil, err
			}
			if err := validateGround(p, trips, false); err != nil {
				return nil, err
			}
			return &DeleteData{Triples: trips}, nil
		}
		if p.peekKeyword("WHERE") {
			// DELETE WHERE { pattern }: the pattern is the template.
			w, err := p.updateWhere()
			if err != nil {
				return nil, err
			}
			tmpl := flattenBGPs(w)
			if len(tmpl) == 0 {
				return nil, p.errf("DELETE WHERE requires a triples-only pattern")
			}
			return &Modify{Delete: tmpl, Where: w}, nil
		}
		del, err := p.updateTemplate()
		if err != nil {
			return nil, err
		}
		if err := rejectBlanks(p, del); err != nil {
			return nil, err
		}
		var ins []TriplePattern
		if p.keyword("INSERT") {
			ins, err = p.updateTemplate()
			if err != nil {
				return nil, err
			}
		}
		w, err := p.updateWhere()
		if err != nil {
			return nil, err
		}
		return &Modify{Delete: del, Insert: ins, Where: w}, nil
	}
	return nil, p.errf("expected INSERT or DELETE, found %s", p.cur())
}

// quadData parses the { triples } block of INSERT DATA / DELETE DATA.
func (p *parser) quadData() ([]TriplePattern, error) {
	return p.updateTemplate()
}

// updateTemplate parses a { triplesSameSubject* } block shared by data
// blocks and DELETE/INSERT templates.
func (p *parser) updateTemplate() ([]TriplePattern, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	bgp := &BGP{}
	for !p.punct("}") {
		if p.cur().kind == tokEOF {
			return nil, p.errf("unterminated update template")
		}
		if err := p.triplesSameSubject(bgp); err != nil {
			return nil, err
		}
		p.punct(".")
	}
	return bgp.Patterns, nil
}

// updateWhere consumes the WHERE keyword and its group graph pattern.
func (p *parser) updateWhere() (*GroupPattern, error) {
	if !p.keyword("WHERE") {
		return nil, p.errf("expected WHERE, found %s", p.cur())
	}
	return p.groupGraphPattern()
}

// validateGround rejects variables in a DATA block, and blank nodes too
// when allowBlank is false (DELETE DATA).
func validateGround(p *parser, trips []TriplePattern, allowBlank bool) error {
	for _, tp := range trips {
		for _, n := range []NodePattern{tp.S, tp.P, tp.O} {
			if n.IsVar() {
				return p.errf("variable ?%s not allowed in DATA block", n.Var)
			}
			if !allowBlank && n.Term.IsBlank() {
				return p.errf("blank node not allowed in DELETE DATA")
			}
		}
	}
	return nil
}

// rejectBlanks errors on blank nodes in a DELETE template (SPARQL 1.1
// Update §3.1.3.2: blank nodes cannot match by label, so they are
// disallowed where triples are removed).
func rejectBlanks(p *parser, trips []TriplePattern) error {
	for _, tp := range trips {
		for _, n := range []NodePattern{tp.S, tp.P, tp.O} {
			if !n.IsVar() && n.Term.IsBlank() {
				return p.errf("blank node not allowed in DELETE template")
			}
		}
	}
	return nil
}

// flattenBGPs extracts the triple patterns of a pattern group consisting
// solely of BGPs (the only shape DELETE WHERE accepts as a template).
func flattenBGPs(g *GroupPattern) []TriplePattern {
	if g == nil || len(g.Filters) > 0 {
		return nil
	}
	var out []TriplePattern
	for _, e := range g.Elems {
		bgp, ok := e.(*BGP)
		if !ok {
			return nil
		}
		out = append(out, bgp.Patterns...)
	}
	return out
}
