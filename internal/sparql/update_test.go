package sparql

import (
	"strings"
	"testing"

	"repro/internal/rdf"
)

func TestParseInsertData(t *testing.T) {
	u, err := ParseUpdate(`PREFIX ex: <http://ex/>
		INSERT DATA { ex:a ex:p ex:b . ex:a ex:q "v" , "w"@en ; a ex:C }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Ops) != 1 {
		t.Fatalf("ops = %d, want 1", len(u.Ops))
	}
	ins, ok := u.Ops[0].(*InsertData)
	if !ok {
		t.Fatalf("op type %T", u.Ops[0])
	}
	if len(ins.Triples) != 4 {
		t.Fatalf("triples = %d, want 4", len(ins.Triples))
	}
	if got := ins.Triples[0].S.Term; got != rdf.NewIRI("http://ex/a") {
		t.Fatalf("subject = %v", got)
	}
	if got := ins.Triples[3].P.Term; got != rdf.NewIRI(rdf.RDFType) {
		t.Fatalf("'a' predicate = %v", got)
	}
	if got := ins.Triples[2].O.Term; got != rdf.NewLangLiteral("w", "en") {
		t.Fatalf("lang literal = %v", got)
	}
}

func TestParseDeleteData(t *testing.T) {
	u, err := ParseUpdate(`DELETE DATA { <http://ex/a> <http://ex/p> "x" }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := u.Ops[0].(*DeleteData); !ok {
		t.Fatalf("op type %T", u.Ops[0])
	}
}

func TestParseDataRejectsVariables(t *testing.T) {
	for _, src := range []string{
		`INSERT DATA { ?s <http://ex/p> <http://ex/o> }`,
		`DELETE DATA { <http://ex/s> <http://ex/p> ?o }`,
	} {
		if _, err := ParseUpdate(src); err == nil {
			t.Fatalf("no error for %q", src)
		}
	}
}

func TestParseDeleteDataRejectsBlankNodes(t *testing.T) {
	if _, err := ParseUpdate(`DELETE DATA { _:b <http://ex/p> <http://ex/o> }`); err == nil {
		t.Fatal("no error for blank node in DELETE DATA")
	}
}

func TestParseModify(t *testing.T) {
	u, err := ParseUpdate(`PREFIX ex: <http://ex/>
		DELETE { ?s ex:old ?v }
		INSERT { ?s ex:new ?v }
		WHERE { ?s ex:old ?v . FILTER(?v != "skip") }`)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := u.Ops[0].(*Modify)
	if !ok {
		t.Fatalf("op type %T", u.Ops[0])
	}
	if len(m.Delete) != 1 || len(m.Insert) != 1 {
		t.Fatalf("templates: delete %d, insert %d", len(m.Delete), len(m.Insert))
	}
	if m.Where == nil || len(m.Where.Filters) != 1 {
		t.Fatalf("WHERE not carried: %+v", m.Where)
	}
}

func TestParseInsertWhere(t *testing.T) {
	u, err := ParseUpdate(`INSERT { ?s <http://ex/copy> ?o } WHERE { ?s <http://ex/p> ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	m := u.Ops[0].(*Modify)
	if m.Delete != nil || len(m.Insert) != 1 {
		t.Fatalf("unexpected templates %+v", m)
	}
}

func TestParseDeleteWhereShorthand(t *testing.T) {
	u, err := ParseUpdate(`DELETE WHERE { ?s <http://ex/p> ?o . ?o <http://ex/q> ?x }`)
	if err != nil {
		t.Fatal(err)
	}
	m := u.Ops[0].(*Modify)
	if len(m.Delete) != 2 {
		t.Fatalf("delete template = %d triples, want 2", len(m.Delete))
	}
	if m.Insert != nil {
		t.Fatal("unexpected insert template")
	}
}

func TestParseUpdateSequence(t *testing.T) {
	u, err := ParseUpdate(`PREFIX ex: <http://ex/>
		INSERT DATA { ex:a ex:p ex:b } ;
		DELETE DATA { ex:c ex:p ex:d } ;
		DELETE { ?s ex:p ?o } INSERT { ?s ex:q ?o } WHERE { ?s ex:p ?o } ;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Ops) != 3 {
		t.Fatalf("ops = %d, want 3", len(u.Ops))
	}
}

func TestParseUpdateErrors(t *testing.T) {
	for _, src := range []string{
		``,
		`SELECT ?s WHERE { ?s ?p ?o }`,
		`INSERT DATA { <http://ex/a> <http://ex/p> }`,
		`INSERT { ?s ?p ?o }`, // missing WHERE
		`DELETE`,
		`INSERT DATA { <http://ex/a> <http://ex/p> <http://ex/o> } garbage`,
	} {
		if _, err := ParseUpdate(src); err == nil {
			t.Fatalf("no error for %q", src)
		}
	}
}

func TestParseUpdateErrorMentionsLine(t *testing.T) {
	_, err := ParseUpdate("PREFIX ex: <http://ex/>\nINSERT DATA { ?bad ex:p ex:o }")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line 2 position", err)
	}
}
