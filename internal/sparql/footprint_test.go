package sparql_test

import (
	"reflect"
	"testing"

	"repro/internal/rdf"
	"repro/internal/sparql"
)

func footprintOf(t *testing.T, query string) (preds, classes []string) {
	t.Helper()
	q, err := sparql.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	return sparql.Footprint(q)
}

func TestFootprintRequiredTerms(t *testing.T) {
	preds, classes := footprintOf(t,
		`SELECT ?s WHERE { ?s a <http://ex/C> . ?s <http://ex/p> ?o . ?o <http://ex/q> ?v }`)
	if want := []string{"http://ex/p", "http://ex/q"}; !reflect.DeepEqual(preds, want) {
		t.Fatalf("preds = %v, want %v", preds, want)
	}
	if want := []string{"http://ex/C"}; !reflect.DeepEqual(classes, want) {
		t.Fatalf("classes = %v, want %v", classes, want)
	}
}

func TestFootprintIgnoresOptionalBranches(t *testing.T) {
	// OPTIONAL, UNION and MINUS contents are not required: a source
	// missing those terms can still contribute rows
	preds, classes := footprintOf(t, `SELECT ?s WHERE {
		?s <http://ex/req> ?x .
		OPTIONAL { ?s <http://ex/opt> ?y }
		{ ?s <http://ex/u1> ?a } UNION { ?s <http://ex/u2> ?b }
		MINUS { ?s <http://ex/m> ?c }
	}`)
	if want := []string{"http://ex/req"}; !reflect.DeepEqual(preds, want) {
		t.Fatalf("preds = %v, want only the required one (%v)", preds, want)
	}
	if classes != nil {
		t.Fatalf("classes = %v, want none", classes)
	}
}

func TestFootprintVariablePredicateRequiresNothing(t *testing.T) {
	preds, classes := footprintOf(t, `SELECT ?s WHERE { ?s ?p ?o }`)
	if preds != nil || classes != nil {
		t.Fatalf("footprint = %v / %v, want empty", preds, classes)
	}
	// rdf:type with a variable class pins no class and no predicate
	preds, classes = footprintOf(t, `SELECT ?s WHERE { ?s a ?c }`)
	if preds != nil || classes != nil {
		t.Fatalf("typed footprint = %v / %v, want empty", preds, classes)
	}
}

func TestBindingKeyDistinguishesAndMatches(t *testing.T) {
	iri := rdf.NewIRI
	b1 := sparql.Binding{"x": iri("http://ex/a"), "y": iri("http://ex/b")}
	b2 := sparql.Binding{"y": iri("http://ex/b"), "x": iri("http://ex/a")}
	b3 := sparql.Binding{"x": iri("http://ex/a")}
	vars := []string{"x", "y"}
	if sparql.BindingKey(b1, vars) != sparql.BindingKey(b2, vars) {
		t.Fatal("equal bindings produced different keys")
	}
	if sparql.BindingKey(b1, vars) == sparql.BindingKey(b3, vars) {
		t.Fatal("distinct bindings produced the same key")
	}
}
