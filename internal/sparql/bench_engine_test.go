package sparql

// Engine micro-benchmarks. BenchmarkJoinInnerLoop drives the compiled
// plan directly — no projection, no Result materialization — so its
// allocs/op number is the allocation cost of the join inner loop itself.
// With ~16k rows joined per op, a two-digit allocs/op total means zero
// per-row allocations (the remainder is arena doubling and plan setup);
// the legacy twin allocates one map clone per candidate row.

import (
	"fmt"
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
)

// joinBenchStore is a two-hop graph: 1000 subjects → 4 mids each via p1,
// 800 mids → 4 leaves each via p2, so ?a p1 ?b . ?b p2 ?c yields 16000
// solutions.
func joinBenchStore() *store.Store {
	st := store.New()
	p1 := rdf.NewIRI("http://b/p1")
	p2 := rdf.NewIRI("http://b/p2")
	for i := 0; i < 1000; i++ {
		s := rdf.NewIRI(fmt.Sprintf("http://b/s%d", i))
		for j := 0; j < 4; j++ {
			st.AddSPO(s, p1, rdf.NewIRI(fmt.Sprintf("http://b/m%d", (i*4+j)%800)))
		}
	}
	for i := 0; i < 800; i++ {
		m := rdf.NewIRI(fmt.Sprintf("http://b/m%d", i))
		for j := 0; j < 4; j++ {
			st.AddSPO(m, p2, rdf.NewIRI(fmt.Sprintf("http://b/l%d", (i*4+j)%500)))
		}
	}
	return st
}

const joinBenchQuery = `SELECT ?a ?b ?c WHERE { ?a <http://b/p1> ?b . ?b <http://b/p2> ?c }`

const joinBenchRows = 16000

func BenchmarkJoinInnerLoop(b *testing.B) {
	st := joinBenchStore()
	q := MustParse(joinBenchQuery)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex := newIDExec(st)
		comp := &compiler{ex: ex, slots: newSlotmap()}
		root, err := comp.group(q.Where)
		if err != nil {
			b.Fatal(err)
		}
		ex.nslots = comp.slots.count()
		ex.names = comp.slots.names
		ex.joinRow = make([]store.ID, ex.nslots)
		in := &rowbuf{stride: ex.nslots, data: make([]store.ID, ex.nslots), n: 1}
		rows := ex.evalGroup(root, in, -1)
		if rows.n != joinBenchRows {
			b.Fatalf("rows = %d, want %d", rows.n, joinBenchRows)
		}
	}
}

func BenchmarkJoinInnerLoopLegacy(b *testing.B) {
	st := joinBenchStore()
	q := MustParse(joinBenchQuery)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := &evaluator{st: st}
		sols := ev.evalGroup(q.Where, []Binding{{}})
		if len(sols) != joinBenchRows {
			b.Fatalf("rows = %d, want %d", len(sols), joinBenchRows)
		}
	}
}
