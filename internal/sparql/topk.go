package sparql

// Bounded top-k selection for ORDER BY … LIMIT k. Instead of sorting the
// full solution set and discarding everything past the window, a max-heap
// of k = OFFSET + LIMIT rows keeps only the candidates that can still
// appear in the answer: a new row is compared against the current worst
// and either replaces it or is dropped on the spot. Live memory is O(k)
// rows however many solutions the pattern produces, which is what lets
// the streaming engine run ORDER BY … LIMIT without the materialized
// fallback. The comparison is CompareOrderKeys — the same one the full
// sort and the federated ordered merge use — with an arrival sequence
// number as the final tie-break, so the kept window and its order are
// exactly what the stable full sort would have produced over the same
// input sequence.

import (
	"sort"

	"repro/internal/rdf"
	"repro/internal/store"
)

// topkEntry is one retained candidate: an owned row copy, its evaluated
// sort key, and the arrival sequence number that stands in for sort
// stability.
type topkEntry struct {
	row []store.ID
	key OrderKey
	seq int64
}

// rowTopK keeps the k best rows seen so far under conds. The entries
// form a max-heap on (key, seq): the worst retained row sits at index 0,
// where the next candidate can be tested against it in O(1).
type rowTopK struct {
	conds []OrderCond
	k     int
	es    []topkEntry
	next  int64
}

func newRowTopK(conds []OrderCond, k int) *rowTopK {
	return &rowTopK{conds: conds, k: k}
}

// worse reports whether a sorts strictly after b. Equal keys fall back to
// arrival order, so the relation is a total order.
func (h *rowTopK) worse(a, b topkEntry) bool {
	if c := CompareOrderKeys(h.conds, a.key, b.key); c != 0 {
		return c > 0
	}
	return a.seq > b.seq
}

// offer considers one row. The row and key may point into caller scratch:
// both are copied only if the candidate is retained, so a rejected row —
// the overwhelmingly common case once the heap is warm — costs one key
// comparison and nothing else.
func (h *rowTopK) offer(r []store.ID, key OrderKey) {
	e := topkEntry{key: key, seq: h.next}
	h.next++
	if h.k <= 0 {
		return
	}
	if len(h.es) < h.k {
		e.row = append([]store.ID(nil), r...)
		e.key = key.clone(nil)
		h.es = append(h.es, e)
		h.up(len(h.es) - 1)
		return
	}
	if !h.worse(h.es[0], e) {
		return // not better than the current worst: drop
	}
	// replace the worst, recycling its row and key storage
	e.row = append(h.es[0].row[:0], r...)
	e.key = key.clone(&h.es[0].key)
	h.es[0] = e
	h.down(0)
}

func (h *rowTopK) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.worse(h.es[i], h.es[p]) {
			return
		}
		h.es[i], h.es[p] = h.es[p], h.es[i]
		i = p
	}
}

func (h *rowTopK) down(i int) {
	n := len(h.es)
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < n && h.worse(h.es[l], h.es[worst]) {
			worst = l
		}
		if r < n && h.worse(h.es[r], h.es[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		h.es[i], h.es[worst] = h.es[worst], h.es[i]
		i = worst
	}
}

// size reports how many rows the heap currently retains (≤ k).
func (h *rowTopK) size() int { return len(h.es) }

// sorted consumes the heap and returns its entries in ascending sort
// order — the final ORDER BY window before OFFSET trimming.
func (h *rowTopK) sorted() []topkEntry {
	es := h.es
	h.es = nil
	sort.Slice(es, func(i, j int) bool { return h.worse(es[j], es[i]) })
	return es
}

// clone copies the key's storage so it survives scratch reuse; into, when
// non-nil, donates its slices for recycling.
func (k OrderKey) clone(into *OrderKey) OrderKey {
	out := OrderKey{}
	if into != nil {
		out.keys = append(into.keys[:0], k.keys...)
		out.errs = append(into.errs[:0], k.errs...)
		return out
	}
	out.keys = append([]rdf.Term(nil), k.keys...)
	out.errs = append([]bool(nil), k.errs...)
	return out
}

// orderKeyOfRowInto evaluates the ORDER BY conditions on an ID-space row
// into the reusable key storage — the streaming counterpart of the key
// materialization in sortRows.
func (e *idExec) orderKeyOfRowInto(conds []OrderCond, condVars [][]varslot, r []store.ID, k *OrderKey) OrderKey {
	k.keys = k.keys[:0]
	k.errs = k.errs[:0]
	for ci, c := range conds {
		t, err := evalExpr(c.Expr, e.bindScratch(condVars[ci], r))
		k.errs = append(k.errs, err != nil)
		if err != nil {
			t = rdf.Term{}
		}
		k.keys = append(k.keys, t)
	}
	return *k
}

// topKBound returns the heap bound for ORDER BY … LIMIT execution —
// OFFSET folded into k — or -1 when the query has no LIMIT and top-k
// selection does not apply.
func (q *Query) topKBound() int {
	if q.Limit < 0 {
		return -1
	}
	return q.Offset + q.Limit
}

// topKRows replaces the full sort for ORDER BY … LIMIT k in the batch
// engine: the same bounded heap as the streaming operator, fed from a
// materialized rowbuf. Only k rows' keys stay live.
func (e *idExec) topKRows(rb *rowbuf, conds []OrderCond, condVars [][]varslot, k int) *rowbuf {
	h := newRowTopK(conds, k)
	var scratch OrderKey
	for i := 0; i < rb.n; i++ {
		r := rb.row(i)
		h.offer(r, e.orderKeyOfRowInto(conds, condVars, r, &scratch))
	}
	out := &rowbuf{stride: rb.stride, data: make([]store.ID, 0, h.size()*rb.stride)}
	for _, en := range h.sorted() {
		out.add(en.row)
	}
	return out
}
