package sparql

// The ID-space executor. Solution rows are flat []store.ID slices of
// length nslots, packed back to back in a growing arena ([]store.ID with a
// stride), so the join inner loops allocate no per-row maps and compare
// variables with uint32 equality. Joins run as index nested loops over the
// store's sorted posting lists (fully-bound patterns degrade to a binary
// search — a merge against the sorted list), with a hash join taking over
// when a large row set joins a pattern on a single variable. Terms are
// materialized only at projection, FILTER/BIND/ORDER BY expression
// evaluation, and result serialization.

import (
	"sort"
	"time"

	"repro/internal/rdf"
	"repro/internal/store"
)

// rowbuf is a packed set of solution rows: n rows of stride IDs each,
// stored contiguously. The zero ID (store.NoID) marks an unbound slot.
type rowbuf struct {
	data   []store.ID
	stride int
	n      int
}

func (rb *rowbuf) row(i int) []store.ID {
	return rb.data[i*rb.stride : (i+1)*rb.stride]
}

// add appends a copy of r (stride IDs) to the buffer.
func (rb *rowbuf) add(r []store.ID) {
	rb.data = append(rb.data, r...)
	rb.n++
}

// appendAll appends every row of other.
func (rb *rowbuf) appendAll(other *rowbuf) {
	rb.data = append(rb.data, other.data[:other.n*other.stride]...)
	rb.n += other.n
}

// window restricts the buffer to rows [offset, offset+limit); limit < 0
// means unbounded. It mutates the buffer in place.
func (rb *rowbuf) window(offset, limit int) *rowbuf {
	if offset > 0 {
		if offset >= rb.n {
			rb.data, rb.n = nil, 0
			return rb
		}
		rb.data = rb.data[offset*rb.stride:]
		rb.n -= offset
	}
	if limit >= 0 && limit < rb.n {
		rb.data = rb.data[:limit*rb.stride]
		rb.n = limit
	}
	return rb
}

// idExec executes a compiled plan. It owns the executor-local dictionary
// for terms the store has never seen (BIND results, VALUES constants) and
// the scratch buffers reused across the hot loops.
type idExec struct {
	rd       store.ReaderAPI
	maxStore store.ID // highest store-issued ID; larger IDs are local

	local    []rdf.Term // local terms; ID maxStore+1+i
	localIDs map[rdf.Term]store.ID

	nslots  int
	names   []string   // slot → variable name
	scratch Binding    // reusable binding for expression evaluation
	joinRow []store.ID // reusable row assembled during joins

	// prof collects the per-node EXPLAIN profile; nil (the default)
	// keeps every hook to a single pointer check per node invocation.
	prof *profiler
}

func newIDExec(st store.Queryable) *idExec {
	rd := st.Snapshot()
	return &idExec{
		rd:       rd,
		maxStore: rd.MaxID(),
		localIDs: make(map[rdf.Term]store.ID),
		scratch:  make(Binding, 8),
	}
}

// intern returns the unique ID for t: the store's if it knows the term,
// otherwise an executor-local one. Equal terms always map to equal IDs.
func (e *idExec) intern(t rdf.Term) store.ID {
	if id := e.rd.Lookup(t); id != store.NoID {
		return id
	}
	if id, ok := e.localIDs[t]; ok {
		return id
	}
	e.local = append(e.local, t)
	id := e.maxStore + store.ID(len(e.local))
	e.localIDs[t] = id
	return id
}

// term materializes the term for an ID (store or local).
func (e *idExec) term(id store.ID) rdf.Term {
	if id <= e.maxStore {
		return e.rd.Term(id)
	}
	return e.local[id-e.maxStore-1]
}

// bindScratch rebuilds the reusable scratch Binding with the given
// variables taken from row r. The map is cleared and refilled, never
// reallocated, so expression evaluation costs no per-row map allocation.
func (e *idExec) bindScratch(vars []varslot, r []store.ID) Binding {
	b := e.scratch
	for k := range b {
		delete(b, k)
	}
	for _, vs := range vars {
		if id := r[vs.slot]; id != store.NoID {
			b[vs.name] = e.term(id)
		}
	}
	return b
}

// --- pattern evaluation ---

// evalGroup evaluates a compiled group. budget limits the number of rows
// the group needs to produce (LIMIT pushdown); -1 means unlimited. The
// budget only reaches the final join step and only when no filter could
// later drop rows.
func (e *idExec) evalGroup(g *cgroup, in *rowbuf, budget int) *rowbuf {
	rows := in
	if len(g.filters) > 0 {
		budget = -1
	}
	for i, el := range g.elems {
		b := -1
		if i == len(g.elems)-1 {
			b = budget
		}
		if e.prof != nil {
			end := e.prof.node(el, int64(rows.n))
			rows = e.evalNode(el, rows, b)
			end(int64(rows.n))
		} else {
			rows = e.evalNode(el, rows, b)
		}
		if rows.n == 0 {
			break
		}
	}
	if len(g.filters) > 0 && rows.n > 0 {
		var endFilter func(int64)
		if e.prof != nil {
			endFilter = e.prof.filterStep(g, int64(rows.n))
		}
		out := &rowbuf{stride: rows.stride}
		for i := 0; i < rows.n; i++ {
			r := rows.row(i)
			keep := true
			for _, f := range g.filters {
				ok, err := evalBool(f.expr, e.bindScratch(f.vars, r))
				if err != nil || !ok {
					keep = false
					break
				}
			}
			if keep {
				out.add(r)
			}
		}
		rows = out
		if endFilter != nil {
			endFilter(int64(rows.n))
		}
	}
	return rows
}

func (e *idExec) evalNode(n cnode, in *rowbuf, budget int) *rowbuf {
	switch x := n.(type) {
	case *cBGP:
		return e.evalBGP(x, in, budget)
	case *cgroup:
		return e.evalGroup(x, in, budget)
	case *cOptional:
		out := &rowbuf{stride: in.stride}
		one := &rowbuf{stride: in.stride, n: 1}
		for i := 0; i < in.n; i++ {
			r := in.row(i)
			one.data = r
			ext := e.evalGroup(x.inner, one, -1)
			if ext.n == 0 {
				out.add(r)
			} else {
				out.appendAll(ext)
			}
		}
		return out
	case *cUnion:
		l := e.evalGroup(x.left, in, -1)
		r := e.evalGroup(x.right, in, -1)
		out := &rowbuf{stride: in.stride}
		out.appendAll(l)
		out.appendAll(r)
		return out
	case *cMinus:
		empty := &rowbuf{stride: in.stride, data: make([]store.ID, in.stride), n: 1}
		right := e.evalGroup(x.inner, empty, -1)
		out := &rowbuf{stride: in.stride}
		for i := 0; i < in.n; i++ {
			r := in.row(i)
			removed := false
			for j := 0; j < right.n && !removed; j++ {
				rr := right.row(j)
				shared, equal := false, true
				for s := 0; s < in.stride; s++ {
					if r[s] != store.NoID && rr[s] != store.NoID {
						shared = true
						if r[s] != rr[s] {
							equal = false
							break
						}
					}
				}
				removed = shared && equal
			}
			if !removed {
				out.add(r)
			}
		}
		return out
	case *cBind:
		out := &rowbuf{stride: in.stride}
		for i := 0; i < in.n; i++ {
			r := in.row(i)
			nr := e.joinRow[:in.stride]
			copy(nr, r)
			if t, err := evalExpr(x.expr, e.bindScratch(x.vars, r)); err == nil {
				nr[x.slot] = e.intern(t)
			}
			out.add(nr)
		}
		return out
	case *cValues:
		out := &rowbuf{stride: in.stride}
		for i := 0; i < in.n; i++ {
			r := in.row(i)
			for _, vr := range x.rows {
				nr := e.joinRow[:in.stride]
				copy(nr, r)
				ok := true
				for j, slot := range x.slots {
					v := vr[j]
					if v == store.NoID {
						continue // UNDEF
					}
					if cur := nr[slot]; cur != store.NoID {
						if cur != v {
							ok = false
							break
						}
					} else {
						nr[slot] = v
					}
				}
				if ok {
					out.add(nr)
				}
			}
		}
		return out
	}
	return &rowbuf{stride: in.stride}
}

// evalBGP joins the compiled triple patterns with greedy selectivity
// ordering. Cardinality estimates are memoized per pattern and only
// recomputed when the pattern's bound-variable signature changes.
func (e *idExec) evalBGP(b *cBGP, in *rowbuf, budget int) *rowbuf {
	n := len(b.pats)
	if n == 0 {
		return in
	}
	bound := make([]bool, e.nslots)
	if in.n > 0 {
		for s, v := range in.row(0) {
			if v != store.NoID {
				bound[s] = true
			}
		}
	}
	type est struct {
		card  int
		sig   uint8
		valid bool
	}
	ests := make([]est, n)
	used := make([]bool, n)
	order := make([]int, 0, n)
	for len(order) < n {
		first := len(order) == 0
		best, bestCard, bestConn := -1, 0, false
		for i := range b.pats {
			if used[i] {
				continue
			}
			p := &b.pats[i]
			conn := first
			for _, s := range p.slots {
				if bound[s] {
					conn = true
					break
				}
			}
			sig := boundSig(p, bound)
			if !ests[i].valid || ests[i].sig != sig {
				ests[i] = est{card: e.estimate(p, bound), sig: sig, valid: true}
			}
			if best == -1 || (conn && !bestConn) || (conn == bestConn && ests[i].card < bestCard) {
				best, bestCard, bestConn = i, ests[i].card, conn
			}
		}
		used[best] = true
		order = append(order, best)
		for _, s := range b.pats[best].slots {
			bound[s] = true
		}
	}
	rows := in
	for k, idx := range order {
		bgt := -1
		if k == n-1 {
			bgt = budget
		}
		if e.prof != nil {
			end := e.prof.pattern(&b.pats[idx], k+1, int64(rows.n))
			rows = e.joinPattern(&b.pats[idx], rows, bgt)
			end(int64(rows.n))
		} else {
			rows = e.joinPattern(&b.pats[idx], rows, bgt)
		}
		if rows.n == 0 {
			return rows
		}
	}
	return rows
}

// boundSig fingerprints which of the pattern's variable positions are
// bound; the memoized cardinality estimate is invalidated when it changes.
func boundSig(p *cpattern, bound []bool) uint8 {
	var sig uint8
	if p.s.isVar() && bound[p.s.slot] {
		sig |= 1
	}
	if p.p.isVar() && bound[p.p.slot] {
		sig |= 2
	}
	if p.o.isVar() && bound[p.o.slot] {
		sig |= 4
	}
	return sig
}

// estimate returns the expected number of matches of p given the current
// bound set: the exact index cardinality over the constant positions,
// refined by an average-fanout division for every row-bound variable.
func (e *idExec) estimate(p *cpattern, bound []bool) int {
	var pat store.IDPattern
	if !p.s.isVar() {
		pat.S = p.s.id
	}
	if !p.p.isVar() {
		pat.P = p.p.id
	}
	if !p.o.isVar() {
		pat.O = p.o.id
	}
	if pat.S > e.maxStore || pat.P > e.maxStore || pat.O > e.maxStore {
		return 0 // a constant the store has never seen matches nothing
	}
	card := e.rd.CardinalityIDs(pat)
	if card == 0 {
		return 0
	}
	if p.s.isVar() && bound[p.s.slot] {
		card = divClamp(card, e.rd.DistinctSubjects())
	}
	if p.p.isVar() && bound[p.p.slot] {
		card = divClamp(card, e.rd.DistinctPredicates())
	}
	if p.o.isVar() && bound[p.o.slot] {
		card = divClamp(card, e.rd.DistinctObjects())
	}
	return card
}

func divClamp(a, b int) int {
	if b < 1 {
		b = 1
	}
	a /= b
	if a < 1 {
		a = 1
	}
	return a
}

// hashJoinMinRows is the input size above which joining through a hash
// table on the shared variable is considered instead of per-row index
// probes.
const hashJoinMinRows = 64

// joinPattern extends every input row with the matches of p. The inner
// loop works purely on IDs: a fully-bound pattern is a binary search on
// the sorted SPO postings, otherwise the pattern probes the best
// permutation index, and large single-variable joins go through a hash
// table built from one index scan.
func (e *idExec) joinPattern(p *cpattern, in *rowbuf, budget int) *rowbuf {
	out := &rowbuf{stride: in.stride}
	if in.n == 0 {
		return out
	}
	if budget < 0 && in.n >= hashJoinMinRows {
		if hj := e.tryHashJoin(p, in); hj != nil {
			return hj
		}
	}
	for i := 0; i < in.n; i++ {
		r := in.row(i)
		var pat store.IDPattern
		sConc := resolvePos(p.s, r, &pat.S)
		pConc := resolvePos(p.p, r, &pat.P)
		oConc := resolvePos(p.o, r, &pat.O)
		if pat.S > e.maxStore || pat.P > e.maxStore || pat.O > e.maxStore {
			continue // locally-interned term: cannot match the store
		}
		if sConc && pConc && oConc {
			if e.rd.HasID(pat.S, pat.P, pat.O) {
				out.add(r)
				if budget >= 0 && out.n >= budget {
					return out
				}
			}
			continue
		}
		stop := false
		e.rd.MatchIDs(pat, func(s, pp, o store.ID) bool {
			nr := e.joinRow[:in.stride]
			copy(nr, r)
			if bindPos(p.s, s, nr) && bindPos(p.p, pp, nr) && bindPos(p.o, o, nr) {
				out.add(nr)
				if budget >= 0 && out.n >= budget {
					stop = true
					return false
				}
			}
			return true
		})
		if stop {
			break
		}
	}
	return out
}

// resolvePos writes the concrete ID of a pattern position (constant or
// row-bound variable) into dst, reporting whether the position is
// concrete for this row.
func resolvePos(t cterm, r []store.ID, dst *store.ID) bool {
	if !t.isVar() {
		*dst = t.id
		return true
	}
	if v := r[t.slot]; v != store.NoID {
		*dst = v
		return true
	}
	return false
}

// bindPos binds a matched ID into the row, checking repeated-variable
// consistency. Constant positions were already matched by the index.
func bindPos(t cterm, v store.ID, r []store.ID) bool {
	if !t.isVar() {
		return true
	}
	if cur := r[t.slot]; cur != store.NoID {
		return cur == v
	}
	r[t.slot] = v
	return true
}

// tryHashJoin joins in ⋈ p through a hash table on the single shared
// variable. It applies when the pattern has exactly one row-bound
// variable position (bound in every row), every other variable position is
// unbound in every row, and one scan of the pattern is cheaper than
// probing the index once per row. It returns nil when it does not apply.
func (e *idExec) tryHashJoin(p *cpattern, in *rowbuf) *rowbuf {
	terms := [3]cterm{p.s, p.p, p.o}
	var pat store.IDPattern
	patPos := [3]*store.ID{&pat.S, &pat.P, &pat.O}
	joinPos := -1
	var freePos []int
	r0 := in.row(0)
	for i, t := range terms {
		if !t.isVar() {
			if t.id > e.maxStore {
				return &rowbuf{stride: in.stride} // dead constant: no matches
			}
			*patPos[i] = t.id
			continue
		}
		if r0[t.slot] != store.NoID {
			if joinPos >= 0 {
				return nil // two bound positions: existence probes are cheap
			}
			joinPos = i
		} else {
			freePos = append(freePos, i)
		}
	}
	if joinPos < 0 || len(freePos) == 0 {
		return nil
	}
	joinSlot := terms[joinPos].slot
	for _, fi := range freePos {
		if terms[fi].slot == joinSlot {
			return nil
		}
	}
	if len(freePos) == 2 && terms[freePos[0]].slot == terms[freePos[1]].slot {
		return nil // repeated free variable: nested loop handles unification
	}
	// the static classification must hold for every row, not just the first
	for i := 0; i < in.n; i++ {
		r := in.row(i)
		if r[joinSlot] == store.NoID {
			return nil
		}
		for _, fi := range freePos {
			if r[terms[fi].slot] != store.NoID {
				return nil
			}
		}
	}
	scan := e.rd.CardinalityIDs(pat)
	if scan > in.n*8 {
		return nil // building the table would cost more than probing
	}
	w := len(freePos)
	table := make(map[store.ID][]store.ID, scan/2+1)
	var vals [3]store.ID
	e.rd.MatchIDs(pat, func(s, pp, o store.ID) bool {
		vals[0], vals[1], vals[2] = s, pp, o
		jv := vals[joinPos]
		tuple := table[jv]
		for _, fi := range freePos {
			tuple = append(tuple, vals[fi])
		}
		table[jv] = tuple
		return true
	})
	out := &rowbuf{stride: in.stride}
	for i := 0; i < in.n; i++ {
		r := in.row(i)
		tuples := table[r[joinSlot]]
		for k := 0; k < len(tuples); k += w {
			nr := e.joinRow[:in.stride]
			copy(nr, r)
			for j, fi := range freePos {
				nr[terms[fi].slot] = tuples[k+j]
			}
			out.add(nr)
		}
	}
	return out
}

// --- result shaping ---

// distinctRows deduplicates rows on the given slot tuple (a slot of -1
// reads as unbound). Keys are ID tuples — comparable arrays for narrow
// projections, packed bytes otherwise — so no term is materialized.
func (e *idExec) distinctRows(rb *rowbuf, slots []int) *rowbuf {
	out := &rowbuf{stride: rb.stride}
	if len(slots) <= 4 {
		seen := make(map[[4]store.ID]struct{}, rb.n)
		for i := 0; i < rb.n; i++ {
			r := rb.row(i)
			var key [4]store.ID
			for j, s := range slots {
				if s >= 0 {
					key[j] = r[s]
				}
			}
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			out.add(r)
		}
		return out
	}
	seen := make(map[string]struct{}, rb.n)
	buf := make([]byte, 0, len(slots)*4)
	for i := 0; i < rb.n; i++ {
		r := rb.row(i)
		buf = packIDKey(buf[:0], r, slots)
		if _, dup := seen[string(buf)]; dup {
			continue
		}
		seen[string(buf)] = struct{}{}
		out.add(r)
	}
	return out
}

// packIDKey appends the 4-byte little-endian encoding of the row's IDs at
// the given slots (a slot of -1 encodes as NoID) — the tuple key shared by
// ID-space DISTINCT and GROUP BY.
func packIDKey(buf []byte, r []store.ID, slots []int) []byte {
	for _, s := range slots {
		var v store.ID
		if s >= 0 {
			v = r[s]
		}
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return buf
}

// sortRows orders the rows by the ORDER BY conditions, materializing one
// key term per (row, condition) — the boundary where terms are needed.
// The flat key storage is viewed as one OrderKey per row so the
// comparison is CompareOrderKeys, shared with sortSolutions and the
// federated ordered merge — the three sorts cannot drift apart.
func (e *idExec) sortRows(rb *rowbuf, conds []OrderCond, condVars [][]varslot) {
	nc := len(conds)
	keys := make([]rdf.Term, rb.n*nc)
	errs := make([]bool, rb.n*nc)
	oks := make([]OrderKey, rb.n)
	for i := 0; i < rb.n; i++ {
		r := rb.row(i)
		for ci, c := range conds {
			t, err := evalExpr(c.Expr, e.bindScratch(condVars[ci], r))
			if err != nil {
				errs[i*nc+ci] = true
			} else {
				keys[i*nc+ci] = t
			}
		}
		oks[i] = OrderKey{keys: keys[i*nc : (i+1)*nc], errs: errs[i*nc : (i+1)*nc]}
	}
	idx := make([]int, rb.n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return CompareOrderKeys(conds, oks[idx[a]], oks[idx[b]]) < 0
	})
	sorted := make([]store.ID, 0, rb.n*rb.stride)
	for _, i := range idx {
		sorted = append(sorted, rb.row(i)...)
	}
	rb.data = sorted
}

// materializeAll converts rows into Bindings over every bound variable —
// the serialization boundary.
func (e *idExec) materializeAll(rb *rowbuf) []Binding {
	out := make([]Binding, rb.n)
	for i := 0; i < rb.n; i++ {
		r := rb.row(i)
		b := make(Binding, rb.stride)
		for s, v := range r {
			if v != store.NoID {
				b[e.names[s]] = e.term(v)
			}
		}
		out[i] = b
	}
	return out
}

// materializeProj converts rows into Bindings restricted to the projected
// variables (slot -1 = never bound).
func (e *idExec) materializeProj(rb *rowbuf, vars []string, slots []int) []Binding {
	out := make([]Binding, rb.n)
	for i := 0; i < rb.n; i++ {
		r := rb.row(i)
		b := make(Binding, len(vars))
		for j, s := range slots {
			if s >= 0 && r[s] != store.NoID {
				b[vars[j]] = e.term(r[s])
			}
		}
		out[i] = b
	}
	return out
}

// --- query execution over the compiled plan ---

// aliasProj is a compiled (expr AS ?var) projection element.
type aliasProj struct {
	expr Expression
	vars []varslot
	slot int
}

// freeze finalizes the slot table: no variable may be assigned a slot
// after this.
func (e *idExec) freeze(comp *compiler) {
	e.nslots = comp.slots.count()
	e.names = comp.slots.names
	e.joinRow = make([]store.ID, e.nslots)
}

// resolveSelect resolves ORDER BY references and projection aliases,
// freezes the slot table, and computes the projected variable list and
// slots — the projection surface shared by the batch (execID) and
// streaming (Stream) non-grouped SELECT paths, kept in one place so the
// two cannot drift apart.
func (q *Query) resolveSelect(comp *compiler, ex *idExec) (aliases []aliasProj, vars []string, projSlots []int, obVars [][]varslot) {
	for _, c := range q.OrderBy {
		obVars = append(obVars, comp.exprVars(c.Expr))
	}
	for _, it := range q.Select {
		if it.Expr != nil {
			aliases = append(aliases, aliasProj{expr: it.Expr, vars: comp.exprVars(it.Expr), slot: comp.slots.slot(it.Var)})
		}
	}
	ex.freeze(comp)
	if q.Star {
		vars = q.starVars()
	} else {
		vars = make([]string, len(q.Select))
		for i, it := range q.Select {
			vars[i] = it.Var
		}
	}
	projSlots = make([]int, len(vars))
	for i, v := range vars {
		projSlots[i] = comp.slots.lookup(v)
	}
	return aliases, vars, projSlots, obVars
}

// execID runs the query through the ID-space engine.
func (q *Query) execID(st store.Queryable) (*Result, error) {
	return q.execIDProf(st, nil)
}

// execIDProf is execID with an optional EXPLAIN profiler attached: prof
// (when non-nil) receives the planning time, the annotated plan tree and
// the top-level stage sequence.
func (q *Query) execIDProf(st store.Queryable, prof *profiler) (*Result, error) {
	ex := newIDExec(st)
	ex.prof = prof
	comp := &compiler{ex: ex, slots: newSlotmap()}
	var planT0 time.Time
	if prof != nil {
		planT0 = time.Now()
	}
	root, err := comp.group(q.Where)
	if err != nil {
		return nil, err
	}

	needsGroup := q.needsGrouping()

	var aliases []aliasProj
	var vars []string
	var projSlots []int
	var obVars [][]varslot
	if q.Form == FormSelect && !needsGroup {
		aliases, vars, projSlots, obVars = q.resolveSelect(comp, ex)
	} else {
		ex.freeze(comp)
	}
	if prof != nil {
		prof.planNs = time.Since(planT0).Nanoseconds()
		prof.build(root, ex)
	}

	// LIMIT pushdown for modifier-free evaluation: nothing downstream can
	// reorder or drop rows, so the final join may stop early.
	budget := -1
	switch {
	case q.Form == FormAsk:
		budget = 1
	case q.Form == FormConstruct && q.Limit >= 0:
		budget = q.Offset + q.Limit
	case q.Form == FormSelect && q.Limit >= 0 && !needsGroup &&
		len(q.OrderBy) == 0 && !q.Distinct && !q.Reduced:
		budget = q.Offset + q.Limit
	}

	in := &rowbuf{stride: ex.nslots, data: make([]store.ID, ex.nslots), n: 1}
	endWhere := prof.stage("where", int64(in.n))
	rows := ex.evalGroup(root, in, budget)
	endWhere(int64(rows.n))

	if q.Form == FormAsk {
		return &Result{Ask: true, Boolean: rows.n > 0}, nil
	}
	if q.Form == FormConstruct {
		end := prof.stage("construct", int64(rows.n))
		rows = rows.window(q.Offset, q.Limit)
		g := q.execConstruct(ex.materializeAll(rows))
		end(int64(g.Len()))
		return &Result{Graph: g}, nil
	}

	if needsGroup {
		// Index-extraction style GROUP BY ?key / COUNT queries group on ID
		// tuples without materializing a single solution; anything richer
		// (SUM, HAVING, expression keys, …) computes fresh terms per group
		// and runs at the term boundary over materialized solutions, like
		// the legacy path.
		endAgg := prof.stage("aggregate", int64(rows.n))
		vars, out, ok := q.aggFastPath(ex, comp, rows)
		if !ok {
			sols := ex.materializeAll(rows)
			var err error
			vars, out, err = q.aggregate(sols)
			if err != nil {
				return nil, err
			}
		}
		endAgg(int64(len(out)))
		if len(q.OrderBy) > 0 {
			end := prof.stage("order-by", int64(len(out)))
			sortSolutions(out, q.OrderBy)
			end(int64(len(out)))
		}
		if q.Distinct || q.Reduced {
			end := prof.stage("distinct", int64(len(out)))
			out = distinct(out, vars)
			end(int64(len(out)))
		}
		endWin := prof.stage("window", int64(len(out)))
		out = windowBindings(out, q.Offset, q.Limit)
		endWin(int64(len(out)))
		return &Result{Vars: vars, Rows: out}, nil
	}

	// Projection aliases are evaluated against the pre-alias row (aliases
	// cannot see each other), then written into their slots.
	if len(aliases) > 0 {
		end := prof.stage("aliases", int64(rows.n))
		tmp := make([]store.ID, len(aliases))
		for i := 0; i < rows.n; i++ {
			r := rows.row(i)
			for j, a := range aliases {
				tmp[j] = store.NoID
				if t, err := evalExpr(a.expr, ex.bindScratch(a.vars, r)); err == nil {
					tmp[j] = ex.intern(t)
				}
			}
			for j, a := range aliases {
				if tmp[j] != store.NoID {
					r[a.slot] = tmp[j]
				}
			}
		}
		end(int64(rows.n))
	}
	if len(q.OrderBy) > 0 {
		if k := q.topKBound(); k >= 0 && !q.Distinct && !q.Reduced {
			// ORDER BY … LIMIT: bounded top-k selection instead of the
			// full sort — only OFFSET+LIMIT rows are ever retained, and
			// DISTINCT is excluded because deduplication after the heap
			// could shrink the window below k.
			end := prof.stage("top-k", int64(rows.n))
			rows = ex.topKRows(rows, q.OrderBy, obVars, k)
			end(int64(rows.n))
		} else {
			end := prof.stage("order-by", int64(rows.n))
			ex.sortRows(rows, q.OrderBy, obVars)
			end(int64(rows.n))
		}
	}

	if q.Distinct || q.Reduced {
		end := prof.stage("distinct", int64(rows.n))
		rows = ex.distinctRows(rows, projSlots)
		end(int64(rows.n))
	}
	endWin := prof.stage("window", int64(rows.n))
	rows = rows.window(q.Offset, q.Limit)
	endWin(int64(rows.n))
	endProj := prof.stage("project", int64(rows.n))
	var out []Binding
	if q.Star {
		// SELECT * keeps every bound variable, like the term-space path.
		out = ex.materializeAll(rows)
	} else {
		out = ex.materializeProj(rows, vars, projSlots)
	}
	endProj(int64(len(out)))
	return &Result{Vars: vars, Rows: out}, nil
}

// aggFastPath evaluates GROUP BY / COUNT queries entirely in ID space:
// group keys are plain variables (ID tuples) and every projection is a
// group key or a plain COUNT. It reports false when the query needs the
// general term-space aggregation.
func (q *Query) aggFastPath(ex *idExec, comp *compiler, rows *rowbuf) ([]string, []Binding, bool) {
	if len(q.Having) > 0 {
		return nil, nil, false
	}
	gslots := make([]int, len(q.GroupBy))
	gkey := map[string]bool{}
	for i, ge := range q.GroupBy {
		v, ok := ge.(*ExprVar)
		if !ok {
			return nil, nil, false
		}
		gslots[i] = comp.slots.lookup(v.Name)
		gkey[v.Name] = true
	}
	// projections: group-key variable, COUNT(*) or COUNT(?v)
	type proj struct {
		isKey     bool
		keySlot   int // group-key variable slot; -1 when never bound
		countSlot int // ≥0 counts bound ?v, -1 counts rows, -2 counts nothing
	}
	projs := make([]proj, len(q.Select))
	vars := make([]string, len(q.Select))
	for i, it := range q.Select {
		vars[i] = it.Var
		if it.Expr == nil {
			if !gkey[it.Var] {
				return nil, nil, false // sampling non-key vars: slow path
			}
			projs[i] = proj{isKey: true, keySlot: comp.slots.lookup(it.Var), countSlot: -2}
			continue
		}
		if it.Var == "" {
			return nil, nil, false // missing AS: slow path raises the error
		}
		agg, ok := it.Expr.(*ExprAggregate)
		if !ok || agg.Fn != "COUNT" || agg.Distinct {
			return nil, nil, false
		}
		p := proj{keySlot: -1, countSlot: -1}
		if agg.Arg != nil {
			av, ok := agg.Arg.(*ExprVar)
			if !ok {
				return nil, nil, false
			}
			if p.countSlot = comp.slots.lookup(av.Name); p.countSlot < 0 {
				p.countSlot = -2 // variable never bound: counts zero
			}
		}
		projs[i] = p
	}

	type group struct {
		rep    []store.ID // representative row (group-key slots)
		counts []int      // one per projection
	}
	var order []*group
	nproj := len(projs)
	tally := func(g *group, r []store.ID) {
		for pi, p := range projs {
			switch {
			case p.isKey:
			case p.countSlot == -1:
				g.counts[pi]++
			case p.countSlot >= 0 && r[p.countSlot] != store.NoID:
				g.counts[pi]++
			}
		}
	}
	if len(q.GroupBy) == 0 {
		g := &group{counts: make([]int, nproj)}
		order = append(order, g)
		for i := 0; i < rows.n; i++ {
			tally(g, rows.row(i))
		}
	} else {
		groups := map[string]*group{}
		buf := make([]byte, 0, len(gslots)*4)
		for i := 0; i < rows.n; i++ {
			r := rows.row(i)
			buf = packIDKey(buf[:0], r, gslots)
			g, ok := groups[string(buf)]
			if !ok {
				g = &group{rep: r, counts: make([]int, nproj)}
				groups[string(buf)] = g
				order = append(order, g)
			}
			tally(g, r)
		}
	}

	out := make([]Binding, 0, len(order))
	for _, g := range order {
		b := make(Binding, nproj)
		for pi, p := range projs {
			if p.isKey {
				if p.keySlot >= 0 && g.rep != nil && g.rep[p.keySlot] != store.NoID {
					b[vars[pi]] = ex.term(g.rep[p.keySlot])
				}
				continue
			}
			b[vars[pi]] = rdf.NewInteger(int64(g.counts[pi]))
		}
		out = append(out, b)
	}
	return vars, out, true
}

func windowBindings(rows []Binding, offset, limit int) []Binding {
	if offset > 0 {
		if offset >= len(rows) {
			rows = nil
		} else {
			rows = rows[offset:]
		}
	}
	if limit >= 0 && limit < len(rows) {
		rows = rows[:limit]
	}
	return rows
}
