// Package sparql implements a SPARQL 1.1 subset sufficient for every query
// H-BOLD issues: SELECT, ASK and CONSTRUCT forms, basic graph patterns,
// OPTIONAL, UNION, MINUS, FILTER with the common builtin functions
// (including REGEX, which the Listing 1 portal query relies on), BIND,
// VALUES, DISTINCT, GROUP BY with aggregates, HAVING, ORDER BY, LIMIT and
// OFFSET.
//
// The engine is algebraic: Parse produces an AST, and evaluation walks the
// pattern tree against a store.Store with selectivity-ordered BGP joins.
package sparql

import (
	"fmt"
	"strings"
)

type tokenKind uint8

const (
	tokEOF     tokenKind = iota
	tokIRI               // <...>
	tokPName             // prefix:local or prefix: or :local
	tokVar               // ?x or $x
	tokString            // "..." or '...'
	tokNumber            // integer/decimal/double literal
	tokKeyword           // SELECT, WHERE, FILTER, ... (upper-cased)
	tokBlank             // _:label
	tokPunct             // { } ( ) . ; , * / + - = != < > <= >= && || ! ^^ @tag
	tokA                 // the 'a' keyword
)

type token struct {
	kind tokenKind
	text string // keyword text upper-cased; punct literal; var without sigil
	// number metadata
	numKind string // "integer", "decimal", "double"
	line    int
}

func (t token) String() string {
	return fmt.Sprintf("%q", t.text)
}

var keywords = map[string]bool{
	"SELECT": true, "ASK": true, "CONSTRUCT": true, "WHERE": true,
	"PREFIX": true, "BASE": true,
	"FILTER": true, "OPTIONAL": true, "UNION": true, "MINUS": true,
	"BIND": true, "VALUES": true, "AS": true, "DISTINCT": true,
	"REDUCED": true, "ORDER": true, "BY": true, "GROUP": true,
	"HAVING": true, "LIMIT": true, "OFFSET": true, "ASC": true, "DESC": true,
	"UNDEF": true, "TRUE": true, "FALSE": true, "IN": true, "NOT": true,
	// builtins are lexed as keywords too
	"REGEX": true, "STR": true, "LANG": true, "LANGMATCHES": true,
	"DATATYPE": true, "BOUND": true, "IRI": true, "URI": true,
	"ISIRI": true, "ISURI": true, "ISBLANK": true, "ISLITERAL": true,
	"ISNUMERIC": true, "STRLEN": true, "UCASE": true, "LCASE": true,
	"CONTAINS": true, "STRSTARTS": true, "STRENDS": true, "CONCAT": true,
	"REPLACE": true, "ABS": true, "CEIL": true, "FLOOR": true, "ROUND": true,
	"COALESCE": true, "IF": true, "SAMETERM": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"SAMPLE": true, "GROUP_CONCAT": true, "SEPARATOR": true,
	// SPARQL 1.1 Update
	"INSERT": true, "DELETE": true, "DATA": true,
}

type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	if err := l.run(); err != nil {
		return nil, err
	}
	l.toks = append(l.toks, token{kind: tokEOF, line: l.line})
	return l.toks, nil
}

func (l *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("sparql: line %d: %s", l.line, fmt.Sprintf(format, args...))
}

func (l *lexer) emit(k tokenKind, text string) {
	l.toks = append(l.toks, token{kind: k, text: text, line: l.line})
}

func (l *lexer) run() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '\n':
			l.line++
			l.pos++
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '<':
			if err := l.lexAngle(); err != nil {
				return err
			}
		case c == '?' || c == '$':
			l.pos++
			start := l.pos
			for l.pos < len(l.src) && isNameChar(l.src[l.pos]) {
				l.pos++
			}
			if l.pos == start {
				return l.errf("empty variable name")
			}
			l.emit(tokVar, l.src[start:l.pos])
		case c == '"' || c == '\'':
			s, err := l.lexString(c)
			if err != nil {
				return err
			}
			l.emit(tokString, s)
		case c >= '0' && c <= '9':
			l.lexNumber(false)
		case c == '_' && l.pos+1 < len(l.src) && l.src[l.pos+1] == ':':
			l.pos += 2
			start := l.pos
			for l.pos < len(l.src) && isNameChar(l.src[l.pos]) {
				l.pos++
			}
			l.emit(tokBlank, l.src[start:l.pos])
		case c == '@':
			l.pos++
			start := l.pos
			for l.pos < len(l.src) && (isAlpha(l.src[l.pos]) || l.src[l.pos] == '-') {
				l.pos++
			}
			l.emit(tokPunct, "@"+l.src[start:l.pos])
		case isAlpha(c):
			l.lexWord()
		case c == ':':
			// PName with empty prefix
			l.lexPNameLocal("")
		default:
			if err := l.lexPunct(); err != nil {
				return err
			}
		}
	}
	return nil
}

// lexAngle distinguishes IRI references from the '<', '<=' operators.
func (l *lexer) lexAngle() error {
	rest := l.src[l.pos+1:]
	if strings.HasPrefix(rest, "=") {
		l.emit(tokPunct, "<=")
		l.pos += 2
		return nil
	}
	// An IRIREF contains no whitespace and closes with '>'.
	for i := 0; i < len(rest); i++ {
		switch rest[i] {
		case '>':
			l.emit(tokIRI, rest[:i])
			l.pos += i + 2
			return nil
		case ' ', '\t', '\n', '\r', '<', '"':
			l.emit(tokPunct, "<")
			l.pos++
			return nil
		}
	}
	l.emit(tokPunct, "<")
	l.pos++
	return nil
}

func (l *lexer) lexString(quote byte) (string, error) {
	long := strings.HasPrefix(l.src[l.pos:], strings.Repeat(string(quote), 3))
	var b strings.Builder
	if long {
		l.pos += 3
		closer := strings.Repeat(string(quote), 3)
		for {
			if l.pos >= len(l.src) {
				return "", l.errf("unterminated long string")
			}
			if strings.HasPrefix(l.src[l.pos:], closer) {
				l.pos += 3
				return b.String(), nil
			}
			if l.src[l.pos] == '\n' {
				l.line++
			}
			if l.src[l.pos] == '\\' {
				r, err := l.unescape()
				if err != nil {
					return "", err
				}
				b.WriteRune(r)
				continue
			}
			b.WriteByte(l.src[l.pos])
			l.pos++
		}
	}
	l.pos++ // opening quote
	for {
		if l.pos >= len(l.src) {
			return "", l.errf("unterminated string")
		}
		c := l.src[l.pos]
		switch c {
		case quote:
			l.pos++
			return b.String(), nil
		case '\\':
			r, err := l.unescape()
			if err != nil {
				return "", err
			}
			b.WriteRune(r)
		case '\n':
			return "", l.errf("newline in string")
		default:
			b.WriteByte(c)
			l.pos++
		}
	}
}

func (l *lexer) unescape() (rune, error) {
	l.pos++
	if l.pos >= len(l.src) {
		return 0, l.errf("dangling escape")
	}
	c := l.src[l.pos]
	l.pos++
	switch c {
	case 't':
		return '\t', nil
	case 'n':
		return '\n', nil
	case 'r':
		return '\r', nil
	case '"':
		return '"', nil
	case '\'':
		return '\'', nil
	case '\\':
		return '\\', nil
	case 'u':
		if l.pos+4 > len(l.src) {
			return 0, l.errf("truncated \\u escape")
		}
		var v rune
		for i := 0; i < 4; i++ {
			d := l.src[l.pos+i]
			v <<= 4
			switch {
			case d >= '0' && d <= '9':
				v |= rune(d - '0')
			case d >= 'a' && d <= 'f':
				v |= rune(d-'a') + 10
			case d >= 'A' && d <= 'F':
				v |= rune(d-'A') + 10
			default:
				return 0, l.errf("bad \\u escape")
			}
		}
		l.pos += 4
		return v, nil
	}
	return 0, l.errf("unknown escape \\%c", c)
}

func (l *lexer) lexNumber(negative bool) {
	start := l.pos
	kind := "integer"
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.pos++
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]) {
		kind = "decimal"
		l.pos++
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
	}
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		kind = "double"
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
			l.pos++
		}
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
	}
	text := l.src[start:l.pos]
	if negative {
		text = "-" + text
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: text, numKind: kind, line: l.line})
}

func (l *lexer) lexWord() {
	start := l.pos
	for l.pos < len(l.src) && (isNameChar(l.src[l.pos])) {
		l.pos++
	}
	word := l.src[start:l.pos]
	// prefixed name?
	if l.pos < len(l.src) && l.src[l.pos] == ':' {
		l.lexPNameLocal(word)
		return
	}
	upper := strings.ToUpper(word)
	if word == "a" {
		l.emit(tokA, "a")
		return
	}
	if keywords[upper] {
		l.emit(tokKeyword, upper)
		return
	}
	// bare word: treat as keyword-ish error later; emit as keyword text
	l.emit(tokKeyword, upper)
}

func (l *lexer) lexPNameLocal(prefix string) {
	l.pos++ // ':'
	start := l.pos
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if isNameChar(c) || c == '-' {
			l.pos++
			continue
		}
		if c == '.' && l.pos+1 < len(l.src) && isNameChar(l.src[l.pos+1]) {
			l.pos++
			continue
		}
		break
	}
	l.emit(tokPName, prefix+":"+l.src[start:l.pos])
}

func (l *lexer) lexPunct() error {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "!=", ">=", "&&", "||", "^^":
		l.emit(tokPunct, two)
		l.pos += 2
		return nil
	}
	c := l.src[l.pos]
	switch c {
	case '{', '}', '(', ')', '.', ';', ',', '*', '/', '+', '-', '=', '>', '!', '[', ']':
		l.emit(tokPunct, string(c))
		l.pos++
		return nil
	}
	return l.errf("unexpected character %q", c)
}

func isAlpha(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isNameChar(c byte) bool { return isAlpha(c) || isDigit(c) || c >= 0x80 }
