package sparql_test

// RowSeq adapter error paths: a mid-stream producer failure must stay
// visible through every adapter (Collect, Limit, Tap) and never be
// laundered into a clean-looking short result, and Close must be safe
// to call twice at any point in an adapter chain.

import (
	"errors"
	"fmt"
	"iter"
	"testing"

	"repro/internal/sparql"
)

var errMidStream = errors.New("producer failed mid-stream")

// failingSeq yields ok rows and then fails.
func failingSeq(ok int) *sparql.RowSeq {
	var streamErr error
	seq := func(yield func(sparql.Binding) bool) {
		for i := 0; i < ok; i++ {
			if !yield(sparql.Binding{}) {
				return
			}
		}
		streamErr = errMidStream
	}
	return sparql.NewRowSeq([]string{"x"}, iter.Seq[sparql.Binding](seq), &streamErr)
}

func TestCollectPropagatesMidStreamError(t *testing.T) {
	res, err := failingSeq(3).Collect()
	if !errors.Is(err, errMidStream) {
		t.Fatalf("Collect err = %v, want errMidStream", err)
	}
	if res != nil {
		t.Fatalf("Collect returned a result (%d rows) alongside the error", len(res.Rows))
	}
}

func TestLimitPropagatesMidStreamError(t *testing.T) {
	// failure before the cap: the limited stream must report it
	rs := failingSeq(3).Limit(10)
	n := 0
	for range rs.All() {
		n++
	}
	if n != 3 {
		t.Fatalf("rows before failure = %d, want 3", n)
	}
	if !errors.Is(rs.Err(), errMidStream) {
		t.Fatalf("Limit Err = %v, want errMidStream", rs.Err())
	}

	// cap before the failure: the limited stream ends cleanly
	rs = failingSeq(3).Limit(2)
	n = 0
	for range rs.All() {
		n++
	}
	if n != 2 || rs.Err() != nil {
		t.Fatalf("rows = %d, err = %v; want 2 rows, nil error", n, rs.Err())
	}
}

func TestTapPropagatesMidStreamError(t *testing.T) {
	tapped := 0
	rs := failingSeq(3).Tap(func(sparql.Binding) { tapped++ })
	for range rs.All() {
	}
	if tapped != 3 {
		t.Fatalf("tapped %d rows, want 3", tapped)
	}
	if !errors.Is(rs.Err(), errMidStream) {
		t.Fatalf("Tap Err = %v, want errMidStream", rs.Err())
	}
}

func TestAdapterChainPropagatesMidStreamError(t *testing.T) {
	// the full chain: failure travels Tap → Limit → Collect
	rs := failingSeq(5).Tap(func(sparql.Binding) {}).Limit(10)
	if _, err := rs.Collect(); !errors.Is(err, errMidStream) {
		t.Fatalf("chained Collect err = %v, want errMidStream", err)
	}
}

// TestAdapterDoubleCloseSafe: Close twice, at several points in the
// consumption, for each adapter — no panic, no further rows, and the
// producer's OnClose fires exactly once.
func TestAdapterDoubleCloseSafe(t *testing.T) {
	shapes := map[string]func(*sparql.RowSeq) *sparql.RowSeq{
		"plain": func(rs *sparql.RowSeq) *sparql.RowSeq { return rs },
		"limit": func(rs *sparql.RowSeq) *sparql.RowSeq { return rs.Limit(5) },
		"tap":   func(rs *sparql.RowSeq) *sparql.RowSeq { return rs.Tap(func(sparql.Binding) {}) },
		"chain": func(rs *sparql.RowSeq) *sparql.RowSeq {
			return rs.Tap(func(sparql.Binding) {}).Limit(5)
		},
	}
	for name, wrap := range shapes {
		for _, pulls := range []int{0, 2} {
			t.Run(fmt.Sprintf("%s/pulls=%d", name, pulls), func(t *testing.T) {
				inner := failingSeq(10)
				closed := 0
				inner.OnClose(func() { closed++ })
				rs := wrap(inner)
				for i := 0; i < pulls; i++ {
					if _, ok := rs.Next(); !ok {
						t.Fatal("stream ended early")
					}
				}
				rs.Close()
				rs.Close()
				if _, ok := rs.Next(); ok {
					t.Fatal("Next after Close yielded a row")
				}
				if closed != 1 {
					t.Fatalf("producer OnClose ran %d times, want 1", closed)
				}
			})
		}
	}
}

// TestCollectAfterCloseIsEmpty: a closed stream collects to an empty
// result, not a hang or panic.
func TestCollectAfterCloseIsEmpty(t *testing.T) {
	rs := failingSeq(10)
	rs.Close()
	res, err := rs.Collect()
	if err != nil {
		t.Fatalf("Collect after Close err = %v", err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("Collect after Close returned %d rows", len(res.Rows))
	}
}
