package sparql

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
	"repro/internal/turtle"
)

const fixture = `
@prefix ex: <http://ex/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
ex:alice a ex:Person ; rdfs:label "Alice" ; ex:age 30 ; ex:knows ex:bob, ex:carol .
ex:bob   a ex:Person ; rdfs:label "Bob"   ; ex:age 25 ; ex:knows ex:carol .
ex:carol a ex:Person ; rdfs:label "Carol" ; ex:age 35 .
ex:conf  a ex:Event  ; rdfs:label "EDBT"  ; ex:year 2020 ; ex:organizedBy ex:alice .
ex:ws    a ex:Event  ; rdfs:label "Workshop"@en ; ex:year 2019 .
`

func fixtureStore(t testing.TB) *store.Store {
	t.Helper()
	g, err := turtle.Parse(fixture)
	if err != nil {
		t.Fatal(err)
	}
	return store.FromGraph(g)
}

func exec(t testing.TB, st *store.Store, q string) *Result {
	t.Helper()
	res, err := Exec(st, q)
	if err != nil {
		t.Fatalf("Exec(%s): %v", q, err)
	}
	return res
}

func TestSelectSimple(t *testing.T) {
	st := fixtureStore(t)
	res := exec(t, st, `PREFIX ex: <http://ex/> SELECT ?p WHERE { ?p a ex:Person }`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	if len(res.Vars) != 1 || res.Vars[0] != "p" {
		t.Fatalf("vars = %v", res.Vars)
	}
}

func TestSelectStar(t *testing.T) {
	st := fixtureStore(t)
	res := exec(t, st, `PREFIX ex: <http://ex/> SELECT * WHERE { ?s ex:knows ?o }`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	if len(res.Vars) != 2 {
		t.Fatalf("vars = %v", res.Vars)
	}
}

func TestJoinTwoPatterns(t *testing.T) {
	st := fixtureStore(t)
	res := exec(t, st, `PREFIX ex: <http://ex/>
		SELECT ?a ?b WHERE { ?a ex:knows ?b . ?b ex:knows ?c }`)
	// alice knows bob (bob knows carol) → 1 row
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1: %v", len(res.Rows), res.Rows)
	}
	r := res.Rows[0]
	if r["a"].LocalName() != "alice" || r["b"].LocalName() != "bob" {
		t.Fatalf("row = %v", r)
	}
}

func TestRepeatedVariableUnification(t *testing.T) {
	st := store.New()
	a := rdf.NewIRI("http://ex/a")
	b := rdf.NewIRI("http://ex/b")
	p := rdf.NewIRI("http://ex/p")
	st.AddSPO(a, p, a) // self loop
	st.AddSPO(a, p, b)
	res := exec(t, st, `SELECT ?x WHERE { ?x <http://ex/p> ?x }`)
	if len(res.Rows) != 1 || res.Rows[0]["x"] != a {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestFilterComparison(t *testing.T) {
	st := fixtureStore(t)
	res := exec(t, st, `PREFIX ex: <http://ex/>
		SELECT ?p WHERE { ?p ex:age ?a FILTER(?a > 28) }`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
}

func TestFilterRegex(t *testing.T) {
	st := fixtureStore(t)
	res := exec(t, st, `PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
		SELECT ?s WHERE { ?s rdfs:label ?l FILTER regex(?l, "^A") }`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
}

func TestFilterRegexCaseInsensitive(t *testing.T) {
	st := fixtureStore(t)
	res := exec(t, st, `PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
		SELECT ?s WHERE { ?s rdfs:label ?l FILTER regex(?l, "aLiCe", "i") }`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
}

func TestFilterOnIRIWithRegexStr(t *testing.T) {
	st := fixtureStore(t)
	// the Listing 1 idiom: regex over an IRI-valued variable
	res := exec(t, st, `PREFIX ex: <http://ex/>
		SELECT ?s WHERE { ?s a ex:Person FILTER regex(?s, "alice") }`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
}

func TestOptional(t *testing.T) {
	st := fixtureStore(t)
	res := exec(t, st, `PREFIX ex: <http://ex/>
		SELECT ?p ?k WHERE { ?p a ex:Person OPTIONAL { ?p ex:knows ?k } }`)
	// alice×2, bob×1, carol×1(unbound k)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	unbound := 0
	for _, r := range res.Rows {
		if _, ok := r["k"]; !ok {
			unbound++
		}
	}
	if unbound != 1 {
		t.Fatalf("unbound k rows = %d, want 1", unbound)
	}
}

func TestUnion(t *testing.T) {
	st := fixtureStore(t)
	res := exec(t, st, `PREFIX ex: <http://ex/>
		SELECT ?x WHERE { { ?x a ex:Person } UNION { ?x a ex:Event } }`)
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(res.Rows))
	}
}

func TestMinus(t *testing.T) {
	st := fixtureStore(t)
	res := exec(t, st, `PREFIX ex: <http://ex/>
		SELECT ?p WHERE { ?p a ex:Person MINUS { ?p ex:knows ex:carol } }`)
	// alice and bob know carol → only carol remains
	if len(res.Rows) != 1 || res.Rows[0]["p"].LocalName() != "carol" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestBind(t *testing.T) {
	st := fixtureStore(t)
	res := exec(t, st, `PREFIX ex: <http://ex/>
		SELECT ?p ?a2 WHERE { ?p ex:age ?a BIND(?a * 2 AS ?a2) }`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if _, ok := r["a2"]; !ok {
			t.Fatalf("a2 unbound in %v", r)
		}
	}
}

func TestValuesInline(t *testing.T) {
	st := fixtureStore(t)
	res := exec(t, st, `PREFIX ex: <http://ex/>
		SELECT ?p ?a WHERE { VALUES ?p { ex:alice ex:bob } ?p ex:age ?a }`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
}

func TestValuesMultiVarWithUndef(t *testing.T) {
	st := fixtureStore(t)
	res := exec(t, st, `PREFIX ex: <http://ex/>
		SELECT ?p ?a WHERE { ?p ex:age ?a VALUES (?p ?a) { (ex:alice UNDEF) (UNDEF 25) } }`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2: %v", len(res.Rows), res.Rows)
	}
}

func TestDistinct(t *testing.T) {
	st := fixtureStore(t)
	res := exec(t, st, `PREFIX ex: <http://ex/>
		SELECT DISTINCT ?c WHERE { ?s a ?c }`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
}

func TestOrderByLimitOffset(t *testing.T) {
	st := fixtureStore(t)
	res := exec(t, st, `PREFIX ex: <http://ex/>
		SELECT ?p ?a WHERE { ?p ex:age ?a } ORDER BY DESC(?a) LIMIT 2 OFFSET 1`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	if res.Rows[0]["p"].LocalName() != "alice" { // 35,30,25 → offset 1 → 30
		t.Fatalf("first = %v", res.Rows[0])
	}
	if res.Rows[1]["p"].LocalName() != "bob" {
		t.Fatalf("second = %v", res.Rows[1])
	}
}

func TestOrderByAscVariable(t *testing.T) {
	st := fixtureStore(t)
	res := exec(t, st, `PREFIX ex: <http://ex/>
		SELECT ?p WHERE { ?p ex:age ?a } ORDER BY ?a`)
	if res.Rows[0]["p"].LocalName() != "bob" {
		t.Fatalf("first = %v", res.Rows[0])
	}
}

func TestCountStar(t *testing.T) {
	st := fixtureStore(t)
	res := exec(t, st, `SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	n, _ := res.Rows[0]["n"].Int()
	if int(n) != st.Len() {
		t.Fatalf("COUNT(*) = %d, want %d", n, st.Len())
	}
}

func TestCountDistinct(t *testing.T) {
	st := fixtureStore(t)
	res := exec(t, st, `SELECT (COUNT(DISTINCT ?c) AS ?n) WHERE { ?s a ?c }`)
	n, _ := res.Rows[0]["n"].Int()
	if n != 2 {
		t.Fatalf("COUNT(DISTINCT) = %d, want 2", n)
	}
}

func TestGroupByWithAggregates(t *testing.T) {
	st := fixtureStore(t)
	res := exec(t, st, `PREFIX ex: <http://ex/>
		SELECT ?c (COUNT(?s) AS ?n) WHERE { ?s a ?c } GROUP BY ?c ORDER BY DESC(?n)`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	if res.Rows[0]["c"].LocalName() != "Person" {
		t.Fatalf("top class = %v", res.Rows[0])
	}
	n, _ := res.Rows[0]["n"].Int()
	if n != 3 {
		t.Fatalf("Person count = %d", n)
	}
}

func TestHaving(t *testing.T) {
	st := fixtureStore(t)
	res := exec(t, st, `PREFIX ex: <http://ex/>
		SELECT ?c (COUNT(?s) AS ?n) WHERE { ?s a ?c } GROUP BY ?c HAVING (COUNT(?s) > 2)`)
	if len(res.Rows) != 1 || res.Rows[0]["c"].LocalName() != "Person" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestSumAvgMinMax(t *testing.T) {
	st := fixtureStore(t)
	res := exec(t, st, `PREFIX ex: <http://ex/>
		SELECT (SUM(?a) AS ?s) (AVG(?a) AS ?avg) (MIN(?a) AS ?min) (MAX(?a) AS ?max)
		WHERE { ?p ex:age ?a }`)
	r := res.Rows[0]
	if s, _ := r["s"].Int(); s != 90 {
		t.Fatalf("SUM = %v", r["s"])
	}
	if a, _ := r["avg"].Int(); a != 30 {
		t.Fatalf("AVG = %v", r["avg"])
	}
	if m, _ := r["min"].Int(); m != 25 {
		t.Fatalf("MIN = %v", r["min"])
	}
	if m, _ := r["max"].Int(); m != 35 {
		t.Fatalf("MAX = %v", r["max"])
	}
}

func TestGroupConcat(t *testing.T) {
	st := fixtureStore(t)
	res := exec(t, st, `PREFIX ex: <http://ex/>
		SELECT (GROUP_CONCAT(?l ; SEPARATOR = "|") AS ?all)
		WHERE { ex:alice ex:knows ?k . ?k <http://www.w3.org/2000/01/rdf-schema#label> ?l }`)
	got := res.Rows[0]["all"].Value
	if got != "Bob|Carol" && got != "Carol|Bob" {
		t.Fatalf("GROUP_CONCAT = %q", got)
	}
}

func TestAsk(t *testing.T) {
	st := fixtureStore(t)
	yes := exec(t, st, `PREFIX ex: <http://ex/> ASK { ex:alice ex:knows ex:bob }`)
	if !yes.Ask || !yes.Boolean {
		t.Fatalf("ASK true case = %+v", yes)
	}
	no := exec(t, st, `PREFIX ex: <http://ex/> ASK { ex:bob ex:knows ex:alice }`)
	if no.Boolean {
		t.Fatalf("ASK false case = %+v", no)
	}
}

func TestBuiltins(t *testing.T) {
	st := fixtureStore(t)
	cases := []struct {
		q    string
		rows int
	}{
		{`PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#> SELECT ?s WHERE { ?s rdfs:label ?l FILTER(STRLEN(?l) = 5) }`, 2},    // Alice, Carol
		{`PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#> SELECT ?s WHERE { ?s rdfs:label ?l FILTER(UCASE(?l) = "BOB") }`, 1}, //
		{`PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#> SELECT ?s WHERE { ?s rdfs:label ?l FILTER CONTAINS(?l, "o") }`, 3},  // Bob, Carol, Workshop
		{`PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#> SELECT ?s WHERE { ?s rdfs:label ?l FILTER STRSTARTS(?l, "E") }`, 1}, // EDBT
		{`PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#> SELECT ?s WHERE { ?s rdfs:label ?l FILTER(LANG(?l) = "en") }`, 1},   // Workshop
		{`PREFIX ex: <http://ex/> SELECT ?s WHERE { ?s ex:age ?a FILTER ISNUMERIC(?a) }`, 3},                                       //
		{`PREFIX ex: <http://ex/> SELECT ?s WHERE { ?s a ex:Person FILTER ISIRI(?s) }`, 3},                                         //
		{`PREFIX ex: <http://ex/> SELECT ?s WHERE { ?s ex:age ?a FILTER(ABS(?a - 30) < 1) }`, 1},                                   // alice
		{`PREFIX ex: <http://ex/> SELECT ?s WHERE { ?s ex:age ?a FILTER(?a IN (25, 35)) }`, 2},                                     //
		{`PREFIX ex: <http://ex/> SELECT ?s WHERE { ?s ex:age ?a FILTER(?a NOT IN (25, 35)) }`, 1},                                 //
		{`PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#> SELECT ?s WHERE { ?s rdfs:label ?l FILTER(DATATYPE(?l) = <http://www.w3.org/2001/XMLSchema#string>) }`, 4},
	}
	for _, c := range cases {
		res := exec(t, st, c.q)
		if len(res.Rows) != c.rows {
			t.Errorf("query %q: rows = %d, want %d", c.q, len(res.Rows), c.rows)
		}
	}
}

func TestBoundAndCoalesce(t *testing.T) {
	st := fixtureStore(t)
	res := exec(t, st, `PREFIX ex: <http://ex/>
		SELECT ?p WHERE { ?p a ex:Person OPTIONAL { ?p ex:knows ?k } FILTER(!BOUND(?k)) }`)
	if len(res.Rows) != 1 || res.Rows[0]["p"].LocalName() != "carol" {
		t.Fatalf("rows = %v", res.Rows)
	}
	res2 := exec(t, st, `PREFIX ex: <http://ex/>
		SELECT ?p ?v WHERE { ?p a ex:Person OPTIONAL { ?p ex:knows ?k } BIND(COALESCE(?k, ex:nobody) AS ?v) }`)
	for _, r := range res2.Rows {
		if _, ok := r["v"]; !ok {
			t.Fatalf("COALESCE left ?v unbound: %v", r)
		}
	}
}

func TestIfFunction(t *testing.T) {
	st := fixtureStore(t)
	res := exec(t, st, `PREFIX ex: <http://ex/>
		SELECT ?p ?cat WHERE { ?p ex:age ?a BIND(IF(?a >= 30, "senior", "junior") AS ?cat) } ORDER BY ?p`)
	want := map[string]string{"alice": "senior", "bob": "junior", "carol": "senior"}
	for _, r := range res.Rows {
		if r["cat"].Value != want[r["p"].LocalName()] {
			t.Fatalf("row %v", r)
		}
	}
}

func TestThreeValuedLogic(t *testing.T) {
	st := fixtureStore(t)
	// ?k unbound for carol → BOUND(?k)=false; error || true must be true:
	res := exec(t, st, `PREFIX ex: <http://ex/>
		SELECT ?p WHERE { ?p a ex:Person OPTIONAL { ?p ex:knows ?k }
			FILTER( (?k = ex:bob) || true ) }`)
	if len(res.Rows) != 4 { // all optional-joined rows survive
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
}

func TestSelectExpressionProjection(t *testing.T) {
	st := fixtureStore(t)
	res := exec(t, st, `PREFIX ex: <http://ex/>
		SELECT ?p (?a + 1 AS ?next) WHERE { ?p ex:age ?a } ORDER BY ?a`)
	n, _ := res.Rows[0]["next"].Int()
	if n != 26 {
		t.Fatalf("next = %v", res.Rows[0]["next"])
	}
}

func TestAnonymousBlankNodeInQuery(t *testing.T) {
	// blank nodes in queries behave as variables... our engine treats
	// them as concrete terms; instead test bracketed object form parses.
	_, err := Parse(`PREFIX ex: <http://ex/> SELECT ?s WHERE { ?s ex:p [ ex:q ?v ] }`)
	if err != nil {
		t.Fatalf("bracket parse: %v", err)
	}
}

func TestListing1QueryParses(t *testing.T) {
	// The exact query shape from the paper's Listing 1.
	q := `PREFIX dcat: <http://www.w3.org/ns/dcat#>
PREFIX dc: <http://purl.org/dc/terms/>
SELECT ?dataset ?title ?url
WHERE {
  ?dataset a dcat:Dataset .
  ?dataset dc:title ?title .
  ?dataset dcat:distribution ?distribution .
  ?distribution dcat:accessURL ?url .
  filter ( regex (?url, 'sparql') ) .
}`
	parsed, err := Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Form != FormSelect || len(parsed.Select) != 3 {
		t.Fatalf("parsed = %+v", parsed)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT`,
		`SELECT ?x`,
		`SELECT ?x WHERE { ?x ?p }`,
		`SELECT ?x WHERE { ?x ?p ?o`,
		`SELECT ?x WHERE { ?x unknown:p ?o }`,
		`FOO ?x WHERE { ?x ?p ?o }`,
		`SELECT ?x WHERE { ?x ?p ?o } LIMIT abc`,
		`SELECT (COUNT(*) ?n) WHERE { ?s ?p ?o }`,
		`SELECT ?x WHERE { ?x ?p ?o } GROUP BY`,
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	st := fixtureStore(t)
	res := exec(t, st, `PREFIX ex: <http://ex/>
		SELECT ?p ?l WHERE { ?p <http://www.w3.org/2000/01/rdf-schema#label> ?l }`)
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != len(res.Rows) || len(back.Vars) != 2 {
		t.Fatalf("round trip: %+v", back)
	}
	// every original row present
	orig := map[string]bool{}
	for _, r := range res.SortedRows() {
		orig[bindingKey(r, res.Vars)] = true
	}
	for _, r := range back.SortedRows() {
		if !orig[bindingKey(r, back.Vars)] {
			t.Fatalf("row %v lost in round trip", r)
		}
	}
}

func TestJSONAskRoundTrip(t *testing.T) {
	res := &Result{Ask: true, Boolean: true}
	data, _ := json.Marshal(res)
	if !strings.Contains(string(data), `"boolean":true`) {
		t.Fatalf("ask json = %s", data)
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Ask || !back.Boolean {
		t.Fatalf("back = %+v", back)
	}
}

func TestCSVOutput(t *testing.T) {
	st := fixtureStore(t)
	res := exec(t, st, `PREFIX ex: <http://ex/>
		SELECT ?p ?a WHERE { ?p ex:age ?a } ORDER BY ?a LIMIT 1`)
	csv := res.CSV()
	if !strings.HasPrefix(csv, "p,a\r\n") {
		t.Fatalf("csv header = %q", csv)
	}
	if !strings.Contains(csv, "25") {
		t.Fatalf("csv = %q", csv)
	}
}

func TestTableOutput(t *testing.T) {
	st := fixtureStore(t)
	res := exec(t, st, `PREFIX ex: <http://ex/> SELECT ?p WHERE { ?p a ex:Event } ORDER BY ?p`)
	tab := res.Table()
	if !strings.Contains(tab, "?p") || !strings.Contains(tab, "conf") {
		t.Fatalf("table = %q", tab)
	}
}

func TestEmptyResultCount(t *testing.T) {
	st := fixtureStore(t)
	res := exec(t, st, `PREFIX ex: <http://ex/> SELECT (COUNT(*) AS ?n) WHERE { ?s a ex:Nothing }`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1 (COUNT over empty)", len(res.Rows))
	}
	if n, _ := res.Rows[0]["n"].Int(); n != 0 {
		t.Fatalf("n = %v", res.Rows[0]["n"])
	}
}

func TestLargeJoinSelectivityOrdering(t *testing.T) {
	// build a store where naive left-to-right join order would be slow
	st := store.New()
	p1 := rdf.NewIRI("http://ex/common")
	p2 := rdf.NewIRI("http://ex/rare")
	for i := 0; i < 500; i++ {
		s := rdf.NewIRI("http://ex/s" + itoa(i))
		st.AddSPO(s, p1, rdf.NewInteger(int64(i)))
	}
	st.AddSPO(rdf.NewIRI("http://ex/s42"), p2, rdf.NewLiteral("x"))
	res := exec(t, st, `SELECT ?s ?v WHERE { ?s <http://ex/common> ?v . ?s <http://ex/rare> ?x }`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
	if v, _ := res.Rows[0]["v"].Int(); v != 42 {
		t.Fatalf("v = %v", res.Rows[0]["v"])
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}

func TestNestedOptionalWithFilter(t *testing.T) {
	st := fixtureStore(t)
	res := exec(t, st, `PREFIX ex: <http://ex/>
		SELECT ?p ?k WHERE { ?p a ex:Person OPTIONAL { ?p ex:knows ?k FILTER(?k = ex:bob) } }`)
	// filter inside OPTIONAL: alice→bob; bob,carol get unbound k
	bound := 0
	for _, r := range res.Rows {
		if _, ok := r["k"]; ok {
			bound++
		}
	}
	if len(res.Rows) != 3 || bound != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestSubGroupPattern(t *testing.T) {
	st := fixtureStore(t)
	res := exec(t, st, `PREFIX ex: <http://ex/>
		SELECT ?p WHERE { { ?p a ex:Person } { ?p ex:age ?a } FILTER(?a < 31) }`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
}

func TestOrderByStringValues(t *testing.T) {
	st := fixtureStore(t)
	res := exec(t, st, `PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
		SELECT ?l WHERE { ?s rdfs:label ?l FILTER(LANG(?l) = "") } ORDER BY ?l`)
	var got []string
	for _, r := range res.Rows {
		got = append(got, r["l"].Value)
	}
	want := []string{"Alice", "Bob", "Carol", "EDBT"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order: got %v, want %v", got, want)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse should panic")
		}
	}()
	MustParse("not a query")
}
