package sparql

// Streaming hash aggregation for GROUP BY queries. The grouped shapes
// the exploration workloads lean on — class histograms, top predicates —
// have low group cardinality over large solution sets, so holding one
// accumulator per group while rows stream past turns an O(rows)
// materialization into O(groups) live state. Rows never materialize as
// Bindings: groups are keyed on packed group-slot ID tuples and the
// accumulators fold each row in as the pipeline produces it; the finished
// groups are emitted at stream end through the same ORDER BY / DISTINCT /
// window pipeline the batch engine applies, so the two paths cannot
// produce different answers.
//
// Not every grouped query streams: the operator handles plain-variable
// group keys and direct COUNT/SUM/MIN/MAX/AVG projections (COUNT also
// with DISTINCT), which is exactly the aggregate surface the engines
// evaluate identically. HAVING, expression keys, nested aggregate
// arithmetic, GROUP_CONCAT and SAMPLE fall back to the materialized path
// — SAMPLE and GROUP_CONCAT because their result depends on row arrival
// order, which the streaming pipeline does not reproduce.

import (
	"repro/internal/rdf"
	"repro/internal/store"
)

// aggKind is what one projection of a streamed grouped query computes.
type aggKind uint8

const (
	aggKey   aggKind = iota // a group-key variable
	aggCount                // COUNT(*) or COUNT(?v), optionally DISTINCT
	aggSum
	aggMin
	aggMax
	aggAvg
)

// aggProj is one compiled projection of a streamed grouped query.
type aggProj struct {
	kind     aggKind
	outVar   string
	argVar   string // aggregate argument variable; "" = COUNT(*)
	distinct bool
	slot     int // resolved at runtime: key slot or argument slot; -1/-2 per lookup
}

// streamAggSpec is the AST-level plan of a streamable grouped query; nil
// means the shape needs the materialized aggregation path.
type streamAggSpec struct {
	groupVars []string
	projs     []aggProj
	vars      []string
}

// streamAggSpec analyzes the query's grouping surface. It is purely
// syntactic — slots are resolved later against the compiled plan.
func (q *Query) streamAggSpec() *streamAggSpec {
	if len(q.Having) > 0 || q.Star {
		return nil
	}
	spec := &streamAggSpec{}
	keys := map[string]bool{}
	for _, ge := range q.GroupBy {
		v, ok := ge.(*ExprVar)
		if !ok {
			return nil
		}
		spec.groupVars = append(spec.groupVars, v.Name)
		keys[v.Name] = true
	}
	for _, it := range q.Select {
		if it.Expr == nil {
			if !keys[it.Var] {
				return nil // sampling a non-key variable: materialized path
			}
			spec.projs = append(spec.projs, aggProj{kind: aggKey, outVar: it.Var, argVar: it.Var})
			spec.vars = append(spec.vars, it.Var)
			continue
		}
		if it.Var == "" {
			return nil // missing AS: the materialized path raises the error
		}
		agg, ok := it.Expr.(*ExprAggregate)
		if !ok {
			return nil
		}
		p := aggProj{outVar: it.Var, distinct: agg.Distinct}
		switch agg.Fn {
		case "COUNT":
			p.kind = aggCount
		case "SUM":
			p.kind = aggSum
		case "MIN":
			p.kind = aggMin
		case "MAX":
			p.kind = aggMax
		case "AVG":
			p.kind = aggAvg
		default:
			return nil // SAMPLE/GROUP_CONCAT: arrival-order dependent
		}
		if p.kind != aggCount && p.distinct {
			return nil // SUM(DISTINCT …) and friends: materialized path
		}
		if agg.Arg != nil {
			av, ok := agg.Arg.(*ExprVar)
			if !ok {
				return nil
			}
			p.argVar = av.Name
		} else if p.kind != aggCount {
			return nil // only COUNT takes *
		}
		spec.projs = append(spec.projs, p)
		spec.vars = append(spec.vars, it.Var)
	}
	return spec
}

// resolve binds the spec's variables to compiled slots. A variable the
// WHERE clause never binds resolves to -1 and behaves as always-unbound.
func (s *streamAggSpec) resolve(sm *slotmap) (gslots []int) {
	gslots = make([]int, len(s.groupVars))
	for i, v := range s.groupVars {
		gslots[i] = sm.lookup(v)
	}
	for i := range s.projs {
		p := &s.projs[i]
		if p.argVar != "" {
			p.slot = sm.lookup(p.argVar)
		} else {
			p.slot = -1
		}
	}
	return gslots
}

// aggAcc is one projection's accumulator within one group.
type aggAcc struct {
	count   int64
	sum     float64
	sumN    int64 // values folded into sum (AVG denominator, SUM presence)
	numErr  bool  // a non-numeric value poisoned SUM/AVG, like the batch path
	best    rdf.Term
	bestSet bool
	seenID  map[store.ID]struct{} // COUNT(DISTINCT ?v)
	seenRow map[string]struct{}   // COUNT(DISTINCT *)
}

// aggGroup is one group's state: the representative row (for key slots)
// and one accumulator per projection.
type aggGroup struct {
	rep  []store.ID
	accs []aggAcc
}

// streamAgg folds streamed ID-space rows into per-group accumulators.
type streamAgg struct {
	ex     *idExec
	spec   *streamAggSpec
	gslots []int
	groups map[string]*aggGroup
	order  []*aggGroup
	keyBuf []byte
	rowBuf []byte
}

func newStreamAgg(ex *idExec, spec *streamAggSpec, gslots []int) *streamAgg {
	a := &streamAgg{ex: ex, spec: spec, gslots: gslots, groups: map[string]*aggGroup{}}
	if len(gslots) == 0 {
		// a grouped query without GROUP BY has exactly one group, present
		// even over zero rows (COUNT(*) = 0)
		a.group(nil)
	}
	return a
}

// group returns (creating on first sight) the accumulator group for row r.
func (a *streamAgg) group(r []store.ID) *aggGroup {
	a.keyBuf = packIDKey(a.keyBuf[:0], r, a.gslots)
	g, ok := a.groups[string(a.keyBuf)]
	if !ok {
		g = &aggGroup{accs: make([]aggAcc, len(a.spec.projs))}
		if r != nil {
			g.rep = append([]store.ID(nil), r...)
		}
		a.groups[string(a.keyBuf)] = g
		a.order = append(a.order, g)
	}
	return g
}

// add folds one pipeline row into its group's accumulators.
func (a *streamAgg) add(r []store.ID) {
	g := a.group(r)
	for pi := range a.spec.projs {
		p := &a.spec.projs[pi]
		acc := &g.accs[pi]
		switch p.kind {
		case aggKey:
			// nothing to accumulate
		case aggCount:
			switch {
			case p.argVar == "" && p.distinct: // COUNT(DISTINCT *)
				if acc.seenRow == nil {
					acc.seenRow = map[string]struct{}{}
				}
				a.rowBuf = packIDKeyAll(a.rowBuf[:0], r)
				acc.seenRow[string(a.rowBuf)] = struct{}{}
			case p.argVar == "": // COUNT(*)
				acc.count++
			case p.slot >= 0 && r[p.slot] != store.NoID:
				if p.distinct {
					if acc.seenID == nil {
						acc.seenID = map[store.ID]struct{}{}
					}
					acc.seenID[r[p.slot]] = struct{}{}
				} else {
					acc.count++
				}
			}
		case aggSum, aggAvg:
			if p.slot >= 0 && r[p.slot] != store.NoID && !acc.numErr {
				f, ok := a.ex.term(r[p.slot]).Float()
				if !ok {
					acc.numErr = true // poison: the binding is omitted
					break
				}
				acc.sum += f
				acc.sumN++
			}
		case aggMin, aggMax:
			if p.slot >= 0 && r[p.slot] != store.NoID {
				t := a.ex.term(r[p.slot])
				if !acc.bestSet {
					acc.best, acc.bestSet = t, true
					break
				}
				c, err := termOrder(t, acc.best)
				if err != nil {
					c = t.Compare(acc.best)
				}
				if (p.kind == aggMin && c < 0) || (p.kind == aggMax && c > 0) {
					acc.best = t
				}
			}
		}
	}
}

// groupCount reports the number of groups currently held.
func (a *streamAgg) groupCount() int { return len(a.order) }

// emit materializes the finished groups as Bindings, in first-appearance
// order like the batch aggregation.
func (a *streamAgg) emit() []Binding {
	out := make([]Binding, 0, len(a.order))
	for _, g := range a.order {
		b := make(Binding, len(a.spec.projs))
		for pi := range a.spec.projs {
			p := &a.spec.projs[pi]
			acc := &g.accs[pi]
			switch p.kind {
			case aggKey:
				if p.slot >= 0 && g.rep != nil && g.rep[p.slot] != store.NoID {
					b[p.outVar] = a.ex.term(g.rep[p.slot])
				}
			case aggCount:
				n := acc.count
				if acc.seenID != nil {
					n = int64(len(acc.seenID))
				}
				if acc.seenRow != nil {
					n = int64(len(acc.seenRow))
				}
				b[p.outVar] = rdf.NewInteger(n)
			case aggSum:
				if !acc.numErr {
					b[p.outVar] = formatFloat(acc.sum) // empty group sums to 0
				}
			case aggAvg:
				switch {
				case acc.numErr:
				case acc.sumN == 0:
					b[p.outVar] = rdf.NewInteger(0)
				default:
					b[p.outVar] = formatFloat(acc.sum / float64(acc.sumN))
				}
			case aggMin, aggMax:
				if acc.bestSet {
					b[p.outVar] = acc.best // empty group: binding omitted
				}
			}
		}
		out = append(out, b)
	}
	return out
}

// packIDKeyAll packs every slot of the row — the COUNT(DISTINCT *) key.
// Slot order is fixed per plan, so equal packed rows are equal solutions.
func packIDKeyAll(buf []byte, r []store.ID) []byte {
	for _, v := range r {
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return buf
}
