package sparql_test

// Differential harness: every query of the package's fixed test corpus
// plus randomized queries over internal/synth stores run through the
// streaming engine, the ID-space engine and the legacy term-space
// evaluator, asserting equivalent results. CI runs this under -race, so
// the lock-free Reader path is exercised by the race detector too.

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/store"
	"repro/internal/synth"
	"repro/internal/turtle"
)

const diffFixture = `
@prefix ex: <http://ex/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
ex:alice a ex:Person ; rdfs:label "Alice" ; ex:age 30 ; ex:knows ex:bob, ex:carol .
ex:bob   a ex:Person ; rdfs:label "Bob"   ; ex:age 25 ; ex:knows ex:carol .
ex:carol a ex:Person ; rdfs:label "Carol" ; ex:age 35 .
ex:conf  a ex:Event  ; rdfs:label "EDBT"  ; ex:year 2020 ; ex:organizedBy ex:alice .
ex:ws    a ex:Event  ; rdfs:label "Workshop"@en ; ex:year 2019 .
`

// diffCorpus is the full fixed query corpus: every executable query from
// sparql_test.go, construct_test.go and expr-level behaviours, evaluated
// over the shared fixture store.
var diffCorpus = []string{
	`PREFIX ex: <http://ex/> SELECT ?p WHERE { ?p a ex:Person }`,
	`PREFIX ex: <http://ex/> SELECT * WHERE { ?s ex:knows ?o }`,
	`PREFIX ex: <http://ex/> SELECT ?a ?b WHERE { ?a ex:knows ?b . ?b ex:knows ?c }`,
	`PREFIX ex: <http://ex/> SELECT ?p WHERE { ?p ex:age ?a FILTER(?a > 28) }`,
	`PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#> SELECT ?s WHERE { ?s rdfs:label ?l FILTER regex(?l, "^A") }`,
	`PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#> SELECT ?s WHERE { ?s rdfs:label ?l FILTER regex(?l, "aLiCe", "i") }`,
	`PREFIX ex: <http://ex/> SELECT ?s WHERE { ?s a ex:Person FILTER regex(?s, "alice") }`,
	`PREFIX ex: <http://ex/> SELECT ?p ?k WHERE { ?p a ex:Person OPTIONAL { ?p ex:knows ?k } }`,
	`PREFIX ex: <http://ex/> SELECT ?x WHERE { { ?x a ex:Person } UNION { ?x a ex:Event } }`,
	`PREFIX ex: <http://ex/> SELECT ?p WHERE { ?p a ex:Person MINUS { ?p ex:knows ex:carol } }`,
	`PREFIX ex: <http://ex/> SELECT ?p ?a2 WHERE { ?p ex:age ?a BIND(?a * 2 AS ?a2) }`,
	`PREFIX ex: <http://ex/> SELECT ?p ?a WHERE { VALUES ?p { ex:alice ex:bob } ?p ex:age ?a }`,
	`PREFIX ex: <http://ex/> SELECT ?p ?a WHERE { ?p ex:age ?a VALUES (?p ?a) { (ex:alice UNDEF) (UNDEF 25) } }`,
	`PREFIX ex: <http://ex/> SELECT DISTINCT ?c WHERE { ?s a ?c }`,
	`PREFIX ex: <http://ex/> SELECT ?p ?a WHERE { ?p ex:age ?a } ORDER BY DESC(?a) LIMIT 2 OFFSET 1`,
	`PREFIX ex: <http://ex/> SELECT ?p WHERE { ?p ex:age ?a } ORDER BY ?a`,
	`SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }`,
	`SELECT (COUNT(DISTINCT ?c) AS ?n) WHERE { ?s a ?c }`,
	`PREFIX ex: <http://ex/> SELECT ?c (COUNT(?s) AS ?n) WHERE { ?s a ?c } GROUP BY ?c ORDER BY DESC(?n)`,
	`PREFIX ex: <http://ex/> SELECT ?c (COUNT(?s) AS ?n) WHERE { ?s a ?c } GROUP BY ?c HAVING (COUNT(?s) > 2)`,
	`PREFIX ex: <http://ex/> SELECT (SUM(?a) AS ?s) (AVG(?a) AS ?avg) (MIN(?a) AS ?min) (MAX(?a) AS ?max) WHERE { ?p ex:age ?a }`,
	`PREFIX ex: <http://ex/> ASK { ex:alice ex:knows ex:bob }`,
	`PREFIX ex: <http://ex/> ASK { ex:bob ex:knows ex:alice }`,
	`PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#> SELECT ?s WHERE { ?s rdfs:label ?l FILTER(STRLEN(?l) = 5) }`,
	`PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#> SELECT ?s WHERE { ?s rdfs:label ?l FILTER(UCASE(?l) = "BOB") }`,
	`PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#> SELECT ?s WHERE { ?s rdfs:label ?l FILTER CONTAINS(?l, "o") }`,
	`PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#> SELECT ?s WHERE { ?s rdfs:label ?l FILTER STRSTARTS(?l, "E") }`,
	`PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#> SELECT ?s WHERE { ?s rdfs:label ?l FILTER(LANG(?l) = "en") }`,
	`PREFIX ex: <http://ex/> SELECT ?s WHERE { ?s ex:age ?a FILTER ISNUMERIC(?a) }`,
	`PREFIX ex: <http://ex/> SELECT ?s WHERE { ?s a ex:Person FILTER ISIRI(?s) }`,
	`PREFIX ex: <http://ex/> SELECT ?s WHERE { ?s ex:age ?a FILTER(ABS(?a - 30) < 1) }`,
	`PREFIX ex: <http://ex/> SELECT ?s WHERE { ?s ex:age ?a FILTER(?a IN (25, 35)) }`,
	`PREFIX ex: <http://ex/> SELECT ?s WHERE { ?s ex:age ?a FILTER(?a NOT IN (25, 35)) }`,
	`PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#> SELECT ?s WHERE { ?s rdfs:label ?l FILTER(DATATYPE(?l) = <http://www.w3.org/2001/XMLSchema#string>) }`,
	`PREFIX ex: <http://ex/> SELECT ?p WHERE { ?p a ex:Person OPTIONAL { ?p ex:knows ?k } FILTER(!BOUND(?k)) }`,
	`PREFIX ex: <http://ex/> SELECT ?p ?v WHERE { ?p a ex:Person OPTIONAL { ?p ex:knows ?k } BIND(COALESCE(?k, ex:nobody) AS ?v) }`,
	`PREFIX ex: <http://ex/> SELECT ?p ?cat WHERE { ?p ex:age ?a BIND(IF(?a >= 30, "senior", "junior") AS ?cat) } ORDER BY ?p`,
	`PREFIX ex: <http://ex/> SELECT ?p WHERE { ?p a ex:Person OPTIONAL { ?p ex:knows ?k } FILTER( (?k = ex:bob) || true ) }`,
	`PREFIX ex: <http://ex/> SELECT ?p (?a + 1 AS ?next) WHERE { ?p ex:age ?a } ORDER BY ?a`,
	`PREFIX ex: <http://ex/> SELECT ?p ?k WHERE { ?p a ex:Person OPTIONAL { ?p ex:knows ?k FILTER(?k = ex:bob) } }`,
	`PREFIX ex: <http://ex/> SELECT ?p WHERE { { ?p a ex:Person } { ?p ex:age ?a } FILTER(?a < 31) }`,
	`PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#> SELECT ?l WHERE { ?s rdfs:label ?l FILTER(LANG(?l) = "") } ORDER BY ?l`,
	`PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#> SELECT ?p ?l WHERE { ?p rdfs:label ?l }`,
	`PREFIX ex: <http://ex/> SELECT (COUNT(*) AS ?n) WHERE { ?s a ex:Nothing }`,
	`PREFIX ex: <http://ex/> SELECT (GROUP_CONCAT(?a ; SEPARATOR = "|") AS ?all) WHERE { ?p ex:age ?a } GROUP BY ?p`,
	`SELECT ?x WHERE { ?x <http://ex/knows> ?x }`,
	`PREFIX ex: <http://ex/> SELECT ?s ?o WHERE { ?s ?p ?o } LIMIT 4`,
	`PREFIX ex: <http://ex/> SELECT ?s WHERE { ?s a ex:Person } LIMIT 1 OFFSET 1`,
	`PREFIX ex: <http://ex/> CONSTRUCT { ?a ex:acquaintedWith ?b } WHERE { ?a ex:knows ?b }`,
	`PREFIX ex: <http://ex/> CONSTRUCT { ?p a ex:Agent . ?p ex:labelCopy ?l . } WHERE { ?p a ex:Person ; <http://www.w3.org/2000/01/rdf-schema#label> ?l }`,
	`PREFIX ex: <http://ex/> CONSTRUCT { ?p ex:knowsCopy ?k } WHERE { ?p a ex:Person OPTIONAL { ?p ex:knows ?k } }`,
	`PREFIX ex: <http://ex/> CONSTRUCT { ?l ex:of ?p } WHERE { ?p <http://www.w3.org/2000/01/rdf-schema#label> ?l }`,
	`PREFIX ex: <http://ex/> CONSTRUCT { ?p ex:sighting _:s . _:s ex:seen ?k } WHERE { ?p ex:knows ?k }`,
	`PREFIX ex: <http://ex/> CONSTRUCT { ?a ex:c ?b } WHERE { ?a ex:knows ?b } LIMIT 1`,
	`PREFIX ex: <http://ex/> CONSTRUCT { ex:dataset ex:has ex:people } WHERE { ?p a ex:Person }`,
	// engine-specific edges: unknown constants, empty groups, unbound
	// projections, local-ID joins
	`SELECT ?x WHERE { ?x <http://nowhere/p> <http://nowhere/o> }`,
	`PREFIX ex: <http://ex/> SELECT ?ghost WHERE { ?p a ex:Person }`,
	`PREFIX ex: <http://ex/> SELECT ?p ?s WHERE { ?p a ex:Person BIND(STR(?p) AS ?s) FILTER(STRLEN(?s) > 3) }`,
	`PREFIX ex: <http://ex/> SELECT ?x ?y WHERE { VALUES (?x ?y) { (ex:alice "ghost") (ex:bob UNDEF) } OPTIONAL { ?x ex:age ?y } }`,
	`PREFIX ex: <http://ex/> SELECT DISTINCT ?a ?b ?c ?d ?e WHERE { ?a ex:knows ?b . ?a ex:age ?c . ?a a ?d OPTIONAL { ?b ex:age ?e } }`,
	`PREFIX ex: <http://ex/> ASK { ?x ex:knows ?y . ?y ex:knows ?z }`,
}

func diffStore(t testing.TB) *store.Store {
	t.Helper()
	g, err := turtle.Parse(diffFixture)
	if err != nil {
		t.Fatal(err)
	}
	return store.FromGraph(g)
}

// rowKeysInOrder renders the result rows as canonical strings in result
// order.
func rowKeysInOrder(res *sparql.Result) []string {
	keys := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		var sb strings.Builder
		for _, v := range res.Vars {
			if t, ok := r[v]; ok {
				sb.WriteString(t.String())
			}
			sb.WriteByte('\x00')
		}
		keys = append(keys, sb.String())
	}
	return keys
}

// rowKeys renders the result rows as canonical strings and sorts them.
func rowKeys(res *sparql.Result) []string {
	keys := rowKeysInOrder(res)
	sort.Strings(keys)
	return keys
}

// graphKey canonicalizes a constructed graph: sorted N-Triples with blank
// labels collapsed (blank identity is scoped per solution and solution
// order is not part of the engine contract).
func graphKey(g *rdf.Graph) (string, int) {
	if g == nil {
		return "", 0
	}
	blanks := map[string]bool{}
	norm := func(t rdf.Term) rdf.Term {
		if t.IsBlank() {
			blanks[t.Value] = true
			return rdf.NewBlank("b")
		}
		return t
	}
	lines := make([]string, 0, g.Len())
	for _, tr := range g.Triples() {
		lines = append(lines, rdf.NewTriple(norm(tr.S), norm(tr.P), norm(tr.O)).String())
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n"), len(blanks)
}

// assertEngineAgreement runs the query through all three evaluation
// paths — streaming, ID-space and the legacy reference — and fails on
// any observable difference. ordered means the query's ORDER BY keys are
// known to impose a total order, so the exact row sequence is compared;
// without it, ties may legitimately differ between engines (stable sorts
// and top-k heaps over different join orders), so ordered results are
// compared position-by-position under the ORDER BY keys themselves and
// full multiset equality is asserted only when no window truncates them.
func assertEngineAgreement(t *testing.T, st *store.Store, query string, ordered bool) {
	t.Helper()
	q, err := sparql.Parse(query)
	if err != nil {
		t.Fatalf("parse %q: %v", query, err)
	}
	idRes, idErr := q.ExecEngine(st, sparql.EngineIDSpace)
	lgRes, lgErr := q.ExecEngine(st, sparql.EngineLegacy)
	var smRes *sparql.Result
	smErr := func() error {
		rs, err := q.Stream(context.Background(), st)
		if err != nil {
			return err
		}
		smRes, err = rs.Collect()
		return err
	}()
	if (idErr == nil) != (lgErr == nil) || (smErr == nil) != (lgErr == nil) {
		t.Fatalf("query %q: engine errors disagree: id=%v stream=%v legacy=%v", query, idErr, smErr, lgErr)
	}
	if lgErr != nil {
		return
	}
	compareEngines(t, query, q, "id", idRes, lgRes, ordered)
	compareEngines(t, query, q, "stream", smRes, lgRes, ordered)
}

// compareEngines checks one engine's result against the legacy reference.
func compareEngines(t *testing.T, query string, q *sparql.Query, name string, got, want *sparql.Result, ordered bool) {
	t.Helper()
	if got.Ask != want.Ask || got.Boolean != want.Boolean {
		t.Fatalf("query %q: ASK disagreement: %s=%+v legacy=%+v", query, name, got, want)
	}
	if got.Ask {
		return
	}
	if got.Graph != nil || want.Graph != nil {
		gk, gb := graphKey(got.Graph)
		lk, lb := graphKey(want.Graph)
		if q.Limit >= 0 && len(q.OrderBy) == 0 {
			// without a total order LIMIT may keep different solutions;
			// only the cardinality is comparable
			if got.Graph.Len() != want.Graph.Len() {
				t.Fatalf("query %q: graph sizes differ: %s=%d legacy=%d", query, name, got.Graph.Len(), want.Graph.Len())
			}
			return
		}
		if gk != lk || gb != lb {
			t.Fatalf("query %q: graphs differ (blanks %d vs %d)\n%s:\n%s\nlegacy:\n%s", query, gb, lb, name, gk, lk)
		}
		return
	}
	if fmt.Sprint(got.Vars) != fmt.Sprint(want.Vars) {
		t.Fatalf("query %q: vars differ: %s=%v legacy=%v", query, name, got.Vars, want.Vars)
	}
	if len(q.OrderBy) > 0 {
		if len(got.Rows) != len(want.Rows) {
			t.Fatalf("query %q: row counts differ: %s=%d legacy=%d", query, name, len(got.Rows), len(want.Rows))
		}
		if ordered {
			gk, lk := rowKeysInOrder(got), rowKeysInOrder(want)
			for i := range gk {
				if gk[i] != lk[i] {
					t.Fatalf("query %q: ordered row %d differs:\n%s:     %q\nlegacy: %q", query, i, name, gk[i], lk[i])
				}
			}
			return
		}
		// Tie-aware: engines may order (and, under a window, retain)
		// different rows within a tie group, but position i must carry an
		// equal sort key in both results — otherwise one engine's "top k"
		// kept a row the order says it shouldn't have.
		for i := range got.Rows {
			gk := sparql.OrderKeyOf(q.OrderBy, got.Rows[i])
			lk := sparql.OrderKeyOf(q.OrderBy, want.Rows[i])
			if sparql.CompareOrderKeys(q.OrderBy, gk, lk) != 0 {
				t.Fatalf("query %q: sort key at row %d differs:\n%s:     %v\nlegacy: %v", query, i, name, got.Rows[i], want.Rows[i])
			}
		}
		if q.Limit < 0 && q.Offset == 0 {
			// no window: the full row multisets must also coincide
			gk, lk := rowKeys(got), rowKeys(want)
			for i := range gk {
				if gk[i] != lk[i] {
					t.Fatalf("query %q: row %d differs:\n%s:     %q\nlegacy: %q", query, i, name, gk[i], lk[i])
				}
			}
		}
		return
	}
	if (q.Limit >= 0 || q.Offset > 0) && len(q.OrderBy) == 0 {
		// row identity is not defined without a total order: each engine may
		// keep a different window, so only the row count is comparable
		if len(got.Rows) != len(want.Rows) {
			t.Fatalf("query %q: row counts differ: %s=%d legacy=%d", query, name, len(got.Rows), len(want.Rows))
		}
		return
	}
	gk, lk := rowKeys(got), rowKeys(want)
	if len(gk) != len(lk) {
		t.Fatalf("query %q: row counts differ: %s=%d legacy=%d", query, name, len(gk), len(lk))
	}
	for i := range gk {
		if gk[i] != lk[i] {
			t.Fatalf("query %q: row %d differs:\n%s:     %q\nlegacy: %q", query, i, name, gk[i], lk[i])
		}
	}
}

func TestDifferentialFixedCorpus(t *testing.T) {
	st := diffStore(t)
	for _, q := range diffCorpus {
		// every ORDER BY query in the fixed corpus sorts on keys that are
		// unique per row, so the exact sequence is checked
		assertEngineAgreement(t, st, q, true)
	}
}

// --- randomized differential testing over synth stores ---

// The random query generator lives in internal/synth (synth.QueryGen) so
// other packages can fuzz against the same shape distribution. Its shapes
// include ORDER BY with LIMIT/OFFSET (the streaming top-k path) and
// GROUP BY with COUNT/SUM/MIN/MAX/AVG (the streaming hash-group path).
func TestDifferentialRandomized(t *testing.T) {
	stores := []*store.Store{
		synth.Generate(synth.Spec{Name: "diffa", Classes: 8, Instances: 300, ObjectProps: 12, DataProps: 6, LinkFactor: 2, CommunitySeeds: 3, Seed: 7}),
		synth.Generate(synth.Spec{Name: "diffb", Classes: 4, Instances: 120, ObjectProps: 6, DataProps: 4, LinkFactor: 1, Seed: 11}),
	}
	const perStore = 80
	for si, st := range stores {
		gen := synth.NewQueryGen(st, int64(100+si))
		for i := 0; i < perStore; i++ {
			q := gen.Query()
			// randomized ORDER BY keys may tie, so rows are compared
			// key-aware rather than as an exact sequence
			assertEngineAgreement(t, st, q, false)
		}
	}
}
