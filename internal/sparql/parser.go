package sparql

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/rdf"
)

// Parse parses a SPARQL query string.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, prefixes: rdf.NewPrefixMap()}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse parses src and panics on error; for fixed queries in tests and
// generators.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	toks     []token
	pos      int
	prefixes *rdf.PrefixMap
	bnodeSeq int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sparql: line %d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

func (p *parser) punct(s string) bool {
	if p.cur().kind == tokPunct && p.cur().text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.punct(s) {
		return p.errf("expected %q, found %s", s, p.cur())
	}
	return nil
}

func (p *parser) keyword(kw string) bool {
	if p.cur().kind == tokKeyword && p.cur().text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) peekKeyword(kw string) bool {
	return p.cur().kind == tokKeyword && p.cur().text == kw
}

func (p *parser) query() (*Query, error) {
	q := &Query{Prefixes: p.prefixes, Limit: -1}
	// prologue
	for {
		if p.keyword("PREFIX") {
			if p.cur().kind != tokPName {
				return nil, p.errf("expected prefixed name after PREFIX")
			}
			pname := p.next().text
			i := strings.IndexByte(pname, ':')
			prefix := pname[:i]
			if p.cur().kind != tokIRI {
				return nil, p.errf("expected IRI after PREFIX %s:", prefix)
			}
			p.prefixes.Bind(prefix, p.next().text)
			continue
		}
		if p.keyword("BASE") {
			if p.cur().kind != tokIRI {
				return nil, p.errf("expected IRI after BASE")
			}
			p.next()
			continue
		}
		break
	}

	switch {
	case p.keyword("SELECT"):
		q.Form = FormSelect
		if p.keyword("DISTINCT") {
			q.Distinct = true
		} else if p.keyword("REDUCED") {
			q.Reduced = true
		}
		if p.punct("*") {
			q.Star = true
		} else {
			for {
				if p.cur().kind == tokVar {
					q.Select = append(q.Select, SelectItem{Var: p.next().text})
					continue
				}
				if p.cur().kind == tokPunct && p.cur().text == "(" {
					p.pos++
					e, err := p.expression()
					if err != nil {
						return nil, err
					}
					if !p.keyword("AS") {
						return nil, p.errf("expected AS in projection expression")
					}
					if p.cur().kind != tokVar {
						return nil, p.errf("expected variable after AS")
					}
					v := p.next().text
					if err := p.expectPunct(")"); err != nil {
						return nil, err
					}
					q.Select = append(q.Select, SelectItem{Var: v, Expr: e})
					continue
				}
				break
			}
			if len(q.Select) == 0 {
				return nil, p.errf("empty SELECT clause")
			}
		}
	case p.keyword("ASK"):
		q.Form = FormAsk
	case p.keyword("CONSTRUCT"):
		q.Form = FormConstruct
		if err := p.expectPunct("{"); err != nil {
			return nil, err
		}
		tmpl := &BGP{}
		for !p.punct("}") {
			if p.cur().kind == tokEOF {
				return nil, p.errf("unterminated CONSTRUCT template")
			}
			if err := p.triplesSameSubject(tmpl); err != nil {
				return nil, err
			}
			p.punct(".")
		}
		if len(tmpl.Patterns) == 0 {
			return nil, p.errf("empty CONSTRUCT template")
		}
		q.Template = tmpl.Patterns
	default:
		return nil, p.errf("expected SELECT or ASK, found %s", p.cur())
	}

	// WHERE is optional before the group
	p.keyword("WHERE")
	g, err := p.groupGraphPattern()
	if err != nil {
		return nil, err
	}
	q.Where = g

	// solution modifiers
	if p.keyword("GROUP") {
		if !p.keyword("BY") {
			return nil, p.errf("expected BY after GROUP")
		}
		for {
			if p.cur().kind == tokVar {
				q.GroupBy = append(q.GroupBy, &ExprVar{Name: p.next().text})
				continue
			}
			if p.cur().kind == tokPunct && p.cur().text == "(" {
				p.pos++
				e, err := p.expression()
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				q.GroupBy = append(q.GroupBy, e)
				continue
			}
			break
		}
		if len(q.GroupBy) == 0 {
			return nil, p.errf("empty GROUP BY")
		}
	}
	if p.keyword("HAVING") {
		for p.cur().kind == tokPunct && p.cur().text == "(" {
			p.pos++
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			q.Having = append(q.Having, e)
		}
		if len(q.Having) == 0 {
			return nil, p.errf("empty HAVING")
		}
	}
	if p.keyword("ORDER") {
		if !p.keyword("BY") {
			return nil, p.errf("expected BY after ORDER")
		}
		for {
			switch {
			case p.keyword("ASC"):
				if err := p.expectPunct("("); err != nil {
					return nil, err
				}
				e, err := p.expression()
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				q.OrderBy = append(q.OrderBy, OrderCond{Expr: e})
			case p.keyword("DESC"):
				if err := p.expectPunct("("); err != nil {
					return nil, err
				}
				e, err := p.expression()
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				q.OrderBy = append(q.OrderBy, OrderCond{Expr: e, Desc: true})
			case p.cur().kind == tokVar:
				q.OrderBy = append(q.OrderBy, OrderCond{Expr: &ExprVar{Name: p.next().text}})
			default:
				if len(q.OrderBy) == 0 {
					return nil, p.errf("empty ORDER BY")
				}
				goto done
			}
		}
	done:
	}
	// LIMIT and OFFSET in either order
	for {
		if p.keyword("LIMIT") {
			n, err := p.integer()
			if err != nil {
				return nil, err
			}
			q.Limit = n
			continue
		}
		if p.keyword("OFFSET") {
			n, err := p.integer()
			if err != nil {
				return nil, err
			}
			q.Offset = n
			continue
		}
		break
	}
	if p.cur().kind != tokEOF {
		return nil, p.errf("unexpected trailing input %s", p.cur())
	}
	return q, nil
}

func (p *parser) integer() (int, error) {
	if p.cur().kind != tokNumber {
		return 0, p.errf("expected integer")
	}
	n, err := strconv.Atoi(p.next().text)
	if err != nil || n < 0 {
		return 0, p.errf("bad integer")
	}
	return n, nil
}

func (p *parser) groupGraphPattern() (*GroupPattern, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	g := &GroupPattern{}
	var bgp *BGP
	flushBGP := func() {
		if bgp != nil && len(bgp.Patterns) > 0 {
			g.Elems = append(g.Elems, bgp)
		}
		bgp = nil
	}
	for {
		switch {
		case p.punct("}"):
			flushBGP()
			return g, nil
		case p.cur().kind == tokEOF:
			return nil, p.errf("unterminated group pattern")
		case p.keyword("FILTER"):
			e, err := p.filterConstraint()
			if err != nil {
				return nil, err
			}
			g.Filters = append(g.Filters, e)
			p.punct(".")
		case p.keyword("OPTIONAL"):
			inner, err := p.groupGraphPattern()
			if err != nil {
				return nil, err
			}
			flushBGP()
			g.Elems = append(g.Elems, &OptionalPattern{Inner: inner})
			p.punct(".")
		case p.keyword("MINUS"):
			inner, err := p.groupGraphPattern()
			if err != nil {
				return nil, err
			}
			flushBGP()
			g.Elems = append(g.Elems, &MinusPattern{Inner: inner})
			p.punct(".")
		case p.keyword("BIND"):
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			if !p.keyword("AS") {
				return nil, p.errf("expected AS in BIND")
			}
			if p.cur().kind != tokVar {
				return nil, p.errf("expected variable in BIND")
			}
			v := p.next().text
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			flushBGP()
			g.Elems = append(g.Elems, &BindPattern{Expr: e, Var: v})
			p.punct(".")
		case p.keyword("VALUES"):
			vp, err := p.valuesBlock()
			if err != nil {
				return nil, err
			}
			flushBGP()
			g.Elems = append(g.Elems, vp)
			p.punct(".")
		case p.cur().kind == tokPunct && p.cur().text == "{":
			// sub-group, possibly a UNION chain
			left, err := p.groupGraphPattern()
			if err != nil {
				return nil, err
			}
			flushBGP()
			node := GraphPattern(left)
			for p.keyword("UNION") {
				right, err := p.groupGraphPattern()
				if err != nil {
					return nil, err
				}
				lg, ok := node.(*GroupPattern)
				if !ok {
					lg = &GroupPattern{Elems: []GraphPattern{node}}
				}
				node = &UnionPattern{Left: lg, Right: right}
			}
			g.Elems = append(g.Elems, node)
			p.punct(".")
		default:
			// triples block
			if bgp == nil {
				bgp = &BGP{}
			}
			if err := p.triplesSameSubject(bgp); err != nil {
				return nil, err
			}
			// The '.' separator is optional before '}' and before the
			// non-triple constructs (FILTER, OPTIONAL, BIND, ...).
			p.punct(".")
		}
	}
}

func (p *parser) filterConstraint() (Expression, error) {
	// FILTER ( expr ) or FILTER builtinCall(...)
	if p.cur().kind == tokPunct && p.cur().text == "(" {
		p.pos++
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	if p.cur().kind == tokKeyword {
		return p.primaryExpression()
	}
	return nil, p.errf("expected constraint after FILTER")
}

func (p *parser) valuesBlock() (*ValuesPattern, error) {
	vp := &ValuesPattern{}
	if p.cur().kind == tokVar {
		// single-var form: VALUES ?x { v1 v2 }
		vp.Vars = []string{p.next().text}
		if err := p.expectPunct("{"); err != nil {
			return nil, err
		}
		for !p.punct("}") {
			if p.cur().kind == tokEOF {
				return nil, p.errf("unterminated VALUES block")
			}
			t, err := p.dataTerm()
			if err != nil {
				return nil, err
			}
			vp.Rows = append(vp.Rows, []rdf.Term{t})
		}
		return vp, nil
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for p.cur().kind == tokVar {
		vp.Vars = append(vp.Vars, p.next().text)
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	for !p.punct("}") {
		if p.cur().kind == tokEOF {
			return nil, p.errf("unterminated VALUES block")
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		row := make([]rdf.Term, 0, len(vp.Vars))
		for !p.punct(")") {
			if p.keyword("UNDEF") {
				row = append(row, rdf.Term{})
				continue
			}
			t, err := p.dataTerm()
			if err != nil {
				return nil, err
			}
			row = append(row, t)
		}
		if len(row) != len(vp.Vars) {
			return nil, p.errf("VALUES row has %d terms, want %d", len(row), len(vp.Vars))
		}
		vp.Rows = append(vp.Rows, row)
	}
	return vp, nil
}

// dataTerm parses a constant term in a VALUES block.
func (p *parser) dataTerm() (rdf.Term, error) {
	n, err := p.nodePattern(false)
	if err != nil {
		return rdf.Term{}, err
	}
	if n.IsVar() {
		return rdf.Term{}, p.errf("variable not allowed in VALUES data")
	}
	return n.Term, nil
}

func (p *parser) triplesSameSubject(bgp *BGP) error {
	s, err := p.nodePattern(true)
	if err != nil {
		return err
	}
	return p.propertyList(bgp, s)
}

func (p *parser) propertyList(bgp *BGP, s NodePattern) error {
	for {
		pred, err := p.verb()
		if err != nil {
			return err
		}
		for {
			o, err := p.objectNode(bgp)
			if err != nil {
				return err
			}
			bgp.Patterns = append(bgp.Patterns, TriplePattern{S: s, P: pred, O: o})
			if p.punct(",") {
				continue
			}
			break
		}
		if p.punct(";") {
			// trailing ';'
			if c := p.cur(); c.kind == tokPunct && (c.text == "." || c.text == "}" || c.text == "]") {
				return nil
			}
			continue
		}
		return nil
	}
}

func (p *parser) verb() (NodePattern, error) {
	if p.cur().kind == tokA {
		p.pos++
		return NodePattern{Term: rdf.NewIRI(rdf.RDFType)}, nil
	}
	return p.nodePattern(true)
}

// objectNode parses an object, which may be an anonymous blank node with a
// nested property list.
func (p *parser) objectNode(bgp *BGP) (NodePattern, error) {
	if p.cur().kind == tokPunct && p.cur().text == "[" {
		p.pos++
		p.bnodeSeq++
		b := NodePattern{Term: rdf.NewBlank(fmt.Sprintf("q%d", p.bnodeSeq))}
		if p.punct("]") {
			return b, nil
		}
		if err := p.propertyList(bgp, b); err != nil {
			return NodePattern{}, err
		}
		if err := p.expectPunct("]"); err != nil {
			return NodePattern{}, err
		}
		return b, nil
	}
	return p.nodePattern(true)
}

// nodePattern parses a term or variable. allowVar controls whether
// variables are accepted.
func (p *parser) nodePattern(allowVar bool) (NodePattern, error) {
	t := p.cur()
	switch t.kind {
	case tokVar:
		if !allowVar {
			return NodePattern{}, p.errf("variable not allowed here")
		}
		p.pos++
		return NodePattern{Var: t.text}, nil
	case tokIRI:
		p.pos++
		return NodePattern{Term: rdf.NewIRI(t.text)}, nil
	case tokPName:
		p.pos++
		iri, err := p.prefixes.Expand(t.text)
		if err != nil {
			return NodePattern{}, p.errf("%v", err)
		}
		return NodePattern{Term: rdf.NewIRI(iri)}, nil
	case tokBlank:
		p.pos++
		return NodePattern{Term: rdf.NewBlank(t.text)}, nil
	case tokString:
		p.pos++
		return NodePattern{Term: p.literalSuffix(t.text)}, nil
	case tokNumber:
		p.pos++
		return NodePattern{Term: numberTerm(t)}, nil
	case tokKeyword:
		switch t.text {
		case "TRUE":
			p.pos++
			return NodePattern{Term: rdf.NewBoolean(true)}, nil
		case "FALSE":
			p.pos++
			return NodePattern{Term: rdf.NewBoolean(false)}, nil
		}
	case tokPunct:
		if t.text == "-" || t.text == "+" {
			neg := t.text == "-"
			if p.toks[p.pos+1].kind == tokNumber {
				p.pos++
				nt := p.next()
				term := numberTerm(nt)
				if neg {
					term.Value = "-" + term.Value
				}
				return NodePattern{Term: term}, nil
			}
		}
	}
	return NodePattern{}, p.errf("expected term or variable, found %s", t)
}

// literalSuffix applies an optional @lang or ^^datatype suffix to a lexed
// string.
func (p *parser) literalSuffix(lex string) rdf.Term {
	t := p.cur()
	if t.kind == tokPunct && strings.HasPrefix(t.text, "@") && len(t.text) > 1 {
		p.pos++
		return rdf.NewLangLiteral(lex, t.text[1:])
	}
	if t.kind == tokPunct && t.text == "^^" {
		p.pos++
		dt := p.cur()
		switch dt.kind {
		case tokIRI:
			p.pos++
			return rdf.NewTypedLiteral(lex, dt.text)
		case tokPName:
			p.pos++
			if iri, err := p.prefixes.Expand(dt.text); err == nil {
				return rdf.NewTypedLiteral(lex, iri)
			}
		}
	}
	return rdf.NewLiteral(lex)
}

func numberTerm(t token) rdf.Term {
	switch t.numKind {
	case "decimal":
		return rdf.NewTypedLiteral(t.text, rdf.XSDDecimal)
	case "double":
		return rdf.NewTypedLiteral(t.text, rdf.XSDDouble)
	default:
		return rdf.NewTypedLiteral(t.text, rdf.XSDInteger)
	}
}

// --- expressions (precedence climbing) ---

func (p *parser) expression() (Expression, error) { return p.orExpression() }

func (p *parser) orExpression() (Expression, error) {
	l, err := p.andExpression()
	if err != nil {
		return nil, err
	}
	for p.punct("||") {
		r, err := p.andExpression()
		if err != nil {
			return nil, err
		}
		l = &ExprBinary{Op: "||", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpression() (Expression, error) {
	l, err := p.relExpression()
	if err != nil {
		return nil, err
	}
	for p.punct("&&") {
		r, err := p.relExpression()
		if err != nil {
			return nil, err
		}
		l = &ExprBinary{Op: "&&", L: l, R: r}
	}
	return l, nil
}

func (p *parser) relExpression() (Expression, error) {
	l, err := p.addExpression()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"=", "!=", "<=", ">=", "<", ">"} {
		if p.cur().kind == tokPunct && p.cur().text == op {
			p.pos++
			r, err := p.addExpression()
			if err != nil {
				return nil, err
			}
			return &ExprBinary{Op: op, L: l, R: r}, nil
		}
	}
	// IN / NOT IN
	if p.peekKeyword("IN") || (p.peekKeyword("NOT") && p.toks[p.pos+1].kind == tokKeyword && p.toks[p.pos+1].text == "IN") {
		negate := p.keyword("NOT")
		p.keyword("IN")
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var list []Expression
		for {
			if p.punct(")") {
				break
			}
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if p.punct(",") {
				continue
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			break
		}
		var node Expression
		for _, e := range list {
			eq := &ExprBinary{Op: "=", L: l, R: e}
			if node == nil {
				node = Expression(eq)
			} else {
				node = &ExprBinary{Op: "||", L: node, R: eq}
			}
		}
		if node == nil {
			node = &ExprTerm{Term: rdf.NewBoolean(false)}
		}
		if negate {
			node = &ExprUnary{Op: "!", X: node}
		}
		return node, nil
	}
	return l, nil
}

func (p *parser) addExpression() (Expression, error) {
	l, err := p.mulExpression()
	if err != nil {
		return nil, err
	}
	for {
		if p.punct("+") {
			r, err := p.mulExpression()
			if err != nil {
				return nil, err
			}
			l = &ExprBinary{Op: "+", L: l, R: r}
			continue
		}
		if p.punct("-") {
			r, err := p.mulExpression()
			if err != nil {
				return nil, err
			}
			l = &ExprBinary{Op: "-", L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) mulExpression() (Expression, error) {
	l, err := p.unaryExpression()
	if err != nil {
		return nil, err
	}
	for {
		if p.punct("*") {
			r, err := p.unaryExpression()
			if err != nil {
				return nil, err
			}
			l = &ExprBinary{Op: "*", L: l, R: r}
			continue
		}
		if p.punct("/") {
			r, err := p.unaryExpression()
			if err != nil {
				return nil, err
			}
			l = &ExprBinary{Op: "/", L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) unaryExpression() (Expression, error) {
	if p.punct("!") {
		x, err := p.unaryExpression()
		if err != nil {
			return nil, err
		}
		return &ExprUnary{Op: "!", X: x}, nil
	}
	if p.punct("-") {
		x, err := p.unaryExpression()
		if err != nil {
			return nil, err
		}
		return &ExprUnary{Op: "-", X: x}, nil
	}
	if p.punct("+") {
		return p.unaryExpression()
	}
	return p.primaryExpression()
}

var aggregateFns = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"SAMPLE": true, "GROUP_CONCAT": true,
}

func (p *parser) primaryExpression() (Expression, error) {
	t := p.cur()
	switch t.kind {
	case tokPunct:
		if t.text == "(" {
			p.pos++
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case tokVar:
		p.pos++
		return &ExprVar{Name: t.text}, nil
	case tokIRI:
		p.pos++
		return &ExprTerm{Term: rdf.NewIRI(t.text)}, nil
	case tokPName:
		p.pos++
		iri, err := p.prefixes.Expand(t.text)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		return &ExprTerm{Term: rdf.NewIRI(iri)}, nil
	case tokString:
		p.pos++
		return &ExprTerm{Term: p.literalSuffix(t.text)}, nil
	case tokNumber:
		p.pos++
		return &ExprTerm{Term: numberTerm(t)}, nil
	case tokKeyword:
		switch {
		case t.text == "TRUE":
			p.pos++
			return &ExprTerm{Term: rdf.NewBoolean(true)}, nil
		case t.text == "FALSE":
			p.pos++
			return &ExprTerm{Term: rdf.NewBoolean(false)}, nil
		case aggregateFns[t.text]:
			return p.aggregate()
		default:
			return p.builtinCall()
		}
	}
	return nil, p.errf("expected expression, found %s", t)
}

func (p *parser) aggregate() (Expression, error) {
	fn := p.next().text
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	agg := &ExprAggregate{Fn: fn, Separator: " "}
	if p.keyword("DISTINCT") {
		agg.Distinct = true
	}
	if fn == "COUNT" && p.punct("*") {
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return agg, nil
	}
	e, err := p.expression()
	if err != nil {
		return nil, err
	}
	agg.Arg = e
	if fn == "GROUP_CONCAT" && p.punct(";") {
		if !p.keyword("SEPARATOR") {
			return nil, p.errf("expected SEPARATOR in GROUP_CONCAT")
		}
		if !p.punct("=") {
			return nil, p.errf("expected '=' after SEPARATOR")
		}
		if p.cur().kind != tokString {
			return nil, p.errf("expected string separator")
		}
		agg.Separator = p.next().text
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return agg, nil
}

// builtin arity table: min and max argument counts.
var builtinArity = map[string][2]int{
	"REGEX": {2, 3}, "STR": {1, 1}, "LANG": {1, 1}, "LANGMATCHES": {2, 2},
	"DATATYPE": {1, 1}, "BOUND": {1, 1}, "IRI": {1, 1}, "URI": {1, 1},
	"ISIRI": {1, 1}, "ISURI": {1, 1}, "ISBLANK": {1, 1},
	"ISLITERAL": {1, 1}, "ISNUMERIC": {1, 1}, "STRLEN": {1, 1},
	"UCASE": {1, 1}, "LCASE": {1, 1}, "CONTAINS": {2, 2},
	"STRSTARTS": {2, 2}, "STRENDS": {2, 2}, "CONCAT": {0, 16},
	"REPLACE": {3, 4}, "ABS": {1, 1}, "CEIL": {1, 1}, "FLOOR": {1, 1},
	"ROUND": {1, 1}, "COALESCE": {1, 16}, "IF": {3, 3}, "SAMETERM": {2, 2},
}

func (p *parser) builtinCall() (Expression, error) {
	fn := p.cur().text
	ar, ok := builtinArity[fn]
	if !ok {
		return nil, p.errf("unknown function %s", fn)
	}
	p.pos++
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var args []Expression
	if !p.punct(")") {
		for {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			args = append(args, e)
			if p.punct(",") {
				continue
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			break
		}
	}
	if len(args) < ar[0] || len(args) > ar[1] {
		return nil, p.errf("%s: wrong number of arguments (%d)", fn, len(args))
	}
	return &ExprCall{Fn: fn, Args: args}, nil
}
