package sparql

// Streaming query execution. A RowSeq is the incremental counterpart of
// Result: rows are produced one at a time, straight out of the ID-space
// executor's join pipeline, so a consumer that stops early (LIMIT, a
// canceled context, an abandoned HTTP connection) costs only the rows it
// actually pulled and memory stays O(row) instead of O(result).
//
// The streaming executor reuses the compiled plan of exec.go but drives
// it depth-first: instead of extending a whole row buffer pattern by
// pattern, each row travels the entire pipeline alone, yielding at the
// end. Solution modifiers that inherently need the full solution set
// (ORDER BY, GROUP BY/aggregates) and the non-SELECT forms fall back to
// materialized execution and stream from the finished Result, so every
// query streams — just not every query streams incrementally.

import (
	"context"
	"errors"
	"iter"
	"time"

	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/store"
)

// RowSeq is a streaming SELECT result: the head (projected variables) is
// known up front, rows arrive incrementally. The zero value is an empty
// stream.
//
// Contract: iterate with Next or All; after the stream is exhausted (or
// abandoned) check Err for the reason it stopped early, and call Close
// when abandoning a stream before exhaustion so the producer can release
// its resources (an HTTP body, a store snapshot). Close is idempotent
// and safe after exhaustion. A RowSeq is single-consumer and not safe
// for concurrent use.
type RowSeq struct {
	// Vars is the projected variable list, in projection order.
	Vars []string
	// Ask and Boolean are set for ASK queries; the stream yields no rows.
	Ask     bool
	Boolean bool
	// Graph carries a CONSTRUCT result through the streaming interface
	// (such queries have no row stream to speak of).
	Graph *rdf.Graph

	next    func() (Binding, bool)
	stop    func()
	onClose func()
	errp    *error
	done    bool
}

// OnClose registers fn to run exactly once when the stream ends — by
// exhaustion or by Close — so producers can release resources (an HTTP
// body, a file) even if the consumer abandons the stream before pulling
// a single row. Multiple registrations compose: each fn runs once, in
// registration order, so a producer's cleanup and an observer's
// accounting can coexist on one stream.
func (rs *RowSeq) OnClose(fn func()) {
	if prev := rs.onClose; prev != nil {
		rs.onClose = func() { prev(); fn() }
		return
	}
	rs.onClose = fn
}

// NewRowSeq builds a RowSeq over a push iterator. The producer reports a
// mid-stream failure by setting *errp before returning; errp may be nil
// for infallible producers. The producer runs on the consumer's
// goroutine (via iter.Pull), so no synchronization is needed around errp.
func NewRowSeq(vars []string, seq iter.Seq[Binding], errp *error) *RowSeq {
	next, stop := iter.Pull(seq)
	return &RowSeq{Vars: vars, next: next, stop: stop, errp: errp}
}

// ResultSeq adapts a materialized Result to the streaming interface.
func ResultSeq(res *Result) *RowSeq {
	i := 0
	return &RowSeq{
		Vars: res.Vars, Ask: res.Ask, Boolean: res.Boolean, Graph: res.Graph,
		next: func() (Binding, bool) {
			if i >= len(res.Rows) {
				return nil, false
			}
			b := res.Rows[i]
			i++
			return b, true
		},
	}
}

// resultSeqCtx streams a materialized Result but honors ctx between
// rows, so even fallback streams cancel within one row boundary.
func resultSeqCtx(ctx context.Context, res *Result) *RowSeq {
	var err error
	i := 0
	return &RowSeq{
		Vars: res.Vars, Ask: res.Ask, Boolean: res.Boolean, Graph: res.Graph,
		errp: &err,
		next: func() (Binding, bool) {
			if err = ctx.Err(); err != nil {
				return nil, false
			}
			if i >= len(res.Rows) {
				return nil, false
			}
			b := res.Rows[i]
			i++
			return b, true
		},
	}
}

// Next pulls the next row. ok is false once the stream is exhausted,
// failed (see Err) or closed.
func (rs *RowSeq) Next() (Binding, bool) {
	if rs.done || rs.next == nil {
		return nil, false
	}
	b, ok := rs.next()
	if !ok {
		rs.done = true
		if rs.stop != nil {
			rs.stop()
		}
		if rs.onClose != nil {
			rs.onClose()
			rs.onClose = nil
		}
	}
	return b, ok
}

// All returns the remaining rows as a range-over-func iterator. Breaking
// out of the range leaves the stream open; call Close to release it.
func (rs *RowSeq) All() iter.Seq[Binding] {
	return func(yield func(Binding) bool) {
		for {
			b, ok := rs.Next()
			if !ok {
				return
			}
			if !yield(b) {
				return
			}
		}
	}
}

// Err reports why the stream stopped: nil after a complete, successful
// iteration (or when iteration has not finished), the producer's error
// otherwise. Check it after the loop, like bufio.Scanner.
func (rs *RowSeq) Err() error {
	if rs.errp != nil {
		return *rs.errp
	}
	return nil
}

// Close releases the stream's resources. It is idempotent and safe to
// call at any point; rows cannot be pulled afterwards.
func (rs *RowSeq) Close() {
	if rs.done {
		return
	}
	rs.done = true
	if rs.stop != nil {
		rs.stop()
	}
	if rs.onClose != nil {
		rs.onClose()
		rs.onClose = nil
	}
}

// Collect drains the stream into a materialized Result, closing it.
func (rs *RowSeq) Collect() (*Result, error) {
	defer rs.Close()
	if rs.Ask {
		return &Result{Ask: true, Boolean: rs.Boolean}, rs.Err()
	}
	res := &Result{Vars: rs.Vars, Graph: rs.Graph}
	for {
		b, ok := rs.Next()
		if !ok {
			break
		}
		res.Rows = append(res.Rows, b)
	}
	if err := rs.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// Limit returns a stream that yields at most n rows of rs, then stops
// cleanly — the streaming counterpart of an endpoint's silent result cap.
func (rs *RowSeq) Limit(n int) *RowSeq {
	out := &RowSeq{Vars: rs.Vars, Ask: rs.Ask, Boolean: rs.Boolean, Graph: rs.Graph, errp: rs.errp}
	left := n
	out.next = func() (Binding, bool) {
		if left <= 0 {
			rs.Close()
			return nil, false
		}
		left--
		return rs.Next()
	}
	out.stop = rs.Close
	return out
}

// Tap returns a stream identical to rs that additionally calls fn for
// every row pulled through it; the endpoint simulation uses it to charge
// per-row virtual cost at the moment a row crosses the wire.
func (rs *RowSeq) Tap(fn func(Binding)) *RowSeq {
	out := &RowSeq{Vars: rs.Vars, Ask: rs.Ask, Boolean: rs.Boolean, Graph: rs.Graph, errp: rs.errp}
	out.next = func() (Binding, bool) {
		b, ok := rs.Next()
		if ok {
			fn(b)
		}
		return b, ok
	}
	out.stop = rs.Close
	return out
}

// kind buckets the query for the engine's registry series.
func (q *Query) kind() string {
	switch {
	case q.Form == FormAsk:
		return "ask"
	case q.Form == FormConstruct:
		return "construct"
	case q.needsGrouping():
		return "aggregate"
	case len(q.OrderBy) > 0:
		return "ordered"
	case q.Distinct || q.Reduced:
		return "distinct"
	default:
		return "select"
	}
}

// instrumentStream attaches per-query engine accounting to rs: rows are
// counted as they are pulled, and at stream end (exhaustion or Close) the
// query count, row count and duration land in kind-labeled registry
// families; sp, when non-nil, is closed with the yielded row count. With
// reg and sp both nil (the uninstrumented path) this is a no-op — no
// wrapper, no per-row work.
func instrumentStream(rs *RowSeq, reg *obs.Registry, sp *obs.Span, kind string, start time.Time) {
	if reg == nil && sp == nil {
		return
	}
	var rows int64
	if inner := rs.next; inner != nil {
		rs.next = func() (Binding, bool) {
			b, ok := inner()
			if ok {
				rows++
			}
			return b, ok
		}
	}
	rs.OnClose(func() {
		sp.SetRows(0, rows)
		sp.End()
		if reg != nil {
			reg.CounterVec("hbold_query_total", "Queries executed by the SPARQL engine.", "kind").With(kind).Inc()
			reg.CounterVec("hbold_query_rows_total", "Rows yielded by the SPARQL engine.", "kind").With(kind).Add(float64(rows))
			reg.HistogramVec("hbold_query_duration_seconds", "Query wall time, stream open to stream end.", nil, "kind").With(kind).Observe(time.Since(start).Seconds())
		}
	})
}

// StreamExec parses the query and streams it against st.
func StreamExec(ctx context.Context, st store.Queryable, query string) (*RowSeq, error) {
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return q.Stream(ctx, st)
}

// NeedsGrouping reports whether the query requires the grouping/
// aggregation machinery (which needs the full solution set). The
// federation layer uses it to reject fan-out of aggregates — each
// member would aggregate its own partition and the merge would
// interleave partial results, not combine them.
func (q *Query) NeedsGrouping() bool { return q.needsGrouping() }

// needsGrouping reports whether the query requires the grouping/
// aggregation machinery (which needs the full solution set).
func (q *Query) needsGrouping() bool {
	if len(q.GroupBy) > 0 || len(q.Having) > 0 {
		return true
	}
	for _, it := range q.Select {
		if it.Expr != nil && HasAggregate(it.Expr) {
			return true
		}
	}
	return false
}

// Stream executes the parsed query incrementally against st. SELECT
// queries without ORDER BY or aggregation run on the streaming ID-space
// pipeline and yield each solution as it is produced; everything else
// (ASK, CONSTRUCT, grouped or ordered queries, plans only the legacy
// evaluator supports) executes materialized and streams from the
// finished Result. Either way the returned stream honors ctx between
// rows, and the rows are identical to Exec's up to order.
func (q *Query) Stream(ctx context.Context, st store.Queryable) (*RowSeq, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Observability is opt-in via the context: without a registry or
	// trace attached, kind/start stay unused and no wrapper is added.
	reg := obs.RegistryFrom(ctx)
	kind := q.kind()
	sp := obs.StartSpan(ctx, "query:"+kind)
	var start time.Time
	if reg != nil || sp != nil {
		start = time.Now()
	}
	fail := func(err error) (*RowSeq, error) {
		sp.End()
		if reg != nil {
			reg.CounterVec("hbold_query_errors_total", "Queries that failed before yielding a stream.", "kind").With(kind).Inc()
		}
		return nil, err
	}
	// Dispatch: SELECT queries stream whenever an incremental operator
	// covers their modifier surface. Grouping streams through the hash
	// aggregation when the shape is accumulator-friendly; ORDER BY streams
	// through the bounded top-k heap when a LIMIT bounds the window (and
	// DISTINCT is absent — dedup after the heap could shrink the window
	// below k). Everything else executes materialized and streams from the
	// finished Result.
	grouping := q.needsGrouping()
	var aggSpec *streamAggSpec
	if grouping {
		aggSpec = q.streamAggSpec()
	}
	topK := !grouping && len(q.OrderBy) > 0 &&
		q.topKBound() >= 0 && !q.Distinct && !q.Reduced
	if q.Form != FormSelect || (grouping && aggSpec == nil) ||
		(!grouping && len(q.OrderBy) > 0 && !topK) {
		res, err := q.Exec(st)
		if err != nil {
			return fail(err)
		}
		rs := resultSeqCtx(ctx, res)
		instrumentStream(rs, reg, sp, kind, start)
		return rs, nil
	}

	var compileT0 time.Time
	if reg != nil {
		compileT0 = time.Now()
	}
	ex := newIDExec(st)
	comp := &compiler{ex: ex, slots: newSlotmap()}
	root, err := comp.group(q.Where)
	if err != nil {
		if errors.Is(err, errUnsupportedPlan) {
			res, lerr := q.execLegacy(st)
			if lerr != nil {
				return fail(lerr)
			}
			rs := resultSeqCtx(ctx, res)
			instrumentStream(rs, reg, sp, kind, start)
			return rs, nil
		}
		return fail(err)
	}

	// Streaming hash aggregation: rows fold into per-group accumulators as
	// the pipeline produces them; only the groups — not the solution set —
	// are ever live. The finished groups pass through the same ORDER BY /
	// DISTINCT / window pipeline as the batch aggregation.
	if aggSpec != nil {
		gslots := aggSpec.resolve(comp.slots)
		ex.freeze(comp)
		if reg != nil {
			reg.Histogram("hbold_query_compile_seconds", "Plan compilation time for ID-space streamed queries.", nil).Observe(time.Since(compileT0).Seconds())
			reg.CounterVec("hbold_stream_op_total", "Streaming operator activations by operator.", "op").With("hash-group").Inc()
		}
		agg := newStreamAgg(ex, aggSpec, gslots)
		se := &streamExec{ctx: ctx, ex: ex, orders: map[*cBGP][]int{}, minus: map[*cMinus]*rowbuf{}}
		var streamErr error
		seq := func(yield func(Binding) bool) {
			var scanned int64
			start := make([]store.ID, ex.nslots)
			se.streamGroup(root, start, 0, func(r []store.ID, _ int) bool {
				if err := ctx.Err(); err != nil {
					se.err = err
					return false
				}
				scanned++
				agg.add(r)
				return true
			})
			if se.err != nil {
				streamErr = se.err
				return
			}
			if reg != nil {
				reg.CounterVec("hbold_stream_op_rows_total", "Rows consumed by streaming operators.", "op").With("hash-group").Add(float64(scanned))
				reg.Histogram("hbold_stream_group_count", "Groups live in the streaming hash aggregation at emit.", nil).Observe(float64(agg.groupCount()))
			}
			out := agg.emit()
			if len(q.OrderBy) > 0 {
				sortSolutions(out, q.OrderBy)
			}
			if q.Distinct || q.Reduced {
				out = distinct(out, aggSpec.vars)
			}
			out = windowBindings(out, q.Offset, q.Limit)
			for _, b := range out {
				if err := ctx.Err(); err != nil {
					streamErr = err
					return
				}
				if !yield(b) {
					return
				}
			}
		}
		rs := NewRowSeq(aggSpec.vars, seq, &streamErr)
		instrumentStream(rs, reg, sp, kind, start)
		return rs, nil
	}

	// Resolve the projection surface through the same helper as the
	// batch path.
	aliases, vars, projSlots, obVars := q.resolveSelect(comp, ex)
	if reg != nil {
		reg.Histogram("hbold_query_compile_seconds", "Plan compilation time for ID-space streamed queries.", nil).Observe(time.Since(compileT0).Seconds())
	}

	// Bounded top-k ORDER BY … LIMIT: every pipeline row is offered to a
	// max-heap of OFFSET+LIMIT entries and the retained window streams out
	// in sort order at stream end — O(k) live rows however many solutions
	// the pattern produces.
	if topK {
		if reg != nil {
			reg.CounterVec("hbold_stream_op_total", "Streaming operator activations by operator.", "op").With("top-k").Inc()
		}
		se := &streamExec{ctx: ctx, ex: ex, orders: map[*cBGP][]int{}, minus: map[*cMinus]*rowbuf{}}
		var streamErr error
		aliasTmp := make([]store.ID, len(aliases))
		heap := newRowTopK(q.OrderBy, q.topKBound())
		seq := func(yield func(Binding) bool) {
			var scanned int64
			var scratch OrderKey
			start := make([]store.ID, ex.nslots)
			se.streamGroup(root, start, 0, func(r []store.ID, _ int) bool {
				if err := ctx.Err(); err != nil {
					se.err = err
					return false
				}
				scanned++
				if len(aliases) > 0 {
					for j, a := range aliases {
						aliasTmp[j] = store.NoID
						if t, err := evalExpr(a.expr, ex.bindScratch(a.vars, r)); err == nil {
							aliasTmp[j] = ex.intern(t)
						}
					}
					for j, a := range aliases {
						if aliasTmp[j] != store.NoID {
							r[a.slot] = aliasTmp[j]
						}
					}
				}
				heap.offer(r, ex.orderKeyOfRowInto(q.OrderBy, obVars, r, &scratch))
				return true
			})
			if se.err != nil {
				streamErr = se.err
				return
			}
			if reg != nil {
				reg.CounterVec("hbold_stream_op_rows_total", "Rows consumed by streaming operators.", "op").With("top-k").Add(float64(scanned))
				reg.Histogram("hbold_stream_topk_heap_rows", "Rows retained by the streaming top-k heap at emit.", nil).Observe(float64(heap.size()))
			}
			es := heap.sorted()
			if q.Offset >= len(es) {
				es = nil
			} else {
				es = es[q.Offset:]
			}
			for _, en := range es {
				if err := ctx.Err(); err != nil {
					streamErr = err
					return
				}
				r := en.row
				var b Binding
				if q.Star {
					b = make(Binding, ex.nslots)
					for s, v := range r {
						if v != store.NoID {
							b[ex.names[s]] = ex.term(v)
						}
					}
				} else {
					b = make(Binding, len(vars))
					for j, s := range projSlots {
						if s >= 0 && r[s] != store.NoID {
							b[vars[j]] = ex.term(r[s])
						}
					}
				}
				if !yield(b) {
					return
				}
			}
		}
		rs := NewRowSeq(vars, seq, &streamErr)
		instrumentStream(rs, reg, sp, kind, start)
		return rs, nil
	}

	se := &streamExec{ctx: ctx, ex: ex, orders: map[*cBGP][]int{}, minus: map[*cMinus]*rowbuf{}}
	var streamErr error
	aliasTmp := make([]store.ID, len(aliases))
	var seen map[string]struct{}
	if q.Distinct || q.Reduced {
		seen = make(map[string]struct{})
	}
	seq := func(yield func(Binding) bool) {
		emitted, skipped := 0, 0
		var keyBuf []byte
		start := make([]store.ID, ex.nslots)
		se.streamGroup(root, start, 0, func(r []store.ID, _ int) bool {
			if err := ctx.Err(); err != nil {
				se.err = err
				return false
			}
			// projection aliases see the pre-alias row and cannot see
			// each other, matching the batch path
			if len(aliases) > 0 {
				for j, a := range aliases {
					aliasTmp[j] = store.NoID
					if t, err := evalExpr(a.expr, ex.bindScratch(a.vars, r)); err == nil {
						aliasTmp[j] = ex.intern(t)
					}
				}
				for j, a := range aliases {
					if aliasTmp[j] != store.NoID {
						r[a.slot] = aliasTmp[j]
					}
				}
			}
			if seen != nil {
				keyBuf = packIDKey(keyBuf[:0], r, projSlots)
				if _, dup := seen[string(keyBuf)]; dup {
					return true
				}
				seen[string(keyBuf)] = struct{}{}
			}
			if skipped < q.Offset {
				skipped++
				return true
			}
			if q.Limit >= 0 && emitted >= q.Limit {
				return false
			}
			var b Binding
			if q.Star {
				b = make(Binding, ex.nslots)
				for s, v := range r {
					if v != store.NoID {
						b[ex.names[s]] = ex.term(v)
					}
				}
			} else {
				b = make(Binding, len(vars))
				for j, s := range projSlots {
					if s >= 0 && r[s] != store.NoID {
						b[vars[j]] = ex.term(r[s])
					}
				}
			}
			if !yield(b) {
				return false
			}
			emitted++
			return q.Limit < 0 || emitted < q.Limit
		})
		if streamErr == nil {
			streamErr = se.err
		}
	}
	rs := NewRowSeq(vars, seq, &streamErr)
	instrumentStream(rs, reg, sp, kind, start)
	return rs, nil
}

// streamYield receives one pipeline row plus the first scratch level the
// continuation may use (levels below it belong to live ancestor frames).
type streamYield func(r []store.ID, free int) bool

// streamExec drives a compiled plan depth-first, one row at a time. Row
// copies live in a per-level scratch stack: a frame at level d only ever
// writes levels ≥ d, so a parent's row is stable while its descendants
// iterate.
type streamExec struct {
	ctx    context.Context
	ex     *idExec
	levels [][]store.ID
	orders map[*cBGP][]int
	minus  map[*cMinus]*rowbuf
	tick   int
	err    error
}

// scratch returns the reusable row buffer for scratch level d.
func (s *streamExec) scratch(d int) []store.ID {
	for len(s.levels) <= d {
		s.levels = append(s.levels, make([]store.ID, s.ex.nslots))
	}
	return s.levels[d]
}

// tickOK samples the context during index scans so a cancellation is
// noticed even while no row is reaching the consumer.
func (s *streamExec) tickOK() bool {
	s.tick++
	if s.tick&255 == 0 {
		if err := s.ctx.Err(); err != nil {
			s.err = err
			return false
		}
	}
	return true
}

func (s *streamExec) streamGroup(g *cgroup, row []store.ID, free int, yield streamYield) bool {
	return s.streamElems(g, 0, row, free, yield)
}

func (s *streamExec) streamElems(g *cgroup, i int, row []store.ID, free int, yield streamYield) bool {
	if s.err != nil {
		return false
	}
	if i == len(g.elems) {
		for _, f := range g.filters {
			ok, err := evalBool(f.expr, s.ex.bindScratch(f.vars, row))
			if err != nil || !ok {
				return true // row filtered out; keep streaming
			}
		}
		return yield(row, free)
	}
	return s.streamNode(g.elems[i], row, free, func(r []store.ID, f int) bool {
		return s.streamElems(g, i+1, r, f, yield)
	})
}

func (s *streamExec) streamNode(n cnode, row []store.ID, free int, yield streamYield) bool {
	switch x := n.(type) {
	case *cBGP:
		return s.streamPatterns(x, s.bgpOrder(x, row), 0, row, free, yield)
	case *cgroup:
		return s.streamGroup(x, row, free, yield)
	case *cOptional:
		matched := false
		if !s.streamGroup(x.inner, row, free, func(r []store.ID, f int) bool {
			matched = true
			return yield(r, f)
		}) {
			return false
		}
		if !matched {
			return yield(row, free)
		}
		return true
	case *cUnion:
		if !s.streamGroup(x.left, row, free, yield) {
			return false
		}
		return s.streamGroup(x.right, row, free, yield)
	case *cMinus:
		right := s.minusRight(x)
		for j := 0; j < right.n; j++ {
			rr := right.row(j)
			shared, equal := false, true
			for sl := range row {
				if row[sl] != store.NoID && rr[sl] != store.NoID {
					shared = true
					if row[sl] != rr[sl] {
						equal = false
						break
					}
				}
			}
			if shared && equal {
				return true // row removed; keep streaming
			}
		}
		return yield(row, free)
	case *cBind:
		nr := s.scratch(free)
		copy(nr, row)
		if t, err := evalExpr(x.expr, s.ex.bindScratch(x.vars, row)); err == nil {
			nr[x.slot] = s.ex.intern(t)
		}
		return yield(nr, free+1)
	case *cValues:
		for _, vr := range x.rows {
			nr := s.scratch(free)
			copy(nr, row)
			ok := true
			for j, slot := range x.slots {
				v := vr[j]
				if v == store.NoID {
					continue // UNDEF
				}
				if cur := nr[slot]; cur != store.NoID {
					if cur != v {
						ok = false
						break
					}
				} else {
					nr[slot] = v
				}
			}
			if ok && !yield(nr, free+1) {
				return false
			}
		}
		return true
	}
	return true
}

// bgpOrder computes (once per node) the greedy join order, seeded with
// the bound slots of the first row to reach the node — the same
// heuristic the batch executor applies per buffer.
func (s *streamExec) bgpOrder(b *cBGP, row []store.ID) []int {
	if o, ok := s.orders[b]; ok {
		return o
	}
	bound := make([]bool, s.ex.nslots)
	for sl, v := range row {
		if v != store.NoID {
			bound[sl] = true
		}
	}
	n := len(b.pats)
	used := make([]bool, n)
	order := make([]int, 0, n)
	for len(order) < n {
		first := len(order) == 0
		best, bestCard, bestConn := -1, 0, false
		for i := range b.pats {
			if used[i] {
				continue
			}
			p := &b.pats[i]
			conn := first
			for _, sl := range p.slots {
				if bound[sl] {
					conn = true
					break
				}
			}
			card := s.ex.estimate(p, bound)
			if best == -1 || (conn && !bestConn) || (conn == bestConn && card < bestCard) {
				best, bestCard, bestConn = i, card, conn
			}
		}
		used[best] = true
		order = append(order, best)
		for _, sl := range b.pats[best].slots {
			bound[sl] = true
		}
	}
	s.orders[b] = order
	return order
}

// streamPatterns is the depth-first index nested-loop join: pattern k
// extends the row with each of its matches and recurses into k+1, so a
// complete solution reaches the consumer as soon as the last pattern
// matches — the early-exit path LIMIT and cancellation ride on.
func (s *streamExec) streamPatterns(b *cBGP, order []int, k int, row []store.ID, free int, yield streamYield) bool {
	if k == len(order) {
		return yield(row, free)
	}
	p := &b.pats[order[k]]
	var pat store.IDPattern
	sConc := resolvePos(p.s, row, &pat.S)
	pConc := resolvePos(p.p, row, &pat.P)
	oConc := resolvePos(p.o, row, &pat.O)
	if pat.S > s.ex.maxStore || pat.P > s.ex.maxStore || pat.O > s.ex.maxStore {
		return true // locally-interned term: cannot match the store
	}
	if sConc && pConc && oConc {
		if !s.tickOK() {
			return false
		}
		if s.ex.rd.HasID(pat.S, pat.P, pat.O) {
			return s.streamPatterns(b, order, k+1, row, free, yield)
		}
		return true
	}
	cont := true
	s.ex.rd.MatchIDs(pat, func(ms, mp, mo store.ID) bool {
		if !s.tickOK() {
			cont = false
			return false
		}
		nr := s.scratch(free)
		copy(nr, row)
		if bindPos(p.s, ms, nr) && bindPos(p.p, mp, nr) && bindPos(p.o, mo, nr) {
			if !s.streamPatterns(b, order, k+1, nr, free+1, yield) {
				cont = false
				return false
			}
		}
		return true
	})
	return cont
}

// minusRight materializes (once per node) the right side of a MINUS with
// the batch evaluator, mirroring its uncorrelated evaluation semantics.
func (s *streamExec) minusRight(x *cMinus) *rowbuf {
	if r, ok := s.minus[x]; ok {
		return r
	}
	empty := &rowbuf{stride: s.ex.nslots, data: make([]store.ID, s.ex.nslots), n: 1}
	r := s.ex.evalGroup(x.inner, empty, -1)
	s.minus[x] = r
	return r
}
