package sparql

// Plan compilation for the ID-space execution engine.
//
// A parsed query is compiled against one store into a plan whose variables
// are dense slot indices and whose constant terms are interned IDs. A
// solution row is then a flat []store.ID of length nslots — no maps, no
// rdf.Term values — and the whole pattern algebra executes on rows in that
// encoded space (see exec.go). Terms are materialized only at the
// projection / FILTER / serialization boundaries.
//
// Constants the store has never seen (and terms produced by BIND/VALUES
// that are not in the store) are interned into a small executor-local
// dictionary whose IDs start above the store's MaxID, so every term the
// query can mention has exactly one ID and equality stays a uint32
// compare. A local ID probed against the store indexes simply matches
// nothing, which is exactly the right semantics.

import (
	"errors"
	"fmt"

	"repro/internal/store"
)

// errUnsupportedPlan marks queries the ID-space compiler cannot plan;
// EngineAuto falls back to the legacy term-space evaluator on it.
var errUnsupportedPlan = errors.New("sparql: query not supported by the ID-space engine")

// slotmap assigns dense slot indices to variable names.
type slotmap struct {
	byName map[string]int
	names  []string // slot → name
}

func newSlotmap() *slotmap { return &slotmap{byName: make(map[string]int)} }

// slot returns the slot for name, assigning the next free one if needed.
func (sm *slotmap) slot(name string) int {
	if i, ok := sm.byName[name]; ok {
		return i
	}
	i := len(sm.names)
	sm.byName[name] = i
	sm.names = append(sm.names, name)
	return i
}

// lookup returns the slot for name, or -1 if the query never binds it.
func (sm *slotmap) lookup(name string) int {
	if i, ok := sm.byName[name]; ok {
		return i
	}
	return -1
}

func (sm *slotmap) count() int { return len(sm.names) }

// varslot pairs a variable name with its slot, used to rebuild the small
// scratch Binding handed to the expression evaluator at boundaries.
type varslot struct {
	name string
	slot int
}

// cterm is one compiled triple-pattern position: a variable slot, or an
// interned constant.
type cterm struct {
	slot int      // variable slot; -1 for constants
	id   store.ID // constant ID when slot < 0 (may be executor-local)
}

func (t cterm) isVar() bool { return t.slot >= 0 }

// cpattern is one compiled triple pattern.
type cpattern struct {
	s, p, o cterm
	slots   []int // distinct variable slots in the pattern
}

// cnode is a node of the compiled pattern algebra.
type cnode interface{ isCNode() }

// cBGP is a compiled basic graph pattern.
type cBGP struct{ pats []cpattern }

// cgroup is a compiled group: elements joined left to right, then filters.
type cgroup struct {
	elems   []cnode
	filters []cfilter
}

// cfilter is a FILTER expression with its referenced variables resolved.
type cfilter struct {
	expr Expression
	vars []varslot
}

// cOptional is a compiled OPTIONAL left join.
type cOptional struct{ inner *cgroup }

// cUnion is a compiled UNION.
type cUnion struct{ left, right *cgroup }

// cMinus is a compiled MINUS.
type cMinus struct{ inner *cgroup }

// cBind is a compiled BIND(expr AS ?v).
type cBind struct {
	expr Expression
	vars []varslot
	slot int
}

// cValues is a compiled VALUES block; NoID in a row means UNDEF.
type cValues struct {
	slots []int
	rows  [][]store.ID
}

func (*cBGP) isCNode()      {}
func (*cgroup) isCNode()    {}
func (*cOptional) isCNode() {}
func (*cUnion) isCNode()    {}
func (*cMinus) isCNode()    {}
func (*cBind) isCNode()     {}
func (*cValues) isCNode()   {}

// compiler lowers the parsed pattern tree into the compiled algebra,
// interning constants through the executor so the plan is bound to one
// store snapshot.
type compiler struct {
	ex    *idExec
	slots *slotmap
}

func (c *compiler) group(g *GroupPattern) (*cgroup, error) {
	out := &cgroup{}
	for _, el := range g.Elems {
		n, err := c.node(el)
		if err != nil {
			return nil, err
		}
		out.elems = append(out.elems, n)
	}
	for _, f := range g.Filters {
		out.filters = append(out.filters, cfilter{expr: f, vars: c.exprVars(f)})
	}
	return out, nil
}

func (c *compiler) node(p GraphPattern) (cnode, error) {
	switch x := p.(type) {
	case *BGP:
		b := &cBGP{pats: make([]cpattern, len(x.Patterns))}
		for i, tp := range x.Patterns {
			b.pats[i] = c.pattern(tp)
		}
		return b, nil
	case *GroupPattern:
		return c.group(x)
	case *OptionalPattern:
		inner, err := c.group(x.Inner)
		if err != nil {
			return nil, err
		}
		return &cOptional{inner: inner}, nil
	case *UnionPattern:
		l, err := c.group(x.Left)
		if err != nil {
			return nil, err
		}
		r, err := c.group(x.Right)
		if err != nil {
			return nil, err
		}
		return &cUnion{left: l, right: r}, nil
	case *MinusPattern:
		inner, err := c.group(x.Inner)
		if err != nil {
			return nil, err
		}
		return &cMinus{inner: inner}, nil
	case *BindPattern:
		return &cBind{expr: x.Expr, vars: c.exprVars(x.Expr), slot: c.slots.slot(x.Var)}, nil
	case *ValuesPattern:
		v := &cValues{slots: make([]int, len(x.Vars))}
		for i, name := range x.Vars {
			v.slots[i] = c.slots.slot(name)
		}
		for _, row := range x.Rows {
			ids := make([]store.ID, len(row))
			for i, t := range row {
				if !t.IsZero() {
					ids[i] = c.ex.intern(t)
				}
			}
			v.rows = append(v.rows, ids)
		}
		return v, nil
	default:
		return nil, fmt.Errorf("%w: unknown pattern %T", errUnsupportedPlan, p)
	}
}

func (c *compiler) pattern(tp TriplePattern) cpattern {
	ct := func(n NodePattern) cterm {
		if n.IsVar() {
			return cterm{slot: c.slots.slot(n.Var)}
		}
		return cterm{slot: -1, id: c.ex.intern(n.Term)}
	}
	p := cpattern{s: ct(tp.S), p: ct(tp.P), o: ct(tp.O)}
	add := func(t cterm) {
		if !t.isVar() {
			return
		}
		for _, s := range p.slots {
			if s == t.slot {
				return
			}
		}
		p.slots = append(p.slots, t.slot)
	}
	add(p.s)
	add(p.p)
	add(p.o)
	return p
}

// exprVars returns the distinct variables referenced by e, assigning slots
// to any the pattern tree has not bound (they stay unbound at runtime,
// matching the term-space evaluator).
func (c *compiler) exprVars(e Expression) []varslot {
	var out []varslot
	seen := map[string]bool{}
	var walk func(Expression)
	walk = func(e Expression) {
		switch x := e.(type) {
		case *ExprVar:
			if !seen[x.Name] {
				seen[x.Name] = true
				out = append(out, varslot{name: x.Name, slot: c.slots.slot(x.Name)})
			}
		case *ExprBinary:
			walk(x.L)
			walk(x.R)
		case *ExprUnary:
			walk(x.X)
		case *ExprCall:
			for _, a := range x.Args {
				walk(a)
			}
		case *ExprAggregate:
			if x.Arg != nil {
				walk(x.Arg)
			}
		}
	}
	walk(e)
	return out
}
