package sparql

import (
	"sort"

	"repro/internal/rdf"
)

// Query footprint extraction for federated source selection: which
// concrete predicate and class IRIs must an endpoint hold for the query
// to possibly produce a row there? Only *required* positions count — a
// triple pattern inside OPTIONAL, UNION, or MINUS can be absent from a
// source without silencing it, so those subtrees contribute nothing to
// the footprint and the pruning stays conservative.

// Footprint returns the concrete predicate IRIs and the concrete class
// IRIs (objects of rdf:type patterns) that every solution of the query
// must match. An endpoint whose extracted index advertises neither a
// required predicate nor a required class provably cannot contribute
// rows. rdf:type itself is not reported as a predicate — any endpoint
// with typed instances holds rdf:type triples, so it never discriminates.
// Both slices are deduplicated and sorted; empty slices mean the query
// requires nothing provable (e.g. all-variable patterns) and no source
// can be pruned.
func Footprint(q *Query) (predicates, classes []string) {
	if q == nil || q.Where == nil {
		return nil, nil
	}
	preds := map[string]struct{}{}
	cls := map[string]struct{}{}
	footprintGroup(q.Where, preds, cls)
	return sortedKeys(preds), sortedKeys(cls)
}

func footprintGroup(g *GroupPattern, preds, cls map[string]struct{}) {
	for _, el := range g.Elems {
		switch x := el.(type) {
		case *BGP:
			for _, tp := range x.Patterns {
				if tp.P.IsVar() || tp.P.Term.Kind != rdf.KindIRI {
					continue
				}
				p := tp.P.Term.Value
				if p == rdf.RDFType {
					if !tp.O.IsVar() && tp.O.Term.Kind == rdf.KindIRI {
						cls[tp.O.Term.Value] = struct{}{}
					}
					continue
				}
				preds[p] = struct{}{}
			}
		case *GroupPattern:
			footprintGroup(x, preds, cls)
			// OPTIONAL / UNION / MINUS / BIND / VALUES: nothing required
		}
	}
}

func sortedKeys(m map[string]struct{}) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// BindingKey returns the canonical string key of a binding restricted to
// vars — equal keys iff the bindings agree on every listed variable. A
// nil vars keys on all bound variables of the row, names included and
// sorted, so rows binding the same value under different variables do
// not collide. The federated merge uses it for DISTINCT-on-merge
// deduplication across sources; it is the same key the engines use for
// DISTINCT, so a merged federated DISTINCT equals a single-endpoint
// DISTINCT row-for-row.
func BindingKey(b Binding, vars []string) string {
	return bindingKey(b, vars)
}
