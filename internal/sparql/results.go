package sparql

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/rdf"
)

// jsonResults mirrors the SPARQL 1.1 Query Results JSON Format, which is
// what real endpoints return and what the endpoint client parses.
type jsonResults struct {
	Head struct {
		Vars []string `json:"vars"`
	} `json:"head"`
	Boolean *bool `json:"boolean,omitempty"`
	Results *struct {
		Bindings []map[string]jsonTerm `json:"bindings"`
	} `json:"results,omitempty"`
}

type jsonTerm struct {
	Type     string `json:"type"` // "uri" | "literal" | "bnode"
	Value    string `json:"value"`
	Datatype string `json:"datatype,omitempty"`
	Lang     string `json:"xml:lang,omitempty"`
}

// MarshalJSON renders the result in the SPARQL 1.1 JSON results format.
func (r *Result) MarshalJSON() ([]byte, error) {
	var out jsonResults
	if r.Ask {
		b := r.Boolean
		out.Boolean = &b
		return json.Marshal(out)
	}
	out.Head.Vars = r.Vars
	out.Results = &struct {
		Bindings []map[string]jsonTerm `json:"bindings"`
	}{Bindings: make([]map[string]jsonTerm, 0, len(r.Rows))}
	for _, row := range r.Rows {
		jb := make(map[string]jsonTerm, len(row))
		for v, t := range row {
			jb[v] = termToJSON(t)
		}
		out.Results.Bindings = append(out.Results.Bindings, jb)
	}
	return json.Marshal(out)
}

// UnmarshalJSON parses the SPARQL 1.1 JSON results format.
func (r *Result) UnmarshalJSON(data []byte) error {
	var in jsonResults
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	if in.Boolean != nil {
		r.Ask = true
		r.Boolean = *in.Boolean
		return nil
	}
	r.Vars = in.Head.Vars
	if in.Results == nil {
		return nil
	}
	r.Rows = make([]Binding, 0, len(in.Results.Bindings))
	for _, jb := range in.Results.Bindings {
		row := Binding{}
		for v, jt := range jb {
			t, err := termFromJSON(jt)
			if err != nil {
				return err
			}
			row[v] = t
		}
		r.Rows = append(r.Rows, row)
	}
	return nil
}

func termToJSON(t rdf.Term) jsonTerm {
	switch t.Kind {
	case rdf.KindIRI:
		return jsonTerm{Type: "uri", Value: t.Value}
	case rdf.KindBlank:
		return jsonTerm{Type: "bnode", Value: t.Value}
	default:
		return jsonTerm{Type: "literal", Value: t.Value, Datatype: t.Datatype, Lang: t.Lang}
	}
}

func termFromJSON(jt jsonTerm) (rdf.Term, error) {
	switch jt.Type {
	case "uri":
		return rdf.NewIRI(jt.Value), nil
	case "bnode":
		return rdf.NewBlank(jt.Value), nil
	case "literal", "typed-literal":
		if jt.Lang != "" {
			return rdf.NewLangLiteral(jt.Value, jt.Lang), nil
		}
		return rdf.NewTypedLiteral(jt.Value, jt.Datatype), nil
	default:
		return rdf.Term{}, fmt.Errorf("sparql: unknown JSON term type %q", jt.Type)
	}
}

// CSV renders the result as RFC 4180-ish CSV (SPARQL CSV results format).
func (r *Result) CSV() string {
	var sb strings.Builder
	if r.Ask {
		sb.WriteString("boolean\r\n")
		sb.WriteString(fmt.Sprintf("%v\r\n", r.Boolean))
		return sb.String()
	}
	for i, v := range r.Vars {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(v)
	}
	sb.WriteString("\r\n")
	for _, row := range r.Rows {
		for i, v := range r.Vars {
			if i > 0 {
				sb.WriteByte(',')
			}
			if t, ok := row[v]; ok {
				sb.WriteString(csvEscape(t.Value))
			}
		}
		sb.WriteString("\r\n")
	}
	return sb.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n\r") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// Table renders the result as an aligned text table for CLI output.
func (r *Result) Table() string {
	if r.Ask {
		return fmt.Sprintf("ASK → %v\n", r.Boolean)
	}
	widths := make([]int, len(r.Vars))
	cells := make([][]string, 0, len(r.Rows)+1)
	head := make([]string, len(r.Vars))
	for i, v := range r.Vars {
		head[i] = "?" + v
		widths[i] = len(head[i])
	}
	cells = append(cells, head)
	for _, row := range r.Rows {
		line := make([]string, len(r.Vars))
		for i, v := range r.Vars {
			if t, ok := row[v]; ok {
				line[i] = t.String()
			}
			if len(line[i]) > widths[i] {
				widths[i] = len(line[i])
			}
		}
		cells = append(cells, line)
	}
	var sb strings.Builder
	for _, line := range cells {
		for i, c := range line {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// SortedRows returns the rows sorted by their canonical key; useful for
// deterministic assertions in tests.
func (r *Result) SortedRows() []Binding {
	rows := make([]Binding, len(r.Rows))
	copy(rows, r.Rows)
	sort.Slice(rows, func(i, j int) bool {
		return bindingKey(rows[i], r.Vars) < bindingKey(rows[j], r.Vars)
	})
	return rows
}
