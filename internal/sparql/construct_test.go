package sparql

import (
	"testing"

	"repro/internal/rdf"
)

func TestConstructSimple(t *testing.T) {
	st := fixtureStore(t)
	res := exec(t, st, `PREFIX ex: <http://ex/>
		CONSTRUCT { ?a ex:acquaintedWith ?b } WHERE { ?a ex:knows ?b }`)
	if res.Graph == nil {
		t.Fatal("no graph")
	}
	if res.Graph.Len() != 3 {
		t.Fatalf("constructed %d triples, want 3", res.Graph.Len())
	}
	want := rdf.NewTriple(
		rdf.NewIRI("http://ex/alice"),
		rdf.NewIRI("http://ex/acquaintedWith"),
		rdf.NewIRI("http://ex/bob"))
	if !res.Graph.Has(want) {
		t.Fatalf("missing %v", want)
	}
}

func TestConstructMultiTemplate(t *testing.T) {
	st := fixtureStore(t)
	res := exec(t, st, `PREFIX ex: <http://ex/>
		CONSTRUCT {
			?p a ex:Agent .
			?p ex:labelCopy ?l .
		} WHERE { ?p a ex:Person ; <http://www.w3.org/2000/01/rdf-schema#label> ?l }`)
	// 3 persons × 2 template triples
	if res.Graph.Len() != 6 {
		t.Fatalf("constructed %d, want 6", res.Graph.Len())
	}
}

func TestConstructSkipsUnbound(t *testing.T) {
	st := fixtureStore(t)
	res := exec(t, st, `PREFIX ex: <http://ex/>
		CONSTRUCT { ?p ex:knowsCopy ?k } WHERE { ?p a ex:Person OPTIONAL { ?p ex:knows ?k } }`)
	// carol has no ?k → her template triple is skipped
	if res.Graph.Len() != 3 {
		t.Fatalf("constructed %d, want 3", res.Graph.Len())
	}
}

func TestConstructSkipsLiteralSubject(t *testing.T) {
	st := fixtureStore(t)
	res := exec(t, st, `PREFIX ex: <http://ex/>
		CONSTRUCT { ?l ex:of ?p } WHERE { ?p <http://www.w3.org/2000/01/rdf-schema#label> ?l }`)
	if res.Graph.Len() != 0 {
		t.Fatalf("literal subjects must be skipped, got %d triples", res.Graph.Len())
	}
}

func TestConstructBlankNodeScoping(t *testing.T) {
	st := fixtureStore(t)
	res := exec(t, st, `PREFIX ex: <http://ex/>
		CONSTRUCT { ?p ex:sighting _:s . _:s ex:seen ?k } WHERE { ?p ex:knows ?k }`)
	// 3 solutions × 2 triples, each with a fresh blank node
	if res.Graph.Len() != 6 {
		t.Fatalf("constructed %d, want 6", res.Graph.Len())
	}
	blanks := map[rdf.Term]bool{}
	for _, tr := range res.Graph.Triples() {
		if tr.O.IsBlank() {
			blanks[tr.O] = true
		}
	}
	if len(blanks) != 3 {
		t.Fatalf("blank nodes = %d, want 3 (one per solution)", len(blanks))
	}
}

func TestConstructWithLimit(t *testing.T) {
	st := fixtureStore(t)
	res := exec(t, st, `PREFIX ex: <http://ex/>
		CONSTRUCT { ?a ex:c ?b } WHERE { ?a ex:knows ?b } LIMIT 1`)
	if res.Graph.Len() != 1 {
		t.Fatalf("constructed %d, want 1", res.Graph.Len())
	}
}

func TestConstructDeduplicates(t *testing.T) {
	st := fixtureStore(t)
	// every person produces the same constant triple → deduplicated
	res := exec(t, st, `PREFIX ex: <http://ex/>
		CONSTRUCT { ex:dataset ex:has ex:people } WHERE { ?p a ex:Person }`)
	if res.Graph.Len() != 1 {
		t.Fatalf("constructed %d, want 1", res.Graph.Len())
	}
}

func TestConstructParseErrors(t *testing.T) {
	for _, q := range []string{
		`CONSTRUCT { } WHERE { ?s ?p ?o }`,
		`CONSTRUCT { ?s ?p ?o WHERE { ?s ?p ?o }`,
		`CONSTRUCT ?s WHERE { ?s ?p ?o }`,
	} {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}
