package sparql_test

// Stream-vs-materialized differential harness plus unit coverage for the
// RowSeq contract and the incremental JSON results codec. The
// differential runs the full fixed corpus and randomized synth queries
// through Query.Stream and Query.Exec and asserts identical results (up
// to row order, which SPARQL leaves undefined without ORDER BY). CI runs
// this under -race like the engine differential.

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"testing"

	"repro/internal/sparql"
	"repro/internal/store"
	"repro/internal/synth"
)

// assertStreamAgreement executes the query materialized and streamed and
// fails on any observable difference, using the same comparison rules as
// the engine differential (assertEngineAgreement).
func assertStreamAgreement(t *testing.T, st *store.Store, query string) {
	t.Helper()
	q, err := sparql.Parse(query)
	if err != nil {
		t.Fatalf("parse %q: %v", query, err)
	}
	exRes, exErr := q.Exec(st)
	rs, stErr := q.Stream(context.Background(), st)
	var stRes *sparql.Result
	if stErr == nil {
		stRes, stErr = rs.Collect()
	}
	if (exErr == nil) != (stErr == nil) {
		t.Fatalf("query %q: errors disagree: exec=%v stream=%v", query, exErr, stErr)
	}
	if exErr != nil {
		return
	}
	if exRes.Ask != stRes.Ask || exRes.Boolean != stRes.Boolean {
		t.Fatalf("query %q: ASK disagreement: exec=%+v stream=%+v", query, exRes, stRes)
	}
	if exRes.Ask {
		return
	}
	if exRes.Graph != nil || stRes.Graph != nil {
		ek, _ := graphKey(exRes.Graph)
		sk, _ := graphKey(stRes.Graph)
		if ek != sk {
			t.Fatalf("query %q: graphs differ\nexec:\n%s\nstream:\n%s", query, ek, sk)
		}
		return
	}
	if fmt.Sprint(exRes.Vars) != fmt.Sprint(stRes.Vars) {
		t.Fatalf("query %q: vars differ: %v vs %v", query, exRes.Vars, stRes.Vars)
	}
	if (q.Limit >= 0 || q.Offset > 0) && len(q.OrderBy) == 0 {
		// without a total order each path may keep a different window;
		// only the count is comparable
		if len(exRes.Rows) != len(stRes.Rows) {
			t.Fatalf("query %q: row counts differ: %d vs %d", query, len(exRes.Rows), len(stRes.Rows))
		}
		return
	}
	if len(q.OrderBy) > 0 {
		// the streaming top-k heap may keep different rows than the batch
		// stable sort within a tie group at the cut line, so rows are
		// compared position-by-position under the ORDER BY keys; without a
		// window the full multisets must also match
		if len(exRes.Rows) != len(stRes.Rows) {
			t.Fatalf("query %q: row counts differ: %d vs %d", query, len(exRes.Rows), len(stRes.Rows))
		}
		for i := range exRes.Rows {
			ek := sparql.OrderKeyOf(q.OrderBy, exRes.Rows[i])
			sk := sparql.OrderKeyOf(q.OrderBy, stRes.Rows[i])
			if sparql.CompareOrderKeys(q.OrderBy, ek, sk) != 0 {
				t.Fatalf("query %q: sort key at row %d differs:\nexec:   %v\nstream: %v", query, i, exRes.Rows[i], stRes.Rows[i])
			}
		}
		if q.Limit < 0 && q.Offset == 0 {
			ek, sk := rowKeys(exRes), rowKeys(stRes)
			if strings.Join(ek, "\n") != strings.Join(sk, "\n") {
				t.Fatalf("query %q: ordered rows differ\nexec:   %q\nstream: %q", query, ek, sk)
			}
		}
		return
	}
	ek, sk := rowKeys(exRes), rowKeys(stRes)
	if len(ek) != len(sk) {
		t.Fatalf("query %q: row counts differ: %d vs %d", query, len(ek), len(sk))
	}
	for i := range ek {
		if ek[i] != sk[i] {
			t.Fatalf("query %q: row %d differs:\nexec:   %q\nstream: %q", query, i, ek[i], sk[i])
		}
	}
}

func TestStreamDifferentialFixedCorpus(t *testing.T) {
	st := diffStore(t)
	for _, q := range diffCorpus {
		assertStreamAgreement(t, st, q)
	}
}

func TestStreamDifferentialRandomized(t *testing.T) {
	stores := []*store.Store{
		synth.Generate(synth.Spec{Name: "sdiffa", Classes: 8, Instances: 300, ObjectProps: 12, DataProps: 6, LinkFactor: 2, CommunitySeeds: 3, Seed: 7}),
		synth.Generate(synth.Spec{Name: "sdiffb", Classes: 4, Instances: 120, ObjectProps: 6, DataProps: 4, LinkFactor: 1, Seed: 11}),
	}
	const perStore = 60
	for si, st := range stores {
		gen := synth.NewQueryGen(st, int64(500+si))
		for i := 0; i < perStore; i++ {
			assertStreamAgreement(t, st, gen.Query())
		}
	}
}

func TestStreamCancelMidStream(t *testing.T) {
	st := synth.Generate(synth.Spec{Name: "cancel", Classes: 6, Instances: 800, ObjectProps: 8, DataProps: 4, LinkFactor: 2, Seed: 3})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rs, err := sparql.StreamExec(ctx, st, `SELECT ?s ?p ?o WHERE { ?s ?p ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	got := 0
	for range rs.All() {
		got++
		if got == 3 {
			cancel()
		}
		if got > 4 {
			t.Fatalf("stream kept producing after cancel: %d rows", got)
		}
	}
	if got < 3 {
		t.Fatalf("stream ended after %d rows, before the cancel", got)
	}
	if err := rs.Err(); err != context.Canceled {
		t.Fatalf("Err() = %v, want context.Canceled", err)
	}
}

// trippingCtx reports cancellation once Err has been consulted more than
// `after` times. It makes mid-evaluation cancellation deterministic: the
// trip happens at a fixed point of the scan, not whenever a timer fires.
type trippingCtx struct {
	context.Context
	calls, after int
}

func (c *trippingCtx) Err() error {
	c.calls++
	if c.calls > c.after {
		return context.Canceled
	}
	return nil
}

// TestStreamTopKCancelsPreSort: ORDER BY … LIMIT cancels during heap
// accumulation, before any row is emitted. The materialized fallback
// this path replaced only consulted the context between rows of the
// finished Result — it would have scanned everything and then served the
// window without ever noticing the cancellation.
func TestStreamTopKCancelsPreSort(t *testing.T) {
	st := synth.Generate(synth.Spec{Name: "topkcancel", Classes: 6, Instances: 800, ObjectProps: 8, DataProps: 4, LinkFactor: 2, Seed: 3})
	q, err := sparql.Parse(`SELECT ?s ?o WHERE { ?s ?p ?o } ORDER BY ?o ?s LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &trippingCtx{Context: context.Background(), after: 50}
	rs, err := q.Stream(ctx, st)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	rows := 0
	for range rs.All() {
		rows++
	}
	if rows != 0 {
		t.Fatalf("stream yielded %d rows after cancelling during accumulation; the heap must not emit", rows)
	}
	if err := rs.Err(); err != context.Canceled {
		t.Fatalf("Err() = %v, want context.Canceled", err)
	}
	// the evaluation must have stopped at the trip point, not scanned the
	// full pattern and noticed the cancellation at emission
	if total := st.Len(); ctx.calls >= total {
		t.Fatalf("context consulted %d times over a %d-triple store: evaluation ran to completion before cancelling", ctx.calls, total)
	}
}

func TestStreamLimitStopsEarly(t *testing.T) {
	st := synth.Generate(synth.Spec{Name: "limit", Classes: 6, Instances: 800, ObjectProps: 8, DataProps: 4, LinkFactor: 2, Seed: 4})
	rs, err := sparql.StreamExec(context.Background(), st, `SELECT ?s WHERE { ?s ?p ?o } LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rs.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("LIMIT 5 streamed %d rows", len(res.Rows))
	}
	// LIMIT 0 must yield nothing, not one row
	rs, err = sparql.StreamExec(context.Background(), st, `SELECT ?s WHERE { ?s ?p ?o } LIMIT 0`)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := rs.Collect(); err != nil || len(res.Rows) != 0 {
		t.Fatalf("LIMIT 0 = %d rows, err %v", len(res.Rows), err)
	}
}

func TestRowSeqLimitAndTap(t *testing.T) {
	res := &sparql.Result{Vars: []string{"x"}}
	for i := 0; i < 10; i++ {
		res.Rows = append(res.Rows, sparql.Binding{})
	}
	tapped := 0
	rs := sparql.ResultSeq(res).Tap(func(sparql.Binding) { tapped++ }).Limit(4)
	out, err := rs.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 4 || tapped != 4 {
		t.Fatalf("rows = %d, tapped = %d, want 4/4", len(out.Rows), tapped)
	}
}

func TestRowSeqCloseIdempotent(t *testing.T) {
	closed := 0
	rs := sparql.ResultSeq(&sparql.Result{Vars: []string{"x"}})
	rs.OnClose(func() { closed++ })
	rs.Close()
	rs.Close()
	if _, ok := rs.Next(); ok {
		t.Fatal("Next after Close yielded a row")
	}
	if closed != 1 {
		t.Fatalf("OnClose ran %d times", closed)
	}
}

// --- incremental JSON results codec ---

func streamDoc(t *testing.T, query string) string {
	t.Helper()
	st := diffStore(t)
	rs, err := sparql.StreamExec(context.Background(), st, query)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	jw := sparql.NewJSONRowWriter(&sb, rs.Vars)
	for row := range rs.All() {
		if err := jw.WriteRow(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := rs.Err(); err != nil {
		t.Fatal(err)
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestJSONRowRoundtrip(t *testing.T) {
	query := `PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#> SELECT ?p ?l WHERE { ?p rdfs:label ?l }`
	doc := streamDoc(t, query)

	// the incremental writer's document must parse with the materialized
	// decoder...
	var res sparql.Result
	if err := res.UnmarshalJSON([]byte(doc)); err != nil {
		t.Fatalf("materialized decode of streamed doc: %v\n%s", err, doc)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(res.Rows))
	}

	// ...and with the incremental reader
	rr, err := sparql.NewJSONRowReader(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(rr.Vars()) != "[p l]" {
		t.Fatalf("vars = %v", rr.Vars())
	}
	var keys []string
	for {
		b, err := rr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, b["p"].String()+" "+b["l"].String())
	}
	if len(keys) != 5 {
		t.Fatalf("incremental rows = %d, want 5", len(keys))
	}
	want := rowKeys(&res)
	sort.Strings(keys)
	if len(want) != len(keys) {
		t.Fatalf("row count mismatch: %d vs %d", len(want), len(keys))
	}
}

func TestJSONRowReaderAsk(t *testing.T) {
	var sb strings.Builder
	if err := sparql.WriteAskJSON(&sb, true); err != nil {
		t.Fatal(err)
	}
	rr, err := sparql.NewJSONRowReader(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if val, ok := rr.Ask(); !ok || !val {
		t.Fatalf("Ask() = %v, %v", val, ok)
	}
	if _, err := rr.Next(); err != io.EOF {
		t.Fatalf("Next on ASK = %v, want EOF", err)
	}
}

func TestJSONRowReaderTruncated(t *testing.T) {
	doc := streamDoc(t, `PREFIX ex: <http://ex/> SELECT ?p WHERE { ?p a ex:Person }`)
	// cut the document at various points: every prefix must fail with an
	// error, never report a clean end with fewer rows
	for _, cut := range []int{len(doc) - 1, len(doc) - 3, len(doc) / 2} {
		rr, err := sparql.NewJSONRowReader(strings.NewReader(doc[:cut]))
		if err != nil {
			continue // truncated inside the prologue: also an error, fine
		}
		for {
			_, err = rr.Next()
			if err != nil {
				break
			}
		}
		if err == io.EOF {
			t.Fatalf("cut at %d: reader reported a clean end of a truncated document", cut)
		}
	}
}

func TestJSONRowReaderGarbage(t *testing.T) {
	for _, doc := range []string{
		`{"head":{"vars":["s"]},"results":{"bindings":[{"s":{"type":"uri","value":"x"}} garbage`,
		`{"head":{"vars":["s"]},"results":{"bindings":[{"s":{"type":"wat","value":"x"}}]}}`,
		`not json at all`,
	} {
		rr, err := sparql.NewJSONRowReader(strings.NewReader(doc))
		if err != nil {
			continue
		}
		for {
			_, err = rr.Next()
			if err != nil {
				break
			}
		}
		if err == io.EOF {
			t.Fatalf("malformed document read cleanly: %s", doc)
		}
	}
}
