package sparql

import (
	"testing"
	"testing/quick"

	"repro/internal/rdf"
)

func evalString(t *testing.T, expr string, b Binding) (rdf.Term, error) {
	t.Helper()
	// parse the expression through a dummy query filter
	q, err := Parse(`SELECT ?x WHERE { ?x ?p ?o FILTER(` + expr + `) }`)
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	return evalExpr(q.Where.Filters[0], b)
}

func TestEffectiveBool(t *testing.T) {
	cases := []struct {
		term rdf.Term
		want bool
		err  bool
	}{
		{rdf.NewBoolean(true), true, false},
		{rdf.NewBoolean(false), false, false},
		{rdf.NewInteger(0), false, false},
		{rdf.NewInteger(7), true, false},
		{rdf.NewDouble(0.0), false, false},
		{rdf.NewLiteral(""), false, false},
		{rdf.NewLiteral("x"), true, false},
		{rdf.NewLangLiteral("x", "en"), true, false},
		{rdf.NewIRI("http://x"), false, true},
		{rdf.NewTypedLiteral("z", rdf.XSDDate), false, true},
	}
	for _, c := range cases {
		got, err := EffectiveBool(c.term)
		if c.err {
			if err == nil {
				t.Errorf("EffectiveBool(%v) should error", c.term)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("EffectiveBool(%v) = %v, %v; want %v", c.term, got, err, c.want)
		}
	}
}

func TestNumericPromotion(t *testing.T) {
	cases := []struct {
		expr string
		want string // datatype IRI
	}{
		{"1 + 2", rdf.XSDInteger},
		{"1 + 2.5", rdf.XSDDecimal},
		{"1 / 2", rdf.XSDDecimal}, // fractional result promotes
		{"4 / 2", rdf.XSDInteger},
		{"1 + 1.0e0", rdf.XSDDouble},
	}
	for _, c := range cases {
		got, err := evalString(t, c.expr, Binding{})
		if err != nil {
			t.Fatalf("%s: %v", c.expr, err)
		}
		if got.Datatype != c.want {
			t.Errorf("%s: datatype = %q, want %q", c.expr, got.Datatype, c.want)
		}
	}
}

func TestArithmeticErrors(t *testing.T) {
	for _, expr := range []string{
		`1 / 0`,
		`"a" + 1`,
		`-"x"`,
	} {
		if _, err := evalString(t, expr, Binding{}); err == nil {
			t.Errorf("%s should error", expr)
		}
	}
}

func TestComparisonSemantics(t *testing.T) {
	b := Binding{
		"i": rdf.NewIRI("http://a"),
		"j": rdf.NewIRI("http://a"),
		"k": rdf.NewIRI("http://b"),
		"n": rdf.NewInteger(5),
		"m": rdf.NewDecimal(5.0),
		"s": rdf.NewLiteral("abc"),
	}
	truthy := []string{
		`?i = ?j`, `?i != ?k`, `?n = ?m`, // numeric value equality
		`?n >= 5`, `?s < "abd"`, `?s = "abc"`,
	}
	for _, expr := range truthy {
		got, err := evalString(t, expr, b)
		if err != nil {
			t.Fatalf("%s: %v", expr, err)
		}
		if v, _ := got.Bool(); !v {
			t.Errorf("%s should be true", expr)
		}
	}
	// IRIs are not orderable
	if _, err := evalString(t, `?i < ?k`, b); err == nil {
		t.Error("IRI ordering should error")
	}
	// incomparable literal equality errors
	if _, err := evalString(t, `"2020-01-01"^^<http://www.w3.org/2001/XMLSchema#date> = 5`, b); err == nil {
		t.Error("cross-datatype literal equality should error")
	}
}

func TestBooleanComparison(t *testing.T) {
	got, err := evalString(t, "true > false", Binding{})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Bool(); !v {
		t.Fatal("true > false should hold")
	}
}

func TestDateOrdering(t *testing.T) {
	b := Binding{
		"d1": rdf.NewTypedLiteral("2020-01-03", rdf.XSDDate),
		"d2": rdf.NewTypedLiteral("2020-03-30", rdf.XSDDate),
	}
	got, err := evalString(t, "?d1 < ?d2", b)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Bool(); !v {
		t.Fatal("date ordering broken")
	}
}

func TestRegexFlagsAndErrors(t *testing.T) {
	b := Binding{"s": rdf.NewLiteral("Hello\nWorld")}
	got, err := evalString(t, `regex(?s, "hello", "i")`, b)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Bool(); !v {
		t.Fatal("case-insensitive regex failed")
	}
	got, err = evalString(t, `regex(?s, "Hello.World", "s")`, b)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Bool(); !v {
		t.Fatal("dotall regex failed")
	}
	if _, err := evalString(t, `regex(?s, "[unclosed")`, b); err == nil {
		t.Fatal("bad regex should error")
	}
}

func TestStringFunctions(t *testing.T) {
	b := Binding{"s": rdf.NewLiteral("héllo")}
	got, err := evalString(t, "STRLEN(?s) = 5", b)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Bool(); !v {
		t.Fatal("STRLEN must count runes, not bytes")
	}
	got, _ = evalString(t, `CONCAT("a", "b", STR(1)) = "ab1"`, b)
	if v, _ := got.Bool(); !v {
		t.Fatal("CONCAT failed")
	}
	got, _ = evalString(t, `REPLACE("aaa", "a", "b") = "bbb"`, b)
	if v, _ := got.Bool(); !v {
		t.Fatal("REPLACE failed")
	}
}

func TestRoundingFunctions(t *testing.T) {
	for _, c := range []struct {
		expr string
		want int64
	}{
		{"ABS(-3)", 3},
		{"CEIL(2.1)", 3},
		{"FLOOR(2.9)", 2},
		{"ROUND(2.5)", 3},
	} {
		got, err := evalString(t, c.expr+" = "+itoa(int(c.want)), Binding{})
		if err != nil {
			t.Fatalf("%s: %v", c.expr, err)
		}
		if v, _ := got.Bool(); !v {
			t.Errorf("%s != %d", c.expr, c.want)
		}
	}
}

func TestLangMatches(t *testing.T) {
	b := Binding{"l": rdf.NewLangLiteral("ciao", "it-IT")}
	for expr, want := range map[string]bool{
		`LANGMATCHES(LANG(?l), "it")`: true,
		`LANGMATCHES(LANG(?l), "*")`:  true,
		`LANGMATCHES(LANG(?l), "en")`: false,
	} {
		got, err := evalString(t, expr, b)
		if err != nil {
			t.Fatalf("%s: %v", expr, err)
		}
		if v, _ := got.Bool(); v != want {
			t.Errorf("%s = %v, want %v", expr, v, want)
		}
	}
}

func TestIRIFunctionAndSameTerm(t *testing.T) {
	b := Binding{"s": rdf.NewLiteral("http://x/a")}
	got, err := evalString(t, `ISIRI(IRI(?s))`, b)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Bool(); !v {
		t.Fatal("IRI() should build an IRI")
	}
	got, _ = evalString(t, `SAMETERM(5, 5)`, b)
	if v, _ := got.Bool(); !v {
		t.Fatal("SAMETERM same literal failed")
	}
	got, _ = evalString(t, `SAMETERM(5, 5.0)`, b)
	if v, _ := got.Bool(); v {
		t.Fatal("SAMETERM must be syntactic, not value-based")
	}
}

// Property: EffectiveBool of any integer literal equals (n != 0).
func TestQuickEffectiveBoolIntegers(t *testing.T) {
	f := func(n int64) bool {
		v, err := EffectiveBool(rdf.NewInteger(n))
		return err == nil && v == (n != 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: termOrder agrees with numeric order on random pairs.
func TestQuickTermOrderNumeric(t *testing.T) {
	f := func(a, b int32) bool {
		c, err := termOrder(rdf.NewInteger(int64(a)), rdf.NewInteger(int64(b)))
		if err != nil {
			return false
		}
		switch {
		case a < b:
			return c < 0
		case a > b:
			return c > 0
		default:
			return c == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
