package sparql

import (
	"errors"
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/rdf"
)

// Binding maps variable names to terms. A missing key means unbound.
type Binding map[string]rdf.Term

// clone copies a binding.
func (b Binding) clone() Binding {
	out := make(Binding, len(b)+2)
	for k, v := range b {
		out[k] = v
	}
	return out
}

// errExpr is the SPARQL expression-error sentinel: filters treat it as
// false, BIND leaves the variable unbound, aggregates skip the row.
var errExpr = errors.New("sparql: expression error")

// Static expression errors for the hot comparison paths: building a
// fmt.Errorf per incomparable pair dominates ORDER BY over IRIs.
var (
	errIncomparable     = fmt.Errorf("%w: incomparable terms", errExpr)
	errMalformedNumeric = fmt.Errorf("%w: malformed numeric literal", errExpr)
	errUnbound          = fmt.Errorf("%w: unbound variable", errExpr)
)

func exprErrf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errExpr, fmt.Sprintf(format, args...))
}

// evalExpr evaluates an expression against one binding. Aggregates must
// have been rewritten away before this is called.
func evalExpr(e Expression, b Binding) (rdf.Term, error) {
	switch x := e.(type) {
	case *ExprTerm:
		return x.Term, nil
	case *ExprVar:
		t, ok := b[x.Name]
		if !ok {
			return rdf.Term{}, errUnbound
		}
		return t, nil
	case *ExprUnary:
		return evalUnary(x, b)
	case *ExprBinary:
		return evalBinary(x, b)
	case *ExprCall:
		return evalCall(x, b)
	case *ExprAggregate:
		return rdf.Term{}, exprErrf("aggregate outside aggregation context")
	default:
		return rdf.Term{}, exprErrf("unknown expression node %T", e)
	}
}

// EffectiveBool computes the effective boolean value of a term.
func EffectiveBool(t rdf.Term) (bool, error) {
	if t.Kind != rdf.KindLiteral {
		return false, exprErrf("no boolean value for %v", t)
	}
	if v, ok := t.Bool(); ok {
		return v, nil
	}
	if t.IsNumeric() {
		f, ok := t.Float()
		if !ok {
			return false, nil // malformed numeric literal → false EBV
		}
		return f != 0 && !math.IsNaN(f), nil
	}
	if t.EffectiveDatatype() == rdf.XSDString || t.Lang != "" {
		return t.Value != "", nil
	}
	return false, exprErrf("no boolean value for %v", t)
}

func evalBool(e Expression, b Binding) (bool, error) {
	t, err := evalExpr(e, b)
	if err != nil {
		return false, err
	}
	return EffectiveBool(t)
}

func evalUnary(x *ExprUnary, b Binding) (rdf.Term, error) {
	switch x.Op {
	case "!":
		v, err := evalBool(x.X, b)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewBoolean(!v), nil
	case "-":
		t, err := evalExpr(x.X, b)
		if err != nil {
			return rdf.Term{}, err
		}
		f, ok := t.Float()
		if !ok {
			return rdf.Term{}, exprErrf("unary minus on non-numeric %v", t)
		}
		return numericResult(-f, t, t), nil
	}
	return rdf.Term{}, exprErrf("unknown unary op %s", x.Op)
}

func evalBinary(x *ExprBinary, b Binding) (rdf.Term, error) {
	switch x.Op {
	case "||":
		// SPARQL 3-valued logic: error || true = true
		lv, lerr := evalBool(x.L, b)
		rv, rerr := evalBool(x.R, b)
		if lerr == nil && lv || rerr == nil && rv {
			return rdf.NewBoolean(true), nil
		}
		if lerr != nil {
			return rdf.Term{}, lerr
		}
		if rerr != nil {
			return rdf.Term{}, rerr
		}
		return rdf.NewBoolean(false), nil
	case "&&":
		lv, lerr := evalBool(x.L, b)
		rv, rerr := evalBool(x.R, b)
		if lerr == nil && !lv || rerr == nil && !rv {
			return rdf.NewBoolean(false), nil
		}
		if lerr != nil {
			return rdf.Term{}, lerr
		}
		if rerr != nil {
			return rdf.Term{}, rerr
		}
		return rdf.NewBoolean(true), nil
	}

	l, err := evalExpr(x.L, b)
	if err != nil {
		return rdf.Term{}, err
	}
	r, err := evalExpr(x.R, b)
	if err != nil {
		return rdf.Term{}, err
	}

	switch x.Op {
	case "=", "!=":
		eq, err := termsEqual(l, r)
		if err != nil {
			return rdf.Term{}, err
		}
		if x.Op == "!=" {
			eq = !eq
		}
		return rdf.NewBoolean(eq), nil
	case "<", ">", "<=", ">=":
		c, err := termOrder(l, r)
		if err != nil {
			return rdf.Term{}, err
		}
		var v bool
		switch x.Op {
		case "<":
			v = c < 0
		case ">":
			v = c > 0
		case "<=":
			v = c <= 0
		case ">=":
			v = c >= 0
		}
		return rdf.NewBoolean(v), nil
	case "+", "-", "*", "/":
		lf, lok := l.Float()
		rf, rok := r.Float()
		if !lok || !rok {
			return rdf.Term{}, exprErrf("arithmetic on non-numeric operands")
		}
		var f float64
		switch x.Op {
		case "+":
			f = lf + rf
		case "-":
			f = lf - rf
		case "*":
			f = lf * rf
		case "/":
			if rf == 0 {
				return rdf.Term{}, exprErrf("division by zero")
			}
			f = lf / rf
		}
		return numericResult(f, l, r), nil
	}
	return rdf.Term{}, exprErrf("unknown binary op %s", x.Op)
}

// numericResult picks a result datatype by numeric promotion: double if
// either operand is double/float, decimal if either is decimal or the
// result is fractional, integer otherwise.
func numericResult(f float64, l, r rdf.Term) rdf.Term {
	isDouble := func(t rdf.Term) bool {
		return t.Datatype == rdf.XSDDouble || t.Datatype == rdf.XSDFloat
	}
	if isDouble(l) || isDouble(r) {
		return rdf.NewDouble(f)
	}
	if l.Datatype == rdf.XSDDecimal || r.Datatype == rdf.XSDDecimal || f != math.Trunc(f) {
		return rdf.NewDecimal(f)
	}
	return rdf.NewInteger(int64(f))
}

// termsEqual implements SPARQL "=" semantics.
func termsEqual(l, r rdf.Term) (bool, error) {
	if l == r {
		return true, nil
	}
	if l.IsNumeric() && r.IsNumeric() {
		lf, lok := l.Float()
		rf, rok := r.Float()
		if lok && rok {
			return lf == rf, nil
		}
	}
	if l.Kind == rdf.KindLiteral && r.Kind == rdf.KindLiteral {
		// same value space comparisons for strings handled by ==
		// different datatypes → error unless both string-ish
		ld, rd := l.EffectiveDatatype(), r.EffectiveDatatype()
		if ld == rd {
			return false, nil
		}
		return false, errIncomparable
	}
	return false, nil
}

// termOrder implements SPARQL "<" family semantics. It errors on
// incomparable operands.
func termOrder(l, r rdf.Term) (int, error) {
	if l.IsNumeric() && r.IsNumeric() {
		lf, lok := l.Float()
		rf, rok := r.Float()
		if !lok || !rok {
			return 0, errMalformedNumeric
		}
		switch {
		case lf < rf:
			return -1, nil
		case lf > rf:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if l.Kind == rdf.KindLiteral && r.Kind == rdf.KindLiteral {
		ld, rd := l.EffectiveDatatype(), r.EffectiveDatatype()
		stringish := func(d string) bool { return d == rdf.XSDString || d == rdf.RDFLangString }
		if (stringish(ld) && stringish(rd)) ||
			(ld == rd && (ld == rdf.XSDDate || ld == rdf.XSDDateTime || ld == rdf.XSDTime)) {
			return strings.Compare(l.Value, r.Value), nil
		}
		if ld == rd && ld == rdf.XSDBoolean {
			lb, _ := l.Bool()
			rb, _ := r.Bool()
			switch {
			case lb == rb:
				return 0, nil
			case !lb:
				return -1, nil
			default:
				return 1, nil
			}
		}
	}
	return 0, errIncomparable
}

var regexCache = struct {
	m map[string]*regexp.Regexp
}{m: make(map[string]*regexp.Regexp)}

func compileRegex(pattern, flags string) (*regexp.Regexp, error) {
	key := flags + "\x00" + pattern
	if re, ok := regexCache.m[key]; ok {
		return re, nil
	}
	p := pattern
	if strings.Contains(flags, "i") {
		p = "(?i)" + p
	}
	if strings.Contains(flags, "s") {
		p = "(?s)" + p
	}
	re, err := regexp.Compile(p)
	if err != nil {
		return nil, exprErrf("bad regex %q: %v", pattern, err)
	}
	if len(regexCache.m) < 1024 {
		regexCache.m[key] = re
	}
	return re, nil
}

func stringValue(t rdf.Term) (string, error) {
	switch t.Kind {
	case rdf.KindLiteral:
		return t.Value, nil
	case rdf.KindIRI:
		return t.Value, nil
	default:
		return "", exprErrf("no string value for blank node")
	}
}

func evalCall(x *ExprCall, b Binding) (rdf.Term, error) {
	// BOUND and COALESCE/IF need special (lazy / unbound-tolerant) handling.
	switch x.Fn {
	case "BOUND":
		v, ok := x.Args[0].(*ExprVar)
		if !ok {
			return rdf.Term{}, exprErrf("BOUND requires a variable")
		}
		_, bound := b[v.Name]
		return rdf.NewBoolean(bound), nil
	case "COALESCE":
		for _, a := range x.Args {
			if t, err := evalExpr(a, b); err == nil {
				return t, nil
			}
		}
		return rdf.Term{}, exprErrf("COALESCE: all arguments errored")
	case "IF":
		c, err := evalBool(x.Args[0], b)
		if err != nil {
			return rdf.Term{}, err
		}
		if c {
			return evalExpr(x.Args[1], b)
		}
		return evalExpr(x.Args[2], b)
	}

	args := make([]rdf.Term, len(x.Args))
	for i, a := range x.Args {
		t, err := evalExpr(a, b)
		if err != nil {
			return rdf.Term{}, err
		}
		args[i] = t
	}

	switch x.Fn {
	case "STR":
		s, err := stringValue(args[0])
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewLiteral(s), nil
	case "LANG":
		if args[0].Kind != rdf.KindLiteral {
			return rdf.Term{}, exprErrf("LANG of non-literal")
		}
		return rdf.NewLiteral(args[0].Lang), nil
	case "LANGMATCHES":
		tag := strings.ToLower(args[0].Value)
		rng := strings.ToLower(args[1].Value)
		if rng == "*" {
			return rdf.NewBoolean(tag != ""), nil
		}
		return rdf.NewBoolean(tag == rng || strings.HasPrefix(tag, rng+"-")), nil
	case "DATATYPE":
		if args[0].Kind != rdf.KindLiteral {
			return rdf.Term{}, exprErrf("DATATYPE of non-literal")
		}
		return rdf.NewIRI(args[0].EffectiveDatatype()), nil
	case "IRI", "URI":
		s, err := stringValue(args[0])
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewIRI(s), nil
	case "ISIRI", "ISURI":
		return rdf.NewBoolean(args[0].IsIRI()), nil
	case "ISBLANK":
		return rdf.NewBoolean(args[0].IsBlank()), nil
	case "ISLITERAL":
		return rdf.NewBoolean(args[0].IsLiteral()), nil
	case "ISNUMERIC":
		return rdf.NewBoolean(args[0].IsNumeric()), nil
	case "STRLEN":
		s, err := stringValue(args[0])
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewInteger(int64(len([]rune(s)))), nil
	case "UCASE":
		return rdf.NewLiteral(strings.ToUpper(args[0].Value)), nil
	case "LCASE":
		return rdf.NewLiteral(strings.ToLower(args[0].Value)), nil
	case "CONTAINS":
		return rdf.NewBoolean(strings.Contains(args[0].Value, args[1].Value)), nil
	case "STRSTARTS":
		return rdf.NewBoolean(strings.HasPrefix(args[0].Value, args[1].Value)), nil
	case "STRENDS":
		return rdf.NewBoolean(strings.HasSuffix(args[0].Value, args[1].Value)), nil
	case "CONCAT":
		var sb strings.Builder
		for _, a := range args {
			s, err := stringValue(a)
			if err != nil {
				return rdf.Term{}, err
			}
			sb.WriteString(s)
		}
		return rdf.NewLiteral(sb.String()), nil
	case "REPLACE":
		flags := ""
		if len(args) == 4 {
			flags = args[3].Value
		}
		re, err := compileRegex(args[1].Value, flags)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewLiteral(re.ReplaceAllString(args[0].Value, args[2].Value)), nil
	case "REGEX":
		s, err := stringValue(args[0])
		if err != nil {
			return rdf.Term{}, err
		}
		flags := ""
		if len(args) == 3 {
			flags = args[2].Value
		}
		re, err := compileRegex(args[1].Value, flags)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewBoolean(re.MatchString(s)), nil
	case "ABS":
		f, ok := args[0].Float()
		if !ok {
			return rdf.Term{}, exprErrf("ABS of non-numeric")
		}
		return numericResult(math.Abs(f), args[0], args[0]), nil
	case "CEIL":
		f, ok := args[0].Float()
		if !ok {
			return rdf.Term{}, exprErrf("CEIL of non-numeric")
		}
		return rdf.NewInteger(int64(math.Ceil(f))), nil
	case "FLOOR":
		f, ok := args[0].Float()
		if !ok {
			return rdf.Term{}, exprErrf("FLOOR of non-numeric")
		}
		return rdf.NewInteger(int64(math.Floor(f))), nil
	case "ROUND":
		f, ok := args[0].Float()
		if !ok {
			return rdf.Term{}, exprErrf("ROUND of non-numeric")
		}
		return rdf.NewInteger(int64(math.Round(f))), nil
	case "SAMETERM":
		return rdf.NewBoolean(args[0] == args[1]), nil
	}
	return rdf.Term{}, exprErrf("unimplemented function %s", x.Fn)
}

// formatFloat renders an aggregate numeric result: integer when integral.
func formatFloat(f float64) rdf.Term {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return rdf.NewInteger(int64(f))
	}
	return rdf.NewTypedLiteral(strconv.FormatFloat(f, 'f', -1, 64), rdf.XSDDecimal)
}
