package sparql

import "repro/internal/rdf"

// Form is the query form.
type Form uint8

// Query forms supported by the engine.
const (
	FormSelect Form = iota
	FormAsk
	FormConstruct
)

// Query is a parsed SPARQL query.
type Query struct {
	Form     Form
	Prefixes *rdf.PrefixMap

	Distinct bool
	Reduced  bool
	Star     bool
	Select   []SelectItem
	// Template holds the CONSTRUCT triple templates.
	Template []TriplePattern

	Where *GroupPattern

	GroupBy []Expression
	Having  []Expression
	OrderBy []OrderCond
	Limit   int // -1 when absent
	Offset  int
}

// SelectItem is one projection element: a plain variable, or an
// (expression AS variable) binding.
type SelectItem struct {
	Var  string
	Expr Expression // nil for a plain variable
}

// OrderCond is one ORDER BY condition.
type OrderCond struct {
	Expr Expression
	Desc bool
}

// NodePattern is a subject/predicate/object slot in a triple pattern:
// either a concrete term or a variable.
type NodePattern struct {
	Term rdf.Term
	Var  string // non-empty means variable
}

// IsVar reports whether the slot is a variable.
func (n NodePattern) IsVar() bool { return n.Var != "" }

// TriplePattern is one pattern in a basic graph pattern.
type TriplePattern struct {
	S, P, O NodePattern
}

// Vars returns the distinct variable names in the pattern.
func (tp TriplePattern) Vars() []string {
	var out []string
	add := func(n NodePattern) {
		if !n.IsVar() {
			return
		}
		for _, v := range out {
			if v == n.Var {
				return
			}
		}
		out = append(out, n.Var)
	}
	add(tp.S)
	add(tp.P)
	add(tp.O)
	return out
}

// GraphPattern is a node of the pattern algebra.
type GraphPattern interface{ isPattern() }

// BGP is a basic graph pattern: a conjunction of triple patterns.
type BGP struct {
	Patterns []TriplePattern
}

// GroupPattern is a sequence of patterns joined left-to-right. FILTERs
// textually inside the group apply to the whole group per SPARQL
// semantics; the parser records them in Filters.
type GroupPattern struct {
	Elems   []GraphPattern
	Filters []Expression
}

// OptionalPattern is an OPTIONAL { ... } left join.
type OptionalPattern struct {
	Inner *GroupPattern
}

// UnionPattern is { A } UNION { B }.
type UnionPattern struct {
	Left, Right *GroupPattern
}

// MinusPattern is MINUS { ... }.
type MinusPattern struct {
	Inner *GroupPattern
}

// BindPattern is BIND(expr AS ?v).
type BindPattern struct {
	Expr Expression
	Var  string
}

// ValuesPattern is an inline VALUES data block. A zero Term means UNDEF.
type ValuesPattern struct {
	Vars []string
	Rows [][]rdf.Term
}

func (*BGP) isPattern()             {}
func (*GroupPattern) isPattern()    {}
func (*OptionalPattern) isPattern() {}
func (*UnionPattern) isPattern()    {}
func (*MinusPattern) isPattern()    {}
func (*BindPattern) isPattern()     {}
func (*ValuesPattern) isPattern()   {}

// Expression is a node of the expression tree.
type Expression interface{ isExpr() }

// ExprVar references a variable.
type ExprVar struct{ Name string }

// ExprTerm is a constant RDF term.
type ExprTerm struct{ Term rdf.Term }

// ExprBinary applies a binary operator: || && = != < > <= >= + - * /.
type ExprBinary struct {
	Op   string
	L, R Expression
}

// ExprUnary applies a unary operator: ! or -.
type ExprUnary struct {
	Op string
	X  Expression
}

// ExprCall invokes a builtin function (upper-case name).
type ExprCall struct {
	Fn   string
	Args []Expression
}

// ExprAggregate is an aggregate application; Arg is nil for COUNT(*).
type ExprAggregate struct {
	Fn        string
	Distinct  bool
	Arg       Expression
	Separator string // GROUP_CONCAT
}

func (*ExprVar) isExpr()       {}
func (*ExprTerm) isExpr()      {}
func (*ExprBinary) isExpr()    {}
func (*ExprUnary) isExpr()     {}
func (*ExprCall) isExpr()      {}
func (*ExprAggregate) isExpr() {}

// HasAggregate reports whether the expression tree contains an aggregate.
func HasAggregate(e Expression) bool {
	switch x := e.(type) {
	case *ExprAggregate:
		return true
	case *ExprBinary:
		return HasAggregate(x.L) || HasAggregate(x.R)
	case *ExprUnary:
		return HasAggregate(x.X)
	case *ExprCall:
		for _, a := range x.Args {
			if HasAggregate(a) {
				return true
			}
		}
	}
	return false
}
