package sparql

// Incremental encoding and decoding of the SPARQL 1.1 Query Results JSON
// Format. The materialized (Un)MarshalJSON in results.go builds the whole
// document in memory; the writer and reader here move one binding at a
// time, which is what lets the protocol server flush rows as they are
// produced and the HTTP client hand rows to the application while the
// response body is still arriving.

import (
	"encoding/json"
	"fmt"
	"io"
)

// MarshalJSON encodes one solution binding in the SPARQL JSON results
// term encoding ({"v": {"type": ..., "value": ...}, ...}).
func (b Binding) MarshalJSON() ([]byte, error) {
	jb := make(map[string]jsonTerm, len(b))
	for v, t := range b {
		jb[v] = termToJSON(t)
	}
	return json.Marshal(jb)
}

// UnmarshalJSON decodes one solution binding from the SPARQL JSON
// results term encoding.
func (b *Binding) UnmarshalJSON(data []byte) error {
	var jb map[string]jsonTerm
	if err := json.Unmarshal(data, &jb); err != nil {
		return err
	}
	out := make(Binding, len(jb))
	for v, jt := range jb {
		t, err := termFromJSON(jt)
		if err != nil {
			return err
		}
		out[v] = t
	}
	*b = out
	return nil
}

// JSONRowWriter writes a SPARQL JSON results document incrementally:
// the head is emitted on construction, each WriteRow appends one
// binding, and Close terminates the document. Nothing is buffered
// beyond the row being encoded.
type JSONRowWriter struct {
	w    io.Writer
	rows int
	err  error
}

// NewJSONRowWriter starts a SELECT results document with the given head.
func NewJSONRowWriter(w io.Writer, vars []string) *JSONRowWriter {
	jw := &JSONRowWriter{w: w}
	head, err := json.Marshal(vars)
	if err == nil {
		_, err = fmt.Fprintf(w, `{"head":{"vars":%s},"results":{"bindings":[`, head)
	}
	jw.err = err
	return jw
}

// WriteRow appends one binding to the document.
func (jw *JSONRowWriter) WriteRow(b Binding) error {
	if jw.err != nil {
		return jw.err
	}
	enc, err := b.MarshalJSON()
	if err != nil {
		jw.err = err
		return err
	}
	if jw.rows > 0 {
		if _, err := io.WriteString(jw.w, ","); err != nil {
			jw.err = err
			return err
		}
	}
	if _, err := jw.w.Write(enc); err != nil {
		jw.err = err
		return err
	}
	jw.rows++
	return nil
}

// Close terminates the document. An unterminated document (Close never
// called, e.g. because the producer died mid-stream) is how a peer
// detects a broken stream: the JSON fails to parse to completion.
func (jw *JSONRowWriter) Close() error {
	if jw.err != nil {
		return jw.err
	}
	_, jw.err = io.WriteString(jw.w, "]}}")
	return jw.err
}

// WriteAskJSON writes a complete ASK results document.
func WriteAskJSON(w io.Writer, value bool) error {
	_, err := fmt.Fprintf(w, `{"head":{},"boolean":%v}`, value)
	return err
}

// JSONRowReader decodes a SPARQL JSON results document token-wise: the
// head is parsed on construction, then Next decodes one binding at a
// time straight off the underlying reader, so memory stays O(row) no
// matter how large the result is.
type JSONRowReader struct {
	dec        *json.Decoder
	vars       []string
	boolean    *bool
	inBindings bool
	done       bool
}

// NewJSONRowReader consumes the document prologue (everything up to the
// first binding, or the whole document for ASK results) and returns a
// reader positioned on the binding stream.
func NewJSONRowReader(r io.Reader) (*JSONRowReader, error) {
	jr := &JSONRowReader{dec: json.NewDecoder(r)}
	if err := jr.prologue(); err != nil {
		return nil, err
	}
	return jr, nil
}

// Vars returns the head's variable list (empty for ASK results, and for
// malformed documents that open the bindings before any head).
func (jr *JSONRowReader) Vars() []string { return jr.vars }

// Ask returns the boolean of an ASK result and whether this is one.
func (jr *JSONRowReader) Ask() (value, ok bool) {
	if jr.boolean == nil {
		return false, false
	}
	return *jr.boolean, true
}

func expectDelim(dec *json.Decoder, d json.Delim) error {
	tok, err := dec.Token()
	if err != nil {
		return noEOF(err)
	}
	if got, ok := tok.(json.Delim); !ok || got != d {
		return fmt.Errorf("sparql: results document: expected %q, got %v", d.String(), tok)
	}
	return nil
}

// noEOF converts a bare io.EOF from the decoder into ErrUnexpectedEOF:
// inside a document, running out of bytes is always a truncation.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

func (jr *JSONRowReader) prologue() error {
	if err := expectDelim(jr.dec, '{'); err != nil {
		return err
	}
	for jr.dec.More() {
		tok, err := jr.dec.Token()
		if err != nil {
			return noEOF(err)
		}
		key, ok := tok.(string)
		if !ok {
			return fmt.Errorf("sparql: results document: unexpected token %v", tok)
		}
		switch key {
		case "head":
			var head struct {
				Vars []string `json:"vars"`
			}
			if err := jr.dec.Decode(&head); err != nil {
				return noEOF(err)
			}
			jr.vars = head.Vars
		case "boolean":
			var b bool
			if err := jr.dec.Decode(&b); err != nil {
				return noEOF(err)
			}
			jr.boolean = &b
		case "results":
			if err := expectDelim(jr.dec, '{'); err != nil {
				return err
			}
			for jr.dec.More() {
				tok, err := jr.dec.Token()
				if err != nil {
					return noEOF(err)
				}
				rkey, ok := tok.(string)
				if !ok {
					return fmt.Errorf("sparql: results document: unexpected token %v", tok)
				}
				if rkey == "bindings" {
					if err := expectDelim(jr.dec, '['); err != nil {
						return err
					}
					jr.inBindings = true
					return nil
				}
				var skip json.RawMessage
				if err := jr.dec.Decode(&skip); err != nil {
					return noEOF(err)
				}
			}
			// results object with no bindings member
			if err := expectDelim(jr.dec, '}'); err != nil {
				return err
			}
		default:
			var skip json.RawMessage
			if err := jr.dec.Decode(&skip); err != nil {
				return noEOF(err)
			}
		}
	}
	if err := expectDelim(jr.dec, '}'); err != nil {
		return err
	}
	jr.done = true
	return nil
}

// Next decodes the next binding. It returns io.EOF at the clean end of
// the document; any other error means the stream is broken (truncated
// body, malformed JSON, an invalid term) and no further rows can follow.
func (jr *JSONRowReader) Next() (Binding, error) {
	if jr.done || !jr.inBindings {
		return nil, io.EOF
	}
	if jr.dec.More() {
		var b Binding
		if err := jr.dec.Decode(&b); err != nil {
			return nil, noEOF(err)
		}
		return b, nil
	}
	// close the bindings array, then unwind the enclosing results object
	// and the document, tolerating (and skipping) any trailing members
	if err := expectDelim(jr.dec, ']'); err != nil {
		return nil, err
	}
	for depth := 2; depth > 0; {
		tok, err := jr.dec.Token()
		if err != nil {
			return nil, noEOF(err)
		}
		switch t := tok.(type) {
		case json.Delim:
			if t == '}' {
				depth--
				continue
			}
			return nil, fmt.Errorf("sparql: results document: unexpected %v", t)
		case string:
			var skip json.RawMessage
			if err := jr.dec.Decode(&skip); err != nil {
				return nil, noEOF(err)
			}
		default:
			return nil, fmt.Errorf("sparql: results document: unexpected token %v", tok)
		}
	}
	jr.done = true
	return nil, io.EOF
}
