package sparql

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/rdf"
	"repro/internal/store"
)

// Result holds the outcome of query execution.
type Result struct {
	// Vars is the projected variable list, in projection order.
	Vars []string
	// Rows are the solution bindings. Unbound projected variables are
	// simply missing from the map.
	Rows []Binding
	// Ask is true for ASK queries, in which case Boolean holds the answer
	// and Vars/Rows are empty.
	Ask     bool
	Boolean bool
	// Graph holds the result of a CONSTRUCT query (nil otherwise).
	Graph *rdf.Graph
}

// Exec parses and executes a query against any storage tier.
func Exec(st store.Queryable, query string) (*Result, error) {
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return q.Exec(st)
}

// Engine selects the evaluation strategy.
type Engine uint8

// Available engines.
const (
	// EngineAuto runs the ID-space engine, falling back to the legacy
	// term-space evaluator for queries it cannot plan.
	EngineAuto Engine = iota
	// EngineIDSpace forces the compiled ID-space engine (exec.go).
	EngineIDSpace
	// EngineLegacy forces the term-space evaluator that joins map-based
	// Bindings; kept as the fallback and as the differential-testing
	// reference.
	EngineLegacy
)

// Exec executes the parsed query against st with the default engine.
func (q *Query) Exec(st store.Queryable) (*Result, error) {
	return q.ExecEngine(st, EngineAuto)
}

// ExecEngine executes the parsed query with an explicit engine choice.
func (q *Query) ExecEngine(st store.Queryable, engine Engine) (*Result, error) {
	if engine == EngineLegacy {
		return q.execLegacy(st)
	}
	res, err := q.execID(st)
	if engine == EngineAuto && errors.Is(err, errUnsupportedPlan) {
		return q.execLegacy(st)
	}
	return res, err
}

// execLegacy executes the query on the term-space evaluator.
func (q *Query) execLegacy(st store.Queryable) (*Result, error) {
	ev := &evaluator{st: st}
	sols := ev.evalGroup(q.Where, []Binding{{}})

	if q.Form == FormAsk {
		return &Result{Ask: true, Boolean: len(sols) > 0}, nil
	}
	if q.Form == FormConstruct {
		// solution modifiers apply to the solution sequence before
		// templating
		if q.Offset > 0 {
			if q.Offset >= len(sols) {
				sols = nil
			} else {
				sols = sols[q.Offset:]
			}
		}
		if q.Limit >= 0 && q.Limit < len(sols) {
			sols = sols[:q.Limit]
		}
		return &Result{Graph: q.execConstruct(sols)}, nil
	}

	needsGroup := q.needsGrouping()

	var vars []string
	var rows []Binding
	if needsGroup {
		var err error
		vars, rows, err = q.aggregate(sols)
		if err != nil {
			return nil, err
		}
		// In the grouped path ORDER BY references group keys or aggregate
		// aliases, both present in the produced rows.
		if len(q.OrderBy) > 0 {
			sortSolutions(rows, q.OrderBy)
		}
	} else {
		// ORDER BY is evaluated over the full solution bindings (it may
		// reference unprojected variables), so extend each solution with
		// the projection aliases, sort, then restrict.
		extended := sols
		if len(q.OrderBy) > 0 || hasAliases(q.Select) {
			extended = make([]Binding, len(sols))
			for i, s := range sols {
				ns := s.clone()
				for _, it := range q.Select {
					if it.Expr == nil {
						continue
					}
					if t, err := evalExpr(it.Expr, s); err == nil {
						ns[it.Var] = t
					}
				}
				extended[i] = ns
			}
			if len(q.OrderBy) > 0 {
				sortSolutions(extended, q.OrderBy)
			}
		}
		vars, rows = q.projectPrepared(extended)
	}
	// DISTINCT
	if q.Distinct || q.Reduced {
		rows = distinct(rows, vars)
	}
	// OFFSET / LIMIT
	if q.Offset > 0 {
		if q.Offset >= len(rows) {
			rows = nil
		} else {
			rows = rows[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(rows) {
		rows = rows[:q.Limit]
	}
	return &Result{Vars: vars, Rows: rows}, nil
}

func hasAliases(items []SelectItem) bool {
	for _, it := range items {
		if it.Expr != nil {
			return true
		}
	}
	return false
}

// projectPrepared applies the SELECT clause to solutions whose expression
// aliases have already been materialized into the bindings.
func (q *Query) projectPrepared(sols []Binding) ([]string, []Binding) {
	if q.Star {
		return q.starVars(), sols
	}
	vars := make([]string, len(q.Select))
	for i, it := range q.Select {
		vars[i] = it.Var
	}
	rows := make([]Binding, 0, len(sols))
	for _, s := range sols {
		out := Binding{}
		for _, v := range vars {
			if t, ok := s[v]; ok {
				out[v] = t
			}
		}
		rows = append(rows, out)
	}
	return vars, rows
}

func (q *Query) starVars() []string {
	seen := map[string]bool{}
	var vars []string
	collectVars(q.Where, func(v string) {
		if !seen[v] {
			seen[v] = true
			vars = append(vars, v)
		}
	})
	sort.Strings(vars)
	return vars
}

// aggregate applies GROUP BY / HAVING and aggregate projections.
func (q *Query) aggregate(sols []Binding) ([]string, []Binding, error) {
	type group struct {
		key  string
		base Binding // group-key bindings
		rows []Binding
	}
	groups := map[string]*group{}
	var order []string

	keyFor := func(s Binding) (string, Binding) {
		var sb strings.Builder
		base := Binding{}
		for _, ge := range q.GroupBy {
			t, err := evalExpr(ge, s)
			if err != nil {
				sb.WriteString("\x00!")
				continue
			}
			sb.WriteString(t.String())
			sb.WriteByte('\x00')
			if v, ok := ge.(*ExprVar); ok {
				base[v.Name] = t
			}
		}
		return sb.String(), base
	}

	if len(q.GroupBy) == 0 {
		g := &group{key: "", base: Binding{}, rows: sols}
		groups[""] = g
		order = append(order, "")
	} else {
		for _, s := range sols {
			k, base := keyFor(s)
			g, ok := groups[k]
			if !ok {
				g = &group{key: k, base: base}
				groups[k] = g
				order = append(order, k)
			}
			g.rows = append(g.rows, s)
		}
	}

	vars := make([]string, len(q.Select))
	for i, it := range q.Select {
		vars[i] = it.Var
		if it.Var == "" {
			return nil, nil, fmt.Errorf("sparql: aggregate projection requires AS")
		}
	}

	var rows []Binding
	for _, k := range order {
		g := groups[k]
		// HAVING
		keep := true
		for _, h := range q.Having {
			t, err := evalAggExpr(h, g.rows, g.base)
			if err != nil {
				keep = false
				break
			}
			v, err := EffectiveBool(t)
			if err != nil || !v {
				keep = false
				break
			}
		}
		if !keep {
			continue
		}
		out := Binding{}
		for _, it := range q.Select {
			if it.Expr == nil {
				if t, ok := g.base[it.Var]; ok {
					out[it.Var] = t
				} else if len(g.rows) > 0 {
					// plain var projected under GROUP BY must be a group key;
					// tolerate by sampling (useful for functional data)
					if t, ok := g.rows[0][it.Var]; ok {
						out[it.Var] = t
					}
				}
				continue
			}
			if t, err := evalAggExpr(it.Expr, g.rows, g.base); err == nil {
				out[it.Var] = t
			}
		}
		rows = append(rows, out)
	}
	// A grouped query over zero solutions with no GROUP BY yields one row
	// (e.g. COUNT(*) = 0).
	if len(q.GroupBy) == 0 && len(sols) == 0 && len(rows) == 1 {
		// keep the single all-aggregate row
		_ = rows
	}
	return vars, rows, nil
}

// evalAggExpr evaluates an expression that may contain aggregates over the
// rows of one group.
func evalAggExpr(e Expression, rows []Binding, base Binding) (rdf.Term, error) {
	switch x := e.(type) {
	case *ExprAggregate:
		return evalAggregate(x, rows)
	case *ExprBinary:
		l, err := evalAggExpr(x.L, rows, base)
		if err != nil {
			return rdf.Term{}, err
		}
		r, err := evalAggExpr(x.R, rows, base)
		if err != nil {
			return rdf.Term{}, err
		}
		return evalBinary(&ExprBinary{Op: x.Op, L: &ExprTerm{Term: l}, R: &ExprTerm{Term: r}}, base)
	case *ExprUnary:
		v, err := evalAggExpr(x.X, rows, base)
		if err != nil {
			return rdf.Term{}, err
		}
		return evalUnary(&ExprUnary{Op: x.Op, X: &ExprTerm{Term: v}}, base)
	case *ExprCall:
		args := make([]Expression, len(x.Args))
		for i, a := range x.Args {
			if HasAggregate(a) {
				v, err := evalAggExpr(a, rows, base)
				if err != nil {
					return rdf.Term{}, err
				}
				args[i] = &ExprTerm{Term: v}
			} else {
				args[i] = a
			}
		}
		return evalCall(&ExprCall{Fn: x.Fn, Args: args}, base)
	default:
		return evalExpr(e, base)
	}
}

func evalAggregate(x *ExprAggregate, rows []Binding) (rdf.Term, error) {
	// collect argument values
	var vals []rdf.Term
	if x.Arg == nil { // COUNT(*)
		if x.Distinct {
			seen := map[string]bool{}
			n := 0
			for _, r := range rows {
				k := bindingKey(r, nil)
				if !seen[k] {
					seen[k] = true
					n++
				}
			}
			return rdf.NewInteger(int64(n)), nil
		}
		return rdf.NewInteger(int64(len(rows))), nil
	}
	for _, r := range rows {
		if t, err := evalExpr(x.Arg, r); err == nil {
			vals = append(vals, t)
		}
	}
	if x.Distinct {
		seen := map[rdf.Term]bool{}
		var d []rdf.Term
		for _, v := range vals {
			if !seen[v] {
				seen[v] = true
				d = append(d, v)
			}
		}
		vals = d
	}
	switch x.Fn {
	case "COUNT":
		return rdf.NewInteger(int64(len(vals))), nil
	case "SUM":
		sum := 0.0
		for _, v := range vals {
			f, ok := v.Float()
			if !ok {
				return rdf.Term{}, exprErrf("SUM over non-numeric")
			}
			sum += f
		}
		return formatFloat(sum), nil
	case "AVG":
		if len(vals) == 0 {
			return rdf.NewInteger(0), nil
		}
		sum := 0.0
		for _, v := range vals {
			f, ok := v.Float()
			if !ok {
				return rdf.Term{}, exprErrf("AVG over non-numeric")
			}
			sum += f
		}
		return formatFloat(sum / float64(len(vals))), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return rdf.Term{}, exprErrf("%s of empty group", x.Fn)
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c, err := termOrder(v, best)
			if err != nil {
				c = v.Compare(best)
			}
			if (x.Fn == "MIN" && c < 0) || (x.Fn == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	case "SAMPLE":
		if len(vals) == 0 {
			return rdf.Term{}, exprErrf("SAMPLE of empty group")
		}
		return vals[0], nil
	case "GROUP_CONCAT":
		parts := make([]string, 0, len(vals))
		for _, v := range vals {
			parts = append(parts, v.Value)
		}
		return rdf.NewLiteral(strings.Join(parts, x.Separator)), nil
	}
	return rdf.Term{}, exprErrf("unknown aggregate %s", x.Fn)
}

// --- pattern evaluation ---

type evaluator struct {
	st store.Queryable
}

func (ev *evaluator) evalGroup(g *GroupPattern, input []Binding) []Binding {
	sols := input
	for _, el := range g.Elems {
		sols = ev.evalPattern(el, sols)
		if len(sols) == 0 {
			// Filters can't resurrect solutions; bail early unless a later
			// element is a UNION/VALUES that could still produce rows from
			// the empty set — it can't, since joins with zero rows are zero.
			break
		}
	}
	if len(g.Filters) > 0 {
		kept := sols[:0:0]
		for _, s := range sols {
			ok := true
			for _, f := range g.Filters {
				v, err := evalBool(f, s)
				if err != nil || !v {
					ok = false
					break
				}
			}
			if ok {
				kept = append(kept, s)
			}
		}
		sols = kept
	}
	return sols
}

func (ev *evaluator) evalPattern(p GraphPattern, input []Binding) []Binding {
	switch x := p.(type) {
	case *BGP:
		return ev.evalBGP(x, input)
	case *GroupPattern:
		return ev.evalGroup(x, input)
	case *OptionalPattern:
		var out []Binding
		for _, left := range input {
			ext := ev.evalGroup(x.Inner, []Binding{left})
			if len(ext) == 0 {
				out = append(out, left)
			} else {
				out = append(out, ext...)
			}
		}
		return out
	case *UnionPattern:
		l := ev.evalGroup(x.Left, input)
		r := ev.evalGroup(x.Right, input)
		return append(l, r...)
	case *MinusPattern:
		right := ev.evalGroup(x.Inner, []Binding{{}})
		var out []Binding
		for _, left := range input {
			removed := false
			for _, r := range right {
				if compatibleSharing(left, r) {
					removed = true
					break
				}
			}
			if !removed {
				out = append(out, left)
			}
		}
		return out
	case *BindPattern:
		out := make([]Binding, 0, len(input))
		for _, s := range input {
			ns := s.clone()
			if t, err := evalExpr(x.Expr, s); err == nil {
				ns[x.Var] = t
			}
			out = append(out, ns)
		}
		return out
	case *ValuesPattern:
		var out []Binding
		for _, s := range input {
			for _, row := range x.Rows {
				ns := s.clone()
				ok := true
				for i, v := range x.Vars {
					t := row[i]
					if t.IsZero() {
						continue // UNDEF
					}
					if cur, bound := ns[v]; bound {
						if cur != t {
							ok = false
							break
						}
					} else {
						ns[v] = t
					}
				}
				if ok {
					out = append(out, ns)
				}
			}
		}
		return out
	}
	return nil
}

// compatibleSharing reports whether two bindings share at least one
// variable and agree on all shared variables (MINUS semantics).
func compatibleSharing(l, r Binding) bool {
	shared := false
	for k, v := range r {
		if lv, ok := l[k]; ok {
			shared = true
			if lv != v {
				return false
			}
		}
	}
	return shared
}

// evalBGP joins the triple patterns with greedy selectivity ordering.
func (ev *evaluator) evalBGP(bgp *BGP, input []Binding) []Binding {
	if len(bgp.Patterns) == 0 {
		return input
	}
	sols := input
	remaining := make([]TriplePattern, len(bgp.Patterns))
	copy(remaining, bgp.Patterns)
	// The estimate depends only on the pattern's constants, so one store
	// call per pattern suffices; re-estimating every remaining pattern on
	// every iteration cost O(k²) Cardinality calls per BGP.
	cards := make([]int, len(remaining))
	for i, tp := range remaining {
		cards[i] = ev.st.Cardinality(patternFor(tp))
	}
	bound := map[string]bool{}
	if len(input) > 0 {
		for v := range input[0] {
			bound[v] = true
		}
	}
	first := true
	for len(remaining) > 0 {
		// Pick the next pattern greedily: prefer patterns connected to an
		// already-bound variable (joining disconnected patterns builds a
		// cartesian product), then the smallest estimated cardinality.
		best, bestCard, bestConn := -1, int(^uint(0)>>1), false
		for i, tp := range remaining {
			conn := first
			for _, v := range tp.Vars() {
				if bound[v] {
					conn = true
					break
				}
			}
			if best == -1 || (conn && !bestConn) || (conn == bestConn && cards[i] < bestCard) {
				best, bestCard, bestConn = i, cards[i], conn
			}
		}
		first = false
		tp := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		cards = append(cards[:best], cards[best+1:]...)
		sols = ev.joinPattern(tp, sols)
		if len(sols) == 0 {
			return nil
		}
		for _, v := range tp.Vars() {
			bound[v] = true
		}
	}
	return sols
}

// patternFor builds a store pattern for cardinality estimation from the
// pattern's constants (row-bound variables are approximated as free, which
// over-estimates but never changes results).
func patternFor(tp TriplePattern) store.Pattern {
	var pat store.Pattern
	if !tp.S.IsVar() {
		pat.S = tp.S.Term
	}
	if !tp.P.IsVar() {
		pat.P = tp.P.Term
	}
	if !tp.O.IsVar() {
		pat.O = tp.O.Term
	}
	return pat
}

// joinPattern extends each solution with all matches of tp.
func (ev *evaluator) joinPattern(tp TriplePattern, sols []Binding) []Binding {
	var out []Binding
	for _, s := range sols {
		pat := store.Pattern{}
		resolve := func(n NodePattern) (rdf.Term, bool) { // term, isConcrete
			if !n.IsVar() {
				return n.Term, true
			}
			if t, ok := s[n.Var]; ok {
				return t, true
			}
			return rdf.Term{}, false
		}
		if t, ok := resolve(tp.S); ok {
			pat.S = t
		}
		if t, ok := resolve(tp.P); ok {
			pat.P = t
		}
		if t, ok := resolve(tp.O); ok {
			pat.O = t
		}
		ev.st.Match(pat, func(tr rdf.Triple) bool {
			ns := s.clone()
			if unify(tp, tr, ns) {
				out = append(out, ns)
			}
			return true
		})
	}
	return out
}

// unify binds the pattern's variables to the triple's terms, checking
// repeated variables for consistency.
func unify(tp TriplePattern, tr rdf.Triple, b Binding) bool {
	bind := func(n NodePattern, t rdf.Term) bool {
		if !n.IsVar() {
			return n.Term == t
		}
		if cur, ok := b[n.Var]; ok {
			return cur == t
		}
		b[n.Var] = t
		return true
	}
	return bind(tp.S, tr.S) && bind(tp.P, tr.P) && bind(tp.O, tr.O)
}

// --- helpers ---

func collectVars(p GraphPattern, add func(string)) {
	switch x := p.(type) {
	case *BGP:
		for _, tp := range x.Patterns {
			for _, v := range tp.Vars() {
				add(v)
			}
		}
	case *GroupPattern:
		for _, el := range x.Elems {
			collectVars(el, add)
		}
	case *OptionalPattern:
		collectVars(x.Inner, add)
	case *UnionPattern:
		collectVars(x.Left, add)
		collectVars(x.Right, add)
	case *MinusPattern:
		// MINUS does not bind
	case *BindPattern:
		add(x.Var)
	case *ValuesPattern:
		for _, v := range x.Vars {
			add(v)
		}
	}
}

func sortSolutions(rows []Binding, conds []OrderCond) {
	// Precompute the sort keys once per row: evaluating expressions
	// inside the comparator would cost O(n log n) evaluations. The
	// comparison itself is CompareOrderKeys, shared with the federated
	// ordered merge so both establish the same order.
	type keyed struct {
		row Binding
		key OrderKey
	}
	ks := make([]keyed, len(rows))
	for i, r := range rows {
		ks[i] = keyed{row: r, key: OrderKeyOf(conds, r)}
	}
	sort.SliceStable(ks, func(i, j int) bool {
		return CompareOrderKeys(conds, ks[i].key, ks[j].key) < 0
	})
	for i := range ks {
		rows[i] = ks[i].row
	}
}

func distinct(rows []Binding, vars []string) []Binding {
	seen := map[string]bool{}
	out := rows[:0:0]
	for _, r := range rows {
		k := bindingKey(r, vars)
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}

// bindingKey builds a canonical string key of a binding restricted to vars
// (nil means all bound variables, sorted). With an explicit vars list the
// key is positional; with nil it carries the variable names too, so two
// rows binding the same value under different variables — possible when
// rows from heterogeneous sources meet in a federated merge, or under
// OPTIONAL in COUNT(DISTINCT *) — do not collide.
func bindingKey(b Binding, vars []string) string {
	var sb strings.Builder
	if vars == nil {
		vars = make([]string, 0, len(b))
		for v := range b {
			vars = append(vars, v)
		}
		sort.Strings(vars)
		for _, v := range vars {
			sb.WriteString(v)
			sb.WriteByte('\x01')
			sb.WriteString(b[v].String())
			sb.WriteByte('\x00')
		}
		return sb.String()
	}
	for _, v := range vars {
		if t, ok := b[v]; ok {
			sb.WriteString(t.String())
		}
		sb.WriteByte('\x00')
	}
	return sb.String()
}
