package results

import (
	"encoding/xml"
	"errors"
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/sparql"
)

func TestNegotiate(t *testing.T) {
	for _, tc := range []struct {
		formatParam, accept string
		want                Format
		wantErr             bool
	}{
		{"", "", JSON, false},
		{"csv", "", CSV, false},
		{"TSV", "", TSV, false},                                // parameter is case-insensitive
		{"xml", "application/sparql-results+json", XML, false}, // format= beats Accept
		{"turtle", "", JSON, true},                             // unknown format is an error, not a fallback
		{"", "text/csv", CSV, false},
		{"", "text/tab-separated-values", TSV, false},
		{"", "application/sparql-results+xml", XML, false},
		{"", "application/json", JSON, false},
		{"", "text/xml;q=0.9", XML, false},      // q-values are stripped
		{"", "image/png, text/csv", CSV, false}, // first recognized range wins
		{"", "text/csv, application/sparql-results+xml", CSV, false},
		{"", "*/*", JSON, false}, // wildcard falls through to the default
		{"", "application/pdf", JSON, false},
	} {
		got, err := Negotiate(tc.formatParam, tc.accept, JSON)
		if (err != nil) != tc.wantErr {
			t.Fatalf("Negotiate(%q, %q): err = %v, wantErr = %v", tc.formatParam, tc.accept, err, tc.wantErr)
		}
		if err == nil && got != tc.want {
			t.Fatalf("Negotiate(%q, %q) = %v, want %v", tc.formatParam, tc.accept, got, tc.want)
		}
	}
}

// hazardRows is one row per serialization hazard: every character class
// that needs quoting or escaping in at least one of the formats.
var hazardRows = []sparql.Binding{
	{"a": rdf.NewLiteral(`say "hi"`), "b": rdf.NewIRI("http://ex/q")},
	{"a": rdf.NewLiteral("tab\there")},
	{"a": rdf.NewLiteral("line\nbreak")},
	{"a": rdf.NewLiteral("comma, separated")},
	{"a": rdf.NewLiteral("carriage\rreturn")},
	{"a": rdf.NewLiteral(`back\slash`)},
	{"a": rdf.NewLiteral("<xml> & 'entities'"), "b": rdf.NewBlank("anon")},
	{"a": rdf.NewLangLiteral("hallo", "de"), "b": rdf.NewInteger(42)},
	{"b": rdf.NewIRI("http://ex/unbound-a")},
}

func writeAll(t *testing.T, f Format, rows []sparql.Binding) string {
	t.Helper()
	var sb strings.Builder
	w := NewWriter(f, &sb, []string{"a", "b"})
	for _, r := range rows {
		if err := w.WriteRow(r); err != nil {
			t.Fatalf("%v: WriteRow: %v", f, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("%v: Close: %v", f, err)
	}
	return sb.String()
}

func TestCSVEscaping(t *testing.T) {
	got := writeAll(t, CSV, hazardRows)
	want := "a,b\r\n" +
		"\"say \"\"hi\"\"\",http://ex/q\r\n" +
		"tab\there,\r\n" + // a bare tab needs no CSV quoting
		"\"line\nbreak\",\r\n" +
		"\"comma, separated\",\r\n" +
		"\"carriage\rreturn\",\r\n" + // lone CR preserved byte-for-byte
		"back\\slash,\r\n" +
		"<xml> & 'entities',_:anon\r\n" + // no CSV metacharacters: unquoted

		"hallo,42\r\n" + // plain values: no lang tag, no datatype
		",http://ex/unbound-a\r\n"
	if got != want {
		t.Fatalf("CSV document:\n got %q\nwant %q", got, want)
	}
}

func TestTSVEscaping(t *testing.T) {
	got := writeAll(t, TSV, hazardRows)
	want := "?a\t?b\n" +
		"\"say \\\"hi\\\"\"\t<http://ex/q>\n" +
		"\"tab\\there\"\t\n" +
		"\"line\\nbreak\"\t\n" +
		"\"comma, separated\"\t\n" +
		"\"carriage\\rreturn\"\t\n" +
		"\"back\\\\slash\"\t\n" +
		"\"<xml> & 'entities'\"\t_:anon\n" +
		"\"hallo\"@de\t\"42\"^^<http://www.w3.org/2001/XMLSchema#integer>\n" +
		"\t<http://ex/unbound-a>\n"
	if got != want {
		t.Fatalf("TSV document:\n got %q\nwant %q", got, want)
	}
}

func TestXMLEscaping(t *testing.T) {
	got := writeAll(t, XML, hazardRows)
	// the document must stay well-formed XML despite markup characters in
	// the values …
	dec := xml.NewDecoder(strings.NewReader(got))
	for {
		if _, err := dec.Token(); err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("XML document not well-formed: %v\n%s", err, got)
		}
	}
	// … with entities escaped, not embedded raw
	for _, frag := range []string{
		"<literal>&lt;xml&gt; &amp; &#39;entities&#39;</literal>",
		`<literal xml:lang="de">hallo</literal>`,
		`<literal datatype="http://www.w3.org/2001/XMLSchema#integer">42</literal>`,
		"<bnode>anon</bnode>",
		"<uri>http://ex/q</uri>",
	} {
		if !strings.Contains(got, frag) {
			t.Fatalf("XML document missing %q:\n%s", frag, got)
		}
	}
	if !strings.HasSuffix(got, "</results></sparql>\n") {
		t.Fatalf("XML document not terminated: %q", got)
	}
}

func TestWriteAsk(t *testing.T) {
	for _, tc := range []struct {
		f    Format
		want string
	}{
		{CSV, "boolean\r\ntrue\r\n"},
		{TSV, "?boolean\ntrue\n"},
		{XML, xmlProlog + "<head/><boolean>true</boolean></sparql>\n"},
	} {
		var sb strings.Builder
		if err := WriteAsk(tc.f, &sb, true); err != nil {
			t.Fatalf("%v: %v", tc.f, err)
		}
		if sb.String() != tc.want {
			t.Fatalf("%v ASK document = %q, want %q", tc.f, sb.String(), tc.want)
		}
	}
	var sb strings.Builder
	if err := WriteAsk(JSON, &sb, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "false") {
		t.Fatalf("JSON ASK document = %q", sb.String())
	}
}

// failAfter errors every Write once n bytes have passed through — the
// io-level failure a hung-up client produces.
type failAfter struct {
	n       int
	written int
}

var errSink = errors.New("sink failed")

func (f *failAfter) Write(p []byte) (int, error) {
	if f.written >= f.n {
		return 0, errSink
	}
	f.written += len(p)
	return len(p), nil
}

// TestWriterSinkFailureSticks: once the underlying writer fails, every
// subsequent WriteRow and Close must report the error rather than
// silently dropping rows — the handler relies on the error to stop
// consuming the evaluation.
func TestWriterSinkFailureSticks(t *testing.T) {
	for _, f := range []Format{JSON, CSV, TSV, XML} {
		sink := &failAfter{n: 1} // the head goes through, the first row fails
		w := NewWriter(f, sink, []string{"a"})
		row := sparql.Binding{"a": rdf.NewLiteral("x")}
		if err := w.WriteRow(row); !errors.Is(err, errSink) {
			t.Fatalf("%v: first WriteRow after sink failure = %v, want errSink", f, err)
		}
		if err := w.WriteRow(row); !errors.Is(err, errSink) {
			t.Fatalf("%v: second WriteRow did not stick: %v", f, err)
		}
		if err := w.Close(); !errors.Is(err, errSink) {
			t.Fatalf("%v: Close after sink failure = %v, want errSink", f, err)
		}
	}
}
