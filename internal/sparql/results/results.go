// Package results serializes SPARQL query results in the W3C interchange
// formats — SPARQL 1.1 Query Results JSON, CSV, TSV and XML — through one
// streaming Writer interface, and negotiates which of them a protocol
// request gets. Every writer emits row-by-row with O(row) buffering, so
// the HTTP handlers can flush bindings while the engine is still
// producing them regardless of the format the client asked for.
//
// Mid-stream failure contract: a writer never buffers the document, so a
// producer that dies after some rows leaves a truncated document behind.
// For JSON that is detectable in-band (the document never closes); CSV
// and TSV have no terminator, so the HTTP handlers abort the connection
// instead of finishing the response — a short-but-valid-looking table
// must never masquerade as a complete result.
package results

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/sparql"
)

// Format identifies one of the supported result serializations.
type Format int

const (
	JSON Format = iota // SPARQL 1.1 Query Results JSON Format
	CSV                // SPARQL 1.1 Query Results CSV Format
	TSV                // SPARQL 1.1 Query Results TSV Format
	XML                // SPARQL Query Results XML Format
)

// String returns the format's short name — the value the `format=` query
// parameter accepts.
func (f Format) String() string {
	switch f {
	case CSV:
		return "csv"
	case TSV:
		return "tsv"
	case XML:
		return "xml"
	default:
		return "json"
	}
}

// ContentType returns the media type the format is served as.
func (f Format) ContentType() string {
	switch f {
	case CSV:
		return "text/csv; charset=utf-8"
	case TSV:
		return "text/tab-separated-values; charset=utf-8"
	case XML:
		return "application/sparql-results+xml"
	default:
		return "application/sparql-results+json"
	}
}

// byName maps `format=` parameter values to formats.
var byName = map[string]Format{
	"json": JSON, "csv": CSV, "tsv": TSV, "xml": XML,
}

// byMIME maps Accept media ranges to formats.
var byMIME = map[string]Format{
	"application/sparql-results+json": JSON,
	"application/json":                JSON,
	"text/csv":                        CSV,
	"text/tab-separated-values":       TSV,
	"application/sparql-results+xml":  XML,
	"application/xml":                 XML,
	"text/xml":                        XML,
}

// Negotiate picks the response format for a protocol request. An explicit
// `format=` parameter wins and must name a known format; otherwise the
// Accept header's media ranges are scanned in order and the first
// recognized one wins. With neither (or only unrecognized ranges, e.g.
// */*), def is returned — a client that doesn't care gets the endpoint's
// native format rather than a 406.
func Negotiate(formatParam, accept string, def Format) (Format, error) {
	if formatParam != "" {
		f, ok := byName[strings.ToLower(formatParam)]
		if !ok {
			return def, fmt.Errorf("results: unknown format %q (want json, csv, tsv or xml)", formatParam)
		}
		return f, nil
	}
	for _, part := range strings.Split(accept, ",") {
		mr := part
		if i := strings.IndexByte(mr, ';'); i >= 0 {
			mr = mr[:i] // drop q-values and other parameters
		}
		if f, ok := byMIME[strings.ToLower(strings.TrimSpace(mr))]; ok {
			return f, nil
		}
	}
	return def, nil
}

// Writer emits one SELECT results document: the head is written on
// construction, WriteRow appends one solution, Close terminates the
// document (a no-op for the terminator-less CSV/TSV).
type Writer interface {
	WriteRow(sparql.Binding) error
	Close() error
}

// NewWriter starts a SELECT results document in the given format.
func NewWriter(f Format, w io.Writer, vars []string) Writer {
	switch f {
	case CSV:
		return newCSVWriter(w, vars)
	case TSV:
		return newTSVWriter(w, vars)
	case XML:
		return newXMLWriter(w, vars)
	default:
		return sparql.NewJSONRowWriter(w, vars)
	}
}

// WriteAsk writes a complete ASK results document in the given format.
// The CSV/TSV encodings follow the common single-cell convention (the
// W3C CSV/TSV format documents only cover SELECT).
func WriteAsk(f Format, w io.Writer, value bool) error {
	switch f {
	case CSV:
		_, err := fmt.Fprintf(w, "boolean\r\n%v\r\n", value)
		return err
	case TSV:
		_, err := fmt.Fprintf(w, "?boolean\n%v\n", value)
		return err
	case XML:
		_, err := fmt.Fprintf(w, "%s<head/><boolean>%v</boolean></sparql>\n", xmlProlog, value)
		return err
	default:
		return sparql.WriteAskJSON(w, value)
	}
}
