package results

// The SPARQL Query Results XML Format. Like the JSON writer, the
// document is emitted incrementally — prolog and head on construction,
// one <result> element per row, the closing tags on Close — so a
// truncated document (missing </sparql>) is the in-band signal of a
// producer that died mid-stream. All character content and attribute
// values go through encoding/xml's escaper.

import (
	"encoding/xml"
	"io"
	"strings"

	"repro/internal/rdf"
	"repro/internal/sparql"
)

const xmlProlog = `<?xml version="1.0"?>` + "\n" +
	`<sparql xmlns="http://www.w3.org/2005/sparql-results#">`

type xmlWriter struct {
	w    io.Writer
	vars []string
	sb   strings.Builder
	err  error
}

func newXMLWriter(w io.Writer, vars []string) *xmlWriter {
	out := &xmlWriter{w: w, vars: vars}
	out.sb.WriteString(xmlProlog)
	out.sb.WriteString("<head>")
	for _, v := range vars {
		out.sb.WriteString(`<variable name="`)
		out.attr(v)
		out.sb.WriteString(`"/>`)
	}
	out.sb.WriteString("</head><results>")
	_, out.err = io.WriteString(w, out.sb.String())
	return out
}

// attr appends s to the document buffer attribute-escaped.
func (w *xmlWriter) attr(s string) {
	xml.EscapeText(&w.sb, []byte(s))
}

// text appends s to the document buffer content-escaped.
func (w *xmlWriter) text(s string) {
	xml.EscapeText(&w.sb, []byte(s))
}

func (w *xmlWriter) binding(name string, t rdf.Term) {
	w.sb.WriteString(`<binding name="`)
	w.attr(name)
	w.sb.WriteString(`">`)
	switch t.Kind {
	case rdf.KindIRI:
		w.sb.WriteString("<uri>")
		w.text(t.Value)
		w.sb.WriteString("</uri>")
	case rdf.KindBlank:
		w.sb.WriteString("<bnode>")
		w.text(t.Value)
		w.sb.WriteString("</bnode>")
	default:
		switch {
		case t.Lang != "":
			w.sb.WriteString(`<literal xml:lang="`)
			w.attr(t.Lang)
			w.sb.WriteString(`">`)
		case t.Datatype != "":
			w.sb.WriteString(`<literal datatype="`)
			w.attr(t.Datatype)
			w.sb.WriteString(`">`)
		default:
			w.sb.WriteString("<literal>")
		}
		w.text(t.Value)
		w.sb.WriteString("</literal>")
	}
	w.sb.WriteString("</binding>")
}

func (w *xmlWriter) WriteRow(b sparql.Binding) error {
	if w.err != nil {
		return w.err
	}
	w.sb.Reset()
	w.sb.WriteString("<result>")
	// head order, like the other writers, so documents are deterministic
	for _, v := range w.vars {
		if t, ok := b[v]; ok {
			w.binding(v, t)
		}
	}
	w.sb.WriteString("</result>")
	_, w.err = io.WriteString(w.w, w.sb.String())
	return w.err
}

func (w *xmlWriter) Close() error {
	if w.err != nil {
		return w.err
	}
	_, w.err = io.WriteString(w.w, "</results></sparql>\n")
	return w.err
}
