package results

// The tabular serializations. CSV (SPARQL 1.1 Query Results CSV Format)
// carries plain lexical values — IRIs bare, literals as their lexical
// form, `_:label` blank nodes — with RFC 4180 quoting, so it loses type
// information but opens in anything. TSV keeps full fidelity: terms are
// written in SPARQL surface syntax (<iri>, "literal"^^<dt>, "lit"@lang)
// with tab/newline/backslash escapes inside quoted literals, one row per
// line. Both write each row straight through; an unbound variable is an
// empty field.

import (
	"io"
	"strings"

	"repro/internal/rdf"
	"repro/internal/sparql"
)

// The CSV field encoding is hand-rolled rather than encoding/csv:
// csv.Writer normalizes line endings inside quoted fields (a lone \r is
// dropped, \n becomes \r\n under UseCRLF), but a results serialization
// must reproduce literal values byte-for-byte.

type csvWriter struct {
	w    io.Writer
	vars []string
	sb   strings.Builder
	err  error
}

func newCSVWriter(w io.Writer, vars []string) *csvWriter {
	out := &csvWriter{w: w, vars: vars}
	for i, v := range vars {
		if i > 0 {
			out.sb.WriteByte(',')
		}
		csvField(&out.sb, v)
	}
	out.sb.WriteString("\r\n")
	_, out.err = io.WriteString(w, out.sb.String())
	return out
}

// csvField appends one RFC 4180 field: quoted (with doubled quotes) only
// when the value contains a separator, quote or line break.
func csvField(sb *strings.Builder, s string) {
	if !strings.ContainsAny(s, ",\"\n\r") {
		sb.WriteString(s)
		return
	}
	sb.WriteByte('"')
	for i := 0; i < len(s); i++ {
		if s[i] == '"' {
			sb.WriteByte('"')
		}
		sb.WriteByte(s[i])
	}
	sb.WriteByte('"')
}

// csvValue is the CSV cell encoding of one term: the raw value, no
// angle brackets, quotes or datatype — blank nodes keep their _: prefix
// so they remain distinguishable from plain literals.
func csvValue(t rdf.Term) string {
	if t.Kind == rdf.KindBlank {
		return "_:" + t.Value
	}
	return t.Value
}

func (w *csvWriter) WriteRow(b sparql.Binding) error {
	if w.err != nil {
		return w.err
	}
	w.sb.Reset()
	for i, v := range w.vars {
		if i > 0 {
			w.sb.WriteByte(',')
		}
		if t, ok := b[v]; ok {
			csvField(&w.sb, csvValue(t))
		}
	}
	w.sb.WriteString("\r\n")
	_, w.err = io.WriteString(w.w, w.sb.String())
	return w.err
}

func (w *csvWriter) Close() error { return w.err }

type tsvWriter struct {
	w    io.Writer
	vars []string
	sb   strings.Builder
	err  error
}

func newTSVWriter(w io.Writer, vars []string) *tsvWriter {
	out := &tsvWriter{w: w, vars: vars}
	for i, v := range vars {
		if i > 0 {
			out.sb.WriteByte('\t')
		}
		out.sb.WriteByte('?')
		out.sb.WriteString(v)
	}
	out.sb.WriteByte('\n')
	_, out.err = io.WriteString(w, out.sb.String())
	return out
}

// tsvEscaper rewrites the characters that would break the row/field
// structure (or the quoted literal) into their backslash escapes.
var tsvEscaper = strings.NewReplacer(
	"\\", `\\`, "\t", `\t`, "\n", `\n`, "\r", `\r`, `"`, `\"`,
)

// tsvTerm renders one term in the SPARQL surface syntax TSV carries.
func tsvTerm(sb *strings.Builder, t rdf.Term) {
	switch t.Kind {
	case rdf.KindIRI:
		sb.WriteByte('<')
		sb.WriteString(t.Value)
		sb.WriteByte('>')
	case rdf.KindBlank:
		sb.WriteString("_:")
		sb.WriteString(t.Value)
	default:
		sb.WriteByte('"')
		tsvEscaper.WriteString(sb, t.Value)
		sb.WriteByte('"')
		if t.Lang != "" {
			sb.WriteByte('@')
			sb.WriteString(t.Lang)
		} else if t.Datatype != "" {
			sb.WriteString("^^<")
			sb.WriteString(t.Datatype)
			sb.WriteByte('>')
		}
	}
}

func (w *tsvWriter) WriteRow(b sparql.Binding) error {
	if w.err != nil {
		return w.err
	}
	w.sb.Reset()
	for i, v := range w.vars {
		if i > 0 {
			w.sb.WriteByte('\t')
		}
		if t, ok := b[v]; ok {
			tsvTerm(&w.sb, t)
		}
	}
	w.sb.WriteByte('\n')
	_, w.err = io.WriteString(w.w, w.sb.String())
	return w.err
}

func (w *tsvWriter) Close() error { return w.err }
