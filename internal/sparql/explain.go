package sparql

// EXPLAIN support: Query.Explain runs the query through the ID-space
// engine with a profiler attached, producing the compiled plan tree
// annotated with per-node row counts and timings plus the flat sequence
// of top-level execution stages (where → aliases → order-by → distinct →
// window → project). The final stage's RowsOut always equals the number
// of rows the same query would actually return, so an explain can be
// checked against a real execution row for row.
//
// The profiler is a nil-by-default field on the executor: every hook is
// a single pointer check per plan-node invocation (never per row), so
// the unprofiled path stays at full speed.

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/store"
)

// ExplainNode annotates one compiled plan node.
type ExplainNode struct {
	// Kind is the node type: group, bgp, pattern, filter, optional,
	// union, minus, bind, values, legacy.
	Kind string `json:"kind"`
	// Detail is a human-readable rendering (the triple pattern, the
	// bound variable, ...).
	Detail string `json:"detail,omitempty"`
	// Order is the 1-based position the greedy optimizer chose for a
	// pattern within its BGP (0 for non-pattern nodes).
	Order int `json:"order,omitempty"`
	// Calls counts node invocations (an OPTIONAL inner group runs once
	// per outer row).
	Calls int64 `json:"calls,omitempty"`
	// RowsIn / RowsOut accumulate rows entering and leaving the node
	// across all invocations.
	RowsIn  int64 `json:"rowsIn"`
	RowsOut int64 `json:"rowsOut"`
	// TimeNs is the cumulative wall time spent in the node (children
	// included).
	TimeNs   int64          `json:"timeNs"`
	Children []*ExplainNode `json:"children,omitempty"`
}

// ExplainStage is one top-level execution stage.
type ExplainStage struct {
	Name    string `json:"name"`
	RowsIn  int64  `json:"rowsIn"`
	RowsOut int64  `json:"rowsOut"`
	TimeNs  int64  `json:"timeNs"`
}

// Explain is the per-query profile returned instead of rows.
type Explain struct {
	// Engine is the engine that executed the query: id-space or legacy.
	Engine string `json:"engine"`
	// Form is the query form: SELECT, ASK, or CONSTRUCT.
	Form string `json:"form"`
	// Vars is the projected variable list (SELECT only).
	Vars []string `json:"vars,omitempty"`
	// Rows is the number of rows the query produced (1/0 for ASK,
	// triple count for CONSTRUCT).
	Rows int `json:"rows"`
	// PlanningNs is the time spent compiling the plan.
	PlanningNs int64 `json:"planningNs"`
	// ExecNs is the total execution time, planning included.
	ExecNs int64 `json:"execNs"`
	// Plan is the compiled pattern tree with per-node profile.
	Plan *ExplainNode `json:"plan,omitempty"`
	// Stages are the top-level execution stages in run order; the last
	// stage's rowsOut equals Rows for SELECT queries.
	Stages []ExplainStage `json:"stages,omitempty"`
}

// profiler accumulates the per-node and per-stage profile during one
// profiled execution. A nil *profiler disables every hook.
type profiler struct {
	nodes   map[any]*ExplainNode // cnode or *cpattern → its annotation
	filters map[*cgroup]*ExplainNode
	stages  []ExplainStage
	plan    *ExplainNode
	planNs  int64
}

func newProfiler() *profiler {
	return &profiler{
		nodes:   make(map[any]*ExplainNode),
		filters: make(map[*cgroup]*ExplainNode),
	}
}

// noopEnd is the shared closer handed out when profiling is off, so the
// unprofiled path allocates nothing.
var noopEnd = func(int64) {}

// node opens a timed accounting window for one plan-node invocation; the
// returned func closes it with the output row count.
func (p *profiler) node(key any, in int64) func(out int64) {
	en := p.nodes[key]
	if en == nil {
		return noopEnd
	}
	t0 := time.Now()
	return func(out int64) {
		en.Calls++
		en.RowsIn += in
		en.RowsOut = out
		en.TimeNs += time.Since(t0).Nanoseconds()
	}
}

// pattern is node plus the greedy-order position within the BGP.
func (p *profiler) pattern(key *cpattern, order int, in int64) func(out int64) {
	en := p.nodes[key]
	if en == nil {
		return noopEnd
	}
	en.Order = order
	t0 := time.Now()
	return func(out int64) {
		en.Calls++
		en.RowsIn += in
		en.RowsOut = out
		en.TimeNs += time.Since(t0).Nanoseconds()
	}
}

// filterStep accounts the FILTER pass of one group evaluation.
func (p *profiler) filterStep(g *cgroup, in int64) func(out int64) {
	en := p.filters[g]
	if en == nil {
		return noopEnd
	}
	t0 := time.Now()
	return func(out int64) {
		en.Calls++
		en.RowsIn += in
		en.RowsOut = out
		en.TimeNs += time.Since(t0).Nanoseconds()
	}
}

// stage opens a timed top-level stage; the returned func closes it.
// Safe (and free) on a nil profiler.
func (p *profiler) stage(name string, in int64) func(out int64) {
	if p == nil {
		return noopEnd
	}
	t0 := time.Now()
	return func(out int64) {
		p.stages = append(p.stages, ExplainStage{
			Name: name, RowsIn: in, RowsOut: out,
			TimeNs: time.Since(t0).Nanoseconds(),
		})
	}
}

// build constructs the annotated plan tree mirroring the compiled
// algebra and indexes every node for the execution hooks.
func (p *profiler) build(root *cgroup, ex *idExec) {
	p.plan = p.buildGroup(root, ex)
}

func (p *profiler) buildGroup(g *cgroup, ex *idExec) *ExplainNode {
	en := &ExplainNode{Kind: "group"}
	p.nodes[g] = en
	for _, el := range g.elems {
		en.Children = append(en.Children, p.buildNode(el, ex))
	}
	if len(g.filters) > 0 {
		fn := &ExplainNode{Kind: "filter", Detail: fmt.Sprintf("%d condition(s)", len(g.filters))}
		p.filters[g] = fn
		en.Children = append(en.Children, fn)
	}
	return en
}

func (p *profiler) buildNode(n cnode, ex *idExec) *ExplainNode {
	switch x := n.(type) {
	case *cBGP:
		en := &ExplainNode{Kind: "bgp"}
		p.nodes[x] = en
		for i := range x.pats {
			pat := &x.pats[i]
			pn := &ExplainNode{Kind: "pattern", Detail: renderPattern(pat, ex)}
			p.nodes[pat] = pn
			en.Children = append(en.Children, pn)
		}
		return en
	case *cgroup:
		return p.buildGroup(x, ex)
	case *cOptional:
		en := &ExplainNode{Kind: "optional"}
		p.nodes[x] = en
		en.Children = append(en.Children, p.buildGroup(x.inner, ex))
		return en
	case *cUnion:
		en := &ExplainNode{Kind: "union"}
		p.nodes[x] = en
		en.Children = append(en.Children, p.buildGroup(x.left, ex), p.buildGroup(x.right, ex))
		return en
	case *cMinus:
		en := &ExplainNode{Kind: "minus"}
		p.nodes[x] = en
		en.Children = append(en.Children, p.buildGroup(x.inner, ex))
		return en
	case *cBind:
		en := &ExplainNode{Kind: "bind", Detail: "?" + slotName(ex, x.slot)}
		p.nodes[x] = en
		return en
	case *cValues:
		en := &ExplainNode{Kind: "values", Detail: fmt.Sprintf("%d row(s)", len(x.rows))}
		p.nodes[x] = en
		return en
	}
	return &ExplainNode{Kind: "unknown"}
}

func slotName(ex *idExec, slot int) string {
	if slot >= 0 && slot < len(ex.names) {
		return ex.names[slot]
	}
	return fmt.Sprintf("slot%d", slot)
}

func renderPattern(p *cpattern, ex *idExec) string {
	var sb strings.Builder
	pos := func(t cterm) {
		if t.isVar() {
			sb.WriteByte('?')
			sb.WriteString(slotName(ex, t.slot))
			return
		}
		sb.WriteString(ex.term(t.id).String())
	}
	pos(p.s)
	sb.WriteByte(' ')
	pos(p.p)
	sb.WriteByte(' ')
	pos(p.o)
	return sb.String()
}

// Explain executes the query against st with profiling and returns the
// annotated plan instead of rows. Queries the ID-space engine cannot
// plan fall back to the legacy evaluator and produce a single-node
// profile (total rows and time only).
func (q *Query) Explain(st store.Queryable) (*Explain, error) {
	prof := newProfiler()
	t0 := time.Now()
	res, err := q.execIDProf(st, prof)
	if errors.Is(err, errUnsupportedPlan) {
		lt0 := time.Now()
		res, err = q.execLegacy(st)
		if err != nil {
			return nil, err
		}
		out := &Explain{
			Engine: "legacy",
			Form:   q.Form.String(),
			Vars:   res.Vars,
			Rows:   resultRows(res),
			ExecNs: time.Since(lt0).Nanoseconds(),
			Plan:   &ExplainNode{Kind: "legacy", RowsOut: int64(resultRows(res))},
		}
		return out, nil
	}
	if err != nil {
		return nil, err
	}
	return &Explain{
		Engine:     "id-space",
		Form:       q.Form.String(),
		Vars:       res.Vars,
		Rows:       resultRows(res),
		PlanningNs: prof.planNs,
		ExecNs:     time.Since(t0).Nanoseconds(),
		Plan:       prof.plan,
		Stages:     prof.stages,
	}, nil
}

func resultRows(res *Result) int {
	switch {
	case res.Ask:
		if res.Boolean {
			return 1
		}
		return 0
	case res.Graph != nil:
		return res.Graph.Len()
	}
	return len(res.Rows)
}

// String returns the SPARQL keyword of the query form.
func (f Form) String() string {
	switch f {
	case FormAsk:
		return "ASK"
	case FormConstruct:
		return "CONSTRUCT"
	default:
		return "SELECT"
	}
}
