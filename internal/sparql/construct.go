package sparql

import (
	"fmt"

	"repro/internal/rdf"
)

// execConstruct instantiates the CONSTRUCT template once per solution,
// skipping template triples with unbound variables or positions whose
// instantiation is not a valid RDF triple (literal subjects/predicates).
// Blank nodes in the template are scoped per solution.
func (q *Query) execConstruct(sols []Binding) *rdf.Graph {
	g := rdf.NewGraph()
	for i, s := range sols {
		scope := fmt.Sprintf("s%d", i)
		for _, tp := range q.Template {
			sub, ok := instantiate(tp.S, s, scope)
			if !ok || sub.IsLiteral() {
				continue
			}
			pred, ok := instantiate(tp.P, s, scope)
			if !ok || !pred.IsIRI() {
				continue
			}
			obj, ok := instantiate(tp.O, s, scope)
			if !ok {
				continue
			}
			g.AddSPO(sub, pred, obj)
		}
	}
	return g
}

// instantiate resolves a template slot against a solution. Blank nodes
// are renamed per solution scope so each solution mints fresh nodes.
func instantiate(n NodePattern, b Binding, scope string) (rdf.Term, bool) {
	if n.IsVar() {
		t, ok := b[n.Var]
		return t, ok
	}
	if n.Term.IsBlank() {
		return rdf.NewBlank(n.Term.Value + "_" + scope), true
	}
	return n.Term, true
}
