package sparql

import "repro/internal/rdf"

// Merge-side ORDER BY support. The federated streaming merge needs to
// compare rows coming from different branches under the query's ORDER BY
// conditions with exactly the engines' comparison semantics — otherwise
// an ordered k-way merge of locally-sorted branches would not reproduce
// the order a single endpoint over the union corpus establishes. The
// helpers here share their comparison with sortSolutions, the engines'
// materialized sort, so the two cannot drift apart.

// OrderKey is a row's precomputed ORDER BY sort key: every condition
// expression evaluated once, so repeated comparisons during a k-way
// merge do not re-evaluate them. Build with OrderKeyOf, compare with
// CompareOrderKeys under the same conditions.
type OrderKey struct {
	keys []rdf.Term
	errs []bool
}

// OrderKeyOf evaluates the ORDER BY condition expressions on row. An
// expression error (including an unbound variable) is recorded and sorts
// first ascending, per the engines' sort.
func OrderKeyOf(conds []OrderCond, row Binding) OrderKey {
	k := OrderKey{keys: make([]rdf.Term, len(conds)), errs: make([]bool, len(conds))}
	for i, c := range conds {
		t, err := evalExpr(c.Expr, row)
		if err != nil {
			k.errs[i] = true
		} else {
			k.keys[i] = t
		}
	}
	return k
}

// CompareOrderKeys orders two keys under conds: negative when a sorts
// before b, positive when after, zero when tied on every condition.
func CompareOrderKeys(conds []OrderCond, a, b OrderKey) int {
	for i, c := range conds {
		cmp := compareOrderCond(a, b, i)
		if cmp == 0 {
			continue
		}
		if c.Desc {
			return -cmp
		}
		return cmp
	}
	return 0
}

// OrderByVars returns the distinct variable names the ORDER BY
// conditions reference, in first-appearance order. The federation layer
// uses it to check that a fanned-out query's sort keys survive
// projection: the merge only sees projected rows, so a sort variable
// outside the SELECT list would evaluate as unbound on every merged row
// and the "ordered" merge would silently degrade to branch
// concatenation.
func OrderByVars(conds []OrderCond) []string {
	var out []string
	seen := map[string]bool{}
	var walk func(Expression)
	walk = func(e Expression) {
		switch x := e.(type) {
		case *ExprVar:
			if !seen[x.Name] {
				seen[x.Name] = true
				out = append(out, x.Name)
			}
		case *ExprBinary:
			walk(x.L)
			walk(x.R)
		case *ExprUnary:
			walk(x.X)
		case *ExprCall:
			for _, a := range x.Args {
				walk(a)
			}
		case *ExprAggregate:
			if x.Arg != nil {
				walk(x.Arg)
			}
		}
	}
	for _, c := range conds {
		walk(c.Expr)
	}
	return out
}

// compareOrderCond compares one condition's key ascending: unbound/error
// first, then SPARQL operator order, falling back to the total term
// order for incomparable pairs.
func compareOrderCond(a, b OrderKey, i int) int {
	ea, eb := a.errs[i], b.errs[i]
	switch {
	case ea && eb:
		return 0
	case ea:
		return -1
	case eb:
		return 1
	}
	cmp, err := termOrder(a.keys[i], b.keys[i])
	if err != nil {
		cmp = a.keys[i].Compare(b.keys[i])
	}
	return cmp
}
