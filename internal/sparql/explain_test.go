package sparql

import (
	"testing"
)

// TestExplainRowsMatchExec is the contract the EXPLAIN surface rests on:
// the profiled execution is the real execution, so the profile's row
// counts must equal what the same query actually returns — for every
// query shape the staged pipeline covers.
func TestExplainRowsMatchExec(t *testing.T) {
	st := fixtureStore(t)
	queries := []string{
		`PREFIX ex: <http://ex/> SELECT ?p WHERE { ?p a ex:Person }`,
		`PREFIX ex: <http://ex/> SELECT ?a ?b WHERE { ?a ex:knows ?b . ?b ex:knows ?c }`,
		`PREFIX ex: <http://ex/> SELECT ?p WHERE { ?p ex:age ?a FILTER(?a > 28) }`,
		`PREFIX ex: <http://ex/> SELECT ?p ?e WHERE { ?p a ex:Person OPTIONAL { ?e ex:organizedBy ?p } }`,
		`PREFIX ex: <http://ex/> SELECT ?x WHERE { { ?x a ex:Person } UNION { ?x a ex:Event } }`,
		`PREFIX ex: <http://ex/> SELECT DISTINCT ?o WHERE { ?s ex:knows ?o }`,
		`PREFIX ex: <http://ex/> SELECT ?p WHERE { ?p ex:age ?a } ORDER BY ?a`,
		`PREFIX ex: <http://ex/> SELECT ?p WHERE { ?p a ex:Person } LIMIT 2`,
		`PREFIX ex: <http://ex/> SELECT (COUNT(?p) AS ?n) WHERE { ?p a ex:Person }`,
	}
	for _, text := range queries {
		q, err := Parse(text)
		if err != nil {
			t.Fatalf("Parse(%s): %v", text, err)
		}
		res, err := q.Exec(st)
		if err != nil {
			t.Fatalf("Exec(%s): %v", text, err)
		}
		// Explain must not disturb later executions; run it between two
		// real ones and compare all three
		exp, err := q.Explain(st)
		if err != nil {
			t.Fatalf("Explain(%s): %v", text, err)
		}
		res2, err := q.Exec(st)
		if err != nil {
			t.Fatalf("re-Exec(%s): %v", text, err)
		}
		if len(res2.Rows) != len(res.Rows) {
			t.Errorf("%s: Exec after Explain returned %d rows, first Exec %d", text, len(res2.Rows), len(res.Rows))
		}
		if exp.Rows != len(res.Rows) {
			t.Errorf("%s: explain rows = %d, exec rows = %d", text, exp.Rows, len(res.Rows))
		}
		if exp.Engine != "id-space" {
			t.Errorf("%s: engine = %s, want id-space", text, exp.Engine)
		}
		if exp.Plan == nil {
			t.Errorf("%s: no plan tree", text)
			continue
		}
		if len(exp.Stages) == 0 {
			t.Errorf("%s: no stages", text)
			continue
		}
		last := exp.Stages[len(exp.Stages)-1]
		if last.RowsOut != int64(exp.Rows) {
			t.Errorf("%s: last stage %q rowsOut = %d, want %d", text, last.Name, last.RowsOut, exp.Rows)
		}
		if exp.Stages[0].Name != "where" {
			t.Errorf("%s: first stage = %q, want where", text, exp.Stages[0].Name)
		}
	}
}

// TestExplainAsk checks the non-SELECT forms report their row semantics.
func TestExplainAsk(t *testing.T) {
	st := fixtureStore(t)
	q, err := Parse(`PREFIX ex: <http://ex/> ASK { ex:alice ex:knows ex:bob }`)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := q.Explain(st)
	if err != nil {
		t.Fatal(err)
	}
	if exp.Form != "ASK" || exp.Rows != 1 {
		t.Fatalf("form = %s rows = %d, want ASK 1", exp.Form, exp.Rows)
	}
}

// TestExplainPlanAnnotations checks that the plan tree carries per-node
// traffic: a two-pattern join must show the greedy order and the second
// pattern seeing the first one's output as input.
func TestExplainPlanAnnotations(t *testing.T) {
	st := fixtureStore(t)
	q, err := Parse(`PREFIX ex: <http://ex/> SELECT ?a ?b WHERE { ?a ex:knows ?b . ?b ex:age ?g }`)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := q.Explain(st)
	if err != nil {
		t.Fatal(err)
	}
	var pats []*ExplainNode
	var walk func(n *ExplainNode)
	walk = func(n *ExplainNode) {
		if n.Kind == "pattern" {
			pats = append(pats, n)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(exp.Plan)
	if len(pats) != 2 {
		t.Fatalf("patterns in plan = %d, want 2", len(pats))
	}
	orders := map[int]bool{}
	for _, p := range pats {
		if p.Detail == "" {
			t.Errorf("pattern without rendered detail: %+v", p)
		}
		if p.Calls == 0 {
			t.Errorf("pattern never invoked: %+v", p)
		}
		orders[p.Order] = true
	}
	if !orders[1] || !orders[2] {
		t.Fatalf("greedy order positions = %v, want {1,2}", orders)
	}
}
