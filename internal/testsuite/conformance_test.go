package testsuite

import "testing"

// TestConformance runs the seeded manifest — the CI ratchet. Each case
// appears as its own subtest, so a regression names the exact query and
// engine that diverged.
func TestConformance(t *testing.T) {
	RunDir(t, "testdata")
}
