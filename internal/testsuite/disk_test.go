package testsuite

import (
	"os"
	"testing"

	"repro/internal/store"
	"repro/internal/store/disk"
	"repro/internal/turtle"
)

// TestConformanceDisk runs the whole conformance corpus with every data
// file loaded through the disk backend — same goldens, same three
// engines — then reopens each store from its on-disk files and runs the
// corpus again, so a restart provably serves identical results.
func TestConformanceDisk(t *testing.T) {
	// Data dirs and store lifetimes are owned by the enclosing test:
	// the suite shares one store across cases, and the reopened phase
	// needs the fresh phase's directories to outlive its subtests.
	dirs := map[string]string{}
	closeLater := func(ds *disk.Store) { t.Cleanup(func() { ds.Close() }) }

	t.Run("fresh", func(st *testing.T) {
		RunDirBackend(st, "testdata", false, func(ct *testing.T, path string) store.Queryable {
			raw, err := os.ReadFile(path)
			if err != nil {
				ct.Fatal(err)
			}
			g, err := turtle.Parse(string(raw))
			if err != nil {
				ct.Fatalf("%s: %v", path, err)
			}
			dir := t.TempDir()
			dirs[path] = dir
			ds, err := disk.Open(dir, disk.Options{})
			if err != nil {
				ct.Fatal(err)
			}
			closeLater(ds)
			for _, tr := range g.Triples() {
				if _, err := ds.Insert(tr); err != nil {
					ct.Fatal(err)
				}
			}
			if err := ds.Flush(); err != nil {
				ct.Fatal(err)
			}
			return ds
		})
	})

	t.Run("reopened", func(st *testing.T) {
		RunDirBackend(st, "testdata", false, func(ct *testing.T, path string) store.Queryable {
			dir, ok := dirs[path]
			if !ok {
				ct.Fatalf("no populated data dir for %s", path)
			}
			ds, err := disk.Open(dir, disk.Options{})
			if err != nil {
				ct.Fatal(err)
			}
			closeLater(ds)
			return ds
		})
	})
}
