// Package testsuite is the repo's manifest-driven SPARQL conformance
// suite: each case pairs a query file with a data file and the expected
// result, and every case runs through all three evaluation paths — the
// streaming engine, the materialized ID-space engine and the legacy
// term-space evaluator — so the semantics the suite pins cannot drift
// between them. The cases concentrate on what differential fuzzing is
// worst at judging: ORDER BY collation edge cases, aggregate corner
// cases, and the exact bytes of the wire serializations.
//
// The expected files are golden: regenerate with
//
//	HBOLD_TESTSUITE_UPDATE=1 go test ./internal/testsuite
//
// which rewrites them from the legacy evaluator (the differential
// reference engine) — then review the diff; the whole point of the
// ratchet is that these bytes only change deliberately.
package testsuite

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/sparql"
	"repro/internal/sparql/results"
	"repro/internal/store"
	"repro/internal/turtle"
)

// Case is one conformance case. Paths are relative to the suite dir.
// The Expect extension selects the comparison: .tsv compares bindings
// (TSV-serialized, order-sensitive iff Ordered), .bool compares an ASK
// answer, and .csv/.xml/.json compare the exact bytes of the named
// serialization streamed from the engine.
type Case struct {
	Name    string `json:"name"`
	Data    string `json:"data"`
	Query   string `json:"query"`
	Expect  string `json:"expect"`
	Ordered bool   `json:"ordered"`
}

// LoadManifest reads dir/manifest.json.
func LoadManifest(dir string) ([]Case, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, err
	}
	var cases []Case
	if err := json.Unmarshal(raw, &cases); err != nil {
		return nil, fmt.Errorf("testsuite: bad manifest: %w", err)
	}
	seen := map[string]bool{}
	for _, c := range cases {
		if c.Name == "" || c.Data == "" || c.Query == "" || c.Expect == "" {
			return nil, fmt.Errorf("testsuite: case %+v: missing field", c)
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("testsuite: duplicate case name %q", c.Name)
		}
		seen[c.Name] = true
	}
	return cases, nil
}

// RunDir loads the manifest in dir and runs every case as a subtest, so
// CI output names each case individually. Cases run on the in-memory
// store; golden updates (HBOLD_TESTSUITE_UPDATE=1) regenerate from this
// path only, keeping the reference tier canonical.
func RunDir(t *testing.T, dir string) {
	update := os.Getenv("HBOLD_TESTSUITE_UPDATE") != ""
	RunDirBackend(t, dir, update, func(t *testing.T, path string) store.Queryable {
		return loadStore(t, path)
	})
}

// RunDirBackend runs the suite with data files opened through an
// arbitrary storage tier. Any store.Queryable — in-memory or the disk
// backend — must produce byte-identical results on every engine, which
// is what makes this the conformance half of the tier differential.
func RunDirBackend(t *testing.T, dir string, update bool, open func(t *testing.T, path string) store.Queryable) {
	cases, err := LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	stores := map[string]store.Queryable{}
	for _, c := range cases {
		t.Run(c.Name, func(t *testing.T) {
			st, ok := stores[c.Data]
			if !ok {
				st = open(t, filepath.Join(dir, c.Data))
				stores[c.Data] = st
			}
			runCase(t, dir, c, st, update)
		})
	}
}

func loadStore(t *testing.T, path string) *store.Store {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	g, err := turtle.Parse(string(raw))
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return store.FromGraph(g)
}

// engineResults runs the query through every evaluation path, in a fixed
// order with the reference evaluator last (update mode regenerates the
// golden files from it).
func engineResults(t *testing.T, q *sparql.Query, st store.Queryable) map[string]*sparql.Result {
	t.Helper()
	out := map[string]*sparql.Result{}
	rs, err := q.Stream(context.Background(), st)
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	res, err := rs.Collect()
	if err != nil {
		t.Fatalf("stream collect: %v", err)
	}
	out["stream"] = res
	if res, err = q.ExecEngine(st, sparql.EngineAuto); err != nil {
		t.Fatalf("materialized: %v", err)
	}
	out["materialized"] = res
	if res, err = q.ExecEngine(st, sparql.EngineLegacy); err != nil {
		t.Fatalf("legacy: %v", err)
	}
	out["legacy"] = res
	return out
}

func runCase(t *testing.T, dir string, c Case, st store.Queryable, update bool) {
	t.Helper()
	qraw, err := os.ReadFile(filepath.Join(dir, c.Query))
	if err != nil {
		t.Fatal(err)
	}
	q, err := sparql.Parse(string(qraw))
	if err != nil {
		t.Fatalf("%s: %v", c.Query, err)
	}
	expectPath := filepath.Join(dir, c.Expect)
	ress := engineResults(t, q, st)

	var render func(*sparql.Result) string
	switch ext := filepath.Ext(c.Expect); ext {
	case ".bool":
		render = func(r *sparql.Result) string {
			if !r.Ask {
				t.Fatalf("%s: expected an ASK result", c.Name)
			}
			return fmt.Sprintf("%v\n", r.Boolean)
		}
	case ".tsv":
		render = func(r *sparql.Result) string {
			return canonicalTSV(t, r, c.Ordered)
		}
	case ".csv", ".xml", ".json":
		format := map[string]results.Format{
			".csv": results.CSV, ".xml": results.XML, ".json": results.JSON,
		}[ext]
		if !c.Ordered && len(q.OrderBy) > 0 {
			t.Fatalf("%s: serialization cases must be ordered for byte-stable goldens", c.Name)
		}
		render = func(r *sparql.Result) string {
			return serialize(t, format, r)
		}
	default:
		t.Fatalf("%s: unknown expect extension %q", c.Name, ext)
	}

	if update {
		if err := os.WriteFile(expectPath, []byte(render(ress["legacy"])), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(expectPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []string{"stream", "materialized", "legacy"} {
		if got := render(ress[engine]); got != string(want) {
			t.Errorf("%s/%s: result mismatch\n--- got ---\n%s--- want ---\n%s", c.Name, engine, got, want)
		}
	}
}

// canonicalTSV serializes a result's bindings as TSV. When the case is
// unordered the data lines are sorted, so any row order compares equal —
// the golden file stores the sorted form.
func canonicalTSV(t *testing.T, r *sparql.Result, ordered bool) string {
	t.Helper()
	doc := serialize(t, results.TSV, r)
	if ordered {
		return doc
	}
	head, rest, _ := strings.Cut(doc, "\n")
	lines := strings.Split(strings.TrimSuffix(rest, "\n"), "\n")
	if rest == "" {
		lines = nil
	}
	sort.Strings(lines)
	var sb strings.Builder
	sb.WriteString(head)
	sb.WriteByte('\n')
	for _, l := range lines {
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// serialize writes the full results document for r in the given format.
func serialize(t *testing.T, f results.Format, r *sparql.Result) string {
	t.Helper()
	var buf bytes.Buffer
	if r.Ask {
		if err := results.WriteAsk(f, &buf, r.Boolean); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	w := results.NewWriter(f, &buf, r.Vars)
	for _, row := range r.Rows {
		if err := w.WriteRow(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}
