package extraction

import (
	"context"
	"fmt"

	"repro/internal/endpoint"
	"repro/internal/rdf"
)

// TripleSink is where MirrorCorpus lands triples — in production the
// disk-backed store.Backend, in tests anything that records them.
// Insert stages one triple (reporting whether it was new) and Flush
// makes everything staged so far durable as one atomic batch.
type TripleSink interface {
	Insert(rdf.Triple) (bool, error)
	Flush() error
}

// MirrorCorpus replicates the endpoint's full statement set into sink,
// paging `SELECT ?s ?p ?o` with the same ORDER BY + LIMIT/OFFSET
// discipline the index extraction uses, so it works against endpoints
// that truncate unordered results. Each page is flushed as one durable
// batch: a crash mid-mirror loses at most the page in flight, and the
// recovered sink is a consistent prefix of the corpus. It returns the
// number of rows mirrored (triples seen, not deduplicated).
func (e *Extractor) MirrorCorpus(ctx context.Context, c endpoint.Client, sink TripleSink) (int, error) {
	page := e.PageSize
	if page <= 0 {
		page = 1000
	}
	total := 0
	off := 0
	for {
		got := 0
		var sinkErr error
		err := e.streamRows(ctx, c, fmt.Sprintf(
			`SELECT ?s ?p ?o WHERE { ?s ?p ?o } ORDER BY ?s ?p ?o LIMIT %d OFFSET %d`, page, off),
			func(row sparqlBinding) {
				got++
				if sinkErr != nil {
					return
				}
				_, sinkErr = sink.Insert(rdf.Triple{S: row["s"], P: row["p"], O: row["o"]})
			})
		if err != nil {
			return total, err
		}
		if sinkErr != nil {
			return total, sinkErr
		}
		total += got
		if err := sink.Flush(); err != nil {
			return total, err
		}
		if got < page {
			return total, nil
		}
		off += page
	}
}
