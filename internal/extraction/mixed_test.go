package extraction

import (
	"context"
	"testing"
	"time"

	"repro/internal/endpoint"
	"repro/internal/synth"
)

func TestExtractMixedStrategy(t *testing.T) {
	st := smallStore(t)
	r := endpoint.NewRemote("nogroup", "sim://nogroup", st, endpoint.ProfileNoGroupBy, nil, nil)
	ix, err := New().Extract(context.Background(), r, "sim://nogroup", time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if ix.Strategy != "mixed" {
		t.Fatalf("strategy = %s, want mixed", ix.Strategy)
	}
	checkSmallIndex(t, ix)
}

func TestMixedAgreesWithAggregate(t *testing.T) {
	st := synth.Generate(synth.Spec{
		Name: "mixed", Classes: 6, Instances: 300, ObjectProps: 10,
		DataProps: 8, LinkFactor: 1, Seed: 13,
	})
	agg, err := New().Extract(context.Background(), endpoint.LocalClient{Store: st}, "a", time.Now())
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := New().Extract(
		context.Background(),
		endpoint.NewRemote("x", "x", st, endpoint.ProfileNoGroupBy, nil, nil), "b", time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if mixed.Strategy != "mixed" {
		t.Fatalf("strategy = %s", mixed.Strategy)
	}
	if agg.Instances != mixed.Instances || agg.NumClasses() != mixed.NumClasses() || agg.Triples != mixed.Triples {
		t.Fatalf("strategies disagree: agg=%d/%d/%d mixed=%d/%d/%d",
			agg.Instances, agg.NumClasses(), agg.Triples,
			mixed.Instances, mixed.NumClasses(), mixed.Triples)
	}
	for i := range agg.Classes {
		a, m := agg.Classes[i], mixed.Classes[i]
		if a.IRI != m.IRI || a.Instances != m.Instances {
			t.Fatalf("class %d differs: %+v vs %+v", i, a, m)
		}
		if len(a.DataProperties) != len(m.DataProperties) {
			t.Fatalf("class %s data props: %v vs %v", a.Label, a.DataProperties, m.DataProperties)
		}
		for j := range a.ObjectProperties {
			if a.ObjectProperties[j] != m.ObjectProperties[j] {
				t.Fatalf("class %s op %d: %+v vs %+v", a.Label, j, a.ObjectProperties[j], m.ObjectProperties[j])
			}
		}
	}
}

func TestStrategyLadderOrder(t *testing.T) {
	st := smallStore(t)
	cases := []struct {
		quirks *endpoint.Quirks
		want   string
	}{
		{nil, "aggregate"},
		{endpoint.ProfileFull, "aggregate"},
		{endpoint.ProfileCapped, "aggregate"},
		{endpoint.ProfileNoGroupBy, "mixed"},
		{endpoint.ProfileNoAgg, "enumerate"},
		{endpoint.ProfileLegacy, "enumerate"},
	}
	for _, c := range cases {
		var client endpoint.Client
		if c.quirks == nil {
			client = endpoint.LocalClient{Store: st}
		} else {
			client = endpoint.NewRemote("x", "x", st, c.quirks, nil, nil)
		}
		ix, err := New().Extract(context.Background(), client, "x", time.Now())
		if err != nil {
			t.Fatalf("%v: %v", c.quirks, err)
		}
		if ix.Strategy != c.want {
			t.Errorf("quirks %v: strategy = %s, want %s", c.quirks, ix.Strategy, c.want)
		}
	}
}
