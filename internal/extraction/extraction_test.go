package extraction

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/endpoint"
	"repro/internal/rdf"
	"repro/internal/store"
	"repro/internal/synth"
	"repro/internal/turtle"
)

func smallStore(t testing.TB) *store.Store {
	t.Helper()
	g, err := turtle.Parse(`
@prefix ex: <http://ex/> .
ex:a1 a ex:Author ; ex:name "A1" ; ex:wrote ex:b1, ex:b2 .
ex:a2 a ex:Author ; ex:name "A2" ; ex:wrote ex:b2 .
ex:b1 a ex:Book ; ex:title "B1" .
ex:b2 a ex:Book ; ex:title "B2" .
ex:p1 a ex:Publisher ; ex:published ex:b1 .
`)
	if err != nil {
		t.Fatal(err)
	}
	return store.FromGraph(g)
}

func checkSmallIndex(t *testing.T, ix *Index) {
	t.Helper()
	if ix.NumClasses() != 3 {
		t.Fatalf("classes = %d, want 3", ix.NumClasses())
	}
	if ix.Instances != 5 {
		t.Fatalf("instances = %d, want 5", ix.Instances)
	}
	if ix.Triples != 13 {
		t.Fatalf("triples = %d, want 13", ix.Triples)
	}
	// classes sorted by descending instances: Author(2)=Book(2) then Publisher(1)
	if ix.Classes[2].Label != "Publisher" {
		t.Fatalf("last class = %s", ix.Classes[2].Label)
	}
	var author *ClassIndex
	for i := range ix.Classes {
		if ix.Classes[i].Label == "Author" {
			author = &ix.Classes[i]
		}
	}
	if author == nil {
		t.Fatal("Author class missing")
	}
	if len(author.DataProperties) != 1 || author.DataProperties[0].IRI != "http://ex/name" || author.DataProperties[0].Count != 2 {
		t.Fatalf("Author data props = %+v", author.DataProperties)
	}
	if len(author.ObjectProperties) != 1 {
		t.Fatalf("Author object props = %+v", author.ObjectProperties)
	}
	op := author.ObjectProperties[0]
	if op.IRI != "http://ex/wrote" || op.Target != "http://ex/Book" || op.Count != 3 {
		t.Fatalf("Author wrote = %+v", op)
	}
}

func TestExtractAggregate(t *testing.T) {
	st := smallStore(t)
	c := endpoint.LocalClient{Store: st}
	ix, err := New().Extract(context.Background(), c, "local://small", time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if ix.Strategy != "aggregate" {
		t.Fatalf("strategy = %s", ix.Strategy)
	}
	checkSmallIndex(t, ix)
}

func TestExtractEnumerateFallback(t *testing.T) {
	st := smallStore(t)
	r := endpoint.NewRemote("noagg", "sim://noagg", st, endpoint.ProfileNoAgg, nil, nil)
	ix, err := New().Extract(context.Background(), r, "sim://noagg", time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if ix.Strategy != "enumerate" {
		t.Fatalf("strategy = %s", ix.Strategy)
	}
	checkSmallIndex(t, ix)
}

func TestStrategiesAgree(t *testing.T) {
	st := synth.Generate(synth.Spec{
		Name: "agree", Classes: 6, Instances: 300, ObjectProps: 10,
		DataProps: 8, LinkFactor: 1, Seed: 11,
	})
	agg, err := New().Extract(context.Background(), endpoint.LocalClient{Store: st}, "a", time.Now())
	if err != nil {
		t.Fatal(err)
	}
	enum, err := New().Extract(
		context.Background(),
		endpoint.NewRemote("x", "x", st, endpoint.ProfileNoAgg, nil, nil), "b", time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if agg.Instances != enum.Instances || agg.NumClasses() != enum.NumClasses() || agg.Triples != enum.Triples {
		t.Fatalf("strategies disagree: agg=%d/%d/%d enum=%d/%d/%d",
			agg.Instances, agg.NumClasses(), agg.Triples,
			enum.Instances, enum.NumClasses(), enum.Triples)
	}
	if len(agg.Predicates) == 0 || len(agg.Predicates) != len(enum.Predicates) {
		t.Fatalf("predicate partitions disagree: agg=%d enum=%d", len(agg.Predicates), len(enum.Predicates))
	}
	for i := range agg.Predicates {
		if agg.Predicates[i] != enum.Predicates[i] {
			t.Fatalf("predicate %d differs: %+v vs %+v", i, agg.Predicates[i], enum.Predicates[i])
		}
	}
	for i := range agg.Classes {
		a, b := agg.Classes[i], enum.Classes[i]
		if a.IRI != b.IRI || a.Instances != b.Instances {
			t.Fatalf("class %d differs: %+v vs %+v", i, a, b)
		}
		if len(a.DataProperties) != len(b.DataProperties) {
			t.Fatalf("class %s data props differ: %v vs %v", a.Label, a.DataProperties, b.DataProperties)
		}
		if len(a.ObjectProperties) != len(b.ObjectProperties) {
			t.Fatalf("class %s object props differ: %v vs %v", a.Label, a.ObjectProperties, b.ObjectProperties)
		}
		for j := range a.ObjectProperties {
			if a.ObjectProperties[j] != b.ObjectProperties[j] {
				t.Fatalf("class %s op %d: %+v vs %+v", a.Label, j, a.ObjectProperties[j], b.ObjectProperties[j])
			}
		}
	}
}

func TestExtractWithSmallPagesMatches(t *testing.T) {
	st := smallStore(t)
	e := &Extractor{PageSize: 2} // force many pages
	ix, err := e.Extract(context.Background(), endpoint.NewRemote("x", "x", st, endpoint.ProfileNoAgg, nil, nil), "x", time.Now())
	if err != nil {
		t.Fatal(err)
	}
	checkSmallIndex(t, ix)
}

func TestExtractCappedEndpoint(t *testing.T) {
	// a capped endpoint still supports aggregates; extraction succeeds
	st := synth.Generate(synth.Spec{Name: "cap", Classes: 5, Instances: 200, ObjectProps: 6, DataProps: 5, LinkFactor: 1, Seed: 2})
	r := endpoint.NewRemote("cap", "sim://cap", st, endpoint.ProfileCapped, nil, nil)
	ix, err := New().Extract(context.Background(), r, "sim://cap", time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if ix.Instances != 200 {
		t.Fatalf("instances = %d", ix.Instances)
	}
}

func TestExtractDeadEndpointFails(t *testing.T) {
	st := smallStore(t)
	r := endpoint.NewRemote("dead", "sim://dead", st, nil, endpoint.AlwaysDown(), nil)
	if _, err := New().Extract(context.Background(), r, "sim://dead", time.Now()); err == nil {
		t.Fatal("dead endpoint must fail extraction")
	}
}

func TestMaxClassesGuard(t *testing.T) {
	st := synth.Generate(synth.Spec{Name: "many", Classes: 30, Instances: 300, Seed: 1})
	e := &Extractor{PageSize: 1000, MaxClasses: 10}
	if _, err := e.Extract(context.Background(), endpoint.LocalClient{Store: st}, "x", time.Now()); err == nil {
		t.Fatal("MaxClasses should abort extraction")
	}
}

func TestRDFTypeExcludedFromProperties(t *testing.T) {
	st := smallStore(t)
	ix, err := New().Extract(context.Background(), endpoint.LocalClient{Store: st}, "x", time.Now())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range ix.Classes {
		for _, op := range c.ObjectProperties {
			if op.IRI == rdf.RDFType {
				t.Fatalf("rdf:type leaked into object properties of %s", c.Label)
			}
		}
	}
}

func TestEmptyEndpoint(t *testing.T) {
	ix, err := New().Extract(context.Background(), endpoint.LocalClient{Store: store.New()}, "empty", time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumClasses() != 0 || ix.Instances != 0 || ix.Triples != 0 {
		t.Fatalf("empty index = %+v", ix)
	}
	if ix.Predicates == nil || len(ix.Predicates) != 0 {
		t.Fatalf("empty corpus predicates = %v, want non-nil empty (complete)", ix.Predicates)
	}
}

// TestPredicatesIncludeUntypedSubjects: the full-corpus predicate scan
// must see predicates that occur only on untyped subjects — the class
// property lists cannot, and pruning soundness hangs on the difference.
// Every strategy must agree, and the JSON round trip (the docstore path)
// must preserve completeness.
func TestPredicatesIncludeUntypedSubjects(t *testing.T) {
	g, err := turtle.Parse(`
@prefix ex: <http://ex/> .
ex:a1 a ex:Author ; ex:name "A1" .
ex:orphan1 ex:shadowProp "only on untyped subjects" .
ex:orphan2 ex:shadowProp "again" .
`)
	if err != nil {
		t.Fatal(err)
	}
	st := store.FromGraph(g)
	const shadow = "http://ex/shadowProp"
	for name, c := range map[string]endpoint.Client{
		"aggregate": endpoint.LocalClient{Store: st},
		"mixed":     endpoint.NewRemote("nogroup", "sim://nogroup", st, endpoint.ProfileNoGroupBy, nil, nil),
		"enumerate": endpoint.NewRemote("noagg", "sim://noagg", st, endpoint.ProfileNoAgg, nil, nil),
	} {
		ix, err := New().Extract(context.Background(), c, "x", time.Now())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		v := ix.Vocabulary()
		if !v.PredicatesComplete {
			t.Fatalf("%s: vocabulary not predicate-complete", name)
		}
		if !v.HasPredicate(shadow) {
			t.Fatalf("%s: untyped-subject predicate missing from %+v", name, ix.Predicates)
		}
		if !v.CanAnswer([]string{shadow}, nil) {
			t.Fatalf("%s: CanAnswer rejects a predicate the corpus holds", name)
		}
		var n int
		for _, p := range ix.Predicates {
			if p.IRI == shadow {
				n = p.Count
			}
		}
		if n != 2 {
			t.Fatalf("%s: shadowProp count = %d, want 2", name, n)
		}
		blob, err := json.Marshal(ix)
		if err != nil {
			t.Fatal(err)
		}
		var back Index
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatal(err)
		}
		if bv := back.Vocabulary(); !bv.PredicatesComplete || !bv.HasPredicate(shadow) {
			t.Fatalf("%s: JSON round trip lost predicate completeness", name)
		}
	}
}

func TestExtractScholarly(t *testing.T) {
	st := synth.Scholarly(1)
	ix, err := New().Extract(context.Background(), endpoint.LocalClient{Store: st}, "scholarly", time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumClasses() != synth.ScholarlyClassCount() {
		t.Fatalf("classes = %d, want %d", ix.NumClasses(), synth.ScholarlyClassCount())
	}
	// Person is the largest class (1200)
	if ix.Classes[0].Label != "Person" || ix.Classes[0].Instances != 1200 {
		t.Fatalf("top class = %+v", ix.Classes[0])
	}
}
