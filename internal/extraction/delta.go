package extraction

// Incremental index maintenance for the live mutation path: instead of
// re-running the full extraction battery after a SPARQL Update, the
// stored Index is adjusted by the update's net triple delta. The
// full-corpus partitions (Triples, Predicates) follow from the delta
// alone; the per-class partitions are rebuilt exactly for the affected
// subjects only, by reconstructing each one's pre-update contribution
// from the post-update store and the delta and swapping it for the
// post-update contribution. The result is the same Index a fresh
// extraction over the updated corpus would produce, at a cost
// proportional to the touched subjects rather than the corpus
// (experiment E21 measures the gap).

import (
	"time"

	"repro/internal/rdf"
	"repro/internal/store"
)

// ApplyDelta updates ix in place to reflect an applied triple delta.
// post is the store after the update (the delta's Added triples are
// present, its Removed triples are not); added and removed must be the
// net delta — a triple in both would be double-counted. The per-class
// statistics, the full-corpus predicate partition (when present; a nil
// legacy partition stays nil) and the instance/triple totals all end up
// exactly as a full re-extraction of post would compute them.
func ApplyDelta(ix *Index, post store.Queryable, added, removed []rdf.Triple, now time.Time) {
	if len(added) == 0 && len(removed) == 0 {
		return
	}
	ix.ExtractedAt = now
	ix.Triples += len(added) - len(removed)

	// Full-corpus predicate partition: pure delta arithmetic.
	if ix.Predicates != nil {
		pd := map[string]int{}
		for _, t := range added {
			pd[t.P.Value]++
		}
		for _, t := range removed {
			pd[t.P.Value]--
		}
		ix.Predicates = mergePropertyCounts(ix.Predicates, pd)
		if ix.Predicates == nil {
			ix.Predicates = []PropertyCount{} // empty corpus, not a legacy doc
		}
	}

	typeTerm := rdf.NewIRI(rdf.RDFType)

	// Per-term rdf:type delta: which classes each term gained and lost.
	// A term whose type set changed reclassifies the object-property
	// links of every subject pointing at it, so those subjects are
	// affected too even when none of their own triples changed.
	typeAdd := map[rdf.Term]map[string]bool{}
	typeDel := map[rdf.Term]map[string]bool{}
	addedBy := map[rdf.Term]map[rdf.Triple]bool{}
	removedBy := map[rdf.Term]map[rdf.Triple]bool{}
	note := func(m map[rdf.Term]map[string]bool, x rdf.Term, c string) {
		set := m[x]
		if set == nil {
			set = map[string]bool{}
			m[x] = set
		}
		set[c] = true
	}
	index := func(m map[rdf.Term]map[rdf.Triple]bool, t rdf.Triple) {
		set := m[t.S]
		if set == nil {
			set = map[rdf.Triple]bool{}
			m[t.S] = set
		}
		set[t] = true
	}
	affected := map[rdf.Term]bool{}
	for _, t := range added {
		affected[t.S] = true
		index(addedBy, t)
		if t.P.Value == rdf.RDFType && t.O.IsIRI() {
			note(typeAdd, t.S, t.O.Value)
		}
	}
	for _, t := range removed {
		affected[t.S] = true
		index(removedBy, t)
		if t.P.Value == rdf.RDFType && t.O.IsIRI() {
			note(typeDel, t.S, t.O.Value)
		}
	}
	for x := range typeAdd {
		post.Match(store.Pattern{O: x}, func(tr rdf.Triple) bool {
			affected[tr.S] = true
			return true
		})
	}
	for x := range typeDel {
		if typeAdd[x] == nil {
			post.Match(store.Pattern{O: x}, func(tr rdf.Triple) bool {
				affected[tr.S] = true
				return true
			})
		}
	}

	// typesOf reconstructs a term's class set before and after the
	// update: post-state from the store, pre-state by undoing the type
	// delta. Memoized — objects recur across subjects.
	type typePair struct{ pre, post map[string]bool }
	tcache := map[rdf.Term]typePair{}
	typesOf := func(x rdf.Term) typePair {
		if tp, ok := tcache[x]; ok {
			return tp
		}
		postSet := map[string]bool{}
		post.Match(store.Pattern{S: x, P: typeTerm}, func(tr rdf.Triple) bool {
			if tr.O.IsIRI() {
				postSet[tr.O.Value] = true
			}
			return true
		})
		preSet := make(map[string]bool, len(postSet))
		for c := range postSet {
			preSet[c] = true
		}
		for c := range typeAdd[x] {
			delete(preSet, c)
		}
		for c := range typeDel[x] {
			preSet[c] = true
		}
		tp := typePair{pre: preSet, post: postSet}
		tcache[x] = tp
		return tp
	}

	// Accumulate per-class deltas: subtract each affected subject's
	// pre-update contribution, add its post-update contribution. An
	// over-approximated affected set is safe — an untouched subject
	// contributes net zero.
	type classAcc struct {
		instances int
		data      map[string]int
		links     map[[2]string]int
	}
	accs := map[string]*classAcc{}
	acc := func(c string) *classAcc {
		a := accs[c]
		if a == nil {
			a = &classAcc{data: map[string]int{}, links: map[[2]string]int{}}
			accs[c] = a
		}
		return a
	}
	contribute := func(trips map[rdf.Triple]bool, classes map[string]bool, sign int, pre bool) {
		for c := range classes {
			a := acc(c)
			a.instances += sign
			for t := range trips {
				if t.P.Value == rdf.RDFType {
					continue
				}
				if t.O.IsLiteral() {
					a.data[t.P.Value] += sign
					continue
				}
				// object-property links count once per target class of
				// the object, matching the ?s ?p ?o . ?o a ?d join
				ot := typesOf(t.O)
				set := ot.post
				if pre {
					set = ot.pre
				}
				for d := range set {
					a.links[[2]string{t.P.Value, d}] += sign
				}
			}
		}
	}
	for s := range affected {
		postTrips := map[rdf.Triple]bool{}
		post.Match(store.Pattern{S: s}, func(tr rdf.Triple) bool {
			postTrips[tr] = true
			return true
		})
		preTrips := make(map[rdf.Triple]bool, len(postTrips))
		for t := range postTrips {
			preTrips[t] = true
		}
		for t := range addedBy[s] {
			delete(preTrips, t)
		}
		for t := range removedBy[s] {
			preTrips[t] = true
		}
		tp := typesOf(s)
		contribute(preTrips, tp.pre, -1, true)
		contribute(postTrips, tp.post, +1, false)
	}

	// Fold the accumulated deltas into the class partition.
	byIRI := map[string]int{}
	for i := range ix.Classes {
		byIRI[ix.Classes[i].IRI] = i
	}
	for c, a := range accs {
		i, ok := byIRI[c]
		if !ok {
			if a.instances <= 0 {
				continue // exact bookkeeping: a class that never existed nets to zero
			}
			ix.Classes = append(ix.Classes, ClassIndex{IRI: c, Label: classLabel(post, c)})
			i = len(ix.Classes) - 1
			byIRI[c] = i
		}
		ci := &ix.Classes[i]
		ci.Instances += a.instances
		ix.Instances += a.instances
		ci.DataProperties = mergePropertyCounts(ci.DataProperties, a.data)
		ci.ObjectProperties = mergeLinkCounts(ci.ObjectProperties, a.links)
	}
	kept := ix.Classes[:0]
	for _, ci := range ix.Classes {
		if ci.Instances > 0 {
			kept = append(kept, ci)
		}
	}
	ix.Classes = kept
	sortClasses(ix.Classes)
}

// classLabel resolves the display name of a class appearing for the
// first time: its rdfs:label when the corpus carries one (same
// plain > @en > other ranking as fetchLabels), else the IRI local name.
func classLabel(post store.Queryable, iri string) string {
	label := rdf.NewIRI(iri).LocalName()
	best := 3
	post.Match(store.Pattern{S: rdf.NewIRI(iri), P: rdf.NewIRI(rdf.RDFSLabel)}, func(tr rdf.Triple) bool {
		if !tr.O.IsLiteral() || tr.O.Value == "" {
			return true
		}
		r := 2
		switch tr.O.Lang {
		case "":
			r = 0
		case "en":
			r = 1
		}
		if r < best {
			best, label = r, tr.O.Value
		}
		return true
	})
	return label
}

// mergePropertyCounts folds a count delta into a sorted PropertyCount
// list, dropping entries that reach zero; nil when nothing is left.
func mergePropertyCounts(list []PropertyCount, delta map[string]int) []PropertyCount {
	if len(delta) == 0 {
		return list
	}
	m := make(map[string]int, len(list)+len(delta))
	for _, pc := range list {
		m[pc.IRI] = pc.Count
	}
	for iri, d := range delta {
		m[iri] += d
	}
	var out []PropertyCount
	for iri, n := range m {
		if n > 0 {
			out = append(out, PropertyCount{IRI: iri, Count: n})
		}
	}
	sortPredicates(out)
	return out
}

// mergeLinkCounts is mergePropertyCounts for (property, target) pairs.
func mergeLinkCounts(list []LinkCount, delta map[[2]string]int) []LinkCount {
	if len(delta) == 0 {
		return list
	}
	m := make(map[[2]string]int, len(list)+len(delta))
	for _, lc := range list {
		m[[2]string{lc.IRI, lc.Target}] = lc.Count
	}
	for k, d := range delta {
		m[k] += d
	}
	var out []LinkCount
	for k, n := range m {
		if n > 0 {
			out = append(out, LinkCount{IRI: k[0], Target: k[1], Count: n})
		}
	}
	if out == nil {
		return nil
	}
	ci := ClassIndex{ObjectProperties: out}
	sortClassIndex(&ci)
	return ci.ObjectProperties
}
