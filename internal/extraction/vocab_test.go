package extraction

import "testing"

func TestVocabularyAdvertisesAndAnswers(t *testing.T) {
	ix := &Index{
		Classes: []ClassIndex{
			{
				IRI:              "http://ex/Person",
				DataProperties:   []PropertyCount{{IRI: "http://ex/name", Count: 3}},
				ObjectProperties: []LinkCount{{IRI: "http://ex/knows", Target: "http://ex/Person", Count: 2}},
			},
			{IRI: "http://ex/City"},
		},
		// the full-corpus scan also saw a predicate that occurs only on
		// untyped subjects, which the class lists cannot
		Predicates: []PropertyCount{
			{IRI: "http://ex/name", Count: 3},
			{IRI: "http://ex/knows", Count: 2},
			{IRI: "http://ex/untypedOnly", Count: 1},
		},
	}
	v := ix.Vocabulary()
	if !v.HasClass("http://ex/Person") || !v.HasClass("http://ex/City") {
		t.Fatal("classes not advertised")
	}
	if !v.HasPredicate("http://ex/name") || !v.HasPredicate("http://ex/knows") {
		t.Fatal("properties not advertised")
	}
	if !v.HasPredicate("http://ex/untypedOnly") {
		t.Fatal("full-scan predicate on untyped subjects not advertised")
	}
	if v.HasClass("http://ex/Country") || v.HasPredicate("http://ex/age") {
		t.Fatal("vocabulary advertises terms the index lacks")
	}
	if !v.PredicatesComplete {
		t.Fatal("index with full predicate scan not marked complete")
	}
	if !v.CanAnswer(nil, nil) {
		t.Fatal("empty requirement must be answerable")
	}
	if !v.CanAnswer([]string{"http://ex/name"}, []string{"http://ex/Person"}) {
		t.Fatal("fully-advertised requirement rejected")
	}
	if !v.CanAnswer([]string{"http://ex/untypedOnly"}, nil) {
		t.Fatal("untyped-subject predicate rejected despite full scan")
	}
	if v.CanAnswer([]string{"http://ex/age"}, nil) {
		t.Fatal("predicate provably missing from the complete set accepted")
	}
	if v.CanAnswer(nil, []string{"http://ex/Country"}) {
		t.Fatal("missing class accepted")
	}
}

// TestVocabularyLegacyIndexNeverPrunesPredicates: an index without the
// full-corpus predicate scan (Predicates nil — e.g. a persisted document
// from before the scan existed) only describes typed instances. A
// predicate missing from it may still occur on untyped subjects, so
// CanAnswer must not prune on predicates — only classes, whose
// enumeration is complete either way, stay provable.
func TestVocabularyLegacyIndexNeverPrunesPredicates(t *testing.T) {
	ix := &Index{Classes: []ClassIndex{{
		IRI:            "http://ex/Person",
		DataProperties: []PropertyCount{{IRI: "http://ex/name", Count: 3}},
	}}}
	v := ix.Vocabulary()
	if v.PredicatesComplete {
		t.Fatal("legacy index marked predicate-complete")
	}
	if !v.CanAnswer([]string{"http://ex/age"}, nil) {
		t.Fatal("legacy vocabulary pruned on a predicate it cannot disprove")
	}
	if v.CanAnswer(nil, []string{"http://ex/Country"}) {
		t.Fatal("class pruning must stay sound for legacy indexes")
	}
}
