package extraction

import "testing"

func TestVocabularyAdvertisesAndAnswers(t *testing.T) {
	ix := &Index{Classes: []ClassIndex{
		{
			IRI:              "http://ex/Person",
			DataProperties:   []PropertyCount{{IRI: "http://ex/name", Count: 3}},
			ObjectProperties: []LinkCount{{IRI: "http://ex/knows", Target: "http://ex/Person", Count: 2}},
		},
		{IRI: "http://ex/City"},
	}}
	v := ix.Vocabulary()
	if !v.HasClass("http://ex/Person") || !v.HasClass("http://ex/City") {
		t.Fatal("classes not advertised")
	}
	if !v.HasPredicate("http://ex/name") || !v.HasPredicate("http://ex/knows") {
		t.Fatal("properties not advertised")
	}
	if v.HasClass("http://ex/Country") || v.HasPredicate("http://ex/age") {
		t.Fatal("vocabulary advertises terms the index lacks")
	}
	if !v.CanAnswer(nil, nil) {
		t.Fatal("empty requirement must be answerable")
	}
	if !v.CanAnswer([]string{"http://ex/name"}, []string{"http://ex/Person"}) {
		t.Fatal("fully-advertised requirement rejected")
	}
	if v.CanAnswer([]string{"http://ex/age"}, nil) {
		t.Fatal("missing predicate accepted")
	}
	if v.CanAnswer(nil, []string{"http://ex/Country"}) {
		t.Fatal("missing class accepted")
	}
}
