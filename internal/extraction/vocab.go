package extraction

// Vocabulary is the queryable surface an extraction index advertises for
// its endpoint. Federated source selection consults it to prune
// endpoints that provably cannot answer a query, so its semantics must
// be exact about what "not advertised" proves:
//
//   - Classes come from enumerating `?s a ?c`, which sees every rdf:type
//     statement — a class absent here is provably uninstantiated at the
//     endpoint, whatever else the corpus holds.
//   - Predicates are complete only when the index carries the
//     full-corpus predicate scan (Index.Predicates). The per-class
//     property lists see typed instances only; a predicate occurring
//     solely on untyped subjects never appears there, so a legacy index
//     without the full scan cannot prove a predicate absent and
//     CanAnswer must not prune on it.
type Vocabulary struct {
	// Classes is the set of instantiated class IRIs.
	Classes map[string]struct{}
	// Predicates is the set of advertised property IRIs, data and object
	// properties pooled (a query pattern does not say which kind it
	// wants).
	Predicates map[string]struct{}
	// PredicatesComplete reports whether Predicates covers every triple
	// of the corpus, typed or not. False for an index extracted before
	// the full-corpus predicate scan existed: such a vocabulary can still
	// prune by class, but a missing predicate proves nothing.
	PredicatesComplete bool
}

// Vocabulary derives the advertised vocabulary from the index.
func (ix *Index) Vocabulary() Vocabulary {
	v := Vocabulary{
		Classes:    make(map[string]struct{}, len(ix.Classes)),
		Predicates: map[string]struct{}{},
	}
	for i := range ix.Classes {
		ci := &ix.Classes[i]
		v.Classes[ci.IRI] = struct{}{}
		for _, p := range ci.DataProperties {
			v.Predicates[p.IRI] = struct{}{}
		}
		for _, p := range ci.ObjectProperties {
			v.Predicates[p.IRI] = struct{}{}
		}
	}
	if ix.Predicates != nil {
		v.PredicatesComplete = true
		for _, p := range ix.Predicates {
			v.Predicates[p.IRI] = struct{}{}
		}
	}
	return v
}

// HasClass reports whether the endpoint advertises instances of the class.
func (v Vocabulary) HasClass(iri string) bool {
	_, ok := v.Classes[iri]
	return ok
}

// HasPredicate reports whether the endpoint advertises the property.
func (v Vocabulary) HasPredicate(iri string) bool {
	_, ok := v.Predicates[iri]
	return ok
}

// CanAnswer reports whether a query requiring all the given predicates
// and classes could produce a row at this endpoint: false as soon as one
// required term is provably missing. Classes are always provable; a
// missing predicate counts only when the predicate set is complete —
// otherwise the predicate might sit on untyped subjects the index never
// saw, and claiming "cannot answer" would silently drop that source's
// rows from a federated result. Empty requirement lists are trivially
// answerable — an all-variable query matches anything.
func (v Vocabulary) CanAnswer(predicates, classes []string) bool {
	if v.PredicatesComplete {
		for _, p := range predicates {
			if !v.HasPredicate(p) {
				return false
			}
		}
	}
	for _, c := range classes {
		if !v.HasClass(c) {
			return false
		}
	}
	return true
}
