package extraction

// Vocabulary is the queryable surface an extraction index advertises for
// its endpoint: the instantiated classes and the properties observed on
// their instances. Federated source selection consults it to prune
// endpoints that provably cannot answer a query — within the index's
// semantics, which describe typed instances; an index is the tool's only
// knowledge of a remote source, so "not advertised" is as provable as
// absence gets without querying the endpoint itself.
type Vocabulary struct {
	// Classes is the set of instantiated class IRIs.
	Classes map[string]struct{}
	// Predicates is the set of property IRIs observed on typed instances,
	// data and object properties pooled (a query pattern does not say
	// which kind it wants).
	Predicates map[string]struct{}
}

// Vocabulary derives the advertised vocabulary from the index.
func (ix *Index) Vocabulary() Vocabulary {
	v := Vocabulary{
		Classes:    make(map[string]struct{}, len(ix.Classes)),
		Predicates: map[string]struct{}{},
	}
	for i := range ix.Classes {
		ci := &ix.Classes[i]
		v.Classes[ci.IRI] = struct{}{}
		for _, p := range ci.DataProperties {
			v.Predicates[p.IRI] = struct{}{}
		}
		for _, p := range ci.ObjectProperties {
			v.Predicates[p.IRI] = struct{}{}
		}
	}
	return v
}

// HasClass reports whether the endpoint advertises instances of the class.
func (v Vocabulary) HasClass(iri string) bool {
	_, ok := v.Classes[iri]
	return ok
}

// HasPredicate reports whether the endpoint advertises the property.
func (v Vocabulary) HasPredicate(iri string) bool {
	_, ok := v.Predicates[iri]
	return ok
}

// CanAnswer reports whether a query requiring all the given predicates
// and classes could produce a row at this endpoint: false as soon as one
// required term is missing from the vocabulary. Empty requirement lists
// are trivially answerable — an all-variable query matches anything.
func (v Vocabulary) CanAnswer(predicates, classes []string) bool {
	for _, p := range predicates {
		if !v.HasPredicate(p) {
			return false
		}
	}
	for _, c := range classes {
		if !v.HasClass(c) {
			return false
		}
	}
	return true
}
