package extraction

import (
	"fmt"

	"repro/internal/rdf"
)

// VoID renders the extraction index as a VoID dataset description — the
// vocabulary LODeX/H-BOLD's lineage uses to expose dataset statistics.
// The graph contains the dataset node with triple/entity counts, one
// void:classPartition per instantiated class, and (when the index
// carries the full-corpus predicate scan) one void:propertyPartition per
// distinct predicate.
func VoID(ix *Index) *rdf.Graph {
	g := rdf.NewGraph()
	ds := rdf.NewIRI(ix.Endpoint + "#dataset")
	typeT := rdf.NewIRI(rdf.RDFType)
	g.AddSPO(ds, typeT, rdf.NewIRI(rdf.VOIDNS+"Dataset"))
	g.AddSPO(ds, rdf.NewIRI(rdf.VOIDNS+"sparqlEndpoint"), rdf.NewIRI(ix.Endpoint))
	g.AddSPO(ds, rdf.NewIRI(rdf.VoIDTriples), rdf.NewInteger(int64(ix.Triples)))
	g.AddSPO(ds, rdf.NewIRI(rdf.VoIDEntities), rdf.NewInteger(int64(ix.Instances)))
	g.AddSPO(ds, rdf.NewIRI(rdf.VOIDNS+"classes"), rdf.NewInteger(int64(ix.NumClasses())))

	for i, c := range ix.Classes {
		part := rdf.NewIRI(fmt.Sprintf("%s#classPartition-%d", ix.Endpoint, i))
		g.AddSPO(ds, rdf.NewIRI(rdf.VOIDNS+"classPartition"), part)
		g.AddSPO(part, rdf.NewIRI(rdf.VOIDNS+"class"), rdf.NewIRI(c.IRI))
		g.AddSPO(part, rdf.NewIRI(rdf.VoIDEntities), rdf.NewInteger(int64(c.Instances)))
		props := int64(len(c.DataProperties) + len(c.ObjectProperties))
		g.AddSPO(part, rdf.NewIRI(rdf.VOIDNS+"properties"), rdf.NewInteger(props))
	}
	if ix.Predicates != nil {
		g.AddSPO(ds, rdf.NewIRI(rdf.VOIDNS+"properties"), rdf.NewInteger(int64(len(ix.Predicates))))
		for i, p := range ix.Predicates {
			part := rdf.NewIRI(fmt.Sprintf("%s#propertyPartition-%d", ix.Endpoint, i))
			g.AddSPO(ds, rdf.NewIRI(rdf.VOIDNS+"propertyPartition"), part)
			g.AddSPO(part, rdf.NewIRI(rdf.VOIDNS+"property"), rdf.NewIRI(p.IRI))
			g.AddSPO(part, rdf.NewIRI(rdf.VoIDTriples), rdf.NewInteger(int64(p.Count)))
		}
	}
	return g
}
