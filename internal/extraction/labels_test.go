package extraction

import (
	"context"
	"testing"
	"time"

	"repro/internal/endpoint"
	"repro/internal/store"
	"repro/internal/turtle"
)

func labeledStore(t testing.TB) *store.Store {
	t.Helper()
	g, err := turtle.Parse(`
@prefix ex: <http://ex/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
ex:Writer rdfs:label "Autore"@it, "Author"@en .
ex:Work rdfs:label "Opera Letteraria" .
ex:a1 a ex:Writer ; ex:name "A1" .
ex:b1 a ex:Work ; ex:title "B1" .
ex:c1 a ex:Unlabeled .
`)
	if err != nil {
		t.Fatal(err)
	}
	return store.FromGraph(g)
}

func TestLabelsFromOntology(t *testing.T) {
	ix, err := New().Extract(context.Background(), endpoint.LocalClient{Store: labeledStore(t)}, "x", time.Now())
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, c := range ix.Classes {
		got[c.IRI] = c.Label
	}
	// plain label preferred
	if got["http://ex/Work"] != "Opera Letteraria" {
		t.Fatalf("Work label = %q", got["http://ex/Work"])
	}
	// @en preferred over @it
	if got["http://ex/Writer"] != "Author" {
		t.Fatalf("Writer label = %q", got["http://ex/Writer"])
	}
	// unlabeled classes keep the local name
	if got["http://ex/Unlabeled"] != "Unlabeled" {
		t.Fatalf("Unlabeled label = %q", got["http://ex/Unlabeled"])
	}
}

func TestLabelsBestEffortOnBrokenLabelQuery(t *testing.T) {
	// legacy endpoints reject nothing extra here, but a broken endpoint
	// mid-extraction must not fail the whole index: simulate by using a
	// store without labels — extraction succeeds with local names
	st := smallStore(t)
	ix, err := New().Extract(context.Background(), endpoint.LocalClient{Store: st}, "x", time.Now())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range ix.Classes {
		if c.Label == "" {
			t.Fatalf("class %s lost its label", c.IRI)
		}
	}
}

func TestLabelsAppliedOnAllStrategies(t *testing.T) {
	st := labeledStore(t)
	for _, quirks := range []*endpoint.Quirks{endpoint.ProfileNoGroupBy, endpoint.ProfileNoAgg} {
		r := endpoint.NewRemote("x", "x", st, quirks, nil, nil)
		ix, err := New().Extract(context.Background(), r, "x", time.Now())
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, c := range ix.Classes {
			if c.IRI == "http://ex/Work" && c.Label == "Opera Letteraria" {
				found = true
			}
		}
		if !found {
			t.Fatalf("strategy %s: ontology label not applied", ix.Strategy)
		}
	}
}
