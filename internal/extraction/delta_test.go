package extraction_test

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/endpoint"
	"repro/internal/extraction"
	"repro/internal/rdf"
	"repro/internal/store"
	"repro/internal/update"
)

// The incremental-maintenance contract: after any update, ApplyDelta
// must leave the stored Index exactly where a full re-extraction of the
// updated corpus would. The update stream below exercises every path the
// delta logic has — new classes, vanishing classes, data properties,
// object links whose classification changes because the *object's* type
// set changed (no triple of the linking subject touched), predicate
// renames through the pattern form, and label pick-up for classes that
// appear after their rdfs:label triple.

func deltaFixture(t *testing.T) *store.Store {
	t.Helper()
	st := store.New()
	iri := func(s string) rdf.Term { return rdf.NewIRI("http://ex/" + s) }
	a := rdf.NewIRI(rdf.RDFType)
	for _, tr := range []rdf.Triple{
		{S: iri("alice"), P: a, O: iri("Person")},
		{S: iri("bob"), P: a, O: iri("Person")},
		{S: iri("acme"), P: a, O: iri("Company")},
		{S: iri("alice"), P: iri("name"), O: rdf.NewLiteral("Alice")},
		{S: iri("bob"), P: iri("name"), O: rdf.NewLiteral("Bob")},
		{S: iri("alice"), P: iri("worksFor"), O: iri("acme")},
		{S: iri("alice"), P: iri("knows"), O: iri("bob")},
		// untyped subject: visible only in the full-corpus partitions
		{S: iri("ghost"), P: iri("seen"), O: rdf.NewLiteral("once")},
	} {
		st.Add(tr)
	}
	return st
}

var deltaUpdates = []string{
	// new class with an instance, a data property and a link to a typed object
	`PREFIX ex: <http://ex/>
	 INSERT DATA { ex:rex a ex:Dog . ex:rex ex:name "Rex" . ex:rex ex:owner ex:alice }`,
	// give an existing link target a second type: alice's worksFor link
	// to acme must now count toward both target classes, though no
	// triple of alice changed
	`PREFIX ex: <http://ex/>
	 INSERT DATA { ex:acme a ex:Employer }`,
	// predicate rename through the pattern form
	`PREFIX ex: <http://ex/>
	 DELETE { ?s ex:name ?n } INSERT { ?s ex:label ?n } WHERE { ?s ex:name ?n }`,
	// label pick-up: the rdfs:label lands before the class exists
	`PREFIX ex: <http://ex/>
	 INSERT DATA { ex:Robot <http://www.w3.org/2000/01/rdf-schema#label> "Automaton" } ;
	 INSERT DATA { ex:r2 a ex:Robot . ex:r2 ex:owner ex:rex }`,
	// drop a type: acme stops being an Employer, reclassifying the link again
	`PREFIX ex: <http://ex/>
	 DELETE DATA { ex:acme a ex:Employer }`,
	// remove a whole subject; the Dog class loses its only instance
	`PREFIX ex: <http://ex/>
	 DELETE WHERE { ex:rex ?p ?o }`,
	// delete+reinsert in one request nets out to nothing
	`PREFIX ex: <http://ex/>
	 DELETE DATA { ex:alice ex:knows ex:bob } ;
	 INSERT DATA { ex:alice ex:knows ex:bob }`,
}

func normalizeIndex(ix *extraction.Index) *extraction.Index {
	cp := *ix
	cp.ExtractedAt = time.Time{}
	cp.Strategy = ""
	return &cp
}

func TestApplyDeltaMatchesReextraction(t *testing.T) {
	ctx := context.Background()
	st := deltaFixture(t)
	ex := extraction.New()
	client := endpoint.LocalClient{Store: st}
	ix, err := ex.Extract(ctx, client, "mem://delta", time.Unix(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	for i, text := range deltaUpdates {
		d, err := update.ApplyText(ctx, st, text)
		if err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		extraction.ApplyDelta(ix, st, d.Added, d.Removed, time.Unix(int64(i+1), 0))
		fresh, err := ex.Extract(ctx, client, "mem://delta", time.Unix(int64(i+1), 0))
		if err != nil {
			t.Fatalf("re-extract after update %d: %v", i, err)
		}
		if got, want := normalizeIndex(ix), normalizeIndex(fresh); !reflect.DeepEqual(got, want) {
			t.Fatalf("after update %d incremental index diverged from re-extraction\n got: %+v\nwant: %+v", i, got, want)
		}
	}
}

// An empty delta must not touch the index at all (not even ExtractedAt).
func TestApplyDeltaEmpty(t *testing.T) {
	st := deltaFixture(t)
	ex := extraction.New()
	ix, err := ex.Extract(context.Background(), endpoint.LocalClient{Store: st}, "mem://delta", time.Unix(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	before := *ix
	extraction.ApplyDelta(ix, st, nil, nil, time.Unix(99, 0))
	if !reflect.DeepEqual(before, *ix) {
		t.Fatalf("empty delta changed the index:\n before %+v\n after %+v", before, *ix)
	}
}
