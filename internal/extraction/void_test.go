package extraction

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/endpoint"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/store"
	"repro/internal/turtle"
)

func TestVoIDExport(t *testing.T) {
	st := smallStore(t)
	ix, err := New().Extract(context.Background(), endpoint.LocalClient{Store: st}, "http://small/sparql", time.Now())
	if err != nil {
		t.Fatal(err)
	}
	g := VoID(ix)
	// dataset node + 3 class partitions
	ds := rdf.NewIRI("http://small/sparql#dataset")
	if !g.Has(rdf.NewTriple(ds, rdf.NewIRI(rdf.VoIDTriples), rdf.NewInteger(13))) {
		t.Fatal("triple count missing")
	}
	if !g.Has(rdf.NewTriple(ds, rdf.NewIRI(rdf.VoIDEntities), rdf.NewInteger(5))) {
		t.Fatal("entity count missing")
	}
	parts := 0
	g.Triples()
	for _, tr := range g.Triples() {
		if tr.P.Value == rdf.VOIDNS+"classPartition" {
			parts++
		}
	}
	if parts != 3 {
		t.Fatalf("class partitions = %d, want 3", parts)
	}
}

func TestVoIDIsValidTurtleAndQueryable(t *testing.T) {
	st := smallStore(t)
	ix, err := New().Extract(context.Background(), endpoint.LocalClient{Store: st}, "http://small/sparql", time.Now())
	if err != nil {
		t.Fatal(err)
	}
	g := VoID(ix)
	ttl := turtle.WriteTurtle(g, rdf.CommonPrefixes())
	if !strings.Contains(ttl, "void:") {
		t.Fatalf("turtle missing void prefix usage:\n%s", ttl)
	}
	back, err := turtle.Parse(ttl)
	if err != nil {
		t.Fatalf("VoID turtle does not reparse: %v", err)
	}
	if back.Len() != g.Len() {
		t.Fatalf("round trip lost triples: %d vs %d", back.Len(), g.Len())
	}
	// and it is queryable with our own engine
	res, err := sparql.Exec(store.FromGraph(g), `
		PREFIX void: <http://rdfs.org/ns/void#>
		SELECT ?c ?n WHERE {
			?ds void:classPartition ?p .
			?p void:class ?c .
			?p void:entities ?n .
		} ORDER BY DESC(?n)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if n, _ := res.Rows[0]["n"].Int(); n != 2 {
		t.Fatalf("top partition entities = %d", n)
	}
}
