// Package extraction implements H-BOLD's Index Extraction: the query
// battery that derives, from any SPARQL endpoint, the structural and
// statistical indexes the tool visualizes — number of instances, number
// of classes, the list of classes with their properties, and per-class
// instance counts.
//
// Public endpoints differ wildly in what they support, so extraction uses
// pattern strategies [Benedetti, Bergamaschi & Po, LD4IE 2014]: it first
// attempts the efficient aggregate queries and transparently falls back
// to DISTINCT enumeration with LIMIT/OFFSET paging when the endpoint
// rejects aggregates or truncates results.
//
// Enumeration consumes each page as a row stream (endpoint.Stream):
// rows are folded into counters and small maps as they arrive instead of
// being materialized per page, so extraction memory is bounded by the
// aggregation state, not the page size — and a canceled context (a
// stopped scheduler job, a CLI timeout) aborts mid-page instead of at
// the next page boundary.
package extraction

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/endpoint"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// local aliases keep the result-plumbing helpers short
type (
	sparqlResult  = sparql.Result
	sparqlBinding = sparql.Binding
)

// Index is the output of one extraction run over one endpoint.
type Index struct {
	// Endpoint is the endpoint URL the index was extracted from.
	Endpoint string `json:"endpoint"`
	// ExtractedAt is the completion time.
	ExtractedAt time.Time `json:"extractedAt"`
	// Strategy records which pattern strategy succeeded ("aggregate" or
	// "enumerate").
	Strategy string `json:"strategy"`
	// Triples is the endpoint's total triple count.
	Triples int `json:"triples"`
	// Instances is the number of typed instances (rdf:type statements).
	Instances int `json:"instances"`
	// Classes lists every instantiated class with its statistics, sorted
	// by descending instance count.
	Classes []ClassIndex `json:"classes"`
	// Predicates lists every distinct predicate in the corpus with its
	// occurrence count, sorted by IRI — observed over all triples, typed
	// and untyped subjects alike. The per-class property lists above only
	// see properties of typed instances, so this full-corpus set is what
	// makes predicate-based source pruning sound: a predicate absent here
	// is provably absent from the endpoint. nil means the index predates
	// the full scan (a legacy document); an empty non-nil slice means the
	// corpus holds no triples.
	Predicates []PropertyCount `json:"predicates"`
}

// NumClasses returns the number of instantiated classes.
func (ix *Index) NumClasses() int { return len(ix.Classes) }

// ClassIndex summarizes one instantiated class.
type ClassIndex struct {
	// IRI identifies the class.
	IRI string `json:"iri"`
	// Label is the display name (IRI local name).
	Label string `json:"label"`
	// Instances is the number of instances typed with this class.
	Instances int `json:"instances"`
	// DataProperties are the datatype properties observed on instances,
	// with occurrence counts.
	DataProperties []PropertyCount `json:"dataProperties"`
	// ObjectProperties are the links to other classes: property IRI,
	// target class and occurrence count.
	ObjectProperties []LinkCount `json:"objectProperties"`
}

// PropertyCount is a property with its occurrence count.
type PropertyCount struct {
	IRI   string `json:"iri"`
	Count int    `json:"count"`
}

// LinkCount is an object property with its range class and count.
type LinkCount struct {
	IRI    string `json:"iri"`
	Target string `json:"target"`
	Count  int    `json:"count"`
}

// Extractor runs index extraction against a Client.
type Extractor struct {
	// PageSize bounds enumeration pages; it must not exceed the smallest
	// silent-truncation cap in the wild (1000 in our simulation).
	PageSize int
	// MaxClasses aborts extraction when an endpoint exposes more classes
	// than H-BOLD can visualize (0 = unlimited).
	MaxClasses int
}

// New returns an extractor with production defaults.
func New() *Extractor {
	return &Extractor{PageSize: 1000}
}

// Extract runs the full index extraction, trying the pattern strategies
// from the most to the least capable: full aggregates (GROUP BY),
// plain-COUNT ("mixed"), then pure enumeration with paging. The context
// reaches every query on the wire; canceling it aborts the run mid-page
// without trying further strategies.
func (e *Extractor) Extract(ctx context.Context, c endpoint.Client, url string, now time.Time) (*Index, error) {
	ix := &Index{Endpoint: url, ExtractedAt: now}

	if err := e.extractAggregate(ctx, c, ix); err == nil {
		ix.Strategy = "aggregate"
		e.fetchLabels(ctx, c, ix)
		return ix, nil
	} else if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	*ix = Index{Endpoint: url, ExtractedAt: now}
	if err := e.extractMixed(ctx, c, ix); err == nil {
		ix.Strategy = "mixed"
		e.fetchLabels(ctx, c, ix)
		return ix, nil
	} else if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	*ix = Index{Endpoint: url, ExtractedAt: now}
	if err := e.extractEnumerate(ctx, c, ix); err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("extraction: all strategies failed for %s: %w", url, err)
	}
	ix.Strategy = "enumerate"
	e.fetchLabels(ctx, c, ix)
	return ix, nil
}

// fetchLabels upgrades class display names with rdfs:label where the
// ontology provides one (preferring untagged or English labels). It is
// best effort: failures leave the IRI-derived local names in place.
func (e *Extractor) fetchLabels(ctx context.Context, c endpoint.Client, ix *Index) {
	if len(ix.Classes) == 0 {
		return
	}
	rs, err := endpoint.Stream(ctx, c, fmt.Sprintf(
		`SELECT ?c ?l WHERE { ?c <%s> ?l } LIMIT 10000`, rdf.RDFSLabel))
	if err != nil {
		return
	}
	defer rs.Close()
	// rank: plain literal > @en > any other language; first wins per rank
	rank := func(lang string) int {
		switch lang {
		case "":
			return 0
		case "en":
			return 1
		default:
			return 2
		}
	}
	labels := map[string]string{}
	best := map[string]int{}
	for row := range rs.All() {
		cls, lab := row["c"], row["l"]
		if !cls.IsIRI() || !lab.IsLiteral() || lab.Value == "" {
			continue
		}
		r := rank(lab.Lang)
		if cur, seen := best[cls.Value]; !seen || r < cur {
			labels[cls.Value] = lab.Value
			best[cls.Value] = r
		}
	}
	if rs.Err() != nil {
		return
	}
	for i := range ix.Classes {
		if l, ok := labels[ix.Classes[i].IRI]; ok && l != "" {
			ix.Classes[i].Label = l
		}
	}
}

// extractMixed handles endpoints that answer plain COUNT aggregates but
// reject GROUP BY: classes and properties are enumerated with DISTINCT
// paging, and each is counted with an ungrouped COUNT query.
func (e *Extractor) extractMixed(ctx context.Context, c endpoint.Client, ix *Index) error {
	page := e.PageSize
	if page <= 0 {
		page = 1000
	}
	res, err := c.Query(ctx, `SELECT (COUNT(?o) AS ?n) WHERE { ?s ?p ?o }`)
	if err != nil {
		return err
	}
	ix.Triples = intResult(res, "n")

	// full-corpus predicates: DISTINCT enumeration + one ungrouped COUNT
	// each, matching the strategy's capability profile
	preds, err := e.pageAll(ctx, c,
		`SELECT DISTINCT ?p WHERE { ?s ?p ?o } ORDER BY ?p`, "p", page)
	if err != nil {
		return err
	}
	ix.Predicates = make([]PropertyCount, 0, len(preds))
	for _, p := range preds {
		res, err := c.Query(ctx, fmt.Sprintf(
			`SELECT (COUNT(?o) AS ?n) WHERE { ?s <%s> ?o }`, p))
		if err != nil {
			return err
		}
		ix.Predicates = append(ix.Predicates, PropertyCount{IRI: p, Count: intResult(res, "n")})
	}

	classIRIs, err := e.pageAll(ctx, c,
		`SELECT DISTINCT ?c WHERE { ?s a ?c } ORDER BY ?c`, "c", page)
	if err != nil {
		return err
	}
	if e.MaxClasses > 0 && len(classIRIs) > e.MaxClasses {
		return fmt.Errorf("extraction: %d classes exceed limit %d", len(classIRIs), e.MaxClasses)
	}
	for _, cls := range classIRIs {
		res, err := c.Query(ctx, fmt.Sprintf(
			`SELECT (COUNT(?s) AS ?n) WHERE { ?s a <%s> }`, cls))
		if err != nil {
			return err
		}
		cnt := intResult(res, "n")
		ci := ClassIndex{IRI: cls, Label: rdf.NewIRI(cls).LocalName(), Instances: cnt}
		ix.Instances += cnt

		// datatype properties: DISTINCT enumeration + one COUNT each
		props, err := e.pageAll(ctx, c, fmt.Sprintf(
			`SELECT DISTINCT ?p WHERE { ?s a <%s> . ?s ?p ?o FILTER isLiteral(?o) } ORDER BY ?p`, cls), "p", page)
		if err != nil {
			return err
		}
		for _, p := range props {
			res, err := c.Query(ctx, fmt.Sprintf(
				`SELECT (COUNT(?o) AS ?n) WHERE { ?s a <%s> . ?s <%s> ?o FILTER isLiteral(?o) }`, cls, p))
			if err != nil {
				return err
			}
			ci.DataProperties = append(ci.DataProperties, PropertyCount{IRI: p, Count: intResult(res, "n")})
		}

		// object properties: DISTINCT (property, range class) pairs + COUNT
		type pd struct{ p, d string }
		var pairs []pd
		err = e.streamRows(ctx, c, fmt.Sprintf(
			`SELECT DISTINCT ?p ?d WHERE { ?s a <%s> . ?s ?p ?o . ?o a ?d } ORDER BY ?p ?d LIMIT %d`, cls, page),
			func(row sparqlBinding) {
				pairs = append(pairs, pd{row["p"].Value, row["d"].Value})
			})
		if err != nil {
			return err
		}
		for _, pair := range pairs {
			if pair.p == rdf.RDFType {
				continue
			}
			res3, err := c.Query(ctx, fmt.Sprintf(
				`SELECT (COUNT(?o) AS ?n) WHERE { ?s a <%s> . ?s <%s> ?o . ?o a <%s> }`, cls, pair.p, pair.d))
			if err != nil {
				return err
			}
			ci.ObjectProperties = append(ci.ObjectProperties, LinkCount{IRI: pair.p, Target: pair.d, Count: intResult(res3, "n")})
		}
		sortClassIndex(&ci)
		ix.Classes = append(ix.Classes, ci)
	}
	sortClasses(ix.Classes)
	return nil
}

// extractAggregate uses COUNT/GROUP BY queries.
func (e *Extractor) extractAggregate(ctx context.Context, c endpoint.Client, ix *Index) error {
	res, err := c.Query(ctx, `SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }`)
	if err != nil {
		return err
	}
	ix.Triples = intResult(res, "n")

	// full-corpus predicate partition: unlike the per-class property
	// queries below, ?s is untyped here, so predicates occurring only on
	// untyped subjects are captured too
	ix.Predicates = []PropertyCount{}
	err = e.streamRows(ctx, c, `SELECT ?p (COUNT(?o) AS ?n) WHERE { ?s ?p ?o } GROUP BY ?p`,
		func(row sparqlBinding) {
			ix.Predicates = append(ix.Predicates, PropertyCount{IRI: row["p"].Value, Count: bindingInt(row, "n")})
		})
	if err != nil {
		return err
	}
	sortPredicates(ix.Predicates)

	err = e.streamRows(ctx, c, `SELECT ?c (COUNT(?s) AS ?n) WHERE { ?s a ?c } GROUP BY ?c ORDER BY DESC(?n)`,
		func(row sparqlBinding) {
			cls := row["c"]
			n := bindingInt(row, "n")
			ix.Classes = append(ix.Classes, ClassIndex{
				IRI: cls.Value, Label: cls.LocalName(), Instances: n,
			})
			ix.Instances += n
		})
	if err != nil {
		return err
	}
	if e.MaxClasses > 0 && len(ix.Classes) > e.MaxClasses {
		return fmt.Errorf("extraction: %d classes exceed limit %d", len(ix.Classes), e.MaxClasses)
	}

	for i := range ix.Classes {
		ci := &ix.Classes[i]
		// datatype properties
		err = e.streamRows(ctx, c, fmt.Sprintf(
			`SELECT ?p (COUNT(?o) AS ?n) WHERE { ?s a <%s> . ?s ?p ?o FILTER isLiteral(?o) } GROUP BY ?p`, ci.IRI),
			func(row sparqlBinding) {
				ci.DataProperties = append(ci.DataProperties, PropertyCount{
					IRI: row["p"].Value, Count: bindingInt(row, "n"),
				})
			})
		if err != nil {
			return err
		}
		// object properties with their range classes
		err = e.streamRows(ctx, c, fmt.Sprintf(
			`SELECT ?p ?d (COUNT(?o) AS ?n) WHERE { ?s a <%s> . ?s ?p ?o . ?o a ?d } GROUP BY ?p ?d`, ci.IRI),
			func(row sparqlBinding) {
				if row["p"].Value == rdf.RDFType {
					return
				}
				ci.ObjectProperties = append(ci.ObjectProperties, LinkCount{
					IRI: row["p"].Value, Target: row["d"].Value, Count: bindingInt(row, "n"),
				})
			})
		if err != nil {
			return err
		}
		sortClassIndex(ci)
	}
	sortClasses(ix.Classes)
	return nil
}

// extractEnumerate pages DISTINCT enumerations and counts client-side.
func (e *Extractor) extractEnumerate(ctx context.Context, c endpoint.Client, ix *Index) error {
	page := e.PageSize
	if page <= 0 {
		page = 1000
	}

	// distinct classes
	classIRIs, err := e.pageAll(ctx, c,
		`SELECT DISTINCT ?c WHERE { ?s a ?c } ORDER BY ?c`, "c", page)
	if err != nil {
		return err
	}
	if e.MaxClasses > 0 && len(classIRIs) > e.MaxClasses {
		return fmt.Errorf("extraction: %d classes exceed limit %d", len(classIRIs), e.MaxClasses)
	}

	ix.Classes = nil
	ix.Instances = 0
	ix.Triples = 0

	// total triples and full-corpus predicate counts off one paged scan
	// of all statements — every triple passes through here, so the
	// predicate set is complete regardless of subject typing
	predCounts := map[string]int{}
	off := 0
	for {
		got := 0
		err := e.streamRows(ctx, c, fmt.Sprintf(
			`SELECT ?s ?p ?o WHERE { ?s ?p ?o } ORDER BY ?s ?p ?o LIMIT %d OFFSET %d`, page, off),
			func(row sparqlBinding) {
				got++
				predCounts[row["p"].Value]++
			})
		if err != nil {
			return err
		}
		ix.Triples += got
		if got < page {
			break
		}
		off += page
	}
	ix.Predicates = make([]PropertyCount, 0, len(predCounts))
	for p, n := range predCounts {
		ix.Predicates = append(ix.Predicates, PropertyCount{IRI: p, Count: n})
	}
	sortPredicates(ix.Predicates)

	for _, cls := range classIRIs {
		t := rdf.NewIRI(cls)
		cnt, err := e.pageCount(ctx, c, fmt.Sprintf(
			`SELECT ?s WHERE { ?s a <%s> } ORDER BY ?s`, cls), page)
		if err != nil {
			return err
		}
		ci := ClassIndex{IRI: cls, Label: t.LocalName(), Instances: cnt}
		ix.Instances += cnt

		// properties: enumerate triples of typed subjects page by page and
		// classify objects client-side, folding each row into the counters
		// as it arrives off the stream
		dataCounts := map[string]int{}
		linkCounts := map[[2]string]int{}
		offset := 0
		for {
			got := 0
			err := e.streamRows(ctx, c, fmt.Sprintf(
				`SELECT ?p ?o WHERE { ?s a <%s> . ?s ?p ?o } ORDER BY ?p ?o LIMIT %d OFFSET %d`,
				cls, page, offset),
				func(row sparqlBinding) {
					got++
					p := row["p"].Value
					if p == rdf.RDFType {
						return
					}
					o := row["o"]
					if o.IsLiteral() {
						dataCounts[p]++
					} else if o.IsIRI() {
						// resolve the object's class with a spot query (ASK per
						// candidate would be costly; instead fetch its types)
						linkCounts[[2]string{p, o.Value}]++
					}
				})
			if err != nil {
				return err
			}
			if got < page {
				break
			}
			offset += page
		}
		for p, n := range dataCounts {
			ci.DataProperties = append(ci.DataProperties, PropertyCount{IRI: p, Count: n})
		}
		// aggregate object links by target class: query each distinct
		// object's type once, caching
		typeCache := map[string]string{}
		linkByClass := map[[2]string]int{}
		for key, n := range linkCounts {
			p, obj := key[0], key[1]
			target, ok := typeCache[obj]
			if !ok {
				res, err := c.Query(ctx, fmt.Sprintf(
					`SELECT ?c WHERE { <%s> a ?c } ORDER BY ?c LIMIT 1`, obj))
				if err != nil {
					return err
				}
				if len(res.Rows) > 0 {
					target = res.Rows[0]["c"].Value
				}
				typeCache[obj] = target
			}
			if target != "" {
				linkByClass[[2]string{p, target}] += n
			}
		}
		for key, n := range linkByClass {
			ci.ObjectProperties = append(ci.ObjectProperties, LinkCount{IRI: key[0], Target: key[1], Count: n})
		}
		sortClassIndex(&ci)
		ix.Classes = append(ix.Classes, ci)
	}
	sortClasses(ix.Classes)
	return nil
}

// streamRows runs one query as a stream and folds every row through fn,
// never holding more than the row in flight.
func (e *Extractor) streamRows(ctx context.Context, c endpoint.Client, q string, fn func(sparqlBinding)) error {
	rs, err := endpoint.Stream(ctx, c, q)
	if err != nil {
		return err
	}
	defer rs.Close()
	for row := range rs.All() {
		fn(row)
	}
	return rs.Err()
}

// pageAll collects a single variable across LIMIT/OFFSET pages, consuming
// each page incrementally.
func (e *Extractor) pageAll(ctx context.Context, c endpoint.Client, q, v string, page int) ([]string, error) {
	var out []string
	offset := 0
	for {
		got := 0
		err := e.streamRows(ctx, c, fmt.Sprintf("%s LIMIT %d OFFSET %d", q, page, offset), func(row sparqlBinding) {
			out = append(out, row[v].Value)
			got++
		})
		if err != nil {
			return nil, err
		}
		if got < page {
			return out, nil
		}
		offset += page
	}
}

// pageCount counts result rows across pages without materializing them.
func (e *Extractor) pageCount(ctx context.Context, c endpoint.Client, q string, page int) (int, error) {
	n := 0
	offset := 0
	for {
		got := 0
		err := e.streamRows(ctx, c, fmt.Sprintf("%s LIMIT %d OFFSET %d", q, page, offset), func(sparqlBinding) {
			got++
		})
		if err != nil {
			return 0, err
		}
		n += got
		if got < page {
			return n, nil
		}
		offset += page
	}
}

func sortPredicates(ps []PropertyCount) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].IRI < ps[j].IRI })
}

func sortClasses(cs []ClassIndex) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Instances != cs[j].Instances {
			return cs[i].Instances > cs[j].Instances
		}
		return cs[i].IRI < cs[j].IRI
	})
}

func sortClassIndex(ci *ClassIndex) {
	sort.Slice(ci.DataProperties, func(i, j int) bool {
		return ci.DataProperties[i].IRI < ci.DataProperties[j].IRI
	})
	sort.Slice(ci.ObjectProperties, func(i, j int) bool {
		a, b := ci.ObjectProperties[i], ci.ObjectProperties[j]
		if a.IRI != b.IRI {
			return a.IRI < b.IRI
		}
		return a.Target < b.Target
	})
}

func intResult(res *sparqlResult, v string) int {
	if len(res.Rows) == 0 {
		return 0
	}
	return bindingInt(res.Rows[0], v)
}

func bindingInt(row sparqlBinding, v string) int {
	t, ok := row[v]
	if !ok {
		return 0
	}
	n, _ := t.Int()
	return int(n)
}
