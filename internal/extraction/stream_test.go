package extraction

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/endpoint"
	"repro/internal/sparql"
	"repro/internal/synth"
)

// cancelAfterRows wraps a client and cancels the run's context after n
// rows have crossed the simulated wire — a scheduler Stop or client
// disconnect landing in the middle of an enumeration page.
type cancelAfterRows struct {
	c      endpoint.Client
	cancel context.CancelFunc
	left   int
}

func (cc *cancelAfterRows) Query(ctx context.Context, q string) (*sparql.Result, error) {
	rs, err := cc.Stream(ctx, q)
	if err != nil {
		return nil, err
	}
	return rs.Collect()
}

func (cc *cancelAfterRows) Stream(ctx context.Context, q string) (*sparql.RowSeq, error) {
	rs, err := endpoint.Stream(ctx, cc.c, q)
	if err != nil {
		return nil, err
	}
	return rs.Tap(func(sparql.Binding) {
		cc.left--
		if cc.left == 0 {
			cc.cancel()
		}
	}), nil
}

// TestExtractAbortsMidPageOnCancel: once the context dies, extraction
// must stop inside the page it is consuming — returning the context's
// error, not a strategies-failed error and not a (partial) index.
func TestExtractAbortsMidPageOnCancel(t *testing.T) {
	st := synth.Generate(synth.Spec{Name: "cancelx", Classes: 5, Instances: 300, ObjectProps: 6, DataProps: 4, LinkFactor: 1, Seed: 9})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// NoAgg forces the stream-heavy enumeration strategy; the wrapper
	// kills the context 40 rows into it, far below any page boundary
	// (PageSize is 1000)
	c := &cancelAfterRows{
		c:      endpoint.NewRemote("x", "x", st, endpoint.ProfileNoAgg, nil, nil),
		cancel: cancel,
		left:   40,
	}
	ix, err := New().Extract(ctx, c, "sim://cancel", time.Now())
	if ix != nil {
		t.Fatalf("canceled extraction returned an index: %+v", ix)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if cc := c.left; cc > 0 {
		t.Fatalf("extraction ended after %d of 40 rows — cancel never fired", 40-cc)
	}
}

// TestExtractDeadline: a context deadline behaves like a cancel.
func TestExtractDeadline(t *testing.T) {
	st := synth.Generate(synth.Spec{Name: "deadline", Classes: 3, Instances: 50, ObjectProps: 4, DataProps: 2, LinkFactor: 1, Seed: 10})
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := New().Extract(ctx, endpoint.LocalClient{Store: st}, "sim://deadline", time.Now())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}
