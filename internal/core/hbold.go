// Package core is the H-BOLD facade: it wires the server layer (index
// extraction, Schema Summary and Cluster Schema computation, document
// storage, scheduling, crawling, manual insertion) to the presentation
// layer (dataset list, hierarchical exploration, visualization views) —
// the architecture of the paper's Figure 1.
package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/cluster"
	"repro/internal/crawler"
	"repro/internal/docstore"
	"repro/internal/endpoint"
	"repro/internal/extraction"
	"repro/internal/federation"
	"repro/internal/notify"
	"repro/internal/obs"
	"repro/internal/portal"
	"repro/internal/registry"
	"repro/internal/resilience"
	"repro/internal/sched"
	"repro/internal/schema"
	"repro/internal/snapcache"
	"repro/internal/store/disk"
	"repro/internal/update"
)

// Collection names in the document store (the MongoDB stand-in).
const (
	CollIndexes   = "indexes"
	CollSummaries = "summaries"
	CollClusters  = "clusters"
	CollRegistry  = "registry"
	CollDiffs     = "diffs"
)

// DefaultCacheBudget is the byte budget of the snapshot cache a fresh
// instance gets; cmd/hbold's -cache flag overrides it.
const DefaultCacheBudget int64 = 64 << 20

// HBOLD is the tool: one instance owns the endpoint registry, the
// document store and the processing pipeline.
type HBOLD struct {
	Registry  *registry.Registry
	DB        *docstore.DB
	Extractor *extraction.Extractor
	Outbox    *notify.Outbox
	Clock     clock.Clock
	// Seed drives community detection determinism.
	Seed int64
	// Algorithm selects the community detection method (default Louvain).
	Algorithm cluster.Algorithm
	// SchedulerConfig parameterizes the shared extraction scheduler; it
	// is consulted once, on the first Scheduler() call, so set it before
	// any scheduling method runs. The zero value gets sched defaults
	// plus this instance's Clock and a retry hook honoring the
	// registry's give-up policy.
	SchedulerConfig sched.Config
	// Cache is the versioned snapshot cache for the presentation read
	// path: Summary and ClusterSchema memoize decoded documents in it,
	// and internal/server additionally memoizes layout models and
	// rendered SVG. Entries are keyed by dataset generation, so a
	// successful re-extraction never serves stale data. New installs a
	// DefaultCacheBudget cache; replace it (before serving traffic) to
	// resize, or set snapcache.New(0) to disable caching.
	Cache *snapcache.Cache
	// Metrics is the process-lifetime observability registry: the
	// scheduler, the snapshot cache, federated queries, HTTP endpoint
	// clients and the query engine all account into it, and the server
	// renders it at GET /metrics. New installs one and registers the
	// cache families; subsystems join as they are created.
	Metrics *obs.Registry
	// Breakers is the process-wide circuit breaker set, one breaker per
	// endpoint URL, shared by every consumer of that endpoint: federated
	// fan-outs consult and feed it, and the extraction scheduler's
	// failure path feeds it too — an endpoint that keeps failing
	// extraction is held out of federated queries before they waste
	// requests on it. New installs a default-config set reporting into
	// Metrics; replace it (before traffic) to tune thresholds.
	Breakers *resilience.BreakerSet
	// RetryBudget is the process-wide retry budget every HTTP endpoint
	// client connected through Connect spends from, capping fleet-wide
	// retry amplification during a shared outage. New installs a
	// default-size budget; nil disables budgeting.
	RetryBudget *resilience.Budget
	// CorpusDir, when non-empty, turns on the persistent corpus tier:
	// every successful extraction also mirrors the endpoint's statement
	// set into a disk-backed store under this directory (one data dir
	// per endpoint), and a restarted instance serves SPARQL over the
	// reopened stores without re-extraction. Set it before the first
	// Process call; empty keeps the pipeline memory-only.
	CorpusDir string

	mu      sync.RWMutex
	clients map[string]endpoint.Client

	corpusMu sync.Mutex
	corpora  map[string]*disk.Store

	genMu       sync.RWMutex
	generations map[string]uint64

	// feed is the change feed ApplyUpdate publishes to; Changes exposes it.
	feed *update.Feed

	schedMu sync.Mutex
	sched   *sched.Scheduler
}

// New builds an H-BOLD instance over the given document store. A nil db
// gets a memory-only store; a nil ck uses the real clock.
func New(db *docstore.DB, ck clock.Clock) *HBOLD {
	if db == nil {
		db = docstore.MustOpenMem()
	}
	if ck == nil {
		ck = clock.Real{}
	}
	metrics := obs.NewRegistry()
	h := &HBOLD{
		Registry:    registry.New(registry.DefaultPolicy),
		DB:          db,
		Extractor:   extraction.New(),
		Outbox:      notify.NewOutbox(),
		Clock:       ck,
		Cache:       snapcache.New(DefaultCacheBudget),
		Metrics:     metrics,
		Breakers:    resilience.NewBreakerSet(resilience.BreakerConfig{Clock: ck}, metrics),
		RetryBudget: resilience.NewBudget(0, 0),
		clients:     make(map[string]endpoint.Client),
		generations: make(map[string]uint64),
		corpora:     make(map[string]*disk.Store),
		feed:        update.NewFeed(),
	}
	// read through h so a later Cache replacement is picked up by the
	// same metric series
	snapcache.Register(h.Metrics, func() snapcache.Stats { return h.Cache.Stats() })
	h.registerCorpusMetrics()
	return h
}

// Generation returns the dataset's extraction generation: 0 until the
// first successful extraction of this instance's lifetime, incremented
// by every subsequent success. The presentation layer keys snapshot
// cache entries and HTTP ETags on it, so a bump is what invalidates
// every materialized view of the dataset at once.
func (h *HBOLD) Generation(url string) uint64 {
	h.genMu.RLock()
	defer h.genMu.RUnlock()
	return h.generations[url]
}

// bumpGeneration records that a new extraction of url was persisted.
func (h *HBOLD) bumpGeneration(url string) {
	h.genMu.Lock()
	h.generations[url]++
	h.genMu.Unlock()
}

// snapKey addresses a materialized snapshot of url at its current
// generation.
func (h *HBOLD) snapKey(url, view, params string) snapcache.Key {
	return snapcache.Key{URL: url, Generation: h.Generation(url), View: view, Params: params}
}

// Connect associates a SPARQL client with an endpoint URL. In the
// deployed tool this is the HTTP connection to the public endpoint; in
// experiments it is a simulated remote.
func (h *HBOLD) Connect(url string, c endpoint.Client) {
	// HTTP clients join the process registry and the shared retry budget
	// unless the caller already pointed them at their own
	if hc, ok := c.(*endpoint.HTTPClient); ok {
		if hc.Metrics == nil {
			hc.Metrics = h.Metrics
		}
		if hc.Budget == nil {
			hc.Budget = h.RetryBudget
		}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.clients[url] = c
}

func (h *HBOLD) client(url string) (endpoint.Client, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	c, ok := h.clients[url]
	if !ok {
		return nil, fmt.Errorf("core: no client connected for %s", url)
	}
	return c, nil
}

// Process runs the full server-layer pipeline for one endpoint: index
// extraction, Schema Summary computation, Cluster Schema computation
// (server-side, per §3.2) and persistence. It records the outcome in the
// registry and sends the §3.4 notification when a submitter is waiting.
func (h *HBOLD) Process(url string) error {
	return h.process(context.Background(), url, true)
}

// process is the pipeline body. recordFail controls whether a failure
// is recorded in the registry here: direct Process calls record every
// failure, while the scheduler suppresses per-attempt recording and
// records once per job through its OnJobFailed hook — otherwise a few
// seconds of in-run retries would eat a give-up budget the §3.1 policy
// means to spend one day at a time. The context reaches every SPARQL
// query on the wire (a scheduler Stop aborts an extraction mid-page);
// a canceled pipeline is not an endpoint failure and records nothing.
func (h *HBOLD) process(ctx context.Context, url string, recordFail bool) error {
	now := h.Clock.Now()
	c, err := h.client(url)
	if err != nil {
		// unconnectable endpoints go through the same failure path as
		// extraction errors: the registry attempt is recorded and a
		// waiting §3.4 submitter is notified
		if recordFail {
			h.recordFailure(url, now, err)
		}
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	ix, err := h.Extractor.Extract(ctx, c, url, now)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			// a canceled run says nothing about the endpoint
			return cerr
		}
		if recordFail {
			h.recordFailure(url, now, err)
		}
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	s := schema.Build(ix)
	cs, err := cluster.Build(s, cluster.Options{Algorithm: h.Algorithm, Seed: h.Seed})
	if err != nil {
		if recordFail {
			h.recordFailure(url, now, err)
		}
		return err
	}
	// record what this refresh changed (§3.1: sources evolve, which is
	// why extraction re-runs at all)
	if old, err := h.Summary(url); err == nil {
		if d := schema.Compare(old, s); !d.Unchanged() {
			if err := h.DB.Collection(CollDiffs).Put(url, d); err != nil {
				return err
			}
		}
	}
	if err := h.DB.Collection(CollIndexes).Put(url, ix); err != nil {
		return err
	}
	if err := h.DB.Collection(CollSummaries).Put(url, s); err != nil {
		return err
	}
	if err := h.DB.Collection(CollClusters).Put(url, cs); err != nil {
		return err
	}
	// with a persistent corpus tier configured, mirror the statement set
	// too — page-at-a-time, each page one durable batch — so a restart
	// serves this dataset's queries without re-extraction
	if h.CorpusDir != "" {
		if err := h.mirrorCorpus(ctx, url, c); err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			if recordFail {
				h.recordFailure(url, now, err)
			}
			return err
		}
	}
	// the persisted state changed: bump the generation so every cached
	// snapshot and ETag of this dataset stops validating
	h.bumpGeneration(url)
	if h.Registry.Has(url) {
		if err := h.Registry.RecordSuccess(url, now); err != nil {
			return err
		}
	} else {
		h.Registry.Add(registry.Entry{URL: url, Title: url, Source: registry.SourceManual, AddedAt: now})
		h.Registry.RecordSuccess(url, now)
	}
	if email, ok := h.Registry.TakePendingEmail(url); ok {
		h.Outbox.Send(email, "H-BOLD: extraction completed",
			notify.SuccessBody(url, s.NumClasses(), s.TotalInstances), now)
	}
	return nil
}

func (h *HBOLD) recordFailure(url string, now time.Time, cause error) {
	if h.Registry.Has(url) {
		h.Registry.RecordFailure(url, now)
		e, _ := h.Registry.Get(url)
		// a manual submitter is notified on the first failure too
		if e.PendingEmail != "" {
			if email, ok := h.Registry.TakePendingEmail(url); ok {
				h.Outbox.Send(email, "H-BOLD: extraction failed",
					notify.FailureBody(url, cause), now)
			}
		}
	}
}

// Scheduler returns the shared extraction scheduler, creating and
// starting it on first use. Its runner is the Process pipeline; its
// configuration comes from SchedulerConfig, with the instance clock
// filled in. The registry's §3.1 give-up policy is enforced by
// Registry.Due (which stops listing endpoints past the threshold)
// together with once-per-job failure recording, so no Retryable hook
// is needed for it.
func (h *HBOLD) Scheduler() *sched.Scheduler {
	h.schedMu.Lock()
	defer h.schedMu.Unlock()
	if h.sched == nil {
		cfg := h.SchedulerConfig
		if cfg.Clock == nil {
			cfg.Clock = h.Clock
		}
		if cfg.Metrics == nil {
			cfg.Metrics = h.Metrics
		}
		if cfg.OnJobFailed == nil {
			cfg.OnJobFailed = func(url string, err error) {
				if errors.Is(err, context.Canceled) {
					// a shutdown abort says nothing about the endpoint
					return
				}
				h.recordFailure(url, h.Clock.Now(), err)
				// extraction failures feed the shared breaker: a source
				// failing scheduled refreshes is held out of federated
				// queries too
				h.Breakers.For(url).Failure()
			}
		}
		if cfg.OnJobSucceeded == nil {
			cfg.OnJobSucceeded = func(url string) {
				// the runner already bumped the generation; eagerly free
				// the previous generation's snapshots instead of letting
				// them age out of the LRU
				h.Cache.InvalidateBefore(url, h.Generation(url))
				h.Breakers.For(url).Success()
			}
		}
		// the runner suppresses per-attempt failure recording; the
		// OnJobFailed hook above records once per job instead
		h.sched = sched.New(cfg, func(ctx context.Context, url string) error {
			return h.process(ctx, url, false)
		})
		h.sched.Start(context.Background())
	}
	return h.sched
}

// Close stops the extraction scheduler, if one was started — running
// jobs finish, queued jobs are discarded — then flushes and closes the
// persistent corpus stores. The rest of the instance (registry, store,
// presentation reads) remains usable.
func (h *HBOLD) Close() {
	if s := h.peekScheduler(); s != nil {
		s.Stop()
	}
	h.closeCorpora()
}

// peekScheduler returns the scheduler only if one has been started.
func (h *HBOLD) peekScheduler() *sched.Scheduler {
	h.schedMu.Lock()
	defer h.schedMu.Unlock()
	return h.sched
}

// SchedulerJobs returns the scheduler's job snapshot without starting
// a scheduler as a side effect: before any scheduling has happened the
// list is empty. The read-only observability API uses it.
func (h *HBOLD) SchedulerJobs() []sched.Job {
	if s := h.peekScheduler(); s != nil {
		return s.Jobs()
	}
	return []sched.Job{}
}

// SchedulerMetrics is the side-effect-free counterpart of
// Scheduler().Metrics() for the observability API.
func (h *HBOLD) SchedulerMetrics() sched.Metrics {
	if s := h.peekScheduler(); s != nil {
		return s.Metrics()
	}
	return sched.ZeroMetrics()
}

// submitDue enqueues every endpoint the §3.1 policy marks as due.
// Manual §3.4 submissions still awaiting their notification are
// enqueued ahead of routine refreshes.
func (h *HBOLD) submitDue() []*sched.Ticket {
	s := h.Scheduler()
	var tickets []*sched.Ticket
	for _, url := range h.Registry.Due(h.Clock.Now()) {
		pri := sched.Routine
		if e, known := h.Registry.Get(url); known && e.PendingEmail != "" {
			pri = sched.Manual
		}
		if t, err := s.Submit(url, pri); err == nil {
			tickets = append(tickets, t)
		}
	}
	return tickets
}

// SubmitDue enqueues every due endpoint on the shared scheduler without
// waiting for completion and returns the number of jobs enqueued. The
// daemon's refresh tick and the /api/refresh endpoint use it; watch
// progress via the scheduler's job and metrics snapshots.
func (h *HBOLD) SubmitDue() int {
	return len(h.submitDue())
}

// RunDueConcurrent processes every due endpoint on the shared worker
// pool and blocks until all of them finish (or ctx is done, at which
// point unfinished jobs count as failures). It returns the number of
// endpoints processed successfully and the number that failed.
func (h *HBOLD) RunDueConcurrent(ctx context.Context) (ok, failed int) {
	for _, t := range h.submitDue() {
		if st, err := t.Wait(ctx); st == sched.StateSucceeded && err == nil {
			ok++
		} else {
			failed++
		}
	}
	return ok, failed
}

// RunDue processes every endpoint the §3.1 policy marks as due; it is
// the body of the daily server-layer job, now a thin synchronous
// wrapper over the concurrent scheduler. It returns the number of
// endpoints processed successfully and the number that failed.
func (h *HBOLD) RunDue() (ok, failed int) {
	return h.RunDueConcurrent(context.Background())
}

// CrawlPortals runs the §3.3 crawler over the portals and merges the
// discovered endpoints into the registry.
func (h *HBOLD) CrawlPortals(ctx context.Context, portals []*portal.Portal) (*crawler.Report, error) {
	return crawler.Crawl(ctx, portals, h.Registry, h.Clock.Now())
}

// EndpointClient returns the SPARQL client connected for url, for
// callers that run their own queries against the dataset's endpoint —
// the server's streaming /api/query route and the query builder UI.
func (h *HBOLD) EndpointClient(url string) (endpoint.Client, error) {
	return h.client(url)
}

// Federation builds a federated client over the connected endpoints: one
// endpoint.Source per URL (every connected endpoint when urls is empty),
// carrying the dataset's current extraction generation so the
// federation's index pruning knows which sources have a usable index,
// with index lookups answered from this instance's document store. The
// returned client implements endpoint.Client/Streamer like any single
// endpoint; unavailable members are routed around rather than failing
// the whole query. Build a fresh federation per request or hold one —
// it is safe for concurrent queries, but source metadata (generations)
// is a snapshot of construction time.
func (h *HBOLD) Federation(urls []string, policy federation.Policy) (*federation.Client, error) {
	if len(urls) == 0 {
		h.mu.RLock()
		for u := range h.clients {
			urls = append(urls, u)
		}
		h.mu.RUnlock()
		sort.Strings(urls)
	}
	if len(urls) == 0 {
		return nil, errors.New("core: no endpoints connected to federate over")
	}
	sources := make([]*endpoint.Source, 0, len(urls))
	for _, u := range urls {
		c, err := h.client(u)
		if err != nil {
			return nil, err
		}
		src := endpoint.NewSource(u, u, c)
		src.Cost = endpoint.DefaultCost
		src.Generation = h.Generation(u)
		if r, ok := c.(*endpoint.Remote); ok {
			src.Name, src.Cost, src.Up = r.Name, r.Cost, r.Up
		}
		// the registry title is the curated display name; it outranks
		// the simulation-layer name when both exist
		if e, ok := h.Registry.Get(u); ok && e.Title != "" {
			src.Name = e.Title
		}
		src.Breaker = h.Breakers.For(u)
		sources = append(sources, src)
	}
	f := federation.New(sources...)
	f.Policy = policy
	f.SkipUnavailable = true
	f.Hedge = true
	f.Lookup = h.Index
	// per-client SourceStats stay instance-local; the registry series
	// they mirror into outlive any one federation
	f.Metrics = h.Metrics
	f.Clock = h.Clock
	return f, nil
}

// SubmitEndpoint implements the §3.4 manual insertion: the user provides
// the endpoint URL and an e-mail address for the completion notification.
func (h *HBOLD) SubmitEndpoint(url, title, email string) error {
	return h.Registry.Submit(url, title, email, h.Clock.Now())
}

// --- presentation layer reads ---

// DatasetInfo is one row of the dataset list.
type DatasetInfo struct {
	URL            string `json:"url"`
	Title          string `json:"title"`
	Classes        int    `json:"classes"`
	Instances      int    `json:"instances"`
	Triples        int    `json:"triples"`
	Clusters       int    `json:"clusters"`
	LastExtraction string `json:"lastExtraction"`
}

// Datasets lists the indexed datasets, sorted by URL — the presentation
// layer's entry screen.
func (h *HBOLD) Datasets() []DatasetInfo {
	var out []DatasetInfo
	for _, e := range h.Registry.Entries() {
		if !e.Indexed {
			continue
		}
		s, err := h.Summary(e.URL)
		if err != nil {
			continue
		}
		clusters := 0
		if cs, err := h.ClusterSchema(e.URL); err == nil {
			clusters = cs.NumClusters()
		}
		out = append(out, DatasetInfo{
			URL: e.URL, Title: e.Title,
			Classes: s.NumClasses(), Instances: s.TotalInstances,
			Triples: s.Triples, Clusters: clusters,
			LastExtraction: e.LastSuccess.Format("2006-01-02"),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// Summary loads the stored Schema Summary of a dataset, memoized in
// the snapshot cache for the current generation (the stored JSON size
// stands in for the decoded footprint). The returned value is shared
// across callers and must be treated as immutable.
func (h *HBOLD) Summary(url string) (*schema.Summary, error) {
	v, err := h.Cache.GetOrCompute(h.snapKey(url, "core:summary", ""), func() (any, int64, error) {
		raw, err := h.DB.Collection(CollSummaries).GetRaw(url)
		if err != nil {
			return nil, 0, err
		}
		var s schema.Summary
		if err := json.Unmarshal(raw, &s); err != nil {
			return nil, 0, err
		}
		// the cached value is shared across goroutines: build the lazy
		// lookup index now, while we are the only holder
		s.Reindex()
		return &s, int64(len(raw)), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*schema.Summary), nil
}

// ClusterSchema loads the stored (precomputed, §3.2) Cluster Schema,
// memoized like Summary. The returned value is shared across callers
// and must be treated as immutable.
func (h *HBOLD) ClusterSchema(url string) (*cluster.Schema, error) {
	v, err := h.Cache.GetOrCompute(h.snapKey(url, "core:cluster", ""), func() (any, int64, error) {
		raw, err := h.DB.Collection(CollClusters).GetRaw(url)
		if err != nil {
			return nil, 0, err
		}
		var cs cluster.Schema
		if err := json.Unmarshal(raw, &cs); err != nil {
			return nil, 0, err
		}
		return &cs, int64(len(raw)), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*cluster.Schema), nil
}

// ClusterSchemaOnTheFly recomputes the Cluster Schema from the stored
// Schema Summary, as the pre-§3.2 versions of the tool did on every user
// click. It exists for the E2 experiment comparing the two paths.
func (h *HBOLD) ClusterSchemaOnTheFly(url string) (*cluster.Schema, error) {
	s, err := h.Summary(url)
	if err != nil {
		return nil, err
	}
	return cluster.Build(s, cluster.Options{Algorithm: h.Algorithm, Seed: h.Seed})
}

// Explore starts a presentation-layer exploration session on a dataset,
// focused on a class (Figure 2 step 2).
func (h *HBOLD) Explore(url, focusIRI string) (*schema.Exploration, error) {
	s, err := h.Summary(url)
	if err != nil {
		return nil, err
	}
	return schema.NewExploration(s, focusIRI)
}

// LastDiff returns the schema change recorded by the most recent
// re-extraction of the dataset, if any refresh changed anything.
func (h *HBOLD) LastDiff(url string) (*schema.Diff, bool) {
	var d schema.Diff
	if err := h.DB.Collection(CollDiffs).Get(url, &d); err != nil {
		return nil, false
	}
	return &d, true
}

// SaveState persists the endpoint registry into the document store and
// flushes the store to disk (when file-backed), so a restarted instance
// resumes with the same catalog and schedule state.
func (h *HBOLD) SaveState() error {
	if err := h.DB.Collection(CollRegistry).Put("entries", h.Registry.Entries()); err != nil {
		return err
	}
	return h.DB.Flush()
}

// LoadState restores the endpoint registry persisted by SaveState. A
// missing snapshot is not an error (fresh instance).
func (h *HBOLD) LoadState() error {
	var entries []registry.Entry
	err := h.DB.Collection(CollRegistry).Get("entries", &entries)
	if err != nil {
		if errors.Is(err, docstore.ErrNotFound) {
			return nil
		}
		return err
	}
	h.Registry.Restore(entries)
	return nil
}

// Index loads the stored extraction index of a dataset.
func (h *HBOLD) Index(url string) (*extraction.Index, error) {
	var ix extraction.Index
	if err := h.DB.Collection(CollIndexes).Get(url, &ix); err != nil {
		return nil, err
	}
	return &ix, nil
}
