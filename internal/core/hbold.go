// Package core is the H-BOLD facade: it wires the server layer (index
// extraction, Schema Summary and Cluster Schema computation, document
// storage, scheduling, crawling, manual insertion) to the presentation
// layer (dataset list, hierarchical exploration, visualization views) —
// the architecture of the paper's Figure 1.
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/cluster"
	"repro/internal/crawler"
	"repro/internal/docstore"
	"repro/internal/endpoint"
	"repro/internal/extraction"
	"repro/internal/notify"
	"repro/internal/portal"
	"repro/internal/registry"
	"repro/internal/schema"
)

// Collection names in the document store (the MongoDB stand-in).
const (
	CollIndexes   = "indexes"
	CollSummaries = "summaries"
	CollClusters  = "clusters"
	CollRegistry  = "registry"
	CollDiffs     = "diffs"
)

// HBOLD is the tool: one instance owns the endpoint registry, the
// document store and the processing pipeline.
type HBOLD struct {
	Registry  *registry.Registry
	DB        *docstore.DB
	Extractor *extraction.Extractor
	Outbox    *notify.Outbox
	Clock     clock.Clock
	// Seed drives community detection determinism.
	Seed int64
	// Algorithm selects the community detection method (default Louvain).
	Algorithm cluster.Algorithm

	mu      sync.RWMutex
	clients map[string]endpoint.Client
}

// New builds an H-BOLD instance over the given document store. A nil db
// gets a memory-only store; a nil ck uses the real clock.
func New(db *docstore.DB, ck clock.Clock) *HBOLD {
	if db == nil {
		db = docstore.MustOpenMem()
	}
	if ck == nil {
		ck = clock.Real{}
	}
	return &HBOLD{
		Registry:  registry.New(registry.DefaultPolicy),
		DB:        db,
		Extractor: extraction.New(),
		Outbox:    notify.NewOutbox(),
		Clock:     ck,
		clients:   make(map[string]endpoint.Client),
	}
}

// Connect associates a SPARQL client with an endpoint URL. In the
// deployed tool this is the HTTP connection to the public endpoint; in
// experiments it is a simulated remote.
func (h *HBOLD) Connect(url string, c endpoint.Client) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.clients[url] = c
}

func (h *HBOLD) client(url string) (endpoint.Client, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	c, ok := h.clients[url]
	if !ok {
		return nil, fmt.Errorf("core: no client connected for %s", url)
	}
	return c, nil
}

// Process runs the full server-layer pipeline for one endpoint: index
// extraction, Schema Summary computation, Cluster Schema computation
// (server-side, per §3.2) and persistence. It records the outcome in the
// registry and sends the §3.4 notification when a submitter is waiting.
func (h *HBOLD) Process(url string) error {
	now := h.Clock.Now()
	c, err := h.client(url)
	if err != nil {
		return err
	}
	ix, err := h.Extractor.Extract(c, url, now)
	if err != nil {
		h.recordFailure(url, now, err)
		return err
	}
	s := schema.Build(ix)
	cs, err := cluster.Build(s, cluster.Options{Algorithm: h.Algorithm, Seed: h.Seed})
	if err != nil {
		h.recordFailure(url, now, err)
		return err
	}
	// record what this refresh changed (§3.1: sources evolve, which is
	// why extraction re-runs at all)
	if old, err := h.Summary(url); err == nil {
		if d := schema.Compare(old, s); !d.Unchanged() {
			if err := h.DB.Collection(CollDiffs).Put(url, d); err != nil {
				return err
			}
		}
	}
	if err := h.DB.Collection(CollIndexes).Put(url, ix); err != nil {
		return err
	}
	if err := h.DB.Collection(CollSummaries).Put(url, s); err != nil {
		return err
	}
	if err := h.DB.Collection(CollClusters).Put(url, cs); err != nil {
		return err
	}
	if h.Registry.Has(url) {
		if err := h.Registry.RecordSuccess(url, now); err != nil {
			return err
		}
	} else {
		h.Registry.Add(registry.Entry{URL: url, Title: url, Source: registry.SourceManual, AddedAt: now})
		h.Registry.RecordSuccess(url, now)
	}
	if email, ok := h.Registry.TakePendingEmail(url); ok {
		h.Outbox.Send(email, "H-BOLD: extraction completed",
			notify.SuccessBody(url, s.NumClasses(), s.TotalInstances), now)
	}
	return nil
}

func (h *HBOLD) recordFailure(url string, now time.Time, cause error) {
	if h.Registry.Has(url) {
		h.Registry.RecordFailure(url, now)
		e, _ := h.Registry.Get(url)
		// a manual submitter is notified on the first failure too
		if e.PendingEmail != "" {
			if email, ok := h.Registry.TakePendingEmail(url); ok {
				h.Outbox.Send(email, "H-BOLD: extraction failed",
					notify.FailureBody(url, cause), now)
			}
		}
	}
}

// RunDue processes every endpoint the §3.1 policy marks as due; it is
// the body of the daily server-layer job. It returns the number of
// endpoints processed successfully and the number that failed.
func (h *HBOLD) RunDue() (ok, failed int) {
	for _, url := range h.Registry.Due(h.Clock.Now()) {
		if _, err := h.client(url); err != nil {
			// endpoints with no connectable client count as failures
			h.Registry.RecordFailure(url, h.Clock.Now())
			failed++
			continue
		}
		if err := h.Process(url); err != nil {
			failed++
		} else {
			ok++
		}
	}
	return ok, failed
}

// CrawlPortals runs the §3.3 crawler over the portals and merges the
// discovered endpoints into the registry.
func (h *HBOLD) CrawlPortals(portals []*portal.Portal) (*crawler.Report, error) {
	return crawler.Crawl(portals, h.Registry, h.Clock.Now())
}

// SubmitEndpoint implements the §3.4 manual insertion: the user provides
// the endpoint URL and an e-mail address for the completion notification.
func (h *HBOLD) SubmitEndpoint(url, title, email string) error {
	return h.Registry.Submit(url, title, email, h.Clock.Now())
}

// --- presentation layer reads ---

// DatasetInfo is one row of the dataset list.
type DatasetInfo struct {
	URL            string `json:"url"`
	Title          string `json:"title"`
	Classes        int    `json:"classes"`
	Instances      int    `json:"instances"`
	Triples        int    `json:"triples"`
	Clusters       int    `json:"clusters"`
	LastExtraction string `json:"lastExtraction"`
}

// Datasets lists the indexed datasets, sorted by URL — the presentation
// layer's entry screen.
func (h *HBOLD) Datasets() []DatasetInfo {
	var out []DatasetInfo
	for _, e := range h.Registry.Entries() {
		if !e.Indexed {
			continue
		}
		var s schema.Summary
		if err := h.DB.Collection(CollSummaries).Get(e.URL, &s); err != nil {
			continue
		}
		var cs cluster.Schema
		clusters := 0
		if err := h.DB.Collection(CollClusters).Get(e.URL, &cs); err == nil {
			clusters = cs.NumClusters()
		}
		out = append(out, DatasetInfo{
			URL: e.URL, Title: e.Title,
			Classes: s.NumClasses(), Instances: s.TotalInstances,
			Triples: s.Triples, Clusters: clusters,
			LastExtraction: e.LastSuccess.Format("2006-01-02"),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// Summary loads the stored Schema Summary of a dataset.
func (h *HBOLD) Summary(url string) (*schema.Summary, error) {
	var s schema.Summary
	if err := h.DB.Collection(CollSummaries).Get(url, &s); err != nil {
		return nil, err
	}
	return &s, nil
}

// ClusterSchema loads the stored (precomputed, §3.2) Cluster Schema.
func (h *HBOLD) ClusterSchema(url string) (*cluster.Schema, error) {
	var cs cluster.Schema
	if err := h.DB.Collection(CollClusters).Get(url, &cs); err != nil {
		return nil, err
	}
	return &cs, nil
}

// ClusterSchemaOnTheFly recomputes the Cluster Schema from the stored
// Schema Summary, as the pre-§3.2 versions of the tool did on every user
// click. It exists for the E2 experiment comparing the two paths.
func (h *HBOLD) ClusterSchemaOnTheFly(url string) (*cluster.Schema, error) {
	s, err := h.Summary(url)
	if err != nil {
		return nil, err
	}
	return cluster.Build(s, cluster.Options{Algorithm: h.Algorithm, Seed: h.Seed})
}

// Explore starts a presentation-layer exploration session on a dataset,
// focused on a class (Figure 2 step 2).
func (h *HBOLD) Explore(url, focusIRI string) (*schema.Exploration, error) {
	s, err := h.Summary(url)
	if err != nil {
		return nil, err
	}
	return schema.NewExploration(s, focusIRI)
}

// LastDiff returns the schema change recorded by the most recent
// re-extraction of the dataset, if any refresh changed anything.
func (h *HBOLD) LastDiff(url string) (*schema.Diff, bool) {
	var d schema.Diff
	if err := h.DB.Collection(CollDiffs).Get(url, &d); err != nil {
		return nil, false
	}
	return &d, true
}

// SaveState persists the endpoint registry into the document store and
// flushes the store to disk (when file-backed), so a restarted instance
// resumes with the same catalog and schedule state.
func (h *HBOLD) SaveState() error {
	if err := h.DB.Collection(CollRegistry).Put("entries", h.Registry.Entries()); err != nil {
		return err
	}
	return h.DB.Flush()
}

// LoadState restores the endpoint registry persisted by SaveState. A
// missing snapshot is not an error (fresh instance).
func (h *HBOLD) LoadState() error {
	var entries []registry.Entry
	err := h.DB.Collection(CollRegistry).Get("entries", &entries)
	if err != nil {
		if errors.Is(err, docstore.ErrNotFound) {
			return nil
		}
		return err
	}
	h.Registry.Restore(entries)
	return nil
}

// Index loads the stored extraction index of a dataset.
func (h *HBOLD) Index(url string) (*extraction.Index, error) {
	var ix extraction.Index
	if err := h.DB.Collection(CollIndexes).Get(url, &ix); err != nil {
		return nil, err
	}
	return &ix, nil
}
