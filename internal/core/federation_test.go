package core

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/clock"
	"repro/internal/docstore"
	"repro/internal/endpoint"
	"repro/internal/federation"
	"repro/internal/registry"
	"repro/internal/sparql"
	"repro/internal/synth"
)

type countingClient struct {
	inner endpoint.Client
	calls *atomic.Int32
}

func (c countingClient) Query(ctx context.Context, query string) (*sparql.Result, error) {
	c.calls.Add(1)
	return c.inner.Query(ctx, query)
}

func (c countingClient) Stream(ctx context.Context, query string) (*sparql.RowSeq, error) {
	c.calls.Add(1)
	return endpoint.Stream(ctx, c.inner, query)
}

// fedTool registers three class-partitioned endpoints and processes each,
// so the docstore holds a per-endpoint extraction index.
func fedTool(t *testing.T) (*HBOLD, []string, []*atomic.Int32) {
	t.Helper()
	tool := New(docstore.MustOpenMem(), clock.NewSim(clock.Epoch))
	parts := synth.PartitionByClass(synth.Scholarly(1), 3)
	var urls []string
	var calls []*atomic.Int32
	for i, p := range parts {
		u := fmt.Sprintf("http://fedcore%d.example.org/sparql", i)
		urls = append(urls, u)
		n := &atomic.Int32{}
		calls = append(calls, n)
		tool.Registry.Add(registry.Entry{URL: u, Title: fmt.Sprintf("part %d", i), AddedAt: clock.Epoch})
		tool.Connect(u, countingClient{inner: endpoint.LocalClient{Store: p}, calls: n})
		if err := tool.Process(u); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range calls {
		n.Store(0) // discard extraction traffic
	}
	return tool, urls, calls
}

// TestCoreFederationOverRegistry: the tool builds a federation over its
// connected endpoints, carrying generation metadata and docstore index
// lookups, and IndexPrune keeps a class query away from the partitions
// whose stored index lacks the class.
func TestCoreFederationOverRegistry(t *testing.T) {
	tool, urls, calls := fedTool(t)
	fed, err := tool.Federation(nil, federation.IndexPrune)
	if err != nil {
		t.Fatal(err)
	}
	srcs := fed.Sources()
	if len(srcs) != 3 {
		t.Fatalf("federation over %d sources, want 3", len(srcs))
	}
	for _, s := range srcs {
		if s.Generation == 0 {
			t.Fatalf("source %s has generation 0 after Process", s.URL)
		}
		if s.Name == s.URL {
			t.Fatalf("source %s did not pick up its registry title", s.URL)
		}
	}

	// find a class exclusive to one endpoint via the stored indexes
	var classIRI, home string
	for _, u := range urls {
		ix, err := tool.Index(u)
		if err != nil {
			t.Fatal(err)
		}
	scan:
		for _, ci := range ix.Classes {
			for _, v := range urls {
				if v == u {
					continue
				}
				other, err := tool.Index(v)
				if err != nil {
					t.Fatal(err)
				}
				if other.Vocabulary().HasClass(ci.IRI) {
					continue scan
				}
			}
			classIRI, home = ci.IRI, u
			break
		}
		if classIRI != "" {
			break
		}
	}
	if classIRI == "" {
		t.Fatal("no endpoint-exclusive class in fixture")
	}

	res, err := fed.Query(context.Background(), fmt.Sprintf(`SELECT ?s WHERE { ?s a <%s> }`, classIRI))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows for a class the home endpoint holds")
	}
	for i, u := range urls {
		want := int32(0)
		if u == home {
			want = 1
		}
		if got := calls[i].Load(); got != want {
			t.Fatalf("%s received %d requests, want %d", u, got, want)
		}
	}
}

// TestCoreFederationExplicitSubsetAndErrors.
func TestCoreFederationExplicitSubset(t *testing.T) {
	tool, urls, calls := fedTool(t)
	fed, err := tool.Federation(urls[:2], federation.All)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fed.Query(context.Background(), `SELECT ?s ?p ?o WHERE { ?s ?p ?o }`); err != nil {
		t.Fatal(err)
	}
	if calls[0].Load() != 1 || calls[1].Load() != 1 || calls[2].Load() != 0 {
		t.Fatalf("calls = %d,%d,%d; want 1,1,0", calls[0].Load(), calls[1].Load(), calls[2].Load())
	}
	if _, err := tool.Federation([]string{"http://unknown.example.org/sparql"}, federation.All); err == nil {
		t.Fatal("federating over an unconnected endpoint did not error")
	}
	empty := New(docstore.MustOpenMem(), clock.NewSim(clock.Epoch))
	if _, err := empty.Federation(nil, federation.All); err == nil {
		t.Fatal("federating with no connected endpoints did not error")
	}
}
