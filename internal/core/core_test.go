package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/docstore"
	"repro/internal/endpoint"
	"repro/internal/portal"
	"repro/internal/registry"
	"repro/internal/sched"
	"repro/internal/synth"
)

func newTool(t testing.TB) (*HBOLD, *clock.Sim) {
	t.Helper()
	ck := clock.NewSim(clock.Epoch)
	h := New(docstore.MustOpenMem(), ck)
	// any test that touches RunDue starts the shared scheduler; stop it
	t.Cleanup(h.Close)
	return h, ck
}

func connectScholarly(t testing.TB, h *HBOLD) string {
	t.Helper()
	url := "http://scholarly.example.org/sparql"
	h.Registry.Add(registry.Entry{URL: url, Title: "Scholarly LD", Source: registry.SourceDataHub, AddedAt: clock.Epoch})
	h.Connect(url, endpoint.LocalClient{Store: synth.Scholarly(1)})
	return url
}

func TestProcessPipeline(t *testing.T) {
	h, _ := newTool(t)
	url := connectScholarly(t, h)
	if err := h.Process(url); err != nil {
		t.Fatal(err)
	}
	// all three artifacts persisted
	for _, coll := range []string{CollIndexes, CollSummaries, CollClusters} {
		if !h.DB.Collection(coll).Has(url) {
			t.Fatalf("collection %s missing %s", coll, url)
		}
	}
	s, err := h.Summary(url)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumClasses() != synth.ScholarlyClassCount() {
		t.Fatalf("classes = %d", s.NumClasses())
	}
	cs, err := h.ClusterSchema(url)
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.Validate(); err != nil {
		t.Fatal(err)
	}
	e, _ := h.Registry.Get(url)
	if !e.Indexed || e.LastSuccess.IsZero() {
		t.Fatalf("registry entry = %+v", e)
	}
}

func TestProcessUnknownClient(t *testing.T) {
	h, _ := newTool(t)
	if err := h.Process("http://nowhere/sparql"); err == nil {
		t.Fatal("processing without a client must fail")
	}
}

func TestProcessFailureRecorded(t *testing.T) {
	h, _ := newTool(t)
	url := "http://dead.example.org/sparql"
	h.Registry.Add(registry.Entry{URL: url, AddedAt: clock.Epoch})
	h.Connect(url, endpoint.NewRemote("dead", url, synth.Scholarly(2), nil, endpoint.AlwaysDown(), h.Clock))
	if err := h.Process(url); err == nil {
		t.Fatal("dead endpoint must fail")
	}
	e, _ := h.Registry.Get(url)
	if e.ConsecutiveFailures != 1 || e.Indexed {
		t.Fatalf("entry = %+v", e)
	}
}

func TestDatasets(t *testing.T) {
	h, _ := newTool(t)
	url := connectScholarly(t, h)
	if len(h.Datasets()) != 0 {
		t.Fatal("no datasets before processing")
	}
	h.Process(url)
	ds := h.Datasets()
	if len(ds) != 1 {
		t.Fatalf("datasets = %d", len(ds))
	}
	d := ds[0]
	if d.Classes != synth.ScholarlyClassCount() || d.Instances == 0 || d.Clusters == 0 {
		t.Fatalf("dataset info = %+v", d)
	}
	if d.LastExtraction != "2020-01-03" {
		t.Fatalf("LastExtraction = %s", d.LastExtraction)
	}
}

func TestOnTheFlyMatchesPrecomputed(t *testing.T) {
	h, _ := newTool(t)
	url := connectScholarly(t, h)
	h.Process(url)
	pre, err := h.ClusterSchema(url)
	if err != nil {
		t.Fatal(err)
	}
	fly, err := h.ClusterSchemaOnTheFly(url)
	if err != nil {
		t.Fatal(err)
	}
	if pre.NumClusters() != fly.NumClusters() {
		t.Fatalf("precomputed %d clusters, on-the-fly %d", pre.NumClusters(), fly.NumClusters())
	}
	for i := range pre.Clusters {
		if pre.Clusters[i].Label != fly.Clusters[i].Label {
			t.Fatal("cluster labels differ between paths")
		}
	}
}

func TestExplore(t *testing.T) {
	h, _ := newTool(t)
	url := connectScholarly(t, h)
	h.Process(url)
	ex, err := h.Explore(url, synth.ScholarlyNS+"Event")
	if err != nil {
		t.Fatal(err)
	}
	if ex.NodeCount() != 1 {
		t.Fatalf("NodeCount = %d", ex.NodeCount())
	}
	if _, err := h.Explore(url, "http://nope"); err == nil {
		t.Fatal("unknown focus must fail")
	}
	if _, err := h.Explore("http://unknown", synth.ScholarlyNS+"Event"); err == nil {
		t.Fatal("unknown dataset must fail")
	}
}

func TestRunDueSchedule(t *testing.T) {
	h, ck := newTool(t)
	url := connectScholarly(t, h)
	ok, failed := h.RunDue()
	if ok != 1 || failed != 0 {
		t.Fatalf("first run = %d ok, %d failed", ok, failed)
	}
	// nothing due tomorrow
	ck.AdvanceDays(1)
	ok, failed = h.RunDue()
	if ok != 0 || failed != 0 {
		t.Fatalf("day 1 = %d ok, %d failed", ok, failed)
	}
	// due again after a week
	ck.AdvanceDays(6)
	ok, _ = h.RunDue()
	if ok != 1 {
		t.Fatalf("day 7 = %d ok", ok)
	}
	_ = url
}

func TestRunDueCountsUnconnectableAsFailure(t *testing.T) {
	h, _ := newTool(t)
	h.Registry.Add(registry.Entry{URL: "http://unconnected/sparql", AddedAt: clock.Epoch})
	ok, failed := h.RunDue()
	if ok != 0 || failed != 1 {
		t.Fatalf("run = %d ok, %d failed", ok, failed)
	}
}

// TestProcessNoClientRecordsFailure covers the single failure path:
// an unconnectable registered endpoint records a registry failure from
// inside Process, not from a separate code path in the caller.
func TestProcessNoClientRecordsFailure(t *testing.T) {
	h, _ := newTool(t)
	url := "http://unconnected.example.org/sparql"
	h.Registry.Add(registry.Entry{URL: url, AddedAt: clock.Epoch})
	if err := h.Process(url); err == nil {
		t.Fatal("processing without a client must fail")
	}
	e, _ := h.Registry.Get(url)
	if e.ConsecutiveFailures != 1 || e.LastAttempt.IsZero() {
		t.Fatalf("entry = %+v", e)
	}
}

func TestRunDueConcurrentProcessesAllDue(t *testing.T) {
	h, _ := newTool(t)
	h.SchedulerConfig = sched.Config{Workers: 4}
	const n = 9
	for i := 0; i < n; i++ {
		url := fmt.Sprintf("http://multi%d.example.org/sparql", i)
		h.Registry.Add(registry.Entry{URL: url, AddedAt: clock.Epoch})
		h.Connect(url, endpoint.LocalClient{Store: synth.Generate(synth.Spec{
			Name: fmt.Sprintf("multi%d", i), Classes: 4, Instances: 60, Seed: int64(i + 1),
		})})
	}
	ok, failed := h.RunDueConcurrent(context.Background())
	if ok != n || failed != 0 {
		t.Fatalf("run = %d ok, %d failed", ok, failed)
	}
	if got := h.Registry.IndexedCount(); got != n {
		t.Fatalf("indexed = %d", got)
	}
	// the shared scheduler exposes the run for observability
	m := h.Scheduler().Metrics()
	if m.Succeeded != n || m.Running != 0 || m.Queued != 0 {
		t.Fatalf("metrics = %+v", m)
	}
	jobs := h.Scheduler().Jobs()
	if len(jobs) != n {
		t.Fatalf("jobs = %d", len(jobs))
	}
	for _, j := range jobs {
		if j.State != sched.StateSucceeded || j.Priority != "routine" {
			t.Fatalf("job = %+v", j)
		}
	}
	// nothing due right after: an immediate second run is a no-op
	if ok, failed = h.RunDueConcurrent(context.Background()); ok != 0 || failed != 0 {
		t.Fatalf("second run = %d ok, %d failed", ok, failed)
	}
}

// TestInRunRetriesRecordOneRegistryFailure: a job that burns three
// in-run attempts must consume exactly one day of the §3.1 give-up
// budget, not three — the registry policy thinks in days, the
// scheduler in seconds.
func TestInRunRetriesRecordOneRegistryFailure(t *testing.T) {
	h, ck := newTool(t)
	h.SchedulerConfig = sched.Config{
		Workers: 2,
		Retry:   sched.RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Second},
	}
	url := "http://dead.example.org/sparql"
	h.Registry.Add(registry.Entry{URL: url, AddedAt: clock.Epoch})
	h.Connect(url, endpoint.NewRemote("dead", url, synth.Scholarly(2), nil, endpoint.AlwaysDown(), h.Clock))
	// backoffs elapse in simulated time: advance the clock while the
	// run blocks (staying within the same availability day)
	stopAdvance := make(chan struct{})
	go func() {
		for {
			select {
			case <-stopAdvance:
				return
			default:
				ck.Advance(2 * time.Second)
				time.Sleep(time.Millisecond)
			}
		}
	}()
	ok, failed := h.RunDueConcurrent(context.Background())
	close(stopAdvance)
	if ok != 0 || failed != 1 {
		t.Fatalf("run = %d ok, %d failed", ok, failed)
	}
	jobs := h.Scheduler().Jobs()
	if len(jobs) != 1 || jobs[0].Attempts != 3 {
		t.Fatalf("jobs = %+v", jobs)
	}
	e, _ := h.Registry.Get(url)
	if e.ConsecutiveFailures != 1 {
		t.Fatalf("ConsecutiveFailures = %d, want 1 (one per job, not per attempt)", e.ConsecutiveFailures)
	}
	if e.LastAttempt.IsZero() {
		t.Fatal("failure not recorded at all")
	}
}

// TestManualSubmissionGetsPriority checks the §3.4 wiring into the
// scheduler: a pending-notification endpoint is enqueued with manual
// priority.
func TestManualSubmissionGetsPriority(t *testing.T) {
	h, _ := newTool(t)
	url := "http://prio.example.org/sparql"
	if err := h.SubmitEndpoint(url, "Prio LD", "sub@example.org"); err != nil {
		t.Fatal(err)
	}
	h.Connect(url, endpoint.LocalClient{Store: synth.Generate(synth.Spec{Name: "prio", Classes: 4, Instances: 60, Seed: 2})})
	if ok, failed := h.RunDueConcurrent(context.Background()); ok != 1 || failed != 0 {
		t.Fatalf("run = %d ok, %d failed", ok, failed)
	}
	jobs := h.Scheduler().Jobs()
	if len(jobs) != 1 || jobs[0].Priority != "manual" {
		t.Fatalf("jobs = %+v", jobs)
	}
}

func TestManualInsertionWorkflow(t *testing.T) {
	h, _ := newTool(t)
	url := "http://manual.example.org/sparql"
	if err := h.SubmitEndpoint(url, "My LD", "sub@example.org"); err != nil {
		t.Fatal(err)
	}
	h.Connect(url, endpoint.LocalClient{Store: synth.Generate(synth.Spec{Name: "man", Classes: 5, Instances: 100, Seed: 3})})
	ok, failed := h.RunDue()
	if ok != 1 || failed != 0 {
		t.Fatalf("run = %d ok, %d failed", ok, failed)
	}
	// notification sent, address deleted
	if h.Outbox.Len() != 1 {
		t.Fatalf("outbox = %d", h.Outbox.Len())
	}
	m := h.Outbox.Sent()[0]
	if !strings.Contains(m.Subject, "completed") {
		t.Fatalf("subject = %s", m.Subject)
	}
	if strings.Contains(m.RecipientHint, "sub@") {
		t.Fatal("address not redacted")
	}
	e, _ := h.Registry.Get(url)
	if e.PendingEmail != "" {
		t.Fatal("address retained after notification")
	}
	// the dataset is listed among the others (§3.4)
	found := false
	for _, d := range h.Datasets() {
		if d.URL == url {
			found = true
		}
	}
	if !found {
		t.Fatal("manually inserted dataset not listed")
	}
}

func TestManualInsertionFailureNotifies(t *testing.T) {
	h, _ := newTool(t)
	url := "http://manual-dead.example.org/sparql"
	h.SubmitEndpoint(url, "Dead LD", "sub@example.org")
	h.Connect(url, endpoint.NewRemote("dead", url, synth.Scholarly(1), nil, endpoint.AlwaysDown(), h.Clock))
	_, failed := h.RunDue()
	if failed != 1 {
		t.Fatalf("failed = %d", failed)
	}
	if h.Outbox.Len() != 1 {
		t.Fatalf("outbox = %d", h.Outbox.Len())
	}
	if !strings.Contains(h.Outbox.Sent()[0].Subject, "failed") {
		t.Fatalf("subject = %s", h.Outbox.Sent()[0].Subject)
	}
}

func TestCrawlPortalsIntegration(t *testing.T) {
	h, _ := newTool(t)
	corpus := synth.Corpus(1)
	for _, d := range corpus {
		if d.PreExisting {
			h.Registry.Add(registry.Entry{URL: d.URL, Title: d.Title, Source: registry.SourceDataHub, AddedAt: clock.Epoch})
		}
	}
	rep, err := h.CrawlPortals(context.Background(), portal.BuildAll(corpus))
	if err != nil {
		t.Fatal(err)
	}
	if rep.ListedBefore != 610 || rep.ListedAfter != 680 {
		t.Fatalf("crawl %d → %d", rep.ListedBefore, rep.ListedAfter)
	}
}

func TestFlakyEndpointEventuallyIndexed(t *testing.T) {
	h, ck := newTool(t)
	url := "http://flaky.example.org/sparql"
	h.Registry.Add(registry.Entry{URL: url, AddedAt: clock.Epoch})
	st := synth.Generate(synth.Spec{Name: "flaky", Classes: 4, Instances: 80, Seed: 9})
	// heavy outage schedule: down often, up sometimes
	h.Connect(url, endpoint.NewRemote("flaky", url, st, nil, endpoint.NewAvailability(5, 0.6), ck))
	indexed := false
	for day := 0; day < 30 && !indexed; day++ {
		h.RunDue()
		e, _ := h.Registry.Get(url)
		indexed = e.Indexed
		ck.AdvanceDays(1)
	}
	if !indexed {
		t.Fatal("flaky endpoint never indexed despite daily retries")
	}
}

func TestSummaryNotFound(t *testing.T) {
	h, _ := newTool(t)
	if _, err := h.Summary("http://none"); !errors.Is(err, docstore.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestIndexRoundTrip(t *testing.T) {
	h, _ := newTool(t)
	url := connectScholarly(t, h)
	h.Process(url)
	ix, err := h.Index(url)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Endpoint != url || ix.NumClasses() != synth.ScholarlyClassCount() {
		t.Fatalf("index = %+v", ix)
	}
	if !ix.ExtractedAt.Equal(clock.Epoch) {
		t.Fatalf("ExtractedAt = %v", ix.ExtractedAt)
	}
}
