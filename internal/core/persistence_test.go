package core

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/docstore"
	"repro/internal/endpoint"
	"repro/internal/registry"
	"repro/internal/synth"
)

// TestRestartDurability verifies that a file-backed instance survives a
// restart: the registry, the indexes, the summaries and the cluster
// schemas all come back, and the §3.1 schedule continues where it left
// off.
func TestRestartDurability(t *testing.T) {
	dir := t.TempDir()
	url := "http://scholarly.example.org/sparql"

	// first life: index the dataset and persist
	{
		db, err := docstore.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		ck := clock.NewSim(clock.Epoch)
		tool := New(db, ck)
		tool.Registry.Add(registry.Entry{URL: url, Title: "Scholarly LD", Source: registry.SourceDataHub, AddedAt: ck.Now()})
		tool.Connect(url, endpoint.LocalClient{Store: synth.Scholarly(1)})
		if err := tool.Process(url); err != nil {
			t.Fatal(err)
		}
		if err := tool.SaveState(); err != nil {
			t.Fatal(err)
		}
	}

	// second life: a fresh instance over the same directory
	db, err := docstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ck := clock.NewSim(clock.Epoch.Add(24 * time.Hour)) // the next day
	tool := New(db, ck)
	if err := tool.LoadState(); err != nil {
		t.Fatal(err)
	}
	if tool.Registry.Len() != 1 || tool.Registry.IndexedCount() != 1 {
		t.Fatalf("registry not restored: %d entries, %d indexed",
			tool.Registry.Len(), tool.Registry.IndexedCount())
	}
	// artifacts still readable
	s, err := tool.Summary(url)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumClasses() != synth.ScholarlyClassCount() {
		t.Fatalf("summary classes = %d", s.NumClasses())
	}
	cs, err := tool.ClusterSchema(url)
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.Validate(); err != nil {
		t.Fatal(err)
	}
	// exploration works on the restored summary (NodeByIRI reindexes)
	ex, err := tool.Explore(url, synth.ScholarlyNS+"Event")
	if err != nil {
		t.Fatal(err)
	}
	ex.ExpandAll()
	if !ex.Complete() {
		t.Fatal("exploration broken after restart")
	}
	// the schedule resumes: one day after extraction, nothing is due
	if due := tool.Registry.Due(ck.Now()); len(due) != 0 {
		t.Fatalf("due after restart = %v", due)
	}
	// ... until the weekly refresh
	if due := tool.Registry.Due(clock.Epoch.Add(8 * 24 * time.Hour)); len(due) != 1 {
		t.Fatalf("weekly refresh lost after restart")
	}
	// the dataset list is intact
	if ds := tool.Datasets(); len(ds) != 1 || ds[0].Classes != synth.ScholarlyClassCount() {
		t.Fatalf("datasets after restart = %+v", ds)
	}
}

func TestLoadStateFreshInstance(t *testing.T) {
	tool := New(docstore.MustOpenMem(), clock.NewSim(clock.Epoch))
	if err := tool.LoadState(); err != nil {
		t.Fatalf("fresh LoadState must be a no-op, got %v", err)
	}
}
