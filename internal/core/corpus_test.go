package core

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/endpoint"
	"repro/internal/sparql"
	"repro/internal/store"
	"repro/internal/synth"
)

// corpusQueries probe the mirrored statement set from several angles.
var corpusQueries = []string{
	`SELECT ?s ?p ?o WHERE { ?s ?p ?o } ORDER BY ?s ?p ?o`,
	`SELECT DISTINCT ?p WHERE { ?s ?p ?o } ORDER BY ?p`,
	`SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }`,
}

func queryTSV(t *testing.T, st store.Queryable, query string) string {
	t.Helper()
	q, err := sparql.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Exec(st)
	if err != nil {
		t.Fatal(err)
	}
	lines := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		var sb strings.Builder
		for _, v := range res.Vars {
			if term, ok := row[v]; ok {
				sb.WriteString(term.String())
			}
			sb.WriteByte('\t')
		}
		lines = append(lines, sb.String())
	}
	if len(q.OrderBy) == 0 {
		sort.Strings(lines)
	}
	return strings.Join(lines, "\n")
}

// TestCorpusMirrorAndRestart is the end-to-end instant-restart check:
// Process mirrors the endpoint's statements into the persistent corpus,
// and a fresh instance over the same directory answers the same queries
// from disk — with no client connected, so provably without
// re-extraction.
func TestCorpusMirrorAndRestart(t *testing.T) {
	dir := t.TempDir()
	url := "http://scholarly.example.org/sparql"
	src := synth.Scholarly(1)

	want := make(map[string]string)
	for _, q := range corpusQueries {
		want[q] = queryTSV(t, src, q)
	}

	// first life: extract, mirror, shut down cleanly
	{
		tool := New(nil, clock.NewSim(clock.Epoch))
		tool.CorpusDir = dir
		tool.Connect(url, endpoint.LocalClient{Store: src})
		if err := tool.Process(url); err != nil {
			t.Fatal(err)
		}
		ds, err := tool.Corpus(url)
		if err != nil {
			t.Fatal(err)
		}
		if ds.Len() != src.Len() {
			t.Fatalf("mirrored corpus has %d triples, endpoint has %d", ds.Len(), src.Len())
		}
		for _, q := range corpusQueries {
			if got := queryTSV(t, ds, q); got != want[q] {
				t.Fatalf("corpus diverges from endpoint on %q:\n got %q\nwant %q", q, got, want[q])
			}
		}
		// the persistent tier shows up on /metrics
		if n := registryValue(t, tool, "hbold_corpus_triples"); int(n) != src.Len() {
			t.Fatalf("hbold_corpus_triples = %v, want %d", n, src.Len())
		}
		if registryValue(t, tool, "hbold_kv_wal_appends_total") == 0 {
			t.Fatal("hbold_kv_wal_appends_total stayed zero through a mirror")
		}
		tool.Close()
	}

	// second life: no client, same directory — answers come from disk
	tool := New(nil, clock.NewSim(clock.Epoch))
	tool.CorpusDir = dir
	defer tool.Close()
	ds, err := tool.Corpus(url)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != src.Len() {
		t.Fatalf("reopened corpus has %d triples, want %d", ds.Len(), src.Len())
	}
	for _, q := range corpusQueries {
		if got := queryTSV(t, ds, q); got != want[q] {
			t.Fatalf("reopened corpus diverges on %q:\n got %q\nwant %q", q, got, want[q])
		}
	}
}

// TestCorpusOffByDefault pins that the memory-only pipeline is untouched
// when no corpus directory is configured.
func TestCorpusOffByDefault(t *testing.T) {
	url := "http://scholarly.example.org/sparql"
	tool := New(nil, clock.NewSim(clock.Epoch))
	defer tool.Close()
	tool.Connect(url, endpoint.LocalClient{Store: synth.Scholarly(1)})
	if err := tool.Process(url); err != nil {
		t.Fatal(err)
	}
	if _, err := tool.Corpus(url); err != ErrNoCorpusDir {
		t.Fatalf("Corpus without CorpusDir: err = %v, want ErrNoCorpusDir", err)
	}
	if n := registryValue(t, tool, "hbold_corpus_open"); n != 0 {
		t.Fatalf("hbold_corpus_open = %v without a corpus dir", n)
	}
}

// registryValue reads one single-series family from the metrics
// snapshot.
func registryValue(t *testing.T, tool *HBOLD, name string) float64 {
	t.Helper()
	for _, f := range tool.Metrics.Snapshot() {
		if f.Name != name {
			continue
		}
		if len(f.Series) != 1 {
			t.Fatalf("family %s has %d series", name, len(f.Series))
		}
		return f.Series[0].Value
	}
	t.Fatalf("family %s not registered", name)
	return 0
}
