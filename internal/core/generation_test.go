package core

import (
	"sync"
	"testing"

	"repro/internal/synth"
)

// TestGenerationCounter: generation is 0 until the first successful
// extraction, then increments once per successful Process — and cached
// presentation reads at distinct generations are distinct snapshots.
func TestGenerationCounter(t *testing.T) {
	h, _ := newTool(t)
	url := connectScholarly(t, h)

	if g := h.Generation(url); g != 0 {
		t.Fatalf("generation before extraction = %d, want 0", g)
	}
	if g := h.Generation("http://nobody/sparql"); g != 0 {
		t.Fatalf("generation of unknown dataset = %d, want 0", g)
	}
	if err := h.Process(url); err != nil {
		t.Fatal(err)
	}
	if g := h.Generation(url); g != 1 {
		t.Fatalf("generation after first extraction = %d, want 1", g)
	}

	// a cached read at generation 1…
	if _, err := h.Summary(url); err != nil {
		t.Fatal(err)
	}
	misses := h.Cache.Stats().Misses
	if _, err := h.Summary(url); err != nil {
		t.Fatal(err)
	}
	if got := h.Cache.Stats().Misses; got != misses {
		t.Fatalf("repeated Summary recomputed: misses %d -> %d", misses, got)
	}

	// …stops being addressed after the refresh bumps to generation 2
	if err := h.Process(url); err != nil {
		t.Fatal(err)
	}
	if g := h.Generation(url); g != 2 {
		t.Fatalf("generation after refresh = %d, want 2", g)
	}
	if _, err := h.Summary(url); err != nil {
		t.Fatal(err)
	}
	if got := h.Cache.Stats().Misses; got <= misses {
		t.Fatalf("post-refresh Summary served stale snapshot: misses %d -> %d", misses, got)
	}
}

// TestSharedSummaryConcurrentLookups: the snapshot cache hands the same
// decoded *schema.Summary to every reader, so concurrent IRI lookups on
// a freshly cached summary must be race-free (run with -race; before
// the eager Reindex in Summary's decode path this raced on the lazy
// index build).
func TestSharedSummaryConcurrentLookups(t *testing.T) {
	h, _ := newTool(t)
	url := connectScholarly(t, h)
	if err := h.Process(url); err != nil {
		t.Fatal(err)
	}
	focus := synth.ScholarlyNS + "Event"
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ex, err := h.Explore(url, focus)
			if err != nil {
				errs <- err
				return
			}
			if _, err := ex.Expand(focus); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestProcessFailureKeepsGeneration: a failed extraction must not bump
// the generation — clients keep revalidating against the last good
// snapshot.
func TestProcessFailureKeepsGeneration(t *testing.T) {
	h, _ := newTool(t)
	url := connectScholarly(t, h)
	if err := h.Process(url); err != nil {
		t.Fatal(err)
	}
	if err := h.Process("http://unconnected/sparql"); err == nil {
		t.Fatal("expected failure for unconnected endpoint")
	}
	if g := h.Generation("http://unconnected/sparql"); g != 0 {
		t.Fatalf("failed extraction bumped generation to %d", g)
	}
	if g := h.Generation(url); g != 1 {
		t.Fatalf("unrelated dataset generation = %d, want 1", g)
	}
}
