package core

import (
	"context"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"

	"repro/internal/endpoint"
	"repro/internal/kv"
	"repro/internal/store/disk"
)

// The persistent corpus tier: when CorpusDir is set, every successful
// extraction also mirrors the endpoint's full statement set into a
// disk-backed store under CorpusDir, one data directory per endpoint.
// A restarted instance reopens those directories in O(segments) and
// serves SPARQL over them immediately — no re-extraction, which is the
// instant-restart property experiment E20 measures.

// ErrNoCorpusDir is returned by Corpus when the instance was built
// without a persistent corpus directory.
var ErrNoCorpusDir = fmt.Errorf("core: no corpus directory configured")

// corpusPath maps an endpoint URL to its data directory. The name is a
// content hash of the URL: stable across restarts, filesystem-safe.
func (h *HBOLD) corpusPath(url string) string {
	hash := fnv.New64a()
	hash.Write([]byte(url))
	return filepath.Join(h.CorpusDir, fmt.Sprintf("ep-%016x", hash.Sum64()))
}

// Corpus returns the persistent corpus store for url, opening (or
// creating) its data directory on first use. The store is shared and
// stays open until Close.
func (h *HBOLD) Corpus(url string) (*disk.Store, error) {
	if h.CorpusDir == "" {
		return nil, ErrNoCorpusDir
	}
	h.corpusMu.Lock()
	defer h.corpusMu.Unlock()
	if ds, ok := h.corpora[url]; ok {
		return ds, nil
	}
	dir := h.corpusPath(url)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	ds, err := disk.Open(dir, disk.Options{})
	if err != nil {
		return nil, err
	}
	h.corpora[url] = ds
	return ds, nil
}

// CorpusURLs lists the endpoints with an open corpus store.
func (h *HBOLD) CorpusURLs() []string {
	h.corpusMu.Lock()
	defer h.corpusMu.Unlock()
	out := make([]string, 0, len(h.corpora))
	for u := range h.corpora {
		out = append(out, u)
	}
	return out
}

// mirrorCorpus replicates url's statement set into its persistent
// corpus store, paging through the connected client. Insert dedups, so
// re-mirroring after a refresh only adds what changed.
func (h *HBOLD) mirrorCorpus(ctx context.Context, url string, c endpoint.Client) error {
	ds, err := h.Corpus(url)
	if err != nil {
		return err
	}
	if _, err := h.Extractor.MirrorCorpus(ctx, c, ds); err != nil {
		return fmt.Errorf("core: mirroring %s: %w", url, err)
	}
	return nil
}

// closeCorpora flushes and closes every open corpus store, keeping the
// first error.
func (h *HBOLD) closeCorpora() error {
	h.corpusMu.Lock()
	defer h.corpusMu.Unlock()
	var first error
	for url, ds := range h.corpora {
		if err := ds.Close(); err != nil && first == nil {
			first = fmt.Errorf("core: closing corpus for %s: %w", url, err)
		}
		delete(h.corpora, url)
	}
	return first
}

// corpusKVStats sums the storage-engine counters across open corpora.
func (h *HBOLD) corpusKVStats() kv.Stats {
	h.corpusMu.Lock()
	defer h.corpusMu.Unlock()
	var sum kv.Stats
	for _, ds := range h.corpora {
		st := ds.KVStats()
		sum.WALAppends += st.WALAppends
		sum.WALBytes += st.WALBytes
		sum.WALReplayed += st.WALReplayed
		sum.Flushes += st.Flushes
		sum.Compactions += st.Compactions
		sum.Segments += st.Segments
		sum.SegmentBytes += st.SegmentBytes
		sum.MemtableKeys += st.MemtableKeys
		sum.MemtableBytes += st.MemtableBytes
	}
	return sum
}

// corpusCacheStats sums the term-cache counters across open corpora.
func (h *HBOLD) corpusCacheStats() (hits, misses uint64) {
	h.corpusMu.Lock()
	defer h.corpusMu.Unlock()
	for _, ds := range h.corpora {
		hh, mm := ds.CacheStats()
		hits += hh
		misses += mm
	}
	return hits, misses
}

// corpusTriples sums Len across open corpora.
func (h *HBOLD) corpusTriples() int {
	h.corpusMu.Lock()
	defer h.corpusMu.Unlock()
	n := 0
	for _, ds := range h.corpora {
		n += ds.Len()
	}
	return n
}

// registerCorpusMetrics exposes the persistent tier on /metrics. The
// families read through h, so they track corpora opened later; with no
// corpus directory they all read zero.
func (h *HBOLD) registerCorpusMetrics() {
	r := h.Metrics
	r.CounterFunc("hbold_kv_wal_appends_total",
		"Batches appended to corpus write-ahead logs.",
		func() float64 { return float64(h.corpusKVStats().WALAppends) })
	r.CounterFunc("hbold_kv_wal_bytes_total",
		"Payload bytes appended to corpus write-ahead logs.",
		func() float64 { return float64(h.corpusKVStats().WALBytes) })
	r.CounterFunc("hbold_kv_wal_replayed_total",
		"WAL records replayed while opening corpus stores.",
		func() float64 { return float64(h.corpusKVStats().WALReplayed) })
	r.CounterFunc("hbold_kv_flushes_total",
		"Memtable flushes across corpus stores.",
		func() float64 { return float64(h.corpusKVStats().Flushes) })
	r.CounterFunc("hbold_kv_compactions_total",
		"Segment compactions across corpus stores.",
		func() float64 { return float64(h.corpusKVStats().Compactions) })
	r.GaugeFunc("hbold_kv_segments",
		"Live segment files across corpus stores.",
		func() float64 { return float64(h.corpusKVStats().Segments) })
	r.GaugeFunc("hbold_kv_segment_bytes",
		"Bytes in live segment files across corpus stores.",
		func() float64 { return float64(h.corpusKVStats().SegmentBytes) })
	r.GaugeFunc("hbold_kv_memtable_keys",
		"Keys in corpus memtables awaiting flush.",
		func() float64 { return float64(h.corpusKVStats().MemtableKeys) })
	r.CounterFunc("hbold_corpus_term_cache_hits_total",
		"Corpus term-dictionary cache hits.",
		func() float64 { hits, _ := h.corpusCacheStats(); return float64(hits) })
	r.CounterFunc("hbold_corpus_term_cache_misses_total",
		"Corpus term-dictionary cache misses.",
		func() float64 { _, misses := h.corpusCacheStats(); return float64(misses) })
	r.GaugeFunc("hbold_corpus_open",
		"Open persistent corpus stores.",
		func() float64 { h.corpusMu.Lock(); defer h.corpusMu.Unlock(); return float64(len(h.corpora)) })
	r.GaugeFunc("hbold_corpus_triples",
		"Triples across open persistent corpus stores.",
		func() float64 { return float64(h.corpusTriples()) })
}
