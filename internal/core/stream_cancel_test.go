package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/registry"
	"repro/internal/sched"
	"repro/internal/sparql"
)

// wireBlockClient stands in for an endpoint mid-query: the first request
// parks on the wire until its context dies, then reports what killed it.
type wireBlockClient struct {
	startedOnce sync.Once
	started     chan struct{}
	wireErr     chan error
}

func newWireBlockClient() *wireBlockClient {
	return &wireBlockClient{started: make(chan struct{}), wireErr: make(chan error, 1)}
}

func (c *wireBlockClient) Query(ctx context.Context, q string) (*sparql.Result, error) {
	c.startedOnce.Do(func() { close(c.started) })
	<-ctx.Done()
	select {
	case c.wireErr <- ctx.Err():
	default:
	}
	return nil, ctx.Err()
}

// TestSchedulerStopCancelsExtractionOnWire drives the full chain the
// streaming API exists for: Scheduler.Stop cancels the run context, the
// cancellation flows through core.process into the extractor and down to
// the SPARQL client blocked on the wire, and the job terminates with the
// context's error instead of waiting out the query.
func TestSchedulerStopCancelsExtractionOnWire(t *testing.T) {
	h := New(nil, nil)
	url := "http://blocked.example.org/sparql"
	h.Registry.Add(registry.Entry{URL: url, Title: "blocked", AddedAt: h.Clock.Now()})
	c := newWireBlockClient()
	h.Connect(url, c)

	s := h.Scheduler()
	ticket, err := s.Submit(url, sched.Routine)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-c.started:
	case <-time.After(5 * time.Second):
		t.Fatal("extraction never reached the wire")
	}
	s.Stop()

	select {
	case werr := <-c.wireErr:
		if !errors.Is(werr, context.Canceled) {
			t.Fatalf("wire saw %v, want context.Canceled", werr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stop never reached the in-flight query")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	state, jerr := ticket.Wait(ctx)
	if err := ctx.Err(); err != nil {
		t.Fatalf("job never terminated: %v", err)
	}
	if state == sched.StateSucceeded {
		t.Fatalf("job state = %v (err %v), want a canceled termination", state, jerr)
	}
	// a canceled run is not an endpoint failure: the §3.1 give-up
	// budget must be untouched
	if e, ok := h.Registry.Get(url); !ok || e.ConsecutiveFailures != 0 {
		t.Fatalf("registry recorded %d failures for a canceled run", e.ConsecutiveFailures)
	}
}
