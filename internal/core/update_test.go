package core

// Tests for the live mutation path: ApplyUpdate mutates the writable
// tier, repairs every derived artifact incrementally (the maintained
// index must equal a fresh extraction), bumps the generation so cached
// snapshots stop validating, records the schema diff, and publishes a
// change-feed event. Corpus mode writes through to the persistent
// replica.

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/clock"
	"repro/internal/docstore"
	"repro/internal/endpoint"
	"repro/internal/extraction"
	"repro/internal/registry"
	"repro/internal/store"
	"repro/internal/turtle"
)

func evolvingTool(t *testing.T) (*HBOLD, string, *store.Store) {
	t.Helper()
	ck := clock.NewSim(clock.Epoch)
	h := New(docstore.MustOpenMem(), ck)
	t.Cleanup(h.Close)
	url := "http://evolving.example.org/sparql"
	st := store.FromGraph(turtle.MustParse(`
@prefix ex: <http://ex/> .
ex:a1 a ex:Author ; ex:name "A1" .
ex:b1 a ex:Book ; ex:title "B1" ; ex:by ex:a1 .
`))
	h.Registry.Add(registry.Entry{URL: url, AddedAt: ck.Now()})
	h.Connect(url, endpoint.LocalClient{Store: st})
	if err := h.Process(url); err != nil {
		t.Fatal(err)
	}
	return h, url, st
}

func TestApplyUpdateLiveMaintenance(t *testing.T) {
	h, url, st := evolvingTool(t)
	ctx := context.Background()
	gen0 := h.Generation(url)

	// warm the snapshot cache so invalidation is observable
	if _, err := h.Summary(url); err != nil {
		t.Fatal(err)
	}

	res, err := h.ApplyUpdate(ctx, url, `
PREFIX ex: <http://ex/>
INSERT DATA {
  ex:p1 a ex:Publisher ; ex:name "P1" .
  ex:b1 ex:publishedBy ex:p1 .
}`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Added != 3 || res.Removed != 0 {
		t.Fatalf("delta = +%d/-%d, want +3/-0", res.Added, res.Removed)
	}
	if res.Generation != gen0+1 || h.Generation(url) != gen0+1 {
		t.Fatalf("generation = %d, want %d", res.Generation, gen0+1)
	}
	if res.Seq != 1 {
		t.Fatalf("feed seq = %d, want 1", res.Seq)
	}
	if res.Diff == nil || len(res.Diff.AddedClasses) != 1 || res.Diff.AddedClasses[0] != "http://ex/Publisher" {
		t.Fatalf("diff = %+v, want AddedClasses [http://ex/Publisher]", res.Diff)
	}
	// the diff is also recorded in the document store
	if d, ok := h.LastDiff(url); !ok || len(d.AddedClasses) != 1 {
		t.Fatalf("recorded diff = %+v, %v", d, ok)
	}

	// the incrementally maintained index must equal a fresh extraction
	// over the mutated store
	ix, err := h.Index(url)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := extraction.New().Extract(context.Background(), endpoint.LocalClient{Store: st}, url, h.Clock.Now())
	if err != nil {
		t.Fatal(err)
	}
	ix.ExtractedAt = fresh.ExtractedAt
	ix.Strategy, fresh.Strategy = "", ""
	if !reflect.DeepEqual(ix, fresh) {
		t.Fatalf("maintained index diverges from re-extraction:\n got %+v\nwant %+v", ix, fresh)
	}

	// the rebuilt summary is served at the new generation and includes
	// the new class
	s, err := h.Summary(url)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range s.Nodes {
		if n.IRI == "http://ex/Publisher" {
			found = true
		}
	}
	if !found {
		t.Fatalf("summary after update misses the new class: %+v", s.Nodes)
	}

	// the change feed replays the event
	backlog, _, cancel := h.Changes().Subscribe(0)
	defer cancel()
	if len(backlog) != 1 || backlog[0].Seq != 1 || backlog[0].Added != 3 || backlog[0].Dataset != url {
		t.Fatalf("feed backlog = %+v", backlog)
	}
	if backlog[0].Generation != gen0+1 {
		t.Fatalf("event generation = %d", backlog[0].Generation)
	}
	if backlog[0].Diff == nil {
		t.Fatal("event carries no diff")
	}
}

func TestApplyUpdateDeleteWhere(t *testing.T) {
	h, url, st := evolvingTool(t)
	res, err := h.ApplyUpdate(context.Background(), url,
		`DELETE WHERE { <http://ex/b1> ?p ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Removed != 3 || res.Added != 0 {
		t.Fatalf("delta = +%d/-%d, want +0/-3", res.Added, res.Removed)
	}
	if st.Len() != 2 {
		t.Fatalf("store len = %d, want 2", st.Len())
	}
	// Book lost its only instance: the maintained summary drops the class
	s, err := h.Summary(url)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range s.Nodes {
		if n.IRI == "http://ex/Book" {
			t.Fatal("Book still in summary after its last instance was deleted")
		}
	}
	if res.Diff == nil || len(res.Diff.RemovedClasses) != 1 {
		t.Fatalf("diff = %+v, want one removed class", res.Diff)
	}
}

func TestApplyUpdateErrors(t *testing.T) {
	h, url, _ := evolvingTool(t)
	ctx := context.Background()
	if _, err := h.ApplyUpdate(ctx, url, "INSERT GARBAGE"); err == nil {
		t.Fatal("syntax error not reported")
	}
	if _, err := h.ApplyUpdate(ctx, "http://unknown/sparql", `INSERT DATA { <http://x/a> a <http://x/C> }`); err == nil {
		t.Fatal("unknown dataset not reported")
	}
}

// TestApplyUpdateCorpusMode: with a corpus directory the update writes
// through to the persistent replica — a fresh instance over the same
// directory serves the post-update statements with no client connected.
func TestApplyUpdateCorpusMode(t *testing.T) {
	dir := t.TempDir()
	url := "http://evolving.example.org/sparql"
	src := store.FromGraph(turtle.MustParse(`
@prefix ex: <http://ex/> .
ex:a1 a ex:Author ; ex:name "A1" .
`))
	{
		h := New(docstore.MustOpenMem(), clock.NewSim(clock.Epoch))
		h.CorpusDir = dir
		h.Registry.Add(registry.Entry{URL: url, AddedAt: clock.Epoch})
		h.Connect(url, endpoint.LocalClient{Store: src})
		if err := h.Process(url); err != nil {
			t.Fatal(err)
		}
		res, err := h.ApplyUpdate(context.Background(), url, `
INSERT DATA { <http://ex/a2> a <http://ex/Author> }`)
		if err != nil {
			t.Fatal(err)
		}
		if res.Added != 1 {
			t.Fatalf("delta = %+v", res)
		}
		h.Close()
	}
	// second life: no client, just the directory
	h := New(docstore.MustOpenMem(), clock.NewSim(clock.Epoch))
	h.CorpusDir = dir
	t.Cleanup(h.Close)
	ds, err := h.Corpus(url)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 3 {
		t.Fatalf("recovered corpus len = %d, want 3 (2 seeded + 1 updated)", ds.Len())
	}
}
