package core

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/docstore"
	"repro/internal/endpoint"
	"repro/internal/rdf"
	"repro/internal/registry"
	"repro/internal/store"
	"repro/internal/turtle"
)

func TestDiffRecordedOnRefresh(t *testing.T) {
	ck := clock.NewSim(clock.Epoch)
	h := New(docstore.MustOpenMem(), ck)
	url := "http://evolving.example.org/sparql"
	st := store.FromGraph(turtle.MustParse(`
@prefix ex: <http://ex/> .
ex:a1 a ex:Author ; ex:name "A1" .
ex:b1 a ex:Book ; ex:title "B1" .
`))
	h.Registry.Add(registry.Entry{URL: url, AddedAt: ck.Now()})
	h.Connect(url, endpoint.LocalClient{Store: st})
	if err := h.Process(url); err != nil {
		t.Fatal(err)
	}
	if _, ok := h.LastDiff(url); ok {
		t.Fatal("first extraction must not record a diff")
	}

	// the source evolves: a new class and more instances appear
	st.AddSPO(rdf.NewIRI("http://ex/a2"), rdf.NewIRI(rdf.RDFType), rdf.NewIRI("http://ex/Author"))
	st.AddSPO(rdf.NewIRI("http://ex/p1"), rdf.NewIRI(rdf.RDFType), rdf.NewIRI("http://ex/Publisher"))

	ck.Advance(8 * 24 * time.Hour) // past the weekly refresh
	if err := h.Process(url); err != nil {
		t.Fatal(err)
	}
	d, ok := h.LastDiff(url)
	if !ok {
		t.Fatal("refresh should record a diff")
	}
	if len(d.AddedClasses) != 1 || d.AddedClasses[0] != "http://ex/Publisher" {
		t.Fatalf("added classes = %v", d.AddedClasses)
	}
	if d.InstanceDelta["http://ex/Author"] != 1 {
		t.Fatalf("instance delta = %v", d.InstanceDelta)
	}
	if d.TriplesDelta != 2 {
		t.Fatalf("triples delta = %d", d.TriplesDelta)
	}
}

func TestNoDiffWhenUnchanged(t *testing.T) {
	ck := clock.NewSim(clock.Epoch)
	h := New(docstore.MustOpenMem(), ck)
	url := "http://static.example.org/sparql"
	st := store.FromGraph(turtle.MustParse(`
@prefix ex: <http://ex/> .
ex:x a ex:Thing .
`))
	h.Registry.Add(registry.Entry{URL: url, AddedAt: ck.Now()})
	h.Connect(url, endpoint.LocalClient{Store: st})
	h.Process(url)
	ck.Advance(8 * 24 * time.Hour)
	if err := h.Process(url); err != nil {
		t.Fatal(err)
	}
	if _, ok := h.LastDiff(url); ok {
		t.Fatal("identical re-extraction must not record a diff")
	}
}
