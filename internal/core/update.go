package core

// The live mutation path: ApplyUpdate runs a SPARQL 1.1 Update request
// against a dataset's writable local tier and then repairs every derived
// artifact incrementally — the extraction index is adjusted by the net
// triple delta (extraction.ApplyDelta) instead of re-extracted, the
// Schema Summary and Cluster Schema are rebuilt from it, the schema diff
// is recorded, the dataset generation is bumped (invalidating cached
// snapshots and ETags), and a schema.Diff-shaped event is published on
// the change feed.

import (
	"context"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/endpoint"
	"repro/internal/extraction"
	"repro/internal/schema"
	"repro/internal/sparql"
	"repro/internal/store"
	"repro/internal/update"
)

// UpdateResult reports what one applied update request changed.
type UpdateResult struct {
	// Dataset is the endpoint URL the update applied to.
	Dataset string `json:"dataset"`
	// Added and Removed count the net triple delta.
	Added   int `json:"added"`
	Removed int `json:"removed"`
	// Generation is the dataset's generation after the update; unchanged
	// when the update was a no-op.
	Generation uint64 `json:"generation"`
	// Seq is the change-feed sequence number of the published event; 0
	// for a no-op update (no event).
	Seq uint64 `json:"seq,omitempty"`
	// Diff is the schema-level consequence, when the dataset has an
	// extracted index and the update changed its summary.
	Diff *schema.Diff `json:"diff,omitempty"`
}

// Changes returns the instance's change feed: one event per applied
// update that changed anything, subscribable with replay.
func (h *HBOLD) Changes() *update.Feed { return h.feed }

// writableBackend resolves the storage tier an update to url mutates:
// the persistent corpus store when the instance has one (it is the
// authoritative local replica of the dataset), otherwise the connected
// client's local store when it is writable. Updates cannot be forwarded
// to remote endpoints — this is a local mutation subsystem.
func (h *HBOLD) writableBackend(url string) (store.Backend, error) {
	if h.CorpusDir != "" {
		return h.Corpus(url)
	}
	c, err := h.client(url)
	if err != nil {
		return nil, err
	}
	lc, ok := c.(endpoint.LocalClient)
	if !ok {
		return nil, fmt.Errorf("core: %s has no writable local tier (remote endpoint, no corpus directory)", url)
	}
	be, ok := lc.Store.(store.Backend)
	if !ok {
		return nil, fmt.Errorf("core: %s's local store is read-only", url)
	}
	return be, nil
}

// ApplyUpdate parses and applies a SPARQL Update request to url's
// writable tier, maintains the dataset's derived artifacts
// incrementally, and publishes the change event. A request that nets to
// no change (all inserts duplicate, all deletes absent) leaves the
// generation, caches and feed untouched.
func (h *HBOLD) ApplyUpdate(ctx context.Context, url, text string) (*UpdateResult, error) {
	u, err := sparql.ParseUpdate(text)
	if err != nil {
		return nil, err // syntax errors before any tier is opened or created
	}
	be, err := h.writableBackend(url)
	if err != nil {
		return nil, err
	}
	d, err := update.Apply(ctx, be, u)
	if err != nil {
		return nil, err
	}
	res := &UpdateResult{
		Dataset:    url,
		Added:      len(d.Added),
		Removed:    len(d.Removed),
		Generation: h.Generation(url),
	}
	if d.Empty() {
		return res, nil
	}
	now := h.Clock.Now()
	var diff *schema.Diff
	// Incremental maintenance of the derived artifacts: only datasets
	// with an extracted index have any; for the rest (a bare corpus
	// served before its first extraction) the triple tier alone changed.
	if ix, err := h.Index(url); err == nil {
		old, _ := h.Summary(url) // pre-update summary; nil is fine
		extraction.ApplyDelta(ix, be, d.Added, d.Removed, now)
		s := schema.Build(ix)
		cs, err := cluster.Build(s, cluster.Options{Algorithm: h.Algorithm, Seed: h.Seed})
		if err != nil {
			return nil, err
		}
		if old != nil {
			if dd := schema.Compare(old, s); !dd.Unchanged() {
				diff = dd
				if err := h.DB.Collection(CollDiffs).Put(url, dd); err != nil {
					return nil, err
				}
			}
		}
		if err := h.DB.Collection(CollIndexes).Put(url, ix); err != nil {
			return nil, err
		}
		if err := h.DB.Collection(CollSummaries).Put(url, s); err != nil {
			return nil, err
		}
		if err := h.DB.Collection(CollClusters).Put(url, cs); err != nil {
			return nil, err
		}
	}
	// the persisted state changed: every cached snapshot and ETag of the
	// dataset stops validating, exactly as after a re-extraction
	h.bumpGeneration(url)
	gen := h.Generation(url)
	h.Cache.InvalidateBefore(url, gen)
	res.Generation = gen
	res.Diff = diff
	ev := h.feed.Publish(update.Event{
		Dataset:    url,
		Time:       now,
		Generation: gen,
		Added:      len(d.Added),
		Removed:    len(d.Removed),
		Diff:       diff,
	})
	res.Seq = ev.Seq
	h.Metrics.Counter("hbold_updates_total",
		"SPARQL Update requests applied (no-ops excluded).").Inc()
	h.Metrics.Counter("hbold_update_triples_added_total",
		"Net triples added by SPARQL Update requests.").Add(float64(len(d.Added)))
	h.Metrics.Counter("hbold_update_triples_removed_total",
		"Net triples removed by SPARQL Update requests.").Add(float64(len(d.Removed)))
	return res, nil
}
