// Package docstore is a small document database standing in for the
// MongoDB instance H-BOLD uses to persist Schema Summaries and Cluster
// Schemas. Documents are JSON-serializable values organized in named
// collections keyed by a document id, with optional persistence to a
// directory of JSON files.
package docstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrNotFound is returned when a document id is absent.
var ErrNotFound = errors.New("docstore: not found")

// DB is a set of named collections. It is safe for concurrent use.
type DB struct {
	mu    sync.RWMutex
	colls map[string]*Collection
	// dir is the persistence directory; empty means memory-only.
	dir string
}

// Open returns a DB persisted under dir. If dir is empty the DB is
// memory-only. Existing collections under dir are loaded eagerly.
func Open(dir string) (*DB, error) {
	db := &DB{colls: make(map[string]*Collection), dir: dir}
	if dir == "" {
		return db, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("docstore: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("docstore: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			name := strings.TrimSuffix(e.Name(), ".json")
			c := newCollection(name, db)
			if err := c.load(filepath.Join(dir, e.Name())); err != nil {
				return nil, err
			}
			db.colls[name] = c
		}
	}
	return db, nil
}

// MustOpenMem returns a memory-only DB (never fails).
func MustOpenMem() *DB {
	db, err := Open("")
	if err != nil {
		panic(err)
	}
	return db
}

// Collection returns the named collection, creating it if absent.
func (db *DB) Collection(name string) *Collection {
	db.mu.Lock()
	defer db.mu.Unlock()
	c, ok := db.colls[name]
	if !ok {
		c = newCollection(name, db)
		db.colls[name] = c
	}
	return c
}

// Collections lists collection names, sorted.
func (db *DB) Collections() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.colls))
	for n := range db.colls {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Flush persists every collection (no-op for memory-only DBs).
func (db *DB) Flush() error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.dir == "" {
		return nil
	}
	for _, c := range db.colls {
		if err := c.flush(); err != nil {
			return err
		}
	}
	return nil
}

// Collection is an id → JSON document map.
type Collection struct {
	mu   sync.RWMutex
	name string
	db   *DB
	docs map[string]json.RawMessage
}

func newCollection(name string, db *DB) *Collection {
	return &Collection{name: name, db: db, docs: make(map[string]json.RawMessage)}
}

// Put stores doc (any JSON-marshalable value) under id, replacing any
// previous document.
func (c *Collection) Put(id string, doc any) error {
	raw, err := json.Marshal(doc)
	if err != nil {
		return fmt.Errorf("docstore: marshal %s/%s: %w", c.name, id, err)
	}
	c.mu.Lock()
	c.docs[id] = raw
	c.mu.Unlock()
	return nil
}

// Get unmarshals the document with the given id into out.
func (c *Collection) Get(id string, out any) error {
	c.mu.RLock()
	raw, ok := c.docs[id]
	c.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %s/%s", ErrNotFound, c.name, id)
	}
	return json.Unmarshal(raw, out)
}

// GetRaw returns the stored JSON bytes of a document without
// unmarshaling. The returned slice is shared with the store and must
// not be modified.
func (c *Collection) GetRaw(id string) (json.RawMessage, error) {
	c.mu.RLock()
	raw, ok := c.docs[id]
	c.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, c.name, id)
	}
	return raw, nil
}

// Has reports whether a document exists.
func (c *Collection) Has(id string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.docs[id]
	return ok
}

// Delete removes a document; deleting a missing id is a no-op.
func (c *Collection) Delete(id string) {
	c.mu.Lock()
	delete(c.docs, id)
	c.mu.Unlock()
}

// Len returns the number of documents.
func (c *Collection) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.docs)
}

// IDs returns all document ids, sorted.
func (c *Collection) IDs() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ids := make([]string, 0, len(c.docs))
	for id := range c.docs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Each calls fn with every (id, raw document), sorted by id; returning
// false stops early.
func (c *Collection) Each(fn func(id string, raw json.RawMessage) bool) {
	c.mu.RLock()
	ids := make([]string, 0, len(c.docs))
	for id := range c.docs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	snapshot := make([]json.RawMessage, len(ids))
	for i, id := range ids {
		snapshot[i] = c.docs[id]
	}
	c.mu.RUnlock()
	for i, id := range ids {
		if !fn(id, snapshot[i]) {
			return
		}
	}
}

// Filter returns the ids of documents whose raw JSON satisfies pred.
func (c *Collection) Filter(pred func(raw json.RawMessage) bool) []string {
	var out []string
	c.Each(func(id string, raw json.RawMessage) bool {
		if pred(raw) {
			out = append(out, id)
		}
		return true
	})
	return out
}

// flush writes the collection atomically and durably: temp file, fsync,
// rename, then fsync of the directory — so a crash leaves either the
// old or the new file, never a torn or unlinked one.
func (c *Collection) flush() error {
	c.mu.RLock()
	data, err := json.MarshalIndent(c.docs, "", " ")
	c.mu.RUnlock()
	if err != nil {
		return fmt.Errorf("docstore: flush %s: %w", c.name, err)
	}
	path := filepath.Join(c.db.dir, c.name+".json")
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("docstore: flush %s: %w", c.name, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("docstore: flush %s: %w", c.name, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("docstore: flush %s: %w", c.name, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("docstore: flush %s: %w", c.name, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("docstore: flush %s: %w", c.name, err)
	}
	// the rename itself must survive a crash: sync the directory entry
	d, err := os.Open(c.db.dir)
	if err != nil {
		return fmt.Errorf("docstore: flush %s: %w", c.name, err)
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	if serr != nil {
		return fmt.Errorf("docstore: flush %s: %w", c.name, serr)
	}
	return nil
}

func (c *Collection) load(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("docstore: load %s: %w", c.name, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return json.Unmarshal(data, &c.docs)
}
