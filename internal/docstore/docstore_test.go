package docstore

import (
	"encoding/json"
	"errors"
	"path/filepath"
	"testing"
	"testing/quick"
)

type doc struct {
	Name  string `json:"name"`
	Count int    `json:"count"`
}

func TestPutGet(t *testing.T) {
	db := MustOpenMem()
	c := db.Collection("summaries")
	if err := c.Put("d1", doc{Name: "x", Count: 3}); err != nil {
		t.Fatal(err)
	}
	var got doc
	if err := c.Get("d1", &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != "x" || got.Count != 3 {
		t.Fatalf("got %+v", got)
	}
}

func TestGetMissing(t *testing.T) {
	db := MustOpenMem()
	var got doc
	err := db.Collection("c").Get("nope", &got)
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestPutReplaces(t *testing.T) {
	db := MustOpenMem()
	c := db.Collection("c")
	c.Put("k", doc{Count: 1})
	c.Put("k", doc{Count: 2})
	var got doc
	c.Get("k", &got)
	if got.Count != 2 {
		t.Fatalf("got %+v", got)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestDeleteAndHas(t *testing.T) {
	db := MustOpenMem()
	c := db.Collection("c")
	c.Put("k", doc{})
	if !c.Has("k") {
		t.Fatal("Has should be true")
	}
	c.Delete("k")
	if c.Has("k") {
		t.Fatal("Has should be false after Delete")
	}
	c.Delete("k") // idempotent
}

func TestIDsSorted(t *testing.T) {
	db := MustOpenMem()
	c := db.Collection("c")
	for _, id := range []string{"z", "a", "m"} {
		c.Put(id, doc{})
	}
	ids := c.IDs()
	if len(ids) != 3 || ids[0] != "a" || ids[1] != "m" || ids[2] != "z" {
		t.Fatalf("IDs = %v", ids)
	}
}

func TestEachEarlyStop(t *testing.T) {
	db := MustOpenMem()
	c := db.Collection("c")
	for _, id := range []string{"a", "b", "c"} {
		c.Put(id, doc{})
	}
	n := 0
	c.Each(func(string, json.RawMessage) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Fatalf("visited %d", n)
	}
}

func TestFilter(t *testing.T) {
	db := MustOpenMem()
	c := db.Collection("c")
	c.Put("a", doc{Count: 1})
	c.Put("b", doc{Count: 5})
	c.Put("d", doc{Count: 9})
	ids := c.Filter(func(raw json.RawMessage) bool {
		var d doc
		json.Unmarshal(raw, &d)
		return d.Count > 3
	})
	if len(ids) != 2 || ids[0] != "b" || ids[1] != "d" {
		t.Fatalf("Filter = %v", ids)
	}
}

func TestCollectionsList(t *testing.T) {
	db := MustOpenMem()
	db.Collection("beta")
	db.Collection("alpha")
	names := db.Collections()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Fatalf("Collections = %v", names)
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := db.Collection("summaries")
	c.Put("d1", doc{Name: "persisted", Count: 7})
	c.Put("d2", doc{Name: "two", Count: 2})
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// verify file exists
	if _, err := filepath.Glob(filepath.Join(dir, "summaries.json")); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got doc
	if err := db2.Collection("summaries").Get("d1", &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != "persisted" || got.Count != 7 {
		t.Fatalf("got %+v", got)
	}
	if db2.Collection("summaries").Len() != 2 {
		t.Fatal("document count lost")
	}
}

func TestFlushMemoryOnlyNoop(t *testing.T) {
	db := MustOpenMem()
	db.Collection("c").Put("k", doc{})
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestPutUnmarshalableFails(t *testing.T) {
	db := MustOpenMem()
	if err := db.Collection("c").Put("k", make(chan int)); err == nil {
		t.Fatal("marshaling a channel should fail")
	}
}

// Property: Put then Get returns the same document for arbitrary content.
func TestQuickPutGetRoundTrip(t *testing.T) {
	db := MustOpenMem()
	c := db.Collection("q")
	f := func(id, name string, count int) bool {
		if err := c.Put(id, doc{Name: name, Count: count}); err != nil {
			return false
		}
		var got doc
		if err := c.Get(id, &got); err != nil {
			return false
		}
		return got.Name == name && got.Count == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
