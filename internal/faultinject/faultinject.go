// Package faultinject is the deterministic chaos harness: it wraps the
// three seams a federation member's traffic crosses — an http.Handler
// (server side), an http.RoundTripper (client side) and a net.Listener
// (connection accept) — and injects the failure modes a live SPARQL
// endpoint exhibits in the wild: added latency with a heavy tail, error
// responses, connection black-holes, mid-stream body cuts, garbage
// bytes, and up/down flapping on a schedule. Every probabilistic choice
// draws from one seeded PRNG and the flapping schedule is keyed off the
// injected clock, so a chaos scenario replays exactly: the same seed
// and the same simulated calendar produce the same outages in the same
// order. That is what lets the resilience tests assert row-for-row
// outcomes ("source B dies mid-stream on query 3") against a federation
// we cannot chaos-test live.
//
// Injected latency is real wall-clock sleeping (it models actually
// waiting, bounded by the request context); only the flapping schedule
// reads the injected clock, so simulated calendars can march a member
// through outage windows without sleeping through them.
package faultinject

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/clock"
)

// DefaultCutAfter is the body offset a mid-stream cut defaults to:
// deep enough that head and first rows flow, shallow enough that the
// cut lands mid-results on any non-trivial corpus.
const DefaultCutAfter = 2048

// Config parameterizes an Injector. The zero value injects nothing.
type Config struct {
	// Seed drives every probabilistic choice; the same seed replays the
	// same chaos.
	Seed int64
	// Clock drives the flapping schedule; nil means the wall clock.
	Clock clock.Clock
	// Latency is added to every request before it is served.
	Latency time.Duration
	// Tail is extra latency added with probability TailProb — the
	// long-tail stragglers hedged opens exist to cover.
	Tail     time.Duration
	TailProb float64
	// ErrorRate is the probability a request fails outright (HTTP 500
	// from the middleware, a connection error from the transport).
	ErrorRate float64
	// BlackholeRate is the probability a request hangs until the caller
	// gives up (its context is canceled).
	BlackholeRate float64
	// CutRate is the probability the response body is cut after
	// CutAfter bytes — the mid-stream death of a streaming result.
	CutRate float64
	// CutAfter is the body offset of a cut; 0 means DefaultCutAfter.
	CutAfter int
	// GarbageRate is the probability garbage bytes replace the response
	// tail, exercising decoder hardening.
	GarbageRate float64
	// FlapPeriod, when > 0, flips the member between up and down on a
	// deterministic schedule: each period of the clock's timeline is
	// down with probability FlapDownProb, decided by hashing the seed
	// with the period index. Down periods answer 503 with a Retry-After
	// naming the next period start (middleware), refuse connections
	// (listener), or fail to dial (transport).
	FlapPeriod   time.Duration
	FlapDownProb float64
}

// enabled reports whether any knob is set.
func (c Config) enabled() bool {
	return c.Latency > 0 || (c.Tail > 0 && c.TailProb > 0) || c.ErrorRate > 0 ||
		c.BlackholeRate > 0 || c.CutRate > 0 || c.GarbageRate > 0 ||
		(c.FlapPeriod > 0 && c.FlapDownProb > 0)
}

// Injector holds one chaos configuration and its seeded PRNG.
type Injector struct {
	cfg Config
	clk clock.Clock

	mu  sync.Mutex
	rng *rand.Rand
}

// New builds an injector for cfg.
func New(cfg Config) *Injector {
	clk := cfg.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	if cfg.CutAfter <= 0 {
		cfg.CutAfter = DefaultCutAfter
	}
	return &Injector{cfg: cfg, clk: clk, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Enabled reports whether this injector injects anything — the CLI uses
// it to decide whether to wrap the handler at all.
func (in *Injector) Enabled() bool { return in.cfg.enabled() }

// roll draws one uniform sample against probability p.
func (in *Injector) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Float64() < p
}

// delay returns this request's injected latency: the base plus, with
// TailProb, the tail.
func (in *Injector) delay() time.Duration {
	d := in.cfg.Latency
	if in.cfg.Tail > 0 && in.roll(in.cfg.TailProb) {
		d += in.cfg.Tail
	}
	return d
}

// Up reports whether the flapping schedule has the member up right now
// (always true without a schedule).
func (in *Injector) Up() bool {
	up, _ := in.flap()
	return up
}

// flap evaluates the schedule at the injected clock's now: whether the
// member is up, and — when down — how long until the next period
// starts (the Retry-After hint).
func (in *Injector) flap() (up bool, retryAfter time.Duration) {
	if in.cfg.FlapPeriod <= 0 || in.cfg.FlapDownProb <= 0 {
		return true, 0
	}
	now := in.clk.Now()
	elapsed := now.Sub(clock.Epoch)
	period := int64(elapsed / in.cfg.FlapPeriod)
	// one PRNG draw per period, derived from (seed, period) so the
	// schedule is a pure function of the clock — concurrent readers and
	// replays agree without sharing rng state
	mix := uint64(in.cfg.Seed) ^ uint64(period+1)*0x9e3779b97f4a7c15
	draw := rand.New(rand.NewSource(int64(mix))).Float64()
	if draw >= in.cfg.FlapDownProb {
		return true, 0
	}
	next := clock.Epoch.Add(time.Duration(period+1) * in.cfg.FlapPeriod)
	return false, next.Sub(now)
}

// sleep waits d of real time, returning early when ctx dies.
func sleep(ctx interface{ Done() <-chan struct{} }, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// garbage is the byte salad injected in place of a response tail.
var garbage = []byte(`{{{"this is not sparql-results+json"]]] \x00\xff <<<>`)

// Middleware wraps a handler in the injector's chaos, in this order:
// flap (503 + Retry-After), latency (base + tail), black-hole (hang
// until the client goes away), error (500), garbage (salad then
// connection abort), cut (serve until CutAfter bytes, then abort the
// connection mid-stream). Cut and garbage abort via
// http.ErrAbortHandler, so the client observes a truncated body and a
// reset — the real shape of a mid-stream death.
func (in *Injector) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if up, retry := in.flap(); !up {
			w.Header().Set("Retry-After", fmt.Sprintf("%d", int(retry.Seconds()+0.999)))
			http.Error(w, "faultinject: flapping member is down", http.StatusServiceUnavailable)
			return
		}
		if !sleep(r.Context(), in.delay()) {
			return
		}
		if in.roll(in.cfg.BlackholeRate) {
			<-r.Context().Done()
			return
		}
		if in.roll(in.cfg.ErrorRate) {
			http.Error(w, "faultinject: injected error", http.StatusInternalServerError)
			return
		}
		if in.roll(in.cfg.GarbageRate) {
			w.Write(garbage)
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			panic(http.ErrAbortHandler)
		}
		if in.roll(in.cfg.CutRate) {
			next.ServeHTTP(&cutWriter{ResponseWriter: w, remaining: in.cfg.CutAfter}, r)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// cutWriter passes writes through until the budget is spent, then
// flushes what got through and aborts the connection — the response
// dies mid-body, after real rows were already on the wire.
type cutWriter struct {
	http.ResponseWriter
	remaining int
}

func (c *cutWriter) Write(p []byte) (int, error) {
	if len(p) <= c.remaining {
		c.remaining -= len(p)
		return c.ResponseWriter.Write(p)
	}
	c.ResponseWriter.Write(p[:c.remaining])
	c.remaining = 0
	c.Flush()
	panic(http.ErrAbortHandler)
}

// Flush forwards to the wrapped writer so the cut bytes actually reach
// the wire before the abort.
func (c *cutWriter) Flush() {
	if f, ok := c.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Transport wraps a RoundTripper in client-side chaos: flap and
// black-hole before dialing, latency before the request, error instead
// of it, and cut/garbage applied to the response body.
func (in *Injector) Transport(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return chaosTransport{in: in, base: base}
}

type chaosTransport struct {
	in   *Injector
	base http.RoundTripper
}

func (t chaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	in := t.in
	if !in.Up() {
		return nil, &net.OpError{Op: "dial", Net: "tcp", Err: fmt.Errorf("faultinject: flapping member is down")}
	}
	if !sleep(req.Context(), in.delay()) {
		return nil, req.Context().Err()
	}
	if in.roll(in.cfg.BlackholeRate) {
		<-req.Context().Done()
		return nil, req.Context().Err()
	}
	if in.roll(in.cfg.ErrorRate) {
		return nil, &net.OpError{Op: "read", Net: "tcp", Err: fmt.Errorf("faultinject: injected connection error")}
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if in.roll(in.cfg.GarbageRate) {
		resp.Body = &garbageBody{inner: resp.Body, remaining: in.cfg.CutAfter}
	} else if in.roll(in.cfg.CutRate) {
		resp.Body = &cutBody{inner: resp.Body, remaining: in.cfg.CutAfter}
	}
	return resp, nil
}

// cutBody truncates the body after its budget with an unexpected EOF —
// what a connection reset mid-body surfaces as to a decoder.
type cutBody struct {
	inner     io.ReadCloser
	remaining int
}

func (b *cutBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, fmt.Errorf("faultinject: stream cut: %w", io.ErrUnexpectedEOF)
	}
	if len(p) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.inner.Read(p)
	b.remaining -= n
	return n, err
}

func (b *cutBody) Close() error { return b.inner.Close() }

// garbageBody serves the real body up to its budget, then the salad,
// then EOF — a proxy or buggy server corrupting the tail.
type garbageBody struct {
	inner     io.ReadCloser
	remaining int
	served    int
}

func (b *garbageBody) Read(p []byte) (int, error) {
	if b.remaining > 0 {
		if len(p) > b.remaining {
			p = p[:b.remaining]
		}
		n, err := b.inner.Read(p)
		b.remaining -= n
		if b.remaining > 0 || err != nil {
			return n, err
		}
		return n, nil
	}
	if b.served < len(garbage) {
		n := copy(p, garbage[b.served:])
		b.served += n
		return n, nil
	}
	return 0, io.EOF
}

func (b *garbageBody) Close() error { return b.inner.Close() }

// Listener wraps l so that, while the flapping schedule has the member
// down, accepted connections are closed immediately — the client sees a
// refused/reset connection, never an HTTP response.
func (in *Injector) Listener(l net.Listener) net.Listener {
	return chaosListener{Listener: l, in: in}
}

type chaosListener struct {
	net.Listener
	in *Injector
}

func (l chaosListener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		if !l.in.Up() {
			c.Close()
			continue
		}
		return c, nil
	}
}
