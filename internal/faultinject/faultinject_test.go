package faultinject

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
)

// chattyHandler streams a deterministic body well past any cut budget.
func chattyHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		line := strings.Repeat("x", 63) + "\n"
		for i := 0; i < 256; i++ {
			io.WriteString(w, line)
		}
	})
}

func TestFlapScheduleDeterministic(t *testing.T) {
	ck := clock.NewSim(clock.Epoch)
	mk := func() *Injector {
		return New(Config{Seed: 7, Clock: ck, FlapPeriod: time.Minute, FlapDownProb: 0.5})
	}
	a, b := mk(), mk()
	downs := 0
	for i := 0; i < 200; i++ {
		au, bu := a.Up(), b.Up()
		if au != bu {
			t.Fatalf("period %d: same seed disagrees (%v vs %v)", i, au, bu)
		}
		if !au {
			downs++
		}
		ck.Advance(time.Minute)
	}
	if downs < 50 || downs > 150 {
		t.Fatalf("downs = %d of 200 at p=0.5: schedule is not flapping", downs)
	}
	// a different seed must produce a different schedule
	ck2 := clock.NewSim(clock.Epoch)
	c := New(Config{Seed: 8, Clock: ck2, FlapPeriod: time.Minute, FlapDownProb: 0.5})
	ck3 := clock.NewSim(clock.Epoch)
	d := New(Config{Seed: 7, Clock: ck3, FlapPeriod: time.Minute, FlapDownProb: 0.5})
	same := 0
	for i := 0; i < 200; i++ {
		if c.Up() == d.Up() {
			same++
		}
		ck2.Advance(time.Minute)
		ck3.Advance(time.Minute)
	}
	if same == 200 {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestMiddlewareFlapAnswers503WithRetryAfter(t *testing.T) {
	ck := clock.NewSim(clock.Epoch)
	// DownProb 1: every period is down
	in := New(Config{Seed: 1, Clock: ck, FlapPeriod: time.Minute, FlapDownProb: 1})
	srv := httptest.NewServer(in.Middleware(chattyHandler()))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs <= 0 || secs > 60 {
		t.Fatalf("Retry-After = %q, want seconds in (0, 60]", resp.Header.Get("Retry-After"))
	}
}

func TestMiddlewareCutTruncatesMidBody(t *testing.T) {
	in := New(Config{Seed: 1, CutRate: 1, CutAfter: 1024})
	srv := httptest.NewServer(in.Middleware(chattyHandler()))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatalf("read %d bytes with no error; want a mid-body failure", len(body))
	}
	if len(body) == 0 || len(body) > 1024 {
		t.Fatalf("got %d bytes before the cut, want (0, 1024]", len(body))
	}
}

func TestTransportCutAndGarbage(t *testing.T) {
	srv := httptest.NewServer(chattyHandler())
	defer srv.Close()
	in := New(Config{Seed: 1, CutRate: 1, CutAfter: 512})
	client := &http.Client{Transport: in.Transport(nil)}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err == nil {
		t.Fatal("cut body read cleanly")
	}
	if len(body) != 512 {
		t.Fatalf("cut after %d bytes, want 512", len(body))
	}
	ing := New(Config{Seed: 1, GarbageRate: 1, CutAfter: 512})
	gclient := &http.Client{Transport: ing.Transport(nil)}
	resp, err = gclient.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("garbage body must end with clean EOF, got %v", err)
	}
	if !strings.Contains(string(body), "this is not sparql-results+json") {
		t.Fatal("garbage tail missing from body")
	}
}

func TestTransportFlapRefusesConnection(t *testing.T) {
	srv := httptest.NewServer(chattyHandler())
	defer srv.Close()
	ck := clock.NewSim(clock.Epoch)
	in := New(Config{Seed: 1, Clock: ck, FlapPeriod: time.Minute, FlapDownProb: 1})
	client := &http.Client{Transport: in.Transport(nil)}
	if _, err := client.Get(srv.URL); err == nil {
		t.Fatal("down member dialed successfully")
	}
}

func TestTransportBlackholeHonorsContext(t *testing.T) {
	srv := httptest.NewServer(chattyHandler())
	defer srv.Close()
	in := New(Config{Seed: 1, BlackholeRate: 1})
	client := &http.Client{Transport: in.Transport(nil)}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	start := time.Now()
	if _, err := client.Do(req); err == nil {
		t.Fatal("black-holed request returned a response")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("black-hole ignored the context")
	}
}

func TestListenerRefusesWhileDown(t *testing.T) {
	ck := clock.NewSim(clock.Epoch)
	in := New(Config{Seed: 1, Clock: ck, FlapPeriod: time.Minute, FlapDownProb: 1})
	srv := httptest.NewUnstartedServer(chattyHandler())
	srv.Listener = in.Listener(srv.Listener)
	srv.Start()
	defer srv.Close()
	client := &http.Client{Timeout: 2 * time.Second}
	if resp, err := client.Get(srv.URL); err == nil {
		resp.Body.Close()
		t.Fatal("down listener served a response")
	}
}

func TestEnabled(t *testing.T) {
	if New(Config{}).Enabled() {
		t.Fatal("zero config reports enabled")
	}
	if !New(Config{Latency: time.Millisecond}).Enabled() {
		t.Fatal("latency config reports disabled")
	}
	if !New(Config{FlapPeriod: time.Minute, FlapDownProb: 0.5}).Enabled() {
		t.Fatal("flap config reports disabled")
	}
}
