package obs

import (
	"context"
	"sync"
	"time"
)

// Trace collects the spans of one traced operation (typically one query).
// A nil *Trace is valid and free: StartSpan returns a nil *Span whose
// methods are no-ops, so instrumented code never branches on "is tracing
// on". Traces are not reused across operations.
type Trace struct {
	mu    sync.Mutex
	spans []*Span
	now   func() time.Time
}

// NewTrace returns an empty trace. now is the clock used for span
// durations; nil means time.Now.
func NewTrace(now func() time.Time) *Trace {
	if now == nil {
		now = time.Now
	}
	return &Trace{now: now}
}

// Span is one timed stage inside a trace.
type Span struct {
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"durationNs"`
	RowsIn   int64         `json:"rowsIn"`
	RowsOut  int64         `json:"rowsOut"`

	t    *Trace
	done bool
}

// StartSpan opens a named span. Safe on a nil trace.
func (t *Trace) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{Name: name, Start: t.now(), t: t}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// SetRows records the row counts flowing through the span.
func (s *Span) SetRows(in, out int64) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	s.RowsIn, s.RowsOut = in, out
	s.t.mu.Unlock()
}

// End closes the span, fixing its duration. Ending twice keeps the first
// duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	if !s.done {
		s.done = true
		s.Duration = s.t.now().Sub(s.Start)
	}
	s.t.mu.Unlock()
}

// Spans returns the spans recorded so far, in start order.
func (t *Trace) Spans() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, len(t.spans))
	copy(out, t.spans)
	return out
}

type ctxKey int

const (
	registryKey ctxKey = iota
	traceKey
)

// WithRegistry returns a context carrying r; instrumented code discovers
// it via RegistryFrom and records metrics only when present.
func WithRegistry(ctx context.Context, r *Registry) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, registryKey, r)
}

// RegistryFrom returns the registry carried by ctx, or nil.
func RegistryFrom(ctx context.Context) *Registry {
	if ctx == nil {
		return nil
	}
	r, _ := ctx.Value(registryKey).(*Registry)
	return r
}

// WithTrace returns a context carrying t.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey, t)
}

// TraceFrom returns the trace carried by ctx, or nil (in which case
// StartSpan on the result is still safe and free).
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey).(*Trace)
	return t
}

// StartSpan opens a span on the trace carried by ctx, if any.
func StartSpan(ctx context.Context, name string) *Span {
	return TraceFrom(ctx).StartSpan(name)
}
