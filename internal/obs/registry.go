// Package obs is a dependency-free observability substrate: a metrics
// registry of atomic counters, gauges, and histograms (optionally labeled),
// plus a lightweight span tracer for per-query stage profiles.
//
// The registry is the process-lifetime home for series that previously
// lived in per-instance structs (scheduler counters, federation
// SourceStats, snapcache stats). Subsystems hold handles (Counter,
// Histogram, ...) obtained once via the get-or-create constructors; the
// hot-path update is a single atomic op. Exposition is pull-based:
// Snapshot renders every family into a stable, sorted value form that the
// server serializes as Prometheus text format (prom.go) or JSON.
//
// Everything here is standard library only.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// DurationBuckets are the default histogram bounds, in seconds. They mirror
// the latency bucket scheme proven in internal/sched/metrics.go
// (1ms … 30s), so scheduler latency series migrate onto the registry
// without changing shape.
var DurationBuckets = []float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 5, 30}

// RowBuckets suit row-count distributions (1 … 1e6).
var RowBuckets = []float64{1, 10, 100, 1000, 10000, 100000, 1000000}

// Kind identifies the exposition type of a family.
type Kind uint8

// Family kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing float64.
type Counter struct{ bits atomic.Uint64 }

// Add increments the counter by v (v < 0 is ignored).
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is an instantaneous float64 value.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add moves the gauge by v (may be negative).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets and tracks sum and max.
// Buckets are upper-bound inclusive (le semantics): an observation equal to
// a bound lands in that bound's bucket; values above the last bound land in
// the implicit +Inf bucket; negative values land in the first bucket.
type Histogram struct {
	bounds []float64 // sorted upper bounds, exclusive of +Inf
	counts []atomic.Int64
	count  atomic.Int64
	sum    Gauge         // Gauge so negative observations still sum
	max    atomic.Uint64 // float64 bits of the largest positive observation
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// SearchFloat64s finds the first bound >= v only when v is not present;
	// for exact matches it returns the index of the bound itself, which is
	// exactly le-inclusive placement. For v greater than every bound the
	// index is len(bounds): the +Inf bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for v > 0 {
		old := h.max.Load()
		if math.Float64frombits(old) >= v || h.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// Max returns the largest observation so far.
func (h *Histogram) Max() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.max.Load())
}

// Bounds returns the configured upper bounds (without +Inf).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// BucketCounts returns the per-bucket (non-cumulative) counts; the final
// element is the +Inf bucket.
func (h *Histogram) BucketCounts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// family is one named metric family with zero or more labeled series.
type family struct {
	name   string
	help   string
	kind   Kind
	labels []string // label names, fixed per family

	mu     sync.Mutex
	series map[string]*series // keyed by joined label values
	order  []string           // insertion order of keys, for stable snapshots

	// callback-backed families (CounterFunc/GaugeFunc) read at snapshot
	fn func() float64
}

type series struct {
	values  []string
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry is a set of metric families. The zero value is not usable; call
// NewRegistry. A nil *Registry is safe: every constructor returns nil
// handles and every handle method is a no-op, so instrumented code runs
// unchanged (and nearly free) when observability is not wired up.
type Registry struct {
	mu  sync.Mutex
	fam map[string]*family
	ord []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fam: make(map[string]*family)}
}

// labelKey joins label values with a separator that cannot appear unescaped.
func labelKey(values []string) string {
	switch len(values) {
	case 0:
		return ""
	case 1:
		return values[0]
	}
	n := 0
	for _, v := range values {
		n += len(v) + 1
	}
	b := make([]byte, 0, n)
	for i, v := range values {
		if i > 0 {
			b = append(b, 0xff)
		}
		b = append(b, v...)
	}
	return string(b)
}

// getFamily returns the family, creating it on first use. Re-registration
// with a different kind or label arity panics: that is a programming error,
// not a runtime condition.
func (r *Registry) getFamily(name, help string, kind Kind, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fam[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: family %q re-registered as %s/%d labels (was %s/%d)",
				name, kind, len(labels), f.kind, len(f.labels)))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, labels: labels, series: make(map[string]*series)}
	r.fam[name] = f
	r.ord = append(r.ord, name)
	return f
}

func (f *family) get(values []string, mk func() *series) *series {
	key := labelKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := mk()
	f.series[key] = s
	f.order = append(f.order, key)
	return s
}

// Counter returns the unlabeled counter named name, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	f := r.getFamily(name, help, KindCounter, nil)
	return f.get(nil, func() *series { return &series{counter: &Counter{}} }).counter
}

// Gauge returns the unlabeled gauge named name.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.getFamily(name, help, KindGauge, nil)
	return f.get(nil, func() *series { return &series{gauge: &Gauge{}} }).gauge
}

// Histogram returns the unlabeled histogram named name with the given
// bucket bounds (DurationBuckets if bounds is nil).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DurationBuckets
	}
	f := r.getFamily(name, help, KindHistogram, nil)
	return f.get(nil, func() *series { return &series{hist: newHistogram(bounds)} }).hist
}

// CounterFunc registers a callback-backed counter, read at snapshot time.
// Useful for exposing counters a subsystem already maintains under its own
// lock. Registering the same name again replaces the callback.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.getFamily(name, help, KindCounter, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// GaugeFunc registers a callback-backed gauge, read at snapshot time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.getFamily(name, help, KindGauge, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// CounterVec returns the labeled counter family named name.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.getFamily(name, help, KindCounter, labels)}
}

// With returns the counter for the given label values (one per label name).
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	if len(values) != len(v.f.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", v.f.name, len(v.f.labels), len(values)))
	}
	vals := make([]string, len(values))
	copy(vals, values)
	return v.f.get(vals, func() *series { return &series{values: vals, counter: &Counter{}} }).counter
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// GaugeVec returns the labeled gauge family named name.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.getFamily(name, help, KindGauge, labels)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	if len(values) != len(v.f.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", v.f.name, len(v.f.labels), len(values)))
	}
	vals := make([]string, len(values))
	copy(vals, values)
	return v.f.get(vals, func() *series { return &series{values: vals, gauge: &Gauge{}} }).gauge
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct {
	f      *family
	bounds []float64
}

// HistogramVec returns the labeled histogram family named name
// (DurationBuckets if bounds is nil).
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DurationBuckets
	}
	return &HistogramVec{f: r.getFamily(name, help, KindHistogram, labels), bounds: bounds}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	if len(values) != len(v.f.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", v.f.name, len(v.f.labels), len(values)))
	}
	vals := make([]string, len(values))
	copy(vals, values)
	return v.f.get(vals, func() *series { return &series{values: vals, hist: newHistogram(v.bounds)} }).hist
}

// Series is one snapshotted labeled series.
type Series struct {
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
	Hist   *HistSnapshot     `json:"hist,omitempty"`
}

// HistSnapshot is a snapshotted histogram.
type HistSnapshot struct {
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
	Max     float64   `json:"max"`
	Bounds  []float64 `json:"bounds"`  // upper bounds, +Inf implicit
	Buckets []int64   `json:"buckets"` // cumulative counts, one per bound plus +Inf
}

// Family is one snapshotted metric family.
type Family struct {
	Name   string   `json:"name"`
	Help   string   `json:"help,omitempty"`
	Kind   string   `json:"kind"`
	Series []Series `json:"series"`
}

// Snapshot renders every family into a stable value form. Families are
// sorted by name; series keep first-use order. Callback families are read
// here, on the scraper's goroutine.
func (r *Registry) Snapshot() []Family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, len(r.ord))
	copy(names, r.ord)
	fams := make([]*family, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.fam[n])
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := make([]Family, 0, len(fams))
	for _, f := range fams {
		fam := Family{Name: f.name, Help: f.help, Kind: f.kind.String()}
		f.mu.Lock()
		fn := f.fn
		keys := make([]string, len(f.order))
		copy(keys, f.order)
		sers := make([]*series, 0, len(keys))
		for _, k := range keys {
			sers = append(sers, f.series[k])
		}
		f.mu.Unlock()
		if fn != nil {
			fam.Series = append(fam.Series, Series{Value: fn()})
		}
		for _, s := range sers {
			var labels map[string]string
			if len(f.labels) > 0 {
				labels = make(map[string]string, len(f.labels))
				for i, ln := range f.labels {
					labels[ln] = s.values[i]
				}
			}
			switch {
			case s.counter != nil:
				fam.Series = append(fam.Series, Series{Labels: labels, Value: s.counter.Value()})
			case s.gauge != nil:
				fam.Series = append(fam.Series, Series{Labels: labels, Value: s.gauge.Value()})
			case s.hist != nil:
				h := s.hist
				counts := h.BucketCounts()
				cum := make([]int64, len(counts))
				var run int64
				for i, c := range counts {
					run += c
					cum[i] = run
				}
				fam.Series = append(fam.Series, Series{Labels: labels, Hist: &HistSnapshot{
					Count:   h.Count(),
					Sum:     h.Sum(),
					Max:     h.Max(),
					Bounds:  h.Bounds(),
					Buckets: cum,
				}})
			}
		}
		out = append(out, fam)
	}
	return out
}
