package obs

import (
	"bufio"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4): one # HELP / # TYPE header per family, then one
// line per series, histograms expanded into cumulative _bucket{le=...}
// series plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, fam := range r.Snapshot() {
		if fam.Help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(fam.Name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(fam.Help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(fam.Name)
		bw.WriteByte(' ')
		bw.WriteString(fam.Kind)
		bw.WriteByte('\n')
		for _, s := range fam.Series {
			if s.Hist != nil {
				writeHist(bw, fam.Name, s)
				continue
			}
			bw.WriteString(fam.Name)
			writeLabels(bw, s.Labels, "", 0)
			bw.WriteByte(' ')
			bw.WriteString(formatValue(s.Value))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

func writeHist(bw *bufio.Writer, name string, s Series) {
	h := s.Hist
	for i, cum := range h.Buckets {
		le := math.Inf(1)
		if i < len(h.Bounds) {
			le = h.Bounds[i]
		}
		bw.WriteString(name)
		bw.WriteString("_bucket")
		writeLabels(bw, s.Labels, "le", le)
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatInt(cum, 10))
		bw.WriteByte('\n')
	}
	bw.WriteString(name)
	bw.WriteString("_sum")
	writeLabels(bw, s.Labels, "", 0)
	bw.WriteByte(' ')
	bw.WriteString(formatValue(h.Sum))
	bw.WriteByte('\n')
	bw.WriteString(name)
	bw.WriteString("_count")
	writeLabels(bw, s.Labels, "", 0)
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatInt(h.Count, 10))
	bw.WriteByte('\n')
}

// writeLabels writes {k="v",...}, appending an le label when leName is
// non-empty. Label names come from Go identifiers in this codebase so only
// values need escaping. Keys are written in sorted order for determinism.
func writeLabels(bw *bufio.Writer, labels map[string]string, leName string, le float64) {
	if len(labels) == 0 && leName == "" {
		return
	}
	bw.WriteByte('{')
	first := true
	for _, k := range sortedKeys(labels) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.WriteString(k)
		bw.WriteString(`="`)
		bw.WriteString(escapeLabel(labels[k]))
		bw.WriteByte('"')
	}
	if leName != "" {
		if !first {
			bw.WriteByte(',')
		}
		bw.WriteString(leName)
		bw.WriteString(`="`)
		bw.WriteString(formatValue(le))
		bw.WriteByte('"')
	}
	bw.WriteByte('}')
}

func sortedKeys(m map[string]string) []string {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }
