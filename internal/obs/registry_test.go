package obs

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total", "hits")
	c.Inc()
	c.Add(2.5)
	c.Add(-1) // ignored: counters are monotonic
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	if again := r.Counter("hits_total", "hits"); again != c {
		t.Fatalf("get-or-create returned a different counter")
	}

	g := r.Gauge("depth", "queue depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %v, want 5", got)
	}
}

func TestNilRegistryIsFree(t *testing.T) {
	var r *Registry
	r.Counter("x", "").Inc()
	r.Gauge("y", "").Set(1)
	r.Histogram("z", "", nil).Observe(1)
	r.CounterVec("cv", "", "l").With("a").Inc()
	r.GaugeVec("gv", "", "l").With("a").Set(1)
	r.HistogramVec("hv", "", nil, "l").With("a").Observe(1)
	r.CounterFunc("cf", "", func() float64 { return 1 })
	if got := r.Snapshot(); got != nil {
		t.Fatalf("nil registry snapshot = %v, want nil", got)
	}
}

// TestHistogramBucketEdges covers the satellite edge cases: observation
// exactly on a bound, negative observation, and overflow past the last
// bound.
func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{1, 5, 10})

	h.Observe(5)    // exact bound → le=5 bucket (inclusive)
	h.Observe(-3)   // negative → first bucket
	h.Observe(11)   // overflow → +Inf bucket
	h.Observe(0.5)  // → le=1
	h.Observe(10)   // exact last bound → le=10, not +Inf
	h.Observe(5.01) // just past a bound → le=10

	want := []int64{2, 1, 2, 1} // le=1, le=5, le=10, +Inf
	got := h.BucketCounts()
	if len(got) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket[%d] = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if math.Abs(h.Sum()-28.51) > 1e-9 {
		t.Fatalf("sum = %v, want 28.51", h.Sum())
	}
	if h.Max() != 11 {
		t.Fatalf("max = %v, want 11", h.Max())
	}
}

func TestHistogramUnsortedBoundsAreSorted(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x", "", []float64{10, 1, 5})
	b := h.Bounds()
	if b[0] != 1 || b[1] != 5 || b[2] != 10 {
		t.Fatalf("bounds not sorted: %v", b)
	}
}

func TestVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("req_total", "requests", "source", "kind")
	v.With("a", "select").Add(2)
	v.With("b", "ask").Inc()
	v.With("a", "select").Inc()

	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("families = %d, want 1", len(snap))
	}
	fam := snap[0]
	if len(fam.Series) != 2 {
		t.Fatalf("series = %d, want 2", len(fam.Series))
	}
	if fam.Series[0].Labels["source"] != "a" || fam.Series[0].Value != 3 {
		t.Fatalf("series[0] = %+v", fam.Series[0])
	}
	if fam.Series[1].Labels["kind"] != "ask" || fam.Series[1].Value != 1 {
		t.Fatalf("series[1] = %+v", fam.Series[1])
	}
}

func TestCallbackFamilies(t *testing.T) {
	r := NewRegistry()
	n := 41.0
	r.CounterFunc("cb_total", "callback", func() float64 { return n })
	n++
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Series[0].Value != 42 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

// TestConcurrentRegistry exercises the registry under the race detector:
// parallel writers on counters, gauges, labeled histograms, plus a
// concurrent scraper snapshotting mid-flight.
func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	const writers = 8
	const perWriter = 500

	var writersWG, scraperWG sync.WaitGroup
	stop := make(chan struct{})
	scraperWG.Add(1)
	go func() { // scraper
		defer scraperWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
		}
	}()

	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			c := r.Counter("conc_total", "")
			g := r.Gauge("conc_gauge", "")
			hv := r.HistogramVec("conc_lat", "", []float64{0.25, 0.5, 0.75}, "writer")
			h := hv.With(string(rune('a' + w%4)))
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%100) / 100)
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	scraperWG.Wait()

	if got := r.Counter("conc_total", "").Value(); got != writers*perWriter {
		t.Fatalf("counter = %v, want %d", got, writers*perWriter)
	}
	var total int64
	for _, fam := range r.Snapshot() {
		if fam.Name != "conc_lat" {
			continue
		}
		for _, s := range fam.Series {
			total += s.Hist.Count
		}
	}
	if total != writers*perWriter {
		t.Fatalf("histogram observations = %d, want %d", total, writers*perWriter)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_requests_total", "Total requests.").Add(3)
	r.GaugeVec("app_up", "Source availability.", "source").With(`we"ird\src`).Set(1)
	h := r.Histogram("app_latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# TYPE app_requests_total counter",
		"app_requests_total 3",
		"# TYPE app_up gauge",
		`app_up{source="we\"ird\\src"} 1`,
		"# TYPE app_latency_seconds histogram",
		`app_latency_seconds_bucket{le="0.1"} 1`,
		`app_latency_seconds_bucket{le="1"} 2`,
		`app_latency_seconds_bucket{le="+Inf"} 3`,
		"app_latency_seconds_sum 2.55",
		"app_latency_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatalf("output must end with a newline")
	}
}

func TestSpans(t *testing.T) {
	now := time.Unix(100, 0)
	tr := NewTrace(func() time.Time { return now })
	s := tr.StartSpan("join")
	now = now.Add(25 * time.Millisecond)
	s.SetRows(100, 40)
	s.End()
	s.End() // idempotent

	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(spans))
	}
	if spans[0].Name != "join" || spans[0].Duration != 25*time.Millisecond ||
		spans[0].RowsIn != 100 || spans[0].RowsOut != 40 {
		t.Fatalf("span = %+v", spans[0])
	}

	// nil trace is free
	var nt *Trace
	ns := nt.StartSpan("x")
	ns.SetRows(1, 1)
	ns.End()
	if nt.Spans() != nil {
		t.Fatalf("nil trace has spans")
	}
}

func TestContextHelpers(t *testing.T) {
	ctx := context.Background()
	if RegistryFrom(ctx) != nil || TraceFrom(ctx) != nil {
		t.Fatal("empty context should carry nothing")
	}
	r := NewRegistry()
	tr := NewTrace(nil)
	ctx = WithRegistry(ctx, r)
	ctx = WithTrace(ctx, tr)
	if RegistryFrom(ctx) != r {
		t.Fatal("registry not carried")
	}
	if TraceFrom(ctx) != tr {
		t.Fatal("trace not carried")
	}
	if s := StartSpan(ctx, "stage"); s == nil {
		t.Fatal("StartSpan returned nil with a trace present")
	}
	if s := StartSpan(context.Background(), "stage"); s != nil {
		t.Fatal("StartSpan should be nil without a trace")
	}
}
