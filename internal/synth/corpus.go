package synth

import (
	"fmt"
	"math/rand"

	"repro/internal/clock"
	"repro/internal/endpoint"
	"repro/internal/store"
)

// Paper cardinalities (§3.3): the pre-crawl registry lists 610 endpoints
// of which 110 are indexed; the portal crawl discovers 65 + 9 + 15
// endpoints of which 19 were already listed, adding 70 and raising the
// totals to 680 listed / 130 indexed.
const (
	PreExistingEndpoints = 610
	PreExistingIndexable = 110
	PortalEDPDatasets    = 65
	PortalEUODPDatasets  = 9
	PortalIODSDatasets   = 15
	PortalOverlap        = 19
	NewEndpoints         = PortalEDPDatasets + PortalEUODPDatasets + PortalIODSDatasets - PortalOverlap
	NewIndexable         = 20
	TotalEndpoints       = PreExistingEndpoints + NewEndpoints
	TotalIndexable       = PreExistingIndexable + NewIndexable
)

// Portal names used across the corpus and the crawler.
const (
	PortalEDP   = "european-data-portal"
	PortalEUODP = "eu-open-data-portal"
	PortalIODS  = "io-datascience-paris"
)

// EndpointDesc describes one simulated endpoint of the corpus.
type EndpointDesc struct {
	// Name is a unique short identifier.
	Name string
	// URL is the endpoint's (synthetic) SPARQL URL; portal catalogs
	// advertise exactly this string, and H-BOLD dedups on it.
	URL string
	// Title is the dataset title shown in catalogs.
	Title string
	// Spec parameterizes the dataset contents (meaningful only when
	// Indexable).
	Spec Spec
	// Profile selects the endpoint.Quirks profile: "full", "no-agg",
	// "no-group-by", "capped", "legacy" or "broken".
	Profile string
	// OutageProb is the §3.1 availability model parameter.
	OutageProb float64
	// Indexable reports whether Index Extraction can succeed at all;
	// non-indexable endpoints are dead or hostile, matching the paper's
	// "not working or not compatible" population.
	Indexable bool
	// Dead endpoints never answer.
	Dead bool
	// PreExisting endpoints are in H-BOLD's list before the portal crawl.
	PreExisting bool
	// Portal is the open data portal advertising this endpoint ("" when
	// only the old DataHub list knows it).
	Portal string
}

// Corpus builds the full deterministic endpoint population. The layout
// reproduces every §3.3 count exactly; the seed controls dataset shapes
// and availability schedules, not the cardinalities.
func Corpus(seed int64) []EndpointDesc {
	rng := rand.New(rand.NewSource(seed))
	var out []EndpointDesc

	mk := func(i int, preExisting, indexable bool, portal string) EndpointDesc {
		name := fmt.Sprintf("lod%04d", i)
		d := EndpointDesc{
			Name:        name,
			URL:         fmt.Sprintf("http://%s.example.org/sparql", name),
			Title:       fmt.Sprintf("Linked Dataset %04d", i),
			PreExisting: preExisting,
			Indexable:   indexable,
			Portal:      portal,
		}
		if !indexable {
			// §3.3: endpoints "not working" (dead) or "not compatible with
			// the index extraction phase" (broken SPARQL services)
			if rng.Float64() < 0.5 {
				d.Dead = true
			} else {
				d.Profile = "broken"
			}
			return d
		}
		d.Spec = Spec{
			Name:           name,
			Classes:        8 + rng.Intn(52),
			Instances:      1000 + rng.Intn(5000),
			ObjectProps:    20 + rng.Intn(80),
			DataProps:      15 + rng.Intn(45),
			LinkFactor:     1 + rng.Intn(2),
			CommunitySeeds: 3 + rng.Intn(5),
			Seed:           seed ^ int64(i)*7919,
		}
		switch rng.Intn(5) {
		case 0, 4:
			d.Profile = "full"
		case 1:
			d.Profile = "no-agg"
		case 2:
			d.Profile = "capped"
		default:
			d.Profile = "no-group-by"
		}
		d.OutageProb = [4]float64{0, 0.05, 0.1, 0.2}[rng.Intn(4)]
		return d
	}

	i := 0
	// pre-existing: 110 indexable then 500 not
	for k := 0; k < PreExistingIndexable; k++ {
		out = append(out, mk(i, true, true, ""))
		i++
	}
	for k := 0; k < PreExistingEndpoints-PreExistingIndexable; k++ {
		out = append(out, mk(i, true, false, ""))
		i++
	}
	// new endpoints discovered via portals: 20 indexable + 50 not
	for k := 0; k < NewIndexable; k++ {
		out = append(out, mk(i, false, true, ""))
		i++
	}
	for k := 0; k < NewEndpoints-NewIndexable; k++ {
		out = append(out, mk(i, false, false, ""))
		i++
	}

	// assign portals: all 70 new endpoints are advertised by a portal,
	// plus 19 pre-existing ones (the overlap), totalling 89 catalog
	// entries split 65 / 9 / 15.
	assign := make([]string, 0, PortalEDPDatasets+PortalEUODPDatasets+PortalIODSDatasets)
	for k := 0; k < PortalEDPDatasets; k++ {
		assign = append(assign, PortalEDP)
	}
	for k := 0; k < PortalEUODPDatasets; k++ {
		assign = append(assign, PortalEUODP)
	}
	for k := 0; k < PortalIODSDatasets; k++ {
		assign = append(assign, PortalIODS)
	}
	rng.Shuffle(len(assign), func(a, b int) { assign[a], assign[b] = assign[b], assign[a] })
	ai := 0
	// the 70 new ones
	for j := PreExistingEndpoints; j < len(out); j++ {
		out[j].Portal = assign[ai]
		ai++
	}
	// 19 overlapping pre-existing ones (spread across the list)
	overlapIdx := rng.Perm(PreExistingEndpoints)[:PortalOverlap]
	for _, j := range overlapIdx {
		out[j].Portal = assign[ai]
		ai++
	}
	return out
}

// QuirksFor maps a profile name to an endpoint.Quirks value.
func QuirksFor(profile string) *endpoint.Quirks {
	switch profile {
	case "no-agg":
		return endpoint.ProfileNoAgg
	case "no-group-by":
		return endpoint.ProfileNoGroupBy
	case "capped":
		return endpoint.ProfileCapped
	case "legacy":
		return endpoint.ProfileLegacy
	case "broken":
		return endpoint.ProfileBroken
	default:
		return endpoint.ProfileFull
	}
}

// BuildStore materializes the dataset behind an indexable endpoint.
func BuildStore(d EndpointDesc) *store.Store {
	if !d.Indexable {
		return store.New()
	}
	return Generate(d.Spec)
}

// BuildRemote materializes a simulated endpoint. Dead endpoints get an
// always-down availability schedule.
func BuildRemote(d EndpointDesc, ck clock.Clock, seed int64) *endpoint.Remote {
	var avail *endpoint.Availability
	if d.Dead {
		avail = endpoint.AlwaysDown()
	} else if d.OutageProb > 0 {
		avail = endpoint.NewAvailability(seed, d.OutageProb)
	}
	return endpoint.NewRemote(d.Name, d.URL, BuildStore(d), QuirksFor(d.Profile), avail, ck)
}
