// Package synth generates the synthetic Linked Data this reproduction
// substitutes for the live sources the paper visualizes: the
// ScholarlyData-like dataset walked through in Figures 2 and 7, a
// parametric generator for arbitrary schema shapes, and the corpus of 680
// registered / 130 indexable endpoints behind the §3.3 and §5 claims.
package synth

import (
	"fmt"
	"math/rand"

	"repro/internal/rdf"
	"repro/internal/store"
)

// ScholarlyNS is the namespace of the synthetic ScholarlyData dataset.
const ScholarlyNS = "http://scholarly.example.org/ontology#"

// scholarlyClass describes one class of the Scholarly fixture.
type scholarlyClass struct {
	name      string
	instances int
	// attributes are datatype properties attached to each instance.
	attributes []string
}

// scholarlyLink describes an object property between two classes: each
// instance of from gets count links to random instances of to.
type scholarlyLink struct {
	from, prop, to string
	perInstance    int
}

// The fixture mirrors the classes visible in the paper's Figure 2 and
// Figure 7 walkthrough of the Scholarly LD (conference metadata): Event
// with Situation as range of its properties, and Vevent, SessionEvent,
// ConferenceSeries and InformationObject as domains of properties
// pointing at Event.
var scholarlyClasses = []scholarlyClass{
	{"Person", 1200, []string{"name", "affiliationName"}},
	{"InProceedings", 900, []string{"title", "year", "pages"}},
	{"Proceedings", 60, []string{"title", "year"}},
	{"Event", 150, []string{"label", "startDate", "endDate"}},
	{"Vevent", 130, []string{"summary"}},
	{"SessionEvent", 220, []string{"label"}},
	{"ConferenceSeries", 25, []string{"label"}},
	{"ConferenceEvent", 40, []string{"label", "location"}},
	{"Situation", 300, []string{"description"}},
	{"InformationObject", 180, []string{"label"}},
	{"Organisation", 140, []string{"name", "country"}},
	{"Site", 35, []string{"siteName"}},
	{"Role", 50, []string{"label"}},
	{"Document", 210, []string{"title"}},
	{"Talk", 240, []string{"label", "duration"}},
}

var scholarlyLinks = []scholarlyLink{
	{"InProceedings", "author", "Person", 3},
	{"InProceedings", "partOf", "Proceedings", 1},
	{"Proceedings", "proceedingsOf", "ConferenceEvent", 1},
	{"ConferenceEvent", "partOfSeries", "ConferenceSeries", 1},
	{"ConferenceEvent", "subEvent", "SessionEvent", 4},
	{"SessionEvent", "hasTalk", "Talk", 2},
	{"Talk", "presents", "InProceedings", 1},
	{"Person", "holdsRole", "Role", 1},
	{"Person", "memberOf", "Organisation", 1},
	{"Organisation", "basedAt", "Site", 1},
	// Figure 7 relations around the Event focus class:
	{"Event", "hasSituation", "Situation", 2}, // Situation is rdfs:Range
	{"Vevent", "describesEvent", "Event", 1},  // domains pointing at Event
	{"SessionEvent", "withinEvent", "Event", 1},
	{"ConferenceSeries", "seriesEvent", "Event", 2},
	{"InformationObject", "about", "Event", 1},
	{"Event", "atSite", "Site", 1},
	{"Document", "documents", "Event", 1},
}

// Scholarly builds the synthetic ScholarlyData store. The seed controls
// link targets; the class/property structure is fixed.
func Scholarly(seed int64) *store.Store {
	rng := rand.New(rand.NewSource(seed))
	st := store.New()
	typeT := rdf.NewIRI(rdf.RDFType)

	classIRI := func(name string) rdf.Term { return rdf.NewIRI(ScholarlyNS + name) }
	propIRI := func(name string) rdf.Term { return rdf.NewIRI(ScholarlyNS + name) }
	instIRI := func(class string, i int) rdf.Term {
		return rdf.NewIRI(fmt.Sprintf("http://scholarly.example.org/resource/%s/%d", class, i))
	}

	for _, c := range scholarlyClasses {
		ct := classIRI(c.name)
		for i := 0; i < c.instances; i++ {
			inst := instIRI(c.name, i)
			st.AddSPO(inst, typeT, ct)
			for _, attr := range c.attributes {
				st.AddSPO(inst, propIRI(attr), rdf.NewLiteral(fmt.Sprintf("%s %s %d", c.name, attr, i)))
			}
		}
	}
	counts := map[string]int{}
	for _, c := range scholarlyClasses {
		counts[c.name] = c.instances
	}
	for _, l := range scholarlyLinks {
		prop := propIRI(l.prop)
		for i := 0; i < counts[l.from]; i++ {
			src := instIRI(l.from, i)
			for k := 0; k < l.perInstance; k++ {
				dst := instIRI(l.to, rng.Intn(counts[l.to]))
				st.AddSPO(src, prop, dst)
			}
		}
	}
	return st
}

// ScholarlyClassCount is the number of instantiated classes in the
// Scholarly fixture.
func ScholarlyClassCount() int { return len(scholarlyClasses) }
