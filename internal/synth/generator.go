package synth

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/rdf"
	"repro/internal/store"
)

// Spec parameterizes a synthetic Linked Data source.
type Spec struct {
	// Name labels the dataset and namespaces its IRIs.
	Name string
	// Classes is the number of instantiated classes.
	Classes int
	// Instances is the total number of instances, distributed over the
	// classes by a Zipf law (big LD sources concentrate instances in a
	// few classes).
	Instances int
	// ObjectProps is the number of distinct object properties linking
	// classes; each is assigned a (domain, range) class pair.
	ObjectProps int
	// DataProps is the number of distinct datatype properties, assigned
	// round-robin to classes.
	DataProps int
	// LinkFactor is the number of outgoing object links per instance.
	LinkFactor int
	// CommunitySeeds injects modular structure: classes are pre-assigned
	// to this many latent groups and object properties prefer intra-group
	// (domain, range) pairs. Zero means fully random wiring.
	CommunitySeeds int
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultSpec returns a medium-size source comparable to the mid-tier
// datasets H-BOLD indexes.
func DefaultSpec(name string, seed int64) Spec {
	return Spec{
		Name: name, Classes: 40, Instances: 20000, ObjectProps: 90,
		DataProps: 60, LinkFactor: 2, CommunitySeeds: 5, Seed: seed,
	}
}

// Generate builds the dataset described by the spec.
func Generate(spec Spec) *store.Store {
	if spec.Classes <= 0 {
		spec.Classes = 1
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	st := store.New()
	ns := fmt.Sprintf("http://%s.example.org/onto#", spec.Name)
	res := fmt.Sprintf("http://%s.example.org/res/", spec.Name)
	typeT := rdf.NewIRI(rdf.RDFType)

	classes := make([]rdf.Term, spec.Classes)
	for i := range classes {
		classes[i] = rdf.NewIRI(fmt.Sprintf("%sClass%d", ns, i))
	}

	// latent groups for modular structure
	group := make([]int, spec.Classes)
	for i := range group {
		if spec.CommunitySeeds > 0 {
			group[i] = i % spec.CommunitySeeds
		}
	}

	// Zipf instance distribution (s≈1.1) over classes
	sizes := zipfSplit(rng, spec.Instances, spec.Classes, 1.1)

	instances := make([][]rdf.Term, spec.Classes)
	for c := range classes {
		instances[c] = make([]rdf.Term, sizes[c])
		for i := 0; i < sizes[c]; i++ {
			inst := rdf.NewIRI(fmt.Sprintf("%sc%d/i%d", res, c, i))
			instances[c][i] = inst
			st.AddSPO(inst, typeT, classes[c])
		}
	}

	// datatype properties: round-robin over classes, attached to every
	// instance of the class
	for p := 0; p < spec.DataProps; p++ {
		c := p % spec.Classes
		prop := rdf.NewIRI(fmt.Sprintf("%sattr%d", ns, p))
		for i, inst := range instances[c] {
			st.AddSPO(inst, prop, rdf.NewLiteral(fmt.Sprintf("v%d-%d", p, i)))
		}
	}

	// object properties with (domain, range) pairs; prefer intra-group
	for p := 0; p < spec.ObjectProps; p++ {
		var from, to int
		if spec.CommunitySeeds > 0 && rng.Float64() < 0.85 {
			g := rng.Intn(spec.CommunitySeeds)
			from = randClassInGroup(rng, group, g)
			to = randClassInGroup(rng, group, g)
		} else {
			from = rng.Intn(spec.Classes)
			to = rng.Intn(spec.Classes)
		}
		if len(instances[from]) == 0 || len(instances[to]) == 0 {
			continue
		}
		prop := rdf.NewIRI(fmt.Sprintf("%srel%d", ns, p))
		for _, src := range instances[from] {
			for k := 0; k < spec.LinkFactor; k++ {
				dst := instances[to][rng.Intn(len(instances[to]))]
				st.AddSPO(src, prop, dst)
			}
		}
	}
	return st
}

// zipfSplit distributes total into n parts following a Zipf law with
// exponent s, guaranteeing each part at least 1.
func zipfSplit(rng *rand.Rand, total, n int, s float64) []int {
	if total < n {
		total = n
	}
	weights := make([]float64, n)
	sum := 0.0
	for i := range weights {
		weights[i] = 1.0 / math.Pow(float64(i+1), s)
		sum += weights[i]
	}
	// shuffle which class gets which rank so class 0 is not always biggest
	perm := rng.Perm(n)
	out := make([]int, n)
	assigned := 0
	for i, w := range weights {
		v := int(float64(total) * w / sum)
		if v < 1 {
			v = 1
		}
		out[perm[i]] = v
		assigned += v
	}
	// absorb rounding drift while keeping every part >= 1: grow the head
	// part, or shave the largest parts when over-assigned
	diff := total - assigned
	if diff > 0 {
		out[perm[0]] += diff
	}
	for diff < 0 {
		big := 0
		for i := 1; i < n; i++ {
			if out[i] > out[big] {
				big = i
			}
		}
		take := -diff
		if take > out[big]-1 {
			take = out[big] - 1
		}
		if take == 0 {
			break // all parts are 1; total == n by construction
		}
		out[big] -= take
		diff += take
	}
	return out
}

func randClassInGroup(rng *rand.Rand, group []int, g int) int {
	var members []int
	for i, gi := range group {
		if gi == g {
			members = append(members, i)
		}
	}
	if len(members) == 0 {
		return rng.Intn(len(group))
	}
	return members[rng.Intn(len(members))]
}
