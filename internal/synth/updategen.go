package synth

// Randomized SPARQL Update generation — the mutation half of the
// differential-fuzz harness. UpdateGen emits request texts over a fixed
// vocabulary of subjects, predicates, classes and literals, so the same
// seeded stream can be replayed against any store.Backend and the
// resulting states compared. Shapes cover the whole update surface:
// INSERT DATA (sometimes duplicating existing triples), DELETE DATA
// (sometimes targeting absent ones), pattern-driven DELETE/INSERT WHERE
// in all three component combinations, DELETE WHERE, and multi-operation
// requests separated by semicolons.

import (
	"fmt"
	"math/rand"
	"strings"
)

// UpdateGen produces random update request texts, deterministic per
// seed: a failing stream reproduces from its seed and index.
type UpdateGen struct {
	rng *rand.Rand
}

// NewUpdateGen builds a generator with the given seed.
func NewUpdateGen(seed int64) *UpdateGen {
	return &UpdateGen{rng: rand.New(rand.NewSource(seed))}
}

// The fixed vocabulary. Small pools on purpose: collisions between
// updates (re-inserting a deleted triple, deleting a never-inserted one,
// retyping the same subject twice) are exactly the cases worth fuzzing.
func (g *UpdateGen) subj() string {
	return fmt.Sprintf("<http://fuzz/s%d>", g.rng.Intn(12))
}
func (g *UpdateGen) pred() string {
	return fmt.Sprintf("<http://fuzz/p%d>", g.rng.Intn(4))
}
func (g *UpdateGen) class() string {
	return fmt.Sprintf("<http://fuzz/C%d>", g.rng.Intn(3))
}

// object draws an IRI from the subject pool or a literal; type triples
// always get IRI objects so extraction-layer class handling stays
// well-formed.
func (g *UpdateGen) object() string {
	if g.rng.Intn(2) == 0 {
		return g.subj()
	}
	return fmt.Sprintf("%q", fmt.Sprintf("lit-%d", g.rng.Intn(6)))
}

// triple emits one ground triple, type-shaped one time in three.
func (g *UpdateGen) triple() string {
	if g.rng.Intn(3) == 0 {
		return fmt.Sprintf("%s a %s .", g.subj(), g.class())
	}
	return fmt.Sprintf("%s %s %s .", g.subj(), g.pred(), g.object())
}

// triples emits 1–4 ground triples.
func (g *UpdateGen) triples() string {
	n := 1 + g.rng.Intn(4)
	out := make([]string, n)
	for i := range out {
		out[i] = g.triple()
	}
	return strings.Join(out, " ")
}

// op emits one update operation.
func (g *UpdateGen) op() string {
	switch g.rng.Intn(6) {
	case 0, 1:
		return fmt.Sprintf("INSERT DATA { %s }", g.triples())
	case 2:
		return fmt.Sprintf("DELETE DATA { %s }", g.triples())
	case 3:
		// DELETE WHERE: erase everything a random subject says with a
		// random predicate, or its whole description
		if g.rng.Intn(2) == 0 {
			return fmt.Sprintf("DELETE WHERE { %s ?p ?o }", g.subj())
		}
		return fmt.Sprintf("DELETE WHERE { %s %s ?o }", g.subj(), g.pred())
	case 4:
		// retype: the DELETE/INSERT WHERE reclassification shape
		return fmt.Sprintf("DELETE { ?s a %s } INSERT { ?s a %s } WHERE { ?s a %s }",
			g.class(), g.class(), g.class())
	default:
		// rename a predicate, or insert-only / delete-only pattern forms
		switch g.rng.Intn(3) {
		case 0:
			p, q := g.pred(), g.pred()
			return fmt.Sprintf("DELETE { ?s %s ?o } INSERT { ?s %s ?o } WHERE { ?s %s ?o }", p, q, p)
		case 1:
			return fmt.Sprintf("INSERT { ?s %s %s } WHERE { ?s a %s }", g.pred(), g.object(), g.class())
		default:
			return fmt.Sprintf("DELETE { ?s %s ?o } WHERE { ?s a %s . ?s %s ?o }", g.pred(), g.class(), g.pred())
		}
	}
}

// Update returns the next random update request text: usually one
// operation, sometimes several separated by semicolons (one request,
// one atomic batch).
func (g *UpdateGen) Update() string {
	n := 1
	if g.rng.Intn(4) == 0 {
		n = 2 + g.rng.Intn(2)
	}
	ops := make([]string, n)
	for i := range ops {
		ops[i] = g.op()
	}
	return strings.Join(ops, " ; ")
}
