package synth

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rdf"
	"repro/internal/store"
)

func TestScholarlyClassInventory(t *testing.T) {
	st := Scholarly(1)
	classes := st.Classes()
	if len(classes) != ScholarlyClassCount() {
		t.Fatalf("classes = %d, want %d", len(classes), ScholarlyClassCount())
	}
	// Figure 2/7 classes must exist
	for _, name := range []string{"Event", "Situation", "Vevent", "SessionEvent", "ConferenceSeries", "InformationObject"} {
		if st.CountInstances(rdf.NewIRI(ScholarlyNS+name)) == 0 {
			t.Errorf("class %s has no instances", name)
		}
	}
}

func TestScholarlyInstanceCounts(t *testing.T) {
	st := Scholarly(1)
	if n := st.CountInstances(rdf.NewIRI(ScholarlyNS + "Person")); n != 1200 {
		t.Fatalf("Person instances = %d, want 1200", n)
	}
	if n := st.CountInstances(rdf.NewIRI(ScholarlyNS + "ConferenceSeries")); n != 25 {
		t.Fatalf("ConferenceSeries instances = %d, want 25", n)
	}
}

func TestScholarlyDeterministic(t *testing.T) {
	a, b := Scholarly(9), Scholarly(9)
	if a.Len() != b.Len() {
		t.Fatalf("sizes differ: %d vs %d", a.Len(), b.Len())
	}
	a.Match(store.Pattern{}, func(tr rdf.Triple) bool {
		if !b.Has(tr) {
			t.Fatalf("triple %v missing in second build", tr)
		}
		return true
	})
}

func TestScholarlyEventLinks(t *testing.T) {
	st := Scholarly(2)
	// hasSituation edges from Event to Situation must exist (Figure 7)
	n := st.Count(store.Pattern{P: rdf.NewIRI(ScholarlyNS + "hasSituation")})
	if n == 0 {
		t.Fatal("no Event→Situation links")
	}
	// and their subjects are Events
	st.Match(store.Pattern{P: rdf.NewIRI(ScholarlyNS + "hasSituation")}, func(tr rdf.Triple) bool {
		if !st.Has(rdf.NewTriple(tr.S, rdf.NewIRI(rdf.RDFType), rdf.NewIRI(ScholarlyNS+"Event"))) {
			t.Fatalf("subject %v of hasSituation is not an Event", tr.S)
		}
		return false // checking one is enough
	})
}

func TestGenerateRespectsSpec(t *testing.T) {
	spec := Spec{Name: "t", Classes: 10, Instances: 500, ObjectProps: 20, DataProps: 10, LinkFactor: 1, Seed: 3}
	st := Generate(spec)
	classes := st.Classes()
	if len(classes) != 10 {
		t.Fatalf("classes = %d, want 10", len(classes))
	}
	total := 0
	for _, c := range classes {
		total += c.Instances
	}
	if total != 500 {
		t.Fatalf("instances = %d, want 500", total)
	}
}

func TestGenerateZipfSkew(t *testing.T) {
	st := Generate(Spec{Name: "z", Classes: 20, Instances: 10000, Seed: 5})
	classes := st.Classes() // sorted by count desc
	if classes[0].Instances <= classes[len(classes)-1].Instances {
		t.Fatal("expected skewed instance distribution")
	}
	if classes[0].Instances < 2000 {
		t.Fatalf("head class too small for Zipf: %d", classes[0].Instances)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultSpec("d", 4))
	b := Generate(DefaultSpec("d", 4))
	if a.Len() != b.Len() {
		t.Fatalf("sizes differ: %d vs %d", a.Len(), b.Len())
	}
}

func TestZipfSplitProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		total := n + rng.Intn(5000)
		parts := zipfSplit(rng, total, n, 1.1)
		sum := 0
		for _, p := range parts {
			if p < 1 {
				return false
			}
			sum += p
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCorpusCardinalities(t *testing.T) {
	c := Corpus(1)
	if len(c) != TotalEndpoints {
		t.Fatalf("corpus size = %d, want %d", len(c), TotalEndpoints)
	}
	var pre, preIdx, newN, newIdx, edp, euodp, iods, overlap int
	urls := map[string]bool{}
	for _, d := range c {
		if urls[d.URL] {
			t.Fatalf("duplicate URL %s", d.URL)
		}
		urls[d.URL] = true
		if d.PreExisting {
			pre++
			if d.Indexable {
				preIdx++
			}
			if d.Portal != "" {
				overlap++
			}
		} else {
			newN++
			if d.Indexable {
				newIdx++
			}
			if d.Portal == "" {
				t.Fatalf("new endpoint %s has no portal", d.Name)
			}
		}
		switch d.Portal {
		case PortalEDP:
			edp++
		case PortalEUODP:
			euodp++
		case PortalIODS:
			iods++
		}
	}
	if pre != PreExistingEndpoints || preIdx != PreExistingIndexable {
		t.Fatalf("pre-existing = %d (%d indexable)", pre, preIdx)
	}
	if newN != NewEndpoints || newIdx != NewIndexable {
		t.Fatalf("new = %d (%d indexable)", newN, newIdx)
	}
	if overlap != PortalOverlap {
		t.Fatalf("overlap = %d, want %d", overlap, PortalOverlap)
	}
	if edp != PortalEDPDatasets || euodp != PortalEUODPDatasets || iods != PortalIODSDatasets {
		t.Fatalf("portal split = %d/%d/%d", edp, euodp, iods)
	}
}

func TestCorpusDeterministic(t *testing.T) {
	a, b := Corpus(3), Corpus(3)
	for i := range a {
		if a[i].URL != b[i].URL || a[i].Indexable != b[i].Indexable || a[i].Portal != b[i].Portal {
			t.Fatalf("corpus not deterministic at %d", i)
		}
	}
}

func TestBuildRemoteDeadNeverAnswers(t *testing.T) {
	c := Corpus(2)
	for _, d := range c {
		if d.Dead {
			r := BuildRemote(d, nil, 1)
			if _, err := r.Query(context.Background(), "ASK { ?s ?p ?o }"); err == nil {
				t.Fatalf("dead endpoint %s answered", d.Name)
			}
			return
		}
	}
	t.Fatal("no dead endpoint in corpus")
}

func TestBuildRemoteIndexableAnswers(t *testing.T) {
	c := Corpus(2)
	for _, d := range c {
		if d.Indexable && d.OutageProb == 0 {
			r := BuildRemote(d, nil, 1)
			res, err := r.Query(context.Background(), "ASK { ?s ?p ?o }")
			if err != nil {
				t.Fatal(err)
			}
			if !res.Boolean {
				t.Fatal("indexable endpoint should contain triples")
			}
			return
		}
	}
	t.Fatal("no always-up indexable endpoint in corpus")
}

func TestQuirksForMapping(t *testing.T) {
	if QuirksFor("no-agg").NoAggregates != true {
		t.Fatal("no-agg profile wrong")
	}
	if QuirksFor("capped").MaxRows == 0 {
		t.Fatal("capped profile wrong")
	}
	if QuirksFor("full").NoAggregates {
		t.Fatal("full profile wrong")
	}
	if QuirksFor("unknown").Name != "full" {
		t.Fatal("unknown should default to full")
	}
}
