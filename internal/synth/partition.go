package synth

import (
	"hash/fnv"

	"repro/internal/rdf"
	"repro/internal/store"
)

// Partition splits a store's triples across k stores by subject hash, so
// every triple lands in exactly one partition and all triples of one
// subject stay together (rdf:type statements included — each partition's
// extracted index then describes exactly what that partition can
// answer). The union of the partitions is the original store, which is
// what the federated-vs-union differential tests and the E16 experiment
// partition corpora with.
func Partition(st *store.Store, k int) []*store.Store {
	if k < 1 {
		k = 1
	}
	parts := make([]*store.Store, k)
	for i := range parts {
		parts[i] = store.New()
	}
	for _, tr := range st.Graph().Triples() {
		h := fnv.New32a()
		h.Write([]byte(tr.S.String()))
		parts[int(h.Sum32())%k].Add(tr)
	}
	return parts
}

// PartitionByClass splits a store by the class of each subject: subjects
// typed with a class whose hash lands in partition i go to partition i,
// along with all their triples; untyped subjects follow partition 0.
// Unlike Partition, this gives each partition a *disjoint class
// vocabulary* (plus shared untyped spillover), which is what exercises
// index-driven source pruning: a query over one class provably cannot be
// answered by the partitions that hold none of its instances.
func PartitionByClass(st *store.Store, k int) []*store.Store {
	if k < 1 {
		k = 1
	}
	parts := make([]*store.Store, k)
	for i := range parts {
		parts[i] = store.New()
	}
	// first type statement wins per subject
	home := map[string]int{}
	for _, tr := range st.Graph().Triples() {
		if tr.P.IsIRI() && tr.P.Value == rdf.RDFType {
			if _, seen := home[tr.S.String()]; !seen {
				h := fnv.New32a()
				h.Write([]byte(tr.O.String()))
				home[tr.S.String()] = int(h.Sum32()) % k
			}
		}
	}
	for _, tr := range st.Graph().Triples() {
		parts[home[tr.S.String()]].Add(tr)
	}
	return parts
}
