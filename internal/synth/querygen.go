package synth

// Randomized SPARQL query generation over a store's extracted vocabulary
// — the query half of the differential-fuzz harness. The generator grew
// out of the sparql package's differential tests and moved here so any
// package (engines, federation, protocol) can fuzz against the same
// shape distribution. Shapes cover the pattern algebra (chains, stars,
// typed subjects, OPTIONAL/MINUS/BIND/VALUES/FILTER, nested groups) and
// the full solution-modifier surface: ORDER BY (with DESC and multi-key),
// LIMIT/OFFSET windows over ordered and unordered queries, DISTINCT, and
// GROUP BY with COUNT/SUM/MIN/MAX/AVG aggregates.

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/rdf"
	"repro/internal/store"
)

// QueryGen produces random queries from a store's vocabulary. It is
// deterministic per seed, so a failing query reproduces from its seed
// and index.
type QueryGen struct {
	rng     *rand.Rand
	preds   []string // predicate IRIs (no rdf:type)
	classes []string // class IRIs
}

// NewQueryGen builds a generator over st's predicates and classes.
func NewQueryGen(st *store.Store, seed int64) *QueryGen {
	g := &QueryGen{rng: rand.New(rand.NewSource(seed))}
	for _, p := range st.Predicates() {
		if p.Value != rdf.RDFType {
			g.preds = append(g.preds, p.Value)
		}
	}
	for _, c := range st.Classes() {
		g.classes = append(g.classes, c.Class.Value)
	}
	return g
}

func (g *QueryGen) pred() string  { return "<" + g.preds[g.rng.Intn(len(g.preds))] + ">" }
func (g *QueryGen) class() string { return "<" + g.classes[g.rng.Intn(len(g.classes))] + ">" }

// body builds one random group graph pattern and reports how many ?vN
// variables it binds.
func (g *QueryGen) body() (string, int) {
	r := g.rng
	var pats []string
	nv := 0
	v := func(i int) string { return fmt.Sprintf("?v%d", i) }

	switch r.Intn(3) {
	case 0: // chain
		n := 1 + r.Intn(3)
		for i := 0; i < n; i++ {
			pats = append(pats, fmt.Sprintf("%s %s %s .", v(i), g.pred(), v(i+1)))
		}
		nv = n + 1
	case 1: // star
		n := 1 + r.Intn(3)
		for i := 0; i < n; i++ {
			pats = append(pats, fmt.Sprintf("?v0 %s %s .", g.pred(), v(i+1)))
		}
		nv = n + 1
	default: // typed subject expanding
		pats = append(pats, fmt.Sprintf("?v0 a %s .", g.class()))
		n := r.Intn(2)
		for i := 0; i < n; i++ {
			pats = append(pats, fmt.Sprintf("?v0 %s %s .", g.pred(), v(i+1)))
		}
		nv = n + 1
	}
	if r.Intn(4) == 0 { // variable predicate
		pats = append(pats, fmt.Sprintf("?v0 ?pv %s .", v(nv)))
		nv++
	}

	body := strings.Join(pats, " ")
	if r.Intn(5) == 0 {
		body += fmt.Sprintf(" OPTIONAL { ?v0 %s ?opt }", g.pred())
	}
	if r.Intn(6) == 0 {
		body += fmt.Sprintf(" MINUS { ?v0 %s ?mv }", g.pred())
	}
	if r.Intn(6) == 0 {
		body += " BIND(STR(?v0) AS ?bv)"
	}
	if r.Intn(6) == 0 {
		body += fmt.Sprintf(" VALUES ?v1 { %s %s }", g.class(), g.pred())
	}
	if r.Intn(4) == 0 {
		switch r.Intn(4) {
		case 0:
			body += " FILTER(?v0 != ?v1)"
		case 1:
			body += ` FILTER regex(STR(?v1), "1")`
		case 2:
			body += " FILTER(STRLEN(STR(?v1)) > 12)"
		default:
			body += " FILTER(BOUND(?v1))"
		}
	}
	if r.Intn(8) == 0 {
		body += fmt.Sprintf(" { ?v0 ?anyp %s }", v(nv))
		nv++
	}
	return body, nv
}

// window appends a random LIMIT/OFFSET pair (possibly neither).
func (g *QueryGen) window() string {
	r := g.rng
	mod := ""
	if r.Intn(2) == 0 {
		mod += fmt.Sprintf(" LIMIT %d", 1+r.Intn(20))
	}
	if r.Intn(4) == 0 {
		mod += fmt.Sprintf(" OFFSET %d", r.Intn(10))
	}
	return mod
}

// grouped builds a GROUP BY/aggregate query over body. The shapes mix
// plain COUNT with SUM/MIN/MAX/AVG over an object variable — over synth
// data these hit IRIs (non-numeric → binding omitted) and literals alike
// — plus DISTINCT counting, HAVING, and ordered/windowed group output.
func (g *QueryGen) grouped(body string) string {
	r := g.rng
	var agg, order string
	switch r.Intn(5) {
	case 0:
		agg = "(COUNT(?v0) AS ?n)"
	case 1:
		agg = "(COUNT(DISTINCT ?v0) AS ?n)"
	case 2:
		agg = "(SUM(?v1) AS ?n)"
	case 3:
		agg = "(MIN(?v1) AS ?n) (MAX(?v1) AS ?m)"
	default:
		agg = "(AVG(?v1) AS ?n)"
	}
	having := ""
	if r.Intn(5) == 0 {
		having = " HAVING (COUNT(?v0) > 1)"
	}
	if r.Intn(3) == 0 {
		order = " ORDER BY ?c" + g.window()
	}
	return fmt.Sprintf("SELECT ?c %s WHERE { ?v0 a ?c . %s } GROUP BY ?c%s%s", agg, body, having, order)
}

// Query builds one random SELECT/ASK query from the store vocabulary.
func (g *QueryGen) Query() string {
	r := g.rng
	body, nv := g.body()
	v := func(i int) string { return fmt.Sprintf("?v%d", i) }

	if r.Intn(10) == 0 {
		return fmt.Sprintf("ASK { %s }", body)
	}
	if r.Intn(5) == 0 {
		return g.grouped(body)
	}

	sel := "*"
	if r.Intn(2) == 0 {
		k := 1 + r.Intn(nv)
		var vs []string
		for i := 0; i < k; i++ {
			vs = append(vs, v(i))
		}
		sel = strings.Join(vs, " ")
	}
	mod := ""
	if r.Intn(3) == 0 {
		sel = "DISTINCT " + sel
	}
	if r.Intn(3) == 0 {
		keys := "?v0 ?v1"
		switch r.Intn(3) {
		case 0:
			keys = "?v0"
		case 1:
			keys = "DESC(?v1) ?v0"
		}
		mod = " ORDER BY " + keys
		// windows over ordered queries exercise the top-k path; ties at
		// the cut line are compared key-aware by the harness
		mod += g.window()
	} else if r.Intn(6) == 0 {
		// a window without ORDER BY: engines may keep different rows,
		// only cardinality is comparable
		mod = g.window()
	}
	return fmt.Sprintf("SELECT %s WHERE { %s }%s", sel, body, mod)
}
