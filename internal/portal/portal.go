// Package portal simulates the three open data portals H-BOLD crawls for
// SPARQL endpoints (§3.3): the European Data Portal, the EU Open Data
// Portal and IO Data Science of Paris. Each portal is a DCAT catalog
// served through the SPARQL protocol, so the crawler can run the paper's
// Listing 1 query against it verbatim.
package portal

import (
	"fmt"

	"repro/internal/endpoint"
	"repro/internal/rdf"
	"repro/internal/store"
	"repro/internal/synth"
)

// Portal is one simulated open data portal.
type Portal struct {
	// Name is the portal identifier (synth.PortalEDP, ...).
	Name string
	// Store holds the portal's DCAT catalog.
	Store *store.Store
	// SparqlDatasets is the number of catalog datasets that advertise a
	// SPARQL distribution (the crawlable population).
	SparqlDatasets int
}

// Client returns a SPARQL client over the portal's catalog.
func (p *Portal) Client() endpoint.Client {
	return endpoint.LocalClient{Store: p.Store}
}

// BuildAll creates the three portals over the corpus: each corpus
// endpoint with a Portal assignment becomes a dcat:Dataset whose
// distribution's accessURL is the endpoint URL. Portals also carry noise
// datasets with non-SPARQL distributions (CSV downloads), which Listing 1
// must filter out via its regex.
func BuildAll(corpus []synth.EndpointDesc) []*Portal {
	names := []string{synth.PortalEDP, synth.PortalEUODP, synth.PortalIODS}
	byName := map[string]*Portal{}
	var out []*Portal
	for _, n := range names {
		p := &Portal{Name: n, Store: store.New()}
		byName[n] = p
		out = append(out, p)
	}
	typeT := rdf.NewIRI(rdf.RDFType)
	datasetT := rdf.NewIRI(rdf.DCATDataset)
	titleT := rdf.NewIRI(rdf.DCTitle)
	distT := rdf.NewIRI(rdf.DCATDistribution)
	accessT := rdf.NewIRI(rdf.DCATAccessURL)

	seq := map[string]int{}
	for _, d := range corpus {
		p, ok := byName[d.Portal]
		if !ok {
			continue
		}
		seq[d.Portal]++
		i := seq[d.Portal]
		ds := rdf.NewIRI(fmt.Sprintf("http://%s.example.org/catalog/dataset/%d", d.Portal, i))
		dist := rdf.NewIRI(fmt.Sprintf("http://%s.example.org/catalog/dist/%d", d.Portal, i))
		p.Store.AddSPO(ds, typeT, datasetT)
		p.Store.AddSPO(ds, titleT, rdf.NewLiteral(d.Title))
		p.Store.AddSPO(ds, distT, dist)
		p.Store.AddSPO(dist, accessT, rdf.NewIRI(d.URL))
		p.SparqlDatasets++
	}

	// noise: datasets whose distributions are plain file downloads; the
	// Listing 1 regex must exclude them
	for _, p := range out {
		for i := 0; i < 40; i++ {
			ds := rdf.NewIRI(fmt.Sprintf("http://%s.example.org/catalog/noise/%d", p.Name, i))
			dist := rdf.NewIRI(fmt.Sprintf("http://%s.example.org/catalog/noise-dist/%d", p.Name, i))
			p.Store.AddSPO(ds, typeT, datasetT)
			p.Store.AddSPO(ds, titleT, rdf.NewLiteral(fmt.Sprintf("Open CSV dataset %d", i)))
			p.Store.AddSPO(ds, distT, dist)
			p.Store.AddSPO(dist, accessT, rdf.NewIRI(
				fmt.Sprintf("http://files.%s.example.org/download/%d.csv", p.Name, i)))
		}
		// a few datasets with no distribution at all
		for i := 0; i < 5; i++ {
			ds := rdf.NewIRI(fmt.Sprintf("http://%s.example.org/catalog/bare/%d", p.Name, i))
			p.Store.AddSPO(ds, typeT, datasetT)
			p.Store.AddSPO(ds, titleT, rdf.NewLiteral(fmt.Sprintf("Metadata-only dataset %d", i)))
		}
	}
	return out
}

// Listing1 is the exact DCAT query of the paper's Listing 1, used by the
// crawler to extract SPARQL endpoint URLs from a portal.
const Listing1 = `PREFIX dcat: <http://www.w3.org/ns/dcat#>
PREFIX dc: <http://purl.org/dc/terms/>
SELECT ?dataset ?title ?url
WHERE {
  ?dataset a dcat:Dataset .
  ?dataset dc:title ?title .
  ?dataset dcat:distribution ?distribution .
  ?distribution dcat:accessURL ?url .
  FILTER ( regex(?url, "sparql") ) .
}`
