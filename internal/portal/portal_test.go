package portal

import (
	"context"
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
	"repro/internal/synth"
)

func TestBuildAllCatalogShape(t *testing.T) {
	corpus := synth.Corpus(5)
	portals := BuildAll(corpus)
	if len(portals) != 3 {
		t.Fatalf("portals = %d", len(portals))
	}
	totalSparql := 0
	for _, p := range portals {
		totalSparql += p.SparqlDatasets
		// every dataset node is typed and titled
		datasets := p.Store.MatchAll(store.Pattern{
			P: rdf.NewIRI(rdf.RDFType), O: rdf.NewIRI(rdf.DCATDataset),
		})
		if len(datasets) <= p.SparqlDatasets {
			t.Fatalf("portal %s should carry noise datasets beyond the %d sparql ones",
				p.Name, p.SparqlDatasets)
		}
		for _, d := range datasets {
			if p.Store.Count(store.Pattern{S: d.S, P: rdf.NewIRI(rdf.DCTitle)}) != 1 {
				t.Fatalf("dataset %v missing dc:title", d.S)
			}
		}
	}
	if totalSparql != 89 { // 65 + 9 + 15
		t.Fatalf("total sparql datasets = %d, want 89", totalSparql)
	}
}

func TestListing1TextMatchesPaper(t *testing.T) {
	// the crawl query must keep the paper's structure: the DCAT dataset /
	// distribution / accessURL path and the regex filter on 'sparql'
	for _, frag := range []string{
		"PREFIX dcat: <http://www.w3.org/ns/dcat#>",
		"PREFIX dc: <http://purl.org/dc/terms/>",
		"SELECT ?dataset ?title ?url",
		"?dataset a dcat:Dataset",
		"?dataset dc:title ?title",
		"?dataset dcat:distribution ?distribution",
		"?distribution dcat:accessURL ?url",
		`regex(?url, "sparql")`,
	} {
		if !strings.Contains(Listing1, frag) {
			t.Errorf("Listing1 missing %q", frag)
		}
	}
}

func TestPortalClientAnswersListing1(t *testing.T) {
	portals := BuildAll(synth.Corpus(6))
	for _, p := range portals {
		res, err := p.Client().Query(context.Background(), Listing1)
		if err != nil {
			t.Fatalf("portal %s: %v", p.Name, err)
		}
		if len(res.Rows) != p.SparqlDatasets {
			t.Fatalf("portal %s: %d rows, want %d", p.Name, len(res.Rows), p.SparqlDatasets)
		}
		for _, row := range res.Rows {
			if row["title"].Value == "" {
				t.Fatal("row missing title")
			}
			if !strings.Contains(row["url"].Value, "sparql") {
				t.Fatalf("url %q does not contain 'sparql'", row["url"].Value)
			}
		}
	}
}
