// Package federation turns N SPARQL endpoints into one: a Client that
// implements the same endpoint.Client/endpoint.Streamer surface as a
// single endpoint, fanning each query out to its member sources and
// merging the resulting row streams incrementally (paper §1: the hybrid
// landscape is many independent endpoints; the extracted indexes are what
// lets a tool route queries instead of blind-broadcasting them).
//
// The merge is a k-way interleave over bounded per-branch buffers: every
// member evaluates concurrently under its own context derived from the
// caller's, rows surface in completion order, and the whole fan-out is
// torn down — all branch contexts canceled, all goroutines joined — on
// the first fatal branch error, on consumer Close, or when a merged
// LIMIT is satisfied. DISTINCT queries deduplicate on the merge with the
// same binding key the engines use, so a federated DISTINCT equals a
// single-endpoint DISTINCT over the union corpus row-for-row. ORDER BY
// queries switch the merge to an ordered k-way heap merge: each branch
// is locally sorted by the member engine, so popping the least head row
// re-establishes the global order — and makes ORDER BY + LIMIT return
// the true global top-N rather than the first N rows to complete.
// Queries fan-out cannot answer faithfully are refused up front:
// GROUP BY/aggregates (members would aggregate their partitions
// independently), OFFSET (each member would skip rows independently),
// and ORDER BY on variables the SELECT list drops (the merge orders by
// projected rows only).
//
// Source selection runs before fan-out: under IndexPrune (and
// CostOrdered, which additionally opens cheap sources first) the client
// consults each source's extracted index and skips sources that provably
// cannot contribute — their vocabulary lacks a predicate or class every
// solution must match (sparql.Footprint). A missing class is always
// provable (class enumeration sees every rdf:type statement); a missing
// predicate is provable only when the index carries the full-corpus
// predicate scan, so vocabularies without it (extraction.Vocabulary's
// PredicatesComplete is false) never prune on predicates — a source
// whose only matches sit on untyped subjects keeps its rows. Sources
// without a usable index deterministically fall back to being queried,
// so pruning can only remove provable non-contributors, never answers.
package federation

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/endpoint"
	"repro/internal/extraction"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/sparql"
)

// Policy selects how the federation chooses sources for a query.
type Policy int

const (
	// All fans out to every available source.
	All Policy = iota
	// IndexPrune skips sources whose extracted index proves they cannot
	// contribute rows to the query.
	IndexPrune
	// CostOrdered prunes like IndexPrune and additionally opens sources
	// in ascending cost-model order, so first rows tend to come from the
	// cheapest source.
	CostOrdered
)

// String returns the policy's wire name (the server's policy= values).
func (p Policy) String() string {
	switch p {
	case IndexPrune:
		return "prune"
	case CostOrdered:
		return "cost"
	default:
		return "all"
	}
}

// ParsePolicy parses a wire name back into a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "all":
		return All, nil
	case "prune":
		return IndexPrune, nil
	case "cost":
		return CostOrdered, nil
	}
	return All, fmt.Errorf("federation: unknown policy %q (want all, prune, or cost)", s)
}

// IndexFunc looks up the extracted index describing the endpoint at url.
// Returning an error (or a nil index) means "no usable index": the source
// is kept in the fan-out rather than pruned.
type IndexFunc func(url string) (*extraction.Index, error)

// DefaultBuffer is the per-branch row buffer of the merge: deep enough
// that a momentarily slow consumer does not stall every producer, small
// enough that abandoning the stream wastes at most this many rows per
// branch.
const DefaultBuffer = 16

// SourceStats is the per-source accounting one federation accumulates.
type SourceStats struct {
	// Queries counts fan-outs that actually reached the source.
	Queries int `json:"queries"`
	// Rows counts rows the source delivered into the merge.
	Rows int64 `json:"rows"`
	// Errors counts fatal branch failures attributed to the source.
	Errors int `json:"errors"`
	// Unavailable counts openings skipped because the source was down.
	Unavailable int `json:"unavailable"`
	// Pruned counts queries source selection proved the source could not
	// contribute to.
	Pruned int `json:"pruned"`
	// Tripped counts fan-outs that skipped the source because its circuit
	// breaker was open — outages the federation rode out at zero request
	// cost.
	Tripped int `json:"tripped"`
	// Hedged counts opens where the first attempt was slow enough that a
	// hedged second attempt launched.
	Hedged int `json:"hedged"`
	// HedgeWon counts hedged opens the second attempt won.
	HedgeWon int `json:"hedgeWon"`
	// HedgeWasted counts hedged opens where the first attempt delivered
	// before the hedge — the hedge's request was pure overhead.
	HedgeWasted int `json:"hedgeWasted"`
	// Dropped counts branch failures dropped (rather than made fatal)
	// under partial-result mode.
	Dropped int `json:"dropped"`
	// FirstRow is the open-to-first-row latency of the most recent query.
	FirstRow time.Duration `json:"firstRowNs"`
	// Elapsed is the cumulative wall time spent streaming from the source.
	Elapsed time.Duration `json:"elapsedNs"`
}

// Client federates queries over a set of sources. It implements
// endpoint.Client and endpoint.Streamer, so anything that can point at
// one endpoint — core, the HTTP query API, the CLI, extraction — can
// point at N through it unchanged. The zero value is unusable; construct
// with New. Fields must be configured before the first query and not
// mutated afterwards; queries themselves may run concurrently.
type Client struct {
	// Policy selects sources per query; default All.
	Policy Policy
	// Lookup resolves extracted indexes for IndexPrune/CostOrdered; nil
	// disables pruning (every available source is queried).
	Lookup IndexFunc
	// Buffer is the per-branch row buffer; 0 means DefaultBuffer.
	Buffer int
	// SkipUnavailable routes around sources that report
	// endpoint.ErrUnavailable when the stream opens, instead of failing
	// the whole federated query. Sources with an Up probe are skipped
	// before fan-out either way.
	SkipUnavailable bool
	// DistinctOnMerge forces merge-level deduplication even for queries
	// that do not ask for DISTINCT; DISTINCT/REDUCED queries always
	// deduplicate on the merge.
	DistinctOnMerge bool
	// Hedge enables hedged stream opens: when a branch's first row has
	// not arrived within the source's hedge delay (the p90 of its
	// observed open-to-first-row latencies, seeded from the cost model
	// before any observation exists), a second attempt opens and
	// whichever delivers first wins; the loser is canceled. Tail-slow
	// opens stop gating the merge at the price of ~10% extra opens.
	Hedge bool
	// HedgeAfter, when > 0, fixes the hedge delay instead of deriving it
	// per source — for tests and benchmarks that need a deterministic
	// trigger.
	HedgeAfter time.Duration
	// Metrics, when set, mirrors every SourceStats mutation into
	// registry-backed, per-source labeled series — promoting the
	// instance-local accounting into process-lifetime observability that
	// outlives this client. nil disables mirroring.
	Metrics *obs.Registry
	// Clock stamps Stats snapshots; nil means the wall clock.
	Clock clock.Clock

	sources []*endpoint.Source

	mu     sync.Mutex
	stats  map[string]*SourceStats
	vocab  map[string]vocabEntry
	hedges map[string]*resilience.HedgeDelay

	fmOnce sync.Once
	fm     *fedMetrics
}

// fedMetrics are the registry handles the per-source accounting mirrors
// into, one labeled series per source URL.
type fedMetrics struct {
	queries     *obs.CounterVec
	rows        *obs.CounterVec
	errors      *obs.CounterVec
	unavailable *obs.CounterVec
	pruned      *obs.CounterVec
	tripped     *obs.CounterVec
	hedged      *obs.CounterVec
	hedgeWon    *obs.CounterVec
	hedgeWasted *obs.CounterVec
	dropped     *obs.CounterVec
	firstRow    *obs.GaugeVec
	elapsed     *obs.CounterVec
	degraded    *obs.Counter
}

func newFedMetrics(r *obs.Registry) *fedMetrics {
	return &fedMetrics{
		queries:     r.CounterVec("hbold_federation_queries_total", "Fan-outs that reached the source.", "source"),
		rows:        r.CounterVec("hbold_federation_rows_total", "Rows the source delivered into the merge.", "source"),
		errors:      r.CounterVec("hbold_federation_errors_total", "Fatal branch failures attributed to the source.", "source"),
		unavailable: r.CounterVec("hbold_federation_unavailable_total", "Openings skipped because the source was down.", "source"),
		pruned:      r.CounterVec("hbold_federation_pruned_total", "Queries source selection proved the source could not contribute to.", "source"),
		tripped:     r.CounterVec("hbold_federation_breaker_skipped_total", "Fan-outs skipped because the source's circuit breaker was open.", "source"),
		hedged:      r.CounterVec("hbold_federation_hedged_total", "Stream opens where a hedged second attempt launched.", "source"),
		hedgeWon:    r.CounterVec("hbold_federation_hedge_won_total", "Hedged opens the second attempt won.", "source"),
		hedgeWasted: r.CounterVec("hbold_federation_hedge_wasted_total", "Hedged opens the first attempt won anyway.", "source"),
		dropped:     r.CounterVec("hbold_federation_dropped_total", "Branch failures dropped under partial-result mode.", "source"),
		firstRow:    r.GaugeVec("hbold_federation_first_row_seconds", "Open-to-first-row latency of the source's most recent query.", "source"),
		elapsed:     r.CounterVec("hbold_federation_elapsed_seconds_total", "Cumulative wall time spent streaming from the source.", "source"),
		degraded:    r.Counter("hbold_federation_degraded_queries_total", "Federated queries that returned an incomplete result under partial-result mode."),
	}
}

type vocabEntry struct {
	gen uint64
	v   extraction.Vocabulary
}

// New builds a federated client over the given sources.
func New(sources ...*endpoint.Source) *Client {
	return &Client{
		sources: sources,
		stats:   make(map[string]*SourceStats, len(sources)),
		vocab:   make(map[string]vocabEntry, len(sources)),
		hedges:  make(map[string]*resilience.HedgeDelay, len(sources)),
	}
}

// hedgeDelay returns when a hedged second attempt for src should launch:
// the fixed HedgeAfter when configured, otherwise the source's learned
// p90 first-row latency (seeded at twice the cost model's base latency —
// the pre-observation expectation of "slower than this is tail-slow").
func (f *Client) hedgeDelay(src *endpoint.Source) time.Duration {
	if f.HedgeAfter > 0 {
		return f.HedgeAfter
	}
	return f.hedgeTracker(src).Delay()
}

func (f *Client) hedgeTracker(src *endpoint.Source) *resilience.HedgeDelay {
	f.mu.Lock()
	defer f.mu.Unlock()
	h, ok := f.hedges[src.URL]
	if !ok {
		seed := 2 * src.Cost.BaseLatency
		if seed <= 0 {
			seed = 2 * endpoint.DefaultCost.BaseLatency
		}
		h = resilience.NewHedgeDelay(seed, 0)
		f.hedges[src.URL] = h
	}
	return h
}

// Sources returns the member sources, in configuration order.
func (f *Client) Sources() []*endpoint.Source {
	out := make([]*endpoint.Source, len(f.sources))
	copy(out, f.sources)
	return out
}

// StatsSnapshot is a point-in-time copy of the per-source accounting.
// CapturedAt is the client clock's reading at snapshot time, so callers
// racing with an active stream (and dashboards sampling repeatedly) can
// order samples.
type StatsSnapshot struct {
	CapturedAt time.Time              `json:"capturedAt"`
	Sources    map[string]SourceStats `json:"sources"`
}

// Stats returns a timestamped snapshot of the per-source accounting,
// keyed by source URL. Sources never touched by any query are absent.
func (f *Client) Stats() StatsSnapshot {
	ck := f.Clock
	if ck == nil {
		ck = clock.Real{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := StatsSnapshot{CapturedAt: ck.Now(), Sources: make(map[string]SourceStats, len(f.stats))}
	for url, st := range f.stats {
		out.Sources[url] = *st
	}
	return out
}

func (f *Client) bump(src *endpoint.Source, fn func(*SourceStats)) {
	f.mu.Lock()
	st, ok := f.stats[src.URL]
	if !ok {
		st = &SourceStats{}
		f.stats[src.URL] = st
	}
	before := *st
	fn(st)
	after := *st
	f.mu.Unlock()
	f.mirror(src.URL, before, after)
}

// mirror forwards the delta of one accounting mutation into the registry,
// outside the stats mutex (registry updates are atomic).
func (f *Client) mirror(url string, before, after SourceStats) {
	if f.Metrics == nil {
		return
	}
	f.fmOnce.Do(func() { f.fm = newFedMetrics(f.Metrics) })
	addInt := func(v *obs.CounterVec, d int64) {
		if d > 0 {
			v.With(url).Add(float64(d))
		}
	}
	addInt(f.fm.queries, int64(after.Queries-before.Queries))
	addInt(f.fm.rows, after.Rows-before.Rows)
	addInt(f.fm.errors, int64(after.Errors-before.Errors))
	addInt(f.fm.unavailable, int64(after.Unavailable-before.Unavailable))
	addInt(f.fm.pruned, int64(after.Pruned-before.Pruned))
	addInt(f.fm.tripped, int64(after.Tripped-before.Tripped))
	addInt(f.fm.hedged, int64(after.Hedged-before.Hedged))
	addInt(f.fm.hedgeWon, int64(after.HedgeWon-before.HedgeWon))
	addInt(f.fm.hedgeWasted, int64(after.HedgeWasted-before.HedgeWasted))
	addInt(f.fm.dropped, int64(after.Dropped-before.Dropped))
	if after.FirstRow != before.FirstRow {
		f.fm.firstRow.With(url).Set(after.FirstRow.Seconds())
	}
	if d := after.Elapsed - before.Elapsed; d > 0 {
		f.fm.elapsed.With(url).Add(d.Seconds())
	}
}

// vocabulary returns the source's advertised vocabulary at its current
// generation, memoized so repeated queries do not re-derive it from the
// index. ok is false when the source has no usable index.
func (f *Client) vocabulary(src *endpoint.Source) (extraction.Vocabulary, bool) {
	if f.Lookup == nil || src.Generation == 0 {
		// never extracted (or no index access): nothing to prune by
		return extraction.Vocabulary{}, false
	}
	f.mu.Lock()
	if e, hit := f.vocab[src.URL]; hit && e.gen == src.Generation {
		f.mu.Unlock()
		return e.v, true
	}
	f.mu.Unlock()
	ix, err := f.Lookup(src.URL)
	if err != nil || ix == nil {
		return extraction.Vocabulary{}, false
	}
	v := ix.Vocabulary()
	f.mu.Lock()
	f.vocab[src.URL] = vocabEntry{gen: src.Generation, v: v}
	f.mu.Unlock()
	return v, true
}

// selectSources applies the availability probe, the selection policy and
// the per-source circuit breaker, in that order — a pruned source
// provably cannot contribute, so it must not consume the breaker's
// half-open probe slot. tripped counts sources the breaker held out, so
// the caller can distinguish "everything is broken" from "everything was
// pruned" when the selection comes back empty. Under partial-result mode
// an unavailable or tripped source is recorded as incomplete: its rows
// are missing from the merge.
func (f *Client) selectSources(q *sparql.Query, partial *Partial) (selected []*endpoint.Source, tripped int) {
	var preds, classes []string
	if f.Policy != All {
		preds, classes = sparql.Footprint(q)
	}
	selected = make([]*endpoint.Source, 0, len(f.sources))
	for _, src := range f.sources {
		if !src.Available() {
			f.bump(src, func(st *SourceStats) { st.Unavailable++ })
			partial.drop(src.Label())
			continue
		}
		if f.Policy != All && len(preds)+len(classes) > 0 {
			if v, ok := f.vocabulary(src); ok && !v.CanAnswer(preds, classes) {
				f.bump(src, func(st *SourceStats) { st.Pruned++ })
				continue
			}
		}
		if !src.Breaker.Allow() {
			f.bump(src, func(st *SourceStats) { st.Tripped++ })
			partial.drop(src.Label())
			tripped++
			continue
		}
		selected = append(selected, src)
	}
	if f.Policy == CostOrdered {
		sort.SliceStable(selected, func(i, j int) bool {
			return selected[i].Cost.BaseLatency < selected[j].Cost.BaseLatency
		})
	}
	return selected, tripped
}

// Query implements endpoint.Client by collecting the merged stream.
func (f *Client) Query(ctx context.Context, query string) (*sparql.Result, error) {
	rs, err := f.Stream(ctx, query)
	if err != nil {
		return nil, err
	}
	return rs.Collect()
}

// projVars returns the projected variable names a parsed SELECT promises,
// used to head an empty merged stream when every source was pruned.
func projVars(q *sparql.Query) []string {
	if q.Star {
		return nil
	}
	vars := make([]string, 0, len(q.Select))
	for _, it := range q.Select {
		vars = append(vars, it.Var)
	}
	return vars
}

// Partial is the accounting of one partial-result query: which selected
// sources failed and were dropped from the merge instead of failing it.
// Read it only after the merged stream ends (or is closed) — drops can
// still be recorded while rows flow.
type Partial struct {
	mu      sync.Mutex
	dropped []string
}

func (p *Partial) drop(label string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.dropped = append(p.dropped, label)
	p.mu.Unlock()
}

// Incomplete returns the labels of the sources whose results are missing
// from the merged stream, sorted; empty means the result is complete.
func (p *Partial) Incomplete() []string {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	out := make([]string, len(p.dropped))
	copy(out, p.dropped)
	p.mu.Unlock()
	sort.Strings(out)
	return out
}

// Degraded reports whether any source was dropped.
func (p *Partial) Degraded() bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.dropped) > 0
}

// StreamPartial is Stream in partial-result mode: a failing branch —
// down at open, erroring at open after retries, or dying mid-stream —
// is dropped from the merge instead of failing it, and the returned
// Partial names every dropped source so the caller can report an
// incomplete result honestly rather than not at all. A query whose
// semantics a silent drop would corrupt is refused: ORDER BY (a dropped
// branch breaks the global-order guarantee mid-stream) and
// DISTINCT/REDUCED or DistinctOnMerge (rows already emitted may owe
// their dedup outcome to a branch that later vanished). All selected
// sources failing at open is still an error — partial mode degrades
// results, it does not fabricate empty ones.
func (f *Client) StreamPartial(ctx context.Context, query string) (*sparql.RowSeq, *Partial, error) {
	p := &Partial{}
	rs, err := f.stream(ctx, query, p)
	if err != nil {
		return nil, nil, err
	}
	return rs, p, nil
}

// Stream implements endpoint.Streamer: it selects sources, fans the
// query out to each under a per-branch context derived from ctx, and
// returns the merged row stream. Without ORDER BY, member results arrive
// interleaved in completion order; with ORDER BY, the merge is an
// ordered k-way heap merge over the locally-sorted branches, so the
// merged stream preserves the global order and ORDER BY + LIMIT yields
// the same top-N a single endpoint over the union corpus would. LIMIT is
// re-applied on the merge either way (each source also applies it
// locally, bounding per-branch work). The merged stream fails, with
// every branch canceled, on the first fatal branch error; it ends
// cleanly when all branches are exhausted.
func (f *Client) Stream(ctx context.Context, query string) (*sparql.RowSeq, error) {
	return f.stream(ctx, query, nil)
}

func (f *Client) stream(ctx context.Context, query string, partial *Partial) (*sparql.RowSeq, error) {
	if len(f.sources) == 0 {
		return nil, errors.New("federation: no sources configured")
	}
	q, err := sparql.Parse(query)
	if err != nil {
		return nil, err
	}
	if q.Form == sparql.FormConstruct {
		return nil, errors.New("federation: CONSTRUCT is not supported over a federation; query a single source")
	}
	if partial != nil {
		// shapes whose already-emitted rows a late branch drop would
		// silently invalidate are refused rather than degraded
		if len(q.OrderBy) > 0 {
			return nil, errors.New("federation: partial results are not supported with ORDER BY (a dropped branch breaks the global-order guarantee mid-stream); retry without partial or without ORDER BY")
		}
		if q.Distinct || q.Reduced || f.DistinctOnMerge {
			return nil, errors.New("federation: partial results are not supported with DISTINCT/REDUCED (merge-level dedup outcomes may depend on a branch that later vanished); retry without partial or without DISTINCT")
		}
	}
	// An aggregate fanned out unchanged would make every member
	// aggregate its own partition and the merge interleave the partial
	// results — silently wrong numbers. Refuse until decomposed
	// execution (ROADMAP) can combine partials correctly.
	if q.NeedsGrouping() {
		return nil, errors.New("federation: GROUP BY/aggregate queries are not supported over a federation (members would aggregate their partitions independently); query a single source or aggregate client-side")
	}
	// OFFSET fanned out unchanged makes every member skip its own first
	// N rows, so the merged result drops up to (k-1)*N answers a union
	// endpoint would return. Refuse like aggregates rather than mislead.
	if q.Offset > 0 {
		return nil, errors.New("federation: OFFSET is not supported over a federation (each member would skip rows independently); query a single source or skip client-side")
	}
	// The ordered merge compares *projected* rows, so every ORDER BY
	// variable must survive projection — a sort key outside the SELECT
	// list is unbound on every merged row and the merge would silently
	// degrade to branch concatenation (wrong row set under LIMIT).
	if len(q.OrderBy) > 0 && !q.Star {
		proj := map[string]bool{}
		for _, v := range projVars(q) {
			proj[v] = true
		}
		for _, v := range sparql.OrderByVars(q.OrderBy) {
			if !proj[v] {
				return nil, fmt.Errorf("federation: ORDER BY ?%s is not supported over a federation unless ?%s is projected (the merge orders by projected rows only); add it to the SELECT list or query a single source", v, v)
			}
		}
	}
	selected, tripped := f.selectSources(q, partial)
	if len(selected) == 0 {
		if f.allDown() || tripped > 0 {
			// nothing left to ask: every source is down or its breaker is
			// holding it open — that is an outage, not an empty answer
			return nil, fmt.Errorf("federation: all %d sources unavailable: %w", len(f.sources), endpoint.ErrUnavailable)
		}
		// every source was provably pruned: the federated answer is empty
		return sparql.ResultSeq(&sparql.Result{Vars: projVars(q)}), nil
	}
	if q.Form == sparql.FormAsk {
		return f.fanAsk(ctx, query, selected, partial)
	}
	return f.fanSelect(ctx, q, query, selected, partial)
}

func (f *Client) allDown() bool {
	for _, src := range f.sources {
		if src.Available() {
			return false
		}
	}
	return true
}

// fanAsk answers a federated ASK: true iff any source answers true. All
// sources are asked concurrently; the first fatal error cancels the rest
// — except under partial-result mode, where a failing source is dropped
// (and named in the Partial) and the remaining answers decide.
func (f *Client) fanAsk(ctx context.Context, query string, selected []*endpoint.Source, partial *Partial) (*sparql.RowSeq, error) {
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu       sync.Mutex
		boolean  bool
		fatal    error
		answered int
		wg       sync.WaitGroup
	)
	for _, src := range selected {
		wg.Add(1)
		go func(src *endpoint.Source) {
			defer wg.Done()
			start := time.Now()
			res, err := src.Client.Query(actx, query)
			elapsed := time.Since(start)
			if err != nil {
				// stats mirror runBranch: teardown is nobody's failure, a
				// skipped outage is Unavailable, anything else reached the
				// source and errored
				switch {
				case actx.Err() != nil:
				case f.SkipUnavailable && errors.Is(err, endpoint.ErrUnavailable):
					f.bump(src, func(st *SourceStats) { st.Queries++; st.Unavailable++; st.Elapsed += elapsed })
					src.Breaker.Failure()
					partial.drop(src.Label())
				case partial != nil:
					f.bump(src, func(st *SourceStats) { st.Queries++; st.Errors++; st.Dropped++; st.Elapsed += elapsed })
					src.Breaker.Failure()
					partial.drop(src.Label())
				default:
					f.bump(src, func(st *SourceStats) { st.Queries++; st.Errors++; st.Elapsed += elapsed })
					src.Breaker.Failure()
					mu.Lock()
					if fatal == nil {
						fatal = fmt.Errorf("federation: source %s: %w", src.Label(), err)
						cancel()
					}
					mu.Unlock()
				}
				return
			}
			f.bump(src, func(st *SourceStats) { st.Queries++; st.Elapsed += elapsed })
			src.Breaker.Success()
			mu.Lock()
			answered++
			if res.Ask && res.Boolean {
				boolean = true
			}
			mu.Unlock()
		}(src)
	}
	wg.Wait()
	if fatal != nil {
		return nil, fatal
	}
	// a dead caller context makes every branch fail with its error and
	// the fatal guard skip them all — that is a cancellation, not an
	// outage of the sources
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if answered == 0 {
		return nil, fmt.Errorf("federation: all %d selected sources unavailable: %w", len(selected), endpoint.ErrUnavailable)
	}
	f.noteDegraded(partial)
	return sparql.ResultSeq(&sparql.Result{Ask: true, Boolean: boolean}), nil
}

// branch is one source's leg of a fan-out. The producer goroutine owns
// every field until it closes ch; the merge loop reads err/skipped only
// after the close, so no lock is needed.
type branch struct {
	src     *endpoint.Source
	ch      chan sparql.Binding
	vars    []string
	opened  bool
	skipped bool
	err     error
}

// fanSelect runs the streaming k-way merge for SELECT queries.
func (f *Client) fanSelect(ctx context.Context, q *sparql.Query, query string, selected []*endpoint.Source, partial *Partial) (*sparql.RowSeq, error) {
	buffer := f.Buffer
	if buffer <= 0 {
		buffer = DefaultBuffer
	}
	mctx, cancel := context.WithCancel(ctx)
	var wg sync.WaitGroup
	branches := make([]*branch, len(selected))
	openCh := make(chan *branch, len(selected))
	for i, src := range selected {
		b := &branch{src: src, ch: make(chan sparql.Binding, buffer)}
		branches[i] = b
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(b.ch)
			f.runBranch(mctx, &wg, b, query, openCh, partial)
		}()
	}

	// The stream's head (Vars) comes from the parsed query when the
	// SELECT list is explicit — deterministic no matter which branch
	// opens first; only SELECT * falls back to the first branch to open,
	// there being nothing else to derive it from. Either way, wait for
	// one branch to open before returning: a fatal open failure before
	// any branch opened fails the whole stream immediately (branches
	// canceled), and every branch skipping as unavailable must surface
	// as ErrUnavailable, not as an empty success.
	explicit := !q.Star
	var vars []string
	if explicit {
		vars = projVars(q)
	}
	opened := false
	reported := 0
	var openErr error
	for reported < len(branches) && !opened && openErr == nil {
		select {
		case b := <-openCh:
			reported++
			switch {
			case b.opened:
				opened = true
				if !explicit {
					vars = b.vars
				}
			case b.err != nil:
				openErr = b.err
			}
		case <-ctx.Done():
			openErr = ctx.Err()
		}
	}
	if openErr != nil {
		cancel()
		wg.Wait()
		return nil, openErr
	}
	if !opened {
		// every branch reported without opening: all skipped as unavailable
		cancel()
		wg.Wait()
		return nil, fmt.Errorf("federation: all %d selected sources unavailable: %w", len(selected), endpoint.ErrUnavailable)
	}

	dedupe := q.Distinct || q.Reduced || f.DistinctOnMerge
	// Dedup keys are positional over the projected vars when explicit;
	// SELECT * keys on all bound (name, value) pairs of each row —
	// deterministic even when heterogeneous sources head their rows
	// differently.
	var keyVars []string
	if explicit {
		keyVars = vars
	}
	var streamErr error
	var seq func(func(sparql.Binding) bool)
	if len(q.OrderBy) > 0 {
		seq = mergeOrdered(ctx, q, branches, dedupe, keyVars, &streamErr)
	} else {
		seq = mergeInterleave(ctx, q, branches, dedupe, keyVars, &streamErr)
	}
	out := sparql.NewRowSeq(vars, seq, &streamErr)
	// Exhaustion, a fatal branch error, a satisfied LIMIT, and consumer
	// Close all funnel through OnClose: cancel every branch context and
	// join the producers, so no goroutine outlives the stream and the
	// stats are final when Close returns.
	out.OnClose(func() {
		cancel()
		wg.Wait()
		f.noteDegraded(partial)
	})
	return out, nil
}

// noteDegraded bumps the degraded-queries counter once per query whose
// partial accounting recorded a drop, after the fan-out is joined (so
// the drop list is final).
func (f *Client) noteDegraded(partial *Partial) {
	if f.Metrics == nil || !partial.Degraded() {
		return
	}
	f.fmOnce.Do(func() { f.fm = newFedMetrics(f.Metrics) })
	f.fm.degraded.Inc()
}

// mergeInterleave is the unordered merge: one select case per open
// branch plus the caller's ctx last; reflect.Select picks uniformly
// among ready branches, which is the k-way interleave. Cases are rebuilt
// only when a branch ends.
func mergeInterleave(ctx context.Context, q *sparql.Query, branches []*branch, dedupe bool, keyVars []string, streamErr *error) func(func(sparql.Binding) bool) {
	limit := q.Limit
	return func(yield func(sparql.Binding) bool) {
		open := make([]*branch, len(branches))
		copy(open, branches)
		var seen map[string]struct{}
		if dedupe {
			seen = map[string]struct{}{}
		}
		var cases []reflect.SelectCase
		rebuild := func() {
			cases = cases[:0]
			for _, b := range open {
				cases = append(cases, reflect.SelectCase{Dir: reflect.SelectRecv, Chan: reflect.ValueOf(b.ch)})
			}
			cases = append(cases, reflect.SelectCase{Dir: reflect.SelectRecv, Chan: reflect.ValueOf(ctx.Done())})
		}
		rebuild()
		emitted := 0
		for len(open) > 0 {
			i, v, ok := reflect.Select(cases)
			if i == len(open) { // caller's ctx died
				*streamErr = ctx.Err()
				return
			}
			if !ok { // branch ended; err/skipped published by the close
				if b := open[i]; b.err != nil {
					*streamErr = b.err
					return
				}
				open = append(open[:i], open[i+1:]...)
				rebuild()
				continue
			}
			row := v.Interface().(sparql.Binding)
			if seen != nil {
				k := sparql.BindingKey(row, keyVars)
				if _, dup := seen[k]; dup {
					continue
				}
				seen[k] = struct{}{}
			}
			// cap before yielding, so the merge-level LIMIT holds even
			// against a member that ignores its local LIMIT (quirky
			// engines do) and for LIMIT 0
			if limit >= 0 && emitted >= limit {
				return
			}
			if !yield(row) {
				return
			}
			emitted++
		}
	}
}

// orderedHead is one branch's current least row in the ordered merge.
type orderedHead struct {
	b   *branch
	idx int // branch position, the deterministic tie-break
	row sparql.Binding
	key sparql.OrderKey
}

// headHeap is the ordered merge's min-heap: least ORDER BY key first,
// ties broken by branch index so the merged order is deterministic given
// the branch contents.
type headHeap struct {
	conds []sparql.OrderCond
	hs    []orderedHead
}

func (h *headHeap) Len() int { return len(h.hs) }
func (h *headHeap) Less(i, j int) bool {
	if c := sparql.CompareOrderKeys(h.conds, h.hs[i].key, h.hs[j].key); c != 0 {
		return c < 0
	}
	return h.hs[i].idx < h.hs[j].idx
}
func (h *headHeap) Swap(i, j int) { h.hs[i], h.hs[j] = h.hs[j], h.hs[i] }
func (h *headHeap) Push(x any)    { h.hs = append(h.hs, x.(orderedHead)) }
func (h *headHeap) Pop() any {
	last := len(h.hs) - 1
	x := h.hs[last]
	h.hs[last] = orderedHead{}
	h.hs = h.hs[:last]
	return x
}

// mergeOrdered is the ordered k-way merge for ORDER BY queries. Each
// member establishes the order locally (the engines materialize and sort
// for ORDER BY), so the branch channels deliver sorted runs; a min-heap
// over the branch heads yields the global order — and, with LIMIT, the
// true global top-N, where completion-order interleaving would return
// whichever N rows arrived first. The price is head-of-line fill: no row
// can surface before every branch has delivered its first row or ended,
// since any branch might still hold the least one.
func mergeOrdered(ctx context.Context, q *sparql.Query, branches []*branch, dedupe bool, keyVars []string, streamErr *error) func(func(sparql.Binding) bool) {
	conds := q.OrderBy
	limit := q.Limit
	return func(yield func(sparql.Binding) bool) {
		// pull blocks for the branch's next row. ok is false when the
		// branch ended (its err, if fatal, goes to streamErr) or the
		// caller's ctx died; fatal==true means stop the whole merge.
		pull := func(b *branch) (row sparql.Binding, ok, fatal bool) {
			select {
			case row, chOk := <-b.ch:
				if !chOk {
					if b.err != nil {
						*streamErr = b.err
						return nil, false, true
					}
					return nil, false, false
				}
				return row, true, false
			case <-ctx.Done():
				*streamErr = ctx.Err()
				return nil, false, true
			}
		}
		h := &headHeap{conds: conds, hs: make([]orderedHead, 0, len(branches))}
		for i, b := range branches {
			row, ok, fatal := pull(b)
			if fatal {
				return
			}
			if !ok { // empty or skipped branch
				continue
			}
			heap.Push(h, orderedHead{b: b, idx: i, row: row, key: sparql.OrderKeyOf(conds, row)})
		}
		var seen map[string]struct{}
		if dedupe {
			seen = map[string]struct{}{}
		}
		emitted := 0
		for h.Len() > 0 {
			hd := h.hs[0]
			// yield the current global minimum before blocking on its
			// branch's next row: a member that trickles rows must not gate
			// the row already known to be least
			emit := true
			if seen != nil {
				k := sparql.BindingKey(hd.row, keyVars)
				if _, dup := seen[k]; dup {
					emit = false
				} else {
					seen[k] = struct{}{}
				}
			}
			if emit {
				if limit >= 0 && emitted >= limit {
					return
				}
				if !yield(hd.row) {
					return
				}
				emitted++
				if limit >= 0 && emitted >= limit {
					// satisfied LIMIT returns without pulling a surplus row
					return
				}
			}
			// advance the consumed branch in place (Fix beats Pop+Push)
			row, ok, fatal := pull(hd.b)
			if fatal {
				return
			}
			if ok {
				h.hs[0] = orderedHead{b: hd.b, idx: hd.idx, row: row, key: sparql.OrderKeyOf(conds, row)}
				heap.Fix(h, 0)
			} else {
				heap.Pop(h)
			}
		}
	}
}

// attemptResult is one open attempt's outcome in a (possibly hedged)
// branch open: the opened stream with its pre-pulled first row, or the
// open error.
type attemptResult struct {
	rs      *sparql.RowSeq
	row     sparql.Binding
	hasRow  bool
	cancel  context.CancelFunc
	hedged  bool // this was the second attempt
	openErr error
}

// openBranch opens src's stream, hedging the open when the client is
// configured to: if the first attempt has not delivered its first row
// within the source's hedge delay, a second attempt launches and
// whichever delivers first wins; the loser's context is canceled and its
// stream drained on a fan-out-joined goroutine, so the Close-joins-
// everything contract holds. Each attempt pulls the first row before
// reporting — "open" for hedging purposes means rows are actually
// flowing, not just that headers arrived. An attempt that errors while
// the other is still running does not decide the open; only both
// failing does.
func (f *Client) openBranch(mctx context.Context, wg *sync.WaitGroup, src *endpoint.Source, query string) attemptResult {
	results := make(chan attemptResult, 2)
	// cancels[i] is attempt i's context cancel, created synchronously in
	// launch so the select loop can abort a still-opening loser without
	// waiting for it to report
	var cancels [2]context.CancelFunc
	launch := func(hedged bool) {
		actx, cancel := context.WithCancel(mctx)
		idx := 0
		if hedged {
			idx = 1
		}
		cancels[idx] = cancel
		wg.Add(1)
		go func() {
			defer wg.Done()
			rs, err := endpoint.Stream(actx, src.Client, query)
			if err != nil {
				cancel()
				results <- attemptResult{openErr: err, hedged: hedged}
				return
			}
			// the attempt's context must die with its stream however the
			// stream ends; registering before the first pull covers the
			// exhaustion, error and Close paths alike
			rs.OnClose(cancel)
			row, ok := rs.Next()
			results <- attemptResult{rs: rs, row: row, hasRow: ok, cancel: cancel, hedged: hedged}
		}()
	}
	launch(false)
	if !f.Hedge {
		return <-results
	}
	hedgeTimer := time.NewTimer(f.hedgeDelay(src))
	defer hedgeTimer.Stop()
	launched := 1
	var firstErr *attemptResult
	for {
		select {
		case <-hedgeTimer.C:
			if launched == 1 {
				launched = 2
				f.bump(src, func(st *SourceStats) { st.Hedged++ })
				launch(true)
			}
		case res := <-results:
			if res.openErr != nil {
				if launched == 2 && firstErr == nil {
					// the sibling attempt may still win; remember the error
					firstErr = &res
					continue
				}
				if launched == 2 && firstErr != nil {
					// both attempts failed: surface the primary's error
					if res.hedged {
						return *firstErr
					}
					return res
				}
				return res
			}
			if launched == 2 {
				f.bump(src, func(st *SourceStats) {
					if res.hedged {
						st.HedgeWon++
					} else {
						st.HedgeWasted++
					}
				})
				if firstErr == nil {
					// the loser is still running: cancel its context now
					// (it may be blocked mid-open) and drain its stream off
					// the fan-out's WaitGroup
					loserCancel := cancels[1]
					if res.hedged {
						loserCancel = cancels[0]
					}
					loserCancel()
					wg.Add(1)
					go func() {
						defer wg.Done()
						loser := <-results
						if loser.rs != nil {
							loser.rs.Close()
						}
					}()
				}
			}
			return res
		}
	}
}

// runBranch opens one source's stream under the merge context and pumps
// its rows into the branch buffer. It reports on openCh exactly once,
// after the open attempt, and sets err/skipped before returning — the
// deferred channel close in the caller publishes them to the merge loop.
// The source's circuit breaker records the outcome: a failed open or a
// mid-stream death is a Failure, a cleanly exhausted stream a Success —
// an open alone earns nothing, so a source that always dies mid-stream
// still trips. Under partial-result mode failures drop the branch (and
// name the source in the Partial) instead of failing the merge.
func (f *Client) runBranch(mctx context.Context, wg *sync.WaitGroup, b *branch, query string, openCh chan<- *branch, partial *Partial) {
	src := b.src
	start := time.Now()
	att := f.openBranch(mctx, wg, src, query)
	if att.openErr != nil {
		err := att.openErr
		switch {
		case mctx.Err() != nil:
			// the merge tore down (consumer Close, satisfied LIMIT, a
			// sibling's fatal error) while this branch was still opening:
			// not this source's failure, and not worth an error stat
			b.skipped = true
		case f.SkipUnavailable && errors.Is(err, endpoint.ErrUnavailable):
			b.skipped = true
			f.bump(src, func(st *SourceStats) { st.Queries++; st.Unavailable++; st.Elapsed += time.Since(start) })
			src.Breaker.Failure()
			partial.drop(src.Label())
		case partial != nil:
			b.skipped = true
			f.bump(src, func(st *SourceStats) { st.Queries++; st.Errors++; st.Dropped++; st.Elapsed += time.Since(start) })
			src.Breaker.Failure()
			partial.drop(src.Label())
		default:
			b.err = fmt.Errorf("federation: source %s: %w", src.Label(), err)
			f.bump(src, func(st *SourceStats) { st.Queries++; st.Errors++ })
			src.Breaker.Failure()
		}
		openCh <- b
		return
	}
	rs := att.rs
	b.opened, b.vars = true, rs.Vars
	f.bump(src, func(st *SourceStats) { st.Queries++ })
	openCh <- b
	defer rs.Close()
	var rows int64
	defer func() {
		f.bump(src, func(st *SourceStats) {
			st.Rows += rows
			st.Elapsed += time.Since(start)
		})
	}()
	if att.hasRow {
		d := time.Since(start)
		f.bump(src, func(st *SourceStats) { st.FirstRow = d })
		f.hedgeTracker(src).Observe(d)
		select {
		case b.ch <- att.row:
			rows++
		case <-mctx.Done():
			return
		}
	}
	for {
		row, ok := rs.Next()
		if !ok {
			// a failure caused by the merge's own teardown is not the
			// source's error
			if err := rs.Err(); err != nil && mctx.Err() == nil {
				src.Breaker.Failure()
				if partial != nil {
					f.bump(src, func(st *SourceStats) { st.Errors++; st.Dropped++ })
					partial.drop(src.Label())
				} else {
					b.err = fmt.Errorf("federation: source %s: %w", src.Label(), err)
					f.bump(src, func(st *SourceStats) { st.Errors++ })
				}
				return
			}
			if mctx.Err() == nil {
				// clean end of stream: the only outcome that earns the
				// breaker a success
				src.Breaker.Success()
			}
			return
		}
		if rows == 0 {
			d := time.Since(start)
			f.bump(src, func(st *SourceStats) { st.FirstRow = d })
			f.hedgeTracker(src).Observe(d)
		}
		select {
		case b.ch <- row:
			rows++
		case <-mctx.Done():
			return
		}
	}
}
