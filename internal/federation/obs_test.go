package federation

import (
	"context"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
)

// TestStatsCapturedAt: the snapshot is stamped by the injected clock, so
// simulated runs report simulated capture times.
func TestStatsCapturedAt(t *testing.T) {
	_, parts := unionAndParts(2)
	fed := New(localSources(parts)...)
	ck := clock.NewSim(clock.Epoch)
	fed.Clock = ck
	snap := fed.Stats()
	if !snap.CapturedAt.Equal(clock.Epoch) {
		t.Fatalf("capturedAt = %v, want %v", snap.CapturedAt, clock.Epoch)
	}
	ck.Advance(3 * time.Hour)
	if got := fed.Stats().CapturedAt; !got.Equal(clock.Epoch.Add(3 * time.Hour)) {
		t.Fatalf("capturedAt = %v, want epoch+3h", got)
	}
}

// TestStatsCapturedAtDefaultsToWallClock: a nil Clock must not produce a
// zero timestamp.
func TestStatsCapturedAtDefaultsToWallClock(t *testing.T) {
	_, parts := unionAndParts(2)
	fed := New(localSources(parts)...)
	before := time.Now()
	snap := fed.Stats()
	if snap.CapturedAt.Before(before.Add(-time.Minute)) || snap.CapturedAt.IsZero() {
		t.Fatalf("capturedAt = %v, want roughly now", snap.CapturedAt)
	}
}

// TestRegistryMirrorsSourceStats: every per-source counter the client
// tracks locally must also land in the process registry, keyed by the
// source URL, so the series outlive the client.
func TestRegistryMirrorsSourceStats(t *testing.T) {
	_, parts := unionAndParts(2)
	srcs := localSources(parts)
	reg := obs.NewRegistry()
	fed := New(srcs...)
	fed.Metrics = reg
	res, err := fed.Query(context.Background(), `SELECT ?s ?p ?o WHERE { ?s ?p ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	snap := fed.Stats()
	var queries, rows float64
	for _, fam := range reg.Snapshot() {
		switch fam.Name {
		case "hbold_federation_queries_total":
			for _, se := range fam.Series {
				queries += se.Value
				if _, known := snap.Sources[se.Labels["source"]]; !known {
					t.Errorf("registry series for unknown source %q", se.Labels["source"])
				}
			}
		case "hbold_federation_rows_total":
			for _, se := range fam.Series {
				rows += se.Value
			}
		}
	}
	if int(queries) != len(srcs) {
		t.Fatalf("registry queries = %v, want %d", queries, len(srcs))
	}
	if int(rows) != len(res.Rows) {
		t.Fatalf("registry rows = %v, result rows = %d", rows, len(res.Rows))
	}
}
