package federation

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/endpoint"
	"repro/internal/faultinject"
	"repro/internal/resilience"
	"repro/internal/store"
)

// httpSources exposes each partition over a real httptest protocol
// server, optionally wrapping one member's handler in mid (chaos). It
// returns the sources, a per-source request counter, and a cleanup func.
func httpSources(t *testing.T, parts []*store.Store, chaosIdx int, mid func(http.Handler) http.Handler) ([]*endpoint.Source, []*atomic.Int64, func()) {
	t.Helper()
	srcs := make([]*endpoint.Source, len(parts))
	hits := make([]*atomic.Int64, len(parts))
	servers := make([]*httptest.Server, len(parts))
	for i, p := range parts {
		hits[i] = &atomic.Int64{}
		var h http.Handler = &endpoint.Handler{Store: p}
		if i == chaosIdx && mid != nil {
			h = mid(h)
		}
		counter := hits[i]
		inner := h
		servers[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			counter.Add(1)
			inner.ServeHTTP(w, r)
		}))
		c := endpoint.NewHTTPClient(servers[i].URL)
		srcs[i] = endpoint.NewSource(fmt.Sprintf("part%d", i), servers[i].URL, c)
	}
	return srcs, hits, func() {
		for _, s := range servers {
			s.Close()
		}
	}
}

const allRowsQuery = `SELECT ?s ?p ?o WHERE { ?s ?p ?o }`

// TestPartialOKMidStreamDeath is the tentpole acceptance scenario: three
// sources, one dying mid-stream (deterministic chaos cut). Default mode
// must surface the death through the stream's Err; partial mode must
// deliver every healthy-branch row and name the dead source.
func TestPartialOKMidStreamDeath(t *testing.T) {
	_, parts := unionAndParts(3)
	cut := faultinject.New(faultinject.Config{Seed: 11, CutRate: 1, CutAfter: 512})
	srcs, _, cleanup := httpSources(t, parts, 1, cut.Middleware)
	defer cleanup()
	ctx := context.Background()

	// healthy-branch row count, counted directly off the partitions
	wantHealthy := 0
	for i, p := range parts {
		if i != 1 {
			wantHealthy += p.Len()
		}
	}

	// default mode: the cut is fatal
	fed := New(srcs...)
	rs, err := fed.Stream(ctx, allRowsQuery)
	if err != nil {
		t.Fatalf("open failed before any row: %v", err)
	}
	n := 0
	for range rs.All() {
		n++
	}
	if rs.Err() == nil {
		t.Fatalf("default mode streamed %d rows with nil Err despite a mid-stream death", n)
	}

	// partial mode: healthy rows survive, the dead source is named
	fed2 := New(srcs...)
	rs2, p, err := fed2.StreamPartial(ctx, allRowsQuery)
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	for range rs2.All() {
		rows++
	}
	if err := rs2.Err(); err != nil {
		t.Fatalf("partial stream Err = %v, want nil", err)
	}
	if rows < wantHealthy {
		t.Fatalf("partial mode delivered %d rows, want at least the %d healthy-branch rows", rows, wantHealthy)
	}
	inc := p.Incomplete()
	if len(inc) != 1 || inc[0] != "part1" {
		t.Fatalf("incomplete = %v, want [part1]", inc)
	}
	if !p.Degraded() {
		t.Fatal("partial with a dropped source must report degraded")
	}
	st := fed2.Stats().Sources[srcs[1].URL]
	if st.Dropped != 1 || st.Errors != 1 {
		t.Fatalf("dead source stats = %+v, want Dropped=1 Errors=1", st)
	}
}

func TestPartialRefusesOrderSensitiveShapes(t *testing.T) {
	_, parts := unionAndParts(2)
	fed := New(localSources(parts)...)
	ctx := context.Background()
	for _, q := range []string{
		`SELECT ?s WHERE { ?s ?p ?o } ORDER BY ?s`,
		`SELECT DISTINCT ?s WHERE { ?s ?p ?o }`,
	} {
		if _, _, err := fed.StreamPartial(ctx, q); err == nil {
			t.Fatalf("%s: partial mode accepted an order/dedup-sensitive shape", q)
		}
	}
	fed2 := New(localSources(parts)...)
	fed2.DistinctOnMerge = true
	if _, _, err := fed2.StreamPartial(ctx, `SELECT ?s WHERE { ?s ?p ?o }`); err == nil {
		t.Fatal("partial mode accepted DistinctOnMerge")
	}
}

func TestPartialAllOpenFailuresStillError(t *testing.T) {
	_, parts := unionAndParts(2)
	srcs, _, cleanup := httpSources(t, parts, -1, nil)
	cleanup() // every open fails: connection refused
	fed := New(srcs...)
	if _, _, err := fed.StreamPartial(context.Background(), allRowsQuery); err == nil {
		t.Fatal("partial mode fabricated a result with every branch dead at open")
	}
}

// TestBreakerZeroRequestsDuringOpenWindow: a member that answers 503
// trips its breaker; while the breaker is open, federated queries must
// not send the member a single HTTP request, and after the open window a
// probe must be re-admitted.
func TestBreakerZeroRequestsDuringOpenWindow(t *testing.T) {
	_, parts := unionAndParts(3)
	srcs, hits, cleanup := httpSources(t, parts, 1, func(http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "down for maintenance", http.StatusServiceUnavailable)
		})
	})
	defer cleanup()
	ck := clock.NewSim(clock.Epoch)
	breakers := resilience.NewBreakerSet(resilience.BreakerConfig{Failures: 2, OpenFor: 30 * time.Second, Clock: ck}, nil)
	for _, src := range srcs {
		src.Breaker = breakers.For(src.URL)
	}
	fed := New(srcs...)
	fed.SkipUnavailable = true
	ctx := context.Background()

	run := func() {
		t.Helper()
		res, err := fed.Query(ctx, allRowsQuery)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) == 0 {
			t.Fatal("no rows from healthy members")
		}
	}
	// two failures trip the breaker (each query = one 503 after the
	// client's zero retries)
	run()
	run()
	if breakers.For(srcs[1].URL).State() != resilience.Open {
		t.Fatalf("breaker after 2 failed fan-outs = %v, want open", breakers.For(srcs[1].URL).State())
	}
	before := hits[1].Load()
	for i := 0; i < 5; i++ {
		run()
	}
	if got := hits[1].Load(); got != before {
		t.Fatalf("tripped source received %d requests during the open window, want 0", got-before)
	}
	if st := fed.Stats().Sources[srcs[1].URL]; st.Tripped != 5 {
		t.Fatalf("Tripped = %d, want 5", st.Tripped)
	}
	// after the window, exactly one probe goes through
	ck.Advance(31 * time.Second)
	before = hits[1].Load()
	run()
	if got := hits[1].Load(); got != before+1 {
		t.Fatalf("half-open window sent %d probes, want 1", got-before)
	}
}

// TestHedgedOpenWins: the primary open stalls far beyond the hedge
// delay; the hedged second attempt must win and the merge must still
// deliver every row exactly once.
func TestHedgedOpenWins(t *testing.T) {
	_, parts := unionAndParts(1)
	var reqs atomic.Int64
	inner := &endpoint.Handler{Store: parts[0]}
	done := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// first request stalls; the hedge (second request) serves. The
		// stall releases on test end (not r.Context()) because httptest
		// may not notice the canceled client until the handler returns.
		if reqs.Add(1) == 1 {
			select {
			case <-r.Context().Done():
			case <-done:
			}
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()
	defer close(done)
	src := endpoint.NewSource("slow", srv.URL, endpoint.NewHTTPClient(srv.URL))
	fed := New(src)
	fed.Hedge = true
	fed.HedgeAfter = 30 * time.Millisecond
	start := time.Now()
	res, err := fed.Query(context.Background(), allRowsQuery)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("hedged open took %v: the stalled primary gated the merge", elapsed)
	}
	if len(res.Rows) != parts[0].Len() {
		t.Fatalf("rows = %d, want %d", len(res.Rows), parts[0].Len())
	}
	st := fed.Stats().Sources[src.URL]
	if st.Hedged != 1 || st.HedgeWon != 1 {
		t.Fatalf("hedge stats = %+v, want Hedged=1 HedgeWon=1", st)
	}
}

// TestHedgeWastedWhenPrimaryWins: a hedge that fires while the primary
// is merely slow (not dead) must not duplicate rows, and counts as
// wasted.
func TestHedgeWastedWhenPrimaryWins(t *testing.T) {
	_, parts := unionAndParts(1)
	inner := &endpoint.Handler{Store: parts[0]}
	var reqs atomic.Int64
	done := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if reqs.Add(1) == 1 {
			// slow but alive: slower than the hedge delay, faster than
			// the hedged attempt could possibly serve
			time.Sleep(80 * time.Millisecond)
		} else {
			select {
			case <-r.Context().Done():
			case <-done:
			case <-time.After(2 * time.Second):
			}
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()
	defer close(done)
	src := endpoint.NewSource("slowish", srv.URL, endpoint.NewHTTPClient(srv.URL))
	fed := New(src)
	fed.Hedge = true
	fed.HedgeAfter = 10 * time.Millisecond
	res, err := fed.Query(context.Background(), allRowsQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != parts[0].Len() {
		t.Fatalf("rows = %d, want %d (hedge must not duplicate or drop rows)", len(res.Rows), parts[0].Len())
	}
	st := fed.Stats().Sources[src.URL]
	if st.Hedged != 1 || st.HedgeWasted != 1 || st.HedgeWon != 0 {
		t.Fatalf("hedge stats = %+v, want Hedged=1 HedgeWasted=1", st)
	}
}

// TestSkipUnavailableRecordsStatsFirst pins the satellite fix: a source
// routed around under SkipUnavailable still records the attempt
// (Queries) and the outage (Unavailable) — before this fix the skip
// path lost the Queries/Elapsed accounting entirely.
func TestSkipUnavailableRecordsStatsFirst(t *testing.T) {
	_, parts := unionAndParts(2)
	srcs, _, cleanup := httpSources(t, parts, 1, func(http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "down", http.StatusServiceUnavailable)
		})
	})
	defer cleanup()
	fed := New(srcs...)
	fed.SkipUnavailable = true
	res, err := fed.Query(context.Background(), allRowsQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != parts[0].Len() {
		t.Fatalf("rows = %d, want the healthy member's %d", len(res.Rows), parts[0].Len())
	}
	st := fed.Stats().Sources[srcs[1].URL]
	if st.Queries != 1 || st.Unavailable != 1 {
		t.Fatalf("skipped source stats = %+v, want Queries=1 Unavailable=1", st)
	}
	if st.Elapsed <= 0 {
		t.Fatalf("skipped source Elapsed = %v, want > 0", st.Elapsed)
	}
}

// TestBreakerSharedWithAsk: ASK fan-outs trip and honor the same
// breaker SELECT fan-outs do.
func TestBreakerSharedWithAsk(t *testing.T) {
	_, parts := unionAndParts(2)
	srcs, hits, cleanup := httpSources(t, parts, 0, func(http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "down", http.StatusServiceUnavailable)
		})
	})
	defer cleanup()
	ck := clock.NewSim(clock.Epoch)
	breakers := resilience.NewBreakerSet(resilience.BreakerConfig{Failures: 1, OpenFor: time.Minute, Clock: ck}, nil)
	for _, src := range srcs {
		src.Breaker = breakers.For(src.URL)
	}
	fed := New(srcs...)
	fed.SkipUnavailable = true
	ctx := context.Background()
	if _, err := fed.Query(ctx, `ASK { ?s ?p ?o }`); err != nil {
		t.Fatal(err)
	}
	if breakers.For(srcs[0].URL).State() != resilience.Open {
		t.Fatal("ASK failure did not trip the shared breaker")
	}
	before := hits[0].Load()
	if _, err := fed.Query(ctx, `ASK { ?s ?p ?o }`); err != nil {
		t.Fatal(err)
	}
	if got := hits[0].Load(); got != before {
		t.Fatalf("tripped source saw %d ASK requests, want 0", got-before)
	}
}

// TestAllTrippedIsUnavailable: when every source's breaker is open the
// federation must answer ErrUnavailable, not an empty result.
func TestAllTrippedIsUnavailable(t *testing.T) {
	_, parts := unionAndParts(2)
	srcs := localSources(parts)
	ck := clock.NewSim(clock.Epoch)
	breakers := resilience.NewBreakerSet(resilience.BreakerConfig{Failures: 1, OpenFor: time.Minute, Clock: ck}, nil)
	for _, src := range srcs {
		src.Breaker = breakers.For(src.URL)
		src.Breaker.Failure()
	}
	fed := New(srcs...)
	_, err := fed.Query(context.Background(), allRowsQuery)
	if !errors.Is(err, endpoint.ErrUnavailable) {
		t.Fatalf("all-tripped err = %v, want ErrUnavailable", err)
	}
	if err != nil && !strings.Contains(err.Error(), "unavailable") {
		t.Fatalf("err %q should mention unavailability", err)
	}
}
