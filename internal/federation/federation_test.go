package federation

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/endpoint"
	"repro/internal/extraction"
	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/store"
	"repro/internal/synth"
)

// unionAndParts builds the shared differential fixture: one corpus, one
// endpoint holding all of it, and k endpoints holding a partition each.
func unionAndParts(k int) (*store.Store, []*store.Store) {
	union := synth.Generate(synth.Spec{
		Name: "fedtest", Classes: 8, Instances: 900, ObjectProps: 10,
		DataProps: 6, LinkFactor: 2, CommunitySeeds: 2, Seed: 42,
	})
	return union, synth.Partition(union, k)
}

func localSources(parts []*store.Store) []*endpoint.Source {
	out := make([]*endpoint.Source, len(parts))
	for i, p := range parts {
		url := fmt.Sprintf("http://part%d.example.org/sparql", i)
		out[i] = endpoint.NewSource(fmt.Sprintf("part%d", i), url, endpoint.LocalClient{Store: p})
	}
	return out
}

// sortedKeysOf canonicalizes a result for order-insensitive comparison.
func sortedKeysOf(t *testing.T, res *sparql.Result) []string {
	t.Helper()
	rows := res.SortedRows()
	keys := make([]string, len(rows))
	for i, r := range rows {
		keys[i] = sparql.BindingKey(r, res.Vars)
	}
	return keys
}

var differentialQueries = []string{
	`SELECT ?s ?p ?o WHERE { ?s ?p ?o }`,
	`SELECT ?s ?c WHERE { ?s a ?c }`,
	`SELECT DISTINCT ?c WHERE { ?s a ?c }`,
	`SELECT ?s ?o WHERE { ?s a ?c . ?s ?p ?o }`,
	`SELECT ?s WHERE { ?s ?p ?o FILTER isLiteral(?o) }`,
	`SELECT DISTINCT ?p WHERE { ?s ?p ?o }`,
}

// TestFederatedEqualsUnion is the differential acceptance test: a query
// federated over the partitions yields exactly the union endpoint's
// solution multiset (same rows up to order; identical sets under
// DISTINCT).
func TestFederatedEqualsUnion(t *testing.T) {
	union, parts := unionAndParts(3)
	fed := New(localSources(parts)...)
	single := endpoint.LocalClient{Store: union}
	ctx := context.Background()
	for _, q := range differentialQueries {
		want, err := single.Query(ctx, q)
		if err != nil {
			t.Fatalf("%s: union: %v", q, err)
		}
		got, err := fed.Query(ctx, q)
		if err != nil {
			t.Fatalf("%s: federated: %v", q, err)
		}
		wk, gk := sortedKeysOf(t, want), sortedKeysOf(t, got)
		if len(wk) != len(gk) {
			t.Fatalf("%s: federated %d rows, union %d rows", q, len(gk), len(wk))
		}
		for i := range wk {
			if wk[i] != gk[i] {
				t.Fatalf("%s: row %d differs:\n  fed   %q\n  union %q", q, i, gk[i], wk[i])
			}
		}
	}
}

// TestFederatedStreamIncremental drains the merged stream row by row and
// checks rows arrive from more than one branch (the merge interleaves
// rather than concatenating a materialized fan-out).
func TestFederatedStreamIncremental(t *testing.T) {
	_, parts := unionAndParts(3)
	fed := New(localSources(parts)...)
	rs, err := fed.Stream(context.Background(), `SELECT ?s ?p ?o WHERE { ?s ?p ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	n := 0
	for range rs.All() {
		n++
	}
	if err := rs.Err(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range parts {
		total += p.Len()
	}
	if n != total {
		t.Fatalf("merged %d rows, partitions hold %d triples", n, total)
	}
	stats := fed.Stats().Sources
	contributing := 0
	for url, st := range stats {
		if st.Rows > 0 {
			contributing++
		}
		if st.Queries != 1 {
			t.Fatalf("%s: %d queries, want 1", url, st.Queries)
		}
		if st.Rows > 0 && (st.FirstRow <= 0 || st.Elapsed <= 0) {
			t.Fatalf("%s: latency stats not recorded: %+v", url, st)
		}
	}
	if contributing < 2 {
		t.Fatalf("only %d sources contributed rows; fixture too lopsided", contributing)
	}
}

// TestFederatedAsk: ASK is true iff any member holds a matching triple.
func TestFederatedAsk(t *testing.T) {
	_, parts := unionAndParts(3)
	fed := New(localSources(parts)...)
	res, err := fed.Query(context.Background(), `ASK { ?s a ?c }`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ask || !res.Boolean {
		t.Fatalf("ASK = %+v, want true", res)
	}
	res, err = fed.Query(context.Background(), `ASK { ?s <http://nowhere.example.org/p> ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Boolean {
		t.Fatal("ASK over absent predicate answered true")
	}
}

// failingClient streams okRows rows of its store, then fails.
type failingClient struct {
	st     *store.Store
	okRows int
	// closed observes downstream teardown: incremented when the failing
	// stream's OnClose runs.
	closed *atomic.Int32
}

var errInjected = errors.New("injected mid-stream failure")

func (f failingClient) Query(ctx context.Context, query string) (*sparql.Result, error) {
	rs, err := f.Stream(ctx, query)
	if err != nil {
		return nil, err
	}
	return rs.Collect()
}

func (f failingClient) Stream(ctx context.Context, query string) (*sparql.RowSeq, error) {
	inner, err := endpoint.LocalClient{Store: f.st}.Stream(ctx, query)
	if err != nil {
		return nil, err
	}
	var streamErr error
	n := 0
	seq := func(yield func(sparql.Binding) bool) {
		defer inner.Close()
		for row := range inner.All() {
			if n >= f.okRows {
				streamErr = errInjected
				return
			}
			n++
			if !yield(row) {
				return
			}
		}
		streamErr = inner.Err()
	}
	out := sparql.NewRowSeq(inner.Vars, seq, &streamErr)
	if f.closed != nil {
		out.OnClose(func() { f.closed.Add(1) })
	}
	return out, nil
}

// slowClient delays each row, so a fast-failing sibling branch dies
// while this branch still has rows in flight — exercising cancellation
// of healthy branches.
type slowClient struct {
	st    *store.Store
	delay time.Duration
}

func (s slowClient) Query(ctx context.Context, query string) (*sparql.Result, error) {
	rs, err := s.Stream(ctx, query)
	if err != nil {
		return nil, err
	}
	return rs.Collect()
}

func (s slowClient) Stream(ctx context.Context, query string) (*sparql.RowSeq, error) {
	inner, err := endpoint.LocalClient{Store: s.st}.Stream(ctx, query)
	if err != nil {
		return nil, err
	}
	return inner.Tap(func(sparql.Binding) { time.Sleep(s.delay) }), nil
}

// TestFederatedBranchFailureSurfaces is the mid-stream failure variant:
// one member fails after a few rows; the merged stream reports the error
// through Err() and every other branch is canceled and joined.
func TestFederatedBranchFailureSurfaces(t *testing.T) {
	_, parts := unionAndParts(3)
	var closed atomic.Int32
	sources := []*endpoint.Source{
		endpoint.NewSource("ok0", "http://ok0/sparql", slowClient{st: parts[0], delay: 100 * time.Microsecond}),
		endpoint.NewSource("bad", "http://bad/sparql", failingClient{st: parts[1], okRows: 5, closed: &closed}),
		endpoint.NewSource("ok1", "http://ok1/sparql", slowClient{st: parts[2], delay: 100 * time.Microsecond}),
	}
	fed := New(sources...)
	rs, err := fed.Stream(context.Background(), `SELECT ?s ?p ?o WHERE { ?s ?p ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for range rs.All() {
		n++
	}
	err = rs.Err()
	if err == nil {
		t.Fatalf("merged stream ended cleanly after %d rows; want injected failure", n)
	}
	if !errors.Is(err, errInjected) {
		t.Fatalf("Err() = %v, want wrapped errInjected", err)
	}
	if !strings.Contains(err.Error(), "bad") {
		t.Fatalf("error does not name the failing source: %v", err)
	}
	// exhaustion ran OnClose, which joins every branch goroutine; Close
	// again must be safe and the failing stream must have been torn down
	rs.Close()
	if got := closed.Load(); got != 1 {
		t.Fatalf("failing branch closed %d times, want 1", got)
	}
	if st := fed.Stats().Sources["http://bad/sparql"]; st.Errors != 1 {
		t.Fatalf("failing source stats = %+v, want Errors=1", st)
	}
}

// TestFederatedConsumerCloseCancelsBranches: abandoning the merged
// stream early tears every branch down (Close returns only after all
// branch goroutines joined — run under -race this also proves no
// goroutine outlives the stream).
func TestFederatedConsumerCloseCancelsBranches(t *testing.T) {
	_, parts := unionAndParts(3)
	fed := New(localSources(parts)...)
	rs, err := fed.Stream(context.Background(), `SELECT ?s ?p ?o WHERE { ?s ?p ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, ok := rs.Next(); !ok {
			t.Fatal("stream ended early")
		}
	}
	rs.Close()
	rs.Close() // double-Close must be safe
	if _, ok := rs.Next(); ok {
		t.Fatal("Next after Close yielded a row")
	}
}

// TestFederatedCallerCancel: canceling the caller's context mid-stream
// surfaces context.Canceled via Err().
func TestFederatedCallerCancel(t *testing.T) {
	_, parts := unionAndParts(3)
	fed := New(localSources(parts)...)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rs, err := fed.Stream(ctx, `SELECT ?s ?p ?o WHERE { ?s ?p ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	rows := 0
	for range rs.All() {
		rows++
		if rows == 10 {
			cancel()
		}
	}
	if !errors.Is(rs.Err(), context.Canceled) {
		t.Fatalf("Err() = %v, want context.Canceled", rs.Err())
	}
}

// TestFederatedAskCanceledContext: a dead caller context surfaces as
// the context's error, not as "all sources unavailable".
func TestFederatedAskCanceledContext(t *testing.T) {
	_, parts := unionAndParts(3)
	fed := New(localSources(parts)...)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := fed.Query(ctx, `ASK { ?s a ?c }`)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if errors.Is(err, endpoint.ErrUnavailable) {
		t.Fatalf("cancellation misreported as unavailability: %v", err)
	}
}

// TestFederatedEarlyCloseRecordsNoSourceErrors: tearing the merge down
// while branches are still opening must not count as source failures.
func TestFederatedEarlyCloseRecordsNoSourceErrors(t *testing.T) {
	_, parts := unionAndParts(3)
	srcs := localSources(parts[:2])
	// one branch that opens slowly, so Close races its open
	srcs = append(srcs, endpoint.NewSource("slowopen", "http://slowopen/sparql",
		slowOpenClient{st: parts[2], delay: 20 * time.Millisecond}))
	fed := New(srcs...)
	rs, err := fed.Stream(context.Background(), `SELECT ?s ?p ?o WHERE { ?s ?p ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rs.Next(); !ok {
		t.Fatal("no first row")
	}
	rs.Close() // joins all branches, including the still-opening one
	for url, st := range fed.Stats().Sources {
		if st.Errors != 0 {
			t.Fatalf("%s: Errors = %d after consumer Close, want 0 (%+v)", url, st.Errors, st)
		}
	}
}

// slowOpenClient delays the stream open, not the rows.
type slowOpenClient struct {
	st    *store.Store
	delay time.Duration
}

func (s slowOpenClient) Query(ctx context.Context, query string) (*sparql.Result, error) {
	rs, err := s.Stream(ctx, query)
	if err != nil {
		return nil, err
	}
	return rs.Collect()
}

func (s slowOpenClient) Stream(ctx context.Context, query string) (*sparql.RowSeq, error) {
	select {
	case <-time.After(s.delay):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return endpoint.LocalClient{Store: s.st}.Stream(ctx, query)
}

// countingClient counts how many requests actually reach a source.
type countingClient struct {
	inner endpoint.Client
	calls *atomic.Int32
}

func (c countingClient) Query(ctx context.Context, query string) (*sparql.Result, error) {
	c.calls.Add(1)
	return c.inner.Query(ctx, query)
}

func (c countingClient) Stream(ctx context.Context, query string) (*sparql.RowSeq, error) {
	c.calls.Add(1)
	return endpoint.Stream(ctx, c.inner, query)
}

// indexOf runs real extraction against a store so the pruning test uses
// the same indexes production builds.
func indexOf(t *testing.T, st *store.Store, url string) *extraction.Index {
	t.Helper()
	ix, err := extraction.New().Extract(context.Background(), endpoint.LocalClient{Store: st}, url, time.Unix(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// TestIndexPruneSkipsIrrelevantSource is the source-selection acceptance
// test: under IndexPrune, a source whose extracted index lacks the
// queried predicate/class receives zero requests, while the same query
// under All reaches every source.
func TestIndexPruneSkipsIrrelevantSource(t *testing.T) {
	union, _ := unionAndParts(1)
	parts := synth.PartitionByClass(union, 3)
	indexes := map[string]*extraction.Index{}
	var calls [3]atomic.Int32
	sources := make([]*endpoint.Source, 3)
	for i, p := range parts {
		url := fmt.Sprintf("http://cls%d.example.org/sparql", i)
		indexes[url] = indexOf(t, p, url)
		sources[i] = endpoint.NewSource(fmt.Sprintf("cls%d", i), url,
			countingClient{inner: endpoint.LocalClient{Store: p}, calls: &calls[i]})
		sources[i].Generation = 1
	}
	fed := New(sources...)
	fed.Policy = IndexPrune
	fed.Lookup = func(url string) (*extraction.Index, error) {
		ix, ok := indexes[url]
		if !ok {
			return nil, errors.New("no index")
		}
		return ix, nil
	}

	// pick a class that lives in exactly one partition
	var homeIdx int
	var classIRI string
	for i, p := range parts {
		for _, cs := range p.Classes() {
			only := true
			for j, q := range parts {
				if j != i && q.CountInstances(cs.Class) > 0 {
					only = false
					break
				}
			}
			if only && cs.Instances > 0 {
				homeIdx, classIRI = i, cs.Class.Value
				break
			}
		}
		if classIRI != "" {
			break
		}
	}
	if classIRI == "" {
		t.Fatal("fixture has no partition-exclusive class")
	}

	query := fmt.Sprintf(`SELECT ?s WHERE { ?s a <%s> }`, classIRI)
	res, err := fed.Query(context.Background(), query)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("pruned federation returned no rows for a present class")
	}
	for i := range calls {
		want := int32(0)
		if i == homeIdx {
			want = 1
		}
		if got := calls[i].Load(); got != want {
			t.Fatalf("source %d received %d requests, want %d (home=%d)", i, got, want, homeIdx)
		}
	}
	for i, src := range sources {
		st := fed.Stats().Sources[src.URL]
		if i != homeIdx && st.Pruned != 1 {
			t.Fatalf("source %d stats = %+v, want Pruned=1", i, st)
		}
	}

	// same query under All reaches everyone
	fedAll := New(sources...)
	if _, err := fedAll.Query(context.Background(), query); err != nil {
		t.Fatal(err)
	}
	for i := range calls {
		want := int32(1)
		if i == homeIdx {
			want = 2
		}
		if got := calls[i].Load(); got != want {
			t.Fatalf("under All, source %d total calls = %d, want %d", i, got, want)
		}
	}
}

// TestIndexPruneFallsBackWithoutIndex: a source with no usable index
// (Generation 0 or failing lookup) is never pruned.
func TestIndexPruneFallsBackWithoutIndex(t *testing.T) {
	_, parts := unionAndParts(2)
	var calls [2]atomic.Int32
	sources := make([]*endpoint.Source, 2)
	for i, p := range parts {
		url := fmt.Sprintf("http://noix%d.example.org/sparql", i)
		sources[i] = endpoint.NewSource("", url,
			countingClient{inner: endpoint.LocalClient{Store: p}, calls: &calls[i]})
		// Generation stays 0: never extracted
	}
	fed := New(sources...)
	fed.Policy = IndexPrune
	fed.Lookup = func(string) (*extraction.Index, error) { return nil, errors.New("no index") }
	if _, err := fed.Query(context.Background(), `SELECT ?s WHERE { ?s <http://nowhere.example.org/p> ?o }`); err != nil {
		t.Fatal(err)
	}
	for i := range calls {
		if calls[i].Load() != 1 {
			t.Fatalf("source %d calls = %d, want 1 (fallback to fan-out)", i, calls[i].Load())
		}
	}
}

// TestAllPrunedYieldsEmptyResult: when the indexes prove no source can
// answer, the federated result is empty, and no source is contacted.
func TestAllPrunedYieldsEmptyResult(t *testing.T) {
	_, parts := unionAndParts(2)
	var calls [2]atomic.Int32
	indexes := map[string]*extraction.Index{}
	sources := make([]*endpoint.Source, 2)
	for i, p := range parts {
		url := fmt.Sprintf("http://pruned%d.example.org/sparql", i)
		indexes[url] = indexOf(t, p, url)
		sources[i] = endpoint.NewSource("", url,
			countingClient{inner: endpoint.LocalClient{Store: p}, calls: &calls[i]})
		sources[i].Generation = 1
	}
	fed := New(sources...)
	fed.Policy = IndexPrune
	fed.Lookup = func(url string) (*extraction.Index, error) { return indexes[url], nil }
	res, err := fed.Query(context.Background(), `SELECT ?s WHERE { ?s <http://nowhere.example.org/p> ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("got %d rows, want 0", len(res.Rows))
	}
	if calls[0].Load()+calls[1].Load() != 0 {
		t.Fatal("pruned sources were still contacted")
	}
}

// TestSkipUnavailableRoutesAround: with SkipUnavailable, a down member
// is skipped and the rest answer; without it, the down member is fatal.
func TestSkipUnavailableRoutesAround(t *testing.T) {
	_, parts := unionAndParts(3)
	mk := func() []*endpoint.Source {
		srcs := localSources(parts[:2])
		down := endpoint.NewRemote("down", "http://down/sparql", parts[2], nil, endpoint.AlwaysDown(), nil)
		srcs = append(srcs, &endpoint.Source{Name: "down", URL: "http://down/sparql", Client: down})
		return srcs
	}
	fed := New(mk()...)
	fed.SkipUnavailable = true
	res, err := fed.Query(context.Background(), `SELECT ?s ?p ?o WHERE { ?s ?p ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	if want := parts[0].Len() + parts[1].Len(); len(res.Rows) != want {
		t.Fatalf("got %d rows, want %d from the two live members", len(res.Rows), want)
	}
	if st := fed.Stats().Sources["http://down/sparql"]; st.Unavailable != 1 {
		t.Fatalf("down source stats = %+v, want Unavailable=1", st)
	}

	strict := New(mk()...)
	rs, err := strict.Stream(context.Background(), `SELECT ?s ?p ?o WHERE { ?s ?p ?o }`)
	if err == nil {
		// the failure may surface at open or through the stream,
		// depending on which branch opens first
		for range rs.All() {
		}
		err = rs.Err()
		rs.Close()
	}
	if !errors.Is(err, endpoint.ErrUnavailable) {
		t.Fatalf("strict federation err = %v, want ErrUnavailable", err)
	}
}

// TestSourceUpProbeSkipsBeforeFanout: a Source.Up probe returning false
// keeps the query from ever reaching the member's client.
func TestSourceUpProbeSkipsBeforeFanout(t *testing.T) {
	_, parts := unionAndParts(2)
	var calls atomic.Int32
	srcs := localSources(parts[:1])
	srcs = append(srcs, &endpoint.Source{
		Name: "probed", URL: "http://probed/sparql",
		Client: countingClient{inner: endpoint.LocalClient{Store: parts[1]}, calls: &calls},
		Up:     func() bool { return false },
	})
	fed := New(srcs...)
	if _, err := fed.Query(context.Background(), `SELECT ?s ?p ?o WHERE { ?s ?p ?o }`); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 0 {
		t.Fatalf("down-probed source received %d requests, want 0", calls.Load())
	}
}

// TestFederatedLimitMerged: LIMIT caps the merged stream, not just each
// branch, and satisfying it tears the fan-out down.
func TestFederatedLimitMerged(t *testing.T) {
	_, parts := unionAndParts(3)
	fed := New(localSources(parts)...)
	res, err := fed.Query(context.Background(), `SELECT ?s ?p ?o WHERE { ?s ?p ?o } LIMIT 7`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("got %d rows, want 7", len(res.Rows))
	}
}

// TestCostOrderedOpensCheapestFirst: cost ordering is deterministic by
// the cost model, checked through the selection order.
func TestCostOrderedOpensCheapestFirst(t *testing.T) {
	_, parts := unionAndParts(3)
	srcs := localSources(parts)
	srcs[0].Cost = endpoint.CostModel{BaseLatency: 300 * time.Millisecond}
	srcs[1].Cost = endpoint.CostModel{BaseLatency: 10 * time.Millisecond}
	srcs[2].Cost = endpoint.CostModel{BaseLatency: 100 * time.Millisecond}
	fed := New(srcs...)
	fed.Policy = CostOrdered
	q, err := sparql.Parse(`SELECT ?s WHERE { ?s ?p ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	sel, _ := fed.selectSources(q, nil)
	if len(sel) != 3 || sel[0] != srcs[1] || sel[1] != srcs[2] || sel[2] != srcs[0] {
		names := make([]string, len(sel))
		for i, s := range sel {
			names[i] = s.Name
		}
		t.Fatalf("selection order = %v, want cheapest first", names)
	}
}

// TestFederatedConcurrentQueries: one federation, many concurrent
// queries — stats and vocab caches are shared state under -race.
func TestFederatedConcurrentQueries(t *testing.T) {
	_, parts := unionAndParts(3)
	fed := New(localSources(parts)...)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := fed.Query(context.Background(), `SELECT DISTINCT ?c WHERE { ?s a ?c }`)
			if err != nil || len(res.Rows) == 0 {
				t.Errorf("concurrent query: %d rows, err %v", len(res.Rows), err)
			}
		}()
	}
	wg.Wait()
}

// TestFederationRejectsConstruct and empty-federation errors.
func TestFederationErrors(t *testing.T) {
	if _, err := New().Stream(context.Background(), `SELECT ?s WHERE { ?s ?p ?o }`); err == nil {
		t.Fatal("empty federation did not error")
	}
	_, parts := unionAndParts(1)
	fed := New(localSources(parts)...)
	if _, err := fed.Stream(context.Background(), `CONSTRUCT { ?s ?p ?o } WHERE { ?s ?p ?o }`); err == nil {
		t.Fatal("CONSTRUCT did not error")
	}
	if _, err := fed.Stream(context.Background(), `SELECT ?s WHERE {`); err == nil {
		t.Fatal("syntax error did not surface")
	}
	// fanned-out aggregates would present per-partition partials as
	// answers; the federation must refuse, not mislead
	for _, q := range []string{
		`SELECT (COUNT(?s) AS ?n) WHERE { ?s ?p ?o }`,
		`SELECT ?c (COUNT(?s) AS ?n) WHERE { ?s a ?c } GROUP BY ?c`,
	} {
		if _, err := fed.Stream(context.Background(), q); err == nil {
			t.Fatalf("aggregate query was fanned out: %s", q)
		}
	}
}

// TestIndexPruneKeepsUntypedSubjectPredicates is the pruning-soundness
// differential: a predicate that occurs only on *untyped* subjects never
// shows up in any per-class property list, and PartitionByClass routes
// those subjects to partition 0 — exactly the shape that used to make
// IndexPrune drop partition 0 and silently lose its rows. With the
// full-corpus predicate scan, partition 0's index advertises the
// predicate, the other partitions are still pruned, and the federated
// result equals the union endpoint's row-for-row.
func TestIndexPruneKeepsUntypedSubjectPredicates(t *testing.T) {
	union, _ := unionAndParts(1)
	const shadow = "http://ex/shadowProp"
	for i := 0; i < 5; i++ {
		union.Add(rdf.NewTriple(
			rdf.NewIRI(fmt.Sprintf("http://ex/untyped%d", i)),
			rdf.NewIRI(shadow),
			rdf.NewLiteral(fmt.Sprintf("v%d", i))))
	}
	parts := synth.PartitionByClass(union, 3)
	indexes := map[string]*extraction.Index{}
	var calls [3]atomic.Int32
	sources := make([]*endpoint.Source, 3)
	for i, p := range parts {
		url := fmt.Sprintf("http://untyped%d.example.org/sparql", i)
		indexes[url] = indexOf(t, p, url)
		sources[i] = endpoint.NewSource(fmt.Sprintf("untyped%d", i), url,
			countingClient{inner: endpoint.LocalClient{Store: p}, calls: &calls[i]})
		sources[i].Generation = 1
	}
	fed := New(sources...)
	fed.Policy = IndexPrune
	fed.Lookup = func(url string) (*extraction.Index, error) { return indexes[url], nil }

	query := fmt.Sprintf(`SELECT ?s ?v WHERE { ?s <%s> ?v }`, shadow)
	want, err := endpoint.LocalClient{Store: union}.Query(context.Background(), query)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fed.Query(context.Background(), query)
	if err != nil {
		t.Fatal(err)
	}
	wk, gk := sortedKeysOf(t, want), sortedKeysOf(t, got)
	if len(gk) != len(wk) || len(wk) != 5 {
		t.Fatalf("federated %d rows, union %d rows, want 5 — pruning dropped untyped-subject answers", len(gk), len(wk))
	}
	for i := range wk {
		if wk[i] != gk[i] {
			t.Fatalf("row %d differs: fed %q union %q", i, gk[i], wk[i])
		}
	}
	// untyped subjects all live in partition 0; the others hold no
	// shadowProp triples and their complete predicate sets prove it
	if got := calls[0].Load(); got != 1 {
		t.Fatalf("home partition received %d requests, want 1", got)
	}
	for i := 1; i < 3; i++ {
		if got := calls[i].Load(); got != 0 {
			t.Fatalf("partition %d received %d requests, want 0 (provably irrelevant)", i, got)
		}
		if st := fed.Stats().Sources[sources[i].URL]; st.Pruned != 1 {
			t.Fatalf("partition %d stats = %+v, want Pruned=1", i, st)
		}
	}
}

// TestFederatedOrderByEqualsUnion: ORDER BY queries — with and without
// LIMIT — must reproduce the union endpoint's rows *in order*. The LIMIT
// variants are the sharp edge: a completion-order merge returns the
// first N rows to arrive, which is a wrong row set, not just a lost
// ordering; the ordered k-way merge must return the global top-N.
func TestFederatedOrderByEqualsUnion(t *testing.T) {
	union, parts := unionAndParts(3)
	fed := New(localSources(parts)...)
	single := endpoint.LocalClient{Store: union}
	for _, q := range []string{
		`SELECT ?s ?p ?o WHERE { ?s ?p ?o } ORDER BY ?s ?p ?o`,
		`SELECT ?s ?p ?o WHERE { ?s ?p ?o } ORDER BY ?s ?p ?o LIMIT 25`,
		`SELECT ?s ?p ?o WHERE { ?s ?p ?o } ORDER BY DESC(?s) ?p ?o LIMIT 10`,
		`SELECT DISTINCT ?c WHERE { ?s a ?c } ORDER BY ?c`,
		`SELECT DISTINCT ?c WHERE { ?s a ?c } ORDER BY DESC(?c) LIMIT 3`,
	} {
		want, err := single.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("%s: union: %v", q, err)
		}
		got, err := fed.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("%s: federated: %v", q, err)
		}
		if len(got.Rows) != len(want.Rows) {
			t.Fatalf("%s: federated %d rows, union %d rows", q, len(got.Rows), len(want.Rows))
		}
		// compare in delivered order: the ordered merge must establish
		// the same global order the union endpoint does
		for i := range want.Rows {
			wk := sparql.BindingKey(want.Rows[i], want.Vars)
			gk := sparql.BindingKey(got.Rows[i], want.Vars)
			if wk != gk {
				t.Fatalf("%s: row %d out of order:\n  fed   %q\n  union %q", q, i, gk, wk)
			}
		}
	}
}

// TestFederatedOrderByBranchFailure: the ordered merge propagates a
// member's mid-stream failure through Err() like the unordered one.
func TestFederatedOrderByBranchFailure(t *testing.T) {
	_, parts := unionAndParts(3)
	sources := []*endpoint.Source{
		endpoint.NewSource("ok0", "http://ok0/sparql", endpoint.LocalClient{Store: parts[0]}),
		endpoint.NewSource("bad", "http://bad/sparql", failingClient{st: parts[1], okRows: 5}),
		endpoint.NewSource("ok1", "http://ok1/sparql", endpoint.LocalClient{Store: parts[2]}),
	}
	fed := New(sources...)
	rs, err := fed.Stream(context.Background(), `SELECT ?s ?p ?o WHERE { ?s ?p ?o } ORDER BY ?s ?p ?o`)
	if err != nil {
		t.Fatal(err)
	}
	for range rs.All() {
	}
	if err := rs.Err(); !errors.Is(err, errInjected) {
		t.Fatalf("ordered merge Err() = %v, want wrapped errInjected", err)
	}
	rs.Close()
}

// TestFederationRejectsOffset: OFFSET fanned out unchanged would make
// every member skip rows independently, dropping answers; it must be
// refused like aggregates, not silently mis-answered.
func TestFederationRejectsOffset(t *testing.T) {
	_, parts := unionAndParts(2)
	fed := New(localSources(parts)...)
	for _, q := range []string{
		`SELECT ?s WHERE { ?s ?p ?o } OFFSET 2`,
		`SELECT ?s WHERE { ?s ?p ?o } ORDER BY ?s LIMIT 5 OFFSET 5`,
	} {
		if _, err := fed.Stream(context.Background(), q); err == nil {
			t.Fatalf("OFFSET query was fanned out: %s", q)
		}
	}
}

// TestFederationRejectsNonProjectedOrderBy: the ordered merge compares
// projected rows, so ORDER BY on a variable the SELECT list drops would
// evaluate as unbound on every merged row and silently degrade to
// branch concatenation — a wrong row set under LIMIT. It must be
// refused; projecting the sort variable (or SELECT *) is supported and
// must still match the union endpoint.
func TestFederationRejectsNonProjectedOrderBy(t *testing.T) {
	union, parts := unionAndParts(3)
	fed := New(localSources(parts)...)
	if _, err := fed.Stream(context.Background(),
		`SELECT ?s WHERE { ?s a ?c } ORDER BY ?c LIMIT 5`); err == nil {
		t.Fatal("ORDER BY on a non-projected variable was fanned out")
	}
	// SELECT * keeps every variable in the rows: same query shape must
	// work and reproduce the union endpoint's global order
	q := `SELECT * WHERE { ?s a ?c } ORDER BY ?c ?s LIMIT 9`
	want, err := endpoint.LocalClient{Store: union}.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fed.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("federated %d rows, union %d", len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		if sparql.BindingKey(got.Rows[i], []string{"c", "s"}) != sparql.BindingKey(want.Rows[i], []string{"c", "s"}) {
			t.Fatalf("row %d out of order under SELECT *", i)
		}
	}
}

// reversedVarsClient answers with head vars in reversed order, modeling
// a remote endpoint that heads its results differently than our engine.
type reversedVarsClient struct{ st *store.Store }

func (r reversedVarsClient) Query(ctx context.Context, query string) (*sparql.Result, error) {
	res, err := endpoint.LocalClient{Store: r.st}.Query(ctx, query)
	if err != nil {
		return nil, err
	}
	rev := make([]string, len(res.Vars))
	for i, v := range res.Vars {
		rev[len(rev)-1-i] = v
	}
	res.Vars = rev
	return res, nil
}

// TestFederatedHeadVarsDeterministic: with an explicit SELECT list the
// merged stream's head comes from the parsed query, not from whichever
// branch happens to open first — so a member heading its rows oddly
// cannot make the federated head (or the NDJSON head line) vary run to
// run.
func TestFederatedHeadVarsDeterministic(t *testing.T) {
	_, parts := unionAndParts(2)
	fed := New(
		endpoint.NewSource("rev0", "http://rev0/sparql", reversedVarsClient{st: parts[0]}),
		endpoint.NewSource("rev1", "http://rev1/sparql", reversedVarsClient{st: parts[1]}),
	)
	for i := 0; i < 10; i++ {
		rs, err := fed.Stream(context.Background(), `SELECT ?s ?o WHERE { ?s ?p ?o }`)
		if err != nil {
			t.Fatal(err)
		}
		if len(rs.Vars) != 2 || rs.Vars[0] != "s" || rs.Vars[1] != "o" {
			t.Fatalf("merged head vars = %v, want [s o] from the query's SELECT list", rs.Vars)
		}
		rs.Close()
	}
}

// limitIgnoringClient answers every query with the same fixed rows,
// modeling a quirky engine that ignores the LIMIT it was sent.
type limitIgnoringClient struct{ rows int }

func (l limitIgnoringClient) Query(ctx context.Context, query string) (*sparql.Result, error) {
	res := &sparql.Result{Vars: []string{"s"}}
	for i := 0; i < l.rows; i++ {
		res.Rows = append(res.Rows, sparql.Binding{"s": rdf.NewIRI(fmt.Sprintf("http://ex/i%d", i))})
	}
	return res, nil
}

// TestFederatedLimitHoldsAgainstQuirkyMember: the merge-level LIMIT is
// self-sufficient — a member over-delivering past its local cap cannot
// push the merged stream past it, including LIMIT 0.
func TestFederatedLimitHoldsAgainstQuirkyMember(t *testing.T) {
	fed := New(
		endpoint.NewSource("quirk0", "http://quirk0/sparql", limitIgnoringClient{rows: 10}),
		endpoint.NewSource("quirk1", "http://quirk1/sparql", limitIgnoringClient{rows: 10}),
	)
	for _, tc := range []struct{ limit, want int }{{0, 0}, {3, 3}, {50, 20}} {
		res, err := fed.Query(context.Background(), fmt.Sprintf(`SELECT ?s WHERE { ?s ?p ?o } LIMIT %d`, tc.limit))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != tc.want {
			t.Fatalf("LIMIT %d: merged %d rows, want %d", tc.limit, len(res.Rows), tc.want)
		}
	}
}

// TestFederatedTopKComposesWithBranchHeaps: an ORDER BY … LIMIT k fan-out
// now runs each member through the streaming top-k heap (each branch
// returns at most k rows) and those truncated branch streams feed the
// ordered k-way merge. The composition must stay exact: the merged
// result is the union endpoint's global top-k in order, not an artifact
// of which branch truncated what.
func TestFederatedTopKComposesWithBranchHeaps(t *testing.T) {
	const k = 25
	union, parts := unionAndParts(3)
	fed := New(localSources(parts)...)
	q := fmt.Sprintf(`SELECT ?s ?p ?o WHERE { ?s ?p ?o } ORDER BY ?o ?s ?p LIMIT %d`, k)

	want, err := endpoint.LocalClient{Store: union}.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("union: %v", err)
	}
	if len(want.Rows) != k {
		t.Fatalf("fixture too small: union top-k has %d rows, want %d", len(want.Rows), k)
	}

	reg := obs.NewRegistry()
	got, err := fed.Query(obs.WithRegistry(context.Background(), reg), q)
	if err != nil {
		t.Fatalf("federated: %v", err)
	}
	if len(got.Rows) != k {
		t.Fatalf("federated %d rows, want %d", len(got.Rows), k)
	}
	// the sort keys (?o ?s ?p) cover every projected variable, so the
	// global order is total and the sequences must match exactly
	for i := range want.Rows {
		wk := sparql.BindingKey(want.Rows[i], want.Vars)
		gk := sparql.BindingKey(got.Rows[i], want.Vars)
		if wk != gk {
			t.Fatalf("row %d differs:\n  fed   %q\n  union %q", i, gk, wk)
		}
	}
	// every branch must have taken the streaming top-k path …
	if n := reg.CounterVec("hbold_stream_op_total", "Streaming operator activations by operator.", "op").With("top-k").Value(); n != float64(len(parts)) {
		t.Fatalf("top-k operator activations = %v, want %d (one per branch)", n, len(parts))
	}
	// … and therefore handed the merge at most k rows each
	for url, st := range fed.Stats().Sources {
		if st.Rows > k {
			t.Fatalf("%s delivered %d rows into the merge; branch top-k should cap at %d", url, st.Rows, k)
		}
	}
}
