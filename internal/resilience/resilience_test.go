package resilience

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
)

func TestBreakerConsecutiveTrip(t *testing.T) {
	ck := clock.NewSim(clock.Epoch)
	b := NewBreaker(BreakerConfig{Failures: 3, OpenFor: 30 * time.Second, Clock: ck})
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("failure %d: breaker should still admit", i)
		}
		b.Failure()
	}
	if b.State() != Closed {
		t.Fatalf("state after 2 failures = %v, want closed", b.State())
	}
	b.Failure()
	if b.State() != Open {
		t.Fatalf("state after 3 failures = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a call inside the window")
	}
	// success resets the consecutive count while closed
	b2 := NewBreaker(BreakerConfig{Failures: 3, Clock: ck})
	b2.Failure()
	b2.Failure()
	b2.Success()
	b2.Failure()
	b2.Failure()
	if b2.State() != Closed {
		t.Fatal("interleaved successes must reset the consecutive count")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	ck := clock.NewSim(clock.Epoch)
	b := NewBreaker(BreakerConfig{Failures: 1, OpenFor: 30 * time.Second, Clock: ck})
	b.Failure()
	if b.Allow() {
		t.Fatal("open breaker admitted")
	}
	ck.Advance(29 * time.Second)
	if b.Allow() {
		t.Fatal("admitted before the open window expired")
	}
	ck.Advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("expired window must admit a probe")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	// only one probe per interval
	if b.Allow() {
		t.Fatal("second probe admitted inside the probe interval")
	}
	// probe failure reopens
	b.Failure()
	if b.State() != Open {
		t.Fatalf("state after probe failure = %v, want open", b.State())
	}
	ck.Advance(31 * time.Second)
	if !b.Allow() {
		t.Fatal("second probe window must admit")
	}
	b.Success()
	if b.State() != Closed {
		t.Fatalf("state after probe success = %v, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker must admit")
	}
}

func TestBreakerVanishedProbeDoesNotWedge(t *testing.T) {
	ck := clock.NewSim(clock.Epoch)
	b := NewBreaker(BreakerConfig{Failures: 1, OpenFor: 10 * time.Second, Clock: ck})
	b.Failure()
	ck.Advance(11 * time.Second)
	if !b.Allow() {
		t.Fatal("probe not admitted")
	}
	// the probe never reports (its query was torn down); the next
	// interval must admit another rather than wedging half-open forever
	ck.Advance(11 * time.Second)
	if !b.Allow() {
		t.Fatal("vanished probe wedged the breaker")
	}
}

func TestBreakerRatioTrip(t *testing.T) {
	ck := clock.NewSim(clock.Epoch)
	b := NewBreaker(BreakerConfig{Failures: 100, Window: 10, Ratio: 0.5, Clock: ck})
	// alternate success/failure: consecutive never passes 1, but once the
	// window fills at 50% failures the ratio trips
	for i := 0; i < 10; i++ {
		if i%2 == 0 {
			b.Success()
		} else {
			b.Failure()
		}
	}
	if b.State() != Open {
		t.Fatalf("state after 50%% failures over a full window = %v, want open", b.State())
	}
}

func TestBreakerTransitionsAndSince(t *testing.T) {
	ck := clock.NewSim(clock.Epoch)
	var log []State
	b := NewBreaker(BreakerConfig{Failures: 1, OpenFor: 5 * time.Second, Clock: ck,
		OnTransition: func(from, to State, at time.Time) { log = append(log, to) }})
	b.Failure()
	openAt := ck.Now()
	if got := b.Since(); !got.Equal(openAt) {
		t.Fatalf("Since = %v, want %v", got, openAt)
	}
	ck.Advance(6 * time.Second)
	b.Allow()
	b.Success()
	want := []State{Open, HalfOpen, Closed}
	if len(log) != len(want) {
		t.Fatalf("transitions = %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("transition %d = %v, want %v", i, log[i], want[i])
		}
	}
}

func TestBreakerNilSafety(t *testing.T) {
	var b *Breaker
	if !b.Allow() {
		t.Fatal("nil breaker must admit")
	}
	b.Success()
	b.Failure()
	if b.State() != Closed {
		t.Fatal("nil breaker state must read closed")
	}
	var s *BreakerSet
	if s.For("x") != nil {
		t.Fatal("nil set must hand out nil breakers")
	}
	if s.Snapshot() != nil {
		t.Fatal("nil set snapshot must be nil")
	}
}

func TestBreakerSetSharesAndReports(t *testing.T) {
	ck := clock.NewSim(clock.Epoch)
	reg := obs.NewRegistry()
	set := NewBreakerSet(BreakerConfig{Failures: 2, Clock: ck}, reg)
	if set.For("http://a") != set.For("http://a") {
		t.Fatal("same URL must share one breaker")
	}
	set.For("http://a").Failure()
	set.For("http://a").Failure()
	if set.For("http://a").State() != Open {
		t.Fatal("shared breaker did not trip")
	}
	snap := set.Snapshot()
	if snap["http://a"].State != Open {
		t.Fatalf("snapshot state = %v, want open", snap["http://a"].State)
	}
	var stateVal, sinceVal float64
	trips := -1.0
	for _, fam := range reg.Snapshot() {
		for _, se := range fam.Series {
			if se.Labels["source"] != "http://a" {
				continue
			}
			switch fam.Name {
			case "hbold_breaker_state":
				stateVal = se.Value
			case "hbold_breaker_last_transition_timestamp_seconds":
				sinceVal = se.Value
			case "hbold_breaker_open_total":
				trips = se.Value
			}
		}
	}
	if stateVal != float64(Open) {
		t.Fatalf("state gauge = %v, want %v", stateVal, float64(Open))
	}
	if want := float64(ck.Now().UnixNano()) / 1e9; sinceVal != want {
		t.Fatalf("last-transition gauge = %v, want %v", sinceVal, want)
	}
	if trips != 1 {
		t.Fatalf("trip counter = %v, want 1", trips)
	}
}

func TestBudget(t *testing.T) {
	b := NewBudget(2, 1)
	if !b.Spend() || !b.Spend() {
		t.Fatal("a full budget must grant its tokens")
	}
	if b.Spend() {
		t.Fatal("an empty budget granted a retry")
	}
	b.Earn()
	if !b.Spend() {
		t.Fatal("a success must refill the bucket")
	}
	for i := 0; i < 10; i++ {
		b.Earn()
	}
	if got := b.Tokens(); got != 2 {
		t.Fatalf("bucket overfilled: %v tokens, cap 2", got)
	}
	var nilB *Budget
	if !nilB.Spend() {
		t.Fatal("nil budget must always grant")
	}
	nilB.Earn()
}

func TestHedgeDelay(t *testing.T) {
	h := NewHedgeDelay(100*time.Millisecond, 10)
	if got := h.Delay(); got != 100*time.Millisecond {
		t.Fatalf("empty tracker delay = %v, want the seed", got)
	}
	// below the sample floor the seed still answers
	for i := 0; i < hedgeMinSamples-1; i++ {
		h.Observe(time.Millisecond)
	}
	if got := h.Delay(); got != 100*time.Millisecond {
		t.Fatalf("under-sampled delay = %v, want the seed", got)
	}
	h.Observe(time.Millisecond)
	if got := h.Delay(); got != time.Millisecond {
		t.Fatalf("uniform samples delay = %v, want 1ms", got)
	}
	// one slow outlier in ten: p90 picks it up
	h2 := NewHedgeDelay(0, 10)
	for i := 0; i < 9; i++ {
		h2.Observe(time.Millisecond)
	}
	h2.Observe(time.Second)
	if got := h2.Delay(); got != time.Second {
		t.Fatalf("p90 over [9x1ms, 1s] = %v, want 1s", got)
	}
	var nilH *HedgeDelay
	nilH.Observe(time.Second)
	if nilH.Delay() != 0 {
		t.Fatal("nil tracker delay must be 0")
	}
}
