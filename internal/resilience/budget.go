package resilience

import "sync"

// Budget defaults; see NewBudget.
const (
	DefaultBudgetTokens = 32
	DefaultBudgetEarn   = 1
)

// Budget is a fleet-wide retry budget: a token bucket that every retry
// spends from and every success earns back into. Shared across a
// process's endpoint clients, it caps total retry amplification during
// an outage — with N dead endpoints and unbounded per-call retries, a
// refresh cycle multiplies the request load exactly when the fleet is
// least able to absorb it; with a budget, retries stop fleet-wide once
// the bucket drains and resume as successes refill it. The bucket
// starts full.
//
// A nil *Budget never exhausts (Spend always grants), so call sites
// need no configuration guard.
type Budget struct {
	mu     sync.Mutex
	tokens float64
	max    float64
	earn   float64
}

// NewBudget builds a budget of max tokens (full at start), earning
// earnPerSuccess tokens back per successful call, capped at max.
// Non-positive arguments get DefaultBudgetTokens/DefaultBudgetEarn.
func NewBudget(max, earnPerSuccess float64) *Budget {
	if max <= 0 {
		max = DefaultBudgetTokens
	}
	if earnPerSuccess <= 0 {
		earnPerSuccess = DefaultBudgetEarn
	}
	return &Budget{tokens: max, max: max, earn: earnPerSuccess}
}

// Spend takes one token for a retry, reporting false — retry denied —
// when the bucket is empty.
func (b *Budget) Spend() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Earn credits one success back into the bucket.
func (b *Budget) Earn() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tokens += b.earn
	if b.tokens > b.max {
		b.tokens = b.max
	}
}

// Tokens returns the current balance (for tests and introspection).
func (b *Budget) Tokens() float64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}
