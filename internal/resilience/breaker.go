// Package resilience is the failure-handling layer shared by the
// endpoint clients, the federation merge and the extraction scheduler:
// per-source circuit breakers (a dead endpoint costs zero requests until
// its open window expires), fleet-wide retry budgets (a token bucket
// refilled by successes, capping retry amplification during an outage),
// and the percentile-derived delay policy behind hedged stream opens.
// Everything is clock-injected so tests drive outage windows with a
// simulated calendar, and everything is nil-safe: a nil *Breaker admits
// every call and a nil *Budget never exhausts, so call sites need no
// configuration guards.
package resilience

import (
	"encoding/json"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
)

// State is a breaker's position in the closed → open → half-open cycle.
type State int32

const (
	// Closed is the healthy state: every call is admitted.
	Closed State = iota
	// HalfOpen admits one probe per open window; the probe's outcome
	// decides between Closed and Open.
	HalfOpen
	// Open admits nothing until the open window expires.
	Open
)

// String returns the state's wire name (the /api/federation/stats and
// gauge-value vocabulary).
func (s State) String() string {
	switch s {
	case HalfOpen:
		return "half-open"
	case Open:
		return "open"
	default:
		return "closed"
	}
}

// MarshalJSON encodes the state by its wire name, so API consumers read
// "open", not 2.
func (s State) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// Breaker defaults; see BreakerConfig.
const (
	DefaultFailures         = 5
	DefaultRatio            = 0.5
	DefaultOpenFor          = 30 * time.Second
	DefaultSuccessesToClose = 1
)

// BreakerConfig parameterizes one breaker. The zero value gets defaults.
type BreakerConfig struct {
	// Failures is the consecutive-failure count that trips the breaker
	// from Closed to Open. Default 5.
	Failures int
	// Window, when > 0, additionally trips on failure *ratio*: once the
	// rolling window of the last Window outcomes is full and at least
	// Ratio of them failed, the breaker opens even if successes keep the
	// consecutive count below Failures (the intermittently-dying source).
	// 0 disables ratio tripping.
	Window int
	// Ratio is the failure fraction over a full Window that trips;
	// default 0.5.
	Ratio float64
	// OpenFor is how long the breaker stays Open before admitting a
	// half-open probe, and the spacing between successive probes while
	// HalfOpen. Default 30s.
	OpenFor time.Duration
	// SuccessesToClose is how many half-open probe successes close the
	// breaker. Default 1.
	SuccessesToClose int
	// Clock drives the open window; nil means the wall clock.
	Clock clock.Clock
	// OnTransition, when set, observes every state change. It runs
	// outside the breaker's lock, so it may call back into the breaker.
	OnTransition func(from, to State, at time.Time)
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Failures <= 0 {
		c.Failures = DefaultFailures
	}
	if c.Ratio <= 0 {
		c.Ratio = DefaultRatio
	}
	if c.OpenFor <= 0 {
		c.OpenFor = DefaultOpenFor
	}
	if c.SuccessesToClose <= 0 {
		c.SuccessesToClose = DefaultSuccessesToClose
	}
	if c.Clock == nil {
		c.Clock = clock.Real{}
	}
	return c
}

// Breaker is a per-source circuit breaker. Closed admits everything and
// counts outcomes; enough consecutive failures (or a failing ratio over
// the rolling window) trip it Open, which admits nothing for OpenFor;
// then HalfOpen admits one probe per OpenFor interval — a probe success
// (SuccessesToClose of them) closes the breaker, a probe failure
// reopens it. Probes are time-spaced rather than tracked in flight, so
// a probe that vanishes (its query torn down mid-open) can never wedge
// the breaker: the next interval simply admits another.
//
// All methods are safe for concurrent use, and safe on a nil receiver
// (Allow admits, the rest no-op) so unconfigured call sites need no
// guard.
type Breaker struct {
	cfg BreakerConfig

	mu        sync.Mutex
	state     State
	consec    int    // consecutive failures while Closed
	successes int    // probe successes while HalfOpen
	window    []bool // rolling outcomes, true = failure
	wn        int    // outcomes recorded, saturating at len(window)
	wi        int    // next ring slot
	until     time.Time
	since     time.Time
}

// NewBreaker builds a breaker; zero config fields get defaults.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	b := &Breaker{cfg: cfg, since: cfg.Clock.Now()}
	if cfg.Window > 0 {
		b.window = make([]bool, cfg.Window)
	}
	return b
}

// Allow reports whether a call to the source should proceed. While Open
// it returns false until the open window expires, then transitions to
// HalfOpen and admits one probe per OpenFor interval.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	now := b.cfg.Clock.Now()
	switch b.state {
	case Closed:
		b.mu.Unlock()
		return true
	case Open:
		if now.Before(b.until) {
			b.mu.Unlock()
			return false
		}
		fire := b.transition(HalfOpen, now)
		b.until = now.Add(b.cfg.OpenFor) // next probe, if this one vanishes
		b.mu.Unlock()
		fire()
		return true
	default: // HalfOpen
		if now.Before(b.until) {
			b.mu.Unlock()
			return false
		}
		b.until = now.Add(b.cfg.OpenFor)
		b.mu.Unlock()
		return true
	}
}

// Success records a successful call.
func (b *Breaker) Success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	now := b.cfg.Clock.Now()
	fire := func() {}
	switch b.state {
	case Closed:
		b.consec = 0
		b.record(false)
	case HalfOpen:
		b.successes++
		if b.successes >= b.cfg.SuccessesToClose {
			fire = b.transition(Closed, now)
		}
	case Open:
		// a straggler from before the trip; the open window stands
	}
	b.mu.Unlock()
	fire()
}

// Failure records a failed call.
func (b *Breaker) Failure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	now := b.cfg.Clock.Now()
	fire := func() {}
	switch b.state {
	case Closed:
		b.consec++
		b.record(true)
		if b.consec >= b.cfg.Failures || b.ratioTripped() {
			fire = b.transition(Open, now)
			b.until = now.Add(b.cfg.OpenFor)
		}
	case HalfOpen:
		fire = b.transition(Open, now)
		b.until = now.Add(b.cfg.OpenFor)
	case Open:
		// stragglers don't extend the window; recovery stays on schedule
	}
	b.mu.Unlock()
	fire()
}

// record pushes one outcome into the rolling window (if configured).
func (b *Breaker) record(failed bool) {
	if b.window == nil {
		return
	}
	b.window[b.wi] = failed
	b.wi = (b.wi + 1) % len(b.window)
	if b.wn < len(b.window) {
		b.wn++
	}
}

// ratioTripped reports whether the rolling window is full and failing.
func (b *Breaker) ratioTripped() bool {
	if b.window == nil || b.wn < len(b.window) {
		return false
	}
	fails := 0
	for _, f := range b.window {
		if f {
			fails++
		}
	}
	return float64(fails) >= b.cfg.Ratio*float64(len(b.window))
}

// transition moves to state `to`, resets per-state counters, and returns
// the OnTransition firing to run after the lock is released.
func (b *Breaker) transition(to State, now time.Time) func() {
	from := b.state
	b.state = to
	b.since = now
	b.consec = 0
	b.successes = 0
	if to == Closed {
		b.wn, b.wi = 0, 0
	}
	if cb := b.cfg.OnTransition; cb != nil {
		return func() { cb(from, to, now) }
	}
	return func() {}
}

// State returns the current state.
func (b *Breaker) State() State {
	if b == nil {
		return Closed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Since returns the time of the last state transition (construction time
// until the first one), read off the injected clock.
func (b *Breaker) Since() time.Time {
	if b == nil {
		return time.Time{}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.since
}

// MarshalText renders the state by name, so BreakerStatus JSON carries
// "closed"/"half-open"/"open" rather than opaque integers.
func (s State) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// BreakerStatus is one breaker's externally visible health, as exported
// on /api/federation/stats.
type BreakerStatus struct {
	State State     `json:"state"`
	Since time.Time `json:"since"`
}

// BreakerSet shares one breaker per source URL across every subsystem
// that talks to sources — the federation's fan-out, the extraction
// scheduler's failure recording — so a source that keeps failing
// extraction is also routed around by queries, and vice versa. When
// built with a registry, each breaker reports a state gauge (0 closed,
// 1 half-open, 2 open), a last-transition timestamp gauge stamped by the
// injected clock, and a trip counter, all labeled by source.
type BreakerSet struct {
	cfg     BreakerConfig
	metrics *obs.Registry

	mu sync.Mutex
	m  map[string]*Breaker
}

// NewBreakerSet builds a set whose breakers share cfg; reg may be nil.
func NewBreakerSet(cfg BreakerConfig, reg *obs.Registry) *BreakerSet {
	return &BreakerSet{cfg: cfg, metrics: reg, m: make(map[string]*Breaker)}
}

// For returns the breaker for url, creating it on first use. A nil set
// returns a nil breaker, which admits everything.
func (s *BreakerSet) For(url string) *Breaker {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.m[url]; ok {
		return b
	}
	cfg := s.cfg
	if reg := s.metrics; reg != nil {
		state := reg.GaugeVec("hbold_breaker_state",
			"Circuit breaker state per source: 0 closed, 1 half-open, 2 open.", "source").With(url)
		since := reg.GaugeVec("hbold_breaker_last_transition_timestamp_seconds",
			"Unix time of the breaker's last state transition, from the injected clock.", "source").With(url)
		trips := reg.CounterVec("hbold_breaker_open_total",
			"Times the breaker tripped open.", "source").With(url)
		user := cfg.OnTransition
		cfg.OnTransition = func(from, to State, at time.Time) {
			state.Set(float64(to))
			since.Set(float64(at.UnixNano()) / 1e9)
			if to == Open {
				trips.Add(1)
			}
			if user != nil {
				user(from, to, at)
			}
		}
		b := NewBreaker(cfg)
		state.Set(float64(Closed))
		since.Set(float64(b.Since().UnixNano()) / 1e9)
		s.m[url] = b
		return b
	}
	b := NewBreaker(cfg)
	s.m[url] = b
	return b
}

// Snapshot returns every breaker's current status, keyed by source URL.
// A nil set returns nil.
func (s *BreakerSet) Snapshot() map[string]BreakerStatus {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]BreakerStatus, len(s.m))
	for url, b := range s.m {
		out[url] = BreakerStatus{State: b.State(), Since: b.Since()}
	}
	return out
}
