package resilience

import (
	"sort"
	"sync"
	"time"
)

// Hedge-delay defaults; see NewHedgeDelay.
const (
	// DefaultHedgeWindow is the sample window the percentile is taken
	// over.
	DefaultHedgeWindow = 32
	// hedgeMinSamples is how many observations the tracker wants before
	// trusting the percentile over the seed.
	hedgeMinSamples = 8
	// hedgePercentile is the first-row latency percentile a hedge fires
	// at: waiting out the p90 means at most ~10% of opens hedge, so the
	// extra load is bounded while the tail (the hedge's whole point) is
	// covered.
	hedgePercentile = 0.90
)

// HedgeDelay derives when a hedged second attempt should launch: the
// p90 of the source's recent first-row latencies, so hedges fire only
// on tail-slow opens (~10% of them) rather than doubling every
// request. Until enough samples accumulate it answers with the seed —
// the cost model's expectation of the source (federation seeds it from
// CostModel.BaseLatency), which is exactly the information available
// before any row has been observed. Safe for concurrent use.
type HedgeDelay struct {
	mu      sync.Mutex
	samples []time.Duration // ring of recent first-row latencies
	n       int             // samples recorded, saturating
	i       int             // next ring slot
	seed    time.Duration
}

// NewHedgeDelay builds a tracker answering seed until window samples
// accumulate; window <= 0 means DefaultHedgeWindow.
func NewHedgeDelay(seed time.Duration, window int) *HedgeDelay {
	if window <= 0 {
		window = DefaultHedgeWindow
	}
	return &HedgeDelay{samples: make([]time.Duration, window), seed: seed}
}

// Observe records one open-to-first-row latency.
func (h *HedgeDelay) Observe(d time.Duration) {
	if h == nil || d < 0 {
		return
	}
	h.mu.Lock()
	h.samples[h.i] = d
	h.i = (h.i + 1) % len(h.samples)
	if h.n < len(h.samples) {
		h.n++
	}
	h.mu.Unlock()
}

// Delay returns the current hedge delay: the seed until hedgeMinSamples
// observations exist, the windowed p90 of observed first-row latencies
// afterwards.
func (h *HedgeDelay) Delay() time.Duration {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n < hedgeMinSamples {
		return h.seed
	}
	sorted := make([]time.Duration, h.n)
	copy(sorted, h.samples[:h.n])
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(hedgePercentile * float64(h.n))
	if idx >= h.n {
		idx = h.n - 1
	}
	return sorted[idx]
}
