// Package store implements an in-memory indexed RDF triple store.
//
// The store interns terms into dense integer IDs and maintains the three
// classic permutation indexes (SPO, POS, OSP) so that any triple pattern
// with at least one bound position is answered without a full scan. It
// also keeps the class/property statistics that the SPARQL evaluator uses
// for selectivity-based join ordering and that Index Extraction reads.
//
// Two read APIs are exposed. The term-level API (Match, Cardinality, …)
// materializes rdf.Term values and is convenient for presentation code.
// The ID-level API (MatchIDs, CardinalityIDs, Reader) stays entirely in
// the dictionary-encoded space; the SPARQL execution engine runs its join
// loops on it so intermediate solutions never re-materialize terms.
package store

import (
	"sort"
	"sync"

	"repro/internal/rdf"
)

// ID is a dense term identifier assigned by the store dictionary.
type ID uint32

// NoID is returned for terms unknown to the dictionary.
const NoID = ID(0)

// Store is an indexed triple store. It is safe for concurrent readers;
// writes must not race with reads (the loaders in this repository build a
// store fully before sharing it, matching how H-BOLD snapshots endpoints).
type Store struct {
	mu sync.RWMutex

	dict   map[rdf.Term]ID
	terms  []rdf.Term // terms[id-1] is the term for id
	nTrips int

	spo index
	pos index
	osp index

	// statistics
	predCount map[ID]int // triples per predicate
}

// index is a two-level permutation index: first key → second key → sorted
// set of third keys. Both key levels keep a sorted slice of their keys,
// maintained at insert time, so iteration is deterministic and merge-style
// scans never need to sort on the read path.
type index struct {
	m    map[ID]*postings
	keys []ID // sorted first-level keys
}

// postings is the second level of an index: second key → sorted third-key
// list, plus the sorted second-level keys.
type postings struct {
	m    map[ID][]ID
	keys []ID // sorted second-level keys
}

// New returns an empty store.
func New() *Store {
	return &Store{
		dict:      make(map[rdf.Term]ID),
		spo:       index{m: make(map[ID]*postings)},
		pos:       index{m: make(map[ID]*postings)},
		osp:       index{m: make(map[ID]*postings)},
		predCount: make(map[ID]int),
	}
}

// FromGraph builds a store containing all triples of g.
func FromGraph(g *rdf.Graph) *Store {
	s := New()
	for _, t := range g.Triples() {
		s.Add(t)
	}
	return s
}

// intern returns the ID for t, assigning a new one if needed.
func (s *Store) intern(t rdf.Term) ID {
	if id, ok := s.dict[t]; ok {
		return id
	}
	s.terms = append(s.terms, t)
	id := ID(len(s.terms))
	s.dict[t] = id
	return id
}

// Lookup returns the ID of t, or NoID if the store has never seen it.
func (s *Store) Lookup(t rdf.Term) ID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.dict[t]
}

// Term returns the term with the given ID. It panics on NoID or an ID the
// store never issued, which always indicates a programming error.
func (s *Store) Term(id ID) rdf.Term {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.terms[id-1]
}

// Add inserts a triple. It reports whether the triple was new.
func (s *Store) Add(t rdf.Triple) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	si, pi, oi := s.intern(t.S), s.intern(t.P), s.intern(t.O)
	if !s.spo.insert(si, pi, oi) {
		return false
	}
	s.pos.insert(pi, oi, si)
	s.osp.insert(oi, si, pi)
	s.nTrips++
	s.predCount[pi]++
	return true
}

// AddSPO inserts a triple given its components.
func (s *Store) AddSPO(sub, pred, obj rdf.Term) bool {
	return s.Add(rdf.Triple{S: sub, P: pred, O: obj})
}

// Remove deletes a triple. It reports whether the triple was present.
// All three permutation indexes shed the triple, and emptied posting
// lists and first-level keys are removed so the distinct subject /
// predicate / object counts (derived from the index key sets) stay
// exact under deletion. Term IDs are never reclaimed: the dictionary
// keeps interned terms so concurrently-held Readers stay valid and ID
// assignment remains append-only.
func (s *Store) Remove(t rdf.Triple) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	si, pi, oi := s.dict[t.S], s.dict[t.P], s.dict[t.O]
	if si == NoID || pi == NoID || oi == NoID {
		return false
	}
	if !s.spo.remove(si, pi, oi) {
		return false
	}
	s.pos.remove(pi, oi, si)
	s.osp.remove(oi, si, pi)
	s.nTrips--
	if s.predCount[pi]--; s.predCount[pi] <= 0 {
		delete(s.predCount, pi)
	}
	return true
}

// insert adds c into the sorted set ix[a][b], reporting whether it was new.
func (ix *index) insert(a, b, c ID) bool {
	p := ix.m[a]
	if p == nil {
		p = &postings{m: make(map[ID][]ID, 2)}
		ix.m[a] = p
		insertSortedID(&ix.keys, a)
	}
	list, ok := p.m[b]
	if !ok {
		insertSortedID(&p.keys, b)
	}
	i := sort.Search(len(list), func(k int) bool { return list[k] >= c })
	if i < len(list) && list[i] == c {
		return false
	}
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = c
	p.m[b] = list
	return true
}

// remove deletes c from the sorted set ix[a][b], reporting whether it was
// present. Emptied third-key lists drop their second-level key, and an
// emptied postings drops its first-level key, so the key sets always name
// exactly the values that still occur in that index position.
func (ix *index) remove(a, b, c ID) bool {
	p := ix.m[a]
	if p == nil {
		return false
	}
	list, ok := p.m[b]
	if !ok {
		return false
	}
	i := sort.Search(len(list), func(k int) bool { return list[k] >= c })
	if i >= len(list) || list[i] != c {
		return false
	}
	if len(list) == 1 {
		delete(p.m, b)
		removeSortedID(&p.keys, b)
	} else {
		copy(list[i:], list[i+1:])
		p.m[b] = list[:len(list)-1]
	}
	if len(p.m) == 0 {
		delete(ix.m, a)
		removeSortedID(&ix.keys, a)
	}
	return true
}

// removeSortedID deletes v from the sorted slice. The caller guarantees v
// is present.
func removeSortedID(s *[]ID, v ID) {
	l := *s
	i := sort.Search(len(l), func(k int) bool { return l[k] >= v })
	copy(l[i:], l[i+1:])
	*s = l[:len(l)-1]
}

// insertSortedID inserts v into the sorted slice, keeping it sorted. The
// caller guarantees v is not already present. IDs are handed out in
// insertion order, so the append-at-end fast path dominates on bulk loads.
func insertSortedID(s *[]ID, v ID) {
	l := *s
	if n := len(l); n == 0 || l[n-1] < v {
		*s = append(l, v)
		return
	}
	i := sort.Search(len(l), func(k int) bool { return l[k] >= v })
	l = append(l, 0)
	copy(l[i+1:], l[i:])
	l[i] = v
	*s = l
}

// lists returns the sorted third-key list under (a, b), or nil.
func (ix *index) lists(a, b ID) []ID {
	p := ix.m[a]
	if p == nil {
		return nil
	}
	return p.m[b]
}

// iterate walks the postings in sorted second-key order; returning false
// from fn stops early (and propagates the false).
func (p *postings) iterate(fn func(b, c ID) bool) bool {
	if p == nil {
		return true
	}
	for _, b := range p.keys {
		for _, c := range p.m[b] {
			if !fn(b, c) {
				return false
			}
		}
	}
	return true
}

// size returns the number of (b, c) pairs in the postings.
func (p *postings) size() int {
	if p == nil {
		return 0
	}
	n := 0
	for _, l := range p.m {
		n += len(l)
	}
	return n
}

// Len returns the number of triples.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.nTrips
}

// TermCount returns the number of distinct terms in the dictionary.
func (s *Store) TermCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.terms)
}

// Has reports whether the store contains the triple.
func (s *Store) Has(t rdf.Triple) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	si, pi, oi := s.dict[t.S], s.dict[t.P], s.dict[t.O]
	if si == NoID || pi == NoID || oi == NoID {
		return false
	}
	return containsSorted(s.spo.lists(si, pi), oi)
}

// containsSorted reports whether the sorted list contains v.
func containsSorted(list []ID, v ID) bool {
	i := sort.Search(len(list), func(k int) bool { return list[k] >= v })
	return i < len(list) && list[i] == v
}

// Pattern is a triple pattern: a zero Term in any position is a wildcard.
type Pattern struct {
	S, P, O rdf.Term
}

// Match streams every triple matching the pattern to fn; returning false
// from fn stops the iteration early.
func (s *Store) Match(pat Pattern, fn func(rdf.Triple) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()

	var ip IDPattern
	if !pat.S.IsZero() {
		if ip.S = s.dict[pat.S]; ip.S == NoID {
			return
		}
	}
	if !pat.P.IsZero() {
		if ip.P = s.dict[pat.P]; ip.P == NoID {
			return
		}
	}
	if !pat.O.IsZero() {
		if ip.O = s.dict[pat.O]; ip.O == NoID {
			return
		}
	}
	r := s.reader()
	r.MatchIDs(ip, func(a, b, c ID) bool {
		return fn(rdf.Triple{S: s.terms[a-1], P: s.terms[b-1], O: s.terms[c-1]})
	})
}

// MatchAll collects every triple matching the pattern.
func (s *Store) MatchAll(pat Pattern) []rdf.Triple {
	var out []rdf.Triple
	s.Match(pat, func(t rdf.Triple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// Count returns the number of triples matching the pattern without
// materializing them.
func (s *Store) Count(pat Pattern) int {
	n := 0
	s.Match(pat, func(rdf.Triple) bool {
		n++
		return true
	})
	return n
}

// Cardinality estimates how many triples match the pattern; used by the
// query planner for join ordering. It is exact for the common shapes.
func (s *Store) Cardinality(pat Pattern) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var ip IDPattern
	if !pat.S.IsZero() {
		if ip.S = s.dict[pat.S]; ip.S == NoID {
			return 0
		}
	}
	if !pat.P.IsZero() {
		if ip.P = s.dict[pat.P]; ip.P == NoID {
			return 0
		}
	}
	if !pat.O.IsZero() {
		if ip.O = s.dict[pat.O]; ip.O == NoID {
			return 0
		}
	}
	r := s.reader()
	return r.CardinalityIDs(ip)
}

// Predicates returns the distinct predicates in the store, sorted.
func (s *Store) Predicates() []rdf.Term {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]rdf.Term, 0, len(s.predCount))
	for id := range s.predCount {
		out = append(out, s.terms[id-1])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Graph copies the full content into a Graph (mainly for serialization).
func (s *Store) Graph() *rdf.Graph {
	g := rdf.NewGraph()
	s.Match(Pattern{}, func(t rdf.Triple) bool {
		g.Add(t)
		return true
	})
	return g
}
