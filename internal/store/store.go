// Package store implements an in-memory indexed RDF triple store.
//
// The store interns terms into dense integer IDs and maintains the three
// classic permutation indexes (SPO, POS, OSP) so that any triple pattern
// with at least one bound position is answered without a full scan. It
// also keeps the class/property statistics that the SPARQL evaluator uses
// for selectivity-based join ordering and that Index Extraction reads.
package store

import (
	"sort"
	"sync"

	"repro/internal/rdf"
)

// ID is a dense term identifier assigned by the store dictionary.
type ID uint32

// NoID is returned for terms unknown to the dictionary.
const NoID = ID(0)

// Store is an indexed triple store. It is safe for concurrent readers;
// writes must not race with reads (the loaders in this repository build a
// store fully before sharing it, matching how H-BOLD snapshots endpoints).
type Store struct {
	mu sync.RWMutex

	dict   map[rdf.Term]ID
	terms  []rdf.Term // terms[id-1] is the term for id
	nTrips int

	spo index
	pos index
	osp index

	// statistics
	predCount map[ID]int // triples per predicate
}

// index is a two-level permutation index: first key → second key → sorted
// set of third keys.
type index map[ID]map[ID][]ID

// New returns an empty store.
func New() *Store {
	return &Store{
		dict:      make(map[rdf.Term]ID),
		spo:       make(index),
		pos:       make(index),
		osp:       make(index),
		predCount: make(map[ID]int),
	}
}

// FromGraph builds a store containing all triples of g.
func FromGraph(g *rdf.Graph) *Store {
	s := New()
	for _, t := range g.Triples() {
		s.Add(t)
	}
	return s
}

// intern returns the ID for t, assigning a new one if needed.
func (s *Store) intern(t rdf.Term) ID {
	if id, ok := s.dict[t]; ok {
		return id
	}
	s.terms = append(s.terms, t)
	id := ID(len(s.terms))
	s.dict[t] = id
	return id
}

// Lookup returns the ID of t, or NoID if the store has never seen it.
func (s *Store) Lookup(t rdf.Term) ID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.dict[t]
}

// Term returns the term with the given ID. It panics on NoID or an ID the
// store never issued, which always indicates a programming error.
func (s *Store) Term(id ID) rdf.Term {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.terms[id-1]
}

// Add inserts a triple. It reports whether the triple was new.
func (s *Store) Add(t rdf.Triple) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	si, pi, oi := s.intern(t.S), s.intern(t.P), s.intern(t.O)
	if !insert(s.spo, si, pi, oi) {
		return false
	}
	insert(s.pos, pi, oi, si)
	insert(s.osp, oi, si, pi)
	s.nTrips++
	s.predCount[pi]++
	return true
}

// AddSPO inserts a triple given its components.
func (s *Store) AddSPO(sub, pred, obj rdf.Term) bool {
	return s.Add(rdf.Triple{S: sub, P: pred, O: obj})
}

// insert adds c into the sorted set idx[a][b], reporting whether it was new.
func insert(idx index, a, b, c ID) bool {
	m, ok := idx[a]
	if !ok {
		m = make(map[ID][]ID)
		idx[a] = m
	}
	list := m[b]
	i := sort.Search(len(list), func(k int) bool { return list[k] >= c })
	if i < len(list) && list[i] == c {
		return false
	}
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = c
	m[b] = list
	return true
}

// Len returns the number of triples.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.nTrips
}

// TermCount returns the number of distinct terms in the dictionary.
func (s *Store) TermCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.terms)
}

// Has reports whether the store contains the triple.
func (s *Store) Has(t rdf.Triple) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	si, pi, oi := s.dict[t.S], s.dict[t.P], s.dict[t.O]
	if si == NoID || pi == NoID || oi == NoID {
		return false
	}
	list := s.spo[si][pi]
	i := sort.Search(len(list), func(k int) bool { return list[k] >= oi })
	return i < len(list) && list[i] == oi
}

// Pattern is a triple pattern: a zero Term in any position is a wildcard.
type Pattern struct {
	S, P, O rdf.Term
}

// Match streams every triple matching the pattern to fn; returning false
// from fn stops the iteration early.
func (s *Store) Match(pat Pattern, fn func(rdf.Triple) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()

	var si, pi, oi ID
	if !pat.S.IsZero() {
		if si = s.dict[pat.S]; si == NoID {
			return
		}
	}
	if !pat.P.IsZero() {
		if pi = s.dict[pat.P]; pi == NoID {
			return
		}
	}
	if !pat.O.IsZero() {
		if oi = s.dict[pat.O]; oi == NoID {
			return
		}
	}

	emit := func(a, b, c ID) bool { // a,b,c in s,p,o order
		return fn(rdf.Triple{S: s.terms[a-1], P: s.terms[b-1], O: s.terms[c-1]})
	}

	switch {
	case si != NoID && pi != NoID && oi != NoID:
		list := s.spo[si][pi]
		i := sort.Search(len(list), func(k int) bool { return list[k] >= oi })
		if i < len(list) && list[i] == oi {
			emit(si, pi, oi)
		}
	case si != NoID && pi != NoID:
		for _, o := range s.spo[si][pi] {
			if !emit(si, pi, o) {
				return
			}
		}
	case pi != NoID && oi != NoID:
		for _, sub := range s.pos[pi][oi] {
			if !emit(sub, pi, oi) {
				return
			}
		}
	case si != NoID && oi != NoID:
		for _, p := range s.osp[oi][si] {
			if !emit(si, p, oi) {
				return
			}
		}
	case si != NoID:
		if !iterate2(s.spo[si], func(p, o ID) bool { return emit(si, p, o) }) {
			return
		}
	case pi != NoID:
		if !iterate2(s.pos[pi], func(o, sub ID) bool { return emit(sub, pi, o) }) {
			return
		}
	case oi != NoID:
		if !iterate2(s.osp[oi], func(sub, p ID) bool { return emit(sub, p, oi) }) {
			return
		}
	default:
		for sub, pm := range s.spo {
			if !iterate2(pm, func(p, o ID) bool { return emit(sub, p, o) }) {
				return
			}
		}
	}
}

// iterate2 walks a second-level index deterministically (sorted first key).
func iterate2(m map[ID][]ID, fn func(b, c ID) bool) bool {
	keys := make([]ID, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, b := range keys {
		for _, c := range m[b] {
			if !fn(b, c) {
				return false
			}
		}
	}
	return true
}

// MatchAll collects every triple matching the pattern.
func (s *Store) MatchAll(pat Pattern) []rdf.Triple {
	var out []rdf.Triple
	s.Match(pat, func(t rdf.Triple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// Count returns the number of triples matching the pattern without
// materializing them.
func (s *Store) Count(pat Pattern) int {
	n := 0
	s.Match(pat, func(rdf.Triple) bool {
		n++
		return true
	})
	return n
}

// Cardinality estimates how many triples match the pattern; used by the
// query planner for join ordering. It is exact for the common shapes.
func (s *Store) Cardinality(pat Pattern) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var si, pi, oi ID
	if !pat.S.IsZero() {
		if si = s.dict[pat.S]; si == NoID {
			return 0
		}
	}
	if !pat.P.IsZero() {
		if pi = s.dict[pat.P]; pi == NoID {
			return 0
		}
	}
	if !pat.O.IsZero() {
		if oi = s.dict[pat.O]; oi == NoID {
			return 0
		}
	}
	switch {
	case si != NoID && pi != NoID && oi != NoID:
		return 1
	case si != NoID && pi != NoID:
		return len(s.spo[si][pi])
	case pi != NoID && oi != NoID:
		return len(s.pos[pi][oi])
	case si != NoID && oi != NoID:
		return len(s.osp[oi][si])
	case si != NoID:
		return size2(s.spo[si])
	case pi != NoID:
		return s.predCount[pi]
	case oi != NoID:
		return size2(s.osp[oi])
	default:
		return s.nTrips
	}
}

func size2(m map[ID][]ID) int {
	n := 0
	for _, l := range m {
		n += len(l)
	}
	return n
}

// Predicates returns the distinct predicates in the store, sorted.
func (s *Store) Predicates() []rdf.Term {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]rdf.Term, 0, len(s.predCount))
	for id := range s.predCount {
		out = append(out, s.terms[id-1])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Graph copies the full content into a Graph (mainly for serialization).
func (s *Store) Graph() *rdf.Graph {
	g := rdf.NewGraph()
	s.Match(Pattern{}, func(t rdf.Triple) bool {
		g.Add(t)
		return true
	})
	return g
}
