package store

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/rdf"
)

func TestRemoveBasic(t *testing.T) {
	s := buildSmall()
	tr := rdf.NewTriple(iri("alice"), iri("knows"), iri("bob"))
	if !s.Remove(tr) {
		t.Fatal("Remove of present triple must be true")
	}
	if s.Remove(tr) {
		t.Fatal("second Remove must be false")
	}
	if s.Has(tr) {
		t.Fatal("Has found removed triple")
	}
	if s.Len() != 6 {
		t.Fatalf("Len = %d, want 6", s.Len())
	}
	if !s.Add(tr) {
		t.Fatal("re-Add after Remove must be true")
	}
	if !s.Has(tr) {
		t.Fatal("re-added triple missing")
	}
}

func TestRemoveUnknownTerms(t *testing.T) {
	s := buildSmall()
	if s.Remove(rdf.NewTriple(iri("nobody"), iri("knows"), iri("bob"))) {
		t.Fatal("Remove with unknown term must be false")
	}
}

func TestRemoveDropsDistinctCounts(t *testing.T) {
	s := New()
	s.AddSPO(iri("a"), iri("p"), iri("x"))
	s.AddSPO(iri("a"), iri("q"), iri("y"))
	s.Remove(rdf.NewTriple(iri("a"), iri("q"), iri("y")))
	r := s.Reader()
	if got := r.DistinctSubjects(); got != 1 {
		t.Fatalf("DistinctSubjects = %d, want 1", got)
	}
	if got := r.DistinctPredicates(); got != 1 {
		t.Fatalf("DistinctPredicates = %d, want 1", got)
	}
	if got := r.DistinctObjects(); got != 1 {
		t.Fatalf("DistinctObjects = %d, want 1", got)
	}
	if got := len(s.Predicates()); got != 1 {
		t.Fatalf("Predicates = %d entries, want 1", got)
	}
}

// TestRandomizedInsertDeleteEquivalence applies a seeded random stream of
// inserts and deletes and requires the mutated store to be observationally
// identical to a store rebuilt from scratch with exactly the surviving
// triples: same triple set, same cardinalities for every pattern shape,
// same distinct counts, and internally consistent sorted index keys.
func TestRandomizedInsertDeleteEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1234} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			subs := make([]rdf.Term, 12)
			for i := range subs {
				subs[i] = iri(fmt.Sprintf("s%d", i))
			}
			preds := make([]rdf.Term, 6)
			for i := range preds {
				preds[i] = iri(fmt.Sprintf("p%d", i))
			}
			objs := make([]rdf.Term, 15)
			for i := range objs {
				if i%3 == 0 {
					objs[i] = rdf.NewLiteral(fmt.Sprintf("v%d", i))
				} else {
					objs[i] = iri(fmt.Sprintf("o%d", i))
				}
			}
			randTriple := func() rdf.Triple {
				return rdf.NewTriple(
					subs[rng.Intn(len(subs))],
					preds[rng.Intn(len(preds))],
					objs[rng.Intn(len(objs))],
				)
			}

			mutated := New()
			live := make(map[rdf.Triple]bool)
			for i := 0; i < 3000; i++ {
				tr := randTriple()
				if rng.Intn(100) < 60 {
					if mutated.Add(tr) != !live[tr] {
						t.Fatalf("op %d: Add(%v) novelty disagrees with model", i, tr)
					}
					live[tr] = true
				} else {
					if mutated.Remove(tr) != live[tr] {
						t.Fatalf("op %d: Remove(%v) presence disagrees with model", i, tr)
					}
					delete(live, tr)
				}
			}

			rebuilt := New()
			for tr := range live {
				rebuilt.Add(tr)
			}

			if mutated.Len() != rebuilt.Len() {
				t.Fatalf("Len: mutated %d, rebuilt %d", mutated.Len(), rebuilt.Len())
			}
			if got, want := sortedTriples(mutated), sortedTriples(rebuilt); !equalTriples(got, want) {
				t.Fatalf("triple sets differ: mutated %d, rebuilt %d", len(got), len(want))
			}

			mr, rr := mutated.Reader(), rebuilt.Reader()
			if mr.DistinctSubjects() != rr.DistinctSubjects() ||
				mr.DistinctPredicates() != rr.DistinctPredicates() ||
				mr.DistinctObjects() != rr.DistinctObjects() {
				t.Fatalf("distinct counts: mutated (%d,%d,%d), rebuilt (%d,%d,%d)",
					mr.DistinctSubjects(), mr.DistinctPredicates(), mr.DistinctObjects(),
					rr.DistinctSubjects(), rr.DistinctPredicates(), rr.DistinctObjects())
			}

			// Every pattern shape over sampled terms must agree with the
			// rebuilt store (Cardinality interns per-store, so this is a
			// term-level comparison).
			wild := rdf.Term{}
			for i := 0; i < 200; i++ {
				sub := subs[rng.Intn(len(subs))]
				p := preds[rng.Intn(len(preds))]
				o := objs[rng.Intn(len(objs))]
				pats := []Pattern{
					{sub, p, o}, {S: sub, P: p}, {P: p, O: o}, {S: sub, O: o},
					{S: sub}, {P: p}, {O: o}, {wild, wild, wild},
				}
				for _, pat := range pats {
					if got, want := mutated.Cardinality(pat), rebuilt.Cardinality(pat); got != want {
						t.Fatalf("Cardinality(%v): mutated %d, rebuilt %d", pat, got, want)
					}
					if got, want := mutated.Count(pat), rebuilt.Count(pat); got != want {
						t.Fatalf("Count(%v): mutated %d, rebuilt %d", pat, got, want)
					}
				}
			}

			checkIndexInvariants(t, mutated)
		})
	}
}

func sortedTriples(s *Store) []rdf.Triple {
	ts := s.MatchAll(Pattern{})
	sort.Slice(ts, func(i, j int) bool {
		if c := ts[i].S.Compare(ts[j].S); c != 0 {
			return c < 0
		}
		if c := ts[i].P.Compare(ts[j].P); c != 0 {
			return c < 0
		}
		return ts[i].O.Compare(ts[j].O) < 0
	})
	return ts
}

func equalTriples(a, b []rdf.Triple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkIndexInvariants asserts the structural invariants deletion must
// preserve: sorted, duplicate-free key slices that exactly mirror the
// maps at both index levels, no empty posting lists, and the three
// permutations all the same size.
func checkIndexInvariants(t *testing.T, s *Store) {
	t.Helper()
	total := -1
	for name, ix := range map[string]*index{"spo": &s.spo, "pos": &s.pos, "osp": &s.osp} {
		if len(ix.keys) != len(ix.m) {
			t.Fatalf("%s: %d keys vs %d map entries", name, len(ix.keys), len(ix.m))
		}
		n := 0
		for i, a := range ix.keys {
			if i > 0 && ix.keys[i-1] >= a {
				t.Fatalf("%s: first-level keys not strictly sorted", name)
			}
			p := ix.m[a]
			if p == nil || len(p.m) == 0 {
				t.Fatalf("%s[%d]: empty postings retained", name, a)
			}
			if len(p.keys) != len(p.m) {
				t.Fatalf("%s[%d]: %d keys vs %d map entries", name, a, len(p.keys), len(p.m))
			}
			for j, b := range p.keys {
				if j > 0 && p.keys[j-1] >= b {
					t.Fatalf("%s[%d]: second-level keys not strictly sorted", name, a)
				}
				list := p.m[b]
				if len(list) == 0 {
					t.Fatalf("%s[%d][%d]: empty third-key list retained", name, a, b)
				}
				for k := 1; k < len(list); k++ {
					if list[k-1] >= list[k] {
						t.Fatalf("%s[%d][%d]: third-key list not strictly sorted", name, a, b)
					}
				}
				n += len(list)
			}
		}
		if total == -1 {
			total = n
		} else if n != total {
			t.Fatalf("%s: %d entries, other permutation has %d", name, n, total)
		}
	}
	if total != s.nTrips {
		t.Fatalf("index entries %d != nTrips %d", total, s.nTrips)
	}
}
