package store

import (
	"sort"

	"repro/internal/rdf"
)

// ClassStat summarizes one instantiated class: how many instances it has.
type ClassStat struct {
	Class     rdf.Term
	Instances int
}

// Classes returns the instantiated classes (objects of rdf:type) with
// their instance counts, sorted by descending count then IRI. This mirrors
// the first queries of H-BOLD's Index Extraction.
func (s *Store) Classes() []ClassStat {
	typeT := rdf.NewIRI(rdf.RDFType)
	counts := make(map[rdf.Term]int)
	s.Match(Pattern{P: typeT}, func(t rdf.Triple) bool {
		counts[t.O]++
		return true
	})
	out := make([]ClassStat, 0, len(counts))
	for c, n := range counts {
		out = append(out, ClassStat{Class: c, Instances: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Instances != out[j].Instances {
			return out[i].Instances > out[j].Instances
		}
		return out[i].Class.Compare(out[j].Class) < 0
	})
	return out
}

// InstancesOf streams the subjects typed as class.
func (s *Store) InstancesOf(class rdf.Term, fn func(rdf.Term) bool) {
	s.Match(Pattern{P: rdf.NewIRI(rdf.RDFType), O: class}, func(t rdf.Triple) bool {
		return fn(t.S)
	})
}

// CountInstances returns the number of instances of class.
func (s *Store) CountInstances(class rdf.Term) int {
	return s.Count(Pattern{P: rdf.NewIRI(rdf.RDFType), O: class})
}

// DistinctSubjects returns the number of distinct subjects, a proxy for
// the "number of entities" index of H-BOLD.
func (s *Store) DistinctSubjects() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.spo.m)
}
