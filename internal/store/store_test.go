package store

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/rdf"
)

func iri(s string) rdf.Term { return rdf.NewIRI("http://ex/" + s) }

func buildSmall() *Store {
	s := New()
	s.AddSPO(iri("alice"), iri("knows"), iri("bob"))
	s.AddSPO(iri("alice"), iri("knows"), iri("carol"))
	s.AddSPO(iri("bob"), iri("knows"), iri("carol"))
	s.AddSPO(iri("alice"), iri("name"), rdf.NewLiteral("Alice"))
	s.AddSPO(iri("alice"), rdf.NewIRI(rdf.RDFType), iri("Person"))
	s.AddSPO(iri("bob"), rdf.NewIRI(rdf.RDFType), iri("Person"))
	s.AddSPO(iri("conf"), rdf.NewIRI(rdf.RDFType), iri("Event"))
	return s
}

func TestAddDeduplicates(t *testing.T) {
	s := New()
	tr := rdf.NewTriple(iri("a"), iri("p"), iri("b"))
	if !s.Add(tr) {
		t.Fatal("first Add must be true")
	}
	if s.Add(tr) {
		t.Fatal("second Add must be false")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestHas(t *testing.T) {
	s := buildSmall()
	if !s.Has(rdf.NewTriple(iri("alice"), iri("knows"), iri("bob"))) {
		t.Fatal("Has missing existing triple")
	}
	if s.Has(rdf.NewTriple(iri("bob"), iri("knows"), iri("alice"))) {
		t.Fatal("Has found non-existing triple")
	}
}

func TestMatchShapes(t *testing.T) {
	s := buildSmall()
	cases := []struct {
		name string
		pat  Pattern
		want int
	}{
		{"SPO", Pattern{iri("alice"), iri("knows"), iri("bob")}, 1},
		{"SP?", Pattern{S: iri("alice"), P: iri("knows")}, 2},
		{"?PO", Pattern{P: iri("knows"), O: iri("carol")}, 2},
		{"S?O", Pattern{S: iri("alice"), O: iri("bob")}, 1},
		{"S??", Pattern{S: iri("alice")}, 4},
		{"?P?", Pattern{P: iri("knows")}, 3},
		{"??O", Pattern{O: iri("carol")}, 2},
		{"???", Pattern{}, 7},
		{"missing term", Pattern{S: iri("nobody")}, 0},
	}
	for _, c := range cases {
		if got := s.Count(c.pat); got != c.want {
			t.Errorf("%s: Count = %d, want %d", c.name, got, c.want)
		}
		if got := len(s.MatchAll(c.pat)); got != c.want {
			t.Errorf("%s: MatchAll = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestMatchEarlyStop(t *testing.T) {
	s := buildSmall()
	n := 0
	s.Match(Pattern{}, func(rdf.Triple) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("early stop visited %d, want 3", n)
	}
}

func TestCardinalityMatchesCount(t *testing.T) {
	s := buildSmall()
	pats := []Pattern{
		{},
		{S: iri("alice")},
		{P: iri("knows")},
		{O: iri("carol")},
		{S: iri("alice"), P: iri("knows")},
		{P: iri("knows"), O: iri("carol")},
		{S: iri("alice"), O: iri("bob")},
		{S: iri("ghost")},
	}
	for _, p := range pats {
		if c, n := s.Cardinality(p), s.Count(p); c != n {
			t.Errorf("Cardinality(%v) = %d, Count = %d", p, c, n)
		}
	}
}

func TestLookupTermRoundTrip(t *testing.T) {
	s := buildSmall()
	id := s.Lookup(iri("alice"))
	if id == NoID {
		t.Fatal("alice should be interned")
	}
	if got := s.Term(id); got != iri("alice") {
		t.Fatalf("Term(Lookup(alice)) = %v", got)
	}
	if s.Lookup(iri("ghost")) != NoID {
		t.Fatal("unknown term should be NoID")
	}
}

func TestClasses(t *testing.T) {
	s := buildSmall()
	cs := s.Classes()
	if len(cs) != 2 {
		t.Fatalf("Classes = %d, want 2", len(cs))
	}
	if cs[0].Class != iri("Person") || cs[0].Instances != 2 {
		t.Fatalf("top class = %+v", cs[0])
	}
	if cs[1].Class != iri("Event") || cs[1].Instances != 1 {
		t.Fatalf("second class = %+v", cs[1])
	}
}

func TestCountInstancesAndInstancesOf(t *testing.T) {
	s := buildSmall()
	if n := s.CountInstances(iri("Person")); n != 2 {
		t.Fatalf("CountInstances = %d", n)
	}
	var got []rdf.Term
	s.InstancesOf(iri("Person"), func(x rdf.Term) bool {
		got = append(got, x)
		return true
	})
	if len(got) != 2 {
		t.Fatalf("InstancesOf visited %d", len(got))
	}
}

func TestPredicates(t *testing.T) {
	s := buildSmall()
	ps := s.Predicates()
	if len(ps) != 3 {
		t.Fatalf("Predicates = %v", ps)
	}
	for i := 1; i < len(ps); i++ {
		if ps[i-1].Compare(ps[i]) >= 0 {
			t.Fatal("Predicates not sorted")
		}
	}
}

func TestDistinctSubjects(t *testing.T) {
	s := buildSmall()
	if n := s.DistinctSubjects(); n != 3 {
		t.Fatalf("DistinctSubjects = %d, want 3", n)
	}
}

func TestGraphExport(t *testing.T) {
	s := buildSmall()
	g := s.Graph()
	if g.Len() != s.Len() {
		t.Fatalf("Graph export lost triples: %d vs %d", g.Len(), s.Len())
	}
}

func TestFromGraph(t *testing.T) {
	g := rdf.NewGraph()
	g.AddSPO(iri("a"), iri("p"), iri("b"))
	g.AddSPO(iri("b"), iri("p"), iri("c"))
	s := FromGraph(g)
	if s.Len() != 2 {
		t.Fatalf("FromGraph Len = %d", s.Len())
	}
}

func TestMatchDeterministic(t *testing.T) {
	s := buildSmall()
	a := fmt.Sprint(s.MatchAll(Pattern{P: iri("knows")}))
	for i := 0; i < 5; i++ {
		if b := fmt.Sprint(s.MatchAll(Pattern{P: iri("knows")})); a != b {
			t.Fatal("Match order not deterministic")
		}
	}
}

// Property: every added triple is findable via every index shape, and
// Count over a wildcard equals the number of insertions.
func TestQuickIndexConsistency(t *testing.T) {
	f := func(raw [][3]uint8) bool {
		s := New()
		unique := make(map[[3]uint8]struct{})
		for _, r := range raw {
			tr := rdf.NewTriple(
				iri(fmt.Sprintf("s%d", r[0]%8)),
				iri(fmt.Sprintf("p%d", r[1]%4)),
				iri(fmt.Sprintf("o%d", r[2]%8)),
			)
			key := [3]uint8{r[0] % 8, r[1] % 4, r[2] % 8}
			_, dup := unique[key]
			unique[key] = struct{}{}
			if s.Add(tr) == dup {
				return false // Add's newness report must match dedup
			}
		}
		if s.Len() != len(unique) {
			return false
		}
		// every triple reachable through all bound shapes
		ok := true
		s.Match(Pattern{}, func(tr rdf.Triple) bool {
			if !s.Has(tr) {
				ok = false
				return false
			}
			if s.Count(Pattern{S: tr.S, P: tr.P, O: tr.O}) != 1 {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Cardinality is exact for all pattern shapes on random data.
func TestQuickCardinalityExact(t *testing.T) {
	f := func(raw [][3]uint8) bool {
		s := New()
		for _, r := range raw {
			s.AddSPO(
				iri(fmt.Sprintf("s%d", r[0]%6)),
				iri(fmt.Sprintf("p%d", r[1]%3)),
				iri(fmt.Sprintf("o%d", r[2]%6)),
			)
		}
		pats := []Pattern{
			{},
			{S: iri("s1")},
			{P: iri("p1")},
			{O: iri("o2")},
			{S: iri("s0"), P: iri("p0")},
			{P: iri("p2"), O: iri("o1")},
			{S: iri("s3"), O: iri("o3")},
		}
		for _, p := range pats {
			if s.Cardinality(p) != s.Count(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// --- ID-level read API ---

func TestReaderMatchIDsAgreesWithMatch(t *testing.T) {
	s := buildSmall()
	r := s.Reader()
	pats := []Pattern{
		{},
		{S: iri("alice")},
		{P: iri("knows")},
		{O: iri("carol")},
		{S: iri("alice"), P: iri("knows")},
		{P: iri("knows"), O: iri("carol")},
		{S: iri("alice"), O: iri("bob")},
		{S: iri("alice"), P: iri("knows"), O: iri("bob")},
	}
	for _, p := range pats {
		ip := IDPattern{S: r.Lookup(p.S), P: r.Lookup(p.P), O: r.Lookup(p.O)}
		var viaIDs []rdf.Triple
		r.MatchIDs(ip, func(a, b, c ID) bool {
			viaIDs = append(viaIDs, rdf.NewTriple(r.Term(a), r.Term(b), r.Term(c)))
			return true
		})
		viaTerms := s.MatchAll(p)
		if fmt.Sprint(viaIDs) != fmt.Sprint(viaTerms) {
			t.Errorf("MatchIDs(%v) = %v, Match = %v", p, viaIDs, viaTerms)
		}
		if got, want := r.CardinalityIDs(ip), s.Count(p); got != want {
			t.Errorf("CardinalityIDs(%v) = %d, want %d", p, got, want)
		}
		if got, want := s.CardinalityIDs(ip), s.Count(p); got != want {
			t.Errorf("Store.CardinalityIDs(%v) = %d, want %d", p, got, want)
		}
	}
}

func TestReaderUnknownIDsMatchNothing(t *testing.T) {
	s := buildSmall()
	r := s.Reader()
	ghost := r.MaxID() + 100
	for _, ip := range []IDPattern{{S: ghost}, {P: ghost}, {O: ghost}, {S: ghost, P: ghost, O: ghost}} {
		n := 0
		r.MatchIDs(ip, func(ID, ID, ID) bool { n++; return true })
		if n != 0 || r.CardinalityIDs(ip) != 0 {
			t.Errorf("unknown IDs must match nothing: %v matched %d", ip, n)
		}
	}
	if r.HasID(ghost, ghost, ghost) {
		t.Error("HasID with unknown IDs must be false")
	}
}

func TestReaderHasIDAndPostings(t *testing.T) {
	s := buildSmall()
	r := s.Reader()
	alice, knows, bob := r.Lookup(iri("alice")), r.Lookup(iri("knows")), r.Lookup(iri("bob"))
	if !r.HasID(alice, knows, bob) {
		t.Fatal("HasID missed an existing triple")
	}
	if r.HasID(bob, knows, alice) {
		t.Fatal("HasID found a non-existing triple")
	}
	objs := r.Objects(alice, knows)
	if len(objs) != 2 {
		t.Fatalf("Objects = %v", objs)
	}
	for i := 1; i < len(objs); i++ {
		if objs[i-1] >= objs[i] {
			t.Fatal("Objects not sorted")
		}
	}
	carol := r.Lookup(iri("carol"))
	if subs := r.Subjects(knows, carol); len(subs) != 2 {
		t.Fatalf("Subjects = %v", subs)
	}
	if ps := r.PredicatesBetween(alice, bob); len(ps) != 1 || ps[0] != knows {
		t.Fatalf("PredicatesBetween = %v", ps)
	}
}

func TestReaderDistinctCounts(t *testing.T) {
	s := buildSmall()
	r := s.Reader()
	if r.DistinctSubjects() != 3 || r.DistinctSubjects() != s.DistinctSubjects() {
		t.Fatalf("DistinctSubjects = %d", r.DistinctSubjects())
	}
	if r.DistinctPredicates() != 3 {
		t.Fatalf("DistinctPredicates = %d", r.DistinctPredicates())
	}
	if r.PredCount(r.Lookup(iri("knows"))) != 3 {
		t.Fatal("PredCount(knows) != 3")
	}
	if r.Len() != s.Len() || int(r.MaxID()) != s.TermCount() {
		t.Fatal("Reader counters disagree with store")
	}
}

func TestMatchIDsEarlyStop(t *testing.T) {
	s := buildSmall()
	r := s.Reader()
	n := 0
	done := r.MatchIDs(IDPattern{}, func(ID, ID, ID) bool { n++; return n < 2 })
	if done || n != 2 {
		t.Fatalf("early stop: done=%v n=%d", done, n)
	}
}

// Property: MatchIDs over random data agrees with term-level Match for
// every pattern shape, and iteration is deterministic sorted-key order.
func TestQuickMatchIDsConsistency(t *testing.T) {
	f := func(raw [][3]uint8) bool {
		s := New()
		for _, x := range raw {
			s.AddSPO(
				iri(fmt.Sprintf("s%d", x[0]%6)),
				iri(fmt.Sprintf("p%d", x[1]%3)),
				iri(fmt.Sprintf("o%d", x[2]%6)),
			)
		}
		r := s.Reader()
		pats := []Pattern{
			{}, {S: iri("s1")}, {P: iri("p1")}, {O: iri("o2")},
			{S: iri("s0"), P: iri("p0")}, {P: iri("p2"), O: iri("o1")}, {S: iri("s3"), O: iri("o3")},
		}
		for _, p := range pats {
			ip := IDPattern{S: r.Lookup(p.S), P: r.Lookup(p.P), O: r.Lookup(p.O)}
			if (p.S.IsZero() || ip.S != NoID) && (p.P.IsZero() || ip.P != NoID) && (p.O.IsZero() || ip.O != NoID) {
				var got []rdf.Triple
				r.MatchIDs(ip, func(a, b, c ID) bool {
					got = append(got, rdf.NewTriple(r.Term(a), r.Term(b), r.Term(c)))
					return true
				})
				if fmt.Sprint(got) != fmt.Sprint(s.MatchAll(p)) {
					return false
				}
				if r.CardinalityIDs(ip) != s.Count(p) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
