package store

// This file is the ID-level read API: triple matching, cardinality and
// posting-list access over interned IDs, plus the lock-once Reader
// snapshot the SPARQL execution engine runs its join loops on. None of it
// materializes rdf.Term values.

import (
	"repro/internal/rdf"
)

// IDPattern is a triple pattern over dictionary IDs. NoID in any position
// is a wildcard. IDs the store never issued simply match nothing.
type IDPattern struct {
	S, P, O ID
}

// Reader is a read-only view of a store, resolved once so hot loops pay no
// per-call lock or map indirection. It shares the store's internals: it is
// valid for as long as the store is not written to, matching the store's
// own contract that writes must not race with reads. Loaders in this
// repository build stores fully before sharing them.
type Reader struct {
	terms     []rdf.Term
	dict      map[rdf.Term]ID
	spo       index
	pos       index
	osp       index
	nTrips    int
	predCount map[ID]int
}

// Reader returns a snapshot view of the store.
func (s *Store) Reader() *Reader {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r := s.reader()
	return &r
}

// reader builds the view without locking; callers hold s.mu.
func (s *Store) reader() Reader {
	return Reader{
		terms: s.terms, dict: s.dict,
		spo: s.spo, pos: s.pos, osp: s.osp,
		nTrips: s.nTrips, predCount: s.predCount,
	}
}

// Term returns the term for id without locking. It panics on NoID or an ID
// the store never issued, which always indicates a programming error.
func (r *Reader) Term(id ID) rdf.Term { return r.terms[id-1] }

// Lookup returns the ID of t, or NoID.
func (r *Reader) Lookup(t rdf.Term) ID { return r.dict[t] }

// MaxID returns the highest ID the dictionary has issued; valid IDs are
// 1..MaxID.
func (r *Reader) MaxID() ID { return ID(len(r.terms)) }

// Len returns the number of triples.
func (r *Reader) Len() int { return r.nTrips }

// DistinctSubjects returns the number of distinct subjects.
func (r *Reader) DistinctSubjects() int { return len(r.spo.m) }

// DistinctPredicates returns the number of distinct predicates.
func (r *Reader) DistinctPredicates() int { return len(r.pos.m) }

// DistinctObjects returns the number of distinct objects.
func (r *Reader) DistinctObjects() int { return len(r.osp.m) }

// PredCount returns the number of triples with predicate p.
func (r *Reader) PredCount(p ID) int { return r.predCount[p] }

// Objects returns the sorted object IDs under (s, p). The slice is shared
// with the index and must not be modified.
func (r *Reader) Objects(s, p ID) []ID { return r.spo.lists(s, p) }

// Subjects returns the sorted subject IDs under (p, o). The slice is
// shared with the index and must not be modified.
func (r *Reader) Subjects(p, o ID) []ID { return r.pos.lists(p, o) }

// PredicatesBetween returns the sorted predicate IDs linking (s, o). The
// slice is shared with the index and must not be modified.
func (r *Reader) PredicatesBetween(s, o ID) []ID { return r.osp.lists(o, s) }

// HasID reports whether the triple (s, p, o) is in the store, by binary
// search on the sorted SPO posting list.
func (r *Reader) HasID(s, p, o ID) bool {
	return containsSorted(r.spo.lists(s, p), o)
}

// MatchIDs streams every triple matching the pattern to fn as (subject,
// predicate, object) IDs. Returning false from fn stops the iteration;
// MatchIDs reports whether the iteration ran to completion. Iteration
// order is deterministic: the sorted key order of the chosen index.
func (r *Reader) MatchIDs(pat IDPattern, fn func(s, p, o ID) bool) bool {
	si, pi, oi := pat.S, pat.P, pat.O
	switch {
	case si != NoID && pi != NoID && oi != NoID:
		if containsSorted(r.spo.lists(si, pi), oi) {
			return fn(si, pi, oi)
		}
		return true
	case si != NoID && pi != NoID:
		for _, o := range r.spo.lists(si, pi) {
			if !fn(si, pi, o) {
				return false
			}
		}
		return true
	case pi != NoID && oi != NoID:
		for _, sub := range r.pos.lists(pi, oi) {
			if !fn(sub, pi, oi) {
				return false
			}
		}
		return true
	case si != NoID && oi != NoID:
		for _, p := range r.osp.lists(oi, si) {
			if !fn(si, p, oi) {
				return false
			}
		}
		return true
	case si != NoID:
		return r.spo.m[si].iterate(func(p, o ID) bool { return fn(si, p, o) })
	case pi != NoID:
		return r.pos.m[pi].iterate(func(o, sub ID) bool { return fn(sub, pi, o) })
	case oi != NoID:
		return r.osp.m[oi].iterate(func(sub, p ID) bool { return fn(sub, p, oi) })
	default:
		for _, sub := range r.spo.keys {
			if !r.spo.m[sub].iterate(func(p, o ID) bool { return fn(sub, p, o) }) {
				return false
			}
		}
		return true
	}
}

// CardinalityIDs returns how many triples match the pattern. It is exact
// for every shape and never scans a posting list: all shapes are answered
// from index sizes except the two single-wildcard-pair shapes, which sum
// list lengths.
func (r *Reader) CardinalityIDs(pat IDPattern) int {
	si, pi, oi := pat.S, pat.P, pat.O
	switch {
	case si != NoID && pi != NoID && oi != NoID:
		if containsSorted(r.spo.lists(si, pi), oi) {
			return 1
		}
		return 0
	case si != NoID && pi != NoID:
		return len(r.spo.lists(si, pi))
	case pi != NoID && oi != NoID:
		return len(r.pos.lists(pi, oi))
	case si != NoID && oi != NoID:
		return len(r.osp.lists(oi, si))
	case si != NoID:
		return r.spo.m[si].size()
	case pi != NoID:
		return r.predCount[pi]
	case oi != NoID:
		return r.osp.m[oi].size()
	default:
		return r.nTrips
	}
}

// MatchIDs streams matching triples as IDs under the store's read lock.
// For repeated calls on a loaded store, prefer taking a Reader once.
func (s *Store) MatchIDs(pat IDPattern, fn func(sub, pred, obj ID) bool) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r := s.reader()
	return r.MatchIDs(pat, fn)
}

// CardinalityIDs returns the exact match count of the ID pattern.
func (s *Store) CardinalityIDs(pat IDPattern) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r := s.reader()
	return r.CardinalityIDs(pat)
}
