// Package disk is the persistent storage tier: a dictionary-encoded
// triple store over the internal/kv engine. It implements the
// store.Backend seam, so the SPARQL engines, the EXPLAIN profiler and
// the streaming operators run on it unmodified.
//
// Key layout (first byte selects the table, every ID is a big-endian
// uint32 so lexicographic key order is ID order):
//
//	'm'                      → meta JSON (triple count, max ID,
//	                           distinct-role counts, per-predicate counts)
//	't' + id                 → encoded term (the forward dictionary)
//	'd' + encoded term       → id, for encodings ≤ 64 bytes (inline keys)
//	'h' + fnv64a(encoding)   → id list, for longer terms (hashed keys;
//	                           the list resolves collisions exactly)
//	'r' + id                 → role bitmask (subject/predicate/object)
//	's' + s + p + o          → ∅   (SPO permutation)
//	'p' + p + o + s          → ∅   (POS permutation)
//	'o' + o + s + p          → ∅   (OSP permutation)
//
// The three permutations carry the data in their keys alone; a range
// scan over a bound prefix enumerates the remaining positions in
// sorted-ID order, which is exactly the iteration order the in-memory
// Reader documents — the property the differential tests pin down.
package disk

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"repro/internal/rdf"
	"repro/internal/store"
)

// Table prefixes.
const (
	kMeta = 'm'
	kTerm = 't'
	kDict = 'd'
	kHash = 'h'
	kRole = 'r'
	kSPO  = 's'
	kPOS  = 'p'
	kOSP  = 'o'
)

// inlineMax is the longest term encoding stored directly as a dict key;
// longer encodings (big literals, long IRIs) go through the hash table.
const inlineMax = 64

// encodeTerm renders t canonically: kind byte then length-prefixed
// value, datatype and language. Equal terms have equal encodings, so
// byte comparison resolves hash collisions exactly.
func encodeTerm(t rdf.Term) []byte {
	b := make([]byte, 0, 1+len(t.Value)+len(t.Datatype)+len(t.Lang)+9)
	b = append(b, byte(t.Kind))
	b = binary.AppendUvarint(b, uint64(len(t.Value)))
	b = append(b, t.Value...)
	b = binary.AppendUvarint(b, uint64(len(t.Datatype)))
	b = append(b, t.Datatype...)
	b = binary.AppendUvarint(b, uint64(len(t.Lang)))
	b = append(b, t.Lang...)
	return b
}

func decodeTerm(b []byte) (rdf.Term, error) {
	var t rdf.Term
	if len(b) < 1 {
		return t, fmt.Errorf("disk: empty term encoding")
	}
	t.Kind = rdf.TermKind(b[0])
	b = b[1:]
	next := func() (string, error) {
		n, w := binary.Uvarint(b)
		if w <= 0 || uint64(len(b)-w) < n {
			return "", fmt.Errorf("disk: truncated term encoding")
		}
		s := string(b[w : w+int(n)])
		b = b[w+int(n):]
		return s, nil
	}
	var err error
	if t.Value, err = next(); err != nil {
		return t, err
	}
	if t.Datatype, err = next(); err != nil {
		return t, err
	}
	if t.Lang, err = next(); err != nil {
		return t, err
	}
	return t, nil
}

func hashEnc(enc []byte) uint64 {
	h := fnv.New64a()
	h.Write(enc)
	return h.Sum64()
}

// dictKey returns the reverse-dictionary key for an encoded term and
// whether it went through the hash table.
func dictKey(enc []byte) (string, bool) {
	if len(enc) <= inlineMax {
		return string(append([]byte{kDict}, enc...)), false
	}
	var b [9]byte
	b[0] = kHash
	binary.BigEndian.PutUint64(b[1:], hashEnc(enc))
	return string(b[:]), true
}

func termKey(id store.ID) string {
	var b [5]byte
	b[0] = kTerm
	binary.BigEndian.PutUint32(b[1:], uint32(id))
	return string(b[:])
}

func roleKey(id store.ID) string {
	var b [5]byte
	b[0] = kRole
	binary.BigEndian.PutUint32(b[1:], uint32(id))
	return string(b[:])
}

// tripleKey builds a permutation key: prefix then the three IDs in the
// permutation's component order.
func tripleKey(prefix byte, a, b, c store.ID) string {
	var k [13]byte
	k[0] = prefix
	binary.BigEndian.PutUint32(k[1:5], uint32(a))
	binary.BigEndian.PutUint32(k[5:9], uint32(b))
	binary.BigEndian.PutUint32(k[9:13], uint32(c))
	return string(k[:])
}

// prefix1 is a permutation prefix with one bound component.
func prefix1(prefix byte, a store.ID) string {
	var k [5]byte
	k[0] = prefix
	binary.BigEndian.PutUint32(k[1:5], uint32(a))
	return string(k[:])
}

// prefix2 is a permutation prefix with two bound components.
func prefix2(prefix byte, a, b store.ID) string {
	var k [9]byte
	k[0] = prefix
	binary.BigEndian.PutUint32(k[1:5], uint32(a))
	binary.BigEndian.PutUint32(k[5:9], uint32(b))
	return string(k[:])
}

// splitTriple decodes the three IDs of a permutation key (in the
// permutation's own component order).
func splitTriple(key string) (a, b, c store.ID) {
	a = store.ID(binary.BigEndian.Uint32([]byte(key[1:5])))
	b = store.ID(binary.BigEndian.Uint32([]byte(key[5:9])))
	c = store.ID(binary.BigEndian.Uint32([]byte(key[9:13])))
	return
}

func encodeID(id store.ID) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(id))
	return b[:]
}

func decodeID(b []byte) store.ID {
	if len(b) != 4 {
		return store.NoID
	}
	return store.ID(binary.BigEndian.Uint32(b))
}

// decodeIDList splits a hash-bucket value (concatenated big-endian IDs).
func decodeIDList(b []byte) []store.ID {
	out := make([]store.ID, 0, len(b)/4)
	for len(b) >= 4 {
		out = append(out, store.ID(binary.BigEndian.Uint32(b[:4])))
		b = b[4:]
	}
	return out
}

// Role bits tracked per term, backing the distinct-role counters.
const (
	roleSubject = 1 << iota
	rolePredicate
	roleObject
)
