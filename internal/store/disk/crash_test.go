package disk_test

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
	"repro/internal/store/disk"
)

// Crash-recovery differential: commit a sequence of batches, then
// simulate a writer killed mid-append by truncating the WAL at assorted
// offsets — record boundaries, one byte either side, and seeded random
// cuts. Every reopened copy must contain exactly a prefix of the
// committed batches, with the dictionary, all three permutations and
// the meta counters mutually consistent: no torn triples.

const (
	crashBatches    = 24
	triplesPerBatch = 8
)

// crashBatch returns the deterministic triples of batch i. Batches share
// predicates and a hub subject so later batches reference dictionary
// entries committed by earlier ones.
func crashBatch(i int) []rdf.Triple {
	p := rdf.NewIRI(fmt.Sprintf("http://example.org/p/%d", i%3))
	hub := rdf.NewIRI("http://example.org/hub")
	out := make([]rdf.Triple, 0, triplesPerBatch)
	for j := 0; j < triplesPerBatch-1; j++ {
		s := rdf.NewIRI(fmt.Sprintf("http://example.org/s/%02d/%d", i, j))
		o := rdf.NewLiteral(fmt.Sprintf("v-%02d-%d", i, j))
		out = append(out, rdf.Triple{S: s, P: p, O: o})
	}
	out = append(out, rdf.Triple{
		S: hub,
		P: rdf.NewIRI("http://example.org/linked"),
		O: rdf.NewIRI(fmt.Sprintf("http://example.org/s/%02d/0", i)),
	})
	return out
}

func tripleKeyStr(tr rdf.Triple) string {
	return tr.S.String() + " " + tr.P.String() + " " + tr.O.String()
}

// cumulative[k] is the triple set after the first k batches.
func cumulativeSets() []map[string]bool {
	sets := make([]map[string]bool, crashBatches+1)
	sets[0] = map[string]bool{}
	for i := 0; i < crashBatches; i++ {
		next := map[string]bool{}
		for k := range sets[i] {
			next[k] = true
		}
		for _, tr := range crashBatch(i) {
			next[tripleKeyStr(tr)] = true
		}
		sets[i+1] = next
	}
	return sets
}

// writeCrashCorpus populates dir with crashBatches flushes, one WAL
// record per batch, and returns with the store closed.
func writeCrashCorpus(t *testing.T, dir string, opts disk.Options) {
	t.Helper()
	ds, err := disk.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < crashBatches; i++ {
		for _, tr := range crashBatch(i) {
			if _, err := ds.Insert(tr); err != nil {
				t.Fatal(err)
			}
		}
		if err := ds.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
}

// walBoundaries parses the framed log and returns the end offset of each
// intact record, in order.
func walBoundaries(t *testing.T, path string) []int64 {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var bounds []int64
	off := int64(0)
	for int64(len(raw))-off >= 8 {
		n := int64(binary.BigEndian.Uint32(raw[off : off+4]))
		if off+8+n > int64(len(raw)) {
			break
		}
		off += 8 + n
		bounds = append(bounds, off)
	}
	return bounds
}

func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.Type().IsRegular() {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// checkRecovered opens the truncated copy and verifies the prefix
// property plus full internal consistency, returning the number of
// batches the store recovered to.
func checkRecovered(t *testing.T, dir string, sets []map[string]bool) int {
	t.Helper()
	ds, err := disk.Open(dir, disk.Options{})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer ds.Close()
	r := ds.Snapshot()

	// Walk the SPO permutation, materializing every term; a torn
	// dictionary entry would panic inside Term.
	type idTriple struct{ s, p, o store.ID }
	var ids []idTriple
	got := map[string]bool{}
	r.MatchIDs(store.IDPattern{}, func(s, p, o store.ID) bool {
		ids = append(ids, idTriple{s, p, o})
		got[tripleKeyStr(rdf.Triple{S: r.Term(s), P: r.Term(p), O: r.Term(o)})] = true
		return true
	})
	if len(got) != len(ids) {
		t.Fatalf("SPO scan yielded %d keys but %d distinct triples", len(ids), len(got))
	}

	// The recovered set must be exactly sets[k] for some k.
	k := -1
	for i, set := range sets {
		if len(set) != len(got) {
			continue
		}
		match := true
		for key := range set {
			if !got[key] {
				match = false
				break
			}
		}
		if match {
			k = i
			break
		}
	}
	if k < 0 {
		t.Fatalf("recovered state (%d triples) is not a prefix of the committed batches", len(got))
	}

	// Permutation integrity: the POS and OSP walks enumerate the same
	// triple set as SPO.
	distinctS, distinctP, distinctO := map[store.ID]bool{}, map[store.ID]bool{}, map[store.ID]bool{}
	predCount := map[store.ID]int{}
	for _, tr := range ids {
		distinctS[tr.s] = true
		distinctP[tr.p] = true
		distinctO[tr.o] = true
		predCount[tr.p]++
	}
	fromPOS, fromOSP := map[idTriple]bool{}, map[idTriple]bool{}
	for p := range distinctP {
		r.MatchIDs(store.IDPattern{P: p}, func(s, pp, o store.ID) bool {
			fromPOS[idTriple{s, pp, o}] = true
			return true
		})
	}
	for o := range distinctO {
		r.MatchIDs(store.IDPattern{O: o}, func(s, p, oo store.ID) bool {
			fromOSP[idTriple{s, p, oo}] = true
			return true
		})
	}
	if len(fromPOS) != len(ids) || len(fromOSP) != len(ids) {
		t.Fatalf("permutations torn: SPO %d, POS %d, OSP %d triples", len(ids), len(fromPOS), len(fromOSP))
	}
	for _, tr := range ids {
		if !fromPOS[tr] || !fromOSP[tr] {
			t.Fatalf("triple %v missing from a permutation", tr)
		}
	}

	// Meta counters must agree with the recovered keys.
	if r.Len() != len(ids) || r.CardinalityIDs(store.IDPattern{}) != len(ids) {
		t.Fatalf("Len %d / full cardinality %d, want %d", r.Len(), r.CardinalityIDs(store.IDPattern{}), len(ids))
	}
	if r.DistinctSubjects() != len(distinctS) || r.DistinctPredicates() != len(distinctP) || r.DistinctObjects() != len(distinctO) {
		t.Fatalf("distinct counters (%d, %d, %d) disagree with keys (%d, %d, %d)",
			r.DistinctSubjects(), r.DistinctPredicates(), r.DistinctObjects(),
			len(distinctS), len(distinctP), len(distinctO))
	}
	for p, n := range predCount {
		if r.PredCount(p) != n {
			t.Fatalf("PredCount(%d) = %d, keys say %d", p, r.PredCount(p), n)
		}
	}

	// The recovered store must keep accepting writes.
	fresh, err := ds.Insert(rdf.Triple{
		S: rdf.NewIRI("http://example.org/post-crash"),
		P: rdf.NewIRI("http://example.org/p/0"),
		O: rdf.NewLiteral("alive"),
	})
	if err != nil || !fresh {
		t.Fatalf("post-recovery insert: fresh=%v err=%v", fresh, err)
	}
	if err := ds.Flush(); err != nil {
		t.Fatalf("post-recovery flush: %v", err)
	}
	return k
}

// TestCrashRecoveryWALOffsets keeps the whole corpus in the WAL (default
// memtable threshold) so the recovery point is exactly predictable from
// the truncation offset.
func TestCrashRecoveryWALOffsets(t *testing.T) {
	src := t.TempDir()
	writeCrashCorpus(t, src, disk.Options{})
	sets := cumulativeSets()
	walPath := filepath.Join(src, "wal.log")
	bounds := walBoundaries(t, walPath)
	if len(bounds) != crashBatches {
		t.Fatalf("WAL holds %d records, want %d (one per batch)", len(bounds), crashBatches)
	}
	size := bounds[len(bounds)-1]

	var offsets []int64
	for _, b := range bounds {
		offsets = append(offsets, b-1, b, b+1)
	}
	rng := rand.New(rand.NewSource(20260808))
	for i := 0; i < 16; i++ {
		offsets = append(offsets, rng.Int63n(size+1))
	}
	sort.Slice(offsets, func(i, j int) bool { return offsets[i] < offsets[j] })

	for _, off := range offsets {
		if off < 0 || off > size {
			continue
		}
		wantK := sort.Search(len(bounds), func(i int) bool { return bounds[i] > off })
		dir := copyDir(t, src)
		if err := os.Truncate(filepath.Join(dir, "wal.log"), off); err != nil {
			t.Fatal(err)
		}
		if gotK := checkRecovered(t, dir, sets); gotK != wantK {
			t.Fatalf("truncate at %d: recovered %d batches, want %d", off, gotK, wantK)
		}
	}
}

// TestCrashRecoveryCorruptTail flips bytes inside the last record rather
// than truncating: the CRC must reject it and recovery lands one batch
// earlier.
func TestCrashRecoveryCorruptTail(t *testing.T) {
	src := t.TempDir()
	writeCrashCorpus(t, src, disk.Options{})
	sets := cumulativeSets()
	bounds := walBoundaries(t, filepath.Join(src, "wal.log"))
	dir := copyDir(t, src)
	walPath := filepath.Join(dir, "wal.log")
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one payload byte of the final record (past its 8B header).
	raw[bounds[len(bounds)-2]+8+3] ^= 0xff
	if err := os.WriteFile(walPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if gotK := checkRecovered(t, dir, sets); gotK != crashBatches-1 {
		t.Fatalf("corrupt tail: recovered %d batches, want %d", gotK, crashBatches-1)
	}
}

// TestCrashRecoveryWithSegments runs the same cuts with a tiny memtable,
// so part of the corpus lives in committed segments and only the tail is
// in the WAL. The exact recovery point depends on flush timing; the
// invariant is the prefix property and internal consistency, plus that
// everything already in segments survives.
func TestCrashRecoveryWithSegments(t *testing.T) {
	src := t.TempDir()
	opts := disk.Options{}
	opts.KV.MemtableBytes = 1 << 11
	opts.KV.MaxSegments = 3
	writeCrashCorpus(t, src, opts)
	sets := cumulativeSets()
	walPath := filepath.Join(src, "wal.log")
	info, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// With the tail in the WAL and the rest in segments, cutting the
	// whole WAL must still leave every segment-resident batch.
	floorK := -1
	{
		dir := copyDir(t, src)
		if err := os.Truncate(filepath.Join(dir, "wal.log"), 0); err != nil {
			t.Fatal(err)
		}
		floorK = checkRecovered(t, dir, sets)
	}
	if floorK < 1 {
		t.Fatalf("no batches survived in segments (floor %d); memtable threshold too large?", floorK)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10; i++ {
		off := rng.Int63n(info.Size() + 1)
		dir := copyDir(t, src)
		if err := os.Truncate(filepath.Join(dir, "wal.log"), off); err != nil {
			t.Fatal(err)
		}
		if gotK := checkRecovered(t, dir, sets); gotK < floorK {
			t.Fatalf("truncate at %d: recovered %d batches, below segment floor %d", off, gotK, floorK)
		}
	}
}
