package disk_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
	"repro/internal/store/disk"
	"repro/internal/synth"
)

func openT(t *testing.T, dir string) *disk.Store {
	t.Helper()
	ds, err := disk.Open(dir, disk.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func mustInsert(t *testing.T, ds *disk.Store, tr rdf.Triple) bool {
	t.Helper()
	fresh, err := ds.Insert(tr)
	if err != nil {
		t.Fatal(err)
	}
	return fresh
}

func triple(s, p, o rdf.Term) rdf.Triple { return rdf.Triple{S: s, P: p, O: o} }

// fixtureTriples exercises every dictionary path: plain IRIs, blank
// nodes, plain/lang/typed literals, and a term long enough to go
// through the hashed dictionary table.
func fixtureTriples() []rdf.Triple {
	longIRI := rdf.NewIRI("http://example.org/very/long/" + strings.Repeat("segment/", 12) + "leaf")
	a := rdf.NewIRI("http://example.org/a")
	b := rdf.NewIRI("http://example.org/b")
	knows := rdf.NewIRI("http://example.org/knows")
	name := rdf.NewIRI("http://example.org/name")
	age := rdf.NewIRI("http://example.org/age")
	return []rdf.Triple{
		triple(a, knows, b),
		triple(b, knows, a),
		triple(a, name, rdf.NewLangLiteral("Ada", "en")),
		triple(a, name, rdf.NewLiteral("Ada")),
		triple(b, age, rdf.NewTypedLiteral("42", "http://www.w3.org/2001/XMLSchema#integer")),
		triple(rdf.NewBlank("x"), knows, a),
		triple(longIRI, knows, a),
		triple(a, knows, longIRI),
	}
}

func TestInsertFlushReopen(t *testing.T) {
	dir := t.TempDir()
	ds := openT(t, dir)
	trs := fixtureTriples()
	for _, tr := range trs {
		if !mustInsert(t, ds, tr) {
			t.Fatalf("fresh triple reported as duplicate: %v", tr)
		}
	}
	for _, tr := range trs {
		if mustInsert(t, ds, tr) {
			t.Fatalf("duplicate triple reported as fresh: %v", tr)
		}
	}
	if ds.Len() != len(trs) {
		t.Fatalf("Len = %d, want %d", ds.Len(), len(trs))
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	ds = openT(t, dir)
	defer ds.Close()
	if ds.Len() != len(trs) {
		t.Fatalf("reopened Len = %d, want %d", ds.Len(), len(trs))
	}
	for _, tr := range trs {
		if mustInsert(t, ds, tr) {
			t.Fatalf("triple not persisted across reopen: %v", tr)
		}
	}
	got := map[string]bool{}
	ds.Match(store.Pattern{}, func(tr rdf.Triple) bool {
		got[tr.S.String()+" "+tr.P.String()+" "+tr.O.String()] = true
		return true
	})
	if len(got) != len(trs) {
		t.Fatalf("full scan yields %d triples, want %d", len(got), len(trs))
	}
	for _, tr := range trs {
		if !got[tr.S.String()+" "+tr.P.String()+" "+tr.O.String()] {
			t.Fatalf("triple missing from scan after reopen: %v", tr)
		}
	}
}

// TestWriteThenRead pins the memory-tier semantics on the write path: an
// Insert is visible to the very next read without an explicit Flush.
func TestWriteThenRead(t *testing.T) {
	ds := openT(t, t.TempDir())
	defer ds.Close()
	tr := fixtureTriples()[0]
	mustInsert(t, ds, tr)
	if n := ds.Cardinality(store.Pattern{}); n != 1 {
		t.Fatalf("Cardinality after unflushed insert = %d, want 1", n)
	}
	seen := false
	ds.Match(store.Pattern{S: tr.S}, func(got rdf.Triple) bool {
		seen = got == tr
		return true
	})
	if !seen {
		t.Fatal("unflushed insert not visible to Match")
	}
}

// TestReaderEquivalence replicates a synthetic corpus into the disk tier
// with CopyFrom (which preserves ID assignment) and checks the entire
// ReaderAPI surface — counters, dictionary, and the exact MatchIDs
// sequence of all eight pattern shapes — against the in-memory Reader.
func TestReaderEquivalence(t *testing.T) {
	mem := synth.Generate(synth.Spec{
		Name: "eq", Classes: 5, Instances: 150, ObjectProps: 8,
		DataProps: 5, LinkFactor: 2, CommunitySeeds: 2, Seed: 42,
	})
	ds := openT(t, t.TempDir())
	defer ds.Close()
	if err := ds.CopyFrom(mem.Reader()); err != nil {
		t.Fatal(err)
	}

	mr := mem.Reader()
	dr := ds.Snapshot()
	if dr.MaxID() != mr.MaxID() || dr.Len() != mr.Len() {
		t.Fatalf("MaxID/Len: disk (%d, %d) vs mem (%d, %d)", dr.MaxID(), dr.Len(), mr.MaxID(), mr.Len())
	}
	if dr.DistinctSubjects() != mr.DistinctSubjects() ||
		dr.DistinctPredicates() != mr.DistinctPredicates() ||
		dr.DistinctObjects() != mr.DistinctObjects() {
		t.Fatalf("distinct counters: disk (%d, %d, %d) vs mem (%d, %d, %d)",
			dr.DistinctSubjects(), dr.DistinctPredicates(), dr.DistinctObjects(),
			mr.DistinctSubjects(), mr.DistinctPredicates(), mr.DistinctObjects())
	}

	// Dictionary round-trip for every issued ID, both directions.
	for id := store.ID(1); id <= mr.MaxID(); id++ {
		wantTerm := mr.Term(id)
		if got := dr.Term(id); got != wantTerm {
			t.Fatalf("Term(%d): disk %v vs mem %v", id, got, wantTerm)
		}
		if got := dr.Lookup(wantTerm); got != id {
			t.Fatalf("Lookup(%v): disk %d, want %d", wantTerm, got, id)
		}
		if dr.PredCount(id) != mr.PredCount(id) {
			t.Fatalf("PredCount(%d): disk %d vs mem %d", id, dr.PredCount(id), mr.PredCount(id))
		}
	}
	if got := dr.Lookup(rdf.NewIRI("http://example.org/definitely-absent")); got != store.NoID {
		t.Fatalf("Lookup(absent) = %d, want NoID", got)
	}

	// Exact MatchIDs sequences and cardinalities for all eight shapes,
	// over every triple in the corpus plus a miss per shape.
	seq := func(r store.ReaderAPI, pat store.IDPattern) [][3]store.ID {
		var out [][3]store.ID
		r.MatchIDs(pat, func(s, p, o store.ID) bool {
			out = append(out, [3]store.ID{s, p, o})
			return true
		})
		return out
	}
	check := func(pat store.IDPattern) {
		ms, dsq := seq(mr, pat), seq(dr, pat)
		if len(ms) != len(dsq) {
			t.Fatalf("MatchIDs(%+v): disk yields %d rows, mem %d", pat, len(dsq), len(ms))
		}
		for i := range ms {
			if ms[i] != dsq[i] {
				t.Fatalf("MatchIDs(%+v) row %d: disk %v vs mem %v", pat, i, dsq[i], ms[i])
			}
		}
		if mc, dc := mr.CardinalityIDs(pat), dr.CardinalityIDs(pat); mc != dc {
			t.Fatalf("CardinalityIDs(%+v): disk %d vs mem %d", pat, dc, mc)
		}
	}
	no := store.NoID
	check(store.IDPattern{S: no, P: no, O: no})
	var triples [][3]store.ID
	mr.MatchIDs(store.IDPattern{S: no, P: no, O: no}, func(s, p, o store.ID) bool {
		triples = append(triples, [3]store.ID{s, p, o})
		return true
	})
	for i, tr := range triples {
		s, p, o := tr[0], tr[1], tr[2]
		check(store.IDPattern{S: s, P: no, O: no})
		check(store.IDPattern{S: no, P: p, O: no})
		check(store.IDPattern{S: no, P: no, O: o})
		check(store.IDPattern{S: s, P: p, O: no})
		check(store.IDPattern{S: no, P: p, O: o})
		check(store.IDPattern{S: s, P: no, O: o})
		check(store.IDPattern{S: s, P: p, O: o})
		if !dr.HasID(s, p, o) {
			t.Fatalf("HasID(%v) = false for present triple", tr)
		}
		if i > 400 { // the full cross-product is quadratic; this is plenty
			break
		}
	}
	// Point-lookup helpers against the memory tier on a sample.
	for i, tr := range triples {
		s, p, o := tr[0], tr[1], tr[2]
		if got, want := dr.Objects(s, p), mr.Objects(s, p); !idSliceEq(got, want) {
			t.Fatalf("Objects(%d, %d): disk %v vs mem %v", s, p, got, want)
		}
		if got, want := dr.Subjects(p, o), mr.Subjects(p, o); !idSliceEq(got, want) {
			t.Fatalf("Subjects(%d, %d): disk %v vs mem %v", p, o, got, want)
		}
		if got, want := dr.PredicatesBetween(s, o), mr.PredicatesBetween(s, o); !idSliceEq(got, want) {
			t.Fatalf("PredicatesBetween(%d, %d): disk %v vs mem %v", s, o, got, want)
		}
		if i > 200 {
			break
		}
	}
	// Misses behave identically too.
	miss := mr.MaxID() + 1
	check(store.IDPattern{S: miss, P: no, O: no})
	check(store.IDPattern{S: no, P: miss, O: no})
	check(store.IDPattern{S: no, P: no, O: miss})
	if dr.HasID(miss, miss, miss) {
		t.Fatal("HasID true for absent triple")
	}
}

// TestMatchIDsEarlyStop checks the run-to-completion contract: a callback
// returning false stops the scan and MatchIDs reports false.
func TestMatchIDsEarlyStop(t *testing.T) {
	ds := openT(t, t.TempDir())
	defer ds.Close()
	for _, tr := range fixtureTriples() {
		mustInsert(t, ds, tr)
	}
	r := ds.Snapshot()
	n := 0
	done := r.MatchIDs(store.IDPattern{}, func(_, _, _ store.ID) bool {
		n++
		return n < 3
	})
	if done || n != 3 {
		t.Fatalf("early stop: done=%v n=%d, want false/3", done, n)
	}
}

// TestCopyFromRequiresEmpty pins the precondition that keeps ID
// preservation sound.
func TestCopyFromRequiresEmpty(t *testing.T) {
	mem := store.New()
	mem.Add(fixtureTriples()[0])
	ds := openT(t, t.TempDir())
	defer ds.Close()
	mustInsert(t, ds, fixtureTriples()[1])
	if err := ds.CopyFrom(mem.Reader()); err == nil {
		t.Fatal("CopyFrom on a non-empty store did not fail")
	}
}

func idSliceEq(a, b []store.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestManyBatches drives enough distinct triples through small KV
// settings to force memtable flushes and compactions underneath the
// store, then verifies a reopen still serves the full corpus.
func TestManyBatches(t *testing.T) {
	dir := t.TempDir()
	opts := disk.Options{}
	opts.KV.MemtableBytes = 1 << 12
	opts.KV.MaxSegments = 3
	opts.KV.NoSync = true
	ds, err := disk.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	p := rdf.NewIRI("http://example.org/p")
	const n = 2000
	for i := 0; i < n; i++ {
		s := rdf.NewIRI(fmt.Sprintf("http://example.org/s/%04d", i))
		o := rdf.NewLiteral(fmt.Sprintf("v%04d", i))
		mustInsert(t, ds, triple(s, p, o))
		if i%137 == 0 {
			if err := ds.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if st := ds.KVStats(); st.Flushes == 0 {
		t.Fatalf("expected memtable flushes under small settings, stats: %+v", st)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	ds2, err := disk.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ds2.Close()
	if ds2.Len() != n {
		t.Fatalf("reopened Len = %d, want %d", ds2.Len(), n)
	}
	if got := ds2.Cardinality(store.Pattern{P: p}); got != n {
		t.Fatalf("Cardinality(p) = %d, want %d", got, n)
	}
	if st := ds2.KVStats(); st.Segments == 0 {
		t.Fatalf("expected persisted segments after reopen, stats: %+v", st)
	}
}
