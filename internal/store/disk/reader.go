package disk

import (
	"fmt"

	"repro/internal/kv"
	"repro/internal/rdf"
	"repro/internal/store"
)

// kvPrefixEnd is kv.PrefixEnd under a local name the scan helpers read
// naturally.
func kvPrefixEnd(prefix string) string { return kv.PrefixEnd(prefix) }

// Reader is a stable ID-level view over one KV snapshot, implementing
// store.ReaderAPI. Iteration orders match the in-memory Reader exactly:
// every MatchIDs shape walks a permutation prefix whose big-endian key
// order is sorted-ID order.
type Reader struct {
	snap kvSnap
	meta meta
	st   *Store
}

// kvSnap is the slice of the KV snapshot surface the reader uses;
// a named interface keeps the dependency explicit and testable.
type kvSnap interface {
	Get(key string) ([]byte, bool)
	Scan(start, end string, fn func(k string, v []byte) bool)
	Count(start, end string) int
	Release()
}

// release drops the snapshot's segment references early; the KV-layer
// finalizer covers readers that are simply dropped.
func (r *Reader) release() { r.snap.Release() }

// Term materializes the term for id, through the store-wide cache.
func (r *Reader) Term(id store.ID) rdf.Term {
	if v, ok := r.st.terms.Load(id); ok {
		r.st.cacheHits.Add(1)
		return v.(rdf.Term)
	}
	r.st.cacheMiss.Add(1)
	raw, ok := r.snap.Get(termKey(id))
	if !ok {
		panic(fmt.Sprintf("disk: Term(%d): unknown ID", id))
	}
	t, err := decodeTerm(raw)
	if err != nil {
		panic(fmt.Sprintf("disk: Term(%d): %v", id, err))
	}
	r.st.terms.Store(id, t)
	return t
}

// Lookup returns the ID of t, or NoID.
func (r *Reader) Lookup(t rdf.Term) store.ID {
	return lookupEnc(encodeTerm(t), r.snap.Get)
}

// MaxID returns the highest issued ID.
func (r *Reader) MaxID() store.ID { return r.meta.MaxID }

// Len returns the number of triples.
func (r *Reader) Len() int { return r.meta.Len }

// DistinctSubjects returns the number of distinct subjects.
func (r *Reader) DistinctSubjects() int { return r.meta.DistinctS }

// DistinctPredicates returns the number of distinct predicates.
func (r *Reader) DistinctPredicates() int { return r.meta.DistinctP }

// DistinctObjects returns the number of distinct objects.
func (r *Reader) DistinctObjects() int { return r.meta.DistinctO }

// PredCount returns the number of triples with predicate p.
func (r *Reader) PredCount(p store.ID) int { return r.meta.PredCount[p] }

// scanIDs collects the last component of every key under a permutation
// prefix — sorted by construction.
func (r *Reader) scanIDs(prefix string) []store.ID {
	var out []store.ID
	r.snap.Scan(prefix, kvPrefixEnd(prefix), func(k string, _ []byte) bool {
		_, _, c := splitTriple(k)
		out = append(out, c)
		return true
	})
	return out
}

// Objects returns the sorted object IDs under (s, p).
func (r *Reader) Objects(s, p store.ID) []store.ID {
	return r.scanIDs(prefix2(kSPO, s, p))
}

// Subjects returns the sorted subject IDs under (p, o).
func (r *Reader) Subjects(p, o store.ID) []store.ID {
	return r.scanIDs(prefix2(kPOS, p, o))
}

// PredicatesBetween returns the sorted predicate IDs linking (s, o).
func (r *Reader) PredicatesBetween(s, o store.ID) []store.ID {
	return r.scanIDs(prefix2(kOSP, o, s))
}

// HasID reports whether the triple (s, p, o) is present.
func (r *Reader) HasID(s, p, o store.ID) bool {
	_, ok := r.snap.Get(tripleKey(kSPO, s, p, o))
	return ok
}

// scanTriples walks a permutation range, handing fn the three key
// components in permutation order; it reports run-to-completion.
func (r *Reader) scanTriples(prefix string, fn func(a, b, c store.ID) bool) bool {
	done := true
	r.snap.Scan(prefix, kvPrefixEnd(prefix), func(k string, _ []byte) bool {
		a, b, c := splitTriple(k)
		if !fn(a, b, c) {
			done = false
			return false
		}
		return true
	})
	return done
}

// MatchIDs streams matching triples in the same deterministic order as
// the in-memory Reader: the sorted key order of the permutation the
// pattern shape selects.
func (r *Reader) MatchIDs(pat store.IDPattern, fn func(s, p, o store.ID) bool) bool {
	si, pi, oi := pat.S, pat.P, pat.O
	switch {
	case si != store.NoID && pi != store.NoID && oi != store.NoID:
		if r.HasID(si, pi, oi) {
			return fn(si, pi, oi)
		}
		return true
	case si != store.NoID && pi != store.NoID:
		return r.scanTriples(prefix2(kSPO, si, pi), func(_, _, o store.ID) bool {
			return fn(si, pi, o)
		})
	case pi != store.NoID && oi != store.NoID:
		return r.scanTriples(prefix2(kPOS, pi, oi), func(_, _, s store.ID) bool {
			return fn(s, pi, oi)
		})
	case si != store.NoID && oi != store.NoID:
		return r.scanTriples(prefix2(kOSP, oi, si), func(_, _, p store.ID) bool {
			return fn(si, p, oi)
		})
	case si != store.NoID:
		return r.scanTriples(prefix1(kSPO, si), func(_, p, o store.ID) bool {
			return fn(si, p, o)
		})
	case pi != store.NoID:
		return r.scanTriples(prefix1(kPOS, pi), func(_, o, s store.ID) bool {
			return fn(s, pi, o)
		})
	case oi != store.NoID:
		return r.scanTriples(prefix1(kOSP, oi), func(_, s, p store.ID) bool {
			return fn(s, p, oi)
		})
	default:
		return r.scanTriples(string([]byte{kSPO}), fn)
	}
}

// CardinalityIDs returns the exact number of matching triples. The
// all-wildcard and predicate-only shapes are O(1) from meta; the rest
// count one bounded key range.
func (r *Reader) CardinalityIDs(pat store.IDPattern) int {
	si, pi, oi := pat.S, pat.P, pat.O
	count := func(prefix string) int { return r.snap.Count(prefix, kvPrefixEnd(prefix)) }
	switch {
	case si != store.NoID && pi != store.NoID && oi != store.NoID:
		if r.HasID(si, pi, oi) {
			return 1
		}
		return 0
	case si != store.NoID && pi != store.NoID:
		return count(prefix2(kSPO, si, pi))
	case pi != store.NoID && oi != store.NoID:
		return count(prefix2(kPOS, pi, oi))
	case si != store.NoID && oi != store.NoID:
		return count(prefix2(kOSP, oi, si))
	case si != store.NoID:
		return count(prefix1(kSPO, si))
	case pi != store.NoID:
		return r.meta.PredCount[pi]
	case oi != store.NoID:
		return count(prefix1(kOSP, oi))
	default:
		return r.meta.Len
	}
}

var _ store.ReaderAPI = (*Reader)(nil)
