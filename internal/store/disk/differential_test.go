package disk_test

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/store"
	"repro/internal/store/disk"
	"repro/internal/synth"
	"repro/internal/turtle"
)

// This file is the tier differential: the same corpus loaded into the
// in-memory store and into the disk backend must yield the same results
// on every engine. The disk store is populated with CopyFrom, which
// preserves the memory tier's ID assignment, so the two tiers are
// bit-compatible views — any divergence is a storage-layer bug, not an
// artifact of dictionary order.

const diffFixture = `
@prefix ex: <http://example.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .

ex:alice ex:knows ex:bob, ex:carol .
ex:bob ex:knows ex:carol .
ex:carol ex:knows ex:alice .
ex:alice ex:name "Alice" ; ex:age "34"^^xsd:integer .
ex:bob ex:name "Bob"@en ; ex:age "29"^^xsd:integer .
ex:carol ex:name "Carol" ; ex:age "34"^^xsd:integer .
ex:dave ex:name "Dave" .
ex:alice ex:worksAt ex:acme .
ex:bob ex:worksAt ex:acme .
ex:carol ex:worksAt ex:initech .
ex:acme ex:city "Springfield" .
ex:initech ex:city "Springfield" .
`

var diffQueries = []string{
	`SELECT ?s ?o WHERE { ?s <http://example.org/knows> ?o }`,
	`SELECT ?s WHERE { ?s ?p ?o }`,
	`SELECT DISTINCT ?s WHERE { ?s ?p ?o }`,
	`SELECT ?s ?n WHERE { ?s <http://example.org/name> ?n } ORDER BY ?n`,
	`SELECT ?s ?a WHERE { ?s <http://example.org/age> ?a } ORDER BY DESC(?a) ?s`,
	`SELECT ?s WHERE { ?s <http://example.org/knows> ?o . ?o <http://example.org/knows> ?s }`,
	`SELECT ?s ?c WHERE { ?s <http://example.org/worksAt> ?w . ?w <http://example.org/city> ?c }`,
	`SELECT ?s ?n WHERE { ?s <http://example.org/age> ?a . OPTIONAL { ?s <http://example.org/name> ?n } }`,
	`SELECT ?s WHERE { { ?s <http://example.org/knows> <http://example.org/bob> } UNION { ?s <http://example.org/worksAt> <http://example.org/initech> } }`,
	`SELECT ?s ?a WHERE { ?s <http://example.org/age> ?a . FILTER(?a > 30) }`,
	`SELECT ?s WHERE { ?s <http://example.org/name> ?n . FILTER(LANG(?n) = "en") }`,
	`SELECT ?s WHERE { ?s ?p ?o } LIMIT 3`,
	`SELECT ?s ?n WHERE { ?s <http://example.org/name> ?n } ORDER BY ?n LIMIT 2 OFFSET 1`,
	`SELECT ?a (COUNT(?s) AS ?c) WHERE { ?s <http://example.org/age> ?a } GROUP BY ?a`,
	`SELECT (COUNT(*) AS ?c) WHERE { ?s <http://example.org/knows> ?o }`,
	`ASK { <http://example.org/alice> <http://example.org/knows> <http://example.org/bob> }`,
	`ASK { <http://example.org/dave> <http://example.org/knows> ?o }`,
	`CONSTRUCT { ?o <http://example.org/knownBy> ?s } WHERE { ?s <http://example.org/knows> ?o }`,
}

// tierPair loads the same corpus into both tiers with identical IDs.
func tierPair(t *testing.T, mem *store.Store) (*store.Store, *disk.Store) {
	t.Helper()
	ds := openT(t, t.TempDir())
	t.Cleanup(func() { ds.Close() })
	if err := ds.CopyFrom(mem.Reader()); err != nil {
		t.Fatal(err)
	}
	return mem, ds
}

// runEngines executes q on st through all three evaluation paths.
func runEngines(t *testing.T, q *sparql.Query, st store.Queryable) map[string]*sparql.Result {
	t.Helper()
	out := map[string]*sparql.Result{}
	rs, err := q.Stream(context.Background(), st)
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if out["stream"], err = rs.Collect(); err != nil {
		t.Fatalf("stream collect: %v", err)
	}
	if out["materialized"], err = q.ExecEngine(st, sparql.EngineAuto); err != nil {
		t.Fatalf("materialized: %v", err)
	}
	if out["legacy"], err = q.ExecEngine(st, sparql.EngineLegacy); err != nil {
		t.Fatalf("legacy: %v", err)
	}
	return out
}

func rowString(vars []string, b sparql.Binding) string {
	var sb strings.Builder
	for _, v := range vars {
		if t, ok := b[v]; ok {
			sb.WriteString(v)
			sb.WriteByte('=')
			sb.WriteString(t.String())
		}
		sb.WriteByte('\t')
	}
	return sb.String()
}

func sortedRows(vars []string, rows []sparql.Binding) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = rowString(vars, r)
	}
	sort.Strings(out)
	return out
}

func graphLines(g *rdf.Graph) []string {
	if g == nil {
		return nil
	}
	var out []string
	for _, tr := range g.Triples() {
		out = append(out, tr.S.String()+" "+tr.P.String()+" "+tr.O.String())
	}
	sort.Strings(out)
	return out
}

// compareTiers asserts one engine produced equivalent results on both
// tiers. Row multisets must match exactly; for ordered queries the
// ORDER BY key sequences must match too (tie order inside equal keys is
// an engine freedom, not a tier property); a LIMIT without ORDER BY
// only pins the row count.
func compareTiers(t *testing.T, q *sparql.Query, engine, query string, memRes, diskRes *sparql.Result) {
	t.Helper()
	fail := func(format string, args ...any) {
		t.Helper()
		t.Fatalf("%s: tiers diverge on %q: %s", engine, query, fmt.Sprintf(format, args...))
	}
	if memRes.Ask != diskRes.Ask || memRes.Boolean != diskRes.Boolean {
		fail("ask/boolean: mem (%v, %v) vs disk (%v, %v)", memRes.Ask, memRes.Boolean, diskRes.Ask, diskRes.Boolean)
	}
	if mg, dg := graphLines(memRes.Graph), graphLines(diskRes.Graph); len(mg) != len(dg) {
		fail("graph sizes: mem %d vs disk %d", len(mg), len(dg))
	} else {
		for i := range mg {
			if mg[i] != dg[i] {
				fail("graph triple %d: mem %q vs disk %q", i, mg[i], dg[i])
			}
		}
	}
	if strings.Join(memRes.Vars, ",") != strings.Join(diskRes.Vars, ",") {
		fail("vars: mem %v vs disk %v", memRes.Vars, diskRes.Vars)
	}
	if len(memRes.Rows) != len(diskRes.Rows) {
		fail("row counts: mem %d vs disk %d", len(memRes.Rows), len(diskRes.Rows))
	}
	windowed := q.Limit >= 0 || q.Offset > 0
	if len(q.OrderBy) > 0 {
		for i := range memRes.Rows {
			mk := sparql.OrderKeyOf(q.OrderBy, memRes.Rows[i])
			dk := sparql.OrderKeyOf(q.OrderBy, diskRes.Rows[i])
			if sparql.CompareOrderKeys(q.OrderBy, mk, dk) != 0 {
				fail("ORDER BY key at row %d differs", i)
			}
		}
	}
	if windowed && len(q.OrderBy) == 0 {
		return // any n rows are a valid window; counts already matched
	}
	if windowed {
		return // ordered window: key sequence pinned above; tie cut is engine freedom
	}
	mr, dr := sortedRows(memRes.Vars, memRes.Rows), sortedRows(diskRes.Vars, diskRes.Rows)
	for i := range mr {
		if mr[i] != dr[i] {
			fail("row multiset differs, first at %d:\n mem  %q\n disk %q", i, mr[i], dr[i])
		}
	}
}

func runDifferential(t *testing.T, mem *store.Store, ds *disk.Store, queries []string) {
	t.Helper()
	for _, query := range queries {
		q, err := sparql.Parse(query)
		if err != nil {
			t.Fatalf("parse %q: %v", query, err)
		}
		memRes := runEngines(t, q, mem)
		diskRes := runEngines(t, q, ds)
		for _, engine := range []string{"stream", "materialized", "legacy"} {
			compareTiers(t, q, engine, query, memRes[engine], diskRes[engine])
		}
	}
}

func TestDifferentialFixedCorpus(t *testing.T) {
	g, err := turtle.Parse(diffFixture)
	if err != nil {
		t.Fatal(err)
	}
	mem, ds := tierPair(t, store.FromGraph(g))
	runDifferential(t, mem, ds, diffQueries)
}

// TestDifferentialRandomized fuzzes the tier pair over synthetic corpora
// with generated queries, across all three engines.
func TestDifferentialRandomized(t *testing.T) {
	specs := []synth.Spec{
		{Name: "tiera", Classes: 6, Instances: 200, ObjectProps: 10,
			DataProps: 5, LinkFactor: 2, CommunitySeeds: 2, Seed: 21},
		{Name: "tierb", Classes: 3, Instances: 80, ObjectProps: 5,
			DataProps: 3, LinkFactor: 1, Seed: 33},
	}
	perStore := 60
	if testing.Short() {
		perStore = 15
	}
	for si, spec := range specs {
		t.Run(spec.Name, func(t *testing.T) {
			mem, ds := tierPair(t, synth.Generate(spec))
			gen := synth.NewQueryGen(mem, int64(500+si))
			queries := make([]string, 0, perStore)
			for i := 0; i < perStore; i++ {
				queries = append(queries, gen.Query())
			}
			runDifferential(t, mem, ds, queries)
		})
	}
}

// TestDifferentialInsertPath loads the fixture through the plain Insert
// path (fresh dictionary, IDs in whatever order the disk tier assigns)
// and checks that engine results still agree as multisets — result
// correctness must not depend on ID assignment.
func TestDifferentialInsertPath(t *testing.T) {
	g, err := turtle.Parse(diffFixture)
	if err != nil {
		t.Fatal(err)
	}
	mem := store.FromGraph(g)
	ds := openT(t, t.TempDir())
	defer ds.Close()
	// Insert in reverse so the disk dictionary genuinely differs.
	trs := g.Triples()
	for i := len(trs) - 1; i >= 0; i-- {
		mustInsert(t, ds, trs[i])
	}
	runDifferential(t, mem, ds, diffQueries)
}
