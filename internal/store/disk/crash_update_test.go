package disk_test

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/rdf"
	"repro/internal/store/disk"
)

// Crash recovery through the live mutation path: each committed batch is
// update-shaped — deletes of previously committed triples and fresh
// inserts in the same flush, the WAL footprint of a DELETE/INSERT WHERE
// request. A writer killed mid-append must recover to exactly a prefix
// of the committed updates: a batch's tombstones and inserts land
// atomically or not at all, never a half-applied update.

const updateBatches = 20

// updateBatch returns the delta of update i over the state left by the
// updates before it. Update 0 seeds a base population; every later
// update reclassifies the previous update's subjects (delete the old
// rdf:type, insert a new one — the DELETE/INSERT WHERE shape) and
// inserts a fresh generation of subjects.
func updateBatch(i int) (dels, ins []rdf.Triple) {
	class := func(g int) rdf.Term {
		return rdf.NewIRI(fmt.Sprintf("http://example.org/Gen%d", g))
	}
	subj := func(g, j int) rdf.Term {
		return rdf.NewIRI(fmt.Sprintf("http://example.org/u/%02d/%d", g, j))
	}
	typ := rdf.NewIRI(rdf.RDFType)
	name := rdf.NewIRI("http://example.org/name")
	if i > 0 {
		// reclassify the previous generation
		for j := 0; j < 4; j++ {
			dels = append(dels, rdf.Triple{S: subj(i-1, j), P: typ, O: class(i - 1)})
			ins = append(ins, rdf.Triple{S: subj(i-1, j), P: typ, O: class(i)})
		}
		// and retire one of its names outright
		dels = append(dels, rdf.Triple{S: subj(i-1, 0), P: name, O: rdf.NewLiteral(fmt.Sprintf("n-%02d-0", i-1))})
	}
	for j := 0; j < 4; j++ {
		ins = append(ins, rdf.Triple{S: subj(i, j), P: typ, O: class(i)})
		ins = append(ins, rdf.Triple{S: subj(i, j), P: name, O: rdf.NewLiteral(fmt.Sprintf("n-%02d-%d", i, j))})
	}
	return dels, ins
}

// updateSets[k] is the triple set after the first k update batches.
func updateSets() []map[string]bool {
	sets := make([]map[string]bool, updateBatches+1)
	sets[0] = map[string]bool{}
	for i := 0; i < updateBatches; i++ {
		next := map[string]bool{}
		for k := range sets[i] {
			next[k] = true
		}
		dels, ins := updateBatch(i)
		for _, tr := range dels {
			delete(next, tripleKeyStr(tr))
		}
		for _, tr := range ins {
			next[tripleKeyStr(tr)] = true
		}
		sets[i+1] = next
	}
	return sets
}

// writeUpdateCorpus commits updateBatches update-shaped flushes — each
// one deletes and inserts in the same WAL record — and closes the store.
func writeUpdateCorpus(t *testing.T, dir string, opts disk.Options) {
	t.Helper()
	ds, err := disk.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < updateBatches; i++ {
		dels, ins := updateBatch(i)
		for _, tr := range dels {
			if ok, err := ds.Delete(tr); err != nil || !ok {
				t.Fatalf("update %d: delete %v: ok=%v err=%v", i, tr, ok, err)
			}
		}
		for _, tr := range ins {
			if ok, err := ds.Insert(tr); err != nil || !ok {
				t.Fatalf("update %d: insert %v: ok=%v err=%v", i, tr, ok, err)
			}
		}
		if err := ds.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashRecoveryMidUpdate truncates the WAL at every update-record
// boundary, one byte either side, and seeded random offsets. The
// recovered store must hold exactly the state after some prefix of the
// updates — in particular, a torn final record must roll the whole
// update back, tombstones and inserts together.
func TestCrashRecoveryMidUpdate(t *testing.T) {
	src := t.TempDir()
	writeUpdateCorpus(t, src, disk.Options{})
	sets := updateSets()
	walPath := filepath.Join(src, "wal.log")
	bounds := walBoundaries(t, walPath)
	if len(bounds) != updateBatches {
		t.Fatalf("WAL holds %d records, want %d (one per update)", len(bounds), updateBatches)
	}
	size := bounds[len(bounds)-1]

	var offsets []int64
	for _, b := range bounds {
		offsets = append(offsets, b-1, b, b+1)
	}
	rng := rand.New(rand.NewSource(20260809))
	for i := 0; i < 12; i++ {
		offsets = append(offsets, rng.Int63n(size+1))
	}
	sort.Slice(offsets, func(i, j int) bool { return offsets[i] < offsets[j] })

	for _, off := range offsets {
		if off < 0 || off > size {
			continue
		}
		wantK := sort.Search(len(bounds), func(i int) bool { return bounds[i] > off })
		dir := copyDir(t, src)
		if err := os.Truncate(filepath.Join(dir, "wal.log"), off); err != nil {
			t.Fatal(err)
		}
		if gotK := checkRecovered(t, dir, sets); gotK != wantK {
			t.Fatalf("truncate at %d: recovered %d updates, want %d", off, gotK, wantK)
		}
	}
}

// TestCrashRecoveryMidUpdateWithSegments reruns random cuts with a tiny
// memtable, so earlier updates have been compacted into segments and
// their tombstones already folded in. Updates resident in segments must
// survive losing the whole WAL tail.
func TestCrashRecoveryMidUpdateWithSegments(t *testing.T) {
	src := t.TempDir()
	opts := disk.Options{}
	opts.KV.MemtableBytes = 1 << 11
	opts.KV.MaxSegments = 3
	writeUpdateCorpus(t, src, opts)
	sets := updateSets()
	walPath := filepath.Join(src, "wal.log")
	info, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	floorK := -1
	{
		dir := copyDir(t, src)
		if err := os.Truncate(filepath.Join(dir, "wal.log"), 0); err != nil {
			t.Fatal(err)
		}
		floorK = checkRecovered(t, dir, sets)
	}
	if floorK < 1 {
		t.Fatalf("no updates survived in segments (floor %d); memtable threshold too large?", floorK)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 10; i++ {
		off := rng.Int63n(info.Size() + 1)
		dir := copyDir(t, src)
		if err := os.Truncate(filepath.Join(dir, "wal.log"), off); err != nil {
			t.Fatal(err)
		}
		if gotK := checkRecovered(t, dir, sets); gotK < floorK {
			t.Fatalf("truncate at %d: recovered %d updates, below segment floor %d", off, gotK, floorK)
		}
	}
}
