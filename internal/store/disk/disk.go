package disk

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/kv"
	"repro/internal/rdf"
	"repro/internal/store"
)

// Options tunes the underlying KV engine.
type Options struct {
	KV kv.Options
}

// meta is the store-level bookkeeping committed atomically with every
// batch (same WAL record), so a recovered store's counters always agree
// with its keys.
type meta struct {
	Len       int              `json:"len"`
	MaxID     store.ID         `json:"max_id"`
	DistinctS int              `json:"distinct_s"`
	DistinctP int              `json:"distinct_p"`
	DistinctO int              `json:"distinct_o"`
	PredCount map[store.ID]int `json:"pred_count"`
}

// Store is a disk-backed triple store implementing store.Backend.
// Inserts accumulate in a pending batch and commit as one atomic WAL
// record on Flush (or when the batch grows past a threshold); reads
// flush first, so — like the in-memory tier — a write is visible to
// every subsequent read. Readers run on KV snapshots and never block
// writers.
type Store struct {
	mu sync.Mutex
	db *kv.DB

	meta meta

	// Pending state since the last flush. pendingDict doubles as a
	// per-batch lookup cache for committed terms.
	batch          *kv.Batch
	pendingDict    map[rdf.Term]store.ID
	pendingTriples map[[3]store.ID]bool
	pendingDeletes map[[3]store.ID]bool
	pendingRole    map[store.ID]byte
	pendingHash    map[uint64][]store.ID
	// Net pending triple delta per subject / object ID (+1 insert,
	// -1 delete); at flush time, committed count + delta == 0 means the
	// term no longer plays that role and its distinct counter drops.
	pendingSubj map[store.ID]int
	pendingObj  map[store.ID]int
	dirtyMeta   bool

	// term cache: ID → rdf.Term, shared by every Reader. IDs are never
	// reused, so entries stay valid across snapshots and compactions.
	terms     sync.Map
	cacheHits atomic.Uint64
	cacheMiss atomic.Uint64
}

// maxBatchOps bounds the pending batch (and with it the un-flushed
// memory footprint) between explicit Flush calls.
const maxBatchOps = 1 << 15

// Open opens (or creates) a disk store rooted at dir. Startup cost is
// the KV engine's: O(segment indexes + WAL tail), not O(corpus).
func Open(dir string, opts Options) (*Store, error) {
	db, err := kv.Open(dir, opts.KV)
	if err != nil {
		return nil, err
	}
	s := &Store{db: db}
	s.resetPending()
	if raw, ok := db.Get(string([]byte{kMeta})); ok {
		if err := json.Unmarshal(raw, &s.meta); err != nil {
			db.Close()
			return nil, fmt.Errorf("disk: corrupt meta record: %w", err)
		}
	}
	if s.meta.PredCount == nil {
		s.meta.PredCount = make(map[store.ID]int)
	}
	return s, nil
}

func (s *Store) resetPending() {
	s.batch = &kv.Batch{}
	s.pendingDict = make(map[rdf.Term]store.ID)
	s.pendingTriples = make(map[[3]store.ID]bool)
	s.pendingDeletes = make(map[[3]store.ID]bool)
	s.pendingRole = make(map[store.ID]byte)
	s.pendingHash = make(map[uint64][]store.ID)
	s.pendingSubj = make(map[store.ID]int)
	s.pendingObj = make(map[store.ID]int)
	s.dirtyMeta = false
}

// Insert adds one triple, reporting whether it was new. The write lands
// in the pending batch; Flush commits it durably.
func (s *Store) Insert(t rdf.Triple) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	si, err := s.internLocked(t.S)
	if err != nil {
		return false, err
	}
	pi, err := s.internLocked(t.P)
	if err != nil {
		return false, err
	}
	oi, err := s.internLocked(t.O)
	if err != nil {
		return false, err
	}
	return s.insertIDsLocked(si, pi, oi)
}

// insertIDsLocked stages one triple already resolved to IDs, returning
// whether it was new.
func (s *Store) insertIDsLocked(si, pi, oi store.ID) (bool, error) {
	key := [3]store.ID{si, pi, oi}
	if s.pendingTriples[key] {
		return false, nil
	}
	if s.pendingDeletes[key] {
		// Deleted earlier in this batch; the re-insert's Puts land after
		// the staged Deletes, and the KV layer applies batch ops in
		// order, so the final state is present.
		delete(s.pendingDeletes, key)
	} else if _, ok := s.db.Get(tripleKey(kSPO, si, pi, oi)); ok {
		return false, nil
	}
	s.pendingTriples[key] = true
	s.batch.Put(tripleKey(kSPO, si, pi, oi), nil)
	s.batch.Put(tripleKey(kPOS, pi, oi, si), nil)
	s.batch.Put(tripleKey(kOSP, oi, si, pi), nil)
	s.meta.Len++
	s.meta.PredCount[pi]++
	s.pendingSubj[si]++
	s.pendingObj[oi]++
	s.markRole(si, roleSubject, &s.meta.DistinctS)
	s.markRole(pi, rolePredicate, &s.meta.DistinctP)
	s.markRole(oi, roleObject, &s.meta.DistinctO)
	s.dirtyMeta = true
	if s.batch.Len() >= maxBatchOps {
		if err := s.flushLocked(); err != nil {
			return false, err
		}
	}
	return true, nil
}

// Delete removes one triple, reporting whether it was present. Like
// Insert, the tombstones land in the pending batch and commit with the
// next Flush as part of the same atomic WAL record; the KV compaction
// drops them from the segment files later. Terms are never removed from
// the dictionary — IDs are append-only — but role bits and the distinct
// counters are recomputed at flush time so the statistics stay exact.
func (s *Store) Delete(t rdf.Triple) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	si := s.lookupLocked(t.S)
	if si == store.NoID {
		return false, nil
	}
	pi := s.lookupLocked(t.P)
	if pi == store.NoID {
		return false, nil
	}
	oi := s.lookupLocked(t.O)
	if oi == store.NoID {
		return false, nil
	}
	return s.deleteIDsLocked(si, pi, oi)
}

// lookupLocked resolves a term without interning it (deletes must not
// grow the dictionary).
func (s *Store) lookupLocked(t rdf.Term) store.ID {
	if id, ok := s.pendingDict[t]; ok {
		return id
	}
	id := lookupEnc(encodeTerm(t), s.db.Get)
	if id != store.NoID {
		s.pendingDict[t] = id
	}
	return id
}

// deleteIDsLocked stages one triple deletion already resolved to IDs,
// returning whether the triple was present.
func (s *Store) deleteIDsLocked(si, pi, oi store.ID) (bool, error) {
	key := [3]store.ID{si, pi, oi}
	switch {
	case s.pendingTriples[key]:
		delete(s.pendingTriples, key)
	case s.pendingDeletes[key]:
		return false, nil
	default:
		if _, ok := s.db.Get(tripleKey(kSPO, si, pi, oi)); !ok {
			return false, nil
		}
	}
	s.pendingDeletes[key] = true
	s.batch.Delete(tripleKey(kSPO, si, pi, oi))
	s.batch.Delete(tripleKey(kPOS, pi, oi, si))
	s.batch.Delete(tripleKey(kOSP, oi, si, pi))
	s.meta.Len--
	s.pendingSubj[si]--
	s.pendingObj[oi]--
	if n := s.meta.PredCount[pi] - 1; n <= 0 {
		// The per-predicate counts are exact incrementally, so the
		// predicate's distinct transition resolves right here; subjects
		// and objects wait for the flush-time recount.
		delete(s.meta.PredCount, pi)
		s.clearRole(pi, rolePredicate, &s.meta.DistinctP)
	} else {
		s.meta.PredCount[pi] = n
	}
	s.dirtyMeta = true
	if s.batch.Len() >= maxBatchOps {
		if err := s.flushLocked(); err != nil {
			return false, err
		}
	}
	return true, nil
}

// clearRole drops a role bit from a term, decrementing the distinct
// counter if the bit was set.
func (s *Store) clearRole(id store.ID, bit byte, counter *int) {
	mask, ok := s.pendingRole[id]
	if !ok {
		if raw, found := s.db.Get(roleKey(id)); found && len(raw) == 1 {
			mask = raw[0]
		}
	}
	if mask&bit == 0 {
		return
	}
	mask &^= bit
	s.pendingRole[id] = mask
	if mask == 0 {
		s.batch.Delete(roleKey(id))
	} else {
		s.batch.Put(roleKey(id), []byte{mask})
	}
	*counter--
	s.dirtyMeta = true
}

// resolveDeletedRolesLocked settles the subject/object distinct counters
// for every term touched by a pending delete: a term whose committed
// triple count under the role plus the pending delta reaches zero sheds
// its role bit. Runs inside flushLocked so the corrected counters and
// role keys commit in the same WAL record as the deletes themselves.
func (s *Store) resolveDeletedRolesLocked() {
	if len(s.pendingDeletes) == 0 {
		return
	}
	touchedS := make(map[store.ID]bool)
	touchedO := make(map[store.ID]bool)
	for k := range s.pendingDeletes {
		touchedS[k[0]] = true
		touchedO[k[2]] = true
	}
	snap := s.db.Snapshot()
	defer snap.Release()
	for id := range touchedS {
		p := prefix1(kSPO, id)
		if snap.Count(p, kv.PrefixEnd(p))+s.pendingSubj[id] <= 0 {
			s.clearRole(id, roleSubject, &s.meta.DistinctS)
		}
	}
	for id := range touchedO {
		p := prefix1(kOSP, id)
		if snap.Count(p, kv.PrefixEnd(p))+s.pendingObj[id] <= 0 {
			s.clearRole(id, roleObject, &s.meta.DistinctO)
		}
	}
}

// CopyFrom replicates the full content of a ReaderAPI view into this
// (empty) store, preserving the source's ID assignment: terms are
// interned in source-ID order and triples land in SPO order. The two
// tiers end up bit-compatible — every MatchIDs shape enumerates the
// same IDs in the same order — which is what lets the differential
// tests compare exact row sequences, tie orders included.
func (s *Store) CopyFrom(src store.ReaderAPI) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.meta.Len != 0 || s.meta.MaxID != 0 || s.batch.Len() != 0 {
		return fmt.Errorf("disk: CopyFrom requires an empty store")
	}
	maxID := src.MaxID()
	for id := store.ID(1); id <= maxID; id++ {
		got, err := s.internLocked(src.Term(id))
		if err != nil {
			return err
		}
		if got != id {
			return fmt.Errorf("disk: CopyFrom assigned ID %d for source ID %d", got, id)
		}
	}
	var ierr error
	src.MatchIDs(store.IDPattern{}, func(a, b, c store.ID) bool {
		_, ierr = s.insertIDsLocked(a, b, c)
		return ierr == nil
	})
	if ierr != nil {
		return ierr
	}
	return s.flushLocked()
}

// internLocked returns the ID for term t, assigning (and staging the
// dictionary writes for) a fresh one if the term is new.
func (s *Store) internLocked(t rdf.Term) (store.ID, error) {
	if id, ok := s.pendingDict[t]; ok {
		return id, nil
	}
	enc := encodeTerm(t)
	if id := lookupEnc(enc, s.db.Get); id != store.NoID {
		s.pendingDict[t] = id
		return id, nil
	}
	s.meta.MaxID++
	id := s.meta.MaxID
	s.pendingDict[t] = id
	s.batch.Put(termKey(id), enc)
	dk, hashed := dictKey(enc)
	if !hashed {
		s.batch.Put(dk, encodeID(id))
	} else {
		h := hashEnc(enc)
		list, ok := s.pendingHash[h]
		if !ok {
			if raw, found := s.db.Get(dk); found {
				list = decodeIDList(raw)
			}
		}
		list = append(list, id)
		s.pendingHash[h] = list
		val := make([]byte, 0, 4*len(list))
		for _, lid := range list {
			val = append(val, encodeID(lid)...)
		}
		s.batch.Put(dk, val)
	}
	s.dirtyMeta = true
	return id, nil
}

// markRole sets a role bit on a term, bumping the distinct counter the
// first time the term plays that role.
func (s *Store) markRole(id store.ID, bit byte, counter *int) {
	mask, ok := s.pendingRole[id]
	if !ok {
		if raw, found := s.db.Get(roleKey(id)); found && len(raw) == 1 {
			mask = raw[0]
		}
	}
	if mask&bit != 0 {
		s.pendingRole[id] = mask
		return
	}
	mask |= bit
	s.pendingRole[id] = mask
	s.batch.Put(roleKey(id), []byte{mask})
	*counter++
}

// lookupEnc resolves an encoded term to its committed ID through any
// point-get function (the live DB or a snapshot).
func lookupEnc(enc []byte, get func(string) ([]byte, bool)) store.ID {
	dk, hashed := dictKey(enc)
	raw, ok := get(dk)
	if !ok {
		return store.NoID
	}
	if !hashed {
		return decodeID(raw)
	}
	for _, id := range decodeIDList(raw) {
		if t, ok := get(termKey(id)); ok && string(t) == string(enc) {
			return id
		}
	}
	return store.NoID
}

// Flush commits the pending batch as one atomic, durable WAL record.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

func (s *Store) flushLocked() error {
	if s.batch.Len() == 0 && !s.dirtyMeta {
		return nil
	}
	s.resolveDeletedRolesLocked()
	raw, err := json.Marshal(&s.meta)
	if err != nil {
		return err
	}
	s.batch.Put(string([]byte{kMeta}), raw)
	if err := s.db.Apply(s.batch); err != nil {
		// The batch may be partially unknown to the KV layer; reload the
		// committed meta so in-memory counters stay consistent with it.
		s.reloadMeta()
		s.resetPending()
		return err
	}
	s.resetPending()
	return nil
}

func (s *Store) reloadMeta() {
	s.meta = meta{PredCount: make(map[store.ID]int)}
	if raw, ok := s.db.Get(string([]byte{kMeta})); ok {
		json.Unmarshal(raw, &s.meta)
	}
	if s.meta.PredCount == nil {
		s.meta.PredCount = make(map[store.ID]int)
	}
}

// Len returns the number of triples, including pending inserts.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.meta.Len
}

// Close flushes pending writes and shuts the KV engine down.
func (s *Store) Close() error {
	s.mu.Lock()
	ferr := s.flushLocked()
	s.mu.Unlock()
	cerr := s.db.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}

// Snapshot returns a stable ReaderAPI view. Pending writes are flushed
// first so, as with the in-memory tier, every prior Insert is visible.
// The reader holds segment references released by a finalizer when the
// reader is dropped.
func (s *Store) Snapshot() store.ReaderAPI {
	return s.snapshotReader()
}

func (s *Store) snapshotReader() *Reader {
	s.mu.Lock()
	if err := s.flushLocked(); err != nil {
		// Serve the last committed state; the write path will surface
		// the error on its own Flush.
		s.reloadMeta()
		s.resetPending()
	}
	m := s.meta
	m.PredCount = make(map[store.ID]int, len(s.meta.PredCount))
	for k, v := range s.meta.PredCount {
		m.PredCount[k] = v
	}
	snap := s.db.Snapshot()
	s.mu.Unlock()
	return &Reader{snap: snap, meta: m, st: s}
}

// Match streams every triple matching the term-level pattern, in the
// same order as the in-memory tier.
func (s *Store) Match(pat store.Pattern, fn func(rdf.Triple) bool) {
	r := s.snapshotReader()
	defer r.release()
	store.MatchOn(r, pat, fn)
}

// Cardinality returns the number of triples matching the pattern.
func (s *Store) Cardinality(pat store.Pattern) int {
	r := s.snapshotReader()
	defer r.release()
	return store.CardinalityOn(r, pat)
}

// KVStats exposes the storage engine counters for the obs layer.
func (s *Store) KVStats() kv.Stats { return s.db.Stats() }

// CacheStats returns the term-cache hit/miss counters.
func (s *Store) CacheStats() (hits, misses uint64) {
	return s.cacheHits.Load(), s.cacheMiss.Load()
}

var _ store.Backend = (*Store)(nil)
