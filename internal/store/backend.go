package store

// The storage-engine seam. PR 3 made the SPARQL engines run on an
// ID-level read API; this file names that API as interfaces so an
// alternative storage tier (the disk-backed store in
// internal/store/disk) can slot in under the compiled-plan executor,
// the EXPLAIN profiler and the streaming operators without those
// layers changing. The in-memory *Store is the fast tier and the
// reference implementation of every interface here.

import (
	"repro/internal/rdf"
)

// ReaderAPI is the ID-level read seam every storage tier implements: a
// stable, read-only view of one store state. *Reader (the in-memory
// tier) and disk.Reader (the persistent tier) are the implementations.
// Implementations must be safe for concurrent readers; MatchIDs
// iteration order is part of the contract — the sorted key order of
// the permutation index the pattern shape selects — so the two tiers
// enumerate identical corpora identically.
type ReaderAPI interface {
	// Term materializes the term for a store-issued ID. It panics on
	// NoID or an ID the tier never issued (a programming error).
	Term(id ID) rdf.Term
	// Lookup returns the ID of t, or NoID.
	Lookup(t rdf.Term) ID
	// MaxID returns the highest issued ID; valid IDs are 1..MaxID.
	MaxID() ID
	// Len returns the number of triples.
	Len() int
	// DistinctSubjects returns the number of distinct subjects.
	DistinctSubjects() int
	// DistinctPredicates returns the number of distinct predicates.
	DistinctPredicates() int
	// DistinctObjects returns the number of distinct objects.
	DistinctObjects() int
	// PredCount returns the number of triples with predicate p.
	PredCount(p ID) int
	// Objects returns the sorted object IDs under (s, p); the slice
	// must not be modified.
	Objects(s, p ID) []ID
	// Subjects returns the sorted subject IDs under (p, o); the slice
	// must not be modified.
	Subjects(p, o ID) []ID
	// PredicatesBetween returns the sorted predicate IDs linking
	// (s, o); the slice must not be modified.
	PredicatesBetween(s, o ID) []ID
	// HasID reports whether the triple (s, p, o) is present.
	HasID(s, p, o ID) bool
	// MatchIDs streams matching triples as IDs in the index order of
	// the pattern shape; returning false from fn stops early and
	// MatchIDs reports whether iteration ran to completion.
	MatchIDs(pat IDPattern, fn func(s, p, o ID) bool) bool
	// CardinalityIDs returns the exact number of triples matching the
	// pattern.
	CardinalityIDs(pat IDPattern) int
}

// Queryable is the surface the SPARQL engines execute against: an
// ID-level snapshot for the compiled-plan paths plus the term-level
// reads the legacy evaluator and presentation code use. Both storage
// tiers implement it, which is what lets sparql.Exec / Query.Stream /
// Query.Explain run unmodified over memory or disk.
type Queryable interface {
	// Snapshot returns a stable read view. Each query execution takes
	// one snapshot, so a tier that accepts concurrent writes gives the
	// query a consistent corpus for its whole run.
	Snapshot() ReaderAPI
	// Match streams every triple matching the term-level pattern.
	Match(pat Pattern, fn func(rdf.Triple) bool)
	// Cardinality returns the number of triples matching the pattern.
	Cardinality(pat Pattern) int
}

// Backend is a writable storage tier: Queryable plus the insert/flush
// lifecycle the extraction path drives. The in-memory *Store implements
// it with no-op durability; disk.Store implements it over the WAL.
type Backend interface {
	Queryable
	// Insert adds one triple, reporting whether it was new. Writable
	// tiers may buffer; Flush makes every prior Insert durable.
	Insert(t rdf.Triple) (bool, error)
	// Delete removes one triple, reporting whether it was present.
	// Like Insert it may buffer; Flush commits the whole pending
	// insert+delete batch atomically on persistent tiers.
	Delete(t rdf.Triple) (bool, error)
	// Len returns the number of triples, including buffered inserts.
	Len() int
	// Flush commits and (for persistent tiers) makes durable every
	// buffered insert.
	Flush() error
	// Close flushes and releases the tier's resources.
	Close() error
}

// Snapshot implements Queryable for the in-memory tier.
func (s *Store) Snapshot() ReaderAPI { return s.Reader() }

// Insert implements Backend for the in-memory tier.
func (s *Store) Insert(t rdf.Triple) (bool, error) { return s.Add(t), nil }

// Delete implements Backend for the in-memory tier.
func (s *Store) Delete(t rdf.Triple) (bool, error) { return s.Remove(t), nil }

// Flush implements Backend; the in-memory tier has nothing to persist.
func (s *Store) Flush() error { return nil }

// Close implements Backend; the in-memory tier holds no resources.
func (s *Store) Close() error { return nil }

// MatchOn answers a term-level Match over any ReaderAPI: the pattern's
// terms are resolved through the tier's dictionary (an unknown term
// matches nothing) and every matching triple is re-materialized for fn.
// Returning false from fn stops the iteration early.
func MatchOn(r ReaderAPI, pat Pattern, fn func(rdf.Triple) bool) {
	ip, ok := resolvePattern(r, pat)
	if !ok {
		return
	}
	r.MatchIDs(ip, func(a, b, c ID) bool {
		return fn(rdf.Triple{S: r.Term(a), P: r.Term(b), O: r.Term(c)})
	})
}

// CardinalityOn answers a term-level Cardinality over any ReaderAPI.
func CardinalityOn(r ReaderAPI, pat Pattern) int {
	ip, ok := resolvePattern(r, pat)
	if !ok {
		return 0
	}
	return r.CardinalityIDs(ip)
}

// resolvePattern interns the pattern's concrete terms; ok is false when
// a concrete term is unknown to the dictionary (nothing can match).
func resolvePattern(r ReaderAPI, pat Pattern) (IDPattern, bool) {
	var ip IDPattern
	if !pat.S.IsZero() {
		if ip.S = r.Lookup(pat.S); ip.S == NoID {
			return ip, false
		}
	}
	if !pat.P.IsZero() {
		if ip.P = r.Lookup(pat.P); ip.P == NoID {
			return ip, false
		}
	}
	if !pat.O.IsZero() {
		if ip.O = r.Lookup(pat.O); ip.O == NoID {
			return ip, false
		}
	}
	return ip, true
}
