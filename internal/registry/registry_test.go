package registry

import (
	"testing"
	"time"

	"repro/internal/clock"
)

func day(n int) time.Time { return clock.Epoch.Add(time.Duration(n) * 24 * time.Hour) }

func TestAddAndDedup(t *testing.T) {
	r := New(DefaultPolicy)
	if !r.Add(Entry{URL: "http://a/sparql", Source: SourceDataHub}) {
		t.Fatal("first Add must succeed")
	}
	if r.Add(Entry{URL: "http://a/sparql"}) {
		t.Fatal("duplicate Add must fail")
	}
	if r.Len() != 1 || !r.Has("http://a/sparql") {
		t.Fatal("registry state wrong")
	}
}

func TestPolicyAccessorAppliesDefaults(t *testing.T) {
	r := New(Policy{GiveUpAfter: 5})
	p := r.Policy()
	if p.RefreshInterval != DefaultPolicy.RefreshInterval || p.RetryInterval != DefaultPolicy.RetryInterval {
		t.Fatalf("zero intervals not defaulted: %+v", p)
	}
	if p.GiveUpAfter != 5 {
		t.Fatalf("GiveUpAfter = %d", p.GiveUpAfter)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	r := New(DefaultPolicy)
	r.Add(Entry{URL: "http://a", Title: "t"})
	e, ok := r.Get("http://a")
	if !ok || e.Title != "t" {
		t.Fatalf("Get = %+v", e)
	}
	e.Title = "mutated"
	e2, _ := r.Get("http://a")
	if e2.Title != "t" {
		t.Fatal("Get must return a copy")
	}
	if _, ok := r.Get("http://missing"); ok {
		t.Fatal("missing URL should not be found")
	}
}

func TestNeverAttemptedAlwaysDue(t *testing.T) {
	r := New(DefaultPolicy)
	r.Add(Entry{URL: "http://a"})
	if due := r.Due(day(0)); len(due) != 1 {
		t.Fatalf("due = %v", due)
	}
}

func TestWeeklyRefreshPolicy(t *testing.T) {
	r := New(DefaultPolicy)
	r.Add(Entry{URL: "http://a"})
	r.RecordSuccess("http://a", day(0))
	// not due for 6 days
	for d := 1; d < 7; d++ {
		if due := r.Due(day(d)); len(due) != 0 {
			t.Fatalf("day %d: due = %v, want none", d, due)
		}
	}
	// due at day 7
	if due := r.Due(day(7)); len(due) != 1 {
		t.Fatalf("day 7: due = %v", due)
	}
}

func TestDailyRetryAfterFailure(t *testing.T) {
	r := New(DefaultPolicy)
	r.Add(Entry{URL: "http://a"})
	r.RecordSuccess("http://a", day(0))
	// refresh attempt on day 7 fails — the endpoint was unavailable
	r.RecordFailure("http://a", day(7))
	// §3.1: retry daily, not weekly
	if due := r.Due(day(7).Add(time.Hour)); len(due) != 0 {
		t.Fatal("should not retry within the same day")
	}
	if due := r.Due(day(8)); len(due) != 1 {
		t.Fatalf("day 8: due = %v, want retry", due)
	}
	// success resets to the weekly cadence
	r.RecordSuccess("http://a", day(8))
	if due := r.Due(day(9)); len(due) != 0 {
		t.Fatal("should be back on weekly cadence")
	}
	if due := r.Due(day(15)); len(due) != 1 {
		t.Fatal("weekly refresh due again")
	}
}

func TestGiveUpAfter(t *testing.T) {
	r := New(Policy{RefreshInterval: 7 * 24 * time.Hour, RetryInterval: 24 * time.Hour, GiveUpAfter: 3})
	r.Add(Entry{URL: "http://dead"})
	for d := 0; d < 3; d++ {
		if due := r.Due(day(d)); len(due) != 1 {
			t.Fatalf("day %d should retry", d)
		}
		r.RecordFailure("http://dead", day(d))
	}
	if due := r.Due(day(10)); len(due) != 0 {
		t.Fatalf("gave-up endpoint still due: %v", due)
	}
}

func TestRecordOnUnknownURL(t *testing.T) {
	r := New(DefaultPolicy)
	if err := r.RecordSuccess("http://x", day(0)); err == nil {
		t.Fatal("unknown URL must error")
	}
	if err := r.RecordFailure("http://x", day(0)); err == nil {
		t.Fatal("unknown URL must error")
	}
}

func TestIndexedCount(t *testing.T) {
	r := New(DefaultPolicy)
	r.Add(Entry{URL: "http://a"})
	r.Add(Entry{URL: "http://b"})
	r.RecordSuccess("http://a", day(0))
	if n := r.IndexedCount(); n != 1 {
		t.Fatalf("IndexedCount = %d", n)
	}
}

func TestURLsAndEntriesSorted(t *testing.T) {
	r := New(DefaultPolicy)
	r.Add(Entry{URL: "http://z"})
	r.Add(Entry{URL: "http://a"})
	urls := r.URLs()
	if urls[0] != "http://a" || urls[1] != "http://z" {
		t.Fatalf("URLs = %v", urls)
	}
	es := r.Entries()
	if es[0].URL != "http://a" {
		t.Fatalf("Entries = %v", es)
	}
}

func TestSubmitWorkflow(t *testing.T) {
	r := New(DefaultPolicy)
	if err := r.Submit("", "t", "a@b.c", day(0)); err == nil {
		t.Fatal("empty URL must fail")
	}
	if err := r.Submit("http://new/sparql", "t", "", day(0)); err == nil {
		t.Fatal("missing e-mail must fail (§3.4 requires one)")
	}
	if err := r.Submit("http://new/sparql", "New LD", "user@example.org", day(0)); err != nil {
		t.Fatal(err)
	}
	if err := r.Submit("http://new/sparql", "dup", "x@y.z", day(0)); err == nil {
		t.Fatal("duplicate submission must fail")
	}
	e, _ := r.Get("http://new/sparql")
	if e.Source != SourceManual || e.PendingEmail != "user@example.org" {
		t.Fatalf("entry = %+v", e)
	}
	// the submitted endpoint is immediately due for extraction
	if due := r.Due(day(0)); len(due) != 1 {
		t.Fatalf("due = %v", due)
	}
}

func TestTakePendingEmailDeletesAddress(t *testing.T) {
	r := New(DefaultPolicy)
	r.Submit("http://new/sparql", "New LD", "user@example.org", day(0))
	email, ok := r.TakePendingEmail("http://new/sparql")
	if !ok || email != "user@example.org" {
		t.Fatalf("TakePendingEmail = %q, %v", email, ok)
	}
	// the address is deleted: a second take finds nothing, and the entry
	// no longer carries it
	if _, ok := r.TakePendingEmail("http://new/sparql"); ok {
		t.Fatal("address should have been deleted")
	}
	e, _ := r.Get("http://new/sparql")
	if e.PendingEmail != "" {
		t.Fatal("PendingEmail still stored")
	}
}

func TestZeroPolicyDefaults(t *testing.T) {
	r := New(Policy{})
	r.Add(Entry{URL: "http://a"})
	r.RecordSuccess("http://a", day(0))
	if due := r.Due(day(3)); len(due) != 0 {
		t.Fatal("default refresh should be weekly")
	}
	if due := r.Due(day(7)); len(due) != 1 {
		t.Fatal("default refresh due at 7 days")
	}
}
