// Package registry manages H-BOLD's collection of SPARQL endpoints: the
// catalog entries, the §3.1 extraction scheduling policy (weekly refresh,
// daily retry after a failure, because endpoints "might work again after
// 1 or 2 days"), and the §3.4 manual insertion workflow with its e-mail
// notification.
package registry

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Source records how an endpoint entered the registry.
type Source string

// Entry sources.
const (
	SourceDataHub Source = "datahub" // the original pre-crawl list
	SourcePortal  Source = "portal"  // discovered by the §3.3 crawler
	SourceManual  Source = "manual"  // submitted through the §3.4 form
)

// Entry is one registered endpoint.
type Entry struct {
	// URL is the endpoint URL (the registry key).
	URL string `json:"url"`
	// Title is the display title.
	Title string `json:"title"`
	// Source records provenance.
	Source Source `json:"source"`
	// Portal is the advertising portal for SourcePortal entries.
	Portal string `json:"portal,omitempty"`
	// AddedAt is the registration time.
	AddedAt time.Time `json:"addedAt"`

	// LastAttempt is the time of the most recent extraction attempt
	// (zero = never attempted).
	LastAttempt time.Time `json:"lastAttempt"`
	// LastSuccess is the time of the most recent successful extraction
	// (zero = never succeeded).
	LastSuccess time.Time `json:"lastSuccess"`
	// ConsecutiveFailures counts extraction failures since the last
	// success.
	ConsecutiveFailures int `json:"consecutiveFailures"`
	// Indexed reports whether the registry holds a current index for the
	// endpoint.
	Indexed bool `json:"indexed"`

	// PendingEmail is the submitter's address for manual entries whose
	// extraction has not completed yet. It is cleared — deleted, per the
	// paper — as soon as the notification is sent.
	PendingEmail string `json:"pendingEmail,omitempty"`
}

// Policy is the §3.1 update policy.
type Policy struct {
	// RefreshInterval is how often a successfully indexed endpoint is
	// re-extracted (the paper settles on weekly).
	RefreshInterval time.Duration
	// RetryInterval is how often a failed endpoint is retried (daily,
	// since endpoints often come back after 1–2 days).
	RetryInterval time.Duration
	// GiveUpAfter stops retrying after this many consecutive failures
	// (0 = never give up).
	GiveUpAfter int
}

// DefaultPolicy matches the paper: weekly refresh, daily retry.
var DefaultPolicy = Policy{
	RefreshInterval: 7 * 24 * time.Hour,
	RetryInterval:   24 * time.Hour,
}

// Registry is the endpoint catalog. It is safe for concurrent use.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*Entry
	policy  Policy
}

// New returns an empty registry under the given policy.
func New(policy Policy) *Registry {
	if policy.RefreshInterval == 0 {
		policy.RefreshInterval = DefaultPolicy.RefreshInterval
	}
	if policy.RetryInterval == 0 {
		policy.RetryInterval = DefaultPolicy.RetryInterval
	}
	return &Registry{entries: make(map[string]*Entry), policy: policy}
}

// Policy returns the registry's §3.1 update policy.
func (r *Registry) Policy() Policy {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.policy
}

// Add registers an endpoint; it reports whether the URL was new.
func (r *Registry) Add(e Entry) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[e.URL]; dup {
		return false
	}
	cp := e
	r.entries[e.URL] = &cp
	return true
}

// Has reports whether the URL is registered.
func (r *Registry) Has(url string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.entries[url]
	return ok
}

// Get returns a copy of the entry.
func (r *Registry) Get(url string) (Entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[url]
	if !ok {
		return Entry{}, false
	}
	return *e, true
}

// Len returns the number of registered endpoints.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// IndexedCount returns the number of endpoints with a current index.
func (r *Registry) IndexedCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, e := range r.entries {
		if e.Indexed {
			n++
		}
	}
	return n
}

// URLs returns the registered URLs, sorted.
func (r *Registry) URLs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.entries))
	for u := range r.entries {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// Entries returns copies of all entries, sorted by URL.
func (r *Registry) Entries() []Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// Due returns the endpoints whose extraction should run now, per the
// §3.1 policy:
//
//   - never-attempted endpoints are always due;
//   - endpoints whose last attempt failed are retried after
//     RetryInterval (daily) — unless GiveUpAfter is exceeded;
//   - successfully indexed endpoints are refreshed after
//     RefreshInterval (weekly);
//   - everything else waits.
func (r *Registry) Due(now time.Time) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var due []string
	for _, e := range r.entries {
		if r.isDue(e, now) {
			due = append(due, e.URL)
		}
	}
	sort.Strings(due)
	return due
}

func (r *Registry) isDue(e *Entry, now time.Time) bool {
	if e.LastAttempt.IsZero() {
		return true
	}
	failing := e.ConsecutiveFailures > 0
	if failing {
		if r.policy.GiveUpAfter > 0 && e.ConsecutiveFailures >= r.policy.GiveUpAfter {
			return false
		}
		return now.Sub(e.LastAttempt) >= r.policy.RetryInterval
	}
	return now.Sub(e.LastSuccess) >= r.policy.RefreshInterval
}

// RecordSuccess marks an extraction success.
func (r *Registry) RecordSuccess(url string, at time.Time) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[url]
	if !ok {
		return fmt.Errorf("registry: unknown endpoint %s", url)
	}
	e.LastAttempt = at
	e.LastSuccess = at
	e.ConsecutiveFailures = 0
	e.Indexed = true
	return nil
}

// RecordFailure marks an extraction failure.
func (r *Registry) RecordFailure(url string, at time.Time) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[url]
	if !ok {
		return fmt.Errorf("registry: unknown endpoint %s", url)
	}
	e.LastAttempt = at
	e.ConsecutiveFailures++
	return nil
}

// Submit registers a manual endpoint submission (§3.4): the URL plus the
// submitter's e-mail, which is retained only until the completion
// notification is sent.
func (r *Registry) Submit(url, title, email string, at time.Time) error {
	if url == "" {
		return fmt.Errorf("registry: empty endpoint URL")
	}
	if email == "" {
		return fmt.Errorf("registry: an e-mail address is required to notify extraction status")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[url]; dup {
		return fmt.Errorf("registry: endpoint %s already listed", url)
	}
	r.entries[url] = &Entry{
		URL: url, Title: title, Source: SourceManual,
		AddedAt: at, PendingEmail: email,
	}
	return nil
}

// Restore replaces the registry contents with the given entries (used
// when reloading persisted state at startup).
func (r *Registry) Restore(entries []Entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries = make(map[string]*Entry, len(entries))
	for _, e := range entries {
		cp := e
		r.entries[e.URL] = &cp
	}
}

// TakePendingEmail returns the submitter address and deletes it from the
// entry — the caller must send the notification with it. The second
// result reports whether an address was pending.
func (r *Registry) TakePendingEmail(url string) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[url]
	if !ok || e.PendingEmail == "" {
		return "", false
	}
	email := e.PendingEmail
	e.PendingEmail = ""
	return email, true
}
