package community

import (
	"math/rand"
	"sort"
)

// Louvain runs the Louvain modularity-optimization heuristic [Blondel et
// al. 2008], the algorithm H-BOLD uses to build Cluster Schemas. The seed
// drives the node visiting order; results are deterministic for a given
// seed. It returns a normalized partition.
func Louvain(g *Graph, seed int64) Partition {
	rng := rand.New(rand.NewSource(seed))
	// current assignment on the working (possibly aggregated) graph
	work := g
	// mapping from original node → community in the final hierarchy
	assign := make(Partition, g.N())
	for i := range assign {
		assign[i] = i
	}

	for level := 0; level < 64; level++ {
		local, moved := louvainLocal(work, rng)
		k := local.Normalize()
		// fold into the original assignment
		for i := range assign {
			assign[i] = local[assign[i]]
		}
		if !moved || k == work.N() {
			break
		}
		work = aggregate(work, local, k)
	}
	assign.Normalize()
	return assign
}

// louvainLocal runs phase 1 (local moves) until no single move improves
// modularity. It reports whether any node changed community.
func louvainLocal(g *Graph, rng *rand.Rand) (Partition, bool) {
	n := g.N()
	part := make(Partition, n)
	commDeg := make([]float64, n) // Σ degree per community
	for i := 0; i < n; i++ {
		part[i] = i
		commDeg[i] = g.Degree(i)
	}
	m2 := 2 * g.TotalWeight()
	if m2 == 0 {
		return part, false
	}

	order := rng.Perm(n)
	movedAny := false
	for pass := 0; pass < 128; pass++ {
		movedThisPass := false
		for _, u := range order {
			cu := part[u]
			du := g.Degree(u)
			// weights from u to each neighboring community
			wTo := map[int]float64{}
			for v, w := range g.adj[u] {
				if v == u {
					continue
				}
				wTo[part[v]] += w
			}
			// remove u from its community
			commDeg[cu] -= du
			// best gain; staying put is gain of wTo[cu] - du*commDeg[cu]/m2
			bestC, bestGain := cu, wTo[cu]-du*commDeg[cu]/m2
			// deterministic candidate order
			cands := make([]int, 0, len(wTo))
			for c := range wTo {
				cands = append(cands, c)
			}
			sort.Ints(cands)
			for _, c := range cands {
				if c == cu {
					continue
				}
				gain := wTo[c] - du*commDeg[c]/m2
				if gain > bestGain+1e-12 {
					bestC, bestGain = c, gain
				}
			}
			part[u] = bestC
			commDeg[bestC] += du
			if bestC != cu {
				movedThisPass = true
				movedAny = true
			}
		}
		if !movedThisPass {
			break
		}
	}
	return part, movedAny
}

// aggregate builds the phase-2 graph whose nodes are the k communities of
// part, with inter-community weights summed and intra-community weights
// becoming self loops.
func aggregate(g *Graph, part Partition, k int) *Graph {
	out := NewGraph(k)
	g.Edges(func(u, v int, w float64) {
		out.AddEdge(part[u], part[v], w)
	})
	return out
}

// LabelPropagation runs synchronous-tie-broken asynchronous label
// propagation [Raghavan et al. 2007]; a fast baseline for the ablation
// benchmarks. Deterministic for a given seed.
func LabelPropagation(g *Graph, seed int64) Partition {
	rng := rand.New(rand.NewSource(seed))
	n := g.N()
	part := make(Partition, n)
	for i := range part {
		part[i] = i
	}
	for iter := 0; iter < 100; iter++ {
		changed := false
		for _, u := range rng.Perm(n) {
			wTo := map[int]float64{}
			for v, w := range g.adj[u] {
				if v == u {
					continue
				}
				wTo[part[v]] += w
			}
			if len(wTo) == 0 {
				continue
			}
			// pick the label with max incident weight; break ties by label id
			best, bestW := part[u], wTo[part[u]]
			labels := make([]int, 0, len(wTo))
			for c := range wTo {
				labels = append(labels, c)
			}
			sort.Ints(labels)
			for _, c := range labels {
				if wTo[c] > bestW+1e-12 {
					best, bestW = c, wTo[c]
				}
			}
			if best != part[u] {
				part[u] = best
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	part.Normalize()
	return part
}

// GirvanNewman removes highest-betweenness edges until the modularity of
// the connected-component partition stops improving [Girvan & Newman
// 2002]. It is O(V·E²)-ish and only suitable for the small Schema
// Summary graphs it is benchmarked on.
func GirvanNewman(g *Graph) Partition {
	// working copy of adjacency
	adj := make([]map[int]float64, g.N())
	for u := range adj {
		adj[u] = make(map[int]float64, len(g.adj[u]))
		for v, w := range g.adj[u] {
			if v != u {
				adj[u][v] = w
			}
		}
	}
	best := components(adj)
	bestQ := Modularity(g, best)
	edges := g.EdgeCount()
	for i := 0; i < edges; i++ {
		u, v, ok := maxBetweennessEdge(adj)
		if !ok {
			break
		}
		delete(adj[u], v)
		delete(adj[v], u)
		part := components(adj)
		if q := Modularity(g, part); q > bestQ {
			bestQ = q
			best = part
		}
	}
	best.Normalize()
	return best
}

// components labels connected components of adj.
func components(adj []map[int]float64) Partition {
	n := len(adj)
	part := make(Partition, n)
	for i := range part {
		part[i] = -1
	}
	c := 0
	for s := 0; s < n; s++ {
		if part[s] >= 0 {
			continue
		}
		stack := []int{s}
		part[s] = c
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for v := range adj[u] {
				if part[v] < 0 {
					part[v] = c
					stack = append(stack, v)
				}
			}
		}
		c++
	}
	return part
}

// maxBetweennessEdge computes edge betweenness (unweighted shortest
// paths, Brandes accumulation) and returns the edge with the highest
// score, breaking ties by (u, v).
func maxBetweennessEdge(adj []map[int]float64) (int, int, bool) {
	n := len(adj)
	score := map[[2]int]float64{}
	for s := 0; s < n; s++ {
		// BFS from s
		dist := make([]int, n)
		sigma := make([]float64, n)
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		sigma[s] = 1
		queue := []int{s}
		var orderVisited []int
		preds := make([][]int, n)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			orderVisited = append(orderVisited, u)
			nbrs := make([]int, 0, len(adj[u]))
			for v := range adj[u] {
				nbrs = append(nbrs, v)
			}
			sort.Ints(nbrs)
			for _, v := range nbrs {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
				if dist[v] == dist[u]+1 {
					sigma[v] += sigma[u]
					preds[v] = append(preds[v], u)
				}
			}
		}
		delta := make([]float64, n)
		for i := len(orderVisited) - 1; i >= 0; i-- {
			w := orderVisited[i]
			for _, u := range preds[w] {
				c := sigma[u] / sigma[w] * (1 + delta[w])
				a, b := u, w
				if a > b {
					a, b = b, a
				}
				score[[2]int{a, b}] += c
				delta[u] += c
			}
		}
	}
	if len(score) == 0 {
		return 0, 0, false
	}
	var bestEdge [2]int
	bestScore := -1.0
	keys := make([][2]int, 0, len(score))
	for e := range score {
		keys = append(keys, e)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, e := range keys {
		if score[e] > bestScore {
			bestScore = score[e]
			bestEdge = e
		}
	}
	return bestEdge[0], bestEdge[1], true
}
