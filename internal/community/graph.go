// Package community implements the community detection algorithms H-BOLD
// applies to the Schema Summary to build the Cluster Schema [Po &
// Malvezzi, J.UCS 2018]: Louvain modularity optimization (the method the
// deployed tool uses) plus label propagation and Girvan–Newman baselines
// for the ablation benchmarks, and the modularity quality measure.
//
// All algorithms are deterministic: ties are broken by node id and any
// randomized order is driven by an explicit seed.
package community

import (
	"fmt"
	"sort"
)

// Graph is a weighted undirected multigraph on dense integer nodes
// (0..N-1). Parallel edges accumulate weight; self loops are allowed and
// count twice in degree, per the standard modularity convention.
type Graph struct {
	n       int
	adj     []map[int]float64
	total   float64 // sum of all edge weights (each undirected edge once)
	degrees []float64
}

// NewGraph returns an empty graph with n nodes.
func NewGraph(n int) *Graph {
	g := &Graph{n: n, adj: make([]map[int]float64, n), degrees: make([]float64, n)}
	for i := range g.adj {
		g.adj[i] = make(map[int]float64)
	}
	return g
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// TotalWeight returns the sum of edge weights (undirected edges counted
// once, self loops once).
func (g *Graph) TotalWeight() float64 { return g.total }

// AddEdge adds weight w between u and v (accumulating over repeated
// calls). Self loops are supported.
func (g *Graph) AddEdge(u, v int, w float64) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("community: edge (%d,%d) out of range [0,%d)", u, v, g.n))
	}
	if w <= 0 {
		return
	}
	g.adj[u][v] += w
	if u != v {
		g.adj[v][u] += w
		g.degrees[u] += w
		g.degrees[v] += w
	} else {
		// a self loop contributes 2w to the degree
		g.degrees[u] += 2 * w
	}
	g.total += w
}

// Weight returns the edge weight between u and v (0 if absent).
func (g *Graph) Weight(u, v int) float64 { return g.adj[u][v] }

// Degree returns the weighted degree of u (self loops count twice).
func (g *Graph) Degree(u int) float64 { return g.degrees[u] }

// Neighbors returns u's neighbors sorted by id (excluding u itself).
func (g *Graph) Neighbors(u int) []int {
	out := make([]int, 0, len(g.adj[u]))
	for v := range g.adj[u] {
		if v != u {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

// Edges streams each undirected edge once (u <= v) in sorted order.
func (g *Graph) Edges(fn func(u, v int, w float64)) {
	for u := 0; u < g.n; u++ {
		vs := make([]int, 0, len(g.adj[u]))
		for v := range g.adj[u] {
			if v >= u {
				vs = append(vs, v)
			}
		}
		sort.Ints(vs)
		for _, v := range vs {
			fn(u, v, g.adj[u][v])
		}
	}
}

// EdgeCount returns the number of distinct undirected edges (self loops
// included).
func (g *Graph) EdgeCount() int {
	n := 0
	g.Edges(func(int, int, float64) { n++ })
	return n
}

// Partition maps each node to its community id. Community ids are dense
// (0..K-1) after Normalize.
type Partition []int

// NumCommunities returns the number of distinct communities.
func (p Partition) NumCommunities() int {
	seen := map[int]bool{}
	for _, c := range p {
		seen[c] = true
	}
	return len(seen)
}

// Normalize renumbers communities densely in order of first appearance
// and returns the number of communities.
func (p Partition) Normalize() int {
	remap := map[int]int{}
	next := 0
	for i, c := range p {
		nc, ok := remap[c]
		if !ok {
			nc = next
			remap[c] = nc
			next++
		}
		p[i] = nc
	}
	return next
}

// Members returns the nodes of each community, sorted, indexed by
// community id. The partition must be normalized.
func (p Partition) Members() [][]int {
	k := 0
	for _, c := range p {
		if c+1 > k {
			k = c + 1
		}
	}
	out := make([][]int, k)
	for i, c := range p {
		out[c] = append(out[c], i)
	}
	return out
}

// Modularity computes Newman modularity Q of the partition on g.
func Modularity(g *Graph, p Partition) float64 {
	if g.total == 0 {
		return 0
	}
	m2 := 2 * g.total
	// Q = Σ_ij [A_ij − k_i k_j / 2m] δ(c_i,c_j) / 2m over ordered pairs,
	// with A_uu = 2w for a self loop of weight w (matching Degree).
	in := map[int]float64{}
	deg := map[int]float64{}
	for u := 0; u < g.n; u++ {
		deg[p[u]] += g.degrees[u]
	}
	g.Edges(func(u, v int, w float64) {
		if p[u] == p[v] {
			in[p[u]] += w // ordered pairs contribute 2w; factored below
		}
	})
	q := 0.0
	for _, inW := range in {
		q += 2 * inW / m2
	}
	for _, d := range deg {
		q -= (d / m2) * (d / m2)
	}
	return q
}
