package community

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// twoCliques builds two K5 cliques joined by a single bridge edge — the
// canonical community structure.
func twoCliques() *Graph {
	g := NewGraph(10)
	for c := 0; c < 2; c++ {
		base := c * 5
		for i := 0; i < 5; i++ {
			for j := i + 1; j < 5; j++ {
				g.AddEdge(base+i, base+j, 1)
			}
		}
	}
	g.AddEdge(0, 5, 1)
	return g
}

// ring builds a cycle graph.
func ring(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n, 1)
	}
	return g
}

func TestGraphBasics(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 1, 1) // accumulates
	if g.Weight(0, 1) != 3 || g.Weight(1, 0) != 3 {
		t.Fatalf("Weight = %v", g.Weight(0, 1))
	}
	if g.TotalWeight() != 4 {
		t.Fatalf("TotalWeight = %v", g.TotalWeight())
	}
	if g.Degree(1) != 4 {
		t.Fatalf("Degree(1) = %v", g.Degree(1))
	}
	nbrs := g.Neighbors(1)
	if len(nbrs) != 2 || nbrs[0] != 0 || nbrs[1] != 2 {
		t.Fatalf("Neighbors = %v", nbrs)
	}
}

func TestSelfLoopDegree(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 0, 1.5)
	if g.Degree(0) != 3 {
		t.Fatalf("self loop degree = %v, want 3", g.Degree(0))
	}
	if g.TotalWeight() != 1.5 {
		t.Fatalf("total = %v", g.TotalWeight())
	}
}

func TestEdgeCountAndIteration(t *testing.T) {
	g := twoCliques()
	if g.EdgeCount() != 21 { // 10 + 10 + bridge
		t.Fatalf("EdgeCount = %d", g.EdgeCount())
	}
	// each edge visited once with u <= v
	g.Edges(func(u, v int, w float64) {
		if u > v {
			t.Fatalf("edge order violated: (%d,%d)", u, v)
		}
	})
}

func TestAddEdgeOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGraph(2).AddEdge(0, 5, 1)
}

func TestZeroWeightIgnored(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 1, 0)
	g.AddEdge(0, 1, -3)
	if g.TotalWeight() != 0 || g.EdgeCount() != 0 {
		t.Fatal("non-positive weights must be ignored")
	}
}

func TestPartitionNormalize(t *testing.T) {
	p := Partition{7, 7, 3, 3, 9}
	k := p.Normalize()
	if k != 3 {
		t.Fatalf("k = %d", k)
	}
	want := Partition{0, 0, 1, 1, 2}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("p = %v", p)
		}
	}
}

func TestPartitionMembers(t *testing.T) {
	p := Partition{0, 1, 0, 1, 2}
	m := p.Members()
	if len(m) != 3 || len(m[0]) != 2 || m[0][0] != 0 || m[0][1] != 2 {
		t.Fatalf("Members = %v", m)
	}
}

func TestModularityPerfectSplit(t *testing.T) {
	g := twoCliques()
	good := Partition{0, 0, 0, 0, 0, 1, 1, 1, 1, 1}
	bad := make(Partition, 10) // everything together
	qGood := Modularity(g, good)
	qBad := Modularity(g, bad)
	if qGood <= qBad {
		t.Fatalf("Q(good)=%v should beat Q(all-in-one)=%v", qGood, qBad)
	}
	if qGood < 0.3 {
		t.Fatalf("Q(good)=%v unexpectedly low", qGood)
	}
}

func TestModularityAllSingletonsNegativeOrZero(t *testing.T) {
	g := twoCliques()
	p := make(Partition, g.N())
	for i := range p {
		p[i] = i
	}
	if q := Modularity(g, p); q > 0 {
		t.Fatalf("singleton modularity = %v, want <= 0", q)
	}
}

func TestModularityEmptyGraph(t *testing.T) {
	g := NewGraph(4)
	if q := Modularity(g, make(Partition, 4)); q != 0 {
		t.Fatalf("Q = %v", q)
	}
}

func TestLouvainTwoCliques(t *testing.T) {
	g := twoCliques()
	p := Louvain(g, 1)
	if k := p.NumCommunities(); k != 2 {
		t.Fatalf("communities = %d, want 2 (partition %v)", k, p)
	}
	// the two cliques must be separated
	for i := 1; i < 5; i++ {
		if p[i] != p[0] {
			t.Fatalf("clique 1 split: %v", p)
		}
		if p[5+i] != p[5] {
			t.Fatalf("clique 2 split: %v", p)
		}
	}
	if p[0] == p[5] {
		t.Fatalf("cliques merged: %v", p)
	}
}

func TestLouvainDeterministicPerSeed(t *testing.T) {
	g := randomModularGraph(60, 4, 0.6, 0.02, 99)
	p1 := Louvain(g, 5)
	p2 := Louvain(g, 5)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("Louvain not deterministic for fixed seed")
		}
	}
}

func TestLouvainImprovesModularity(t *testing.T) {
	g := randomModularGraph(80, 4, 0.5, 0.02, 7)
	p := Louvain(g, 1)
	flat := make(Partition, g.N())
	if Modularity(g, p) <= Modularity(g, flat) {
		t.Fatalf("Louvain Q=%v should beat trivial Q=%v", Modularity(g, p), Modularity(g, flat))
	}
}

func TestLouvainRecoversPlantedCommunities(t *testing.T) {
	g := randomModularGraph(100, 5, 0.7, 0.01, 3)
	p := Louvain(g, 2)
	k := p.NumCommunities()
	if k < 4 || k > 7 {
		t.Fatalf("found %d communities, want ≈5", k)
	}
	if q := Modularity(g, p); q < 0.5 {
		t.Fatalf("Q = %v, want > 0.5 on strongly modular graph", q)
	}
}

func TestLouvainSingletonGraph(t *testing.T) {
	g := NewGraph(1)
	p := Louvain(g, 1)
	if len(p) != 1 || p[0] != 0 {
		t.Fatalf("p = %v", p)
	}
}

func TestLouvainDisconnected(t *testing.T) {
	g := NewGraph(6)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(4, 5, 1)
	p := Louvain(g, 1)
	if p.NumCommunities() != 3 {
		t.Fatalf("communities = %d, want 3", p.NumCommunities())
	}
}

func TestLabelPropagationTwoCliques(t *testing.T) {
	g := twoCliques()
	p := LabelPropagation(g, 1)
	// LP may occasionally merge; require it to find ≤ 3 communities and
	// keep each clique intact or merged, never split across.
	if k := p.NumCommunities(); k > 3 {
		t.Fatalf("communities = %d", k)
	}
	for i := 1; i < 5; i++ {
		if p[i] != p[0] || p[5+i] != p[5] {
			t.Fatalf("clique split: %v", p)
		}
	}
}

func TestGirvanNewmanTwoCliques(t *testing.T) {
	g := twoCliques()
	p := GirvanNewman(g)
	if k := p.NumCommunities(); k != 2 {
		t.Fatalf("communities = %d, want 2 (%v)", k, p)
	}
	if p[0] == p[5] {
		t.Fatalf("cliques merged: %v", p)
	}
}

func TestGirvanNewmanRing(t *testing.T) {
	p := GirvanNewman(ring(12))
	if k := p.NumCommunities(); k < 2 {
		t.Fatalf("ring should be cut into parts, got %d", k)
	}
}

func TestAggregatePreservesTotalWeight(t *testing.T) {
	g := twoCliques()
	p := Louvain(g, 1)
	k := p.NumCommunities()
	agg := aggregate(g, p, k)
	if agg.TotalWeight() != g.TotalWeight() {
		t.Fatalf("aggregate total %v != %v", agg.TotalWeight(), g.TotalWeight())
	}
}

// Property: modularity of any partition is within [-1, 1].
func TestQuickModularityBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(20)
		g := NewGraph(n)
		for i := 0; i < n*2; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n), 1)
		}
		p := make(Partition, n)
		for i := range p {
			p[i] = rng.Intn(3)
		}
		q := Modularity(g, p)
		return q >= -1.0001 && q <= 1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Louvain's partition never scores below the all-singleton and
// all-together baselines.
func TestQuickLouvainBeatsBaselines(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(24)
		g := NewGraph(n)
		for i := 0; i < n*3; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v, 1)
			}
		}
		if g.TotalWeight() == 0 {
			return true
		}
		p := Louvain(g, seed)
		q := Modularity(g, p)
		flat := make(Partition, n)
		singles := make(Partition, n)
		for i := range singles {
			singles[i] = i
		}
		return q >= Modularity(g, flat)-1e-9 && q >= Modularity(g, singles)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// randomModularGraph plants k communities over n nodes with given
// intra/inter edge probabilities.
func randomModularGraph(n, k int, pIn, pOut float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph(n)
	comm := make([]int, n)
	for i := range comm {
		comm[i] = i % k
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p := pOut
			if comm[i] == comm[j] {
				p = pIn
			}
			if rng.Float64() < p {
				g.AddEdge(i, j, 1)
			}
		}
	}
	return g
}
