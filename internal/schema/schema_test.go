package schema

import (
	"context"
	"testing"
	"time"

	"repro/internal/endpoint"
	"repro/internal/extraction"
	"repro/internal/synth"
)

func scholarlySummary(t testing.TB) *Summary {
	t.Helper()
	st := synth.Scholarly(1)
	ix, err := extraction.New().Extract(context.Background(), endpoint.LocalClient{Store: st}, "scholarly", time.Now())
	if err != nil {
		t.Fatal(err)
	}
	return Build(ix)
}

func TestBuildScholarly(t *testing.T) {
	s := scholarlySummary(t)
	if s.NumClasses() != synth.ScholarlyClassCount() {
		t.Fatalf("classes = %d", s.NumClasses())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Edges) == 0 {
		t.Fatal("no edges")
	}
	if s.TotalInstances <= 0 {
		t.Fatal("no instances")
	}
}

func TestNodesSortedByInstances(t *testing.T) {
	s := scholarlySummary(t)
	for i := 1; i < len(s.Nodes); i++ {
		if s.Nodes[i-1].Instances < s.Nodes[i].Instances {
			t.Fatal("nodes not sorted by descending instances")
		}
	}
	if s.Nodes[0].Label != "Person" {
		t.Fatalf("top node = %s", s.Nodes[0].Label)
	}
}

func TestNodeByIRI(t *testing.T) {
	s := scholarlySummary(t)
	n, ok := s.NodeByIRI(synth.ScholarlyNS + "Event")
	if !ok || n.Label != "Event" || n.Instances != 150 {
		t.Fatalf("NodeByIRI(Event) = %+v, %v", n, ok)
	}
	if _, ok := s.NodeByIRI("http://nope"); ok {
		t.Fatal("unknown IRI should miss")
	}
}

func TestNodeAttributes(t *testing.T) {
	s := scholarlySummary(t)
	n, _ := s.NodeByIRI(synth.ScholarlyNS + "Event")
	if len(n.Attributes) != 3 { // label, startDate, endDate
		t.Fatalf("Event attributes = %+v", n.Attributes)
	}
}

func TestDegreeAndNeighbors(t *testing.T) {
	s := scholarlySummary(t)
	event := synth.ScholarlyNS + "Event"
	if d := s.Degree(event); d < 6 {
		t.Fatalf("Event degree = %d, want >= 6 (hub class)", d)
	}
	nbrs := s.Neighbors(event)
	want := map[string]bool{
		synth.ScholarlyNS + "Situation":         true,
		synth.ScholarlyNS + "Vevent":            true,
		synth.ScholarlyNS + "SessionEvent":      true,
		synth.ScholarlyNS + "ConferenceSeries":  true,
		synth.ScholarlyNS + "InformationObject": true,
	}
	found := 0
	for _, n := range nbrs {
		if want[n] {
			found++
		}
	}
	if found != len(want) {
		t.Fatalf("Event neighbors missing Figure 7 classes: %v", nbrs)
	}
}

func TestCoveragePercent(t *testing.T) {
	s := scholarlySummary(t)
	all := map[string]bool{}
	for _, n := range s.Nodes {
		all[n.IRI] = true
	}
	if got := s.CoveragePercent(all); got < 99.99 || got > 100.01 {
		t.Fatalf("full coverage = %v", got)
	}
	if got := s.CoveragePercent(map[string]bool{}); got != 0 {
		t.Fatalf("empty coverage = %v", got)
	}
	one := map[string]bool{synth.ScholarlyNS + "Person": true}
	got := s.CoveragePercent(one)
	want := 100 * 1200.0 / float64(s.TotalInstances)
	if got < want-0.01 || got > want+0.01 {
		t.Fatalf("Person coverage = %v, want %v", got, want)
	}
}

func TestEdgesBetween(t *testing.T) {
	s := scholarlySummary(t)
	set := map[string]bool{
		synth.ScholarlyNS + "Event":     true,
		synth.ScholarlyNS + "Situation": true,
	}
	edges := s.EdgesBetween(set)
	if len(edges) == 0 {
		t.Fatal("Event–Situation edge missing")
	}
	for _, e := range edges {
		if !set[e.From] || !set[e.To] {
			t.Fatalf("edge %v leaves the set", e)
		}
	}
}

func TestValidateCatchesBadEdge(t *testing.T) {
	s := &Summary{
		Nodes: []Node{{IRI: "http://a"}},
		Edges: []Edge{{From: "http://a", To: "http://missing"}},
	}
	if err := s.Validate(); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestValidateCatchesDuplicateNode(t *testing.T) {
	s := &Summary{Nodes: []Node{{IRI: "http://a"}, {IRI: "http://a"}}}
	if err := s.Validate(); err == nil {
		t.Fatal("expected validation error")
	}
}

// --- exploration (Figure 2) ---

func TestExplorationWalkthrough(t *testing.T) {
	s := scholarlySummary(t)
	event := synth.ScholarlyNS + "Event"
	e, err := NewExploration(s, event)
	if err != nil {
		t.Fatal(err)
	}
	// step 2: focused on Event
	if e.NodeCount() != 1 {
		t.Fatalf("NodeCount = %d", e.NodeCount())
	}
	cov1 := e.Coverage()
	if cov1 <= 0 || cov1 >= 100 {
		t.Fatalf("initial coverage = %v", cov1)
	}
	// step 3: expand Event
	added, err := e.Expand(event)
	if err != nil {
		t.Fatal(err)
	}
	if len(added) == 0 {
		t.Fatal("expanding a hub should add classes")
	}
	cov2 := e.Coverage()
	if cov2 <= cov1 {
		t.Fatalf("coverage must grow: %v → %v", cov1, cov2)
	}
	if e.NodeCount() != 1+len(added) {
		t.Fatalf("node count mismatch")
	}
	// step 4: expand everything
	e.ExpandAll()
	if !e.Complete() {
		// the Scholarly graph is connected through Event, so a full
		// expansion must reach every class
		t.Fatalf("expansion incomplete: %d/%d", e.NodeCount(), s.NumClasses())
	}
	if got := e.Coverage(); got < 99.99 {
		t.Fatalf("full coverage = %v", got)
	}
}

func TestExplorationVisibleEdgesGrow(t *testing.T) {
	s := scholarlySummary(t)
	event := synth.ScholarlyNS + "Event"
	e, _ := NewExploration(s, event)
	if n := len(e.VisibleEdges()); n != 0 {
		t.Fatalf("single focus node should have 0 visible inter-class edges, got %d", n)
	}
	e.Expand(event)
	if n := len(e.VisibleEdges()); n == 0 {
		t.Fatal("edges should appear after expansion")
	}
}

func TestExplorationErrors(t *testing.T) {
	s := scholarlySummary(t)
	if _, err := NewExploration(s, "http://nope"); err == nil {
		t.Fatal("unknown focus should fail")
	}
	e, _ := NewExploration(s, synth.ScholarlyNS+"Event")
	if _, err := e.Expand(synth.ScholarlyNS + "Person"); err == nil {
		t.Fatal("expanding invisible class should fail")
	}
	if err := e.Add("http://nope"); err == nil {
		t.Fatal("adding unknown class should fail")
	}
	if err := e.Add(synth.ScholarlyNS + "Person"); err != nil {
		t.Fatal(err)
	}
	if e.NodeCount() != 2 {
		t.Fatalf("NodeCount = %d", e.NodeCount())
	}
}

func TestExplorationVisibleSorted(t *testing.T) {
	s := scholarlySummary(t)
	e, _ := NewExploration(s, synth.ScholarlyNS+"Event")
	e.ExpandAll()
	v := e.Visible()
	for i := 1; i < len(v); i++ {
		if v[i-1] >= v[i] {
			t.Fatal("Visible() not sorted")
		}
	}
	// VisibleSet is a copy
	set := e.VisibleSet()
	delete(set, v[0])
	if e.NodeCount() != len(v) {
		t.Fatal("VisibleSet must be a copy")
	}
}
