package schema

import (
	"fmt"
	"sort"
	"strings"
)

// Diff describes how a source's schema changed between two extractions.
// Section 3.1 motivates the weekly re-extraction policy with exactly
// this phenomenon: "the structure and also the content of a LD could
// change very often"; the diff lets the tool (and its operators) see
// what a refresh actually changed.
type Diff struct {
	// AddedClasses and RemovedClasses are class IRIs present in only one
	// of the two summaries, sorted.
	AddedClasses   []string `json:"addedClasses"`
	RemovedClasses []string `json:"removedClasses"`
	// InstanceDelta maps class IRIs to the change in instance count
	// (new − old) for classes present in both summaries; zero deltas are
	// omitted.
	InstanceDelta map[string]int `json:"instanceDelta,omitempty"`
	// AddedEdges and RemovedEdges are schema arcs present in only one
	// summary, rendered as "from --property--> to".
	AddedEdges   []string `json:"addedEdges"`
	RemovedEdges []string `json:"removedEdges"`
	// TriplesDelta is the change in total triple count.
	TriplesDelta int `json:"triplesDelta"`
}

// Unchanged reports whether the two summaries have identical structure
// and counts.
func (d *Diff) Unchanged() bool {
	return len(d.AddedClasses) == 0 && len(d.RemovedClasses) == 0 &&
		len(d.InstanceDelta) == 0 && len(d.AddedEdges) == 0 &&
		len(d.RemovedEdges) == 0 && d.TriplesDelta == 0
}

// Compare diffs the new summary against the old one.
func Compare(old, new *Summary) *Diff {
	d := &Diff{
		InstanceDelta: map[string]int{},
		TriplesDelta:  new.Triples - old.Triples,
	}
	oldNodes := map[string]Node{}
	for _, n := range old.Nodes {
		oldNodes[n.IRI] = n
	}
	newNodes := map[string]Node{}
	for _, n := range new.Nodes {
		newNodes[n.IRI] = n
	}
	for iri, n := range newNodes {
		if o, ok := oldNodes[iri]; !ok {
			d.AddedClasses = append(d.AddedClasses, iri)
		} else if delta := n.Instances - o.Instances; delta != 0 {
			d.InstanceDelta[iri] = delta
		}
	}
	for iri := range oldNodes {
		if _, ok := newNodes[iri]; !ok {
			d.RemovedClasses = append(d.RemovedClasses, iri)
		}
	}
	sort.Strings(d.AddedClasses)
	sort.Strings(d.RemovedClasses)

	edgeKey := func(e Edge) string {
		return fmt.Sprintf("%s --%s--> %s", e.From, e.Property, e.To)
	}
	oldEdges := map[string]bool{}
	for _, e := range old.Edges {
		oldEdges[edgeKey(e)] = true
	}
	newEdges := map[string]bool{}
	for _, e := range new.Edges {
		newEdges[edgeKey(e)] = true
	}
	for k := range newEdges {
		if !oldEdges[k] {
			d.AddedEdges = append(d.AddedEdges, k)
		}
	}
	for k := range oldEdges {
		if !newEdges[k] {
			d.RemovedEdges = append(d.RemovedEdges, k)
		}
	}
	sort.Strings(d.AddedEdges)
	sort.Strings(d.RemovedEdges)
	if len(d.InstanceDelta) == 0 {
		d.InstanceDelta = nil
	}
	return d
}

// String renders a compact human-readable change report.
func (d *Diff) String() string {
	if d.Unchanged() {
		return "no changes"
	}
	var sb strings.Builder
	write := func(format string, args ...any) { fmt.Fprintf(&sb, format, args...) }
	if len(d.AddedClasses) > 0 {
		write("+%d classes", len(d.AddedClasses))
	}
	if len(d.RemovedClasses) > 0 {
		if sb.Len() > 0 {
			write(", ")
		}
		write("-%d classes", len(d.RemovedClasses))
	}
	if len(d.InstanceDelta) > 0 {
		if sb.Len() > 0 {
			write(", ")
		}
		write("%d classes changed size", len(d.InstanceDelta))
	}
	if len(d.AddedEdges) > 0 || len(d.RemovedEdges) > 0 {
		if sb.Len() > 0 {
			write(", ")
		}
		write("+%d/-%d edges", len(d.AddedEdges), len(d.RemovedEdges))
	}
	if d.TriplesDelta != 0 {
		if sb.Len() > 0 {
			write(", ")
		}
		write("%+d triples", d.TriplesDelta)
	}
	return sb.String()
}
