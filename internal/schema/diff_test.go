package schema

import (
	"strings"
	"testing"
)

func mini(nodes []Node, edges []Edge, triples int) *Summary {
	s := &Summary{Dataset: "x", Nodes: nodes, Edges: edges, Triples: triples}
	for _, n := range nodes {
		s.TotalInstances += n.Instances
	}
	s.reindex()
	return s
}

func TestCompareUnchanged(t *testing.T) {
	a := mini([]Node{{IRI: "http://c1", Instances: 5}}, []Edge{{From: "http://c1", To: "http://c1", Property: "http://p"}}, 10)
	d := Compare(a, a)
	if !d.Unchanged() {
		t.Fatalf("diff = %+v", d)
	}
	if d.String() != "no changes" {
		t.Fatalf("String = %q", d.String())
	}
}

func TestCompareAddedRemovedClasses(t *testing.T) {
	old := mini([]Node{{IRI: "http://a", Instances: 5}, {IRI: "http://b", Instances: 2}}, nil, 7)
	new := mini([]Node{{IRI: "http://a", Instances: 5}, {IRI: "http://c", Instances: 1}}, nil, 6)
	d := Compare(old, new)
	if len(d.AddedClasses) != 1 || d.AddedClasses[0] != "http://c" {
		t.Fatalf("added = %v", d.AddedClasses)
	}
	if len(d.RemovedClasses) != 1 || d.RemovedClasses[0] != "http://b" {
		t.Fatalf("removed = %v", d.RemovedClasses)
	}
	if d.TriplesDelta != -1 {
		t.Fatalf("triples delta = %d", d.TriplesDelta)
	}
	if d.Unchanged() {
		t.Fatal("should be changed")
	}
}

func TestCompareInstanceDelta(t *testing.T) {
	old := mini([]Node{{IRI: "http://a", Instances: 5}}, nil, 5)
	new := mini([]Node{{IRI: "http://a", Instances: 9}}, nil, 9)
	d := Compare(old, new)
	if d.InstanceDelta["http://a"] != 4 {
		t.Fatalf("delta = %v", d.InstanceDelta)
	}
	if !strings.Contains(d.String(), "1 classes changed size") {
		t.Fatalf("String = %q", d.String())
	}
}

func TestCompareEdges(t *testing.T) {
	n := []Node{{IRI: "http://a"}, {IRI: "http://b"}}
	old := mini(n, []Edge{{From: "http://a", To: "http://b", Property: "http://p"}}, 0)
	new := mini(n, []Edge{{From: "http://b", To: "http://a", Property: "http://q"}}, 0)
	d := Compare(old, new)
	if len(d.AddedEdges) != 1 || !strings.Contains(d.AddedEdges[0], "--http://q-->") {
		t.Fatalf("added edges = %v", d.AddedEdges)
	}
	if len(d.RemovedEdges) != 1 {
		t.Fatalf("removed edges = %v", d.RemovedEdges)
	}
	if !strings.Contains(d.String(), "+1/-1 edges") {
		t.Fatalf("String = %q", d.String())
	}
}

func TestCompareParallelEdgesDistinct(t *testing.T) {
	// the Schema Summary is a pseudograph: two properties between the
	// same classes are distinct edges
	n := []Node{{IRI: "http://a"}, {IRI: "http://b"}}
	old := mini(n, []Edge{{From: "http://a", To: "http://b", Property: "http://p"}}, 0)
	new := mini(n, []Edge{
		{From: "http://a", To: "http://b", Property: "http://p"},
		{From: "http://a", To: "http://b", Property: "http://p2"},
	}, 0)
	d := Compare(old, new)
	if len(d.AddedEdges) != 1 || len(d.RemovedEdges) != 0 {
		t.Fatalf("diff = %+v", d)
	}
}
