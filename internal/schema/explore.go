package schema

import (
	"fmt"
	"sort"
)

// Exploration is a presentation-layer session over a Schema Summary: the
// user focuses on a class and iteratively expands connections until —
// possibly — the whole Schema Summary is visible (Figure 2, steps 2–4).
type Exploration struct {
	summary *Summary
	visible map[string]bool
	// Focus is the class the exploration started from.
	Focus string
}

// NewExploration starts an exploration focused on the given class.
func NewExploration(s *Summary, focusIRI string) (*Exploration, error) {
	if _, ok := s.NodeByIRI(focusIRI); !ok {
		return nil, fmt.Errorf("schema: unknown class %s", focusIRI)
	}
	return &Exploration{
		summary: s,
		visible: map[string]bool{focusIRI: true},
		Focus:   focusIRI,
	}, nil
}

// Visible returns the currently visible classes, sorted.
func (e *Exploration) Visible() []string {
	out := make([]string, 0, len(e.visible))
	for c := range e.visible {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// VisibleSet returns a copy of the visible class set.
func (e *Exploration) VisibleSet() map[string]bool {
	out := make(map[string]bool, len(e.visible))
	for c := range e.visible {
		out[c] = true
	}
	return out
}

// NodeCount is the number of visible classes (shown to the user at each
// step).
func (e *Exploration) NodeCount() int { return len(e.visible) }

// Coverage is the percentage of instances represented by the visible
// classes (shown to the user at each step).
func (e *Exploration) Coverage() float64 {
	return e.summary.CoveragePercent(e.visible)
}

// VisibleEdges returns the Schema Summary edges with both ends visible.
func (e *Exploration) VisibleEdges() []Edge {
	return e.summary.EdgesBetween(e.visible)
}

// Expand makes the neighbors of the given visible class visible and
// returns the newly added classes, sorted. Expanding an invisible class
// is an error.
func (e *Exploration) Expand(classIRI string) ([]string, error) {
	if !e.visible[classIRI] {
		return nil, fmt.Errorf("schema: class %s is not visible", classIRI)
	}
	var added []string
	for _, n := range e.summary.Neighbors(classIRI) {
		if !e.visible[n] {
			e.visible[n] = true
			added = append(added, n)
		}
	}
	sort.Strings(added)
	return added, nil
}

// ExpandAll repeatedly expands every visible class until the reachable
// component is fully visible; it returns the number of expansion rounds.
func (e *Exploration) ExpandAll() int {
	rounds := 0
	for {
		before := len(e.visible)
		for _, c := range e.Visible() {
			_, _ = e.Expand(c)
		}
		rounds++
		if len(e.visible) == before {
			return rounds
		}
	}
}

// Complete reports whether every class of the summary is visible — the
// state equal to the full Schema Summary visualization (Figure 2 step 4).
func (e *Exploration) Complete() bool {
	return len(e.visible) == e.summary.NumClasses()
}

// Add makes an arbitrary class visible without requiring adjacency (the
// UI lets users add disconnected classes too).
func (e *Exploration) Add(classIRI string) error {
	if _, ok := e.summary.NodeByIRI(classIRI); !ok {
		return fmt.Errorf("schema: unknown class %s", classIRI)
	}
	e.visible[classIRI] = true
	return nil
}
