// Package schema implements the Schema Summary: H-BOLD's pseudograph
// representation of the instantiated classes of a Linked Data source
// [Benedetti, Po & Bergamaschi, ISWC 2014]. Nodes are classes annotated
// with instance counts and datatype attributes; arcs are object
// properties between classes annotated with occurrence counts.
//
// The package also implements the presentation-layer exploration
// operations of Figure 2: focusing on a class, iteratively expanding its
// connections, and reporting the percentage of instances covered by the
// visible subgraph.
package schema

import (
	"fmt"
	"sort"

	"repro/internal/extraction"
)

// Summary is the Schema Summary pseudograph.
type Summary struct {
	// Dataset is the endpoint URL the summary describes.
	Dataset string `json:"dataset"`
	// Nodes are the instantiated classes, sorted by descending instances.
	Nodes []Node `json:"nodes"`
	// Edges are the object properties between classes. Parallel edges
	// (different properties between the same pair) are kept distinct —
	// the Schema Summary is a pseudograph.
	Edges []Edge `json:"edges"`
	// TotalInstances is the sum of instance counts over all classes.
	TotalInstances int `json:"totalInstances"`
	// Triples is the source's triple count, carried from the index.
	Triples int `json:"triples"`

	nodeByIRI map[string]int
}

// Node is one class of the Schema Summary.
type Node struct {
	// IRI identifies the class.
	IRI string `json:"iri"`
	// Label is the display name.
	Label string `json:"label"`
	// Instances is the class's instance count.
	Instances int `json:"instances"`
	// Attributes are the datatype properties of the class.
	Attributes []extraction.PropertyCount `json:"attributes"`
}

// Edge is one object property arc between two classes.
type Edge struct {
	// From and To are class IRIs (domain and range).
	From string `json:"from"`
	To   string `json:"to"`
	// Property is the object property IRI.
	Property string `json:"property"`
	// Label is the property display name.
	Label string `json:"label"`
	// Count is the number of instance-level links.
	Count int `json:"count"`
}

// Build derives the Schema Summary from an extraction index.
func Build(ix *extraction.Index) *Summary {
	s := &Summary{Dataset: ix.Endpoint, Triples: ix.Triples}
	for _, c := range ix.Classes {
		s.Nodes = append(s.Nodes, Node{
			IRI: c.IRI, Label: c.Label, Instances: c.Instances,
			Attributes: c.DataProperties,
		})
		s.TotalInstances += c.Instances
	}
	known := make(map[string]bool, len(s.Nodes))
	for _, n := range s.Nodes {
		known[n.IRI] = true
	}
	for _, c := range ix.Classes {
		for _, op := range c.ObjectProperties {
			if !known[op.Target] {
				continue // targets outside the instantiated classes
			}
			s.Edges = append(s.Edges, Edge{
				From: c.IRI, To: op.Target, Property: op.IRI,
				Label: localName(op.IRI), Count: op.Count,
			})
		}
	}
	sort.Slice(s.Edges, func(i, j int) bool {
		a, b := s.Edges[i], s.Edges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Property < b.Property
	})
	s.reindex()
	return s
}

func (s *Summary) reindex() {
	s.nodeByIRI = make(map[string]int, len(s.Nodes))
	for i, n := range s.Nodes {
		s.nodeByIRI[n.IRI] = i
	}
}

// Reindex (re)builds the class-IRI lookup index. Build-constructed
// summaries are indexed already, and a summary decoded from JSON
// indexes itself lazily on first lookup — but that lazy write is not
// goroutine-safe, so anything that decodes a summary once and then
// shares it across goroutines (the snapshot cache) must call Reindex
// before publishing it.
func (s *Summary) Reindex() { s.reindex() }

// NodeByIRI returns the node for a class IRI.
func (s *Summary) NodeByIRI(iri string) (Node, bool) {
	if s.nodeByIRI == nil {
		s.reindex()
	}
	i, ok := s.nodeByIRI[iri]
	if !ok {
		return Node{}, false
	}
	return s.Nodes[i], true
}

// NumClasses returns the number of class nodes.
func (s *Summary) NumClasses() int { return len(s.Nodes) }

// Degree returns the total degree (in + out, counting parallel edges) of
// a class — the measure H-BOLD uses to label clusters.
func (s *Summary) Degree(iri string) int {
	d := 0
	for _, e := range s.Edges {
		if e.From == iri {
			d++
		}
		if e.To == iri {
			d++
		}
	}
	return d
}

// Neighbors returns the classes directly connected to iri (in either
// direction), sorted by IRI, excluding iri itself.
func (s *Summary) Neighbors(iri string) []string {
	seen := map[string]bool{}
	for _, e := range s.Edges {
		if e.From == iri && e.To != iri {
			seen[e.To] = true
		}
		if e.To == iri && e.From != iri {
			seen[e.From] = true
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// EdgesBetween returns the edges with both endpoints inside the given
// class set.
func (s *Summary) EdgesBetween(classes map[string]bool) []Edge {
	var out []Edge
	for _, e := range s.Edges {
		if classes[e.From] && classes[e.To] {
			out = append(out, e)
		}
	}
	return out
}

// InstancesCovered sums the instances of the given classes.
func (s *Summary) InstancesCovered(classes map[string]bool) int {
	total := 0
	for _, n := range s.Nodes {
		if classes[n.IRI] {
			total += n.Instances
		}
	}
	return total
}

// CoveragePercent is the share of all instances covered by the classes,
// the number Figure 2 shows the user at every expansion step.
func (s *Summary) CoveragePercent(classes map[string]bool) float64 {
	if s.TotalInstances == 0 {
		return 0
	}
	return 100 * float64(s.InstancesCovered(classes)) / float64(s.TotalInstances)
}

func localName(iri string) string {
	for i := len(iri) - 1; i >= 0; i-- {
		if iri[i] == '#' || iri[i] == '/' {
			return iri[i+1:]
		}
	}
	return iri
}

// Validate checks structural invariants (every edge endpoint is a node,
// counts non-negative); it returns the first violation.
func (s *Summary) Validate() error {
	known := map[string]bool{}
	for _, n := range s.Nodes {
		if n.Instances < 0 {
			return fmt.Errorf("schema: node %s has negative instances", n.IRI)
		}
		if known[n.IRI] {
			return fmt.Errorf("schema: duplicate node %s", n.IRI)
		}
		known[n.IRI] = true
	}
	for _, e := range s.Edges {
		if !known[e.From] || !known[e.To] {
			return fmt.Errorf("schema: edge %s→%s references unknown class", e.From, e.To)
		}
		if e.Count < 0 {
			return fmt.Errorf("schema: edge %s→%s has negative count", e.From, e.To)
		}
	}
	return nil
}
