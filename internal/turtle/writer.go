package turtle

import (
	"sort"
	"strings"

	"repro/internal/rdf"
)

// WriteNTriples serializes the graph in canonical (sorted) N-Triples form.
func WriteNTriples(g *rdf.Graph) string {
	var b strings.Builder
	for _, t := range g.Sorted() {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// WriteTurtle serializes the graph as Turtle using the given prefix map
// (nil means no prefixes). Triples are grouped by subject and predicates
// by object lists, sorted for deterministic output.
func WriteTurtle(g *rdf.Graph, prefixes *rdf.PrefixMap) string {
	var b strings.Builder
	if prefixes != nil {
		for _, p := range prefixes.SortedPrefixes() {
			ns, _ := prefixes.Namespace(p)
			b.WriteString("@prefix ")
			b.WriteString(p)
			b.WriteString(": <")
			b.WriteString(ns)
			b.WriteString("> .\n")
		}
		if len(prefixes.SortedPrefixes()) > 0 {
			b.WriteByte('\n')
		}
	}

	term := func(t rdf.Term) string {
		if prefixes != nil && t.IsIRI() {
			if short, ok := prefixes.Shrink(t.Value); ok {
				return short
			}
		}
		return t.String()
	}

	// group triples by subject, then predicate
	type poList struct {
		pred rdf.Term
		objs []rdf.Term
	}
	bySubject := make(map[rdf.Term][]poList)
	var subjects []rdf.Term
	sorted := g.Sorted()
	for _, t := range sorted {
		pos := bySubject[t.S]
		if pos == nil {
			subjects = append(subjects, t.S)
		}
		if n := len(pos); n > 0 && pos[n-1].pred == t.P {
			pos[n-1].objs = append(pos[n-1].objs, t.O)
		} else {
			pos = append(pos, poList{pred: t.P, objs: []rdf.Term{t.O}})
		}
		bySubject[t.S] = pos
	}
	sort.Slice(subjects, func(i, j int) bool { return subjects[i].Compare(subjects[j]) < 0 })

	for _, s := range subjects {
		b.WriteString(term(s))
		pos := bySubject[s]
		for i, po := range pos {
			if i == 0 {
				b.WriteByte(' ')
			} else {
				b.WriteString(" ;\n    ")
			}
			// render rdf:type as "a"
			if po.pred.IsIRI() && po.pred.Value == rdf.RDFType {
				b.WriteString("a")
			} else {
				b.WriteString(term(po.pred))
			}
			b.WriteByte(' ')
			for j, o := range po.objs {
				if j > 0 {
					b.WriteString(", ")
				}
				b.WriteString(term(o))
			}
		}
		b.WriteString(" .\n")
	}
	return b.String()
}
