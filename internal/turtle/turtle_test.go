package turtle

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rdf"
)

func TestParseNTriples(t *testing.T) {
	src := `<http://ex/s> <http://ex/p> <http://ex/o> .
<http://ex/s> <http://ex/p> "lit" .
<http://ex/s> <http://ex/p> "tagged"@en .
<http://ex/s> <http://ex/p> "5"^^<http://www.w3.org/2001/XMLSchema#integer> .
_:b1 <http://ex/p> _:b2 .`
	g, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 5 {
		t.Fatalf("Len = %d, want 5", g.Len())
	}
	if !g.Has(rdf.NewTriple(rdf.NewIRI("http://ex/s"), rdf.NewIRI("http://ex/p"), rdf.NewInteger(5))) {
		t.Fatal("typed literal triple missing")
	}
	if !g.Has(rdf.NewTriple(rdf.NewBlank("b1"), rdf.NewIRI("http://ex/p"), rdf.NewBlank("b2"))) {
		t.Fatal("blank node triple missing")
	}
}

func TestParsePrefixesAndA(t *testing.T) {
	src := `@prefix ex: <http://ex/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
ex:alice a ex:Person ;
    rdfs:label "Alice" ;
    ex:knows ex:bob, ex:carol .`
	g, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 4 {
		t.Fatalf("Len = %d, want 4", g.Len())
	}
	if !g.Has(rdf.NewTriple(rdf.NewIRI("http://ex/alice"), rdf.NewIRI(rdf.RDFType), rdf.NewIRI("http://ex/Person"))) {
		t.Fatal("'a' keyword triple missing")
	}
	if !g.Has(rdf.NewTriple(rdf.NewIRI("http://ex/alice"), rdf.NewIRI("http://ex/knows"), rdf.NewIRI("http://ex/carol"))) {
		t.Fatal("object list triple missing")
	}
}

func TestParseSPARQLStylePrefix(t *testing.T) {
	src := `PREFIX ex: <http://ex/>
ex:a ex:p ex:b .`
	g, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
}

func TestParseNumericAndBooleanShorthand(t *testing.T) {
	src := `@prefix ex: <http://ex/> .
ex:x ex:int 42 ;
     ex:neg -7 ;
     ex:dec 3.14 ;
     ex:dbl 1.0e3 ;
     ex:t true ;
     ex:f false .`
	g, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []rdf.Term{
		rdf.NewTypedLiteral("42", rdf.XSDInteger),
		rdf.NewTypedLiteral("-7", rdf.XSDInteger),
		rdf.NewTypedLiteral("3.14", rdf.XSDDecimal),
		rdf.NewTypedLiteral("1.0e3", rdf.XSDDouble),
		rdf.NewBoolean(true),
		rdf.NewBoolean(false),
	}
	for _, w := range want {
		found := false
		for _, tr := range g.Triples() {
			if tr.O == w {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("object %v not found", w)
		}
	}
}

func TestParseAnonymousBlankNode(t *testing.T) {
	src := `@prefix ex: <http://ex/> .
ex:a ex:p [ ex:q "inner" ; ex:r 1 ] .`
	g, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 3 {
		t.Fatalf("Len = %d, want 3", g.Len())
	}
	// the blank node must be shared between the outer and inner triples
	var anon rdf.Term
	for _, tr := range g.Triples() {
		if tr.P.Value == "http://ex/p" {
			anon = tr.O
		}
	}
	if !anon.IsBlank() {
		t.Fatalf("object of ex:p should be blank, got %v", anon)
	}
	found := 0
	for _, tr := range g.Triples() {
		if tr.S == anon {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("inner triples on anon subject = %d, want 2", found)
	}
}

func TestParseBlankSubjectPropertyList(t *testing.T) {
	src := `@prefix ex: <http://ex/> .
[ ex:p "v" ] .`
	g, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
}

func TestParseCollection(t *testing.T) {
	src := `@prefix ex: <http://ex/> .
ex:s ex:list (ex:a ex:b) .`
	g, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// head: s list b1. b1 first a. b1 rest b2. b2 first b. b2 rest nil. = 5
	if g.Len() != 5 {
		t.Fatalf("Len = %d, want 5", g.Len())
	}
	nilTerm := rdf.NewIRI(rdf.RDFNS + "nil")
	foundNil := false
	for _, tr := range g.Triples() {
		if tr.O == nilTerm {
			foundNil = true
		}
	}
	if !foundNil {
		t.Fatal("collection must terminate in rdf:nil")
	}
}

func TestParseEmptyCollection(t *testing.T) {
	src := `@prefix ex: <http://ex/> .
ex:s ex:list () .`
	g, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
	if g.Triples()[0].O != rdf.NewIRI(rdf.RDFNS+"nil") {
		t.Fatalf("empty collection should be rdf:nil, got %v", g.Triples()[0].O)
	}
}

func TestParseEscapes(t *testing.T) {
	src := `<http://ex/s> <http://ex/p> "a\"b\ncé" .`
	g, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	got := g.Triples()[0].O.Value
	if got != "a\"b\ncé" {
		t.Fatalf("escaped literal = %q", got)
	}
}

func TestParseLongString(t *testing.T) {
	src := `@prefix ex: <http://ex/> .
ex:s ex:p """line one
line "two" with quotes""" .`
	g, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	got := g.Triples()[0].O.Value
	if !strings.Contains(got, "line one\nline \"two\"") {
		t.Fatalf("long string = %q", got)
	}
}

func TestParseComments(t *testing.T) {
	src := `# leading comment
@prefix ex: <http://ex/> . # trailing
ex:a ex:p ex:b . # done`
	g, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
}

func TestParseBase(t *testing.T) {
	src := `@base <http://base.org/> .
<rel> <http://ex/p> <http://abs/o> .`
	g, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if g.Triples()[0].S.Value != "http://base.org/rel" {
		t.Fatalf("base not applied: %v", g.Triples()[0].S)
	}
	if g.Triples()[0].O.Value != "http://abs/o" {
		t.Fatalf("absolute IRI wrongly rebased: %v", g.Triples()[0].O)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`<http://ex/s> <http://ex/p>`,               // missing object + dot
		`<http://ex/s> <http://ex/p> "unterminated`, // bad string
		`ex:a ex:p ex:b .`,                          // unknown prefix
		`<http://ex/s> <http://ex/p> "x"^^ .`,       // bad datatype
		`@prefix ex <http://ex/> .`,                 // missing colon... actually "ex <http..." label malformed
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestRoundTripNTriples(t *testing.T) {
	g := rdf.NewGraph()
	g.AddSPO(rdf.NewIRI("http://ex/s"), rdf.NewIRI("http://ex/p"), rdf.NewLangLiteral("v\"al", "en"))
	g.AddSPO(rdf.NewIRI("http://ex/s"), rdf.NewIRI("http://ex/q"), rdf.NewInteger(9))
	g.AddSPO(rdf.NewBlank("x"), rdf.NewIRI("http://ex/p"), rdf.NewIRI("http://ex/o"))
	out := WriteNTriples(g)
	g2, err := Parse(out)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
	if g2.Len() != g.Len() {
		t.Fatalf("round trip lost triples: %d vs %d", g2.Len(), g.Len())
	}
	for _, tr := range g.Triples() {
		if !g2.Has(tr) {
			t.Errorf("missing after round trip: %v", tr)
		}
	}
}

func TestRoundTripTurtle(t *testing.T) {
	pm := rdf.CommonPrefixes()
	g := rdf.NewGraph()
	g.AddSPO(rdf.NewIRI("http://ex/a"), rdf.NewIRI(rdf.RDFType), rdf.NewIRI(rdf.RDFSClass))
	g.AddSPO(rdf.NewIRI("http://ex/a"), rdf.NewIRI(rdf.RDFSLabel), rdf.NewLiteral("A"))
	g.AddSPO(rdf.NewIRI("http://ex/a"), rdf.NewIRI("http://ex/p"), rdf.NewIRI("http://ex/b"))
	out := WriteTurtle(g, pm)
	g2, err := Parse(out)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
	if g2.Len() != g.Len() {
		t.Fatalf("round trip lost triples: %d vs %d\n%s", g2.Len(), g.Len(), out)
	}
	for _, tr := range g.Triples() {
		if !g2.Has(tr) {
			t.Errorf("missing after round trip: %v", tr)
		}
	}
}

// Property: any graph of IRI/plain-literal triples survives an
// N-Triples round trip.
func TestQuickRoundTrip(t *testing.T) {
	f := func(subjects, values []string) bool {
		g := rdf.NewGraph()
		p := rdf.NewIRI("http://ex/p")
		for i, s := range subjects {
			if s == "" {
				continue
			}
			v := "v"
			if i < len(values) {
				v = values[i]
			}
			g.AddSPO(rdf.NewIRI("http://ex/s/"+sanitizeIRI(s)), p, rdf.NewLiteral(v))
		}
		out := WriteNTriples(g)
		g2, err := Parse(out)
		if err != nil {
			return false
		}
		if g2.Len() != g.Len() {
			return false
		}
		for _, tr := range g.Triples() {
			if !g2.Has(tr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func sanitizeIRI(s string) string {
	var b strings.Builder
	for _, r := range s {
		if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') {
			b.WriteRune(r)
		}
	}
	return b.String()
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse should panic on bad input")
		}
	}()
	MustParse("not turtle at all <<<")
}
