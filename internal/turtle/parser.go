// Package turtle implements a parser and serializer for the Turtle and
// N-Triples RDF serialization formats.
//
// The supported Turtle subset covers everything the rest of the system
// emits or consumes: @prefix / PREFIX directives, @base, prefixed names,
// IRIs, the "a" keyword, predicate lists (";"), object lists (","), blank
// node labels, anonymous blank nodes ("[ ... ]"), string literals with
// escapes (single- and triple-quoted), language tags, datatype annotations,
// numeric shorthand (integer, decimal, double) and boolean shorthand.
// RDF collections ("( ... )") are expanded to rdf:first/rdf:rest chains.
package turtle

import (
	"fmt"
	"strings"
	"unicode/utf8"

	"repro/internal/rdf"
)

// Parser holds parsing state for one document.
type Parser struct {
	src      string
	pos      int
	line     int
	prefixes *rdf.PrefixMap
	base     string
	graph    *rdf.Graph
	bnodeSeq int
}

// Parse parses a Turtle (or N-Triples) document and returns the resulting
// graph.
func Parse(src string) (*rdf.Graph, error) {
	p := &Parser{
		src:      src,
		line:     1,
		prefixes: rdf.NewPrefixMap(),
		graph:    rdf.NewGraph(),
	}
	if err := p.run(); err != nil {
		return nil, err
	}
	return p.graph, nil
}

// MustParse parses src and panics on error. Intended for fixtures in tests
// and generators.
func MustParse(src string) *rdf.Graph {
	g, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return g
}

func (p *Parser) errf(format string, args ...any) error {
	return fmt.Errorf("turtle: line %d: %s", p.line, fmt.Sprintf(format, args...))
}

func (p *Parser) run() error {
	for {
		p.skipWS()
		if p.eof() {
			return nil
		}
		if err := p.statement(); err != nil {
			return err
		}
	}
}

func (p *Parser) statement() error {
	if p.peekString("@prefix") || p.peekKeyword("PREFIX") {
		return p.prefixDirective()
	}
	if p.peekString("@base") || p.peekKeyword("BASE") {
		return p.baseDirective()
	}
	return p.triples()
}

func (p *Parser) prefixDirective() error {
	atForm := p.peekString("@prefix")
	if atForm {
		p.pos += len("@prefix")
	} else {
		p.pos += len("PREFIX")
	}
	p.skipWS()
	prefix, err := p.prefixLabel()
	if err != nil {
		return err
	}
	p.skipWS()
	iri, err := p.iriRef()
	if err != nil {
		return err
	}
	p.prefixes.Bind(prefix, iri)
	if atForm {
		p.skipWS()
		if !p.consume('.') {
			return p.errf("expected '.' after @prefix directive")
		}
	}
	return nil
}

func (p *Parser) baseDirective() error {
	atForm := p.peekString("@base")
	if atForm {
		p.pos += len("@base")
	} else {
		p.pos += len("BASE")
	}
	p.skipWS()
	iri, err := p.iriRef()
	if err != nil {
		return err
	}
	p.base = iri
	if atForm {
		p.skipWS()
		if !p.consume('.') {
			return p.errf("expected '.' after @base directive")
		}
	}
	return nil
}

func (p *Parser) triples() error {
	subj, err := p.subject()
	if err != nil {
		return err
	}
	p.skipWS()
	// An anonymous blank node may carry its own property list and then
	// terminate immediately: "[ :p :o ] ." is a legal statement.
	if p.peek() == '.' {
		p.pos++
		return nil
	}
	if err := p.predicateObjectList(subj); err != nil {
		return err
	}
	p.skipWS()
	if !p.consume('.') {
		return p.errf("expected '.' to end triples block, found %q", p.rest(12))
	}
	return nil
}

func (p *Parser) predicateObjectList(subj rdf.Term) error {
	for {
		p.skipWS()
		pred, err := p.predicate()
		if err != nil {
			return err
		}
		for {
			p.skipWS()
			obj, err := p.object()
			if err != nil {
				return err
			}
			p.graph.AddSPO(subj, pred, obj)
			p.skipWS()
			if p.peek() == ',' {
				p.pos++
				continue
			}
			break
		}
		p.skipWS()
		if p.peek() == ';' {
			p.pos++
			p.skipWS()
			// trailing ';' before '.' or ']' is allowed
			if c := p.peek(); c == '.' || c == ']' || c == ';' {
				for p.peek() == ';' {
					p.pos++
					p.skipWS()
				}
				return nil
			}
			continue
		}
		return nil
	}
}

func (p *Parser) subject() (rdf.Term, error) {
	p.skipWS()
	switch c := p.peek(); {
	case c == '<':
		iri, err := p.iriRef()
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewIRI(iri), nil
	case c == '_':
		return p.blankLabel()
	case c == '[':
		return p.anonBlank()
	case c == '(':
		return p.collection()
	default:
		name, err := p.prefixedName()
		if err != nil {
			return rdf.Term{}, err
		}
		return name, nil
	}
}

func (p *Parser) predicate() (rdf.Term, error) {
	p.skipWS()
	if p.peek() == 'a' {
		// "a" keyword only when followed by whitespace
		if p.pos+1 < len(p.src) {
			n := p.src[p.pos+1]
			if n == ' ' || n == '\t' || n == '\n' || n == '\r' {
				p.pos++
				return rdf.NewIRI(rdf.RDFType), nil
			}
		}
	}
	if p.peek() == '<' {
		iri, err := p.iriRef()
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewIRI(iri), nil
	}
	return p.prefixedName()
}

func (p *Parser) object() (rdf.Term, error) {
	p.skipWS()
	switch c := p.peek(); {
	case c == '<':
		iri, err := p.iriRef()
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewIRI(iri), nil
	case c == '_':
		return p.blankLabel()
	case c == '[':
		return p.anonBlank()
	case c == '(':
		return p.collection()
	case c == '"' || c == '\'':
		return p.literal()
	case c == '+' || c == '-' || (c >= '0' && c <= '9'):
		return p.numericLiteral()
	case p.peekKeyword("true"):
		p.pos += 4
		return rdf.NewBoolean(true), nil
	case p.peekKeyword("false"):
		p.pos += 5
		return rdf.NewBoolean(false), nil
	default:
		return p.prefixedName()
	}
}

func (p *Parser) anonBlank() (rdf.Term, error) {
	if !p.consume('[') {
		return rdf.Term{}, p.errf("expected '['")
	}
	p.bnodeSeq++
	b := rdf.NewBlank(fmt.Sprintf("anon%d", p.bnodeSeq))
	p.skipWS()
	if p.peek() == ']' {
		p.pos++
		return b, nil
	}
	if err := p.predicateObjectList(b); err != nil {
		return rdf.Term{}, err
	}
	p.skipWS()
	if !p.consume(']') {
		return rdf.Term{}, p.errf("expected ']' to close blank node")
	}
	return b, nil
}

func (p *Parser) collection() (rdf.Term, error) {
	if !p.consume('(') {
		return rdf.Term{}, p.errf("expected '('")
	}
	var items []rdf.Term
	for {
		p.skipWS()
		if p.peek() == ')' {
			p.pos++
			break
		}
		if p.eof() {
			return rdf.Term{}, p.errf("unterminated collection")
		}
		item, err := p.object()
		if err != nil {
			return rdf.Term{}, err
		}
		items = append(items, item)
	}
	nilIRI := rdf.NewIRI(rdf.RDFNS + "nil")
	if len(items) == 0 {
		return nilIRI, nil
	}
	first := rdf.NewIRI(rdf.RDFNS + "first")
	rest := rdf.NewIRI(rdf.RDFNS + "rest")
	var head, prev rdf.Term
	for i, item := range items {
		p.bnodeSeq++
		node := rdf.NewBlank(fmt.Sprintf("list%d", p.bnodeSeq))
		if i == 0 {
			head = node
		} else {
			p.graph.AddSPO(prev, rest, node)
		}
		p.graph.AddSPO(node, first, item)
		prev = node
	}
	p.graph.AddSPO(prev, rest, nilIRI)
	return head, nil
}

func (p *Parser) blankLabel() (rdf.Term, error) {
	if !strings.HasPrefix(p.src[p.pos:], "_:") {
		return rdf.Term{}, p.errf("expected blank node label")
	}
	p.pos += 2
	start := p.pos
	for !p.eof() {
		c := p.src[p.pos]
		if isPNChar(rune(c)) || c == '.' && p.pos+1 < len(p.src) && isPNChar(rune(p.src[p.pos+1])) {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return rdf.Term{}, p.errf("empty blank node label")
	}
	return rdf.NewBlank(p.src[start:p.pos]), nil
}

func (p *Parser) iriRef() (string, error) {
	if !p.consume('<') {
		return "", p.errf("expected '<'")
	}
	var b strings.Builder
	for {
		if p.eof() {
			return "", p.errf("unterminated IRI")
		}
		c := p.src[p.pos]
		if c == '>' {
			p.pos++
			iri := b.String()
			if p.base != "" && !strings.Contains(iri, ":") {
				iri = p.base + iri
			}
			return iri, nil
		}
		if c == '\\' {
			r, err := p.unescape()
			if err != nil {
				return "", err
			}
			b.WriteRune(r)
			continue
		}
		if c == '\n' {
			return "", p.errf("newline in IRI")
		}
		b.WriteByte(c)
		p.pos++
	}
}

func (p *Parser) prefixLabel() (string, error) {
	start := p.pos
	for !p.eof() && p.src[p.pos] != ':' {
		c := p.src[p.pos]
		if c == ' ' || c == '\t' || c == '\n' {
			return "", p.errf("malformed prefix label")
		}
		p.pos++
	}
	if p.eof() {
		return "", p.errf("expected ':' in prefix label")
	}
	label := p.src[start:p.pos]
	p.pos++ // consume ':'
	return label, nil
}

func (p *Parser) prefixedName() (rdf.Term, error) {
	start := p.pos
	for !p.eof() {
		c := p.src[p.pos]
		if c == ':' {
			break
		}
		if !isPNChar(rune(c)) {
			break
		}
		p.pos++
	}
	if p.eof() || p.src[p.pos] != ':' {
		return rdf.Term{}, p.errf("expected prefixed name, found %q", p.rest(12))
	}
	prefix := p.src[start:p.pos]
	p.pos++ // ':'
	lstart := p.pos
	for !p.eof() {
		c := p.src[p.pos]
		if isPNChar(rune(c)) || c == '-' {
			p.pos++
			continue
		}
		// dots are allowed inside local names but not as the final char
		if c == '.' && p.pos+1 < len(p.src) && isPNChar(rune(p.src[p.pos+1])) {
			p.pos++
			continue
		}
		break
	}
	local := p.src[lstart:p.pos]
	ns, ok := p.prefixes.Namespace(prefix)
	if !ok {
		return rdf.Term{}, p.errf("unknown prefix %q", prefix)
	}
	return rdf.NewIRI(ns + local), nil
}

func (p *Parser) literal() (rdf.Term, error) {
	quote := p.src[p.pos]
	long := strings.HasPrefix(p.src[p.pos:], strings.Repeat(string(quote), 3))
	var lex string
	var err error
	if long {
		lex, err = p.longString(quote)
	} else {
		lex, err = p.shortString(quote)
	}
	if err != nil {
		return rdf.Term{}, err
	}
	// suffix: @lang or ^^datatype
	if p.peek() == '@' {
		p.pos++
		start := p.pos
		for !p.eof() {
			c := p.src[p.pos]
			if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '-' {
				p.pos++
				continue
			}
			break
		}
		if p.pos == start {
			return rdf.Term{}, p.errf("empty language tag")
		}
		return rdf.NewLangLiteral(lex, p.src[start:p.pos]), nil
	}
	if strings.HasPrefix(p.src[p.pos:], "^^") {
		p.pos += 2
		var dt string
		if p.peek() == '<' {
			dt, err = p.iriRef()
			if err != nil {
				return rdf.Term{}, err
			}
		} else {
			t, err := p.prefixedName()
			if err != nil {
				return rdf.Term{}, err
			}
			dt = t.Value
		}
		return rdf.NewTypedLiteral(lex, dt), nil
	}
	return rdf.NewLiteral(lex), nil
}

func (p *Parser) shortString(quote byte) (string, error) {
	p.pos++ // opening quote
	var b strings.Builder
	for {
		if p.eof() {
			return "", p.errf("unterminated string")
		}
		c := p.src[p.pos]
		switch c {
		case quote:
			p.pos++
			return b.String(), nil
		case '\\':
			r, err := p.unescape()
			if err != nil {
				return "", err
			}
			b.WriteRune(r)
		case '\n':
			return "", p.errf("newline in single-quoted string")
		default:
			b.WriteByte(c)
			p.pos++
		}
	}
}

func (p *Parser) longString(quote byte) (string, error) {
	p.pos += 3
	closer := strings.Repeat(string(quote), 3)
	var b strings.Builder
	for {
		if p.eof() {
			return "", p.errf("unterminated long string")
		}
		if strings.HasPrefix(p.src[p.pos:], closer) {
			p.pos += 3
			return b.String(), nil
		}
		c := p.src[p.pos]
		if c == '\\' {
			r, err := p.unescape()
			if err != nil {
				return "", err
			}
			b.WriteRune(r)
			continue
		}
		if c == '\n' {
			p.line++
		}
		b.WriteByte(c)
		p.pos++
	}
}

func (p *Parser) unescape() (rune, error) {
	p.pos++ // backslash
	if p.eof() {
		return 0, p.errf("dangling escape")
	}
	c := p.src[p.pos]
	p.pos++
	switch c {
	case 't':
		return '\t', nil
	case 'n':
		return '\n', nil
	case 'r':
		return '\r', nil
	case 'b':
		return '\b', nil
	case 'f':
		return '\f', nil
	case '"':
		return '"', nil
	case '\'':
		return '\'', nil
	case '\\':
		return '\\', nil
	case 'u', 'U':
		n := 4
		if c == 'U' {
			n = 8
		}
		if p.pos+n > len(p.src) {
			return 0, p.errf("truncated \\%c escape", c)
		}
		var v rune
		for i := 0; i < n; i++ {
			d := p.src[p.pos+i]
			v <<= 4
			switch {
			case d >= '0' && d <= '9':
				v |= rune(d - '0')
			case d >= 'a' && d <= 'f':
				v |= rune(d-'a') + 10
			case d >= 'A' && d <= 'F':
				v |= rune(d-'A') + 10
			default:
				return 0, p.errf("bad hex digit %q in unicode escape", d)
			}
		}
		p.pos += n
		if !utf8.ValidRune(v) {
			return 0, p.errf("invalid unicode escape")
		}
		return v, nil
	default:
		return 0, p.errf("unknown escape \\%c", c)
	}
}

func (p *Parser) numericLiteral() (rdf.Term, error) {
	start := p.pos
	if c := p.peek(); c == '+' || c == '-' {
		p.pos++
	}
	digits := 0
	for !p.eof() && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		p.pos++
		digits++
	}
	isDecimal := false
	if !p.eof() && p.src[p.pos] == '.' {
		// a '.' is part of the number only if followed by a digit
		if p.pos+1 < len(p.src) && p.src[p.pos+1] >= '0' && p.src[p.pos+1] <= '9' {
			isDecimal = true
			p.pos++
			for !p.eof() && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
				p.pos++
				digits++
			}
		}
	}
	isDouble := false
	if !p.eof() && (p.src[p.pos] == 'e' || p.src[p.pos] == 'E') {
		isDouble = true
		p.pos++
		if c := p.peek(); c == '+' || c == '-' {
			p.pos++
		}
		for !p.eof() && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
			p.pos++
		}
	}
	if digits == 0 {
		return rdf.Term{}, p.errf("malformed numeric literal")
	}
	lex := p.src[start:p.pos]
	switch {
	case isDouble:
		return rdf.NewTypedLiteral(lex, rdf.XSDDouble), nil
	case isDecimal:
		return rdf.NewTypedLiteral(lex, rdf.XSDDecimal), nil
	default:
		return rdf.NewTypedLiteral(lex, rdf.XSDInteger), nil
	}
}

// --- low-level scanning ---

func (p *Parser) eof() bool { return p.pos >= len(p.src) }

func (p *Parser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

func (p *Parser) consume(c byte) bool {
	if p.peek() == c {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) peekString(s string) bool {
	return strings.HasPrefix(p.src[p.pos:], s)
}

// peekKeyword matches a case-sensitive keyword followed by a non-name char.
func (p *Parser) peekKeyword(kw string) bool {
	if !strings.HasPrefix(p.src[p.pos:], kw) {
		return false
	}
	end := p.pos + len(kw)
	if end >= len(p.src) {
		return true
	}
	return !isPNChar(rune(p.src[end]))
}

func (p *Parser) skipWS() {
	for !p.eof() {
		c := p.src[p.pos]
		switch c {
		case ' ', '\t', '\r':
			p.pos++
		case '\n':
			p.line++
			p.pos++
		case '#':
			for !p.eof() && p.src[p.pos] != '\n' {
				p.pos++
			}
		default:
			return
		}
	}
}

func (p *Parser) rest(n int) string {
	if p.pos+n > len(p.src) {
		n = len(p.src) - p.pos
	}
	return p.src[p.pos : p.pos+n]
}

func isPNChar(r rune) bool {
	return r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
		(r >= '0' && r <= '9') || r >= utf8.RuneSelf
}
