package layout

import "math"

// BundledLeaf is a leaf placed on the bundling circle.
type BundledLeaf struct {
	// Node is the hierarchy leaf (a class).
	Node *Tree
	// Angle is the placement angle (radians, 12 o'clock clockwise).
	Angle float64
	// Pos is the Cartesian position on the circle.
	Pos Point
}

// BundledEdge is one adjacency rendered as a bundled spline.
type BundledEdge struct {
	// From and To are indexes into the Leaves slice.
	From, To int
	// Points sample the B-spline path from leaf to leaf.
	Points []Point
}

// EdgeBundling is the hierarchical edge bundling layout of Figure 7
// [Holten, IEEE TVCG 2006]: leaves sit on an invisible circumference and
// adjacency edges are routed along the hierarchy, pulled together by the
// bundling strength beta.
type EdgeBundling struct {
	// Leaves are the classes on the circle, in hierarchy order.
	Leaves []BundledLeaf
	// Edges are the bundled adjacency splines.
	Edges []BundledEdge
}

// Bundle computes the layout. The hierarchy groups leaves (classes)
// under internal nodes (clusters, then the root); adjacency pairs are
// given as Ref pairs of leaves. beta in [0,1] is the bundling strength
// (Holten recommends ≈0.85, which the renderer uses); samples is the
// number of points per spline (≥2).
func Bundle(root *Tree, adjacency [][2]string, cx, cy, radius, beta float64, samples int) *EdgeBundling {
	if samples < 2 {
		samples = 32
	}
	if beta < 0 {
		beta = 0
	}
	if beta > 1 {
		beta = 1
	}
	leaves := root.Leaves()
	n := len(leaves)
	eb := &EdgeBundling{}
	if n == 0 {
		return eb
	}

	// radial leaf placement in hierarchy order
	leafIdx := map[string]int{}
	for i, l := range leaves {
		ang := 2 * math.Pi * float64(i) / float64(n)
		eb.Leaves = append(eb.Leaves, BundledLeaf{
			Node:  l,
			Angle: ang,
			Pos:   ArcPoint(cx, cy, ang, radius),
		})
		leafIdx[l.Ref] = i
	}

	// internal node positions: radius shrinks towards the root (the root
	// sits at the center); each internal node at the angular centroid of
	// its leaves
	depth := root.Depth()
	pos := map[*Tree]Point{}
	var placeInternal func(t *Tree, level int)
	placeInternal = func(t *Tree, level int) {
		if t.IsLeaf() {
			pos[t] = eb.Leaves[leafIdx[t.Ref]].Pos
			return
		}
		for _, c := range t.Children {
			placeInternal(c, level+1)
		}
		// centroid of descendant leaves, pulled towards the center
		ls := t.Leaves()
		sx, sy := 0.0, 0.0
		for _, l := range ls {
			p := eb.Leaves[leafIdx[l.Ref]].Pos
			sx += p.X
			sy += p.Y
		}
		sx /= float64(len(ls))
		sy /= float64(len(ls))
		// scale distance from center by level/depth
		f := float64(level) / float64(depth)
		pos[t] = Point{X: cx + (sx-cx)*f, Y: cy + (sy-cy)*f}
	}
	placeInternal(root, 0)

	// parent pointers for LCA routing
	parent := map[*Tree]*Tree{}
	var walk func(t *Tree)
	walk = func(t *Tree) {
		for _, c := range t.Children {
			parent[c] = t
			walk(c)
		}
	}
	walk(root)

	for _, pair := range adjacency {
		i, okI := leafIdx[pair[0]]
		j, okJ := leafIdx[pair[1]]
		if !okI || !okJ || i == j {
			continue
		}
		path := hierarchyPath(leaves[i], leaves[j], parent)
		ctrl := make([]Point, len(path))
		for k, t := range path {
			ctrl[k] = pos[t]
		}
		ctrl = straighten(ctrl, beta)
		eb.Edges = append(eb.Edges, BundledEdge{
			From: i, To: j,
			Points: sampleBSpline(ctrl, samples),
		})
	}
	return eb
}

// hierarchyPath returns the node path u → … → LCA → … → v.
func hierarchyPath(u, v *Tree, parent map[*Tree]*Tree) []*Tree {
	anc := map[*Tree]int{}
	d := 0
	for t := u; t != nil; t = parent[t] {
		anc[t] = d
		d++
	}
	var down []*Tree
	var lca *Tree
	for t := v; t != nil; t = parent[t] {
		if _, ok := anc[t]; ok {
			lca = t
			break
		}
		down = append(down, t)
	}
	var up []*Tree
	for t := u; t != lca; t = parent[t] {
		up = append(up, t)
	}
	path := append(up, lca)
	for i := len(down) - 1; i >= 0; i-- {
		path = append(path, down[i])
	}
	return path
}

// straighten applies Holten's bundling-strength interpolation: each
// control point is blended between the hierarchy route (beta = 1) and the
// straight line between the endpoints (beta = 0).
func straighten(ctrl []Point, beta float64) []Point {
	k := len(ctrl)
	if k < 3 {
		return ctrl
	}
	out := make([]Point, k)
	p0, pk := ctrl[0], ctrl[k-1]
	for i, p := range ctrl {
		t := float64(i) / float64(k-1)
		lx := p0.X + t*(pk.X-p0.X)
		ly := p0.Y + t*(pk.Y-p0.Y)
		out[i] = Point{
			X: beta*p.X + (1-beta)*lx,
			Y: beta*p.Y + (1-beta)*ly,
		}
	}
	return out
}

// sampleBSpline samples a uniform cubic B-spline through the control
// points (endpoints clamped by triplication), returning `samples` points
// from the first to the last control point.
func sampleBSpline(ctrl []Point, samples int) []Point {
	if len(ctrl) == 1 {
		return []Point{ctrl[0], ctrl[0]}
	}
	if len(ctrl) == 2 {
		// straight segment
		out := make([]Point, samples)
		for i := range out {
			t := float64(i) / float64(samples-1)
			out[i] = Point{
				X: ctrl[0].X + t*(ctrl[1].X-ctrl[0].X),
				Y: ctrl[0].Y + t*(ctrl[1].Y-ctrl[0].Y),
			}
		}
		return out
	}
	// clamp ends
	pts := make([]Point, 0, len(ctrl)+4)
	pts = append(pts, ctrl[0], ctrl[0])
	pts = append(pts, ctrl...)
	pts = append(pts, ctrl[len(ctrl)-1], ctrl[len(ctrl)-1])

	nSeg := len(pts) - 3
	out := make([]Point, samples)
	for i := 0; i < samples; i++ {
		u := float64(i) / float64(samples-1) * float64(nSeg)
		seg := int(u)
		if seg >= nSeg {
			seg = nSeg - 1
		}
		t := u - float64(seg)
		out[i] = bsplinePoint(pts[seg], pts[seg+1], pts[seg+2], pts[seg+3], t)
	}
	return out
}

// bsplinePoint evaluates the uniform cubic B-spline basis on one segment.
func bsplinePoint(p0, p1, p2, p3 Point, t float64) Point {
	t2 := t * t
	t3 := t2 * t
	b0 := (1 - 3*t + 3*t2 - t3) / 6
	b1 := (4 - 6*t2 + 3*t3) / 6
	b2 := (1 + 3*t + 3*t2 - 3*t3) / 6
	b3 := t3 / 6
	return Point{
		X: b0*p0.X + b1*p1.X + b2*p2.X + b3*p3.X,
		Y: b0*p0.Y + b1*p1.Y + b2*p2.Y + b3*p3.Y,
	}
}
