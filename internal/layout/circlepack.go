package layout

import (
	"math"
	"sort"
)

// PackedCircle is one circle of the circle-packing layout.
type PackedCircle struct {
	// Node is the hierarchy node this circle renders.
	Node *Tree
	// Depth is 0 for the dataset circle, 1 for clusters, 2 for classes
	// (Figure 6: inner circles are classes, intermediate circles are
	// clusters, the external circle is the entire dataset).
	Depth int
	// Circle is the geometry.
	Circle Circle
}

// CirclePack computes the circle-packing layout of Figure 6: each branch
// of the hierarchy is a circle containing its sub-branch circles, with
// leaf areas proportional to effective values. The layout is centered at
// (cx, cy) with the root scaled to the given radius.
func CirclePack(root *Tree, cx, cy, radius, padding float64) []PackedCircle {
	// Bottom-up: pack each node's children in local coordinates, giving
	// the node its enclosing radius; then top-down scale into place.
	type packed struct {
		tree     *Tree
		r        float64
		children []*packed
		// local position within the parent's enclosing circle
		x, y float64
	}
	var build func(t *Tree) *packed
	build = func(t *Tree) *packed {
		p := &packed{tree: t}
		if t.IsLeaf() {
			v := subtreeValue(t)
			if v <= 0 {
				v = 1
			}
			p.r = math.Sqrt(v)
			return p
		}
		vals := effectiveValues(t)
		for i, c := range t.Children {
			cp := build(c)
			if c.IsLeaf() {
				v := vals[i]
				if v <= 0 {
					v = 1
				}
				cp.r = math.Sqrt(v)
			}
			cp.r += padding
			p.children = append(p.children, cp)
		}
		// pack children (sorted big-first for density)
		order := make([]int, len(p.children))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			return p.children[order[a]].r > p.children[order[b]].r
		})
		circles := make([]Circle, len(order))
		sorted := make([]*packed, len(order))
		for i, idx := range order {
			sorted[i] = p.children[idx]
			circles[i] = Circle{R: sorted[i].r}
		}
		packSiblings(circles)
		enc := encloseCircles(circles)
		for i, c := range circles {
			sorted[i].x = c.X - enc.X
			sorted[i].y = c.Y - enc.Y
		}
		p.r = enc.R + padding
		// undo the padding added to child radii for rendering
		for _, c := range p.children {
			c.r -= padding
		}
		return p
	}
	rootP := build(root)

	var out []PackedCircle
	var emit func(p *packed, x, y, scale float64, depth int)
	emit = func(p *packed, x, y, scale float64, depth int) {
		out = append(out, PackedCircle{
			Node: p.tree, Depth: depth,
			Circle: Circle{X: x, Y: y, R: p.r * scale},
		})
		for _, c := range p.children {
			emit(c, x+c.x*scale, y+c.y*scale, scale, depth+1)
		}
	}
	scale := 1.0
	if rootP.r > 0 {
		scale = radius / rootP.r
	}
	emit(rootP, cx, cy, scale, 0)
	return out
}

// packSiblings positions the circles (radii pre-set) so they are
// mutually tangent without overlap, following the front-chain algorithm
// of d3-hierarchy [Wang et al., Visualization of large hierarchical data
// by circle packing, 2006].
func packSiblings(circles []Circle) {
	n := len(circles)
	if n == 0 {
		return
	}
	circles[0].X, circles[0].Y = 0, 0
	if n == 1 {
		return
	}
	// first two circles tangent around the origin
	circles[0].X = -circles[1].R
	circles[1].X = circles[0].R
	circles[1].Y = 0
	if n == 2 {
		return
	}
	// third circle tangent to the first two
	place(&circles[2], circles[0], circles[1])

	// circular doubly-linked front chain over circle indexes:
	// 0 → 1 → 2 → 0
	next := make([]int, n)
	prev := make([]int, n)
	next[0], next[1], next[2] = 1, 2, 0
	prev[0], prev[1], prev[2] = 2, 0, 1

	a, b := 0, 1
	for i := 3; i < n; i++ {
	retry:
		place(&circles[i], circles[b], circles[a])
		// scan the chain outward in both directions for an intersection,
		// preferring the lighter side (d3's sj/sk heuristic)
		j, k := next[b], prev[a]
		sj, sk := circles[b].R, circles[a].R
		for {
			if sj <= sk {
				if intersects(circles[j], circles[i]) {
					b = j
					next[a], prev[b] = b, a
					goto retry
				}
				sj += circles[j].R
				j = next[j]
			} else {
				if intersects(circles[k], circles[i]) {
					a = k
					next[a], prev[b] = b, a
					goto retry
				}
				sk += circles[k].R
				k = prev[k]
			}
			if j == next[k] {
				break
			}
		}
		// insert i between a and b
		prev[i], next[i] = a, b
		next[a], prev[b] = i, i
		// move the anchor to the chain pair closest to the origin
		bestA, bestScore := a, chainScore(circles[a], circles[next[a]])
		for c := next[i]; c != a; c = next[c] {
			if s := chainScore(circles[c], circles[next[c]]); s < bestScore {
				bestA, bestScore = c, s
			}
		}
		a = bestA
		b = next[a]
	}
}

// place positions c tangent to circles b and a, orienting it outside the
// b→a axis (d3's place(b, a, c)).
func place(c *Circle, a, b Circle) {
	dx, dy := b.X-a.X, b.Y-a.Y
	d2 := dx*dx + dy*dy
	if d2 == 0 {
		c.X = a.X + a.R + c.R
		c.Y = a.Y
		return
	}
	a2 := (a.R + c.R) * (a.R + c.R)
	b2 := (b.R + c.R) * (b.R + c.R)
	if a2 > b2 {
		x := (d2 + b2 - a2) / (2 * d2)
		y := math.Sqrt(math.Max(0, b2/d2-x*x))
		c.X = b.X - x*dx - y*dy
		c.Y = b.Y - x*dy + y*dx
	} else {
		x := (d2 + a2 - b2) / (2 * d2)
		y := math.Sqrt(math.Max(0, a2/d2-x*x))
		c.X = a.X + x*dx - y*dy
		c.Y = a.Y + x*dy + y*dx
	}
}

func intersects(a, b Circle) bool {
	dr := a.R + b.R - 1e-6
	dx, dy := b.X-a.X, b.Y-a.Y
	return dr > 0 && dr*dr > dx*dx+dy*dy
}

// chainScore is the squared distance of the weighted midpoint of a chain
// pair from the origin (d3's next-placement heuristic).
func chainScore(a, b Circle) float64 {
	ab := a.R + b.R
	dx := (a.X*b.R + b.X*a.R) / ab
	dy := (a.Y*b.R + b.Y*a.R) / ab
	return dx*dx + dy*dy
}

// encloseCircles returns a circle containing all the given circles. It
// uses an iterative move-toward-farthest refinement and guarantees
// containment by construction.
func encloseCircles(circles []Circle) Circle {
	if len(circles) == 0 {
		return Circle{}
	}
	// start at the weighted centroid
	cx, cy, wsum := 0.0, 0.0, 0.0
	for _, c := range circles {
		w := c.R * c.R
		if w <= 0 {
			w = 1e-9
		}
		cx += c.X * w
		cy += c.Y * w
		wsum += w
	}
	cx /= wsum
	cy /= wsum
	// iteratively shift towards the farthest circle
	for iter := 0; iter < 200; iter++ {
		fi, fd := -1, -1.0
		for i, c := range circles {
			d := math.Hypot(c.X-cx, c.Y-cy) + c.R
			if d > fd {
				fd = d
				fi = i
			}
		}
		f := circles[fi]
		d := math.Hypot(f.X-cx, f.Y-cy)
		if d < 1e-12 {
			break
		}
		step := 0.5 / float64(iter+1)
		cx += (f.X - cx) / d * d * step
		cy += (f.Y - cy) / d * d * step
	}
	r := 0.0
	for _, c := range circles {
		if d := math.Hypot(c.X-cx, c.Y-cy) + c.R; d > r {
			r = d
		}
	}
	return Circle{X: cx, Y: cy, R: r}
}
