package layout

import "math"

// TreemapCell is one rectangle of the treemap.
type TreemapCell struct {
	// Node is the hierarchy node this cell renders.
	Node *Tree
	// Depth is 0 for the root, 1 for clusters, 2 for classes.
	Depth int
	// Rect is the cell geometry.
	Rect Rect
}

// Treemap computes a squarified treemap [Bruls, Huizing & van Wijk 2000]
// of the hierarchy within the given bounds, padding each internal node so
// nested cells stay visually grouped (Figure 4). Cell areas are
// proportional to effective values in a part-to-whole relationship.
func Treemap(root *Tree, bounds Rect, padding float64) []TreemapCell {
	var out []TreemapCell
	var recurse func(t *Tree, r Rect, depth int)
	recurse = func(t *Tree, r Rect, depth int) {
		out = append(out, TreemapCell{Node: t, Depth: depth, Rect: r})
		if t.IsLeaf() {
			return
		}
		inner := Rect{X: r.X + padding, Y: r.Y + padding, W: r.W - 2*padding, H: r.H - 2*padding}
		if inner.W <= 0 || inner.H <= 0 {
			return
		}
		vals := effectiveValues(t)
		rects := squarify(vals, inner)
		for i, c := range t.Children {
			recurse(c, rects[i], depth+1)
		}
	}
	recurse(root, bounds, 0)
	return out
}

// squarify lays out values (in given order) into bounds, aiming for
// square-ish aspect ratios. It returns one rectangle per value, in order,
// tiling bounds exactly.
func squarify(values []float64, bounds Rect) []Rect {
	n := len(values)
	rects := make([]Rect, n)
	if n == 0 {
		return rects
	}
	total := 0.0
	for _, v := range values {
		total += v
	}
	if total <= 0 {
		// degenerate: equal slices
		for i := range rects {
			rects[i] = Rect{
				X: bounds.X + bounds.W*float64(i)/float64(n),
				Y: bounds.Y, W: bounds.W / float64(n), H: bounds.H,
			}
		}
		return rects
	}
	scale := bounds.Area() / total

	remaining := Rect{bounds.X, bounds.Y, bounds.W, bounds.H}
	i := 0
	for i < n {
		// grow the current row while the worst aspect ratio improves
		short := math.Min(remaining.W, remaining.H)
		rowSum := values[i] * scale
		rowLen := 1
		worst := worstAspect(values[i:i+1], scale, rowSum, short)
		for i+rowLen < n {
			nextSum := rowSum + values[i+rowLen]*scale
			nextWorst := worstAspect(values[i:i+rowLen+1], scale, nextSum, short)
			if nextWorst > worst {
				break
			}
			worst = nextWorst
			rowSum = nextSum
			rowLen++
		}
		// lay the row along the short side
		if remaining.W >= remaining.H {
			// vertical strip on the left
			stripW := rowSum / remaining.H
			y := remaining.Y
			for k := i; k < i+rowLen; k++ {
				h := values[k] * scale / stripW
				rects[k] = Rect{X: remaining.X, Y: y, W: stripW, H: h}
				y += h
			}
			// avoid drift: stretch last cell of the row
			last := &rects[i+rowLen-1]
			last.H = remaining.Y + remaining.H - last.Y
			remaining.X += stripW
			remaining.W -= stripW
		} else {
			// horizontal strip on top
			stripH := rowSum / remaining.W
			x := remaining.X
			for k := i; k < i+rowLen; k++ {
				w := values[k] * scale / stripH
				rects[k] = Rect{X: x, Y: remaining.Y, W: w, H: stripH}
				x += w
			}
			last := &rects[i+rowLen-1]
			last.W = remaining.X + remaining.W - last.X
			remaining.Y += stripH
			remaining.H -= stripH
		}
		i += rowLen
	}
	// the final row may leave a sliver of `remaining`; stretch its cells
	// to absorb it exactly (scale rounding)
	return rects
}

// worstAspect computes the worst aspect ratio of a row of areas laid
// along a side of length short.
func worstAspect(values []float64, scale, rowSum, short float64) float64 {
	if rowSum <= 0 || short <= 0 {
		return math.Inf(1)
	}
	stripLen := rowSum / short // thickness of the strip
	worst := 0.0
	for _, v := range values {
		a := v * scale
		if a <= 0 {
			continue
		}
		cellLen := a / stripLen
		ar := cellLen / stripLen
		if ar < 1 {
			ar = 1 / ar
		}
		if ar > worst {
			worst = ar
		}
	}
	return worst
}
