package layout

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// clusterTree builds a dataset→clusters→classes hierarchy like the ones
// viz feeds the layouts.
func clusterTree() *Tree {
	return &Tree{
		Label: "dataset",
		Children: []*Tree{
			{Label: "c1", Children: []*Tree{
				{Label: "A", Value: 100, Ref: "http://x/A"},
				{Label: "B", Value: 300, Ref: "http://x/B"},
				{Label: "C", Value: 50, Ref: "http://x/C"},
			}},
			{Label: "c2", Children: []*Tree{
				{Label: "D", Value: 500, Ref: "http://x/D"},
				{Label: "E", Value: 50, Ref: "http://x/E"},
			}},
			{Label: "c3", Children: []*Tree{
				{Label: "F", Value: 0, Ref: "http://x/F"}, // no quantity
				{Label: "G", Value: 200, Ref: "http://x/G"},
			}},
		},
	}
}

func TestTreeHelpers(t *testing.T) {
	tr := clusterTree()
	if tr.Depth() != 3 {
		t.Fatalf("Depth = %d", tr.Depth())
	}
	if n := tr.CountNodes(); n != 11 {
		t.Fatalf("CountNodes = %d", n)
	}
	leaves := tr.Leaves()
	if len(leaves) != 7 {
		t.Fatalf("Leaves = %d", len(leaves))
	}
	if v := subtreeValue(tr); v != 1200 {
		t.Fatalf("subtreeValue = %v", v)
	}
}

func TestEffectiveValuesEqualShare(t *testing.T) {
	tr := clusterTree()
	c3 := tr.Children[2]
	vals := effectiveValues(c3)
	// F has no quantity → it gets the mean of positive siblings (200)
	if vals[0] != 200 || vals[1] != 200 {
		t.Fatalf("effectiveValues = %v", vals)
	}
	// all-zero children → all equal 1
	allZero := &Tree{Children: []*Tree{{Label: "x"}, {Label: "y"}}}
	vals = effectiveValues(allZero)
	if vals[0] != 1 || vals[1] != 1 {
		t.Fatalf("all-zero effectiveValues = %v", vals)
	}
}

func TestSortChildrenByValue(t *testing.T) {
	tr := clusterTree()
	tr.SortChildrenByValue()
	if tr.Children[0].Label != "c2" { // 550
		t.Fatalf("first cluster = %s", tr.Children[0].Label)
	}
	if tr.Children[0].Children[0].Label != "D" {
		t.Fatalf("first class = %s", tr.Children[0].Children[0].Label)
	}
}

// --- treemap ---

func TestTreemapAreasProportional(t *testing.T) {
	tr := clusterTree()
	bounds := Rect{0, 0, 1000, 600}
	cells := Treemap(tr, bounds, 0)
	areaOf := map[string]float64{}
	for _, c := range cells {
		areaOf[c.Node.Label] = c.Rect.Area()
	}
	// root covers everything
	if math.Abs(areaOf["dataset"]-bounds.Area()) > 1 {
		t.Fatalf("root area = %v", areaOf["dataset"])
	}
	// class areas proportional to values: B(300) = 3 × A(100)
	if r := areaOf["B"] / areaOf["A"]; math.Abs(r-3) > 0.01 {
		t.Fatalf("B/A area ratio = %v, want 3", r)
	}
	// cluster area is the sum of its classes (padding 0)
	sum := areaOf["A"] + areaOf["B"] + areaOf["C"]
	if math.Abs(areaOf["c1"]-sum) > 1 {
		t.Fatalf("cluster c1 area %v != class sum %v", areaOf["c1"], sum)
	}
}

func TestTreemapCellsNested(t *testing.T) {
	tr := clusterTree()
	bounds := Rect{0, 0, 800, 800}
	cells := Treemap(tr, bounds, 4)
	byNode := map[*Tree]Rect{}
	for _, c := range cells {
		byNode[c.Node] = c.Rect
	}
	var check func(n *Tree)
	check = func(n *Tree) {
		for _, c := range n.Children {
			if !byNode[n].ContainsRect(byNode[c]) {
				t.Fatalf("child %s (%v) escapes parent %s (%v)", c.Label, byNode[c], n.Label, byNode[n])
			}
			check(c)
		}
	}
	check(tr)
}

func TestTreemapSiblingsDisjoint(t *testing.T) {
	tr := clusterTree()
	cells := Treemap(tr, Rect{0, 0, 1000, 700}, 0)
	var classCells []TreemapCell
	for _, c := range cells {
		if c.Depth == 2 {
			classCells = append(classCells, c)
		}
	}
	for i := 0; i < len(classCells); i++ {
		for j := i + 1; j < len(classCells); j++ {
			a, b := classCells[i].Rect, classCells[j].Rect
			overlapW := math.Min(a.X+a.W, b.X+b.W) - math.Max(a.X, b.X)
			overlapH := math.Min(a.Y+a.H, b.Y+b.H) - math.Max(a.Y, b.Y)
			if overlapW > 1e-6 && overlapH > 1e-6 {
				t.Fatalf("cells %s and %s overlap", classCells[i].Node.Label, classCells[j].Node.Label)
			}
		}
	}
}

func TestTreemapAspectReasonable(t *testing.T) {
	// squarified treemaps should avoid extreme slivers on balanced data
	tr := &Tree{Label: "r"}
	for i := 0; i < 12; i++ {
		tr.Children = append(tr.Children, &Tree{Label: fmt.Sprintf("n%d", i), Value: 100})
	}
	cells := Treemap(tr, Rect{0, 0, 900, 600}, 0)
	for _, c := range cells[1:] {
		ar := c.Rect.W / c.Rect.H
		if ar < 1 {
			ar = 1 / ar
		}
		if ar > 4 {
			t.Fatalf("cell %s aspect %v too extreme", c.Node.Label, ar)
		}
	}
}

// Property: squarify tiles the bounds exactly (areas sum, no escape).
func TestQuickSquarifyPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(15)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = 1 + rng.Float64()*100
		}
		bounds := Rect{0, 0, 100 + rng.Float64()*900, 100 + rng.Float64()*900}
		rects := squarify(vals, bounds)
		sum := 0.0
		for _, r := range rects {
			if !bounds.ContainsRect(r) {
				return false
			}
			sum += r.Area()
		}
		return math.Abs(sum-bounds.Area()) < bounds.Area()*0.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// --- sunburst ---

func TestSunburstRings(t *testing.T) {
	tr := clusterTree()
	arcs := Sunburst(tr, 300)
	var clusters, classes int
	for _, a := range arcs {
		switch a.Depth {
		case 1:
			clusters++
			if a.Inner >= a.Outer {
				t.Fatalf("bad radii %+v", a)
			}
		case 2:
			classes++
		}
	}
	if clusters != 3 || classes != 7 {
		t.Fatalf("arcs = %d clusters, %d classes", clusters, classes)
	}
}

func TestSunburstAnglesPartition(t *testing.T) {
	tr := clusterTree()
	arcs := Sunburst(tr, 300)
	sumByDepth := map[int]float64{}
	for _, a := range arcs {
		if a.Span() < 0 {
			t.Fatalf("negative span %+v", a)
		}
		sumByDepth[a.Depth] += a.Span()
	}
	// clusters tile the full circle
	if math.Abs(sumByDepth[1]-2*math.Pi) > 1e-6 {
		t.Fatalf("cluster ring spans %v", sumByDepth[1])
	}
	// classes tile the full circle too (every cluster has classes)
	if math.Abs(sumByDepth[2]-2*math.Pi) > 1e-6 {
		t.Fatalf("class ring spans %v", sumByDepth[2])
	}
}

func TestSunburstChildrenWithinParentSpan(t *testing.T) {
	tr := clusterTree()
	arcs := Sunburst(tr, 300)
	arcOf := map[*Tree]SunburstArc{}
	for _, a := range arcs {
		arcOf[a.Node] = a
	}
	for _, cl := range tr.Children {
		pa := arcOf[cl]
		for _, class := range cl.Children {
			ca := arcOf[class]
			if ca.Start < pa.Start-1e-9 || ca.End > pa.End+1e-9 {
				t.Fatalf("class %s arc [%v,%v] outside cluster [%v,%v]",
					class.Label, ca.Start, ca.End, pa.Start, pa.End)
			}
		}
	}
}

func TestArcPoint(t *testing.T) {
	p := ArcPoint(0, 0, 0, 10) // 12 o'clock
	if math.Abs(p.X) > 1e-9 || math.Abs(p.Y+10) > 1e-9 {
		t.Fatalf("ArcPoint(0) = %+v", p)
	}
	p = ArcPoint(0, 0, math.Pi/2, 10) // 3 o'clock
	if math.Abs(p.X-10) > 1e-9 || math.Abs(p.Y) > 1e-9 {
		t.Fatalf("ArcPoint(π/2) = %+v", p)
	}
}

// --- circle packing ---

func TestCirclePackStructure(t *testing.T) {
	tr := clusterTree()
	circles := CirclePack(tr, 400, 400, 380, 2)
	if len(circles) != tr.CountNodes() {
		t.Fatalf("circles = %d, want %d", len(circles), tr.CountNodes())
	}
	root := circles[0]
	if root.Depth != 0 || math.Abs(root.Circle.R-380) > 1e-6 {
		t.Fatalf("root = %+v", root)
	}
}

func TestCirclePackContainment(t *testing.T) {
	tr := clusterTree()
	circles := CirclePack(tr, 0, 0, 300, 1)
	byNode := map[*Tree]Circle{}
	for _, c := range circles {
		byNode[c.Node] = c.Circle
	}
	var check func(n *Tree)
	check = func(n *Tree) {
		p := byNode[n]
		for _, c := range n.Children {
			cc := byNode[c]
			d := math.Hypot(cc.X-p.X, cc.Y-p.Y)
			if d+cc.R > p.R+1e-6 {
				t.Fatalf("child %s escapes parent %s: d+r=%v > R=%v", c.Label, n.Label, d+cc.R, p.R)
			}
			check(c)
		}
	}
	check(tr)
}

func TestCirclePackSiblingsDisjoint(t *testing.T) {
	tr := clusterTree()
	circles := CirclePack(tr, 0, 0, 300, 1)
	byNode := map[*Tree]Circle{}
	for _, c := range circles {
		byNode[c.Node] = c.Circle
	}
	var check func(n *Tree)
	check = func(n *Tree) {
		for i := 0; i < len(n.Children); i++ {
			for j := i + 1; j < len(n.Children); j++ {
				a, b := byNode[n.Children[i]], byNode[n.Children[j]]
				d := math.Hypot(a.X-b.X, a.Y-b.Y)
				if d < a.R+b.R-1e-6 {
					t.Fatalf("siblings %s and %s overlap: d=%v r1+r2=%v",
						n.Children[i].Label, n.Children[j].Label, d, a.R+b.R)
				}
			}
		}
		for _, c := range n.Children {
			check(c)
		}
	}
	check(tr)
}

func TestCirclePackLeafAreasProportional(t *testing.T) {
	tr := clusterTree()
	circles := CirclePack(tr, 0, 0, 300, 0)
	var rB, rA float64
	for _, c := range circles {
		switch c.Node.Label {
		case "A":
			rA = c.Circle.R
		case "B":
			rB = c.Circle.R
		}
	}
	// B has 3× A's value → area ratio 3 → radius ratio √3
	if math.Abs(rB/rA-math.Sqrt(3)) > 0.01 {
		t.Fatalf("radius ratio = %v, want √3", rB/rA)
	}
}

// Property: packSiblings produces pairwise-disjoint circles.
func TestQuickPackSiblingsDisjoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		circles := make([]Circle, n)
		for i := range circles {
			circles[i].R = 1 + rng.Float64()*20
		}
		packSiblings(circles)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				d := math.Hypot(circles[i].X-circles[j].X, circles[i].Y-circles[j].Y)
				if d < circles[i].R+circles[j].R-1e-4 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestEncloseContainsAll(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		circles := make([]Circle, n)
		for i := range circles {
			circles[i] = Circle{X: rng.Float64()*100 - 50, Y: rng.Float64()*100 - 50, R: rng.Float64() * 10}
		}
		enc := encloseCircles(circles)
		for _, c := range circles {
			if math.Hypot(c.X-enc.X, c.Y-enc.Y)+c.R > enc.R+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// --- force layout ---

func TestForceLayoutBounds(t *testing.T) {
	nodes := make([]ForceNode, 20)
	var edges []ForceEdge
	for i := range nodes {
		nodes[i].Label = fmt.Sprintf("n%d", i)
		if i > 0 {
			edges = append(edges, ForceEdge{From: i - 1, To: i, Weight: 1})
		}
	}
	cfg := ForceConfig{Width: 500, Height: 400, Iterations: 100, Seed: 1}
	out := ForceLayout(nodes, edges, cfg)
	for _, n := range out {
		if n.Pos.X < 0 || n.Pos.X > 500 || n.Pos.Y < 0 || n.Pos.Y > 400 {
			t.Fatalf("node out of bounds: %+v", n.Pos)
		}
	}
}

func TestForceLayoutSpreadsNodes(t *testing.T) {
	nodes := make([]ForceNode, 10)
	out := ForceLayout(nodes, nil, ForceConfig{Width: 600, Height: 600, Iterations: 150, Seed: 2})
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			d := math.Hypot(out[i].Pos.X-out[j].Pos.X, out[i].Pos.Y-out[j].Pos.Y)
			if d < 20 {
				t.Fatalf("nodes %d,%d too close: %v", i, j, d)
			}
		}
	}
}

func TestForceLayoutPullsConnectedCloser(t *testing.T) {
	// two connected nodes vs two disconnected in a 4-node system
	nodes := make([]ForceNode, 4)
	edges := []ForceEdge{{From: 0, To: 1, Weight: 1}}
	out := ForceLayout(nodes, edges, ForceConfig{Width: 800, Height: 800, Iterations: 300, Seed: 3})
	dConn := math.Hypot(out[0].Pos.X-out[1].Pos.X, out[0].Pos.Y-out[1].Pos.Y)
	dDisc := math.Hypot(out[2].Pos.X-out[3].Pos.X, out[2].Pos.Y-out[3].Pos.Y)
	if dConn >= dDisc {
		t.Fatalf("connected pair (%v) should be closer than disconnected (%v)", dConn, dDisc)
	}
}

func TestForceLayoutDeterministic(t *testing.T) {
	nodes := make([]ForceNode, 8)
	edges := []ForceEdge{{From: 0, To: 1, Weight: 2}, {From: 2, To: 3, Weight: 1}}
	a := ForceLayout(nodes, edges, ForceConfig{Seed: 7, Iterations: 50})
	b := ForceLayout(nodes, edges, ForceConfig{Seed: 7, Iterations: 50})
	for i := range a {
		if a[i].Pos != b[i].Pos {
			t.Fatal("not deterministic")
		}
	}
}

func TestForceLayoutSingleNodeCentered(t *testing.T) {
	out := ForceLayout([]ForceNode{{}}, nil, ForceConfig{Width: 100, Height: 100})
	if out[0].Pos.X != 50 || out[0].Pos.Y != 50 {
		t.Fatalf("single node at %+v", out[0].Pos)
	}
}

// --- edge bundling ---

func TestBundleLeafPlacement(t *testing.T) {
	tr := clusterTree()
	eb := Bundle(tr, nil, 0, 0, 100, 0.85, 16)
	if len(eb.Leaves) != 7 {
		t.Fatalf("leaves = %d", len(eb.Leaves))
	}
	for _, l := range eb.Leaves {
		r := math.Hypot(l.Pos.X, l.Pos.Y)
		if math.Abs(r-100) > 1e-6 {
			t.Fatalf("leaf %s not on circle: r=%v", l.Node.Label, r)
		}
	}
	// angles strictly increasing in hierarchy order
	for i := 1; i < len(eb.Leaves); i++ {
		if eb.Leaves[i].Angle <= eb.Leaves[i-1].Angle {
			t.Fatal("leaf angles not increasing")
		}
	}
}

func TestBundleEdgesConnectEndpoints(t *testing.T) {
	tr := clusterTree()
	adj := [][2]string{
		{"http://x/A", "http://x/D"},
		{"http://x/B", "http://x/G"},
		{"http://x/A", "http://x/B"},
	}
	eb := Bundle(tr, adj, 0, 0, 200, 0.85, 40)
	if len(eb.Edges) != 3 {
		t.Fatalf("edges = %d", len(eb.Edges))
	}
	for _, e := range eb.Edges {
		first, last := e.Points[0], e.Points[len(e.Points)-1]
		pf, pl := eb.Leaves[e.From].Pos, eb.Leaves[e.To].Pos
		if math.Hypot(first.X-pf.X, first.Y-pf.Y) > 1e-6 {
			t.Fatalf("edge start %v far from leaf %v", first, pf)
		}
		if math.Hypot(last.X-pl.X, last.Y-pl.Y) > 1e-6 {
			t.Fatalf("edge end %v far from leaf %v", last, pl)
		}
	}
}

func TestBundleBetaPullsInward(t *testing.T) {
	tr := clusterTree()
	adj := [][2]string{{"http://x/A", "http://x/D"}} // across clusters
	straightEB := Bundle(tr, adj, 0, 0, 200, 0, 64)
	bundled := Bundle(tr, adj, 0, 0, 200, 1, 64)
	// with beta=1 the path follows the hierarchy through the center, so
	// its minimum distance from the center is smaller than the chord's
	minR := func(pts []Point) float64 {
		m := math.Inf(1)
		for _, p := range pts {
			if r := math.Hypot(p.X, p.Y); r < m {
				m = r
			}
		}
		return m
	}
	if minR(bundled.Edges[0].Points) >= minR(straightEB.Edges[0].Points) {
		t.Fatalf("beta=1 path should pass closer to the center: %v vs %v",
			minR(bundled.Edges[0].Points), minR(straightEB.Edges[0].Points))
	}
}

func TestBundleSkipsUnknownRefs(t *testing.T) {
	tr := clusterTree()
	eb := Bundle(tr, [][2]string{{"http://nope", "http://x/A"}, {"http://x/A", "http://x/A"}}, 0, 0, 100, 0.8, 8)
	if len(eb.Edges) != 0 {
		t.Fatalf("edges = %d, want 0", len(eb.Edges))
	}
}

func TestHierarchyPathThroughLCA(t *testing.T) {
	tr := clusterTree()
	parent := map[*Tree]*Tree{}
	var walk func(t *Tree)
	walk = func(t *Tree) {
		for _, c := range t.Children {
			parent[c] = t
			walk(c)
		}
	}
	walk(tr)
	a := tr.Children[0].Children[0] // A in c1
	d := tr.Children[1].Children[0] // D in c2
	path := hierarchyPath(a, d, parent)
	// A → c1 → root → c2 → D
	if len(path) != 5 || path[0] != a || path[2] != tr || path[4] != d {
		t.Fatalf("path = %v", path)
	}
	// same cluster: A → c1 → B
	b := tr.Children[0].Children[1]
	path = hierarchyPath(a, b, parent)
	if len(path) != 3 || path[1] != tr.Children[0] {
		t.Fatalf("intra-cluster path = %v", path)
	}
}

func TestSampleBSplineEndpoints(t *testing.T) {
	ctrl := []Point{{0, 0}, {50, 100}, {100, 0}}
	pts := sampleBSpline(ctrl, 21)
	if len(pts) != 21 {
		t.Fatalf("samples = %d", len(pts))
	}
	if math.Hypot(pts[0].X, pts[0].Y) > 1e-6 {
		t.Fatalf("start = %+v", pts[0])
	}
	if math.Hypot(pts[20].X-100, pts[20].Y) > 1e-6 {
		t.Fatalf("end = %+v", pts[20])
	}
}
