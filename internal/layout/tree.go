// Package layout implements, in pure Go, the visualization layouts
// H-BOLD renders with D3.js: the force-directed node-link view of the
// Cluster Schema and Schema Summary, and the four layouts added by the
// paper's §3.5 — squarified treemap (Figure 4), sunburst (Figure 5),
// circle packing (Figure 6) and Holten hierarchical edge bundling
// (Figure 7). Every layout consumes the same lightweight hierarchy type
// and produces plain geometry that the svg and viz packages render.
package layout

import "sort"

// Tree is a hierarchy node. For H-BOLD's Cluster Schema the root is the
// dataset, its children the clusters and the leaves the classes, with
// Value holding instance counts.
type Tree struct {
	// Label names the node.
	Label string
	// Value is the leaf quantity (e.g. instance count). Internal node
	// values are ignored: a parent's effective value is the sum of its
	// children. Zero-valued leaves receive an equal share (§3.5.1).
	Value float64
	// Children are the sub-nodes; empty means leaf.
	Children []*Tree
	// Ref is an arbitrary caller reference (e.g. the class IRI).
	Ref string
}

// IsLeaf reports whether the node has no children.
func (t *Tree) IsLeaf() bool { return len(t.Children) == 0 }

// effectiveValues returns the display value of each child of parent,
// applying the paper's rule: a child without an assigned quantity gets an
// equal share — the mean of its positive siblings, or 1 when no sibling
// has a quantity.
func effectiveValues(parent *Tree) []float64 {
	vals := make([]float64, len(parent.Children))
	var positive []float64
	for i, c := range parent.Children {
		vals[i] = subtreeValue(c)
		if vals[i] > 0 {
			positive = append(positive, vals[i])
		}
	}
	if len(positive) == 0 {
		for i := range vals {
			vals[i] = 1
		}
		return vals
	}
	mean := 0.0
	for _, v := range positive {
		mean += v
	}
	mean /= float64(len(positive))
	for i, v := range vals {
		if v <= 0 {
			vals[i] = mean
		}
	}
	return vals
}

// subtreeValue is the node's own value for leaves and the children sum
// for internal nodes.
func subtreeValue(t *Tree) float64 {
	if t.IsLeaf() {
		return t.Value
	}
	s := 0.0
	for _, c := range t.Children {
		s += subtreeValue(c)
	}
	return s
}

// Depth returns the height of the tree (a lone root has depth 1).
func (t *Tree) Depth() int {
	if t.IsLeaf() {
		return 1
	}
	max := 0
	for _, c := range t.Children {
		if d := c.Depth(); d > max {
			max = d
		}
	}
	return max + 1
}

// Leaves returns the leaf nodes in depth-first order.
func (t *Tree) Leaves() []*Tree {
	if t.IsLeaf() {
		return []*Tree{t}
	}
	var out []*Tree
	for _, c := range t.Children {
		out = append(out, c.Leaves()...)
	}
	return out
}

// CountNodes returns the total number of nodes in the tree.
func (t *Tree) CountNodes() int {
	n := 1
	for _, c := range t.Children {
		n += c.CountNodes()
	}
	return n
}

// SortChildrenByValue orders every node's children by descending
// effective value (the convention treemaps and sunbursts use).
func (t *Tree) SortChildrenByValue() {
	sort.SliceStable(t.Children, func(i, j int) bool {
		return subtreeValue(t.Children[i]) > subtreeValue(t.Children[j])
	})
	for _, c := range t.Children {
		c.SortChildrenByValue()
	}
}

// Point is a 2-D point.
type Point struct {
	X, Y float64
}

// Rect is an axis-aligned rectangle.
type Rect struct {
	X, Y, W, H float64
}

// Area returns the rectangle's area.
func (r Rect) Area() float64 { return r.W * r.H }

// Contains reports whether p lies inside (or on the border of) r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.X && p.X <= r.X+r.W && p.Y >= r.Y && p.Y <= r.Y+r.H
}

// ContainsRect reports whether inner lies fully within r (with epsilon
// tolerance for floating point).
func (r Rect) ContainsRect(inner Rect) bool {
	const eps = 1e-6
	return inner.X >= r.X-eps && inner.Y >= r.Y-eps &&
		inner.X+inner.W <= r.X+r.W+eps && inner.Y+inner.H <= r.Y+r.H+eps
}

// Circle is a circle.
type Circle struct {
	X, Y, R float64
}
