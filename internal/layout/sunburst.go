package layout

import "math"

// SunburstArc is one ring slice of the sunburst chart.
type SunburstArc struct {
	// Node is the hierarchy node this arc renders.
	Node *Tree
	// Depth is 1 for the inner ring (clusters), 2 for the outer ring
	// (classes); the root is not drawn.
	Depth int
	// Start and End are angles in radians, measured clockwise from 12
	// o'clock, with End > Start.
	Start, End float64
	// Inner and Outer are the ring radii.
	Inner, Outer float64
}

// Mid returns the angular midpoint of the arc.
func (a SunburstArc) Mid() float64 { return (a.Start + a.End) / 2 }

// Span returns the angular width of the arc.
func (a SunburstArc) Span() float64 { return a.End - a.Start }

// Sunburst computes the sunburst chart of Figure 5: the hierarchy is
// shown through concentric rings sliced per node, the inner ring holding
// the clusters and the outer ring the classes grouped by cluster. Radius
// is the outermost ring's outer radius.
func Sunburst(root *Tree, radius float64) []SunburstArc {
	depth := root.Depth() - 1 // rings exclude the root
	if depth < 1 {
		return nil
	}
	ringW := radius / float64(depth+1) // ring 0 (hole) + depth rings
	var out []SunburstArc
	var recurse func(t *Tree, start, end float64, level int)
	recurse = func(t *Tree, start, end float64, level int) {
		if level > 0 {
			out = append(out, SunburstArc{
				Node: t, Depth: level,
				Start: start, End: end,
				Inner: ringW * float64(level),
				Outer: ringW * float64(level+1),
			})
		}
		if t.IsLeaf() {
			return
		}
		vals := effectiveValues(t)
		total := 0.0
		for _, v := range vals {
			total += v
		}
		if total <= 0 {
			return
		}
		a := start
		for i, c := range t.Children {
			span := (end - start) * vals[i] / total
			recurse(c, a, a+span, level+1)
			a += span
		}
	}
	recurse(root, 0, 2*math.Pi, 0)
	return out
}

// ArcPoint converts an (angle, radius) pair to Cartesian coordinates
// around the given center, with angle 0 at 12 o'clock increasing
// clockwise (the SVG convention the renderer uses).
func ArcPoint(cx, cy, angle, r float64) Point {
	return Point{
		X: cx + r*math.Sin(angle),
		Y: cy - r*math.Cos(angle),
	}
}
