package layout

import (
	"math"
	"math/rand"
)

// ForceNode is a node of the force-directed layout.
type ForceNode struct {
	// Label names the node; Ref carries the caller's identifier.
	Label string
	Ref   string
	// Size is a display weight (e.g. instance count) the renderer can map
	// to node radius; it does not affect the simulation.
	Size float64
	// Pos is the computed position.
	Pos Point
}

// ForceEdge links two nodes by index.
type ForceEdge struct {
	From, To int
	// Weight scales the attraction (heavier edges pull nodes closer).
	Weight float64
}

// ForceConfig tunes the Fruchterman–Reingold simulation.
type ForceConfig struct {
	// Width and Height bound the layout area.
	Width, Height float64
	// Iterations is the number of cooling steps (default 300).
	Iterations int
	// Seed drives the initial placement.
	Seed int64
}

// ForceLayout computes a Fruchterman–Reingold force-directed layout
// [Fruchterman & Reingold 1991], the node-link arrangement H-BOLD uses
// for the Cluster Schema and Schema Summary graph views.
func ForceLayout(nodes []ForceNode, edges []ForceEdge, cfg ForceConfig) []ForceNode {
	n := len(nodes)
	if n == 0 {
		return nodes
	}
	if cfg.Width <= 0 {
		cfg.Width = 1000
	}
	if cfg.Height <= 0 {
		cfg.Height = 1000
	}
	iters := cfg.Iterations
	if iters <= 0 {
		iters = 300
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]ForceNode, n)
	copy(out, nodes)

	// initial placement: jittered circle (deterministic, avoids the
	// degenerate all-at-origin start)
	cx, cy := cfg.Width/2, cfg.Height/2
	r0 := math.Min(cfg.Width, cfg.Height) / 3
	for i := range out {
		ang := 2 * math.Pi * float64(i) / float64(n)
		out[i].Pos = Point{
			X: cx + r0*math.Cos(ang) + rng.Float64()*10 - 5,
			Y: cy + r0*math.Sin(ang) + rng.Float64()*10 - 5,
		}
	}
	if n == 1 {
		out[0].Pos = Point{X: cx, Y: cy}
		return out
	}

	area := cfg.Width * cfg.Height
	k := math.Sqrt(area / float64(n)) // ideal edge length
	temp := math.Min(cfg.Width, cfg.Height) / 10
	cool := temp / float64(iters+1)

	disp := make([]Point, n)
	maxW := 1.0
	for _, e := range edges {
		if e.Weight > maxW {
			maxW = e.Weight
		}
	}

	for it := 0; it < iters; it++ {
		for i := range disp {
			disp[i] = Point{}
		}
		// repulsion between all pairs
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				dx := out[i].Pos.X - out[j].Pos.X
				dy := out[i].Pos.Y - out[j].Pos.Y
				d := math.Hypot(dx, dy)
				if d < 1e-9 {
					dx, dy = rng.Float64()-0.5, rng.Float64()-0.5
					d = math.Hypot(dx, dy)
				}
				f := k * k / d
				disp[i].X += dx / d * f
				disp[i].Y += dy / d * f
				disp[j].X -= dx / d * f
				disp[j].Y -= dy / d * f
			}
		}
		// attraction along edges (weight-scaled)
		for _, e := range edges {
			if e.From == e.To {
				continue
			}
			w := e.Weight
			if w <= 0 {
				w = 1
			}
			dx := out[e.From].Pos.X - out[e.To].Pos.X
			dy := out[e.From].Pos.Y - out[e.To].Pos.Y
			d := math.Hypot(dx, dy)
			if d < 1e-9 {
				continue
			}
			f := d * d / k * (0.5 + 0.5*w/maxW)
			disp[e.From].X -= dx / d * f
			disp[e.From].Y -= dy / d * f
			disp[e.To].X += dx / d * f
			disp[e.To].Y += dy / d * f
		}
		// apply displacements, bounded by temperature and frame
		for i := range out {
			d := math.Hypot(disp[i].X, disp[i].Y)
			if d < 1e-9 {
				continue
			}
			lim := math.Min(d, temp)
			out[i].Pos.X += disp[i].X / d * lim
			out[i].Pos.Y += disp[i].Y / d * lim
			out[i].Pos.X = math.Min(cfg.Width-10, math.Max(10, out[i].Pos.X))
			out[i].Pos.Y = math.Min(cfg.Height-10, math.Max(10, out[i].Pos.Y))
		}
		temp -= cool
	}
	return out
}
