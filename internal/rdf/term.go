// Package rdf provides the core RDF data model: terms (IRIs, literals,
// blank nodes), triples, and well-known vocabularies.
//
// Terms are small comparable values so they can be used directly as map
// keys; the triple store builds its dictionaries on top of that property.
package rdf

import (
	"fmt"
	"strconv"
	"strings"
)

// TermKind discriminates the three kinds of RDF terms plus the zero value.
type TermKind uint8

// Term kinds.
const (
	// KindInvalid is the zero TermKind; the zero Term is invalid.
	KindInvalid TermKind = iota
	// KindIRI identifies an IRI term.
	KindIRI
	// KindLiteral identifies a literal term (plain, typed or language-tagged).
	KindLiteral
	// KindBlank identifies a blank node term.
	KindBlank
)

// String returns a human-readable name for the kind.
func (k TermKind) String() string {
	switch k {
	case KindIRI:
		return "iri"
	case KindLiteral:
		return "literal"
	case KindBlank:
		return "blank"
	default:
		return "invalid"
	}
}

// Term is an RDF term. It is a comparable value type: two Terms are equal
// exactly when they denote the same RDF term. The zero Term is invalid.
type Term struct {
	// Kind discriminates IRI / literal / blank node.
	Kind TermKind
	// Value holds the IRI string, the literal lexical form, or the blank
	// node label (without the "_:" prefix).
	Value string
	// Datatype is the datatype IRI for typed literals. Plain literals have
	// an empty Datatype (interpreted as xsd:string) and language-tagged
	// literals have Datatype rdf:langString by convention (kept empty here;
	// Lang being non-empty marks them).
	Datatype string
	// Lang is the language tag for language-tagged literals, lower-case.
	Lang string
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: KindIRI, Value: iri} }

// NewBlank returns a blank node term with the given label.
func NewBlank(label string) Term { return Term{Kind: KindBlank, Value: label} }

// NewLiteral returns a plain (string) literal.
func NewLiteral(lex string) Term { return Term{Kind: KindLiteral, Value: lex} }

// NewLangLiteral returns a language-tagged literal. The tag is normalized
// to lower case per RDF 1.1 comparison rules.
func NewLangLiteral(lex, lang string) Term {
	return Term{Kind: KindLiteral, Value: lex, Lang: strings.ToLower(lang)}
}

// NewTypedLiteral returns a literal with an explicit datatype IRI.
func NewTypedLiteral(lex, datatype string) Term {
	if datatype == XSDString {
		datatype = ""
	}
	return Term{Kind: KindLiteral, Value: lex, Datatype: datatype}
}

// NewInteger returns an xsd:integer literal.
func NewInteger(v int64) Term {
	return Term{Kind: KindLiteral, Value: strconv.FormatInt(v, 10), Datatype: XSDInteger}
}

// NewDecimal returns an xsd:decimal literal.
func NewDecimal(v float64) Term {
	return Term{Kind: KindLiteral, Value: strconv.FormatFloat(v, 'f', -1, 64), Datatype: XSDDecimal}
}

// NewDouble returns an xsd:double literal.
func NewDouble(v float64) Term {
	return Term{Kind: KindLiteral, Value: strconv.FormatFloat(v, 'g', -1, 64), Datatype: XSDDouble}
}

// NewBoolean returns an xsd:boolean literal.
func NewBoolean(v bool) Term {
	return Term{Kind: KindLiteral, Value: strconv.FormatBool(v), Datatype: XSDBoolean}
}

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == KindIRI }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.Kind == KindLiteral }

// IsBlank reports whether the term is a blank node.
func (t Term) IsBlank() bool { return t.Kind == KindBlank }

// IsZero reports whether the term is the zero (invalid) Term.
func (t Term) IsZero() bool { return t.Kind == KindInvalid }

// EffectiveDatatype returns the literal's datatype IRI, resolving the
// empty datatype of plain literals to xsd:string and language-tagged
// literals to rdf:langString. It returns "" for non-literals.
func (t Term) EffectiveDatatype() string {
	if t.Kind != KindLiteral {
		return ""
	}
	if t.Lang != "" {
		return RDFLangString
	}
	if t.Datatype == "" {
		return XSDString
	}
	return t.Datatype
}

// IsNumeric reports whether the term is a literal of a numeric XSD type.
func (t Term) IsNumeric() bool {
	if t.Kind != KindLiteral {
		return false
	}
	switch t.Datatype {
	case XSDInteger, XSDDecimal, XSDDouble, XSDFloat, XSDInt, XSDLong,
		XSDShort, XSDByte, XSDNonNegativeInteger, XSDPositiveInteger,
		XSDNegativeInteger, XSDNonPositiveInteger, XSDUnsignedInt,
		XSDUnsignedLong:
		return true
	}
	return false
}

// Float returns the numeric value of a numeric literal. The second result
// reports whether the conversion succeeded.
func (t Term) Float() (float64, bool) {
	if !t.IsNumeric() {
		return 0, false
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(t.Value), 64)
	if err != nil {
		return 0, false
	}
	return f, true
}

// Int returns the integer value of an integer-typed literal.
func (t Term) Int() (int64, bool) {
	if t.Kind != KindLiteral {
		return 0, false
	}
	switch t.Datatype {
	case XSDInteger, XSDInt, XSDLong, XSDShort, XSDByte,
		XSDNonNegativeInteger, XSDPositiveInteger, XSDNegativeInteger,
		XSDNonPositiveInteger, XSDUnsignedInt, XSDUnsignedLong:
		n, err := strconv.ParseInt(strings.TrimSpace(t.Value), 10, 64)
		if err != nil {
			return 0, false
		}
		return n, true
	}
	return 0, false
}

// Bool returns the boolean value of an xsd:boolean literal.
func (t Term) Bool() (bool, bool) {
	if t.Kind != KindLiteral || t.Datatype != XSDBoolean {
		return false, false
	}
	switch t.Value {
	case "true", "1":
		return true, true
	case "false", "0":
		return false, true
	}
	return false, false
}

// String renders the term in N-Triples syntax.
func (t Term) String() string {
	switch t.Kind {
	case KindIRI:
		return "<" + t.Value + ">"
	case KindBlank:
		return "_:" + t.Value
	case KindLiteral:
		var b strings.Builder
		b.WriteByte('"')
		b.WriteString(EscapeLiteral(t.Value))
		b.WriteByte('"')
		if t.Lang != "" {
			b.WriteByte('@')
			b.WriteString(t.Lang)
		} else if t.Datatype != "" {
			b.WriteString("^^<")
			b.WriteString(t.Datatype)
			b.WriteByte('>')
		}
		return b.String()
	default:
		return "<invalid>"
	}
}

// Compare orders terms for deterministic output: blank < IRI < literal,
// then by value, datatype and language. It returns -1, 0 or +1.
func (t Term) Compare(u Term) int {
	rank := func(k TermKind) int {
		switch k {
		case KindBlank:
			return 0
		case KindIRI:
			return 1
		case KindLiteral:
			return 2
		}
		return -1
	}
	if a, b := rank(t.Kind), rank(u.Kind); a != b {
		if a < b {
			return -1
		}
		return 1
	}
	if t.Value != u.Value {
		if t.Value < u.Value {
			return -1
		}
		return 1
	}
	if t.Datatype != u.Datatype {
		if t.Datatype < u.Datatype {
			return -1
		}
		return 1
	}
	if t.Lang != u.Lang {
		if t.Lang < u.Lang {
			return -1
		}
		return 1
	}
	return 0
}

// LocalName returns the fragment or last path segment of an IRI, which is
// the human-friendly short name used in visualizations. For non-IRIs it
// returns the term value unchanged.
func (t Term) LocalName() string {
	if t.Kind != KindIRI {
		return t.Value
	}
	v := t.Value
	if i := strings.LastIndexByte(v, '#'); i >= 0 && i+1 < len(v) {
		return v[i+1:]
	}
	v = strings.TrimSuffix(v, "/")
	if i := strings.LastIndexByte(v, '/'); i >= 0 && i+1 < len(v) {
		return v[i+1:]
	}
	return v
}

// EscapeLiteral escapes a literal lexical form for N-Triples output.
func EscapeLiteral(s string) string {
	if !strings.ContainsAny(s, "\"\\\n\r\t") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Triple is a single RDF statement. It is comparable.
type Triple struct {
	S, P, O Term
}

// NewTriple builds a triple.
func NewTriple(s, p, o Term) Triple { return Triple{S: s, P: p, O: o} }

// String renders the triple in N-Triples syntax (with trailing dot).
func (t Triple) String() string {
	return fmt.Sprintf("%s %s %s .", t.S, t.P, t.O)
}

// Compare orders triples lexicographically by subject, predicate, object.
func (t Triple) Compare(u Triple) int {
	if c := t.S.Compare(u.S); c != 0 {
		return c
	}
	if c := t.P.Compare(u.P); c != 0 {
		return c
	}
	return t.O.Compare(u.O)
}
