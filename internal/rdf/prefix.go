package rdf

import (
	"fmt"
	"sort"
	"strings"
)

// PrefixMap maps prefix labels (without the trailing colon) to namespace
// IRIs. It is used by the Turtle serializer, the SPARQL parser prologue and
// the presentation layer to shorten IRIs for display.
type PrefixMap struct {
	byPrefix map[string]string
	// longest-first namespace list for shrinking
	namespaces []nsEntry
}

type nsEntry struct {
	prefix, ns string
}

// NewPrefixMap returns an empty prefix map.
func NewPrefixMap() *PrefixMap {
	return &PrefixMap{byPrefix: make(map[string]string)}
}

// CommonPrefixes returns a prefix map preloaded with the well-known
// namespaces used throughout the system.
func CommonPrefixes() *PrefixMap {
	pm := NewPrefixMap()
	pm.Bind("rdf", RDFNS)
	pm.Bind("rdfs", RDFSNS)
	pm.Bind("owl", OWLNS)
	pm.Bind("xsd", XSDNS)
	pm.Bind("dcat", DCATNS)
	pm.Bind("dc", DCNS)
	pm.Bind("foaf", FOAFNS)
	pm.Bind("void", VOIDNS)
	return pm
}

// Bind associates prefix with the namespace IRI, replacing any previous
// binding for the same prefix.
func (pm *PrefixMap) Bind(prefix, ns string) {
	if old, ok := pm.byPrefix[prefix]; ok {
		for i := range pm.namespaces {
			if pm.namespaces[i].prefix == prefix && pm.namespaces[i].ns == old {
				pm.namespaces = append(pm.namespaces[:i], pm.namespaces[i+1:]...)
				break
			}
		}
	}
	pm.byPrefix[prefix] = ns
	pm.namespaces = append(pm.namespaces, nsEntry{prefix, ns})
	sort.SliceStable(pm.namespaces, func(i, j int) bool {
		return len(pm.namespaces[i].ns) > len(pm.namespaces[j].ns)
	})
}

// Expand resolves a prefixed name such as "rdf:type" into a full IRI.
func (pm *PrefixMap) Expand(pname string) (string, error) {
	i := strings.IndexByte(pname, ':')
	if i < 0 {
		return "", fmt.Errorf("rdf: %q is not a prefixed name", pname)
	}
	ns, ok := pm.byPrefix[pname[:i]]
	if !ok {
		return "", fmt.Errorf("rdf: unknown prefix %q", pname[:i])
	}
	return ns + pname[i+1:], nil
}

// Shrink renders an IRI as a prefixed name when a bound namespace is a
// prefix of it; otherwise it returns the IRI unchanged and false.
func (pm *PrefixMap) Shrink(iri string) (string, bool) {
	for _, e := range pm.namespaces {
		if strings.HasPrefix(iri, e.ns) {
			local := iri[len(e.ns):]
			if validLocal(local) {
				return e.prefix + ":" + local, true
			}
		}
	}
	return iri, false
}

// Bindings returns the prefix→namespace pairs sorted by prefix, for
// deterministic serialization.
func (pm *PrefixMap) Bindings() map[string]string {
	out := make(map[string]string, len(pm.byPrefix))
	for k, v := range pm.byPrefix {
		out[k] = v
	}
	return out
}

// SortedPrefixes returns the bound prefixes in sorted order.
func (pm *PrefixMap) SortedPrefixes() []string {
	ps := make([]string, 0, len(pm.byPrefix))
	for p := range pm.byPrefix {
		ps = append(ps, p)
	}
	sort.Strings(ps)
	return ps
}

// Namespace returns the namespace bound to prefix.
func (pm *PrefixMap) Namespace(prefix string) (string, bool) {
	ns, ok := pm.byPrefix[prefix]
	return ns, ok
}

func validLocal(s string) bool {
	for _, r := range s {
		if r == '/' || r == '#' || r == ':' || r == ' ' {
			return false
		}
	}
	return true
}
