package rdf

import "sort"

// Graph is a simple set of triples with convenience constructors. It is the
// lightweight exchange format between parsers, generators and the indexed
// store; the store itself maintains the query indexes.
type Graph struct {
	triples []Triple
	seen    map[Triple]struct{}
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{seen: make(map[Triple]struct{})}
}

// Add inserts a triple, ignoring duplicates. It reports whether the triple
// was newly added.
func (g *Graph) Add(t Triple) bool {
	if _, dup := g.seen[t]; dup {
		return false
	}
	g.seen[t] = struct{}{}
	g.triples = append(g.triples, t)
	return true
}

// AddSPO inserts a triple given its components.
func (g *Graph) AddSPO(s, p, o Term) bool { return g.Add(Triple{s, p, o}) }

// Has reports whether the graph contains the triple.
func (g *Graph) Has(t Triple) bool {
	_, ok := g.seen[t]
	return ok
}

// Len returns the number of distinct triples.
func (g *Graph) Len() int { return len(g.triples) }

// Triples returns the triples in insertion order. The caller must not
// modify the returned slice.
func (g *Graph) Triples() []Triple { return g.triples }

// Sorted returns a new slice of the triples in canonical order.
func (g *Graph) Sorted() []Triple {
	out := make([]Triple, len(g.triples))
	copy(out, g.triples)
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}
