package rdf

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestTermConstructors(t *testing.T) {
	iri := NewIRI("http://example.org/a")
	if !iri.IsIRI() || iri.IsLiteral() || iri.IsBlank() {
		t.Fatalf("IRI kind flags wrong: %+v", iri)
	}
	b := NewBlank("b0")
	if !b.IsBlank() {
		t.Fatalf("blank kind wrong: %+v", b)
	}
	lit := NewLiteral("hello")
	if !lit.IsLiteral() || lit.Datatype != "" || lit.Lang != "" {
		t.Fatalf("plain literal wrong: %+v", lit)
	}
	lang := NewLangLiteral("ciao", "IT")
	if lang.Lang != "it" {
		t.Fatalf("language tag not normalized: %q", lang.Lang)
	}
}

func TestTypedLiteralStringDatatypeNormalized(t *testing.T) {
	l := NewTypedLiteral("x", XSDString)
	if l.Datatype != "" {
		t.Fatalf("xsd:string should normalize to empty datatype, got %q", l.Datatype)
	}
	if l != NewLiteral("x") {
		t.Fatalf("typed xsd:string and plain literal should be equal")
	}
}

func TestEffectiveDatatype(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{NewLiteral("a"), XSDString},
		{NewLangLiteral("a", "en"), RDFLangString},
		{NewInteger(3), XSDInteger},
		{NewIRI("http://x"), ""},
	}
	for _, c := range cases {
		if got := c.term.EffectiveDatatype(); got != c.want {
			t.Errorf("EffectiveDatatype(%v) = %q, want %q", c.term, got, c.want)
		}
	}
}

func TestNumericConversions(t *testing.T) {
	if f, ok := NewInteger(42).Float(); !ok || f != 42 {
		t.Fatalf("integer Float = %v %v", f, ok)
	}
	if n, ok := NewInteger(-7).Int(); !ok || n != -7 {
		t.Fatalf("Int = %v %v", n, ok)
	}
	if _, ok := NewLiteral("42").Float(); ok {
		t.Fatal("plain literal must not be numeric")
	}
	if v, ok := NewBoolean(true).Bool(); !ok || !v {
		t.Fatalf("Bool = %v %v", v, ok)
	}
	if d, ok := NewDecimal(2.5).Float(); !ok || d != 2.5 {
		t.Fatalf("decimal Float = %v %v", d, ok)
	}
}

func TestTermString(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{NewIRI("http://x/a"), "<http://x/a>"},
		{NewBlank("n1"), "_:n1"},
		{NewLiteral("hi"), `"hi"`},
		{NewLangLiteral("hi", "en"), `"hi"@en`},
		{NewInteger(5), `"5"^^<` + XSDInteger + `>`},
		{NewLiteral("a\"b\nc"), `"a\"b\nc"`},
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestLocalName(t *testing.T) {
	cases := []struct{ iri, want string }{
		{"http://example.org/onto#Event", "Event"},
		{"http://example.org/onto/Person", "Person"},
		{"http://example.org/onto/Person/", "Person"},
		{"Event", "Event"},
	}
	for _, c := range cases {
		if got := NewIRI(c.iri).LocalName(); got != c.want {
			t.Errorf("LocalName(%q) = %q, want %q", c.iri, got, c.want)
		}
	}
}

func TestCompareOrdering(t *testing.T) {
	terms := []Term{
		NewLiteral("z"),
		NewIRI("http://b"),
		NewBlank("x"),
		NewIRI("http://a"),
		NewLiteral("a"),
	}
	sort.Slice(terms, func(i, j int) bool { return terms[i].Compare(terms[j]) < 0 })
	want := []Term{
		NewBlank("x"),
		NewIRI("http://a"),
		NewIRI("http://b"),
		NewLiteral("a"),
		NewLiteral("z"),
	}
	for i := range want {
		if terms[i] != want[i] {
			t.Fatalf("order[%d] = %v, want %v", i, terms[i], want[i])
		}
	}
}

func TestComparePropertyAntisymmetric(t *testing.T) {
	f := func(a, b string) bool {
		ta, tb := NewIRI(a), NewIRI(b)
		return ta.Compare(tb) == -tb.Compare(ta)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompareReflexive(t *testing.T) {
	f := func(v, dt, lang string) bool {
		tm := Term{Kind: KindLiteral, Value: v, Datatype: dt, Lang: lang}
		return tm.Compare(tm) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTripleString(t *testing.T) {
	tr := NewTriple(NewIRI("http://s"), NewIRI("http://p"), NewLiteral("o"))
	want := `<http://s> <http://p> "o" .`
	if got := tr.String(); got != want {
		t.Fatalf("Triple.String() = %q, want %q", got, want)
	}
}

func TestTripleCompare(t *testing.T) {
	a := NewTriple(NewIRI("http://a"), NewIRI("http://p"), NewLiteral("1"))
	b := NewTriple(NewIRI("http://b"), NewIRI("http://p"), NewLiteral("1"))
	if a.Compare(b) >= 0 || b.Compare(a) <= 0 || a.Compare(a) != 0 {
		t.Fatal("triple ordering broken")
	}
}

func TestEscapeLiteral(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{`quote"`, `quote\"`},
		{"tab\t", `tab\t`},
		{`back\slash`, `back\\slash`},
		{"line\r\n", `line\r\n`},
	}
	for _, c := range cases {
		if got := EscapeLiteral(c.in); got != c.want {
			t.Errorf("EscapeLiteral(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestGraphAddDedup(t *testing.T) {
	g := NewGraph()
	tr := NewTriple(NewIRI("http://s"), NewIRI("http://p"), NewLiteral("o"))
	if !g.Add(tr) {
		t.Fatal("first Add should report true")
	}
	if g.Add(tr) {
		t.Fatal("duplicate Add should report false")
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
	if !g.Has(tr) {
		t.Fatal("Has should find the triple")
	}
}

func TestGraphSortedIsCanonical(t *testing.T) {
	g := NewGraph()
	g.AddSPO(NewIRI("http://b"), NewIRI("http://p"), NewLiteral("1"))
	g.AddSPO(NewIRI("http://a"), NewIRI("http://p"), NewLiteral("1"))
	s := g.Sorted()
	if s[0].S.Value != "http://a" || s[1].S.Value != "http://b" {
		t.Fatalf("Sorted order wrong: %v", s)
	}
	// insertion order preserved in Triples
	if g.Triples()[0].S.Value != "http://b" {
		t.Fatal("Triples() must preserve insertion order")
	}
}

func TestPrefixMapExpandShrink(t *testing.T) {
	pm := CommonPrefixes()
	iri, err := pm.Expand("rdf:type")
	if err != nil || iri != RDFType {
		t.Fatalf("Expand(rdf:type) = %q, %v", iri, err)
	}
	if _, err := pm.Expand("nope:x"); err == nil {
		t.Fatal("unknown prefix must error")
	}
	if _, err := pm.Expand("noprefix"); err == nil {
		t.Fatal("non-prefixed name must error")
	}
	short, ok := pm.Shrink(RDFSLabel)
	if !ok || short != "rdfs:label" {
		t.Fatalf("Shrink = %q, %v", short, ok)
	}
	if _, ok := pm.Shrink("http://unbound.example/x"); ok {
		t.Fatal("Shrink of unbound namespace should report false")
	}
}

func TestPrefixMapLongestNamespaceWins(t *testing.T) {
	pm := NewPrefixMap()
	pm.Bind("a", "http://x/")
	pm.Bind("b", "http://x/deep/")
	short, ok := pm.Shrink("http://x/deep/thing")
	if !ok || short != "b:thing" {
		t.Fatalf("Shrink = %q, want b:thing", short)
	}
}

func TestPrefixMapRebind(t *testing.T) {
	pm := NewPrefixMap()
	pm.Bind("p", "http://one/")
	pm.Bind("p", "http://two/")
	iri, err := pm.Expand("p:x")
	if err != nil || iri != "http://two/x" {
		t.Fatalf("rebind: Expand = %q, %v", iri, err)
	}
	if got := pm.SortedPrefixes(); len(got) != 1 || got[0] != "p" {
		t.Fatalf("SortedPrefixes = %v", got)
	}
}

func TestShrinkRejectsSlashLocal(t *testing.T) {
	pm := NewPrefixMap()
	pm.Bind("ex", "http://example.org/")
	if got, ok := pm.Shrink("http://example.org/a/b"); ok {
		t.Fatalf("Shrink should refuse local name with slash, got %q", got)
	}
}
