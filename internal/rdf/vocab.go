package rdf

// Well-known namespace prefixes.
const (
	RDFNS  = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
	RDFSNS = "http://www.w3.org/2000/01/rdf-schema#"
	OWLNS  = "http://www.w3.org/2002/07/owl#"
	XSDNS  = "http://www.w3.org/2001/XMLSchema#"
	DCATNS = "http://www.w3.org/ns/dcat#"
	DCNS   = "http://purl.org/dc/terms/"
	FOAFNS = "http://xmlns.com/foaf/0.1/"
	VOIDNS = "http://rdfs.org/ns/void#"
)

// RDF vocabulary.
const (
	RDFType       = RDFNS + "type"
	RDFProperty   = RDFNS + "Property"
	RDFLangString = RDFNS + "langString"
)

// RDFS vocabulary.
const (
	RDFSClass      = RDFSNS + "Class"
	RDFSLabel      = RDFSNS + "label"
	RDFSComment    = RDFSNS + "comment"
	RDFSDomain     = RDFSNS + "domain"
	RDFSRange      = RDFSNS + "range"
	RDFSSubClassOf = RDFSNS + "subClassOf"
	RDFSSeeAlso    = RDFSNS + "seeAlso"
)

// OWL vocabulary.
const (
	OWLClass              = OWLNS + "Class"
	OWLObjectProperty     = OWLNS + "ObjectProperty"
	OWLDatatypeProperty   = OWLNS + "DatatypeProperty"
	OWLFunctionalProperty = OWLNS + "FunctionalProperty"
	OWLThing              = OWLNS + "Thing"
)

// XSD datatypes.
const (
	XSDString             = XSDNS + "string"
	XSDBoolean            = XSDNS + "boolean"
	XSDInteger            = XSDNS + "integer"
	XSDDecimal            = XSDNS + "decimal"
	XSDDouble             = XSDNS + "double"
	XSDFloat              = XSDNS + "float"
	XSDInt                = XSDNS + "int"
	XSDLong               = XSDNS + "long"
	XSDShort              = XSDNS + "short"
	XSDByte               = XSDNS + "byte"
	XSDDate               = XSDNS + "date"
	XSDDateTime           = XSDNS + "dateTime"
	XSDTime               = XSDNS + "time"
	XSDAnyURI             = XSDNS + "anyURI"
	XSDNonNegativeInteger = XSDNS + "nonNegativeInteger"
	XSDPositiveInteger    = XSDNS + "positiveInteger"
	XSDNegativeInteger    = XSDNS + "negativeInteger"
	XSDNonPositiveInteger = XSDNS + "nonPositiveInteger"
	XSDUnsignedInt        = XSDNS + "unsignedInt"
	XSDUnsignedLong       = XSDNS + "unsignedLong"
)

// DCAT vocabulary (used by the open-data-portal catalogs and the Listing 1
// crawl query).
const (
	DCATDataset      = DCATNS + "Dataset"
	DCATDistribution = DCATNS + "distribution"
	DCATAccessURL    = DCATNS + "accessURL"
	DCATCatalog      = DCATNS + "Catalog"
	DCATKeyword      = DCATNS + "keyword"
)

// Dublin Core terms.
const (
	DCTitle       = DCNS + "title"
	DCDescription = DCNS + "description"
	DCPublisher   = DCNS + "publisher"
	DCModified    = DCNS + "modified"
)

// VoID vocabulary (dataset statistics).
const (
	VoIDTriples  = VOIDNS + "triples"
	VoIDEntities = VOIDNS + "entities"
)
