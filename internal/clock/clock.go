// Package clock abstracts time so the extraction scheduler and the
// endpoint availability model can be driven by a simulated calendar in
// tests and experiments (a 60-day simulation runs in microseconds).
package clock

import (
	"sync"
	"time"
)

// Clock supplies the current time.
type Clock interface {
	Now() time.Time
}

// Real is the wall clock.
type Real struct{}

// Now returns time.Now().
func (Real) Now() time.Time { return time.Now() }

// Sim is a manually advanced clock. It is safe for concurrent use.
type Sim struct {
	mu  sync.Mutex
	now time.Time
}

// NewSim returns a simulated clock starting at start.
func NewSim(start time.Time) *Sim {
	return &Sim{now: start}
}

// Now returns the simulated current time.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Advance moves the clock forward by d and returns the new time.
func (s *Sim) Advance(d time.Duration) time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now = s.now.Add(d)
	return s.now
}

// AdvanceDays moves the clock forward by n calendar days.
func (s *Sim) AdvanceDays(n int) time.Time {
	return s.Advance(time.Duration(n) * 24 * time.Hour)
}

// Epoch is the fixed start date used by the simulations: the paper's
// evaluation period (early January 2020).
var Epoch = time.Date(2020, time.January, 3, 0, 0, 0, 0, time.UTC)
