package clock

import (
	"sync"
	"testing"
	"time"
)

func TestRealClock(t *testing.T) {
	before := time.Now()
	got := (Real{}).Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("Real.Now() = %v outside [%v, %v]", got, before, after)
	}
}

func TestSimAdvance(t *testing.T) {
	s := NewSim(Epoch)
	if !s.Now().Equal(Epoch) {
		t.Fatalf("start = %v", s.Now())
	}
	s.Advance(3 * time.Hour)
	if !s.Now().Equal(Epoch.Add(3 * time.Hour)) {
		t.Fatalf("after Advance = %v", s.Now())
	}
	s.AdvanceDays(2)
	if !s.Now().Equal(Epoch.Add(3*time.Hour + 48*time.Hour)) {
		t.Fatalf("after AdvanceDays = %v", s.Now())
	}
}

func TestSimConcurrentAdvance(t *testing.T) {
	s := NewSim(Epoch)
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Advance(time.Minute)
			s.Now()
		}()
	}
	wg.Wait()
	if got := s.Now().Sub(Epoch); got != 50*time.Minute {
		t.Fatalf("concurrent advances lost: %v", got)
	}
}

func TestEpochIsPaperEvaluationPeriod(t *testing.T) {
	if Epoch.Year() != 2020 || Epoch.Month() != time.January {
		t.Fatalf("Epoch = %v", Epoch)
	}
}
