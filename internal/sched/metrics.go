package sched

import "time"

// latBounds are the upper bounds of the attempt-latency histogram
// buckets; a final overflow bucket catches everything slower.
var latBounds = []time.Duration{
	time.Millisecond, 5 * time.Millisecond, 10 * time.Millisecond,
	25 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond,
	250 * time.Millisecond, 500 * time.Millisecond,
	time.Second, 5 * time.Second, 30 * time.Second,
}

// metrics is the scheduler's internal counter set, guarded by the
// scheduler mutex.
type metrics struct {
	submitted    int64
	succeeded    int64
	failed       int64
	canceled     int64
	retries      int64
	rateDeferred int64
	deduped      int64

	latCount   int64
	latSum     time.Duration
	latMax     time.Duration
	latBuckets []int64
}

func (m *metrics) observeLatency(d time.Duration) {
	if m.latBuckets == nil {
		m.latBuckets = make([]int64, len(latBounds)+1)
	}
	if d < 0 {
		d = 0
	}
	m.latCount++
	m.latSum += d
	if d > m.latMax {
		m.latMax = d
	}
	for i, bound := range latBounds {
		if d <= bound {
			m.latBuckets[i]++
			return
		}
	}
	m.latBuckets[len(latBounds)]++
}

// Bucket is one latency histogram bucket: the count of attempts that
// completed within Le (a duration string; "+Inf" for the overflow).
type Bucket struct {
	Le    string `json:"le"`
	Count int64  `json:"count"`
}

// Metrics is a point-in-time snapshot of the scheduler, shaped for the
// /api/metrics observability endpoint.
type Metrics struct {
	Workers int `json:"workers"`

	Queued  int `json:"queued"`
	Waiting int `json:"waiting"`
	Running int `json:"running"`

	Submitted    int64 `json:"submitted"`
	Succeeded    int64 `json:"succeeded"`
	Failed       int64 `json:"failed"`
	Canceled     int64 `json:"canceled"`
	Retries      int64 `json:"retries"`
	RateDeferred int64 `json:"rateDeferred"`
	Deduped      int64 `json:"deduped"`

	LatencyCount  int64    `json:"latencyCount"`
	LatencyMeanMs float64  `json:"latencyMeanMs"`
	LatencyMaxMs  float64  `json:"latencyMaxMs"`
	Latency       []Bucket `json:"latency"`
}

// ZeroMetrics returns the snapshot an idle, never-started scheduler
// would report — all counters zero, the histogram shaped but empty.
// The observability API serves it before any scheduling has happened.
func ZeroMetrics() Metrics {
	out := Metrics{Latency: make([]Bucket, 0, len(latBounds)+1)}
	for _, bound := range latBounds {
		out.Latency = append(out.Latency, Bucket{Le: bound.String()})
	}
	out.Latency = append(out.Latency, Bucket{Le: "+Inf"})
	return out
}

// Metrics returns a snapshot of counters, queue gauges and the attempt
// latency histogram.
func (s *Scheduler) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := Metrics{
		Workers:      s.cfg.Workers,
		Queued:       s.ready.Len(),
		Waiting:      s.waiting.Len(),
		Running:      s.running,
		Submitted:    s.m.submitted,
		Succeeded:    s.m.succeeded,
		Failed:       s.m.failed,
		Canceled:     s.m.canceled,
		Retries:      s.m.retries,
		RateDeferred: s.m.rateDeferred,
		Deduped:      s.m.deduped,
		LatencyCount: s.m.latCount,
		LatencyMaxMs: float64(s.m.latMax) / float64(time.Millisecond),
		Latency:      make([]Bucket, 0, len(latBounds)+1),
	}
	if out.LatencyCount > 0 {
		out.LatencyMeanMs = float64(s.m.latSum) / float64(out.LatencyCount) / float64(time.Millisecond)
	}
	counts := s.m.latBuckets
	if counts == nil {
		counts = make([]int64, len(latBounds)+1)
	}
	for i, bound := range latBounds {
		out.Latency = append(out.Latency, Bucket{Le: bound.String(), Count: counts[i]})
	}
	out.Latency = append(out.Latency, Bucket{Le: "+Inf", Count: counts[len(latBounds)]})
	return out
}
