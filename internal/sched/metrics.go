package sched

import (
	"time"

	"repro/internal/obs"
)

// latBounds are the upper bounds of the attempt-latency histogram
// buckets; a final overflow bucket catches everything slower. They are
// the canonical duration form of obs.DurationBuckets, and the /api/metrics
// JSON shape renders its le strings from them.
var latBounds = []time.Duration{
	time.Millisecond, 5 * time.Millisecond, 10 * time.Millisecond,
	25 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond,
	250 * time.Millisecond, 500 * time.Millisecond,
	time.Second, 5 * time.Second, 30 * time.Second,
}

// latSeconds is latBounds in float seconds, the unit the obs registry
// stores histograms in.
var latSeconds = func() []float64 {
	out := make([]float64, len(latBounds))
	for i, d := range latBounds {
		out[i] = d.Seconds()
	}
	return out
}()

// metrics holds the scheduler's registry-backed counter handles. The
// series live on the Config.Metrics registry (a private one when the
// caller did not supply any), so a server-owned registry accumulates
// scheduler counters for /metrics while per-test schedulers stay
// isolated.
type metrics struct {
	submitted    *obs.Counter
	succeeded    *obs.Counter
	failed       *obs.Counter
	canceled     *obs.Counter
	retries      *obs.Counter
	rateDeferred *obs.Counter
	deduped      *obs.Counter
	latency      *obs.Histogram
}

func newMetrics(r *obs.Registry) metrics {
	return metrics{
		submitted:    r.Counter("hbold_sched_submitted_total", "Jobs submitted to the extraction scheduler."),
		succeeded:    r.Counter("hbold_sched_succeeded_total", "Scheduler jobs that completed successfully."),
		failed:       r.Counter("hbold_sched_failed_total", "Scheduler jobs that exhausted retries and failed."),
		canceled:     r.Counter("hbold_sched_canceled_total", "Scheduler jobs canceled by shutdown."),
		retries:      r.Counter("hbold_sched_retries_total", "In-run retry attempts scheduled after failures."),
		rateDeferred: r.Counter("hbold_sched_rate_deferred_total", "Dispatches deferred by the per-endpoint rate limit."),
		deduped:      r.Counter("hbold_sched_deduped_total", "Submissions coalesced onto an already-active job."),
		latency:      r.Histogram("hbold_sched_attempt_seconds", "Wall time of scheduler job attempts.", latSeconds),
	}
}

// registerGauges exposes the live queue depths as callback gauges, read
// under the scheduler mutex at scrape time.
func (s *Scheduler) registerGauges(r *obs.Registry) {
	lockedInt := func(f func() int) func() float64 {
		return func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(f())
		}
	}
	r.GaugeFunc("hbold_sched_queued", "Jobs in the ready queue.", lockedInt(func() int { return s.ready.Len() }))
	r.GaugeFunc("hbold_sched_waiting", "Jobs parked on a backoff or rate-limit deadline.", lockedInt(func() int { return s.waiting.Len() }))
	r.GaugeFunc("hbold_sched_running", "Jobs currently executing.", lockedInt(func() int { return s.running }))
	r.GaugeFunc("hbold_sched_workers", "Configured worker-pool size.", func() float64 { return float64(s.cfg.Workers) })
}

// observeLatency records one attempt duration.
func (m *metrics) observeLatency(d time.Duration) {
	if d < 0 {
		d = 0
	}
	m.latency.Observe(d.Seconds())
}

// Bucket is one latency histogram bucket: the count of attempts that
// completed within Le (a duration string; "+Inf" for the overflow).
type Bucket struct {
	Le    string `json:"le"`
	Count int64  `json:"count"`
}

// Metrics is a point-in-time snapshot of the scheduler, shaped for the
// /api/metrics observability endpoint.
type Metrics struct {
	Workers int `json:"workers"`

	Queued  int `json:"queued"`
	Waiting int `json:"waiting"`
	Running int `json:"running"`

	Submitted    int64 `json:"submitted"`
	Succeeded    int64 `json:"succeeded"`
	Failed       int64 `json:"failed"`
	Canceled     int64 `json:"canceled"`
	Retries      int64 `json:"retries"`
	RateDeferred int64 `json:"rateDeferred"`
	Deduped      int64 `json:"deduped"`

	LatencyCount  int64    `json:"latencyCount"`
	LatencyMeanMs float64  `json:"latencyMeanMs"`
	LatencyMaxMs  float64  `json:"latencyMaxMs"`
	Latency       []Bucket `json:"latency"`
}

// ZeroMetrics returns the snapshot an idle, never-started scheduler
// would report — all counters zero, the histogram shaped but empty.
// The observability API serves it before any scheduling has happened.
func ZeroMetrics() Metrics {
	out := Metrics{Latency: make([]Bucket, 0, len(latBounds)+1)}
	for _, bound := range latBounds {
		out.Latency = append(out.Latency, Bucket{Le: bound.String()})
	}
	out.Latency = append(out.Latency, Bucket{Le: "+Inf"})
	return out
}

// Metrics returns a snapshot of counters, queue gauges and the attempt
// latency histogram. The shape (and the le duration strings) predate the
// obs registry and are kept stable for /api/metrics consumers.
func (s *Scheduler) Metrics() Metrics {
	s.mu.Lock()
	workers := s.cfg.Workers
	queued := s.ready.Len()
	waiting := s.waiting.Len()
	running := s.running
	s.mu.Unlock()

	out := Metrics{
		Workers:      workers,
		Queued:       queued,
		Waiting:      waiting,
		Running:      running,
		Submitted:    int64(s.m.submitted.Value()),
		Succeeded:    int64(s.m.succeeded.Value()),
		Failed:       int64(s.m.failed.Value()),
		Canceled:     int64(s.m.canceled.Value()),
		Retries:      int64(s.m.retries.Value()),
		RateDeferred: int64(s.m.rateDeferred.Value()),
		Deduped:      int64(s.m.deduped.Value()),
		LatencyCount: s.m.latency.Count(),
		LatencyMaxMs: s.m.latency.Max() * 1e3,
		Latency:      make([]Bucket, 0, len(latBounds)+1),
	}
	if out.LatencyCount > 0 {
		out.LatencyMeanMs = s.m.latency.Sum() / float64(out.LatencyCount) * 1e3
	}
	counts := s.m.latency.BucketCounts()
	for i, bound := range latBounds {
		out.Latency = append(out.Latency, Bucket{Le: bound.String(), Count: counts[i]})
	}
	out.Latency = append(out.Latency, Bucket{Le: "+Inf", Count: counts[len(latBounds)]})
	return out
}
