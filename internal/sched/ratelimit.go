package sched

import "time"

// bucket is a token bucket for one endpoint URL. Buckets are created
// full, refill continuously at Rate.PerSecond, and cap at Rate.Burst.
// All accesses happen under the scheduler mutex from the dispatcher.
type bucket struct {
	tokens float64
	last   time.Time
}

func (s *Scheduler) bucketFor(url string, now time.Time) *bucket {
	b := s.buckets[url]
	if b == nil {
		b = &bucket{tokens: float64(s.cfg.Rate.Burst), last: now}
		s.buckets[url] = b
	}
	return b
}

// refill advances the bucket to now.
func (b *bucket) refill(now time.Time, rate RateLimit) {
	if elapsed := now.Sub(b.last); elapsed > 0 {
		b.tokens += elapsed.Seconds() * rate.PerSecond
		if max := float64(rate.Burst); b.tokens > max {
			b.tokens = max
		}
	}
	b.last = now
}

// tokenWait returns how long until a dispatch token is available for
// url (0 = available now). It does not consume the token.
func (s *Scheduler) tokenWait(url string, now time.Time) time.Duration {
	if s.cfg.Rate.PerSecond <= 0 {
		return 0
	}
	b := s.bucketFor(url, now)
	b.refill(now, s.cfg.Rate)
	if b.tokens >= 1 {
		return 0
	}
	return time.Duration((1 - b.tokens) / s.cfg.Rate.PerSecond * float64(time.Second))
}

// takeToken consumes one dispatch token for url.
func (s *Scheduler) takeToken(url string, now time.Time) {
	if s.cfg.Rate.PerSecond <= 0 {
		return
	}
	b := s.bucketFor(url, now)
	b.refill(now, s.cfg.Rate)
	b.tokens--
}
