// Package sched is H-BOLD's extraction scheduler: a bounded worker pool
// over a priority job queue. The §3.1 server layer re-extracts indexes
// for every registered endpoint; walking them one at a time on the
// caller's goroutine caps throughput at one endpoint per extraction
// latency. The scheduler instead dispatches jobs to a configurable
// number of workers, keeps manual §3.4 submissions ahead of routine
// refreshes, retries failed extractions with per-endpoint exponential
// backoff (bounded by the registry's give-up policy through a pluggable
// hook), rate-limits dispatches per endpoint URL with a token bucket,
// and exposes live job and metrics snapshots for the observability API.
//
// Time is read through internal/clock, so retry and rate-limit
// sequencing can be driven by a simulated calendar in tests; Kick wakes
// the dispatcher after a manual clock advance.
package sched

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
)

// Priority orders jobs in the ready queue. Higher runs first.
type Priority int

// Job priorities: manual §3.4 submissions jump ahead of routine §3.1
// refreshes, because a user is waiting on the notification e-mail.
const (
	Routine Priority = 0
	Manual  Priority = 1
)

// String returns the priority name used in job snapshots.
func (p Priority) String() string {
	if p == Manual {
		return "manual"
	}
	return "routine"
}

// State is a job's lifecycle state.
type State string

// Job states. Queued and Waiting are pending (Waiting means the job is
// parked until a backoff or rate-limit deadline); Succeeded, Failed and
// Canceled are terminal.
const (
	StateQueued    State = "queued"
	StateWaiting   State = "waiting"
	StateRunning   State = "running"
	StateSucceeded State = "succeeded"
	StateFailed    State = "failed"
	StateCanceled  State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateSucceeded || s == StateFailed || s == StateCanceled
}

// Errors returned by the scheduler.
var (
	// ErrStopped is returned by Submit after the scheduler has stopped.
	ErrStopped = errors.New("sched: scheduler stopped")
	// ErrCanceled is the terminal error of jobs discarded by a shutdown
	// before they ran to completion.
	ErrCanceled = errors.New("sched: job canceled")
)

// Runner executes one extraction job. The context is the scheduler's
// run context: it is canceled on Stop, so runners that check it can
// abort early (a runner that ignores it simply runs to completion and
// Stop waits for it).
type Runner func(ctx context.Context, url string) error

// RetryPolicy bounds in-run retries of a failed job. Across runs the
// registry's §3.1 policy (daily retry day) remains authoritative; this
// policy covers transient failures within one scheduling cycle.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per job (minimum 1,
	// which disables in-run retry).
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; each further
	// retry doubles it. Default 1s.
	BaseBackoff time.Duration
	// MaxBackoff caps the doubling. Default 5m.
	MaxBackoff time.Duration
}

// RateLimit is a per-endpoint-URL token bucket on job dispatch, so a
// refresh storm cannot hammer one public endpoint.
type RateLimit struct {
	// PerSecond is the token refill rate; 0 disables rate limiting.
	PerSecond float64
	// Burst is the bucket capacity (default 1 when PerSecond > 0).
	Burst int
}

// Config parameterizes a Scheduler.
type Config struct {
	// Workers bounds parallelism (default 4).
	Workers int
	// Retry is the in-run retry policy.
	Retry RetryPolicy
	// Rate is the per-endpoint dispatch rate limit.
	Rate RateLimit
	// Clock supplies time; nil means the wall clock.
	Clock clock.Clock
	// Metrics is the registry the scheduler's counters, gauges and the
	// attempt-latency histogram live on; nil means a private registry, so
	// schedulers created without one (tests, standalone use) stay
	// isolated. core passes the process registry here so /metrics covers
	// the scheduler.
	Metrics *obs.Registry
	// KeepDone is how many completed jobs the observability snapshot
	// retains (default 128).
	KeepDone int
	// Retryable, when set, is consulted before an in-run retry is
	// scheduled; returning false fails the job immediately. core wires
	// this to the registry's give-up policy.
	Retryable func(url string, attempts int) bool
	// OnJobFailed, when set, runs once per job that exhausts its
	// retries, immediately before the job is marked failed — state
	// readers woken by the terminal transition are guaranteed to
	// observe its effects. It does not fire for intermediate attempts
	// or canceled jobs. It is called with the scheduler's internal
	// lock held, so it must not call back into the Scheduler. core
	// wires this to the registry failure record, keeping one record
	// per job however many in-run attempts it took.
	OnJobFailed func(url string, err error)
	// OnJobSucceeded, when set, runs once per job whose runner
	// completed without error, immediately before the job is marked
	// succeeded — state readers woken by the terminal transition are
	// guaranteed to observe its effects. Like OnJobFailed it is called
	// with the scheduler's internal lock held and must not call back
	// into the Scheduler. core wires this to the snapshot cache's
	// invalidation flow, so a completed refresh eagerly drops the
	// dataset's stale presentation snapshots.
	OnJobSucceeded func(url string)
}

func (c *Config) applyDefaults() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Retry.MaxAttempts <= 0 {
		c.Retry.MaxAttempts = 1
	}
	if c.Retry.BaseBackoff <= 0 {
		c.Retry.BaseBackoff = time.Second
	}
	if c.Retry.MaxBackoff <= 0 {
		c.Retry.MaxBackoff = 5 * time.Minute
	}
	if c.Rate.PerSecond > 0 && c.Rate.Burst <= 0 {
		c.Rate.Burst = 1
	}
	if c.KeepDone <= 0 {
		c.KeepDone = 128
	}
	if c.Clock == nil {
		c.Clock = clock.Real{}
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
}

// job is the internal mutable record; Job is its public snapshot.
type job struct {
	id       int64
	url      string
	pri      Priority
	state    State
	attempts int
	seq      int64 // FIFO tiebreak within a priority class
	heapIdx  int

	submittedAt time.Time
	startedAt   time.Time
	finishedAt  time.Time
	readyAt     time.Time // next dispatch time while waiting

	err error
}

// Job is an observability snapshot of one job.
type Job struct {
	ID          int64     `json:"id"`
	URL         string    `json:"url"`
	Priority    string    `json:"priority"`
	State       State     `json:"state"`
	Attempts    int       `json:"attempts"`
	SubmittedAt time.Time `json:"submittedAt"`
	StartedAt   time.Time `json:"startedAt"`
	FinishedAt  time.Time `json:"finishedAt"`
	ReadyAt     time.Time `json:"readyAt"`
	Error       string    `json:"error,omitempty"`
}

// Ticket is a handle on a submitted job; Wait blocks until the job
// reaches a terminal state.
type Ticket struct {
	s *Scheduler
	j *job
}

// ID returns the job id.
func (t *Ticket) ID() int64 { return t.j.id }

// Wait blocks until the job is terminal or ctx is done. It returns the
// job's state and, for failed or canceled jobs, its error; when ctx
// expires first it returns the current (non-terminal) state and the
// context error.
func (t *Ticket) Wait(ctx context.Context) (State, error) {
	err := t.s.waitCond(ctx, func() bool { return t.j.state.Terminal() })
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	if err != nil {
		return t.j.state, err
	}
	return t.j.state, t.j.err
}

// Scheduler dispatches extraction jobs to a bounded worker pool. Create
// with New, call Start once, Submit jobs, and Stop to shut down.
type Scheduler struct {
	cfg Config
	run Runner
	ck  clock.Clock

	mu      sync.Mutex
	cond    *sync.Cond
	ready   readyHeap
	waiting waitHeap
	active  map[int64]*job  // every non-terminal job
	byURL   map[string]*job // active job per URL (dedup)
	done    []*job          // most recent terminal jobs, oldest first
	buckets map[string]*bucket
	nextID  int64
	nextSeq int64
	pending int // jobs not yet terminal
	running int
	stopped bool
	started bool
	m       metrics

	wake   chan struct{}
	slots  chan struct{}
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// New builds a scheduler that executes jobs with run. Zero-value Config
// fields get production defaults.
func New(cfg Config, run Runner) *Scheduler {
	cfg.applyDefaults()
	s := &Scheduler{
		cfg:     cfg,
		run:     run,
		ck:      cfg.Clock,
		active:  make(map[int64]*job),
		byURL:   make(map[string]*job),
		buckets: make(map[string]*bucket),
		wake:    make(chan struct{}, 1),
		slots:   make(chan struct{}, cfg.Workers),
	}
	s.m = newMetrics(cfg.Metrics)
	s.registerGauges(cfg.Metrics)
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Start launches the dispatcher. Jobs submitted earlier begin running.
// Canceling ctx has the same effect as Stop. Start is idempotent.
func (s *Scheduler) Start(ctx context.Context) {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.ctx, s.cancel = context.WithCancel(ctx)
	s.mu.Unlock()
	s.wg.Add(1)
	go s.dispatch()
}

// Stop cancels the run context, discards pending jobs as canceled,
// waits for in-flight jobs to finish, and rejects further submissions.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	s.stopped = true
	cancel := s.cancel
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	s.wg.Wait()
}

// Submit enqueues an extraction job for url. If the URL already has a
// pending or running job, no new job is created: the existing job's
// ticket is returned, upgraded to the higher of the two priorities.
func (s *Scheduler) Submit(url string, pri Priority) (*Ticket, error) {
	if url == "" {
		return nil, fmt.Errorf("sched: empty job URL")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return nil, ErrStopped
	}
	if j := s.byURL[url]; j != nil {
		if pri > j.pri {
			j.pri = pri
			if j.state == StateQueued {
				heap.Fix(&s.ready, j.heapIdx)
			}
		}
		s.m.deduped.Inc()
		return &Ticket{s: s, j: j}, nil
	}
	s.nextID++
	j := &job{
		id:          s.nextID,
		url:         url,
		pri:         pri,
		state:       StateQueued,
		seq:         s.nextSeq,
		submittedAt: s.ck.Now(),
	}
	s.nextSeq++
	heap.Push(&s.ready, j)
	s.active[j.id] = j
	s.byURL[url] = j
	s.pending++
	s.m.submitted.Inc()
	s.kick()
	return &Ticket{s: s, j: j}, nil
}

// Kick wakes the dispatcher so it re-evaluates backoff and rate-limit
// deadlines against the current clock. Tests driving a simulated clock
// call it after advancing time; with the wall clock it is never needed.
func (s *Scheduler) Kick() { s.kick() }

func (s *Scheduler) kick() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// Drain blocks until no pending or running jobs remain, or ctx is done.
func (s *Scheduler) Drain(ctx context.Context) error {
	return s.waitCond(ctx, func() bool { return s.pending == 0 })
}

// waitCond blocks until done (evaluated under the scheduler mutex)
// holds or ctx expires. A watcher goroutine turns ctx cancellation
// into a cond broadcast so the wait wakes up.
func (s *Scheduler) waitCond(ctx context.Context, done func() bool) error {
	if d := ctx.Done(); d != nil {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-d:
				s.mu.Lock()
				s.cond.Broadcast()
				s.mu.Unlock()
			case <-stop:
			}
		}()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for !done() {
		if err := ctx.Err(); err != nil {
			return err
		}
		s.cond.Wait()
	}
	return nil
}

// dispatch is the single goroutine that owns queue ordering: it
// promotes waiting jobs whose deadline has passed, parks rate-limited
// jobs, and hands ready jobs to worker goroutines bounded by the slot
// semaphore. Acquiring the slot before popping the queue keeps priority
// honest: the highest-priority job at dispatch time runs next, not the
// highest-priority job at the time a worker became busy.
func (s *Scheduler) dispatch() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		now := s.ck.Now()
		s.promoteLocked(now)
		s.parkRateLimitedLocked(now)
		hasReady := s.ready.Len() > 0
		delay := time.Duration(-1)
		if !hasReady && s.waiting.Len() > 0 {
			delay = s.waiting[0].readyAt.Sub(now)
			if delay < time.Millisecond {
				delay = time.Millisecond
			}
			if _, real := s.ck.(clock.Real); !real {
				// a simulated clock's durations mean nothing in wall
				// time: poll at a short real interval so a test that
				// advances the clock without calling Kick still makes
				// progress instead of sleeping a simulated backoff
				delay = time.Millisecond
			}
		}
		s.mu.Unlock()

		if s.ctx.Err() != nil {
			s.shutdown()
			return
		}

		if hasReady {
			select {
			case s.slots <- struct{}{}:
			case <-s.ctx.Done():
				s.shutdown()
				return
			}
			if j := s.takeReady(); j != nil {
				s.wg.Add(1)
				go s.runJob(j)
			} else {
				<-s.slots
			}
			continue
		}

		var timerC <-chan time.Time
		var timer *time.Timer
		if delay >= 0 {
			timer = time.NewTimer(delay)
			timerC = timer.C
		}
		select {
		case <-s.wake:
		case <-timerC:
		case <-s.ctx.Done():
			if timer != nil {
				timer.Stop()
			}
			s.shutdown()
			return
		}
		if timer != nil {
			timer.Stop()
		}
	}
}

// takeReady pops the best dispatchable job and marks it running,
// consuming its rate-limit token. It returns nil when the queue turned
// out empty (or fully rate-limited) by the time the slot was acquired.
func (s *Scheduler) takeReady() *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.ck.Now()
	s.promoteLocked(now)
	s.parkRateLimitedLocked(now)
	if s.ready.Len() == 0 {
		return nil
	}
	j := heap.Pop(&s.ready).(*job)
	s.takeToken(j.url, now)
	j.state = StateRunning
	j.startedAt = now
	j.attempts++
	s.running++
	return j
}

// runJob executes one attempt and applies the retry policy.
func (s *Scheduler) runJob(j *job) {
	defer s.wg.Done()
	defer func() {
		<-s.slots
		s.kick()
	}()
	err := s.safeRun(j.url)
	retry := false
	if err != nil {
		s.mu.Lock()
		attempts, max, stopped := j.attempts, s.cfg.Retry.MaxAttempts, s.stopped
		s.mu.Unlock()
		retry = attempts < max && !stopped
		if retry && s.cfg.Retryable != nil {
			// the hook may take other locks (the registry's); call it
			// outside ours
			retry = s.cfg.Retryable(j.url, attempts)
		}
	}
	now := s.ck.Now()
	s.mu.Lock()
	s.running--
	s.m.observeLatency(now.Sub(j.startedAt))
	switch {
	case err == nil:
		// the success hook runs under the lock, atomically with the
		// terminal transition, mirroring OnJobFailed below
		if s.cfg.OnJobSucceeded != nil {
			s.cfg.OnJobSucceeded(j.url)
		}
		s.finishLocked(j, StateSucceeded, nil, now)
	case retry && !s.stopped:
		j.state = StateWaiting
		j.readyAt = now.Add(s.backoff(j.attempts))
		j.err = err
		heap.Push(&s.waiting, j)
		s.m.retries.Inc()
	default:
		// the failure hook runs under the lock, atomically with the
		// terminal transition: anyone woken by the broadcast observes
		// its effects, including when Stop raced the retry decision
		if s.cfg.OnJobFailed != nil {
			s.cfg.OnJobFailed(j.url, err)
		}
		s.finishLocked(j, StateFailed, err, now)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *Scheduler) safeRun(url string) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sched: runner panic: %v", r)
		}
	}()
	return s.run(s.ctx, url)
}

// backoff returns the delay before attempt attempts+1: Base doubled per
// prior retry, capped at MaxBackoff.
func (s *Scheduler) backoff(attempts int) time.Duration {
	d := s.cfg.Retry.BaseBackoff
	for i := 1; i < attempts; i++ {
		d *= 2
		if d >= s.cfg.Retry.MaxBackoff {
			return s.cfg.Retry.MaxBackoff
		}
	}
	if d > s.cfg.Retry.MaxBackoff {
		d = s.cfg.Retry.MaxBackoff
	}
	return d
}

// promoteLocked moves waiting jobs whose deadline has passed back into
// the ready queue.
func (s *Scheduler) promoteLocked(now time.Time) {
	for s.waiting.Len() > 0 && !s.waiting[0].readyAt.After(now) {
		j := heap.Pop(&s.waiting).(*job)
		j.state = StateQueued
		j.seq = s.nextSeq
		s.nextSeq++
		heap.Push(&s.ready, j)
	}
}

// parkRateLimitedLocked parks ready head jobs whose endpoint bucket is
// empty until their token refills, so a lower-priority job for a
// different endpoint can dispatch instead.
func (s *Scheduler) parkRateLimitedLocked(now time.Time) {
	for s.ready.Len() > 0 {
		j := s.ready[0]
		wait := s.tokenWait(j.url, now)
		if wait <= 0 {
			return
		}
		heap.Pop(&s.ready)
		j.state = StateWaiting
		j.readyAt = now.Add(wait)
		heap.Push(&s.waiting, j)
		s.m.rateDeferred.Inc()
	}
}

// finishLocked records a terminal transition and retains the job in the
// bounded done ring for observability.
func (s *Scheduler) finishLocked(j *job, st State, err error, now time.Time) {
	j.state = st
	j.err = err
	j.finishedAt = now
	s.pending--
	delete(s.active, j.id)
	if s.byURL[j.url] == j {
		delete(s.byURL, j.url)
	}
	switch st {
	case StateSucceeded:
		s.m.succeeded.Inc()
	case StateFailed:
		s.m.failed.Inc()
	case StateCanceled:
		s.m.canceled.Inc()
	}
	if len(s.done) >= s.cfg.KeepDone {
		copy(s.done, s.done[1:])
		s.done = s.done[:s.cfg.KeepDone-1]
	}
	s.done = append(s.done, j)
	s.cond.Broadcast()
}

// shutdown cancels every job that has not started running.
func (s *Scheduler) shutdown() {
	now := s.ck.Now()
	s.mu.Lock()
	s.stopped = true
	for s.ready.Len() > 0 {
		s.finishLocked(heap.Pop(&s.ready).(*job), StateCanceled, ErrCanceled, now)
	}
	for s.waiting.Len() > 0 {
		s.finishLocked(heap.Pop(&s.waiting).(*job), StateCanceled, ErrCanceled, now)
	}
	s.mu.Unlock()
}

// Jobs returns a snapshot of every pending and running job plus the
// most recent completed ones, sorted by job id.
func (s *Scheduler) Jobs() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.active)+len(s.done))
	for _, j := range s.active {
		out = append(out, snapshot(j))
	}
	for _, j := range s.done {
		out = append(out, snapshot(j))
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

func snapshot(j *job) Job {
	out := Job{
		ID:          j.id,
		URL:         j.url,
		Priority:    j.pri.String(),
		State:       j.state,
		Attempts:    j.attempts,
		SubmittedAt: j.submittedAt,
		StartedAt:   j.startedAt,
		FinishedAt:  j.finishedAt,
		ReadyAt:     j.readyAt,
	}
	if j.err != nil {
		out.Error = j.err.Error()
	}
	return out
}

// --- queue orderings ---

// readyHeap orders by priority (higher first), then submission order.
type readyHeap []*job

func (h readyHeap) Len() int { return len(h) }
func (h readyHeap) Less(i, j int) bool {
	if h[i].pri != h[j].pri {
		return h[i].pri > h[j].pri
	}
	return h[i].seq < h[j].seq
}
func (h readyHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}
func (h *readyHeap) Push(x any) {
	j := x.(*job)
	j.heapIdx = len(*h)
	*h = append(*h, j)
}
func (h *readyHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	j.heapIdx = -1
	return j
}

// waitHeap orders by deadline, then submission order.
type waitHeap []*job

func (h waitHeap) Len() int { return len(h) }
func (h waitHeap) Less(i, j int) bool {
	if !h[i].readyAt.Equal(h[j].readyAt) {
		return h[i].readyAt.Before(h[j].readyAt)
	}
	return h[i].seq < h[j].seq
}
func (h waitHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}
func (h *waitHeap) Push(x any) {
	j := x.(*job)
	j.heapIdx = len(*h)
	*h = append(*h, j)
}
func (h *waitHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	j.heapIdx = -1
	return j
}
